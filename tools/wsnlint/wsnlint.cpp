// wsnlint — the repo's determinism/portability linter (docs/STATIC_ANALYSIS.md).
//
// Usage:
//   wsnlint [--root DIR] [--fix] [--list-rules] [PATH...]
//
// PATHs (files or directories, relative to --root) default to the full scan
// set: src bench examples tests tools. Exit status is 0 when clean, 1 when
// there are findings, 2 on usage or I/O errors. Findings print as
// `file:line:rule-id: message`, one per line, sorted — the same byte format
// tests/lint_test.cpp locks with a golden.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "runner.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: wsnlint [--root DIR] [--fix] [--list-rules] "
               "[PATH...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  wsnlint::Options options;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fix") {
      options.fix = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      options.root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "wsnlint: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const wsnlint::RuleInfo& rule : wsnlint::Rules()) {
      std::printf("%-20s %s\n", rule.id.c_str(), rule.summary.c_str());
    }
    return 0;
  }

  try {
    const wsnlint::RunResult result = wsnlint::Run(options);
    const std::string report = analysis::FormatFindings(result.findings);
    std::fputs(report.c_str(), stdout);
    if (options.fix && result.files_fixed > 0) {
      std::fprintf(stderr, "wsnlint: fixed %d file(s)\n", result.files_fixed);
    }
    std::fprintf(stderr, "wsnlint: %d finding(s) in %d file(s)\n",
                 static_cast<int>(result.findings.size()),
                 result.files_scanned);
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  }
}
