// wsnlint rule registry.
//
// Each rule enforces one repo-wide contract (see docs/STATIC_ANALYSIS.md for
// the catalog and the determinism rationale). Rules are token-level checks
// over the blanked "code view" produced by source_scanner — deliberately
// dependency-free (no libclang), so the linter builds and runs anywhere the
// simulator does and adds nothing to CI setup.
//
// Suppression: a comment anywhere in a file of the form
//   // wsnlint:allow(<rule-id>): one-line justification
// (angle brackets not included) disables that rule for the whole file. The justification is mandatory
// (an allow without one is itself a finding), and an allow that suppresses
// nothing is flagged as stale so escapes cannot rot in place.
#pragma once

#include <string>
#include <vector>

#include "markers.h"
#include "source_scanner.h"

namespace wsnlint {

// The scanner and the finding/marker plumbing live in tools/analysis_common
// (shared with wsnstatic); wsnlint re-exports the names it always had so the
// rule code and tests read unchanged.
using analysis::Comment;
using analysis::ScanResult;
using analysis::ScanSource;
using analysis::SplitLines;
using Finding = analysis::Finding;

/// Everything a rule needs to inspect one file.
struct FileContext {
  std::string path;       // repo-relative, '/'-separated
  std::string content;    // raw bytes
  ScanResult scan;        // blanked code view + comments
  std::vector<std::string> code_lines;  // SplitLines(scan.code)

  [[nodiscard]] bool InDir(const std::string& prefix) const;
  [[nodiscard]] bool IsHeader() const;
};

/// Static description of one rule.
struct RuleInfo {
  std::string id;
  std::string summary;
};

/// All registered rules, in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& Rules();

/// True if `id` names a registered rule.
[[nodiscard]] bool IsKnownRule(const std::string& id);

/// Runs every rule over one file and returns the findings, with file-scope
/// `wsnlint:allow` directives applied. Directive problems (missing
/// justification, unknown rule id, stale allow) are reported as findings
/// under the `allow-directive` pseudo-rule.
[[nodiscard]] std::vector<Finding> CheckFile(const FileContext& ctx);

/// Convenience: builds the FileContext and runs CheckFile.
[[nodiscard]] std::vector<Finding> CheckSource(const std::string& path,
                                               const std::string& content);

/// Applies the mechanical fixes (rule header-hygiene: inserts a missing
/// `#pragma once` after the leading comment block). Returns the fixed
/// content; equal to the input when there is nothing to fix. Idempotent.
[[nodiscard]] std::string ApplyFixes(const std::string& path,
                                     const std::string& content);

// Findings format via analysis::FormatFindings (tools/analysis_common),
// shared with wsnstatic so both goldens compare the same byte format.

}  // namespace wsnlint
