// Filesystem driver for wsnlint: walks the requested directories, builds a
// FileContext per C++ source file, and aggregates findings. Kept separate
// from rules.cpp so tests can lint in-memory snippets without touching disk
// and so the CLI stays a thin shell.
#pragma once

#include <string>
#include <vector>

#include "rules.h"

namespace wsnlint {

struct Options {
  // Directory all reported paths are made relative to (and that `paths` are
  // resolved against). Defaults to the current working directory.
  std::string root = ".";
  // Files or directories to lint, relative to `root`. Directories are
  // walked recursively for .h/.cpp/.cc files. Empty means the default scan
  // set: src, bench, examples, tests, tools.
  std::vector<std::string> paths;
  // Apply mechanical fixes in place (currently: missing #pragma once).
  bool fix = false;
};

struct RunResult {
  std::vector<Finding> findings;
  int files_scanned = 0;
  int files_fixed = 0;
};

/// True if `relative_path` is excluded from scanning: lint-rule fixtures
/// (which contain violations on purpose), golden files, build trees, and
/// version-control internals.
[[nodiscard]] bool IsExcluded(const std::string& relative_path);

/// Lints (and with `options.fix` rewrites) every matching file.
/// Throws std::runtime_error when a requested path does not exist.
[[nodiscard]] RunResult Run(const Options& options);

}  // namespace wsnlint
