#include "rules.h"

#include <algorithm>
#include <cstddef>
#include <regex>
#include <utility>

namespace wsnlint {
namespace {

// --- rule scoping helpers ---------------------------------------------------

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Returns true when the whole-line code view matches `re`, reporting one
// finding per matching line (not per match: one message per line keeps the
// output readable and the golden stable).
void FlagLines(const FileContext& ctx, const std::regex& re,
               const std::string& rule, const std::string& message,
               std::vector<Finding>* out) {
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    if (std::regex_search(ctx.code_lines[i], re)) {
      out->push_back({ctx.path, static_cast<int>(i) + 1, rule, message});
    }
  }
}

// --- R1: no wall-clock or ambient entropy in src/ ---------------------------

void CheckWallclock(const FileContext& ctx, std::vector<Finding>* out) {
  if (!ctx.InDir("src/")) return;
  static const std::regex kForbidden(
      R"((\bstd::rand\b|\bsrand\s*\(|\brand\s*\(|\brandom_device\b)"
      R"(|\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b)"
      R"(|\bgettimeofday\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\))"
      R"(|\bclock\s*\(\s*\)|#\s*include\s*<(chrono|ctime|random)>))");
  FlagLines(ctx, kForbidden, "no-wallclock",
            "wall-clock/ambient entropy is forbidden in src/; draw from the "
            "seeded util::Rng lineage so runs replay bit-identically",
            out);
}

// --- R2: no unordered containers on output-writing paths --------------------

void CheckUnorderedOutput(const FileContext& ctx, std::vector<Finding>* out) {
  if (!ctx.InDir("src/")) return;
  static const std::regex kOutputSignal(
      R"((#\s*include\s*"util/csv\.h"|#\s*include\s*"experiment/checkpoint\.h")"
      R"(|#\s*include\s*"trace/export\.h"|\bCsvWriter\b|\bCheckpointWriter\b)"
      R"(|\bSerializeSummaryRow\b|\bExportCsv\b))");
  if (!std::regex_search(ctx.scan.code, kOutputSignal)) return;
  static const std::regex kUnordered(R"(\bunordered_(map|set)\b)");
  FlagLines(ctx, kUnordered, "no-unordered-output",
            "unordered container in a file that writes CSV/trace/checkpoint "
            "output; iteration order is unspecified and would make emitted "
            "bytes depend on hashing — use std::map/std::vector",
            out);
}

// --- R3: numeric parsing goes through src/util ------------------------------

void CheckRawParse(const FileContext& ctx, std::vector<Finding>* out) {
  if (ctx.InDir("src/util/")) return;
  static const std::regex kRawParse(
      R"(\b(atoi|atof|atol|atoll|strtol|strtoul|strtoll|strtoull|strtod)"
      R"(|strtof|strtold|sscanf|stoi|stol|stoll|stoul|stoull|stof|stod|stold))"
      R"(\s*\()");
  FlagLines(ctx, kRawParse, "no-raw-parse",
            "raw numeric parsing outside src/util/; use util::Args accessors "
            "or util::ParsePositiveInt/ParseDouble, which reject trailing "
            "garbage instead of silently truncating",
            out);
}

// --- R4: header hygiene -----------------------------------------------------

void CheckHeaderHygiene(const FileContext& ctx, std::vector<Finding>* out) {
  if (!ctx.IsHeader()) return;
  static const std::regex kDirective(R"(^\s*#)");
  static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
  int first_directive_line = 0;  // 1-based; 0 = none found
  bool pragma_first = false;
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    if (std::regex_search(ctx.code_lines[i], kDirective)) {
      first_directive_line = static_cast<int>(i) + 1;
      pragma_first = std::regex_search(ctx.code_lines[i], kPragmaOnce);
      break;
    }
  }
  if (!pragma_first) {
    out->push_back({ctx.path, first_directive_line == 0 ? 1
                                                        : first_directive_line,
                    "header-hygiene",
                    "header must start with #pragma once (before any other "
                    "preprocessor directive); run wsnlint --fix"});
  }
  static const std::regex kUsingNamespace(R"(^\s*using\s+namespace\b)");
  FlagLines(ctx, kUsingNamespace, "header-hygiene",
            "using-namespace at file scope in a header leaks into every "
            "includer; qualify names or alias them",
            out);
}

// --- R5: no floating-point ==/!= --------------------------------------------

void CheckFloatEq(const FileContext& ctx, std::vector<Finding>* out) {
  // Token-level approximation: an ==/!= with a float literal on either side.
  // Comparing two double-typed variables is invisible to a scanner without
  // type info; the literal form is the one that actually shows up in
  // thresholds and golden predicates, and the one mutations introduce.
  static const std::regex kFloatCmp(
      R"((==|!=)\s*[+-]?(\d+\.\d*|\.\d+|\d+[eE][+-]?\d+))"
      R"(|(\d+\.\d*|\.\d+|\d+[eE][+-]?\d+)[fFlL]?\s*(==|!=))");
  FlagLines(ctx, kFloatCmp, "no-float-eq",
            "floating-point ==/!= against a literal; rounding makes exact "
            "equality fragile — compare with an explicit tolerance or "
            "restructure to integers",
            out);
}

// --- R6: no naked new/delete in src/ ----------------------------------------

void CheckNakedNew(const FileContext& ctx, std::vector<Finding>* out) {
  if (!ctx.InDir("src/")) return;
  static const std::regex kPreprocessor(R"(^\s*#)");
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string& line = ctx.code_lines[i];
    if (std::regex_search(line, kPreprocessor)) continue;  // #include <new>
    static const std::regex kNew(R"(\bnew\b)");
    static const std::regex kDelete(R"(\bdelete\b)");
    bool flagged = false;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kNew);
         it != std::sregex_iterator(); ++it) {
      const std::size_t pos = static_cast<std::size_t>(it->position());
      const std::string before = line.substr(0, pos);
      // `operator new` overloads and placement new (`new (addr) T`, also
      // `::new (...)`) manage storage explicitly and are not ownership bugs.
      static const std::regex kOperatorPrefix(R"(operator\s*$)");
      if (std::regex_search(before, kOperatorPrefix)) continue;
      std::size_t after = pos + 3;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after < line.size() && line[after] == '(') continue;
      flagged = true;
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kDelete);
         it != std::sregex_iterator(); ++it) {
      const std::size_t pos = static_cast<std::size_t>(it->position());
      const std::string before = line.substr(0, pos);
      // `= delete`d functions and `operator delete` overloads are fine.
      static const std::regex kDeletedFnPrefix(R"((=\s*|operator\s*)$)");
      if (std::regex_search(before, kDeletedFnPrefix)) continue;
      flagged = true;
    }
    if (flagged) {
      out->push_back({ctx.path, static_cast<int>(i) + 1, "no-naked-new",
                      "naked new/delete in src/; own memory with "
                      "std::unique_ptr/containers so no path can leak"});
    }
  }
}

// --- R7: no heap allocation in files marked hot-path ------------------------

void CheckHotAlloc(const FileContext& ctx, std::vector<Finding>* out) {
  // Opt-in: a comment containing the `wsnlint:hot-path` marker declares the
  // file part of the per-config inner loop, where the zero-alloc sweep
  // invariant holds (perf_sweep --check measures it dynamically; this rule
  // makes it visible at review time). In marked files, tokens that
  // unconditionally hit the heap allocator are findings. Placement new
  // (`new (addr) T`) constructs into caller-owned storage — the arena's
  // whole point — and stays exempt, as do preprocessor lines.
  bool marked = false;
  for (const Comment& comment : ctx.scan.comments) {
    if (comment.text.find("wsnlint:hot-path") != std::string::npos) {
      marked = true;
      break;
    }
  }
  if (!marked) return;
  static const std::regex kPreprocessor(R"(^\s*#)");
  static const std::regex kHeapCall(
      R"(\bmake_(unique|shared)\s*<|\b(malloc|calloc|realloc|strdup)\s*\()");
  static const std::regex kNew(R"(\bnew\b)");
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string& line = ctx.code_lines[i];
    if (std::regex_search(line, kPreprocessor)) continue;
    bool flagged = std::regex_search(line, kHeapCall);
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kNew);
         !flagged && it != std::sregex_iterator(); ++it) {
      const std::size_t pos = static_cast<std::size_t>(it->position());
      static const std::regex kOperatorPrefix(R"(operator\s*$)");
      if (std::regex_search(line.substr(0, pos), kOperatorPrefix)) continue;
      std::size_t after = pos + 3;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after < line.size() && line[after] == '(') continue;  // placement
      flagged = true;
    }
    if (flagged) {
      out->push_back({ctx.path, static_cast<int>(i) + 1, "no-hot-alloc",
                      "heap allocation in a wsnlint:hot-path file; the "
                      "per-config inner loop runs allocation-free — build "
                      "into arena/scratch storage or hoist the allocation "
                      "to setup"});
    }
  }
}

}  // namespace

bool FileContext::InDir(const std::string& prefix) const {
  return StartsWith(path, prefix) || path.find("/" + prefix) != std::string::npos;
}

bool FileContext::IsHeader() const { return EndsWith(path, ".h"); }

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"no-wallclock",
       "src/ must not read wall clocks or ambient entropy (std::rand, "
       "random_device, <chrono>); all randomness flows from util::Rng"},
      {"no-unordered-output",
       "files that write CSV/trace/checkpoint output must not use "
       "unordered_map/unordered_set (iteration order is unspecified)"},
      {"no-raw-parse",
       "atoi/strtol/std::stoi-family parsing is confined to src/util/; "
       "everything else uses the validated util parsers"},
      {"header-hygiene",
       "headers start with #pragma once and never use using-namespace at "
       "file scope"},
      {"no-float-eq",
       "no ==/!= against floating-point literals; compare with a tolerance"},
      {"no-naked-new",
       "no naked new/delete in src/; use owning types"},
      {"no-hot-alloc",
       "files carrying a wsnlint:hot-path marker comment must not allocate "
       "on the heap (new/make_unique/make_shared/malloc family); hot loops "
       "build into arena or scratch storage"},
  };
  return kRules;
}

bool IsKnownRule(const std::string& id) {
  const auto& rules = Rules();
  return std::any_of(rules.begin(), rules.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

std::vector<Finding> CheckFile(const FileContext& ctx) {
  std::vector<Finding> kept;
  std::vector<analysis::Allow> allows = analysis::ParseAllows(
      "wsnlint", ctx.path, ctx.scan.comments, IsKnownRule, &kept);

  std::vector<Finding> raw;
  CheckWallclock(ctx, &raw);
  CheckUnorderedOutput(ctx, &raw);
  CheckRawParse(ctx, &raw);
  CheckHeaderHygiene(ctx, &raw);
  CheckFloatEq(ctx, &raw);
  CheckNakedNew(ctx, &raw);
  CheckHotAlloc(ctx, &raw);

  analysis::ApplyAllows("wsnlint", ctx.path, allows, std::move(raw), &kept);
  return kept;
}

std::vector<Finding> CheckSource(const std::string& path,
                                 const std::string& content) {
  FileContext ctx;
  ctx.path = path;
  ctx.content = content;
  ctx.scan = ScanSource(content);
  ctx.code_lines = SplitLines(ctx.scan.code);
  return CheckFile(ctx);
}

std::string ApplyFixes(const std::string& path, const std::string& content) {
  if (!EndsWith(path, ".h")) return content;
  const ScanResult scan = ScanSource(content);
  const std::vector<std::string> code_lines = SplitLines(scan.code);
  static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
  for (const std::string& line : code_lines) {
    if (std::regex_search(line, kPragmaOnce)) return content;  // already fixed
  }
  // Insert after the leading comment/blank block so file-header prose stays
  // on top, matching the style of every existing header in the repo.
  const std::vector<std::string> raw_lines = SplitLines(content);
  std::size_t insert_at = 0;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const bool code_blank =
        i >= code_lines.size() ||
        code_lines[i].find_first_not_of(" \t\r") == std::string::npos;
    const bool raw_blank =
        raw_lines[i].find_first_not_of(" \t\r") == std::string::npos;
    if (code_blank && !raw_blank) {
      insert_at = i + 1;  // comment line: keep scanning
    } else if (raw_blank) {
      continue;  // blank line inside/after the comment block
    } else {
      break;  // first real code line
    }
  }
  std::string fixed;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    if (i == insert_at) {
      fixed += "#pragma once\n";
      // Keep exactly one blank line between the pragma and what follows.
      const bool next_blank =
          raw_lines[i].find_first_not_of(" \t\r") == std::string::npos;
      if (!next_blank) fixed += "\n";
    }
    fixed += raw_lines[i];
    fixed += "\n";
  }
  if (insert_at >= raw_lines.size()) fixed += "#pragma once\n";
  return fixed;
}

}  // namespace wsnlint
