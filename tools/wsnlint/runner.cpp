#include "runner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wsnlint {
namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("wsnlint: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// '/'-separated path relative to root, for stable cross-platform output.
std::string RelativePath(const fs::path& path, const fs::path& root) {
  return fs::relative(path, root).generic_string();
}

}  // namespace

bool IsExcluded(const std::string& relative_path) {
  static const std::vector<std::string> kExcludedParts = {
      "lint_fixtures",    // violation corpus for the lint golden test
      "static_fixtures",  // violation corpus for the wsnstatic golden test
      "golden",           // checked-in expected outputs, not code
      ".git",
  };
  for (const std::string& part : kExcludedParts) {
    if (relative_path.find(part) != std::string::npos) return true;
  }
  // Out-of-source build trees checked out under the repo root.
  return relative_path.rfind("build", 0) == 0;
}

RunResult Run(const Options& options) {
  const fs::path root = fs::absolute(options.root);
  std::vector<std::string> roots = options.paths;
  if (roots.empty()) roots = {"src", "bench", "examples", "tests", "tools"};

  std::vector<fs::path> files;
  for (const std::string& entry : roots) {
    const fs::path path = root / entry;
    if (fs::is_regular_file(path)) {
      files.push_back(path);
    } else if (fs::is_directory(path)) {
      for (const auto& item : fs::recursive_directory_iterator(path)) {
        if (item.is_regular_file() && HasSourceExtension(item.path())) {
          files.push_back(item.path());
        }
      }
    } else {
      throw std::runtime_error("wsnlint: no such file or directory: " +
                               path.string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  RunResult result;
  for (const fs::path& file : files) {
    const std::string rel = RelativePath(file, root);
    if (IsExcluded(rel)) continue;
    std::string content = ReadFile(file);
    if (options.fix) {
      const std::string fixed = ApplyFixes(rel, content);
      if (fixed != content) {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out << fixed;
        if (!out) {
          throw std::runtime_error("wsnlint: cannot write " + file.string());
        }
        content = fixed;
        ++result.files_fixed;
      }
    }
    std::vector<Finding> findings = CheckSource(rel, content);
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
    ++result.files_scanned;
  }
  return result;
}

}  // namespace wsnlint
