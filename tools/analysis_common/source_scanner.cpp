#include "source_scanner.h"

#include <cctype>
#include <cstddef>

namespace analysis {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when the raw-string 'R' at `pos` carries one of the encoding
// prefixes (u8R, uR, UR, LR) rather than being the tail of an ordinary
// identifier like FooBaR. Returns the index of the prefix's first char in
// `prefix_start` so the caller can blank the whole token.
bool RawStringPrefixAt(const std::string& content, std::size_t pos,
                       std::size_t& prefix_start) {
  prefix_start = pos;
  if (pos == 0) return true;  // bare R" at start of file
  const char before = content[pos - 1];
  if (!IsIdentChar(before)) return true;  // bare R"
  // u8R"
  if (before == '8' && pos >= 2 && content[pos - 2] == 'u' &&
      (pos == 2 || !IsIdentChar(content[pos - 3]))) {
    prefix_start = pos - 2;
    return true;
  }
  // uR" / UR" / LR"
  if ((before == 'u' || before == 'U' || before == 'L') &&
      (pos == 1 || !IsIdentChar(content[pos - 2]))) {
    prefix_start = pos - 1;
    return true;
  }
  return false;
}

}  // namespace

ScanResult ScanSource(const std::string& content) {
  ScanResult result;
  result.code = content;
  std::string& code = result.code;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };

  State state = State::kCode;
  int line = 1;
  bool line_is_preprocessor = false;  // current line starts with '#'
  bool line_seen_code = false;        // any non-ws code char on this line yet
  std::string raw_delim;              // delimiter of the active raw string
  Comment current;                    // comment being accumulated

  auto flush_comment = [&]() {
    result.comments.push_back(current);
    current = Comment{};
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';

    if (c == '\n') {
      ++line;
      if (state == State::kLineComment) {
        flush_comment();
        state = State::kCode;
      } else if (state == State::kBlockComment) {
        current.text += '\n';
      } else if (state == State::kString || state == State::kChar) {
        // Unterminated literal at end of line: recover rather than eat the
        // rest of the file (a syntax error the compiler will report anyway).
        state = State::kCode;
      }
      line_is_preprocessor = false;
      line_seen_code = false;
      continue;
    }

    switch (state) {
      case State::kCode: {
        std::size_t prefix_start = 0;
        if (!line_seen_code && !std::isspace(static_cast<unsigned char>(c))) {
          line_seen_code = true;
          line_is_preprocessor = (c == '#');
        }
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          current.line = line;
          code[i] = ' ';
          code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          current.line = line;
          code[i] = ' ';
          code[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   RawStringPrefixAt(content, i, prefix_start)) {
          // [prefix]R"delim( ... )delim" — delimiters are at most 16 chars
          // and never contain parens, spaces or newlines; stop the scan at
          // any of those so malformed source cannot desynchronise lines.
          raw_delim.clear();
          std::size_t j = i + 2;
          while (j < content.size() && content[j] != '(' &&
                 content[j] != '\n' && content[j] != ' ' &&
                 raw_delim.size() < 16) {
            raw_delim += content[j];
            ++j;
          }
          if (j < content.size() && content[j] == '(') {
            state = State::kRawString;
            for (std::size_t k = prefix_start; k <= j; ++k) code[k] = ' ';
            i = j;  // positioned at '(' (loop ++ moves past it)
          }
          // No '(' found: not a raw string after all; leave it as code.
        } else if (c == '"') {
          if (!line_is_preprocessor) {
            state = State::kString;
            code[i] = ' ';
          }
          // On a preprocessor line (#include "path") the quoted part stays
          // visible: include-based rules match on it.
        } else if (c == '\'') {
          // A ' preceded by an identifier character is a digit separator
          // (1'000'000) or a literal suffix position, not a char literal.
          if (i == 0 || !IsIdentChar(content[i - 1])) {
            state = State::kChar;
            code[i] = ' ';
          }
        }
        break;
      }
      case State::kLineComment:
        current.text += c;
        code[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          flush_comment();
          state = State::kCode;
          code[i] = ' ';
          code[i + 1] = ' ';
          ++i;
        } else {
          current.text += c;
          code[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          code[i] = ' ';
          code[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          code[i] = ' ';
          state = State::kCode;
        } else {
          code[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          code[i] = ' ';
          code[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          code[i] = ' ';
          state = State::kCode;
        } else {
          code[i] = ' ';
        }
        break;
      case State::kRawString: {
        // Look for )delim"
        if (c == ')' &&
            content.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < content.size() &&
            content[i + 1 + raw_delim.size()] == '"') {
          const std::size_t end = i + 1 + raw_delim.size();
          for (std::size_t k = i; k <= end; ++k) code[k] = ' ';
          // The close marker never spans lines (delimiters exclude '\n').
          i = end;
          state = State::kCode;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
      }
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    flush_comment();
  }
  return result;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

}  // namespace analysis
