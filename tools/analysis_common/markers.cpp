#include "markers.h"

#include <algorithm>
#include <regex>
#include <sstream>
#include <tuple>

namespace analysis {
namespace {

std::string Trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitIds(const std::string& ids) {
  std::vector<std::string> out;
  std::stringstream ss(ids);
  std::string id;
  while (std::getline(ss, id, ',')) {
    id = Trim(id);
    if (!id.empty()) out.push_back(id);
  }
  return out;
}

}  // namespace

std::vector<Marker> ParseMarkers(const std::string& tool,
                                 const std::vector<Comment>& comments) {
  std::vector<Marker> markers;
  // <tool>:<verb>            (verb-only, e.g. hot-path)
  // <tool>:<verb>(ids)       (exemption without reason — reported by caller)
  // <tool>:<verb>(ids): why  (full form)
  const std::regex re(tool +
                      R"(:([A-Za-z][A-Za-z0-9\-]*))"
                      R"((\(\s*([A-Za-z0-9_, \-]+?)\s*\))?)"
                      R"(\s*(:\s*(\S.*))?)");
  for (const Comment& comment : comments) {
    for (auto it = std::sregex_iterator(comment.text.begin(),
                                        comment.text.end(), re);
         it != std::sregex_iterator(); ++it) {
      Marker marker;
      marker.line = comment.line;
      marker.verb = (*it)[1].str();
      if ((*it)[2].matched) marker.ids = SplitIds((*it)[3].str());
      marker.has_reason = (*it)[4].matched;
      if (marker.has_reason) marker.reason = Trim((*it)[5].str());
      markers.push_back(std::move(marker));
    }
  }
  return markers;
}

std::vector<Allow> ParseAllows(
    const std::string& tool, const std::string& path,
    const std::vector<Comment>& comments,
    const std::function<bool(const std::string&)>& is_known_rule,
    std::vector<Finding>* out) {
  std::vector<Allow> allows;
  for (const Marker& marker : ParseMarkers(tool, comments)) {
    if (marker.verb != "allow" || marker.ids.empty()) continue;
    for (const std::string& id : marker.ids) {
      if (!is_known_rule(id)) {
        out->push_back({path, marker.line, "allow-directive",
                        "unknown rule id '" + id + "' in " + tool + ":allow"});
        continue;
      }
      if (!marker.has_reason) {
        out->push_back({path, marker.line, "allow-directive",
                        tool + ":allow(" + id +
                            ") needs a one-line justification after ':'"});
      }
      allows.push_back({marker.line, id, marker.has_reason, false});
    }
  }
  return allows;
}

void ApplyAllows(const std::string& tool, const std::string& path,
                 std::vector<Allow>& allows, std::vector<Finding> raw,
                 std::vector<Finding>* out) {
  for (Finding& finding : raw) {
    bool suppressed = false;
    for (Allow& allow : allows) {
      if (allow.rule == finding.rule) {
        allow.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) out->push_back(std::move(finding));
  }
  for (const Allow& allow : allows) {
    if (!allow.used && allow.has_reason) {
      out->push_back({path, allow.line, "allow-directive",
                      "stale " + tool + ":allow(" + allow.rule +
                          "): it suppresses nothing; remove it"});
    }
  }
}

std::string FormatFindings(std::vector<Finding> findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ":" + f.rule + ": " +
           f.message + "\n";
  }
  return out;
}

}  // namespace analysis
