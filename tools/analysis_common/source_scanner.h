// Lexical pre-pass shared by the repo's static-analysis tools (wsnlint and
// wsnstatic): turns a C++ source file into a "code view" where comment and
// string-literal contents are blanked out (replaced by spaces, preserving
// line/column positions) so rule regexes and the structural parser never
// match text inside comments or literals. Comments are collected separately
// so the tools can parse their marker directives (`wsnlint:allow(...)`,
// `wsnstatic:transient(...)`, ...).
//
// This is a token-level scanner, not a parser: it understands //, /* */,
// "..." with escapes, '...' char literals, digit separators (1'000'000),
// and raw strings R"delim(...)delim" including the encoding-prefixed forms
// u8R/uR/UR/LR — enough to be exact about what is code and what is not,
// which is all the rules need.
#pragma once

#include <string>
#include <vector>

namespace analysis {

/// One comment extracted from the source, with the 1-based line where it
/// starts. Block comments spanning multiple lines appear once, at their
/// starting line, with newlines preserved in `text`.
struct Comment {
  int line = 0;
  std::string text;  // contents without the // or /* */ markers
};

/// Result of scanning one file.
struct ScanResult {
  // Same length as the input; comments and string/char-literal contents are
  // replaced by spaces (newlines kept) so byte offsets and line numbers are
  // identical to the original file. Quoted include paths on preprocessor
  // lines are kept verbatim: rules need to see `#include "util/csv.h"`.
  std::string code;
  std::vector<Comment> comments;
};

/// Scans `content` (the raw bytes of a source file).
[[nodiscard]] ScanResult ScanSource(const std::string& content);

/// Splits text into lines (without trailing '\n'). A trailing newline does
/// not produce an extra empty line.
[[nodiscard]] std::vector<std::string> SplitLines(const std::string& text);

}  // namespace analysis
