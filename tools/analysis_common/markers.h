// Marker-directive grammar shared by wsnlint and wsnstatic.
//
// A marker is a comment of the form
//   <tool>:<verb>(<id>[, <id>...]): one-line justification
// with <tool> one of wsnlint/wsnstatic, e.g. an allow(no-wallclock) with a
// one-line reason, or a transient(tracer_) naming a member that is wired
// at attach time rather than snapshotted. (Spelled indirectly here so the
// linters do not read this paragraph as a live directive.)
// The justification after ':' is mandatory for every verb that grants an
// exemption; a marker without one is itself a finding, and an allow that
// suppresses nothing is flagged as stale so escapes cannot rot in place.
//
// This library owns parsing and the allow/stale bookkeeping so both tools
// report identical diagnostics for malformed or stale directives.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "source_scanner.h"

namespace analysis {

/// One analysis finding. `file` is the path as given to the tool (normally
/// repo-relative), `line` is 1-based.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // rule id, e.g. "no-wallclock"
  std::string message;
};

/// One parsed marker directive. `ids` holds the comma-separated arguments
/// with surrounding spaces trimmed; empty arguments are dropped.
struct Marker {
  int line = 0;       // 1-based line of the enclosing comment
  std::string verb;   // e.g. "allow", "transient", "hot-path"
  std::vector<std::string> ids;
  bool has_reason = false;
  std::string reason;  // empty when has_reason is false
};

/// Extracts every `<tool>:<verb>(...)` marker from `comments`. Verb-only
/// markers without an argument list (e.g. `wsnlint:hot-path`) are returned
/// with empty `ids` and no reason requirement implied — callers decide which
/// verbs demand justification.
[[nodiscard]] std::vector<Marker> ParseMarkers(
    const std::string& tool, const std::vector<Comment>& comments);

/// One file-scope allow entry being tracked for staleness.
struct Allow {
  int line = 0;
  std::string rule;
  bool has_reason = false;
  bool used = false;
};

/// Parses `<tool>:allow(rule[, rule...]): reason` directives out of
/// `comments`. Unknown rule ids (per `is_known_rule`) and missing
/// justifications are reported into `out` under the `allow-directive`
/// pseudo-rule, with messages byte-identical to historical wsnlint output.
[[nodiscard]] std::vector<Allow> ParseAllows(
    const std::string& tool, const std::string& path,
    const std::vector<Comment>& comments,
    const std::function<bool(const std::string&)>& is_known_rule,
    std::vector<Finding>* out);

/// Drops findings suppressed by a matching allow (marking it used), then
/// reports any justified-but-unused allow as stale. `raw` is consumed;
/// surviving findings are appended to `out`.
void ApplyAllows(const std::string& tool, const std::string& path,
                 std::vector<Allow>& allows, std::vector<Finding> raw,
                 std::vector<Finding>* out);

/// Formats findings one per line as `file:line:rule-id: message`, sorted by
/// (file, line, rule, message). Byte-stable: golden tests compare this.
[[nodiscard]] std::string FormatFindings(std::vector<Finding> findings);

}  // namespace analysis
