#include "runner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wsnstatic {
namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("wsnstatic: cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string RelativePath(const fs::path& path, const fs::path& root) {
  return fs::relative(path, root).generic_string();
}

std::string JoinIds(const std::vector<std::string>& ids) {
  std::string out;
  for (const std::string& id : ids) {
    if (!out.empty()) out += ", ";
    out += id;
  }
  return out;
}

/// One line per marker directive, with the justification — the reviewable
/// allow-list inventory. Covers wsnstatic markers and wsnlint's, so a PR
/// diff of the artifact shows every new escape in one place.
std::string BuildInventory(const Index& index) {
  std::vector<std::string> lines;
  for (const SourceFile& file : index.files) {
    for (const analysis::Marker& marker : file.markers) {
      lines.push_back(file.path + ":" + std::to_string(marker.line) +
                      ": wsnstatic:" + marker.verb + "(" +
                      JoinIds(marker.ids) + ")" +
                      (marker.has_reason ? ": " + marker.reason : ""));
    }
    for (const analysis::Marker& marker :
         analysis::ParseMarkers("wsnlint", file.scan.comments)) {
      lines.push_back(file.path + ":" + std::to_string(marker.line) +
                      ": wsnlint:" + marker.verb +
                      (marker.ids.empty() ? "" : "(" + JoinIds(marker.ids) +
                                                     ")") +
                      (marker.has_reason ? ": " + marker.reason : ""));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace

bool IsExcluded(const std::string& relative_path) {
  static const std::vector<std::string> kExcludedParts = {
      "lint_fixtures",    // violation corpus for the wsnlint golden test
      "static_fixtures",  // violation corpus for the wsnstatic golden test
      "golden",           // checked-in expected outputs, not code
      ".git",
  };
  for (const std::string& part : kExcludedParts) {
    if (relative_path.find(part) != std::string::npos) return true;
  }
  return relative_path.rfind("build", 0) == 0;
}

RunResult Check(std::vector<std::pair<std::string, std::string>> sources) {
  RunResult result;
  result.files_scanned = static_cast<int>(sources.size());
  const Index index = BuildIndex(std::move(sources));
  result.findings = CheckIndex(index);
  result.inventory = BuildInventory(index);
  return result;
}

RunResult Run(const Options& options) {
  const fs::path root = fs::absolute(options.root);
  std::vector<std::string> roots = options.paths;
  if (roots.empty()) roots = {"src"};

  std::vector<fs::path> files;
  for (const std::string& entry : roots) {
    const fs::path path = root / entry;
    if (fs::is_regular_file(path)) {
      files.push_back(path);
    } else if (fs::is_directory(path)) {
      for (const auto& item : fs::recursive_directory_iterator(path)) {
        if (item.is_regular_file() && HasSourceExtension(item.path())) {
          files.push_back(item.path());
        }
      }
    } else {
      throw std::runtime_error("wsnstatic: no such file or directory: " +
                               path.string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<std::pair<std::string, std::string>> sources;
  for (const fs::path& file : files) {
    const std::string rel = RelativePath(file, root);
    if (IsExcluded(rel)) continue;
    sources.emplace_back(rel, ReadFile(file));
  }
  return Check(std::move(sources));
}

}  // namespace wsnstatic
