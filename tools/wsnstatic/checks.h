// wsnstatic rule families (docs/STATIC_ANALYSIS.md has the catalog).
//
// Four cross-TU semantic checks over the structural Index:
//   snapshot-complete   every member of a SaveState/RestoreState class is
//                       round-tripped or justified wsnstatic:transient
//   serdes-complete     declared serialize/parse pairs
//                       (wsnstatic:serdes(Struct, WriteFn, ReadFn)) cover
//                       every field of the struct
//   hot-path-transitive wsnlint's no-hot-alloc / no-wallclock bans
//                       propagate from wsnlint:hot-path roots through the
//                       call graph instead of stopping at file boundaries
//   lp-isolation        no unjustified mutable static state in files
//                       reachable from Time-Warp, the worker pool, or the
//                       serve/ handlers
//   layer-dag           quoted includes respect the directory layering
//                       util < sim/trace < phy/channel < mac/core < link <
//                       app < node < metrics < experiment/validate < serve
//
// File-scope escapes use `wsnstatic:allow(<rule-id>): reason` with the same
// grammar, justification requirement, and stale detection as wsnlint
// (tools/analysis_common/markers.h).
#pragma once

#include <string>
#include <vector>

#include "index.h"
#include "markers.h"

namespace wsnstatic {

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// All registered rules, in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& Rules();

/// True if `id` names a registered rule.
[[nodiscard]] bool IsKnownRule(const std::string& id);

/// One named upward edge tolerated by the layer-dag rule.
struct LayerEscape {
  std::string from_dir;
  std::string to_dir;
  std::string reason;
};

/// The reviewed escape-hatch table (empty entries mean the DAG is strict).
[[nodiscard]] const std::vector<LayerEscape>& LayerEscapes();

/// Runs every rule family over the index. File-scope `wsnstatic:allow`
/// directives are applied per file; directive problems (unknown rule id,
/// missing justification, stale allow/transient) are themselves findings.
[[nodiscard]] std::vector<analysis::Finding> CheckIndex(const Index& index);

}  // namespace wsnstatic
