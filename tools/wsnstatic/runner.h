// Filesystem driver for wsnstatic: walks the requested directories, builds
// the cross-TU Index, and runs the rule families. Kept separate from
// checks.cpp so tests can analyze in-memory file sets without touching
// disk and so the CLI stays a thin shell.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "checks.h"
#include "index.h"

namespace wsnstatic {

struct Options {
  // Directory all reported paths are made relative to (and that `paths`
  // are resolved against). Defaults to the current working directory.
  std::string root = ".";
  // Files or directories to analyze, relative to `root`. Directories are
  // walked recursively for .h/.cpp/.cc files. Empty means the default
  // scan set: src (cross-TU analysis needs the whole tree at once, so the
  // default is the full simulator source).
  std::vector<std::string> paths;
};

struct RunResult {
  std::vector<analysis::Finding> findings;
  int files_scanned = 0;
  // Sorted marker inventory (wsnstatic:* plus wsnlint:allow/hot-path),
  // one per line with reasons — CI publishes this as the review artifact.
  std::string inventory;
};

/// True if `relative_path` is excluded from scanning (fixture corpora,
/// golden files, build trees, version-control internals).
[[nodiscard]] bool IsExcluded(const std::string& relative_path);

/// Analyzes an in-memory file set (exposed for tests/mutation drills).
[[nodiscard]] RunResult Check(
    std::vector<std::pair<std::string, std::string>> sources);

/// Walks the filesystem and analyzes every matching file.
/// Throws std::runtime_error when a requested path does not exist.
[[nodiscard]] RunResult Run(const Options& options);

}  // namespace wsnstatic
