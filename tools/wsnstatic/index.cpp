#include "index.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <tuple>
#include <utility>

namespace wsnstatic {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Words that can never be a function/callee name.
bool IsKeyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",     "switch",   "catch",
      "return",   "do",       "else",      "new",      "delete",
      "throw",    "case",     "goto",      "sizeof",   "alignof",
      "default",  "co_await", "co_return", "co_yield", "constexpr",
      "decltype", "typeid",   "assert",    "void",     "const",
  };
  return kKeywords.count(word) != 0;
}

// Words that mark a statement head as control flow / expression, never a
// declaration. Decl specifiers (static, inline, constexpr, virtual, ...)
// are deliberately absent: they appear in legitimate definition heads.
bool IsStatementKeyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "if",   "for",   "while", "switch", "catch", "return", "do",
      "else", "throw", "case",  "goto",   "new",   "delete",
  };
  return kKeywords.count(word) != 0;
}

std::string Trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

/// Strips leading access labels (`public:` ...) and `[[...]]` attributes —
/// both are noise for statement classification.
std::string StripLabelsAndAttributes(std::string head) {
  static const std::regex kLabel(R"(^\s*(public|private|protected)\s*:)");
  static const std::regex kAttribute(R"(\[\[[^\]]*\]\])");
  std::string out = std::regex_replace(head, kAttribute, " ");
  std::smatch match;
  while (std::regex_search(out, match, kLabel)) {
    out = out.substr(static_cast<std::size_t>(match.length(0)));
  }
  return Trim(out);
}

std::vector<std::string> Tokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

/// The (possibly `Class::`-qualified) identifier whose last character sits
/// at `end` (exclusive) in `text`; empty when that position is not an
/// identifier end.
std::string QualifiedNameEndingAt(const std::string& text, std::size_t end) {
  std::size_t begin = end;
  while (begin > 0 && IsIdentChar(text[begin - 1])) --begin;
  if (begin == end) return "";
  std::string name = text.substr(begin, end - begin);
  while (begin >= 2 && text[begin - 1] == ':' && text[begin - 2] == ':') {
    std::size_t qual_end = begin - 2;
    std::size_t qual_begin = qual_end;
    while (qual_begin > 0 && IsIdentChar(text[qual_begin - 1])) --qual_begin;
    if (qual_begin == qual_end) break;
    name = text.substr(qual_begin, qual_end - qual_begin) + "::" + name;
    begin = qual_begin;
  }
  if (begin > 0 && text[begin - 1] == '~') name = "~" + name;
  return name;
}

/// Decides whether `head` (the statement text before a `{`) is a function
/// definition. On success fills `name`/`class_name` and returns true.
bool ClassifyFunctionHead(const std::string& head,
                          const std::string& enclosing_class,
                          std::string* name, std::string* class_name) {
  const std::size_t paren = head.find('(');
  if (paren == std::string::npos) return false;
  const std::string prefix = head.substr(0, paren);
  // Assignments, member-call expressions, lambda intros, and array
  // declarators are never function heads.
  if (prefix.find('=') != std::string::npos) return false;
  if (prefix.find('.') != std::string::npos) return false;
  if (prefix.find("->") != std::string::npos) return false;
  if (prefix.find('[') != std::string::npos) return false;

  std::size_t trimmed_end = prefix.size();
  while (trimmed_end > 0 &&
         std::isspace(static_cast<unsigned char>(prefix[trimmed_end - 1]))) {
    --trimmed_end;
  }
  const std::string qualified = QualifiedNameEndingAt(prefix, trimmed_end);
  if (qualified.empty()) return false;

  std::string unqualified = qualified;
  std::string qualifier;
  const std::size_t sep = qualified.rfind("::");
  if (sep != std::string::npos) {
    unqualified = qualified.substr(sep + 2);
    const std::size_t prev = qualified.rfind("::", sep - 1);
    qualifier = prev == std::string::npos
                    ? qualified.substr(0, sep)
                    : qualified.substr(prev + 2, sep - prev - 2);
  }
  // Destructors carry no state logic worth indexing.
  if (unqualified.empty() || unqualified[0] == '~') return false;
  if (IsKeyword(unqualified)) return false;
  for (const std::string& token : Tokens(prefix)) {
    if (IsStatementKeyword(token)) return false;
  }

  // A bare unqualified name with no return type is a call expression —
  // except a constructor defined inside its own class.
  const std::vector<std::string> tokens = Tokens(prefix);
  const bool qualified_name = qualified.find("::") != std::string::npos;
  if (tokens.size() < 2 && !qualified_name && unqualified != enclosing_class) {
    return false;
  }

  // The parameter list must close before the brace, and only trailer
  // tokens (cv/ref/noexcept/override/final), a trailing return type, or a
  // constructor init list may follow it.
  int depth = 0;
  std::size_t close = std::string::npos;
  for (std::size_t i = paren; i < head.size(); ++i) {
    if (head[i] == '(') ++depth;
    if (head[i] == ')' && --depth == 0) {
      close = i;
      break;
    }
  }
  if (close == std::string::npos) return false;
  const std::string trailer = Trim(head.substr(close + 1));
  static const std::regex kTrailer(
      R"(^((const|noexcept|override|final|mutable|try|&|&&)\s*)*(->.*|:.*)?$)");
  if (!std::regex_match(trailer, kTrailer)) return false;

  *name = unqualified;
  *class_name = qualifier.empty() ? enclosing_class : qualifier;
  return true;
}

/// First `=` that is a member initializer: not part of ==, <=, >=, !=,
/// and not nested in parentheses (a method declaration's default argument
/// or `= 0` pure-virtual marker after the parameter list's close paren is
/// handled by the caller's ends-with-`)` method test).
std::size_t FindInitializerEq(const std::string& text) {
  int paren_depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(') ++paren_depth;
    if (c == ')' && paren_depth > 0) --paren_depth;
    if (c != '=' || paren_depth > 0) continue;
    const char prev = i > 0 ? text[i - 1] : '\0';
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (prev == '=' || prev == '<' || prev == '>' || prev == '!' ||
        next == '=') {
      continue;
    }
    return i;
  }
  return std::string::npos;
}

/// Parses one `;`-terminated statement at class scope into a member or a
/// declared method name.
void ParseClassStatement(const std::string& raw_head, int line,
                         ClassInfo* cls) {
  const std::string head = StripLabelsAndAttributes(raw_head);
  if (head.empty()) return;
  std::string decl = head;
  const std::size_t eq = FindInitializerEq(decl);
  if (eq != std::string::npos) decl = Trim(decl.substr(0, eq));
  if (decl.empty()) return;

  const std::vector<std::string> tokens = Tokens(decl);
  if (tokens.empty()) return;
  static const std::set<std::string> kSkipLead = {
      "using", "typedef", "friend", "static", "template", "enum",
      "class",  "struct",  "union",  "operator"};
  if (kSkipLead.count(tokens.front()) != 0) return;

  // A declaration ending in `)` (after trailing cv/virt specifiers) is a
  // method declaration; one ending in an identifier is a data member even
  // when its type spells parentheses (std::function<void(int)> cb_).
  std::string tail = decl;
  static const std::regex kTrailingSpecifier(
      R"(\s*(const|noexcept|override|final|= 0)\s*$)");
  for (int pass = 0; pass < 4; ++pass) {
    tail = std::regex_replace(tail, kTrailingSpecifier, "");
  }
  if (!tail.empty() && tail.back() == ')') {
    int depth = 0;
    std::size_t open = std::string::npos;
    for (std::size_t i = tail.size(); i-- > 0;) {
      if (tail[i] == ')') ++depth;
      if (tail[i] == '(' && --depth == 0) {
        open = i;
        break;
      }
    }
    if (open != std::string::npos) {
      std::size_t end = open;
      while (end > 0 &&
             std::isspace(static_cast<unsigned char>(tail[end - 1]))) {
        --end;
      }
      const std::string name = QualifiedNameEndingAt(tail, end);
      if (!name.empty() && name.find("::") == std::string::npos &&
          name[0] != '~' && !IsKeyword(name)) {
        cls->method_names.push_back(name);
      }
    }
    return;
  }
  // Reference members bind in the constructor and cannot be reseated;
  // const/mutable members are configuration or synchronization, not
  // logical state — none of them belong in a snapshot.
  if (decl.find('&') != std::string::npos) return;
  if (tokens.front() == "const" || tokens.front() == "mutable") return;

  std::string last = tokens.back();
  const std::size_t bracket = last.find('[');
  if (bracket != std::string::npos) last = last.substr(0, bracket);
  while (!last.empty() && (last.back() == ';' || last.back() == ':')) {
    last.pop_back();
  }
  if (last.empty() || !IsIdentChar(last[0]) ||
      std::isdigit(static_cast<unsigned char>(last[0])) || IsKeyword(last)) {
    return;
  }
  for (const char c : last) {
    if (!IsIdentChar(c)) return;
  }
  if (tokens.size() < 2) return;  // a lone identifier is not a declaration
  cls->members.push_back({last, line});
}

/// Extracts unqualified callee names from a function body (blanked code).
std::vector<std::string> ExtractCalls(const std::string& body) {
  std::vector<std::string> calls;
  static const std::regex kCall(R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kCall);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (IsKeyword(name)) continue;
    // Resolve the qualifier chain; std:: calls never resolve to repo code.
    std::size_t begin = static_cast<std::size_t>(it->position(1));
    std::string root;
    while (begin >= 2 && body[begin - 1] == ':' && body[begin - 2] == ':') {
      std::size_t qual_end = begin - 2;
      std::size_t qual_begin = qual_end;
      while (qual_begin > 0 && IsIdentChar(body[qual_begin - 1])) {
        --qual_begin;
      }
      if (qual_begin == qual_end) break;
      root = body.substr(qual_begin, qual_end - qual_begin);
      begin = qual_begin;
    }
    if (root == "std") continue;
    calls.push_back(name);
  }
  std::sort(calls.begin(), calls.end());
  calls.erase(std::unique(calls.begin(), calls.end()), calls.end());
  return calls;
}

enum class ScopeKind { kNamespace, kClass, kFunction, kOther };

struct Scope {
  ScopeKind kind = ScopeKind::kOther;
  std::size_t class_index = 0;     // into out->classes, for kClass
  std::size_t function_index = 0;  // into out->functions, for kFunction
  std::string carried_head;        // restored on pop, for kOther
};

void ParseStructure(SourceFile* file, Index* out) {
  const std::string& code = file->scan.code;
  std::vector<Scope> scopes;
  std::string head;
  int line = 1;
  int head_line = 1;

  const auto enclosing_class = [&]() -> ClassInfo* {
    if (!scopes.empty() && scopes.back().kind == ScopeKind::kClass) {
      return &out->classes[scopes.back().class_index];
    }
    return nullptr;
  };

  static const std::regex kNamespaceHead(R"(^namespace\b)");
  static const std::regex kClassHead(
      R"(^(template\s*<[^;{]*>\s*)?(class|struct|union)\s+([A-Za-z_][A-Za-z0-9_]*))");

  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '\n') ++line;
    if (c == '{') {
      const std::string statement = StripLabelsAndAttributes(head);
      Scope scope;
      std::smatch match;
      std::string name;
      std::string class_name;
      if (std::regex_search(statement, kNamespaceHead)) {
        scope.kind = ScopeKind::kNamespace;
      } else if (std::regex_search(statement, match, kClassHead) &&
                 statement.find('(') == std::string::npos) {
        scope.kind = ScopeKind::kClass;
        scope.class_index = out->classes.size();
        out->classes.push_back({match[3].str(), file->path, head_line, {}, {}});
      } else if (ClassifyFunctionHead(
                     statement,
                     enclosing_class() ? enclosing_class()->name : "", &name,
                     &class_name)) {
        if (ClassInfo* cls = enclosing_class()) {
          cls->method_names.push_back(name);
        }
        scope.kind = ScopeKind::kFunction;
        scope.function_index = out->functions.size();
        out->functions.push_back(
            {name, class_name, file->path, head_line, i + 1, i + 1, {}});
      } else {
        scope.kind = ScopeKind::kOther;
        scope.carried_head = head;
      }
      scopes.push_back(std::move(scope));
      head.clear();
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) {
        const Scope& top = scopes.back();
        if (top.kind == ScopeKind::kFunction) {
          out->functions[top.function_index].body_end = i;
          head.clear();
        } else if (top.kind == ScopeKind::kOther) {
          head = top.carried_head;  // brace-init member: keep the decl text
        } else {
          head.clear();
        }
        scopes.pop_back();
      } else {
        head.clear();
      }
      continue;
    }
    if (c == ';') {
      if (ClassInfo* cls = enclosing_class()) {
        ParseClassStatement(head, head_line, cls);
      }
      head.clear();
      continue;
    }
    if (head.empty() && !std::isspace(static_cast<unsigned char>(c))) {
      head_line = line;
    }
    if (!std::isspace(static_cast<unsigned char>(c)) || !head.empty()) {
      head += c == '\n' ? ' ' : c;
    }
  }
}

}  // namespace

const SourceFile* Index::FileByPath(const std::string& path) const {
  for (const SourceFile& file : files) {
    if (file.path == path) return &file;
  }
  return nullptr;
}

std::vector<const ClassInfo*> Index::ClassesNamed(
    const std::string& name) const {
  std::vector<const ClassInfo*> out;
  for (const ClassInfo& cls : classes) {
    if (cls.name == name) out.push_back(&cls);
  }
  return out;
}

std::vector<const FunctionInfo*> Index::FunctionsNamed(
    const std::string& name) const {
  std::vector<const FunctionInfo*> out;
  for (const FunctionInfo& fn : functions) {
    if (fn.name == name) out.push_back(&fn);
  }
  return out;
}

const FunctionInfo* Index::Method(const std::string& class_name,
                                  const std::string& name) const {
  for (const FunctionInfo& fn : functions) {
    if (fn.class_name == class_name && fn.name == name) return &fn;
  }
  return nullptr;
}

int Index::LineOf(const SourceFile& file, std::size_t offset) {
  int line = 1;
  const std::size_t end = std::min(offset, file.scan.code.size());
  for (std::size_t i = 0; i < end; ++i) {
    if (file.scan.code[i] == '\n') ++line;
  }
  return line;
}

Index BuildIndex(std::vector<std::pair<std::string, std::string>> sources) {
  Index index;
  std::sort(sources.begin(), sources.end());
  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  for (auto& [path, content] : sources) {
    SourceFile file;
    file.path = path;
    file.content = std::move(content);
    file.scan = analysis::ScanSource(file.content);
    file.code_lines = analysis::SplitLines(file.scan.code);
    file.markers = analysis::ParseMarkers("wsnstatic", file.scan.comments);
    for (const analysis::Comment& comment : file.scan.comments) {
      if (comment.text.find("wsnlint:hot-path") != std::string::npos) {
        file.hot_path = true;
      }
    }
    std::smatch match;
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
      if (std::regex_search(file.code_lines[i], match, kInclude)) {
        file.includes.push_back({match[1].str(), static_cast<int>(i) + 1});
      }
    }
    index.files.push_back(std::move(file));
  }
  for (SourceFile& file : index.files) {
    ParseStructure(&file, &index);
  }
  for (FunctionInfo& fn : index.functions) {
    const SourceFile* file = index.FileByPath(fn.file);
    if (fn.body_end > fn.body_begin) {
      fn.calls = ExtractCalls(
          file->scan.code.substr(fn.body_begin, fn.body_end - fn.body_begin));
    }
  }
  std::sort(index.classes.begin(), index.classes.end(),
            [](const ClassInfo& a, const ClassInfo& b) {
              return std::tie(a.name, a.file, a.line) <
                     std::tie(b.name, b.file, b.line);
            });
  std::sort(index.functions.begin(), index.functions.end(),
            [](const FunctionInfo& a, const FunctionInfo& b) {
              return std::tie(a.class_name, a.name, a.file, a.line) <
                     std::tie(b.class_name, b.name, b.file, b.line);
            });
  return index;
}

}  // namespace wsnstatic
