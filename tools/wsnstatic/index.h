// Cross-translation-unit structural index for wsnstatic.
//
// Where wsnlint (tools/wsnlint) is a per-file token linter, wsnstatic needs
// *structure*: which classes exist, what data members they declare, which
// functions are defined where (including out-of-line `Class::Method`
// bodies), what each body calls, and what each file includes. This header
// defines that index; index.cpp builds it from the blanked code view
// produced by analysis::ScanSource, with a brace/paren-matching statement
// walker — still no libclang, so the analyzer builds anywhere the simulator
// does.
//
// The parse is deliberately conservative and convention-driven (the repo is
// clang-format'd Google style): depth-1 member declarations, functions
// recognised by `head(...) {` shape, calls matched by unqualified name.
// Over-approximation is fine — every consumer treats a match as "possibly
// the same entity" and errs toward checking more, never less.
#pragma once

#include <string>
#include <vector>

#include "markers.h"
#include "source_scanner.h"

namespace wsnstatic {

/// One quoted include directive (`#include "dir/file.h"`).
struct Include {
  std::string target;  // include path as written, '/'-separated
  int line = 0;        // 1-based
};

/// One data member declaration. Only per-instance mutable state is
/// recorded: `static`, `const`, `mutable`, and reference members are
/// skipped (they cannot or need not round-trip through a snapshot).
struct Member {
  std::string name;
  int line = 0;
};

/// One class/struct declaration (nested types get their own entry).
struct ClassInfo {
  std::string name;  // unqualified
  std::string file;
  int line = 0;
  std::vector<Member> members;
  std::vector<std::string> method_names;  // declared or defined in-class
};

/// One function *definition* (a body was found).
struct FunctionInfo {
  std::string name;        // unqualified, e.g. "SaveState"
  std::string class_name;  // enclosing/qualifying class; "" = free function
  std::string file;
  int line = 0;                     // 1-based line of the body's open brace
  std::size_t body_begin = 0;       // offsets into the file's blanked code
  std::size_t body_end = 0;         // [begin, end) excludes the braces
  std::vector<std::string> calls;   // unqualified callee names, sorted+deduped
};

/// One analyzed source file.
struct SourceFile {
  std::string path;  // repo-relative, '/'-separated
  std::string content;
  analysis::ScanResult scan;
  std::vector<std::string> code_lines;       // SplitLines(scan.code)
  std::vector<analysis::Marker> markers;     // wsnstatic:* directives
  bool hot_path = false;                     // carries wsnlint:hot-path
  std::vector<Include> includes;
};

/// The whole-tree index. Vectors are sorted (files by path, classes by
/// (name, file), functions by (class_name, name, file, line)) so every
/// traversal — and therefore every report — is deterministic.
struct Index {
  std::vector<SourceFile> files;
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> functions;

  [[nodiscard]] const SourceFile* FileByPath(const std::string& path) const;
  /// All classes with the given unqualified name.
  [[nodiscard]] std::vector<const ClassInfo*> ClassesNamed(
      const std::string& name) const;
  /// All function definitions with the given unqualified name.
  [[nodiscard]] std::vector<const FunctionInfo*> FunctionsNamed(
      const std::string& name) const;
  /// The definition of `class_name::name`, or nullptr. When several exist
  /// (overloads), the first in index order is returned.
  [[nodiscard]] const FunctionInfo* Method(const std::string& class_name,
                                           const std::string& name) const;
  /// 1-based line of byte `offset` within `file`'s code view.
  [[nodiscard]] static int LineOf(const SourceFile& file, std::size_t offset);
};

/// Builds the index from (path, content) pairs.
[[nodiscard]] Index BuildIndex(
    std::vector<std::pair<std::string, std::string>> sources);

}  // namespace wsnstatic
