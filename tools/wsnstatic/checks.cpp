#include "checks.h"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <utility>

namespace wsnstatic {
namespace {

using analysis::Finding;

std::string Qualified(const FunctionInfo& fn) {
  return fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
}

std::string BodyText(const Index& index, const FunctionInfo& fn) {
  const SourceFile* file = index.FileByPath(fn.file);
  if (!file || fn.body_end <= fn.body_begin) return "";
  return file->scan.code.substr(fn.body_begin, fn.body_end - fn.body_begin);
}

bool MentionsWord(const std::string& text, const std::string& word) {
  return std::regex_search(text, std::regex("\\b" + word + "\\b"));
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// --- transient / serdes marker bookkeeping ----------------------------------

struct TransientEntry {
  std::string id;
  int line = 0;
  bool has_reason = false;
  bool matched = false;  // names a member of some checked type in its file
  bool used = false;     // actually exempted a would-be finding
};

using TransientMap = std::map<std::string, std::vector<TransientEntry>>;

TransientMap CollectTransients(const Index& index, std::vector<Finding>* out) {
  TransientMap map;
  for (const SourceFile& file : index.files) {
    for (const analysis::Marker& marker : file.markers) {
      if (marker.verb != "transient") continue;
      if (marker.ids.empty()) {
        out->push_back({file.path, marker.line, "marker-directive",
                        "wsnstatic:transient needs at least one member name"});
        continue;
      }
      for (const std::string& id : marker.ids) {
        if (!marker.has_reason) {
          out->push_back({file.path, marker.line, "marker-directive",
                          "wsnstatic:transient(" + id +
                              ") needs a one-line justification after ':'"});
        }
        map[file.path].push_back(
            {id, marker.line, marker.has_reason, false, false});
      }
    }
  }
  return map;
}

/// Finds the transient entry for `member` in `file`, if any, marking it
/// matched (and used when `use` is set).
TransientEntry* LookupTransient(TransientMap& map, const std::string& file,
                                const std::string& member, bool use) {
  auto it = map.find(file);
  if (it == map.end()) return nullptr;
  for (TransientEntry& entry : it->second) {
    if (entry.id == member) {
      entry.matched = true;
      if (use) entry.used = true;
      return &entry;
    }
  }
  return nullptr;
}

/// Shared core of snapshot-complete and serdes-complete: every member of
/// `cls` must be mentioned in both bodies or carry a transient marker in
/// the class's own file.
void CheckRoundTrip(const ClassInfo& cls, const std::string& save_body,
                    const std::string& restore_body,
                    const std::string& save_name,
                    const std::string& restore_name, const std::string& rule,
                    const std::string& what, TransientMap& transients,
                    std::vector<Finding>* out) {
  for (const Member& member : cls.members) {
    const bool saved = MentionsWord(save_body, member.name);
    const bool restored = MentionsWord(restore_body, member.name);
    if (saved && restored) {
      LookupTransient(transients, cls.file, member.name, /*use=*/false);
      continue;
    }
    if (LookupTransient(transients, cls.file, member.name, /*use=*/true)) {
      continue;
    }
    std::string problem;
    if (!saved && !restored) {
      problem = "is not round-tripped by '" + save_name + "'/'" +
                restore_name + "'";
    } else if (!saved) {
      problem = "is not written by '" + save_name + "'";
    } else {
      problem = "is not read back by '" + restore_name + "'";
    }
    out->push_back({cls.file, member.line, rule,
                    what + " '" + member.name + "' of '" + cls.name + "' " +
                        problem +
                        "; round-trip it or mark it wsnstatic:transient "
                        "with a reason"});
  }
}

// --- family 1: snapshot-completeness ----------------------------------------

void CheckSnapshots(const Index& index, TransientMap& transients,
                    std::vector<Finding>* out) {
  static const std::vector<std::pair<std::string, std::string>> kPairs = {
      {"SaveState", "RestoreState"},
      {"Snapshot", "Restore"},
  };
  for (const ClassInfo& cls : index.classes) {
    for (const auto& [save_name, restore_name] : kPairs) {
      const bool declares_pair =
          std::count(cls.method_names.begin(), cls.method_names.end(),
                     save_name) > 0 &&
          std::count(cls.method_names.begin(), cls.method_names.end(),
                     restore_name) > 0;
      if (!declares_pair) continue;
      const FunctionInfo* save = index.Method(cls.name, save_name);
      const FunctionInfo* restore = index.Method(cls.name, restore_name);
      if (!save || !restore) break;  // defined outside the scanned tree
      const std::string save_body = BodyText(index, *save);
      const std::string restore_body = BodyText(index, *restore);
      // Pure-interface defaults (e.g. the Mac base class's empty no-op
      // virtuals) are not state carriers; subclasses are checked directly.
      static const std::regex kBlank(R"(^[\s]*$)");
      if (std::regex_match(save_body, kBlank) &&
          std::regex_match(restore_body, kBlank)) {
        break;
      }
      CheckRoundTrip(cls, save_body, restore_body, save_name, restore_name,
                     "snapshot-complete", "member", transients, out);
      break;
    }
  }
}

// --- family 1b: declared serialize/parse mirrors ----------------------------

void CheckSerdes(const Index& index, TransientMap& transients,
                 std::vector<Finding>* out) {
  for (const SourceFile& file : index.files) {
    for (const analysis::Marker& marker : file.markers) {
      if (marker.verb != "serdes") continue;
      if (marker.ids.size() != 3) {
        out->push_back(
            {file.path, marker.line, "marker-directive",
             "wsnstatic:serdes needs exactly (Struct, WriteFn, ReadFn)"});
        continue;
      }
      const std::string& struct_name = marker.ids[0];
      const auto resolve_fn =
          [&](const std::string& name) -> const FunctionInfo* {
        const FunctionInfo* fallback = nullptr;
        for (const FunctionInfo* fn : index.FunctionsNamed(name)) {
          if (fn->file == file.path) return fn;
          if (!fallback) fallback = fn;
        }
        return fallback;
      };
      const ClassInfo* cls = nullptr;
      for (const ClassInfo* candidate : index.ClassesNamed(struct_name)) {
        cls = candidate;
        if (candidate->file == file.path) break;
      }
      const FunctionInfo* write_fn = resolve_fn(marker.ids[1]);
      const FunctionInfo* read_fn = resolve_fn(marker.ids[2]);
      if (!cls || !write_fn || !read_fn) {
        const std::string missing =
            !cls ? "struct '" + struct_name + "'"
                 : "function '" + (!write_fn ? marker.ids[1] : marker.ids[2]) +
                       "'";
        out->push_back({file.path, marker.line, "marker-directive",
                        "wsnstatic:serdes(" + struct_name +
                            ") cannot resolve " + missing +
                            " in the scanned tree"});
        continue;
      }
      CheckRoundTrip(*cls, BodyText(index, *write_fn),
                     BodyText(index, *read_fn), Qualified(*write_fn),
                     Qualified(*read_fn), "serdes-complete", "field",
                     transients, out);
    }
  }
}

// --- family 2: transitive hot-path purity -----------------------------------

void CheckHotPaths(const Index& index, std::vector<Finding>* out) {
  // Roots: every function defined in a wsnlint:hot-path file. wsnlint
  // already polices those files token-by-token; this rule follows calls
  // out of them, matching callees by unqualified name (a deliberate
  // over-approximation: a shared name means the body may run hot).
  std::vector<std::size_t> worklist;
  std::vector<std::string> origin(index.functions.size());
  std::vector<bool> visited(index.functions.size(), false);
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    const SourceFile* file = index.FileByPath(index.functions[i].file);
    if (file && file->hot_path) {
      visited[i] = true;
      origin[i] = Qualified(index.functions[i]);
      worklist.push_back(i);
    }
  }
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    by_name[index.functions[i].name].push_back(i);
  }
  for (std::size_t head = 0; head < worklist.size(); ++head) {
    const std::size_t fn_index = worklist[head];
    for (const std::string& callee : index.functions[fn_index].calls) {
      const auto it = by_name.find(callee);
      if (it == by_name.end()) continue;
      for (const std::size_t next : it->second) {
        if (visited[next]) continue;
        visited[next] = true;
        origin[next] = origin[fn_index];
        worklist.push_back(next);
      }
    }
  }

  static const std::regex kHeapCall(
      R"(\bmake_(unique|shared)\s*<|\b(malloc|calloc|realloc|strdup)\s*\()");
  static const std::regex kNew(R"(\bnew\b)");
  static const std::regex kOperatorPrefix(R"(operator\s*$)");
  static const std::regex kWallclock(
      R"((\bstd::rand\b|\bsrand\s*\(|\brand\s*\(|\brandom_device\b)"
      R"(|\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b)"
      R"(|\bgettimeofday\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\))"
      R"(|\bclock\s*\(\s*\)))");

  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    if (!visited[i]) continue;
    const FunctionInfo& fn = index.functions[i];
    const SourceFile* file = index.FileByPath(fn.file);
    if (!file || file->hot_path) continue;  // roots are wsnlint's job
    const std::string body = BodyText(index, fn);
    const std::vector<std::string> lines = analysis::SplitLines(body);
    const int first_line = Index::LineOf(*file, fn.body_begin);
    for (std::size_t l = 0; l < lines.size(); ++l) {
      const std::string& line = lines[l];
      bool heap = std::regex_search(line, kHeapCall);
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kNew);
           !heap && it != std::sregex_iterator(); ++it) {
        const std::size_t pos = static_cast<std::size_t>(it->position());
        if (std::regex_search(line.substr(0, pos), kOperatorPrefix)) continue;
        std::size_t after = pos + 3;
        while (after < line.size() && line[after] == ' ') ++after;
        if (after < line.size() && line[after] == '(') continue;  // placement
        heap = true;
      }
      if (heap) {
        out->push_back(
            {fn.file, first_line + static_cast<int>(l), "hot-path-transitive",
             "heap allocation in '" + Qualified(fn) +
                 "', reachable from wsnlint:hot-path root '" + origin[i] +
                 "'; the per-config inner loop runs allocation-free — build "
                 "into arena/scratch storage or hoist to setup"});
      }
      if (std::regex_search(line, kWallclock)) {
        out->push_back(
            {fn.file, first_line + static_cast<int>(l), "hot-path-transitive",
             "wall-clock/ambient entropy in '" + Qualified(fn) +
                 "', reachable from wsnlint:hot-path root '" + origin[i] +
                 "'; draw from the seeded util::Rng lineage"});
      }
    }
  }
}

// --- family 3: LP isolation ---------------------------------------------------

bool IsLpRoot(const std::string& path) {
  return EndsWith(path, "node/timewarp.cpp") ||
         EndsWith(path, "util/thread_pool.cpp") ||
         EndsWith(path, "experiment/sweep.cpp") ||
         path.find("serve/") != std::string::npos;
}

void CheckLpIsolation(const Index& index, std::vector<Finding>* out) {
  // Reachability over the include graph, with each header pulling in its
  // same-basename implementation file (calling through the header runs the
  // .cpp). Roots are the concurrent execution entries: the Time-Warp
  // engine, the shared worker pool, the sweep worker body, and serve/.
  std::map<std::string, std::size_t> by_path;
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    by_path[index.files[i].path] = i;
  }
  const auto resolve = [&](const std::string& target) -> std::size_t {
    auto it = by_path.find(target);
    if (it == by_path.end()) it = by_path.find("src/" + target);
    return it == by_path.end() ? index.files.size() : it->second;
  };

  std::vector<bool> reachable(index.files.size(), false);
  std::vector<std::string> origin(index.files.size());
  std::vector<std::size_t> worklist;
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    if (IsLpRoot(index.files[i].path)) {
      reachable[i] = true;
      origin[i] = index.files[i].path;
      worklist.push_back(i);
    }
  }
  const auto visit = [&](std::size_t next, const std::string& from) {
    if (next >= index.files.size() || reachable[next]) return;
    reachable[next] = true;
    origin[next] = from;
    worklist.push_back(next);
  };
  for (std::size_t head = 0; head < worklist.size(); ++head) {
    const std::size_t file_index = worklist[head];
    const SourceFile& file = index.files[file_index];
    for (const Include& include : file.includes) {
      visit(resolve(include.target), origin[file_index]);
    }
    if (EndsWith(file.path, ".h")) {
      visit(resolve(file.path.substr(0, file.path.size() - 2) + ".cpp"),
            origin[file_index]);
    }
  }

  static const std::regex kStaticHead(R"(^\s*(static|thread_local)\b)");
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    if (!reachable[i]) continue;
    const SourceFile& file = index.files[i];
    if (!EndsWith(file.path, ".cpp") && !EndsWith(file.path, ".cc")) continue;
    for (std::size_t l = 0; l < file.code_lines.size(); ++l) {
      if (!std::regex_search(file.code_lines[l], kStaticHead)) continue;
      // Gather the whole statement (may span lines).
      std::string statement = file.code_lines[l];
      std::size_t end = l;
      while (statement.find(';') == std::string::npos &&
             statement.find('{') == std::string::npos &&
             end + 1 < file.code_lines.size()) {
        statement += " " + file.code_lines[++end];
      }
      // Immutable state is fine; so are function declarations/definitions.
      static const std::regex kImmutable(
          R"(\b(constexpr|consteval)\b|\b(static|thread_local)\s+const\b)");
      if (std::regex_search(statement, kImmutable)) continue;
      const std::size_t paren = statement.find('(');
      if (paren != std::string::npos) {
        int depth = 0;
        std::size_t close = std::string::npos;
        for (std::size_t p = paren; p < statement.size(); ++p) {
          if (statement[p] == '(') ++depth;
          if (statement[p] == ')' && --depth == 0) {
            close = p;
            break;
          }
        }
        if (close == std::string::npos) continue;  // malformed; bail out
        const std::string args =
            statement.substr(paren + 1, close - paren - 1);
        const std::string after = statement.substr(close + 1);
        const bool is_function =
            args.find_first_not_of(" \t") == std::string::npos ||
            after.find('{') != std::string::npos;
        if (is_function) continue;
      }
      // The declared name: last identifier before the first of `=(;{`.
      std::size_t name_end = statement.find_first_of("=({;");
      if (name_end == std::string::npos) name_end = statement.size();
      while (name_end > 0 && !(std::isalnum(static_cast<unsigned char>(
                                   statement[name_end - 1])) ||
                               statement[name_end - 1] == '_')) {
        --name_end;
      }
      std::size_t name_begin = name_end;
      while (name_begin > 0 &&
             (std::isalnum(
                  static_cast<unsigned char>(statement[name_begin - 1])) ||
              statement[name_begin - 1] == '_')) {
        --name_begin;
      }
      const std::string name =
          statement.substr(name_begin, name_end - name_begin);
      if (name.empty()) continue;
      out->push_back(
          {file.path, static_cast<int>(l) + 1, "lp-isolation",
           "mutable static '" + name + "' in a file reachable from '" +
               origin[i] +
               "'; state shared across logical processes breaks Time-Warp "
               "rollback isolation — keep it per-LP or justify with "
               "wsnstatic:allow(lp-isolation)"});
    }
  }
}

// --- family 4: layer DAG ------------------------------------------------------

const std::map<std::string, int>& LayerLevels() {
  static const std::map<std::string, int> kLevels = {
      {"util", 0},    {"sim", 1},        {"trace", 1},    {"phy", 2},
      {"channel", 2}, {"mac", 3},        {"core", 3},     {"link", 4},
      {"app", 5},     {"node", 6},       {"metrics", 7},  {"experiment", 8},
      {"validate", 8}, {"serve", 9},
  };
  return kLevels;
}

std::string LayerDirOf(const std::string& path) {
  const std::size_t src = path.rfind("src/");
  if (src == std::string::npos) return "";
  const std::size_t begin = src + 4;
  const std::size_t slash = path.find('/', begin);
  if (slash == std::string::npos) return "";
  return path.substr(begin, slash - begin);
}

void CheckLayerDag(const Index& index, std::vector<Finding>* out) {
  const auto& levels = LayerLevels();
  for (const SourceFile& file : index.files) {
    const std::string from_dir = LayerDirOf(file.path);
    const auto from_it = levels.find(from_dir);
    if (from_it == levels.end()) continue;
    for (const Include& include : file.includes) {
      const std::size_t slash = include.target.find('/');
      if (slash == std::string::npos) continue;
      const std::string to_dir = include.target.substr(0, slash);
      const auto to_it = levels.find(to_dir);
      if (to_it == levels.end()) continue;
      if (to_it->second <= from_it->second) continue;
      bool escaped = false;
      for (const LayerEscape& escape : LayerEscapes()) {
        if (escape.from_dir == from_dir && escape.to_dir == to_dir) {
          escaped = true;
          break;
        }
      }
      if (escaped) continue;
      out->push_back(
          {file.path, include.line, "layer-dag",
           "include \"" + include.target + "\" points upward: " + from_dir +
               " (level " + std::to_string(from_it->second) +
               ") may not depend on " + to_dir + " (level " +
               std::to_string(to_it->second) +
               "); invert the dependency or add a reviewed escape hatch in "
               "tools/wsnstatic/checks.cpp"});
    }
  }
}

// --- marker follow-up ---------------------------------------------------------

void ReportTransientProblems(const TransientMap& transients,
                             std::vector<Finding>* out) {
  for (const auto& [file, entries] : transients) {
    for (const TransientEntry& entry : entries) {
      if (!entry.matched) {
        out->push_back({file, entry.line, "marker-directive",
                        "wsnstatic:transient(" + entry.id +
                            ") names no member of a snapshot/serdes-checked "
                            "type in this file; remove it"});
      } else if (!entry.used && entry.has_reason) {
        out->push_back({file, entry.line, "marker-directive",
                        "stale wsnstatic:transient(" + entry.id + "): '" +
                            entry.id +
                            "' is round-tripped already; remove it"});
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"snapshot-complete",
       "every member of a class with a SaveState/RestoreState (or "
       "Snapshot/Restore) pair is round-tripped or carries a justified "
       "wsnstatic:transient marker"},
      {"serdes-complete",
       "every field of a struct registered via wsnstatic:serdes(Struct, "
       "WriteFn, ReadFn) is written by WriteFn and read back by ReadFn"},
      {"hot-path-transitive",
       "no heap allocation or wall-clock/entropy reads in functions "
       "reachable from wsnlint:hot-path roots through the cross-TU call "
       "graph"},
      {"lp-isolation",
       "no unjustified mutable static state in files reachable from the "
       "Time-Warp engine, the worker pool, or serve/ handlers"},
      {"layer-dag",
       "quoted includes respect the layer order util < sim/trace < "
       "phy/channel < mac/core < link < app < node < metrics < "
       "experiment/validate < serve"},
  };
  return kRules;
}

bool IsKnownRule(const std::string& id) {
  const auto& rules = Rules();
  return std::any_of(rules.begin(), rules.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

const std::vector<LayerEscape>& LayerEscapes() {
  static const std::vector<LayerEscape> kEscapes = {
      // (no tolerated upward edges today; add entries only with review)
  };
  return kEscapes;
}

std::vector<Finding> CheckIndex(const Index& index) {
  std::vector<Finding> raw;
  TransientMap transients = CollectTransients(index, &raw);
  CheckSnapshots(index, transients, &raw);
  CheckSerdes(index, transients, &raw);
  CheckHotPaths(index, &raw);
  CheckLpIsolation(index, &raw);
  CheckLayerDag(index, &raw);
  ReportTransientProblems(transients, &raw);

  // Apply file-scope wsnstatic:allow directives per file, sharing the
  // justification/stale bookkeeping (and its exact messages) with wsnlint.
  std::map<std::string, std::vector<Finding>> by_file;
  for (Finding& finding : raw) {
    by_file[finding.file].push_back(std::move(finding));
  }
  std::vector<Finding> kept;
  for (const SourceFile& file : index.files) {
    std::vector<analysis::Allow> allows = analysis::ParseAllows(
        "wsnstatic", file.path, file.scan.comments, IsKnownRule, &kept);
    auto it = by_file.find(file.path);
    std::vector<Finding> file_findings;
    if (it != by_file.end()) file_findings = std::move(it->second);
    analysis::ApplyAllows("wsnstatic", file.path, allows,
                          std::move(file_findings), &kept);
    if (it != by_file.end()) by_file.erase(it);
  }
  // Findings attributed to paths outside the index (should not happen, but
  // never drop a finding silently).
  for (auto& [path, findings] : by_file) {
    for (Finding& finding : findings) kept.push_back(std::move(finding));
  }
  return kept;
}

}  // namespace wsnstatic
