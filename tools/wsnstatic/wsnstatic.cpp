// wsnstatic — cross-TU semantic analyzer (docs/STATIC_ANALYSIS.md).
//
// Usage:
//   wsnstatic [--root DIR] [--list-rules] [--inventory FILE] [PATH...]
//
// PATHs (files or directories, relative to --root) default to src — the
// analyzer is cross-translation-unit, so it wants the whole simulator tree
// in one invocation. Exit status is 0 when clean, 1 when there are
// findings, 2 on usage or I/O errors. Findings print as
// `file:line:rule-id: message`, one per line, sorted — the same byte
// format tests/static_test.cpp locks with a golden. `--inventory FILE`
// additionally writes the marker/allow-list inventory (with reasons) that
// CI publishes as a build artifact; use `-` for stdout.
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "runner.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: wsnstatic [--root DIR] [--list-rules] "
               "[--inventory FILE] [PATH...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  wsnstatic::Options options;
  bool list_rules = false;
  std::string inventory_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      options.root = argv[++i];
    } else if (arg == "--inventory") {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      inventory_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "wsnstatic: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const wsnstatic::RuleInfo& rule : wsnstatic::Rules()) {
      std::printf("%-20s %s\n", rule.id.c_str(), rule.summary.c_str());
    }
    return 0;
  }

  try {
    const wsnstatic::RunResult result = wsnstatic::Run(options);
    const std::string report = analysis::FormatFindings(result.findings);
    std::fputs(report.c_str(), stdout);
    if (!inventory_path.empty()) {
      if (inventory_path == "-") {
        std::fputs(result.inventory.c_str(), stdout);
      } else {
        std::ofstream out(inventory_path, std::ios::binary | std::ios::trunc);
        out << result.inventory;
        if (!out) {
          std::fprintf(stderr, "wsnstatic: cannot write %s\n",
                       inventory_path.c_str());
          return 2;
        }
      }
    }
    std::fprintf(stderr, "wsnstatic: %d finding(s) in %d file(s)\n",
                 static_cast<int>(result.findings.size()),
                 result.files_scanned);
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  }
}
