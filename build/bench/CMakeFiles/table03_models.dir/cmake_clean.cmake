file(REMOVE_RECURSE
  "CMakeFiles/table03_models.dir/table03_models.cpp.o"
  "CMakeFiles/table03_models.dir/table03_models.cpp.o.d"
  "table03_models"
  "table03_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
