# Empty dependencies file for table03_models.
# This may be replaced when dependencies are built.
