# Empty dependencies file for fig05_snr_distribution.
# This may be replaced when dependencies are built.
