file(REMOVE_RECURSE
  "CMakeFiles/fig05_snr_distribution.dir/fig05_snr_distribution.cpp.o"
  "CMakeFiles/fig05_snr_distribution.dir/fig05_snr_distribution.cpp.o.d"
  "fig05_snr_distribution"
  "fig05_snr_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_snr_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
