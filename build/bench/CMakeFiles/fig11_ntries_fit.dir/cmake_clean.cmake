file(REMOVE_RECURSE
  "CMakeFiles/fig11_ntries_fit.dir/fig11_ntries_fit.cpp.o"
  "CMakeFiles/fig11_ntries_fit.dir/fig11_ntries_fit.cpp.o.d"
  "fig11_ntries_fit"
  "fig11_ntries_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ntries_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
