# Empty dependencies file for fig11_ntries_fit.
# This may be replaced when dependencies are built.
