file(REMOVE_RECURSE
  "CMakeFiles/ext_sensitivity.dir/ext_sensitivity.cpp.o"
  "CMakeFiles/ext_sensitivity.dir/ext_sensitivity.cpp.o.d"
  "ext_sensitivity"
  "ext_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
