# Empty dependencies file for ext_sensitivity.
# This may be replaced when dependencies are built.
