# Empty compiler generated dependencies file for fig13_maxgoodput_model.
# This may be replaced when dependencies are built.
