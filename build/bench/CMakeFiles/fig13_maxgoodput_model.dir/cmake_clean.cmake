file(REMOVE_RECURSE
  "CMakeFiles/fig13_maxgoodput_model.dir/fig13_maxgoodput_model.cpp.o"
  "CMakeFiles/fig13_maxgoodput_model.dir/fig13_maxgoodput_model.cpp.o.d"
  "fig13_maxgoodput_model"
  "fig13_maxgoodput_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_maxgoodput_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
