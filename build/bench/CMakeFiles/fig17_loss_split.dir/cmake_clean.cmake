file(REMOVE_RECURSE
  "CMakeFiles/fig17_loss_split.dir/fig17_loss_split.cpp.o"
  "CMakeFiles/fig17_loss_split.dir/fig17_loss_split.cpp.o.d"
  "fig17_loss_split"
  "fig17_loss_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_loss_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
