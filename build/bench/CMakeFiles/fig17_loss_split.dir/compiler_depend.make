# Empty compiler generated dependencies file for fig17_loss_split.
# This may be replaced when dependencies are built.
