# Empty compiler generated dependencies file for fig10_goodput.
# This may be replaced when dependencies are built.
