file(REMOVE_RECURSE
  "CMakeFiles/fig10_goodput.dir/fig10_goodput.cpp.o"
  "CMakeFiles/fig10_goodput.dir/fig10_goodput.cpp.o.d"
  "fig10_goodput"
  "fig10_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
