# Empty dependencies file for fig07_energy_power.
# This may be replaced when dependencies are built.
