file(REMOVE_RECURSE
  "CMakeFiles/fig07_energy_power.dir/fig07_energy_power.cpp.o"
  "CMakeFiles/fig07_energy_power.dir/fig07_energy_power.cpp.o.d"
  "fig07_energy_power"
  "fig07_energy_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_energy_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
