file(REMOVE_RECURSE
  "CMakeFiles/ablation_channel.dir/ablation_channel.cpp.o"
  "CMakeFiles/ablation_channel.dir/ablation_channel.cpp.o.d"
  "ablation_channel"
  "ablation_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
