# Empty compiler generated dependencies file for ablation_channel.
# This may be replaced when dependencies are built.
