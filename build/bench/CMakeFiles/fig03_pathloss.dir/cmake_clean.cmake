file(REMOVE_RECURSE
  "CMakeFiles/fig03_pathloss.dir/fig03_pathloss.cpp.o"
  "CMakeFiles/fig03_pathloss.dir/fig03_pathloss.cpp.o.d"
  "fig03_pathloss"
  "fig03_pathloss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_pathloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
