# Empty compiler generated dependencies file for fig03_pathloss.
# This may be replaced when dependencies are built.
