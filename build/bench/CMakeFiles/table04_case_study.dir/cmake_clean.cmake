file(REMOVE_RECURSE
  "CMakeFiles/table04_case_study.dir/table04_case_study.cpp.o"
  "CMakeFiles/table04_case_study.dir/table04_case_study.cpp.o.d"
  "table04_case_study"
  "table04_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
