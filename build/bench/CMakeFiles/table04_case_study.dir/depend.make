# Empty dependencies file for table04_case_study.
# This may be replaced when dependencies are built.
