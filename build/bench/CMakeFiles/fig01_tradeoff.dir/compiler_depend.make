# Empty compiler generated dependencies file for fig01_tradeoff.
# This may be replaced when dependencies are built.
