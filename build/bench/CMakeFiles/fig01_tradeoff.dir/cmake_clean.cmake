file(REMOVE_RECURSE
  "CMakeFiles/fig01_tradeoff.dir/fig01_tradeoff.cpp.o"
  "CMakeFiles/fig01_tradeoff.dir/fig01_tradeoff.cpp.o.d"
  "fig01_tradeoff"
  "fig01_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
