file(REMOVE_RECURSE
  "CMakeFiles/fig12_plrradio_fit.dir/fig12_plrradio_fit.cpp.o"
  "CMakeFiles/fig12_plrradio_fit.dir/fig12_plrradio_fit.cpp.o.d"
  "fig12_plrradio_fit"
  "fig12_plrradio_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_plrradio_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
