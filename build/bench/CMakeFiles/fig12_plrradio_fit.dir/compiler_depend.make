# Empty compiler generated dependencies file for fig12_plrradio_fit.
# This may be replaced when dependencies are built.
