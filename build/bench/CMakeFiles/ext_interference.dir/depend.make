# Empty dependencies file for ext_interference.
# This may be replaced when dependencies are built.
