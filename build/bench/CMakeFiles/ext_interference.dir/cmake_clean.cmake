file(REMOVE_RECURSE
  "CMakeFiles/ext_interference.dir/ext_interference.cpp.o"
  "CMakeFiles/ext_interference.dir/ext_interference.cpp.o.d"
  "ext_interference"
  "ext_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
