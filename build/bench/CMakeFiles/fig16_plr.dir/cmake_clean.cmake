file(REMOVE_RECURSE
  "CMakeFiles/fig16_plr.dir/fig16_plr.cpp.o"
  "CMakeFiles/fig16_plr.dir/fig16_plr.cpp.o.d"
  "fig16_plr"
  "fig16_plr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_plr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
