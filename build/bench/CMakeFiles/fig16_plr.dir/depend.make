# Empty dependencies file for fig16_plr.
# This may be replaced when dependencies are built.
