file(REMOVE_RECURSE
  "CMakeFiles/fig04_rssi_deviation.dir/fig04_rssi_deviation.cpp.o"
  "CMakeFiles/fig04_rssi_deviation.dir/fig04_rssi_deviation.cpp.o.d"
  "fig04_rssi_deviation"
  "fig04_rssi_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_rssi_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
