# Empty dependencies file for fig04_rssi_deviation.
# This may be replaced when dependencies are built.
