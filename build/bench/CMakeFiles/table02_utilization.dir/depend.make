# Empty dependencies file for table02_utilization.
# This may be replaced when dependencies are built.
