file(REMOVE_RECURSE
  "CMakeFiles/table02_utilization.dir/table02_utilization.cpp.o"
  "CMakeFiles/table02_utilization.dir/table02_utilization.cpp.o.d"
  "table02_utilization"
  "table02_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
