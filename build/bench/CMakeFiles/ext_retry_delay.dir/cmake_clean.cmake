file(REMOVE_RECURSE
  "CMakeFiles/ext_retry_delay.dir/ext_retry_delay.cpp.o"
  "CMakeFiles/ext_retry_delay.dir/ext_retry_delay.cpp.o.d"
  "ext_retry_delay"
  "ext_retry_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_retry_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
