# Empty compiler generated dependencies file for ext_retry_delay.
# This may be replaced when dependencies are built.
