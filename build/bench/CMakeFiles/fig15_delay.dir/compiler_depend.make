# Empty compiler generated dependencies file for fig15_delay.
# This may be replaced when dependencies are built.
