file(REMOVE_RECURSE
  "CMakeFiles/fig15_delay.dir/fig15_delay.cpp.o"
  "CMakeFiles/fig15_delay.dir/fig15_delay.cpp.o.d"
  "fig15_delay"
  "fig15_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
