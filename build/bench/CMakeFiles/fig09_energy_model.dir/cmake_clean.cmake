file(REMOVE_RECURSE
  "CMakeFiles/fig09_energy_model.dir/fig09_energy_model.cpp.o"
  "CMakeFiles/fig09_energy_model.dir/fig09_energy_model.cpp.o.d"
  "fig09_energy_model"
  "fig09_energy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_energy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
