# Empty dependencies file for fig09_energy_model.
# This may be replaced when dependencies are built.
