# Empty dependencies file for fig06_per_joint.
# This may be replaced when dependencies are built.
