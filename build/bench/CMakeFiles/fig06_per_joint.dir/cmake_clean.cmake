file(REMOVE_RECURSE
  "CMakeFiles/fig06_per_joint.dir/fig06_per_joint.cpp.o"
  "CMakeFiles/fig06_per_joint.dir/fig06_per_joint.cpp.o.d"
  "fig06_per_joint"
  "fig06_per_joint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_per_joint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
