# Empty compiler generated dependencies file for ext_model_validation.
# This may be replaced when dependencies are built.
