file(REMOVE_RECURSE
  "CMakeFiles/ext_model_validation.dir/ext_model_validation.cpp.o"
  "CMakeFiles/ext_model_validation.dir/ext_model_validation.cpp.o.d"
  "ext_model_validation"
  "ext_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
