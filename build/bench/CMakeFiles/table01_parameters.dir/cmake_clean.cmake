file(REMOVE_RECURSE
  "CMakeFiles/table01_parameters.dir/table01_parameters.cpp.o"
  "CMakeFiles/table01_parameters.dir/table01_parameters.cpp.o.d"
  "table01_parameters"
  "table01_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
