file(REMOVE_RECURSE
  "CMakeFiles/ext_mobility.dir/ext_mobility.cpp.o"
  "CMakeFiles/ext_mobility.dir/ext_mobility.cpp.o.d"
  "ext_mobility"
  "ext_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
