# Empty dependencies file for ext_mobility.
# This may be replaced when dependencies are built.
