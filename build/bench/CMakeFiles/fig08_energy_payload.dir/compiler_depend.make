# Empty compiler generated dependencies file for fig08_energy_payload.
# This may be replaced when dependencies are built.
