file(REMOVE_RECURSE
  "CMakeFiles/fig08_energy_payload.dir/fig08_energy_payload.cpp.o"
  "CMakeFiles/fig08_energy_payload.dir/fig08_energy_payload.cpp.o.d"
  "fig08_energy_payload"
  "fig08_energy_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_energy_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
