# Empty dependencies file for ext_lpl_dutycycle.
# This may be replaced when dependencies are built.
