file(REMOVE_RECURSE
  "CMakeFiles/ext_lpl_dutycycle.dir/ext_lpl_dutycycle.cpp.o"
  "CMakeFiles/ext_lpl_dutycycle.dir/ext_lpl_dutycycle.cpp.o.d"
  "ext_lpl_dutycycle"
  "ext_lpl_dutycycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lpl_dutycycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
