# Empty dependencies file for args_test.
# This may be replaced when dependencies are built.
