# Empty compiler generated dependencies file for what_if_test.
# This may be replaced when dependencies are built.
