file(REMOVE_RECURSE
  "CMakeFiles/what_if_test.dir/what_if_test.cpp.o"
  "CMakeFiles/what_if_test.dir/what_if_test.cpp.o.d"
  "what_if_test"
  "what_if_test.pdb"
  "what_if_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
