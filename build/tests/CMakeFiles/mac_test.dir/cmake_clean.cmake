file(REMOVE_RECURSE
  "CMakeFiles/mac_test.dir/mac_test.cpp.o"
  "CMakeFiles/mac_test.dir/mac_test.cpp.o.d"
  "mac_test"
  "mac_test.pdb"
  "mac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
