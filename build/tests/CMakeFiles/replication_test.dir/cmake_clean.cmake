file(REMOVE_RECURSE
  "CMakeFiles/replication_test.dir/replication_test.cpp.o"
  "CMakeFiles/replication_test.dir/replication_test.cpp.o.d"
  "replication_test"
  "replication_test.pdb"
  "replication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
