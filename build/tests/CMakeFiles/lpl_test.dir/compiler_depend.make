# Empty compiler generated dependencies file for lpl_test.
# This may be replaced when dependencies are built.
