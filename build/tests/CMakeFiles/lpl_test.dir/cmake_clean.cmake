file(REMOVE_RECURSE
  "CMakeFiles/lpl_test.dir/lpl_test.cpp.o"
  "CMakeFiles/lpl_test.dir/lpl_test.cpp.o.d"
  "lpl_test"
  "lpl_test.pdb"
  "lpl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
