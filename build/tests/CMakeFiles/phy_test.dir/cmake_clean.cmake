file(REMOVE_RECURSE
  "CMakeFiles/phy_test.dir/phy_test.cpp.o"
  "CMakeFiles/phy_test.dir/phy_test.cpp.o.d"
  "phy_test"
  "phy_test.pdb"
  "phy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
