# Empty compiler generated dependencies file for weighted_sum_test.
# This may be replaced when dependencies are built.
