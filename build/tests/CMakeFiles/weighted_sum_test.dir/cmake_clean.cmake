file(REMOVE_RECURSE
  "CMakeFiles/weighted_sum_test.dir/weighted_sum_test.cpp.o"
  "CMakeFiles/weighted_sum_test.dir/weighted_sum_test.cpp.o.d"
  "weighted_sum_test"
  "weighted_sum_test.pdb"
  "weighted_sum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_sum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
