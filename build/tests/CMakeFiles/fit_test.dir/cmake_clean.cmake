file(REMOVE_RECURSE
  "CMakeFiles/fit_test.dir/fit_test.cpp.o"
  "CMakeFiles/fit_test.dir/fit_test.cpp.o.d"
  "fit_test"
  "fit_test.pdb"
  "fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
