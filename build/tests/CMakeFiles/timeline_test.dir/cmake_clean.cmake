file(REMOVE_RECURSE
  "CMakeFiles/timeline_test.dir/timeline_test.cpp.o"
  "CMakeFiles/timeline_test.dir/timeline_test.cpp.o.d"
  "timeline_test"
  "timeline_test.pdb"
  "timeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
