
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/timeline_test.cpp" "tests/CMakeFiles/timeline_test.dir/timeline_test.cpp.o" "gcc" "tests/CMakeFiles/timeline_test.dir/timeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/wsn_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/wsn_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/wsn_node.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/wsn_app.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/wsn_link.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/wsn_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wsn_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wsn_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
