file(REMOVE_RECURSE
  "CMakeFiles/node_test.dir/node_test.cpp.o"
  "CMakeFiles/node_test.dir/node_test.cpp.o.d"
  "node_test"
  "node_test.pdb"
  "node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
