file(REMOVE_RECURSE
  "CMakeFiles/validation_test.dir/validation_test.cpp.o"
  "CMakeFiles/validation_test.dir/validation_test.cpp.o.d"
  "validation_test"
  "validation_test.pdb"
  "validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
