file(REMOVE_RECURSE
  "CMakeFiles/adaptive_test.dir/adaptive_test.cpp.o"
  "CMakeFiles/adaptive_test.dir/adaptive_test.cpp.o.d"
  "adaptive_test"
  "adaptive_test.pdb"
  "adaptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
