file(REMOVE_RECURSE
  "CMakeFiles/model_property_test.dir/model_property_test.cpp.o"
  "CMakeFiles/model_property_test.dir/model_property_test.cpp.o.d"
  "model_property_test"
  "model_property_test.pdb"
  "model_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
