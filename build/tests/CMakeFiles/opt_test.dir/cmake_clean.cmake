file(REMOVE_RECURSE
  "CMakeFiles/opt_test.dir/opt_test.cpp.o"
  "CMakeFiles/opt_test.dir/opt_test.cpp.o.d"
  "opt_test"
  "opt_test.pdb"
  "opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
