# Empty dependencies file for interferer_test.
# This may be replaced when dependencies are built.
