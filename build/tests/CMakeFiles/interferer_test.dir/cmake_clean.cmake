file(REMOVE_RECURSE
  "CMakeFiles/interferer_test.dir/interferer_test.cpp.o"
  "CMakeFiles/interferer_test.dir/interferer_test.cpp.o.d"
  "interferer_test"
  "interferer_test.pdb"
  "interferer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interferer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
