# Empty compiler generated dependencies file for sensitivity_test.
# This may be replaced when dependencies are built.
