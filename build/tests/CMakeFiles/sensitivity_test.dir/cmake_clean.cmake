file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_test.dir/sensitivity_test.cpp.o"
  "CMakeFiles/sensitivity_test.dir/sensitivity_test.cpp.o.d"
  "sensitivity_test"
  "sensitivity_test.pdb"
  "sensitivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
