file(REMOVE_RECURSE
  "CMakeFiles/guidelines_sweep_test.dir/guidelines_sweep_test.cpp.o"
  "CMakeFiles/guidelines_sweep_test.dir/guidelines_sweep_test.cpp.o.d"
  "guidelines_sweep_test"
  "guidelines_sweep_test.pdb"
  "guidelines_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guidelines_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
