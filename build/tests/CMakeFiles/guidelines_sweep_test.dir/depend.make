# Empty dependencies file for guidelines_sweep_test.
# This may be replaced when dependencies are built.
