file(REMOVE_RECURSE
  "CMakeFiles/bootstrap_test.dir/bootstrap_test.cpp.o"
  "CMakeFiles/bootstrap_test.dir/bootstrap_test.cpp.o.d"
  "bootstrap_test"
  "bootstrap_test.pdb"
  "bootstrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootstrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
