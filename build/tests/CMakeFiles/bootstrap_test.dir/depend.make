# Empty dependencies file for bootstrap_test.
# This may be replaced when dependencies are built.
