# Empty dependencies file for wsn_node.
# This may be replaced when dependencies are built.
