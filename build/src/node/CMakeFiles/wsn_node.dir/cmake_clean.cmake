file(REMOVE_RECURSE
  "CMakeFiles/wsn_node.dir/link_simulation.cpp.o"
  "CMakeFiles/wsn_node.dir/link_simulation.cpp.o.d"
  "libwsn_node.a"
  "libwsn_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
