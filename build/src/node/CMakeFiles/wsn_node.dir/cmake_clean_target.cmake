file(REMOVE_RECURSE
  "libwsn_node.a"
)
