# Empty dependencies file for wsn_util.
# This may be replaced when dependencies are built.
