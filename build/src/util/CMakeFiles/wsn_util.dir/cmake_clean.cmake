file(REMOVE_RECURSE
  "CMakeFiles/wsn_util.dir/args.cpp.o"
  "CMakeFiles/wsn_util.dir/args.cpp.o.d"
  "CMakeFiles/wsn_util.dir/csv.cpp.o"
  "CMakeFiles/wsn_util.dir/csv.cpp.o.d"
  "CMakeFiles/wsn_util.dir/histogram.cpp.o"
  "CMakeFiles/wsn_util.dir/histogram.cpp.o.d"
  "CMakeFiles/wsn_util.dir/rng.cpp.o"
  "CMakeFiles/wsn_util.dir/rng.cpp.o.d"
  "CMakeFiles/wsn_util.dir/stats.cpp.o"
  "CMakeFiles/wsn_util.dir/stats.cpp.o.d"
  "CMakeFiles/wsn_util.dir/table.cpp.o"
  "CMakeFiles/wsn_util.dir/table.cpp.o.d"
  "CMakeFiles/wsn_util.dir/units.cpp.o"
  "CMakeFiles/wsn_util.dir/units.cpp.o.d"
  "libwsn_util.a"
  "libwsn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
