file(REMOVE_RECURSE
  "libwsn_util.a"
)
