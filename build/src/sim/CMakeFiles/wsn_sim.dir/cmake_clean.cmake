file(REMOVE_RECURSE
  "CMakeFiles/wsn_sim.dir/simulator.cpp.o"
  "CMakeFiles/wsn_sim.dir/simulator.cpp.o.d"
  "libwsn_sim.a"
  "libwsn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
