# Empty compiler generated dependencies file for wsn_sim.
# This may be replaced when dependencies are built.
