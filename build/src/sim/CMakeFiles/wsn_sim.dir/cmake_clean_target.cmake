file(REMOVE_RECURSE
  "libwsn_sim.a"
)
