file(REMOVE_RECURSE
  "libwsn_phy.a"
)
