# Empty dependencies file for wsn_phy.
# This may be replaced when dependencies are built.
