
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/cc2420.cpp" "src/phy/CMakeFiles/wsn_phy.dir/cc2420.cpp.o" "gcc" "src/phy/CMakeFiles/wsn_phy.dir/cc2420.cpp.o.d"
  "/root/repo/src/phy/frame.cpp" "src/phy/CMakeFiles/wsn_phy.dir/frame.cpp.o" "gcc" "src/phy/CMakeFiles/wsn_phy.dir/frame.cpp.o.d"
  "/root/repo/src/phy/timing.cpp" "src/phy/CMakeFiles/wsn_phy.dir/timing.cpp.o" "gcc" "src/phy/CMakeFiles/wsn_phy.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
