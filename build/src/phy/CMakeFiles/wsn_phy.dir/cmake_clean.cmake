file(REMOVE_RECURSE
  "CMakeFiles/wsn_phy.dir/cc2420.cpp.o"
  "CMakeFiles/wsn_phy.dir/cc2420.cpp.o.d"
  "CMakeFiles/wsn_phy.dir/frame.cpp.o"
  "CMakeFiles/wsn_phy.dir/frame.cpp.o.d"
  "CMakeFiles/wsn_phy.dir/timing.cpp.o"
  "CMakeFiles/wsn_phy.dir/timing.cpp.o.d"
  "libwsn_phy.a"
  "libwsn_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
