file(REMOVE_RECURSE
  "CMakeFiles/wsn_link.dir/link_layer.cpp.o"
  "CMakeFiles/wsn_link.dir/link_layer.cpp.o.d"
  "CMakeFiles/wsn_link.dir/packet_log.cpp.o"
  "CMakeFiles/wsn_link.dir/packet_log.cpp.o.d"
  "CMakeFiles/wsn_link.dir/transmit_queue.cpp.o"
  "CMakeFiles/wsn_link.dir/transmit_queue.cpp.o.d"
  "libwsn_link.a"
  "libwsn_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
