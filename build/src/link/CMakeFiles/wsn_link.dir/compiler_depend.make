# Empty compiler generated dependencies file for wsn_link.
# This may be replaced when dependencies are built.
