file(REMOVE_RECURSE
  "libwsn_link.a"
)
