file(REMOVE_RECURSE
  "libwsn_app.a"
)
