file(REMOVE_RECURSE
  "CMakeFiles/wsn_app.dir/sink.cpp.o"
  "CMakeFiles/wsn_app.dir/sink.cpp.o.d"
  "CMakeFiles/wsn_app.dir/traffic_gen.cpp.o"
  "CMakeFiles/wsn_app.dir/traffic_gen.cpp.o.d"
  "libwsn_app.a"
  "libwsn_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
