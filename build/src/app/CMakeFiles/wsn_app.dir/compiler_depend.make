# Empty compiler generated dependencies file for wsn_app.
# This may be replaced when dependencies are built.
