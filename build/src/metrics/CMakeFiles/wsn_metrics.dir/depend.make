# Empty dependencies file for wsn_metrics.
# This may be replaced when dependencies are built.
