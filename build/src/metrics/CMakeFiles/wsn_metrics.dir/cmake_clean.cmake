file(REMOVE_RECURSE
  "CMakeFiles/wsn_metrics.dir/aggregate.cpp.o"
  "CMakeFiles/wsn_metrics.dir/aggregate.cpp.o.d"
  "CMakeFiles/wsn_metrics.dir/link_metrics.cpp.o"
  "CMakeFiles/wsn_metrics.dir/link_metrics.cpp.o.d"
  "CMakeFiles/wsn_metrics.dir/timeline.cpp.o"
  "CMakeFiles/wsn_metrics.dir/timeline.cpp.o.d"
  "CMakeFiles/wsn_metrics.dir/what_if.cpp.o"
  "CMakeFiles/wsn_metrics.dir/what_if.cpp.o.d"
  "libwsn_metrics.a"
  "libwsn_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
