file(REMOVE_RECURSE
  "libwsn_metrics.a"
)
