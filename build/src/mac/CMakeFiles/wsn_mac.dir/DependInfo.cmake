
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/csma_mac.cpp" "src/mac/CMakeFiles/wsn_mac.dir/csma_mac.cpp.o" "gcc" "src/mac/CMakeFiles/wsn_mac.dir/csma_mac.cpp.o.d"
  "/root/repo/src/mac/lpl_mac.cpp" "src/mac/CMakeFiles/wsn_mac.dir/lpl_mac.cpp.o" "gcc" "src/mac/CMakeFiles/wsn_mac.dir/lpl_mac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wsn_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wsn_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
