file(REMOVE_RECURSE
  "CMakeFiles/wsn_mac.dir/csma_mac.cpp.o"
  "CMakeFiles/wsn_mac.dir/csma_mac.cpp.o.d"
  "CMakeFiles/wsn_mac.dir/lpl_mac.cpp.o"
  "CMakeFiles/wsn_mac.dir/lpl_mac.cpp.o.d"
  "libwsn_mac.a"
  "libwsn_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
