# Empty compiler generated dependencies file for wsn_mac.
# This may be replaced when dependencies are built.
