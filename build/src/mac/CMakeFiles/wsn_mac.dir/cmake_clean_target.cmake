file(REMOVE_RECURSE
  "libwsn_mac.a"
)
