file(REMOVE_RECURSE
  "libwsn_core.a"
)
