
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fit/bootstrap.cpp" "src/core/CMakeFiles/wsn_core.dir/fit/bootstrap.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/fit/bootstrap.cpp.o.d"
  "/root/repo/src/core/fit/exponential_fit.cpp" "src/core/CMakeFiles/wsn_core.dir/fit/exponential_fit.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/fit/exponential_fit.cpp.o.d"
  "/root/repo/src/core/fit/gauss_newton.cpp" "src/core/CMakeFiles/wsn_core.dir/fit/gauss_newton.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/fit/gauss_newton.cpp.o.d"
  "/root/repo/src/core/models/delay_model.cpp" "src/core/CMakeFiles/wsn_core.dir/models/delay_model.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/models/delay_model.cpp.o.d"
  "/root/repo/src/core/models/energy_model.cpp" "src/core/CMakeFiles/wsn_core.dir/models/energy_model.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/models/energy_model.cpp.o.d"
  "/root/repo/src/core/models/goodput_model.cpp" "src/core/CMakeFiles/wsn_core.dir/models/goodput_model.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/models/goodput_model.cpp.o.d"
  "/root/repo/src/core/models/link_quality.cpp" "src/core/CMakeFiles/wsn_core.dir/models/link_quality.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/models/link_quality.cpp.o.d"
  "/root/repo/src/core/models/model_set.cpp" "src/core/CMakeFiles/wsn_core.dir/models/model_set.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/models/model_set.cpp.o.d"
  "/root/repo/src/core/models/ntries_model.cpp" "src/core/CMakeFiles/wsn_core.dir/models/ntries_model.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/models/ntries_model.cpp.o.d"
  "/root/repo/src/core/models/per_model.cpp" "src/core/CMakeFiles/wsn_core.dir/models/per_model.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/models/per_model.cpp.o.d"
  "/root/repo/src/core/models/plr_model.cpp" "src/core/CMakeFiles/wsn_core.dir/models/plr_model.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/models/plr_model.cpp.o.d"
  "/root/repo/src/core/models/service_time_model.cpp" "src/core/CMakeFiles/wsn_core.dir/models/service_time_model.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/models/service_time_model.cpp.o.d"
  "/root/repo/src/core/models/validation.cpp" "src/core/CMakeFiles/wsn_core.dir/models/validation.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/models/validation.cpp.o.d"
  "/root/repo/src/core/opt/adaptive.cpp" "src/core/CMakeFiles/wsn_core.dir/opt/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/opt/adaptive.cpp.o.d"
  "/root/repo/src/core/opt/baselines.cpp" "src/core/CMakeFiles/wsn_core.dir/opt/baselines.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/opt/baselines.cpp.o.d"
  "/root/repo/src/core/opt/config_space.cpp" "src/core/CMakeFiles/wsn_core.dir/opt/config_space.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/opt/config_space.cpp.o.d"
  "/root/repo/src/core/opt/epsilon_constraint.cpp" "src/core/CMakeFiles/wsn_core.dir/opt/epsilon_constraint.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/opt/epsilon_constraint.cpp.o.d"
  "/root/repo/src/core/opt/guidelines.cpp" "src/core/CMakeFiles/wsn_core.dir/opt/guidelines.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/opt/guidelines.cpp.o.d"
  "/root/repo/src/core/opt/objectives.cpp" "src/core/CMakeFiles/wsn_core.dir/opt/objectives.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/opt/objectives.cpp.o.d"
  "/root/repo/src/core/opt/pareto.cpp" "src/core/CMakeFiles/wsn_core.dir/opt/pareto.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/opt/pareto.cpp.o.d"
  "/root/repo/src/core/opt/sensitivity.cpp" "src/core/CMakeFiles/wsn_core.dir/opt/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/opt/sensitivity.cpp.o.d"
  "/root/repo/src/core/opt/weighted_sum.cpp" "src/core/CMakeFiles/wsn_core.dir/opt/weighted_sum.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/opt/weighted_sum.cpp.o.d"
  "/root/repo/src/core/stack_config.cpp" "src/core/CMakeFiles/wsn_core.dir/stack_config.cpp.o" "gcc" "src/core/CMakeFiles/wsn_core.dir/stack_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wsn_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wsn_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
