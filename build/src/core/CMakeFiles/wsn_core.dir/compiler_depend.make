# Empty compiler generated dependencies file for wsn_core.
# This may be replaced when dependencies are built.
