
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/ber.cpp" "src/channel/CMakeFiles/wsn_channel.dir/ber.cpp.o" "gcc" "src/channel/CMakeFiles/wsn_channel.dir/ber.cpp.o.d"
  "/root/repo/src/channel/channel.cpp" "src/channel/CMakeFiles/wsn_channel.dir/channel.cpp.o" "gcc" "src/channel/CMakeFiles/wsn_channel.dir/channel.cpp.o.d"
  "/root/repo/src/channel/interferer.cpp" "src/channel/CMakeFiles/wsn_channel.dir/interferer.cpp.o" "gcc" "src/channel/CMakeFiles/wsn_channel.dir/interferer.cpp.o.d"
  "/root/repo/src/channel/mobility.cpp" "src/channel/CMakeFiles/wsn_channel.dir/mobility.cpp.o" "gcc" "src/channel/CMakeFiles/wsn_channel.dir/mobility.cpp.o.d"
  "/root/repo/src/channel/noise.cpp" "src/channel/CMakeFiles/wsn_channel.dir/noise.cpp.o" "gcc" "src/channel/CMakeFiles/wsn_channel.dir/noise.cpp.o.d"
  "/root/repo/src/channel/path_loss.cpp" "src/channel/CMakeFiles/wsn_channel.dir/path_loss.cpp.o" "gcc" "src/channel/CMakeFiles/wsn_channel.dir/path_loss.cpp.o.d"
  "/root/repo/src/channel/shadowing.cpp" "src/channel/CMakeFiles/wsn_channel.dir/shadowing.cpp.o" "gcc" "src/channel/CMakeFiles/wsn_channel.dir/shadowing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
