# Empty dependencies file for wsn_channel.
# This may be replaced when dependencies are built.
