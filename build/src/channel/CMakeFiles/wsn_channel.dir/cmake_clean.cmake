file(REMOVE_RECURSE
  "CMakeFiles/wsn_channel.dir/ber.cpp.o"
  "CMakeFiles/wsn_channel.dir/ber.cpp.o.d"
  "CMakeFiles/wsn_channel.dir/channel.cpp.o"
  "CMakeFiles/wsn_channel.dir/channel.cpp.o.d"
  "CMakeFiles/wsn_channel.dir/interferer.cpp.o"
  "CMakeFiles/wsn_channel.dir/interferer.cpp.o.d"
  "CMakeFiles/wsn_channel.dir/mobility.cpp.o"
  "CMakeFiles/wsn_channel.dir/mobility.cpp.o.d"
  "CMakeFiles/wsn_channel.dir/noise.cpp.o"
  "CMakeFiles/wsn_channel.dir/noise.cpp.o.d"
  "CMakeFiles/wsn_channel.dir/path_loss.cpp.o"
  "CMakeFiles/wsn_channel.dir/path_loss.cpp.o.d"
  "CMakeFiles/wsn_channel.dir/shadowing.cpp.o"
  "CMakeFiles/wsn_channel.dir/shadowing.cpp.o.d"
  "libwsn_channel.a"
  "libwsn_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
