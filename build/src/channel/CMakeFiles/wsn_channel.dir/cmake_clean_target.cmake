file(REMOVE_RECURSE
  "libwsn_channel.a"
)
