file(REMOVE_RECURSE
  "CMakeFiles/wsn_experiment.dir/analysis.cpp.o"
  "CMakeFiles/wsn_experiment.dir/analysis.cpp.o.d"
  "CMakeFiles/wsn_experiment.dir/campaign.cpp.o"
  "CMakeFiles/wsn_experiment.dir/campaign.cpp.o.d"
  "CMakeFiles/wsn_experiment.dir/dataset.cpp.o"
  "CMakeFiles/wsn_experiment.dir/dataset.cpp.o.d"
  "CMakeFiles/wsn_experiment.dir/replication.cpp.o"
  "CMakeFiles/wsn_experiment.dir/replication.cpp.o.d"
  "CMakeFiles/wsn_experiment.dir/sweep.cpp.o"
  "CMakeFiles/wsn_experiment.dir/sweep.cpp.o.d"
  "libwsn_experiment.a"
  "libwsn_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
