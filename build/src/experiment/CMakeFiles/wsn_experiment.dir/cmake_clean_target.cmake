file(REMOVE_RECURSE
  "libwsn_experiment.a"
)
