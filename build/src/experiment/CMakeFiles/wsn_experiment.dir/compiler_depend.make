# Empty compiler generated dependencies file for wsn_experiment.
# This may be replaced when dependencies are built.
