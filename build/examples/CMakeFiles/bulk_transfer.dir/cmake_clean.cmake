file(REMOVE_RECURSE
  "CMakeFiles/bulk_transfer.dir/bulk_transfer.cpp.o"
  "CMakeFiles/bulk_transfer.dir/bulk_transfer.cpp.o.d"
  "bulk_transfer"
  "bulk_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
