# Empty compiler generated dependencies file for what_if_payload.
# This may be replaced when dependencies are built.
