file(REMOVE_RECURSE
  "CMakeFiles/what_if_payload.dir/what_if_payload.cpp.o"
  "CMakeFiles/what_if_payload.dir/what_if_payload.cpp.o.d"
  "what_if_payload"
  "what_if_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
