file(REMOVE_RECURSE
  "CMakeFiles/smart_home_monitoring.dir/smart_home_monitoring.cpp.o"
  "CMakeFiles/smart_home_monitoring.dir/smart_home_monitoring.cpp.o.d"
  "smart_home_monitoring"
  "smart_home_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
