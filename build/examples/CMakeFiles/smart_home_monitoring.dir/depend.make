# Empty dependencies file for smart_home_monitoring.
# This may be replaced when dependencies are built.
