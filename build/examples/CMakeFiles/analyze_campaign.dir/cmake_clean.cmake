file(REMOVE_RECURSE
  "CMakeFiles/analyze_campaign.dir/analyze_campaign.cpp.o"
  "CMakeFiles/analyze_campaign.dir/analyze_campaign.cpp.o.d"
  "analyze_campaign"
  "analyze_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
