# Empty dependencies file for analyze_campaign.
# This may be replaced when dependencies are built.
