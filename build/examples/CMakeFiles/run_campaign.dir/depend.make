# Empty dependencies file for run_campaign.
# This may be replaced when dependencies are built.
