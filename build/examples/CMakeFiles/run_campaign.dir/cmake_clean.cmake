file(REMOVE_RECURSE
  "CMakeFiles/run_campaign.dir/run_campaign.cpp.o"
  "CMakeFiles/run_campaign.dir/run_campaign.cpp.o.d"
  "run_campaign"
  "run_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
