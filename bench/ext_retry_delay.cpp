// Extension — the retry-delay knob (D_retry), the least-photographed of the
// paper's seven parameters.
//
// Table I sweeps D_retry over {0, 30, 60} ms and Table II's utilization
// rows assume 30 ms, but no figure isolates it. This bench does: in the
// grey zone, a longer retry delay (a) inflates the service time linearly
// per expected retry (Eqs. 5-6), which (b) raises utilization and, at
// moderate arrival rates, tips the queue into saturation — converting a
// pure-delay knob into a loss knob, the same mechanism as Fig. 17's
// retransmission trade-off.
#include <iostream>

#include "bench_common.h"
#include "core/models/delay_model.h"
#include "metrics/link_metrics.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Extension - retry delay D_retry (35 m grey-zone link, l_D = 110 B, "
      "N = 3, Qmax = 10)",
      "D_retry stretches service time per retry; at moderate load it "
      "converts into queue delay and loss (rho crossing 1)");

  const core::models::DelayModel model;
  for (const double interval : {30.0, 100.0}) {
    std::cout << "\nT_pkt = " << interval << " ms\n";
    util::TextTable table({"Dretry[ms]", "service[ms] (model)", "rho (model)",
                           "service[ms] (sim)", "delay[ms]", "PLR_queue",
                           "PLR_total"});
    for (const double retry : {0.0, 15.0, 30.0, 60.0, 120.0}) {
      auto config = bench::DefaultConfig();
      config.distance_m = 35.0;
      config.pa_level = 11;  // ~14 dB: retries happen
      config.max_tries = 3;
      config.retry_delay_ms = retry;
      config.queue_capacity = 10;
      config.pkt_interval_ms = interval;
      config.payload_bytes = 110;
      auto options = bench::DefaultOptions(config, 700);
      options.seed = bench::kBenchSeed + static_cast<int>(retry) +
                     static_cast<int>(interval);
      const auto result = node::RunLinkSimulation(options);
      const auto m = metrics::ComputeMetrics(result, interval);

      core::models::ServiceTimeInputs in;
      in.payload_bytes = 110;
      in.snr_db = result.mean_snr_db;
      in.max_tries = 3;
      in.retry_delay_ms = retry;
      table.NewRow()
          .Add(retry, 0)
          .Add(model.Service().MeanMs(in), 2)
          .Add(model.Utilization(in, interval), 3)
          .Add(m.mean_service_ms, 2)
          .Add(m.mean_delay_ms, 2)
          .Add(m.plr_queue, 3)
          .Add(m.plr_total, 3);
    }
    std::cout << table;
  }
  return 0;
}
