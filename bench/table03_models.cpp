// Table III — summary of the empirical models, plus a refit of every model
// from a fresh synthetic campaign (the "can the analysis pipeline recover
// the paper's coefficients from raw data" check).
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/fit/exponential_fit.h"
#include "core/models/model_set.h"
#include "metrics/aggregate.h"
#include "node/link_simulation.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader("Table III - empirical model summary + refit",
                     "PER/N_tries/PLR_radio scaled-exponential coefficients");

  std::cout << core::models::ModelSet().SummaryTable() << "\n";

  // Gather raw data: payload x power sweep with N = 8 (tries observable)
  // and N = 1 (attempt loss observable).
  std::vector<link::AttemptRecord> attempts;
  std::vector<link::PacketRecord> retx_packets;
  for (const int payload : {20, 50, 80, 110}) {
    for (const int level : {7, 11, 15, 19, 23, 27, 31}) {
      auto config = bench::DefaultConfig();
      config.distance_m = 35.0;
      config.pa_level = level;
      config.payload_bytes = payload;
      config.pkt_interval_ms = 50.0;

      config.max_tries = 1;
      auto options = bench::DefaultOptions(config, 450);
      options.seed = bench::kBenchSeed + payload * 3 + level;
      const auto single = node::RunLinkSimulation(options);
      attempts.insert(attempts.end(), single.log.Attempts().begin(),
                      single.log.Attempts().end());

      config.max_tries = 8;
      options = bench::DefaultOptions(config, 450);
      options.seed = bench::kBenchSeed + payload * 7 + level + 1;
      const auto retx = node::RunLinkSimulation(options);
      retx_packets.insert(retx_packets.end(), retx.log.Packets().begin(),
                          retx.log.Packets().end());
    }
  }

  util::TextTable table(
      {"model", "paper a", "paper b", "refit a", "refit b", "log R^2"});
  const auto per_samples = metrics::PerFitSamples(attempts, 2.0, 40);
  if (const auto fit = core::fit::FitScaledExponential(per_samples)) {
    table.NewRow()
        .Add("PER (Eq. 3)")
        .Add(0.0128, 4)
        .Add(-0.15, 3)
        .Add(fit->coefficients.a, 4)
        .Add(fit->coefficients.b, 3)
        .Add(fit->log_r_squared, 3);
  }
  const auto ntries_samples = metrics::NtriesFitSamples(retx_packets, 2.0, 40);
  if (const auto fit = core::fit::FitScaledExponential(ntries_samples)) {
    table.NewRow()
        .Add("N_tries (Eq. 7)")
        .Add(0.02, 4)
        .Add(-0.18, 3)
        .Add(fit->coefficients.a, 4)
        .Add(fit->coefficients.b, 3)
        .Add(fit->log_r_squared, 3);
  }
  std::cout << table
            << "\n(the refit coefficients are what THIS simulated hallway "
               "yields; agreement in order of magnitude and slope sign "
               "validates the analysis pipeline)\n";
  return 0;
}
