// Table I — the stack parameters, value sets and rationales.
//
// The source text's Table I is not machine-readable; DESIGN.md documents
// the reconstruction (8 x 4 x 3 x 2 x 6 x 7 = 8064 settings per distance,
// 6 distances = 48384 configurations, "close to 50 thousand"). This bench
// prints the reconstructed table together with the resulting campaign
// arithmetic so the reconstruction is visible in the outputs, not only in
// prose.
#include <iostream>
#include <string>

#include "core/opt/config_space.h"
#include "util/table.h"

namespace {

template <typename T>
std::string Join(const std::vector<T>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    if constexpr (std::is_same_v<T, double>) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", values[i]);
      out += buf;
    } else {
      out += std::to_string(values[i]);
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace wsnlink;
  std::cout << "==========================================================\n"
            << "Table I - stack parameters and considered values\n"
            << "(reconstruction; see DESIGN.md)\n"
            << "==========================================================\n";

  const auto space = core::opt::ConfigSpace::PaperTableI();
  util::TextTable table({"layer", "parameter", "values", "rationale"});
  table.NewRow()
      .Add("PHY")
      .Add("distance d [m]")
      .Add(Join(space.distances_m))
      .Add("hallway placements up to the 40 m limit; 35 m is the weak link");
  table.NewRow()
      .Add("PHY")
      .Add("output power P_tx (PA_LEVEL)")
      .Add(Join(space.pa_levels))
      .Add("CC2420 datasheet levels, -25 to 0 dBm");
  table.NewRow()
      .Add("MAC")
      .Add("max transmissions N_maxTries")
      .Add(Join(space.max_tries))
      .Add("1 = no retransmission; 8 = aggressive recovery");
  table.NewRow()
      .Add("MAC")
      .Add("retry delay D_retry [ms]")
      .Add(Join(space.retry_delays_ms))
      .Add("0 = immediate; 30/60 ms = congestion-relief pauses");
  table.NewRow()
      .Add("MAC")
      .Add("queue size Q_max [pkts]")
      .Add(Join(space.queue_capacities))
      .Add("1 = no buffering; 30 = deep buffer");
  table.NewRow()
      .Add("App")
      .Add("packet interval T_pkt [ms]")
      .Add(Join(space.pkt_intervals_ms))
      .Add("10 ms saturates any link; 200 ms is light telemetry");
  table.NewRow()
      .Add("App")
      .Add("payload size l_D [B]")
      .Add(Join(space.payload_bytes))
      .Add("5 B sensor reading to the 114 B stack maximum");
  std::cout << table;

  std::cout << "\nper-distance settings: " << space.SizePerDistance()
            << " (paper: 8064)\n"
            << "total configurations:  " << space.Size()
            << " (paper: 'close to 50 thousand')\n"
            << "packets at paper fidelity (4500/config): "
            << space.Size() * 4500ULL
            << " (paper: 'more than 200 million')\n";
  return 0;
}
