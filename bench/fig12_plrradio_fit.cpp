// Fig. 12 — validation of the radio loss rate model (Eq. 8).
//
// Paper: PLR_radio = (a * l_D * exp(b * SNR))^N_maxTries with a = 0.011,
// b = -0.145. We measure radio loss across SNR and retry budgets and
// compare with the model; we also refit the per-attempt base from the
// N = 1 measurements.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/fit/exponential_fit.h"
#include "core/models/plr_model.h"
#include "metrics/link_metrics.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Fig. 12 - radio loss rate model validation",
      "PLR_radio = (a*l_D*exp(b*SNR))^N, a = 0.011, b = -0.145");

  const core::models::PlrModel model;
  std::vector<core::fit::ScaledExpSample> base_samples;

  util::TextTable table({"Ptx", "SNR[dB]", "N", "PLR measured", "PLR model"});
  for (const int level : {7, 11, 15, 19, 23}) {
    for (const int tries : {1, 3}) {
      auto config = bench::DefaultConfig();
      config.distance_m = 35.0;
      config.pa_level = level;
      config.payload_bytes = 110;
      config.max_tries = tries;
      config.pkt_interval_ms = 80.0;
      auto options = bench::DefaultOptions(config, 900);
      options.seed = bench::kBenchSeed + level * 17 + tries;
      const auto result = node::RunLinkSimulation(options);
      const auto m = metrics::ComputeMetrics(result, 80.0);
      table.NewRow()
          .Add(level)
          .Add(result.mean_snr_db, 1)
          .Add(tries)
          .Add(m.plr_radio, 4)
          .Add(model.RadioLoss(110, result.mean_snr_db, tries), 4);
      if (tries == 1 && result.mean_snr_db > 5.0) {
        core::fit::ScaledExpSample s;
        s.payload_bytes = 110.0;
        s.snr_db = result.mean_snr_db;
        s.value = m.plr_radio;
        base_samples.push_back(s);
      }
    }
  }
  std::cout << table;

  const auto fit = core::fit::FitScaledExponential(base_samples);
  if (fit) {
    std::cout << "\nrefit of the per-attempt base from N=1 data:  a = "
              << util::FormatDouble(fit->coefficients.a, 4)
              << "  b = " << util::FormatDouble(fit->coefficients.b, 3)
              << "   (paper: a = 0.011, b = -0.145)\n";
  }
  return 0;
}
