// Macro-benchmark for the tuning service answer path.
//
// Drives an in-process QueryService (the daemon minus the socket, which is
// how the serving work is actually done — the TCP layer only frames bytes)
// with a fixed what_if workload twice: once cold (every request is a cache
// miss and runs the simulator) and once hot (every request is a cache hit).
// Reports throughput and p50/p99 latency for both phases plus the
// hit-over-miss throughput ratio — the number that justifies the cache's
// existence — and a machine-speed calibration score so the committed
// BENCH_serve.json baseline compares across hosts. `--check <json>` re-runs
// the workload and fails (exit 1) when the calibration-normalized hit
// throughput regressed beyond the tolerance or the hit/miss ratio fell
// under the floor — the CI serve gate.
//
// Usage:
//   perf_serve [--out BENCH_serve.json] [--check BENCH_serve.json]
//              [--tolerance 0.4] [--min-ratio 10] [--requests 48]
//              [--packets 120] [--hot-repeat 20] [--threads 0]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/query_service.h"
#include "util/args.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Same fixed integer workload as perf_sweep: Mops/s calibrates host speed.
double CalibrationScore() {
  constexpr std::uint64_t kIters = 40'000'000;
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x += i;
  }
  const auto t1 = Clock::now();
  const double jitter = static_cast<double>(x & 1) * 1e-9;
  return static_cast<double>(kIters) / Seconds(t0, t1) / 1e6 + jitter;
}

struct PhaseResult {
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

/// Answers every line one at a time, timing each round trip.
PhaseResult RunPhase(wsnlink::serve::QueryService& service,
                     const std::vector<std::string>& lines, int repeat) {
  std::vector<double> latencies_us;
  latencies_us.reserve(lines.size() * static_cast<std::size_t>(repeat));
  const auto t0 = Clock::now();
  for (int r = 0; r < repeat; ++r) {
    for (const std::string& line : lines) {
      const auto a = Clock::now();
      const std::string reply = service.Answer(line);
      const auto b = Clock::now();
      if (reply.find("\"status\":\"ok\"") == std::string::npos) {
        throw std::runtime_error("perf_serve: unexpected reply " + reply);
      }
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(b - a).count());
    }
  }
  const auto t1 = Clock::now();
  PhaseResult result;
  result.throughput_rps =
      static_cast<double>(latencies_us.size()) / Seconds(t0, t1);
  result.p50_us = Percentile(latencies_us, 0.50);
  result.p99_us = Percentile(latencies_us, 0.99);
  return result;
}

/// The fixed workload: `count` distinct what_if requests spanning the
/// Table I knobs (distinct canonical keys, so the cold phase is all
/// misses and the hot phase all hits).
std::vector<std::string> MakeWorkload(std::size_t count, int packets) {
  const int pa_levels[] = {3, 7, 11, 15, 19, 23, 27, 31};
  const int payloads[] = {10, 30, 50, 70, 90, 114};
  std::vector<std::string> lines;
  lines.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::ostringstream line;
    line << "{\"verb\":\"what_if\",\"distance_m\":20,\"pa_level\":"
         << pa_levels[i % 8] << ",\"max_tries\":3,\"retry_delay_ms\":0,"
         << "\"queue_capacity\":30,\"pkt_interval_ms\":100,"
         << "\"payload_bytes\":" << payloads[(i / 8) % 6]
         << ",\"packets\":" << packets << ",\"seed\":" << (1 + i / 48)
         << "}";
    lines.push_back(line.str());
  }
  return lines;
}

double JsonNumber(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1.0;
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return -1.0;
  auto begin = text.find_first_not_of(" \t\n", colon + 1);
  if (begin == std::string::npos) return -1.0;
  auto end = text.find_first_of(",\n}", begin);
  if (end == std::string::npos) end = text.size();
  const auto last = text.find_last_not_of(" \t", end - 1);
  try {
    return wsnlink::util::ParseDouble(text.substr(begin, last - begin + 1),
                                      key);
  } catch (const std::invalid_argument&) {
    return -1.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsnlink;
  try {
    const util::Args args(argc, argv);
    const std::size_t requests = args.GetSize("--requests", 48);
    const int packets = static_cast<int>(args.GetSize("--packets", 120));
    const int hot_repeat =
        static_cast<int>(args.GetSize("--hot-repeat", 20));
    const auto threads = static_cast<unsigned>(args.GetSize("--threads", 0));
    const double tolerance = args.GetDouble("--tolerance", 0.4);
    const double min_ratio = args.GetDouble("--min-ratio", 10.0);
    const std::string out_path = args.GetString("--out", "");
    const std::string check_path = args.GetString("--check", "");

    const std::vector<std::string> workload = MakeWorkload(requests, packets);

    serve::ServiceOptions options;
    options.threads = threads;
    serve::QueryService service(options);

    const double calib_mops = CalibrationScore();
    std::printf("perf_serve: %zu what_if requests x %d packets\n",
                workload.size(), packets);

    const PhaseResult cold = RunPhase(service, workload, 1);
    const serve::ServiceStats after_cold = service.Stats();
    if (after_cold.cache_misses != workload.size()) {
      std::fprintf(stderr, "perf_serve: cold phase had %llu misses, want"
                   " %zu\n",
                   static_cast<unsigned long long>(after_cold.cache_misses),
                   workload.size());
      return 2;
    }
    const PhaseResult hot = RunPhase(service, workload, hot_repeat);
    const serve::ServiceStats after_hot = service.Stats();
    if (after_hot.cache_misses != after_cold.cache_misses) {
      std::fprintf(stderr, "perf_serve: hot phase missed the cache\n");
      return 2;
    }

    const double ratio = hot.throughput_rps / cold.throughput_rps;
    const double normalized_hot = hot.throughput_rps / calib_mops;

    std::printf("  calib          %12.1f Mops/s\n", calib_mops);
    std::printf("  cold miss      %12.1f req/s  p50 %.0f us  p99 %.0f us\n",
                cold.throughput_rps, cold.p50_us, cold.p99_us);
    std::printf("  cache hit      %12.1f req/s  p50 %.1f us  p99 %.1f us\n",
                hot.throughput_rps, hot.p50_us, hot.p99_us);
    std::printf("  hit/miss ratio %12.1fx\n", ratio);

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      out << "{\n";
      out << "  \"schema\": \"wsnlink-bench-serve-v1\",\n";
      out << "  \"workload\": {\n";
      out << "    \"requests\": " << workload.size() << ",\n";
      out << "    \"packets_per_request\": " << packets << ",\n";
      out << "    \"hot_repeat\": " << hot_repeat << ",\n";
      out << "    \"threads\": " << threads << "\n";
      out << "  },\n";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f", cold.throughput_rps);
      out << "  \"cold_miss_rps\": " << buf << ",\n";
      std::snprintf(buf, sizeof(buf), "%.0f", cold.p50_us);
      out << "  \"cold_miss_p50_us\": " << buf << ",\n";
      std::snprintf(buf, sizeof(buf), "%.0f", cold.p99_us);
      out << "  \"cold_miss_p99_us\": " << buf << ",\n";
      std::snprintf(buf, sizeof(buf), "%.1f", hot.throughput_rps);
      out << "  \"cache_hit_rps\": " << buf << ",\n";
      std::snprintf(buf, sizeof(buf), "%.1f", hot.p50_us);
      out << "  \"cache_hit_p50_us\": " << buf << ",\n";
      std::snprintf(buf, sizeof(buf), "%.1f", hot.p99_us);
      out << "  \"cache_hit_p99_us\": " << buf << ",\n";
      std::snprintf(buf, sizeof(buf), "%.1f", ratio);
      out << "  \"hit_over_miss\": " << buf << ",\n";
      std::snprintf(buf, sizeof(buf), "%.1f", calib_mops);
      out << "  \"calibration_mops\": " << buf << ",\n";
      std::snprintf(buf, sizeof(buf), "%.2f", normalized_hot);
      out << "  \"cache_hit_rps_per_calib_mop\": " << buf << "\n";
      out << "}\n";
      std::printf("wrote %s\n", out_path.c_str());
    }

    if (!check_path.empty()) {
      std::ifstream in(check_path);
      if (!in) {
        std::fprintf(stderr, "perf_serve: cannot read %s\n",
                     check_path.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string baseline = buffer.str();
      const double base_norm =
          JsonNumber(baseline, "cache_hit_rps_per_calib_mop");
      if (base_norm <= 0.0) {
        std::fprintf(stderr, "perf_serve: no baseline metric in %s\n",
                     check_path.c_str());
        return 2;
      }
      if (ratio < min_ratio) {
        std::fprintf(stderr, "perf_serve: hit/miss ratio %.1fx is under the"
                     " %.1fx floor\n",
                     ratio, min_ratio);
        return 1;
      }
      if (normalized_hot < base_norm * (1.0 - tolerance)) {
        std::fprintf(stderr, "perf_serve: normalized hit throughput %.2f"
                     " regressed vs baseline %.2f (tolerance %.0f%%)\n",
                     normalized_hot, base_norm, tolerance * 100.0);
        return 1;
      }
      std::printf("check ok: %.2f vs baseline %.2f, ratio %.1fx >= %.1fx\n",
                  normalized_hot, base_norm, ratio, min_ratio);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_serve: %s\n", e.what());
    return 2;
  }
}
