// Fig. 11 — modelling the average number of transmissions (Eq. 7).
//
// Paper: measured mean tries vs SNR per payload size is fit by
// N_tries = 1 + a * l_D * exp(b * SNR) with a = 0.02, b = -0.18.
// We regenerate the measurement (sweeping power levels and fade depths to
// cover the SNR axis) and refit the model from the synthetic data. Each
// sample is one run's mean over acked packets against the run's ground-
// truth mean SNR — bucketing by per-packet delivery SNR would condition on
// retry luck and bias the low-SNR buckets upward.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/fit/bootstrap.h"
#include "core/fit/exponential_fit.h"
#include "core/models/ntries_model.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader("Fig. 11 - average number of transmissions vs SNR",
                     "fit N_tries = 1 + a*l_D*exp(b*SNR), a=0.02, b=-0.18");

  std::vector<core::fit::ScaledExpSample> samples;
  util::TextTable table({"payload[B]", "SNR[dB]", "mean N_tries(measured)",
                         "model (paper coeffs)"});
  const core::models::NtriesModel paper_model;

  for (const int payload : {20, 50, 110}) {
    for (const int level : {7, 11, 15, 19, 23, 27, 31}) {
      for (const double shadow : {0.0, -6.0}) {
        auto config = bench::DefaultConfig();
        config.distance_m = 35.0;
        config.pa_level = level;
        config.payload_bytes = payload;
        config.max_tries = 8;
        config.pkt_interval_ms = 60.0;
        auto options = bench::DefaultOptions(config, 500);
        options.seed = bench::kBenchSeed + payload * 11 + level +
                       static_cast<int>(-shadow);
        options.spatial_shadow_db = shadow;
        const auto result = node::RunLinkSimulation(options);
        const auto m = metrics::ComputeMetrics(result, 60.0);
        if (m.delivered_unique < 100) continue;  // dead link
        if (result.mean_snr_db < 4.0 || result.mean_snr_db > 24.0) continue;

        core::fit::ScaledExpSample s;
        s.payload_bytes = payload;
        s.snr_db = result.mean_snr_db;
        s.value = m.mean_tries_acked - 1.0;
        samples.push_back(s);

        table.NewRow()
            .Add(payload)
            .Add(result.mean_snr_db, 1)
            .Add(m.mean_tries_acked, 3)
            .Add(paper_model.MeanTries(payload, result.mean_snr_db), 3);
      }
    }
  }
  std::cout << table;

  const auto fit = core::fit::FitScaledExponential(samples);
  if (fit) {
    std::cout << "\nrefit of Eq. (7) from synthetic data:  a = "
              << util::FormatDouble(fit->coefficients.a, 4)
              << "  b = " << util::FormatDouble(fit->coefficients.b, 3)
              << "   (paper: a = 0.02, b = -0.18)\n"
              << "log-domain R^2 = "
              << util::FormatDouble(fit->log_r_squared, 3)
              << ", RMSE = " << util::FormatDouble(fit->rmse, 4) << "\n";
    // The paper quotes its coefficients "with 95% confidence level";
    // bootstrap the synthetic refit the same way.
    const auto ci = core::fit::BootstrapScaledExponential(
        samples, util::Rng(bench::kBenchSeed), {200, 0.95});
    if (ci) {
      std::cout << "95% CI:  a in [" << util::FormatDouble(ci->a.lo, 4)
                << ", " << util::FormatDouble(ci->a.hi, 4) << "],  b in ["
                << util::FormatDouble(ci->b.lo, 3) << ", "
                << util::FormatDouble(ci->b.hi, 3) << "]  ("
                << ci->successful_replicates << " replicates)\n";
    }
  } else {
    std::cout << "\nrefit failed (insufficient samples)\n";
  }
  return 0;
}
