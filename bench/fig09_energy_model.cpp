// Fig. 9 — the empirical U_eng model: optimal payload size vs SNR.
//
// Paper: the energy-optimal l_D is the maximum (114 B) down to ~17 dB and
// shrinks below 40 B by 5 dB; at 17 dB the maximum payload is the best
// configuration overall.
#include <iostream>

#include "bench_common.h"
#include "core/models/energy_model.h"
#include "phy/frame.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Fig. 9 - model U_eng vs payload size across SNR (P_tx = 3 curve "
      "shape; optimum vs SNR)",
      "optimal l_D = 114 above ~17 dB, < 40 B at 5 dB");

  const core::models::EnergyModel model;

  // U_eng vs payload for a few SNR values (the figure's curves).
  util::TextTable curves({"payload[B]", "U@5dB", "U@9dB", "U@13dB", "U@17dB",
                          "U@21dB"});
  for (const int payload : {5, 10, 20, 30, 40, 60, 80, 100, 114}) {
    curves.NewRow().Add(payload);
    for (const double snr : {5.0, 9.0, 13.0, 17.0, 21.0}) {
      curves.Add(model.MicrojoulesPerBit(payload, snr, 3), 3);
    }
  }
  std::cout << curves;

  // The optimum trace (the figure's envelope).
  std::cout << "\nenergy-optimal payload vs SNR (any fixed P_tx):\n";
  util::TextTable optimum({"SNR[dB]", "optimal lD[B]", "U_eng[uJ/bit]"});
  for (double snr = 5.0; snr <= 21.0; snr += 1.0) {
    const int best = model.OptimalPayload(snr, 3);
    optimum.NewRow().Add(snr, 0).Add(best).Add(
        model.MicrojoulesPerBit(best, snr, 3), 3);
  }
  std::cout << optimum
            << "\n(paper: optimum reaches the 114 B maximum at ~17 dB and "
               "falls below 40 B at 5 dB)\n";
  return 0;
}
