// Extension study — node mobility (paper discussion factor).
//
// Sec. VIII-D names node mobility as a factor with possibly large impact.
// A sender patrols between 10 m and 35 m while reporting every 100 ms.
// Three policies ride the same walk:
//   * static-low:   fixed config tuned for the near position,
//   * static-high:  fixed config tuned for the far position,
//   * adaptive:     the model-driven controller (core/opt/adaptive.h)
//                   re-deriving power/payload from the receiver's EWMA SNR.
// The adaptive run executes epoch-by-epoch: each epoch simulates 100
// packets at the controller's current config, feeds the measured SNR and
// losses back, and lets the controller reconfigure.
#include <iostream>

#include "bench_common.h"
#include "core/opt/adaptive.h"
#include "metrics/link_metrics.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

constexpr double kSpeedMps = 0.5;
constexpr int kPacketsPerEpoch = 100;
constexpr int kEpochs = 12;

node::SimulationOptions EpochOptions(const core::StackConfig& config,
                                     double start_distance, int epoch) {
  node::SimulationOptions options;
  options.config = config;
  options.config.distance_m = start_distance;
  options.seed = bench::kBenchSeed + epoch;
  options.packet_count = kPacketsPerEpoch;
  options.mobility_speed_mps = kSpeedMps;
  options.mobility_min_m = 10.0;
  options.mobility_max_m = 35.0;
  return options;
}

/// Distance the walker reaches after `epoch` epochs of 100 * 100 ms.
double DistanceAtEpochStart(int epoch) {
  channel::MobilityParams params;
  params.speed_mps = kSpeedMps;
  params.min_distance_m = 10.0;
  params.max_distance_m = 35.0;
  const channel::MobilityModel model(params, 10.0);
  return model.DistanceAt(static_cast<sim::Time>(epoch) * kPacketsPerEpoch *
                          100 * sim::kMillisecond);
}

struct Totals {
  double energy = 0.0;
  double loss = 0.0;
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension - mobility: static vs adaptive configuration on a walking "
      "node (10 m <-> 35 m at 0.5 m/s, 10 readings/s)",
      "discussion factor of Sec. VIII-D: node mobility");

  // Tuned for the 10 m position: the lowest PA level still meets a 5% loss
  // ceiling there, with the energy-optimal payload for its ~11 dB SNR.
  // It is the right choice for a parked node — and it dies at 35 m.
  core::StackConfig static_low;
  static_low.pa_level = 3;
  static_low.max_tries = 3;
  static_low.queue_capacity = 5;
  static_low.pkt_interval_ms = 100.0;
  static_low.payload_bytes = 70;

  core::StackConfig static_high = static_low;  // tuned for 35 m
  static_high.pa_level = 31;
  static_high.payload_bytes = 80;

  core::opt::AdaptiveControllerConfig policy;
  policy.objective = core::opt::AdaptationObjective::kEnergy;
  policy.radio_loss_ceiling = 0.05;
  policy.packets_per_epoch = kPacketsPerEpoch;
  core::opt::AdaptiveController controller(core::models::ModelSet(),
                                           static_high, policy);

  util::TextTable table({"epoch", "distance[m]", "policy", "Ptx", "lD",
                         "loss", "energy[uJ/bit]"});
  Totals low_totals;
  Totals high_totals;
  Totals adaptive_totals;

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const double d = DistanceAtEpochStart(epoch);

    const auto low = metrics::MeasureConfig(EpochOptions(static_low, d, epoch));
    low_totals.energy += low.energy_uj_per_bit;
    low_totals.loss += low.plr_total;

    const auto high =
        metrics::MeasureConfig(EpochOptions(static_high, d, epoch));
    high_totals.energy += high.energy_uj_per_bit;
    high_totals.loss += high.plr_total;

    const auto adaptive_config = controller.Config();
    const auto adaptive =
        metrics::MeasureConfig(EpochOptions(adaptive_config, d, epoch));
    adaptive_totals.energy += adaptive.energy_uj_per_bit;
    adaptive_totals.loss += adaptive.plr_total;

    // Feed the controller what its radio saw this epoch.
    for (int i = 0; i < kPacketsPerEpoch; ++i) {
      if (adaptive.delivered_unique > 0 &&
          i < static_cast<int>(adaptive.delivered_unique)) {
        controller.ReportReception(adaptive.mean_snr_db);
      } else {
        controller.ReportLoss();
      }
    }
    (void)controller.MaybeReconfigure();

    table.NewRow()
        .Add(epoch)
        .Add(d, 1)
        .Add("adaptive")
        .Add(adaptive_config.pa_level)
        .Add(adaptive_config.payload_bytes)
        .Add(adaptive.plr_total, 3)
        .Add(adaptive.energy_uj_per_bit, 3);
  }
  std::cout << table << "\n";

  util::TextTable summary({"policy", "mean loss", "mean energy[uJ/bit]"});
  const auto row = [&](const char* name, const Totals& t) {
    summary.NewRow()
        .Add(name)
        .Add(t.loss / kEpochs, 3)
        .Add(t.energy / kEpochs, 3);
  };
  row("static low-power (10 m tuning)", low_totals);
  row("static high-power (35 m tuning)", high_totals);
  row("adaptive controller", adaptive_totals);
  std::cout << summary
            << "\n(" << controller.Reconfigurations()
            << " reconfigurations; adaptive should approach the loss of the "
               "high-power tuning at materially lower energy)\n";
  return 0;
}
