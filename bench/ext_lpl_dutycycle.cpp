// Extension study — duty-cycled MAC wakeup interval (paper future work).
//
// Sec. VIII-D: "MAC parameters related to periodic wake-ups also have great
// impact on the performance." This bench sweeps the LPL wakeup interval on
// a healthy link and prints the resulting three-way trade-off:
//   * sender energy per delivered bit (grows with the interval: longer
//     packet trains),
//   * receiver idle listening power (shrinks with the interval: lower duty
//     cycle),
//   * delay (grows: rendezvous waits half an interval on average).
// The total-energy column combines both radios for a periodic workload,
// exposing the classic optimal intermediate wakeup interval.
#include <iostream>

#include "bench_common.h"
#include "mac/lpl_mac.h"
#include "metrics/link_metrics.h"
#include "phy/cc2420.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Extension - LPL wakeup interval trade-off (20 m link, 60 B packets "
      "every 2 s)",
      "future-work factor of Sec. VIII-D: periodic wake-ups");

  util::TextTable table({"wakeup[ms]", "rx duty", "rx idle[mW]",
                         "tx energy[uJ/bit]", "delay[ms]", "loss",
                         "total energy[mW]"});
  constexpr double kIntervalMs = 1995.0;  // ~2 s, coprime to the wakeup
                                          // intervals so rendezvous phases
                                          // rotate instead of aliasing
  constexpr double kPayload = 60.0;

  // Always-on CSMA reference row.
  {
    auto config = bench::DefaultConfig();
    config.distance_m = 20.0;
    config.pa_level = 19;
    config.max_tries = 3;
    config.queue_capacity = 5;
    config.pkt_interval_ms = kIntervalMs;
    config.payload_bytes = static_cast<int>(kPayload);
    auto options = bench::DefaultOptions(config, 250);
    const auto m = metrics::MeasureConfig(options);
    const double rx_mw = phy::kSupplyVolts * phy::kRxCurrentMa;  // always on
    const double tx_mw = m.energy_uj_per_bit * kPayload * 8.0 / kIntervalMs;
    table.NewRow()
        .Add("always-on")
        .Add(1.0, 3)
        .Add(rx_mw, 2)
        .Add(m.energy_uj_per_bit, 3)
        .Add(m.mean_delay_ms, 1)
        .Add(m.plr_total, 3)
        .Add(rx_mw + tx_mw, 2);
  }

  for (const double wakeup_ms : {50.0, 100.0, 200.0, 500.0, 1000.0}) {
    auto config = bench::DefaultConfig();
    config.distance_m = 20.0;
    config.pa_level = 19;
    config.max_tries = 3;
    config.queue_capacity = 5;
    config.pkt_interval_ms = kIntervalMs;
    config.payload_bytes = static_cast<int>(kPayload);
    auto options = bench::DefaultOptions(config, 250);
    options.mac = node::MacKind::kLpl;
    options.lpl_wakeup_interval_ms = wakeup_ms;
    options.seed = bench::kBenchSeed + static_cast<int>(wakeup_ms);
    const auto m = metrics::MeasureConfig(options);

    const double duty = 11.0 / wakeup_ms;
    const double rx_mw = duty * phy::kSupplyVolts * phy::kRxCurrentMa;
    const double tx_mw = m.energy_uj_per_bit * kPayload * 8.0 / kIntervalMs;
    table.NewRow()
        .Add(wakeup_ms, 0)
        .Add(duty, 3)
        .Add(rx_mw, 2)
        .Add(m.energy_uj_per_bit, 3)
        .Add(m.mean_delay_ms, 1)
        .Add(m.plr_total, 3)
        .Add(rx_mw + tx_mw, 2);
  }
  std::cout << table
            << "\n(sender trains get longer with the wakeup interval while "
               "the receiver sleeps more: total energy is minimised at an "
               "intermediate interval)\n";
  return 0;
}
