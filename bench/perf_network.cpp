// Macro-benchmark for the optimistic parallel network engine.
//
// Runs contended uniform topologies at a ladder of node counts, each at a
// ladder of --sim-threads values, and reports committed events/sec per
// cell plus parallel speedup and scaling efficiency versus the sequential
// kernel at the same node count. Because the engine's contract is
// bit-identity, events/sec measures *useful* throughput: rolled-back
// speculative executions never enter events_executed, so speculation
// overhead shows up as wall-clock, not as inflated event counts. The
// binary also asserts that contract once per invocation (sequential vs
// parallel aggregate row on the smallest rung) — a perf bench that
// silently benchmarks wrong results would be worse than none.
//
// `--check <json>` re-runs the workload and fails (exit 1) if the
// calibration-normalized sequential events/sec regressed by more than the
// tolerance versus the committed BENCH_network.json — the CI perf-smoke
// gate. `--min-speedup X` additionally requires the 4-thread speedup on
// the largest rung to reach X, but only when the host actually has >= 4
// hardware threads; on smaller hosts (including the 1-core container this
// baseline was first recorded on) the speedup gate prints a skip and
// passes, because demanding parallel speedup without parallel hardware
// gates on noise.
//
// Usage:
//   perf_network [--out BENCH_network.json] [--check BENCH_network.json]
//                [--tolerance 0.30] [--min-speedup 0] [--nodes 64,256,1024]
//                [--threads 1,2,4] [--packets 15] [--repeat 1]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "experiment/contention.h"
#include "node/network_simulation.h"
#include "util/args.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Same fixed integer workload as perf_sweep: calibrates machine speed so
// normalized figures are comparable across hosts.
double CalibrationScore() {
  constexpr std::uint64_t kIters = 40'000'000;
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x += i;
  }
  const auto t1 = Clock::now();
  const double jitter = static_cast<double>(x & 1) * 1e-9;
  return static_cast<double>(kIters) / Seconds(t0, t1) / 1e6 + jitter;
}

std::vector<int> ParseIntList(const std::string& list, const char* flag) {
  std::vector<int> out;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    out.push_back(
        wsnlink::util::ParsePositiveInt(list.substr(begin, end - begin), flag));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

wsnlink::node::NetworkOptions Topology(int nodes, int packets,
                                       int sim_threads) {
  wsnlink::node::SimulationOptions base;
  base.config.distance_m = 20.0;
  base.config.pkt_interval_ms = 25.0;
  base.seed = 20150629;
  base.packet_count = packets;
  // Pure emergent contention: every conflict the engine resolves comes
  // from the contenders, as in the contention study.
  base.disable_interference = true;
  base.interferer_duty_cycle = 0.0;
  auto network = wsnlink::node::UniformNetwork(
      base, std::vector<double>(static_cast<std::size_t>(nodes), 20.0));
  network.sim_threads = sim_threads;
  return network;
}

struct Cell {
  int nodes = 0;
  int threads = 0;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double speedup = 0.0;     // vs threads=1 at the same node count
  double efficiency = 0.0;  // speedup / threads
};

// Pulls `"key": <number>` out of a JSON file written by this tool (the
// bench owns both sides of the format). -1 when missing/non-numeric.
double JsonNumber(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1.0;
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return -1.0;
  auto begin = text.find_first_not_of(" \t\n", colon + 1);
  if (begin == std::string::npos) return -1.0;
  auto end = text.find_first_of(",\n}", begin);
  if (end == std::string::npos) end = text.size();
  const auto last = text.find_last_not_of(" \t", end - 1);
  try {
    return wsnlink::util::ParseDouble(text.substr(begin, last - begin + 1),
                                      key);
  } catch (const std::invalid_argument&) {
    return -1.0;
  }
}

void WriteJson(const std::string& path, const std::vector<Cell>& grid,
               const std::vector<int>& nodes, const std::vector<int>& threads,
               int packets, unsigned host_cores, double calib_mops,
               double seq_normalized, double speedup_4t) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"schema\": \"wsnlink-bench-network-v1\",\n";
  out << "  \"workload\": {\n    \"nodes\": [";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out << (i ? "," : "") << nodes[i];
  }
  out << "],\n    \"threads\": [";
  for (std::size_t i = 0; i < threads.size(); ++i) {
    out << (i ? "," : "") << threads[i];
  }
  out << "],\n    \"packets_per_node\": " << packets
      << ",\n    \"base_seed\": 20150629\n  },\n";
  out << "  \"host_cores\": " << host_cores << ",\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", calib_mops);
  out << "  \"calibration_mops\": " << buf << ",\n";
  out << "  \"grid\": [\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Cell& c = grid[i];
    std::snprintf(buf, sizeof(buf), "%.0f", c.events_per_sec);
    out << "    {\"nodes\": " << c.nodes << ", \"threads\": " << c.threads
        << ", \"events_per_sec\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", c.speedup);
    out << ", \"speedup\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", c.efficiency);
    out << ", \"efficiency\": " << buf << "}"
        << (i + 1 < grid.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  std::snprintf(buf, sizeof(buf), "%.2f", seq_normalized);
  out << "  \"seq_events_per_sec_per_calib_mop\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.3f", speedup_4t);
  out << "  \"speedup_4t_largest\": " << buf << "\n";
  out << "}\n";
}

std::string AggregateRow(const wsnlink::node::NetworkResult& r) {
  wsnlink::experiment::ContentionPoint point;
  point.nodes = static_cast<int>(r.nodes.size());
  point.result = r;
  return wsnlink::experiment::SerializeContentionRow(point);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsnlink;

  util::Args args(argc, argv, {});
  const auto node_list = ParseIntList(args.GetString("--nodes", "64,256,1024"),
                                      "--nodes");
  const auto thread_list =
      ParseIntList(args.GetString("--threads", "1,2,4"), "--threads");
  const int packets = args.GetPositiveInt("--packets", 15);
  const auto repeat = args.GetSize("--repeat", 1);
  const double tolerance = args.GetDouble("--tolerance", 0.30);
  const double min_speedup = args.GetDouble("--min-speedup", 0.0);
  const std::string out_path = args.GetString("--out", "");
  const std::string check_path = args.GetString("--check", "");
  const unsigned host_cores = std::thread::hardware_concurrency();

  std::printf("perf_network: %zu node rungs x %zu thread counts, %d "
              "packets/node, host_cores=%u\n",
              node_list.size(), thread_list.size(), packets, host_cores);

  // Bit-identity spot check on the smallest rung: a perf number for an
  // engine that diverges from the sequential kernel is meaningless.
  {
    const int smallest = node_list.front();
    const auto seq =
        node::RunNetworkSimulation(Topology(smallest, packets, 1));
    const auto par =
        node::RunNetworkSimulation(Topology(smallest, packets, 4));
    if (AggregateRow(seq) != AggregateRow(par)) {
      std::fprintf(stderr,
                   "perf_network: BIT-IDENTITY VIOLATION at %d nodes — "
                   "sequential and 4-thread aggregate rows differ\n",
                   smallest);
      return 1;
    }
  }

  const double calib_mops = CalibrationScore();
  std::vector<Cell> grid;
  double seq_events_largest = 0.0;
  double speedup_4t = 0.0;
  for (const int nodes : node_list) {
    double seq_eps = 0.0;
    for (const int threads : thread_list) {
      Cell cell;
      cell.nodes = nodes;
      cell.threads = threads;
      cell.seconds = 1e300;
      for (std::size_t r = 0; r < repeat; ++r) {
        const auto options = Topology(nodes, packets, threads);
        const auto t0 = Clock::now();
        const auto result = node::RunNetworkSimulation(options);
        const auto t1 = Clock::now();
        const double elapsed = Seconds(t0, t1);
        if (elapsed < cell.seconds) {
          cell.seconds = elapsed;
          cell.events = result.events_executed;
        }
      }
      cell.events_per_sec =
          static_cast<double>(cell.events) / cell.seconds;
      if (threads == 1) seq_eps = cell.events_per_sec;
      cell.speedup = seq_eps > 0.0 ? cell.events_per_sec / seq_eps : 0.0;
      cell.efficiency = cell.speedup / threads;
      std::printf("  nodes=%5d threads=%2d  %12.0f events/sec  "
                  "speedup %5.2f  efficiency %5.2f\n",
                  nodes, threads, cell.events_per_sec, cell.speedup,
                  cell.efficiency);
      if (nodes == node_list.back()) {
        if (threads == 1) seq_events_largest = cell.events_per_sec;
        if (threads == 4) speedup_4t = cell.speedup;
      }
      grid.push_back(cell);
    }
  }
  const double seq_normalized = seq_events_largest / calib_mops;
  std::printf("  calib        %10.1f Mops/s\n", calib_mops);
  std::printf("  seq normalized (largest rung) %10.2f events/sec per "
              "calib Mop\n",
              seq_normalized);

  if (!out_path.empty()) {
    WriteJson(out_path, grid, node_list, thread_list, packets, host_cores,
              calib_mops, seq_normalized, speedup_4t);
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::fprintf(stderr, "perf_network: cannot read %s\n",
                   check_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const double committed =
        JsonNumber(ss.str(), "seq_events_per_sec_per_calib_mop");
    if (committed <= 0.0) {
      std::fprintf(stderr, "perf_network: no baseline metric in %s\n",
                   check_path.c_str());
      return 2;
    }
    const double floor = committed * (1.0 - tolerance);
    std::printf("check: normalized %.2f vs committed %.2f (floor %.2f)\n",
                seq_normalized, committed, floor);
    if (seq_normalized < floor) {
      std::fprintf(stderr,
                   "perf_network: REGRESSION — normalized sequential "
                   "throughput %.2f is below %.2f (committed %.2f - %g%%)\n",
                   seq_normalized, floor, committed, tolerance * 100);
      return 1;
    }
    std::printf("check: OK\n");
  }

  if (min_speedup > 0.0) {
    if (host_cores < 4) {
      std::printf("speedup gate: SKIPPED — host has %u hardware threads, "
                  "gate needs >= 4\n",
                  host_cores);
    } else {
      std::printf("speedup gate: %.2fx at 4 threads on %d nodes "
                  "(minimum %.2fx)\n",
                  speedup_4t, node_list.back(), min_speedup);
      if (speedup_4t < min_speedup) {
        std::fprintf(stderr,
                     "perf_network: REGRESSION — 4-thread speedup %.2fx "
                     "on the largest rung is below the %.2fx floor\n",
                     speedup_4t, min_speedup);
        return 1;
      }
    }
  }
  return 0;
}
