// Fig. 13 — model maxGoodput vs payload size, with and without
// retransmissions, across link qualities.
//
// Paper: in the low-loss zone the optimal payload is always the maximum;
// in the grey zone the optimum shrinks with SNR and grows with N_maxTries.
#include <iostream>

#include "bench_common.h"
#include "core/models/goodput_model.h"
#include "phy/frame.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

void Panel(const char* title, int max_tries) {
  std::cout << "\n" << title << " (N_maxTries = " << max_tries << ")\n";
  const core::models::GoodputModel model;
  util::TextTable table({"payload[B]", "G@6dB", "G@9dB", "G@12dB", "G@15dB",
                         "G@20dB  [kbps]"});
  for (const int payload : {5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 114}) {
    table.NewRow().Add(payload);
    for (const double snr : {6.0, 9.0, 12.0, 15.0, 20.0}) {
      core::models::ServiceTimeInputs in;
      in.payload_bytes = payload;
      in.snr_db = snr;
      in.max_tries = max_tries;
      table.Add(model.MaxGoodputKbps(in), 2);
    }
  }
  std::cout << table << "goodput-optimal payload: ";
  for (const double snr : {6.0, 9.0, 12.0, 15.0, 20.0}) {
    std::cout << snr << "dB -> " << model.OptimalPayload(snr, max_tries)
              << "B  ";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 13 - model maxGoodput vs payload size",
      "low-loss zone: max payload optimal; grey zone: optimum shrinks with "
      "SNR and grows with N_maxTries");
  Panel("(a) without retransmission", 1);
  Panel("(b) with retransmission", 8);
  return 0;
}
