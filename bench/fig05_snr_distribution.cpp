// Fig. 5 — distribution of the real SNR vs the SNR computed by assuming a
// constant -95 dBm noise floor.
//
// The paper's point: the noise floor is a distribution (24M samples), not a
// constant, so the "constant-noise SNR" misrepresents the link, especially
// in the upper tail where interference bursts compress the real SNR.
#include <iostream>

#include "bench_common.h"
#include "channel/channel.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader("Fig. 5 - real vs constant-noise SNR distribution",
                     "noise floor is a right-skewed distribution with mean "
                     "~ -95 dBm; constant-noise SNR overstates the tail");

  channel::ChannelConfig config;
  config.distance_m = 25.0;
  channel::Channel channel(config, util::Rng(bench::kBenchSeed));

  const double mean_rssi = channel.MeanRssiDbm(0.0);  // P_tx = 31
  constexpr double kAssumedNoise = -95.0;

  // Scaled-down version of the paper's 24M noise samples.
  constexpr int kSamples = 400'000;
  util::Histogram noise_hist(-100.0, -80.0, 40);
  util::Histogram real_snr(10.0, 35.0, 25);
  util::RunningStats noise_stats;
  util::RunningStats real_stats;
  for (int i = 0; i < kSamples; ++i) {
    const auto t = static_cast<sim::Time>(i) * 250;  // 4 kHz sampling
    const double noise = channel.SampleNoiseFloorDbm(t);
    noise_stats.Add(noise);
    noise_hist.Add(noise);
    real_stats.Add(mean_rssi - noise);
    real_snr.Add(mean_rssi - noise);
  }
  const double constant_snr = mean_rssi - kAssumedNoise;

  std::cout << "noise floor: mean = "
            << util::FormatDouble(noise_stats.Mean(), 2)
            << " dBm, stddev = " << util::FormatDouble(noise_stats.StdDev(), 2)
            << " dB, min = " << util::FormatDouble(noise_stats.Min(), 1)
            << ", max = " << util::FormatDouble(noise_stats.Max(), 1) << "\n"
            << "real SNR:   mean = " << util::FormatDouble(real_stats.Mean(), 2)
            << " dB, stddev = " << util::FormatDouble(real_stats.StdDev(), 2)
            << "\n"
            << "constant-noise SNR (noise = -95 dBm): "
            << util::FormatDouble(constant_snr, 2) << " dB\n"
            << "\nnoise floor histogram [dBm]:\n"
            << noise_hist.ToAscii(44) << "\nreal SNR histogram [dB]:\n"
            << real_snr.ToAscii(44);
  return 0;
}
