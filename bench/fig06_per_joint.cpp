// Fig. 6 — joint effects of SNR and payload size on PER.
//
// (a) PER vs SNR scatter with a smooth (not cliff-like) grey zone;
// (b) the transition slope is gentler for larger payloads;
// (c) PER grows with payload size, with a magnitude that depends on SNR;
// (d) the three joint-effect zones: high impact (5-12 dB), medium impact
//     (12-19 dB), low impact (>= 19 dB).
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/models/per_model.h"
#include "metrics/aggregate.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

/// Pools attempt records across power levels so every SNR bucket is hit.
std::vector<link::AttemptRecord> CollectAttempts(int payload_bytes) {
  std::vector<link::AttemptRecord> all;
  for (const int level : {3, 7, 11, 15, 19, 23, 27, 31}) {
    auto config = bench::DefaultConfig();
    config.pa_level = level;
    config.payload_bytes = payload_bytes;
    config.pkt_interval_ms = 25.0;
    auto options = bench::DefaultOptions(config, 900);
    options.seed = bench::kBenchSeed + level * 13 + payload_bytes;
    const auto result = node::RunLinkSimulation(options);
    const auto& attempts = result.log.Attempts();
    all.insert(all.end(), attempts.begin(), attempts.end());
  }
  return all;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 6 - joint effects of SNR and payload size on PER",
      "(a,b) smooth grey-zone transition, gentler for large l_D; (c) PER "
      "grows with l_D, magnitude depends on SNR; (d) 3 joint-effect zones");

  // ---- (a)+(b): PER vs SNR for min / max payload --------------------
  const auto small = CollectAttempts(5);
  const auto large = CollectAttempts(110);

  util::TextTable ab({"SNR bucket[dB]", "PER(lD=5)", "PER(lD=110)",
                      "model(lD=110)"});
  const core::models::PerModel model;
  const auto small_buckets = metrics::PerBySnr(small, 2.0);
  const auto large_buckets = metrics::PerBySnr(large, 2.0);
  for (const auto& bucket : large_buckets) {
    if (bucket.attempts < 40 || bucket.snr_center_db < 3.0 ||
        bucket.snr_center_db > 27.0) {
      continue;
    }
    ab.NewRow().Add(bucket.snr_center_db, 1);
    // Find the matching small-payload bucket (may be absent).
    bool found = false;
    for (const auto& sb : small_buckets) {
      if (sb.snr_center_db == bucket.snr_center_db && sb.attempts >= 40) {
        ab.Add(sb.Per(), 3);
        found = true;
        break;
      }
    }
    if (!found) ab.Add("-");
    ab.Add(bucket.Per(), 3);
    ab.Add(model.Per(110, bucket.snr_center_db), 3);
  }
  std::cout << ab;

  // ---- (c): PER vs payload at fixed SNR ------------------------------
  std::cout << "\n(c) PER vs payload size at fixed link quality:\n";
  util::TextTable c({"payload[B]", "PER @ ~9dB", "PER @ ~14dB", "PER @ ~24dB"});
  for (const int payload : {5, 20, 35, 50, 65, 95, 110}) {
    c.NewRow().Add(payload);
    for (const int level : {7, 11, 31}) {
      auto config = bench::DefaultConfig();
      config.pa_level = level;
      config.payload_bytes = payload;
      config.pkt_interval_ms = 25.0;
      auto options = bench::DefaultOptions(config, 700);
      options.seed = bench::kBenchSeed + level * 7 + payload * 3;
      const auto result = node::RunLinkSimulation(options);
      const auto m = metrics::ComputeMetrics(result, 25.0);
      c.Add(m.per, 3);
    }
  }
  std::cout << c;

  // ---- (d): the three joint-effect zones ------------------------------
  std::cout << "\n(d) joint-effect zones (from the Fig. 6 analysis):\n"
            << "  high-impact zone:   5 dB <= SNR < 12 dB\n"
            << "  medium-impact zone: 12 dB <= SNR < 19 dB\n"
            << "  low-impact zone:    SNR >= 19 dB\n";
  util::TextTable d({"zone", "avg PER(lD=5)", "avg PER(lD=110)", "spread"});
  const auto zone_row = [&](const char* name, double lo, double hi) {
    double sum_small = 0.0;
    double sum_large = 0.0;
    int n_small = 0;
    int n_large = 0;
    for (const auto& b : small_buckets) {
      if (b.snr_center_db >= lo && b.snr_center_db < hi && b.attempts >= 40) {
        sum_small += b.Per();
        ++n_small;
      }
    }
    for (const auto& b : large_buckets) {
      if (b.snr_center_db >= lo && b.snr_center_db < hi && b.attempts >= 40) {
        sum_large += b.Per();
        ++n_large;
      }
    }
    const double avg_small = n_small ? sum_small / n_small : 0.0;
    const double avg_large = n_large ? sum_large / n_large : 0.0;
    d.NewRow().Add(name).Add(avg_small, 3).Add(avg_large, 3).Add(
        avg_large - avg_small, 3);
  };
  zone_row("high   (5-12 dB)", 5.0, 12.0);
  zone_row("medium (12-19 dB)", 12.0, 19.0);
  zone_row("low    (>=19 dB)", 19.0, 40.0);
  std::cout << d;
  return 0;
}
