// Extension — the energy/goodput Pareto front behind Fig. 1.
//
// Fig. 1 shows a handful of points; the underlying structure is the Pareto
// front of the whole configuration space. This bench evaluates the
// model-predicted front on the case-study link, shows where each
// single-parameter baseline lands relative to it, and quantifies the
// distance-to-front of every baseline (the paper's "sub-optimal trade-off"
// claim made precise).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/models/model_set.h"
#include "core/opt/baselines.h"
#include "core/opt/epsilon_constraint.h"
#include "core/opt/pareto.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Extension - model Pareto front (energy vs goodput), case-study link",
      "single-knob tuning lands strictly inside the joint-tuning front");

  constexpr double kShadowDb = -17.3;
  const core::models::ModelSet models(
      core::models::kPaperPerFit, core::models::kPaperNtriesFit,
      core::models::kPaperPlrFit,
      core::models::LinkQualityMap(channel::PathLossParams{}, -95.0,
                                   kShadowDb));

  // The joint search space of the case study (power x payload x retries).
  const auto base = core::opt::CaseStudyBaseConfig(35.0);
  core::opt::ConfigSpace space;
  space.distances_m = {base.distance_m};
  space.pa_levels = {3, 7, 11, 15, 19, 23, 27, 31};
  space.max_tries = {1, 2, 3, 5, 8};
  space.retry_delays_ms = {0.0};
  space.queue_capacities = {base.queue_capacity};
  space.pkt_intervals_ms = {base.pkt_interval_ms};
  space.payload_bytes = {5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 114};

  const auto points = core::opt::EvaluateSpace(models, space);
  const std::vector<core::opt::Metric> axes{core::opt::Metric::kEnergy,
                                            core::opt::Metric::kGoodput};
  auto front = core::opt::ParetoFront(points, axes);
  std::sort(front.begin(), front.end(), [](const auto& a, const auto& b) {
    return a.prediction.energy_uj_per_bit < b.prediction.energy_uj_per_bit;
  });

  std::cout << "space: " << points.size() << " configurations, front: "
            << front.size() << " non-dominated\n\n";
  util::TextTable front_table(
      {"config", "goodput[kbps]", "energy[uJ/bit]"});
  for (const auto& p : front) {
    if (!std::isfinite(p.prediction.energy_uj_per_bit)) continue;
    front_table.NewRow()
        .Add(p.config.ToString())
        .Add(p.prediction.max_goodput_kbps, 2)
        .Add(p.prediction.energy_uj_per_bit, 3);
  }
  std::cout << front_table;

  // Where do the single-knob baselines land? Distance to the front along
  // the goodput axis at matching-or-lower energy.
  std::cout << "\nbaselines vs the front:\n";
  util::TextTable baseline_table({"policy", "goodput[kbps]", "energy[uJ/bit]",
                                  "goodput lost vs front [kbps]"});
  for (const auto& choice :
       {core::opt::TunePowerBaseline(base),
        core::opt::TuneRetransmissionsBaseline(base),
        core::opt::MinPayloadBaseline(base),
        core::opt::MaxPayloadBaseline(base)}) {
    const auto p = models.Predict(choice.config);
    // Best front goodput achievable at no more energy than this baseline.
    double best = 0.0;
    for (const auto& f : front) {
      if (f.prediction.energy_uj_per_bit <= p.energy_uj_per_bit + 1e-9) {
        best = std::max(best, f.prediction.max_goodput_kbps);
      }
    }
    baseline_table.NewRow()
        .Add(choice.name)
        .Add(p.max_goodput_kbps, 2)
        .Add(p.energy_uj_per_bit, 3)
        .Add(best - p.max_goodput_kbps, 2);
  }
  std::cout << baseline_table
            << "\n(every single-knob policy leaves goodput on the table at "
               "its own energy budget)\n";
  return 0;
}
