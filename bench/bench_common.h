// Shared helpers for the figure/table bench binaries.
//
// Every bench prints the rows/series of one paper table or figure from a
// deterministic simulated sweep. The helpers here keep configuration
// construction and headers consistent across binaries.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "core/stack_config.h"
#include "node/link_simulation.h"
#include "util/table.h"

namespace wsnlink::bench {

/// Common fixed seed: every bench is reproducible run-to-run.
inline constexpr std::uint64_t kBenchSeed = 20150629;  // ICDCS'15 first day

/// A mid-workload configuration to perturb per figure.
inline core::StackConfig DefaultConfig() {
  core::StackConfig config;
  config.distance_m = 35.0;
  config.pa_level = 31;
  config.max_tries = 1;
  config.retry_delay_ms = 0.0;
  config.queue_capacity = 1;
  config.pkt_interval_ms = 100.0;
  config.payload_bytes = 110;
  return config;
}

/// Simulation options with bench defaults (seed, packet budget).
inline node::SimulationOptions DefaultOptions(const core::StackConfig& config,
                                              int packets = 600) {
  node::SimulationOptions options;
  options.config = config;
  options.seed = kBenchSeed;
  options.packet_count = packets;
  return options;
}

/// Header block naming the figure and what the paper reported.
inline void PrintHeader(const std::string& id, const std::string& claim) {
  std::cout << "==========================================================\n"
            << id << "\n"
            << "paper: " << claim << "\n"
            << "==========================================================\n";
}

}  // namespace wsnlink::bench
