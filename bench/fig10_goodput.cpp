// Fig. 10 — goodput vs SNR under the four canonical MAC configurations:
//   (a) no queue, no retransmission      (Qmax=1, N=1)
//   (b) no queue, retransmission         (Qmax=1, N=8)
//   (c) queue, no retransmission         (Qmax=30, N=1)
//   (d) queue and retransmission         (Qmax=30, N=8)
// for two workloads (T_pkt = 30 ms and 100 ms, l_D = 110 B).
//
// Paper: goodput rises with SNR until ~19 dB, then flattens; smaller T_pkt
// gives higher goodput (more offered load).
#include <iostream>

#include "bench_common.h"
#include "metrics/link_metrics.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

void RunPanel(const char* name, int queue_capacity, int max_tries) {
  std::cout << "\n(" << name << ")  Qmax=" << queue_capacity
            << "  NmaxTries=" << max_tries << "\n";
  util::TextTable table({"Ptx", "SNR[dB]", "goodput[kbps] Tpkt=30ms",
                         "goodput[kbps] Tpkt=100ms"});
  for (const int level : {3, 7, 11, 15, 19, 23, 27, 31}) {
    table.NewRow().Add(level);
    bool snr_added = false;
    for (const double interval : {30.0, 100.0}) {
      auto config = bench::DefaultConfig();
      config.distance_m = 35.0;
      config.pa_level = level;
      config.queue_capacity = queue_capacity;
      config.max_tries = max_tries;
      config.pkt_interval_ms = interval;
      config.payload_bytes = 110;
      auto options = bench::DefaultOptions(config, 700);
      options.seed = bench::kBenchSeed + level * 3 + max_tries +
                     queue_capacity + static_cast<int>(interval);
      const auto result = node::RunLinkSimulation(options);
      const auto m = metrics::ComputeMetrics(result, interval);
      if (!snr_added) {
        table.Add(result.mean_snr_db, 1);
        snr_added = true;
      }
      table.Add(m.goodput_kbps, 2);
    }
  }
  std::cout << table;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 10 - goodput vs SNR under 4 MAC configurations (35 m, 110 B)",
      "goodput increases with SNR until ~19 dB then flattens; smaller "
      "T_pkt -> more offered load -> higher goodput");
  RunPanel("a", 1, 1);
  RunPanel("b", 1, 8);
  RunPanel("c", 30, 1);
  RunPanel("d", 30, 8);
  return 0;
}
