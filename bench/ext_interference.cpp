// Extension study — concurrent transmissions (paper discussion factor).
//
// Sec. VIII-D: "One [factor] is concurrent transmission, which can cause
// extra packet loss due to packet collisions." This bench sweeps the
// offered load of a co-located 802.15.4 transmitter and shows (a) the extra
// loss on an otherwise-clean link, (b) how the retransmission budget buys
// the loss back at a delay/energy cost, and (c) CCA deferral pressure.
#include <iostream>

#include "bench_common.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Extension - concurrent-transmitter load vs loss/goodput (10 m link)",
      "discussion factor of Sec. VIII-D: collisions from concurrent "
      "transmissions");

  for (const int tries : {1, 5}) {
    std::cout << "\nN_maxTries = " << tries << "\n";
    util::TextTable table({"interferer load", "PLR_radio", "goodput[kbps]",
                           "mean tries", "delay[ms]", "CCA busy events"});
    for (const double duty : {0.0, 0.05, 0.1, 0.2, 0.4}) {
      auto config = bench::DefaultConfig();
      config.distance_m = 10.0;
      config.pa_level = 31;
      config.max_tries = tries;
      config.queue_capacity = 10;
      config.pkt_interval_ms = 40.0;
      config.payload_bytes = 110;
      auto options = bench::DefaultOptions(config, 700);
      options.seed = bench::kBenchSeed + tries * 1000 +
                     static_cast<int>(duty * 100);
      options.disable_interference = true;  // isolate the collision factor
      options.interferer_duty_cycle = duty;
      options.interferer_power_dbm = -55.0;  // above capture at 10 m
      const auto result = node::RunLinkSimulation(options);
      const auto m = metrics::ComputeMetrics(result, 40.0);
      table.NewRow()
          .Add(duty, 2)
          .Add(m.plr_radio, 3)
          .Add(m.goodput_kbps, 2)
          .Add(m.mean_tries_all, 2)
          .Add(m.mean_delay_ms, 2)
          .Add(static_cast<unsigned long>(result.cca_busy));
    }
    std::cout << table;
  }
  std::cout << "\n(retransmission recovers collision losses at the cost of "
               "tries/delay; CCA defers but cannot close the window of "
               "collisions that begin mid-frame)\n";
  return 0;
}
