// Extension — wholesale model validation over a campaign slice.
//
// Runs a strided slice of the full Table I campaign, validates every
// empirical model against the measurements (RMSE / bias / relative error in
// the models' validity window), and prints the per-zone aggregate view the
// paper's narrative is built on. This is the quantitative answer to "how
// well do the paper's models describe this channel?".
#include <iostream>

#include "bench_common.h"
#include "experiment/analysis.h"
#include "experiment/campaign.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Extension - campaign-wide model validation + zone statistics",
      "Eqs. 2/3/5-8 validated against a strided Table I campaign");

  experiment::CampaignOptions options;
  options.stride = 61;  // ~790 configurations
  options.packet_count = 200;
  options.base_seed = bench::kBenchSeed;
  const auto campaign = experiment::RunCampaign(options);
  std::cout << "campaign slice: " << campaign.configurations
            << " configurations, " << campaign.total_packets
            << " packets\n\n";

  const auto samples = experiment::ToValidationSamples(campaign.points);
  const auto report =
      core::models::ValidateModels(core::models::ModelSet(), samples);
  std::cout << "model validation (SNR in [4, 28] dB):\n"
            << report.ToString() << "\n";

  const auto zones = experiment::SummariseByZone(campaign.points);
  std::cout << "measured metrics by joint-effect zone:\n"
            << experiment::ZoneTable(zones);
  return 0;
}
