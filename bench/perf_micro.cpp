// Microbenchmarks of the library itself (google-benchmark): event-kernel
// throughput, channel sampling, full-stack packet rate, model evaluation
// and optimizer sweep rates. These characterise the *simulator*, not the
// paper's system — they bound how big a campaign is practical.
#include <benchmark/benchmark.h>

#include <vector>

#include "channel/ber.h"
#include "channel/channel.h"
#include "channel/path_loss.h"
#include "channel/shadowing.h"
#include "core/models/model_set.h"
#include "core/opt/config_space.h"
#include "core/opt/epsilon_constraint.h"
#include "node/link_simulation.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace {

using namespace wsnlink;

void BM_EventKernel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < 10'000; ++i) {
      simulator.Schedule(i, [] {});
    }
    benchmark::DoNotOptimize(simulator.Run());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventKernel);

void BM_ChannelTransmit(benchmark::State& state) {
  channel::ChannelConfig config;
  config.distance_m = 25.0;
  channel::Channel channel(config, util::Rng(1));
  sim::Time t = 0;
  for (auto _ : state) {
    t += 1000;
    benchmark::DoNotOptimize(channel.Transmit(0.0, 129, t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelTransmit);

void BM_FullStackPackets(benchmark::State& state) {
  node::SimulationOptions options;
  options.config.distance_m = 25.0;
  options.config.pa_level = 19;
  options.config.max_tries = 3;
  options.config.queue_capacity = 10;
  options.config.pkt_interval_ms = 50.0;
  options.config.payload_bytes = 80;
  options.packet_count = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    benchmark::DoNotOptimize(node::RunLinkSimulation(options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullStackPackets)->Arg(500)->Arg(2000);

// The observability contract (docs/TRACING.md): tracing off must be
// near-free. Compare against BM_FullStackPackets — the compiled-in hooks
// (one null-pointer test per emission site) are required to stay within
// ~2% of it. `collect_counters = false` also skips counter registration.
void BM_FullStackPacketsObservabilityOff(benchmark::State& state) {
  node::SimulationOptions options;
  options.config.distance_m = 25.0;
  options.config.pa_level = 19;
  options.config.max_tries = 3;
  options.config.queue_capacity = 10;
  options.config.pkt_interval_ms = 50.0;
  options.config.payload_bytes = 80;
  options.packet_count = static_cast<int>(state.range(0));
  options.collect_counters = false;  // tracer already defaults to null
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    benchmark::DoNotOptimize(node::RunLinkSimulation(options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullStackPacketsObservabilityOff)->Arg(500)->Arg(2000);

// Fully instrumented run: counters plus a live tracer. This is the cost a
// debugging session pays, not the default path.
void BM_FullStackPacketsTraced(benchmark::State& state) {
  node::SimulationOptions options;
  options.config.distance_m = 25.0;
  options.config.pa_level = 19;
  options.config.max_tries = 3;
  options.config.queue_capacity = 10;
  options.config.pkt_interval_ms = 50.0;
  options.config.payload_bytes = 80;
  options.packet_count = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    trace::Tracer tracer;
    options.tracer = &tracer;
    options.seed = seed++;
    benchmark::DoNotOptimize(node::RunLinkSimulation(options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullStackPacketsTraced)->Arg(500)->Arg(2000);

// Raw ring throughput: an Emit is a bounds-computed store plus a counter
// bump, so this should run at memory speed.
void BM_TracerEmit(benchmark::State& state) {
  trace::Tracer tracer;
  trace::TraceEvent event;
  event.type = trace::EventType::kTxAttemptStart;
  event.layer = trace::Layer::kMac;
  for (auto _ : state) {
    event.at += 1;
    tracer.Emit(event);
    benchmark::DoNotOptimize(tracer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerEmit);

void BM_ModelPrediction(benchmark::State& state) {
  const core::models::ModelSet models;
  core::StackConfig config;
  config.distance_m = 30.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(models.Predict(config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelPrediction);

// ---------------------------------------------------------------------------
// Batch (structure-of-arrays) kernels vs their scalar twins. The batch
// variants are plain contiguous loops the compiler auto-vectorizes — the
// contract is bit-identical results (tests/determinism_test.cpp) at a
// higher configs/sec, and these pairs put a number on "higher".
// ---------------------------------------------------------------------------

std::vector<core::StackConfig> BenchConfigs() {
  auto space = core::opt::ConfigSpace::PaperTableI();
  space.distances_m = {25.0};  // one distance: 8064 configs
  std::vector<core::StackConfig> configs;
  configs.reserve(space.Size());
  space.ForEach(
      [&](const core::StackConfig& config) { configs.push_back(config); });
  return configs;
}

void BM_ModelPredictionScalarLoop(benchmark::State& state) {
  const core::models::ModelSet models;
  const auto configs = BenchConfigs();
  std::vector<core::models::MetricPrediction> out(configs.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      out[i] = models.Predict(configs[i]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_ModelPredictionScalarLoop);

void BM_ModelPredictionBatch(benchmark::State& state) {
  const core::models::ModelSet models;
  const auto configs = BenchConfigs();
  std::vector<core::models::MetricPrediction> out(configs.size());
  for (auto _ : state) {
    models.PredictBatch(configs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_ModelPredictionBatch);

std::vector<double> BenchSnrs(std::size_t count) {
  std::vector<double> snrs(count);
  for (std::size_t i = 0; i < count; ++i) {
    snrs[i] = -10.0 + 0.01 * static_cast<double>(i % 4000);
  }
  return snrs;
}

void BM_BerFrameSuccessScalar(benchmark::State& state) {
  const channel::CalibratedExponentialBer ber;
  const auto snrs = BenchSnrs(4096);
  std::vector<double> out(snrs.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < snrs.size(); ++i) {
      out[i] = ber.FrameSuccessProbability(snrs[i], 129);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(snrs.size()));
}
BENCHMARK(BM_BerFrameSuccessScalar);

void BM_BerFrameSuccessBatch(benchmark::State& state) {
  const channel::CalibratedExponentialBer ber;
  const auto snrs = BenchSnrs(4096);
  std::vector<double> out(snrs.size());
  for (auto _ : state) {
    ber.FrameSuccessProbabilityBatch(snrs, 129, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(snrs.size()));
}
BENCHMARK(BM_BerFrameSuccessBatch);

void BM_PathLossScalar(benchmark::State& state) {
  const channel::PathLoss loss{channel::PathLossParams{}};
  std::vector<double> distances(4096);
  for (std::size_t i = 0; i < distances.size(); ++i) {
    distances[i] = 1.0 + 0.01 * static_cast<double>(i);
  }
  std::vector<double> out(distances.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < distances.size(); ++i) {
      out[i] = loss.MeanLossDb(distances[i]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(distances.size()));
}
BENCHMARK(BM_PathLossScalar);

void BM_PathLossBatch(benchmark::State& state) {
  const channel::PathLoss loss{channel::PathLossParams{}};
  std::vector<double> distances(4096);
  for (std::size_t i = 0; i < distances.size(); ++i) {
    distances[i] = 1.0 + 0.01 * static_cast<double>(i);
  }
  std::vector<double> out(distances.size());
  for (auto _ : state) {
    loss.MeanLossDbBatch(distances, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(distances.size()));
}
BENCHMARK(BM_PathLossBatch);

constexpr std::size_t kShadowLanes = 64;

void BM_ShadowingScalarBank(benchmark::State& state) {
  std::vector<channel::ShadowingProcess> bank;
  for (std::size_t k = 0; k < kShadowLanes; ++k) {
    bank.emplace_back(channel::ShadowingParams{},
                      util::Rng(1000 + static_cast<std::uint64_t>(k)));
  }
  std::vector<double> out(kShadowLanes);
  sim::Time t = 0;
  for (auto _ : state) {
    t += 10 * sim::kMillisecond;
    for (std::size_t k = 0; k < kShadowLanes; ++k) {
      out[k] = bank[k].Sample(t);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kShadowLanes));
}
BENCHMARK(BM_ShadowingScalarBank);

void BM_ShadowingLanes(benchmark::State& state) {
  std::vector<channel::ShadowingParams> params(kShadowLanes);
  std::vector<util::Rng> rngs;
  for (std::size_t k = 0; k < kShadowLanes; ++k) {
    rngs.emplace_back(1000 + static_cast<std::uint64_t>(k));
  }
  channel::ShadowingLanes lanes(params, rngs);
  std::vector<double> out(kShadowLanes);
  sim::Time t = 0;
  for (auto _ : state) {
    t += 10 * sim::kMillisecond;
    lanes.SampleAll(t, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kShadowLanes));
}
BENCHMARK(BM_ShadowingLanes);

void BM_RngGaussianScalar(benchmark::State& state) {
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Gaussian(0.0, 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngGaussianScalar);

void BM_RngGaussianLanes(benchmark::State& state) {
  std::vector<util::Rng> seeds;
  for (std::size_t k = 0; k < kShadowLanes; ++k) {
    seeds.emplace_back(7 + static_cast<std::uint64_t>(k));
  }
  util::RngLanes lanes(seeds);
  std::vector<double> out(kShadowLanes);
  for (auto _ : state) {
    lanes.GaussianAll(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kShadowLanes));
}
BENCHMARK(BM_RngGaussianLanes);

void BM_EpsilonConstraintSweep(benchmark::State& state) {
  const core::models::ModelSet models;
  auto space = core::opt::ConfigSpace::PaperTableI();
  space.distances_m = {25.0};  // one distance: 8064 configs
  core::opt::Problem problem;
  problem.objective = core::opt::Metric::kGoodput;
  problem.constraints.push_back(
      core::opt::AtMost(core::opt::Metric::kEnergy, 0.3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::opt::SolveEpsilonConstraint(models, space, problem));
  }
  state.SetItemsProcessed(state.iterations() * space.Size());
}
BENCHMARK(BM_EpsilonConstraintSweep);

}  // namespace

BENCHMARK_MAIN();
