// Microbenchmarks of the library itself (google-benchmark): event-kernel
// throughput, channel sampling, full-stack packet rate, model evaluation
// and optimizer sweep rates. These characterise the *simulator*, not the
// paper's system — they bound how big a campaign is practical.
#include <benchmark/benchmark.h>

#include "channel/channel.h"
#include "core/models/model_set.h"
#include "core/opt/config_space.h"
#include "core/opt/epsilon_constraint.h"
#include "node/link_simulation.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace {

using namespace wsnlink;

void BM_EventKernel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < 10'000; ++i) {
      simulator.Schedule(i, [] {});
    }
    benchmark::DoNotOptimize(simulator.Run());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventKernel);

void BM_ChannelTransmit(benchmark::State& state) {
  channel::ChannelConfig config;
  config.distance_m = 25.0;
  channel::Channel channel(config, util::Rng(1));
  sim::Time t = 0;
  for (auto _ : state) {
    t += 1000;
    benchmark::DoNotOptimize(channel.Transmit(0.0, 129, t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelTransmit);

void BM_FullStackPackets(benchmark::State& state) {
  node::SimulationOptions options;
  options.config.distance_m = 25.0;
  options.config.pa_level = 19;
  options.config.max_tries = 3;
  options.config.queue_capacity = 10;
  options.config.pkt_interval_ms = 50.0;
  options.config.payload_bytes = 80;
  options.packet_count = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    benchmark::DoNotOptimize(node::RunLinkSimulation(options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullStackPackets)->Arg(500)->Arg(2000);

void BM_ModelPrediction(benchmark::State& state) {
  const core::models::ModelSet models;
  core::StackConfig config;
  config.distance_m = 30.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(models.Predict(config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelPrediction);

void BM_EpsilonConstraintSweep(benchmark::State& state) {
  const core::models::ModelSet models;
  auto space = core::opt::ConfigSpace::PaperTableI();
  space.distances_m = {25.0};  // one distance: 8064 configs
  core::opt::Problem problem;
  problem.objective = core::opt::Metric::kGoodput;
  problem.constraints.push_back(
      core::opt::AtMost(core::opt::Metric::kEnergy, 0.3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::opt::SolveEpsilonConstraint(models, space, problem));
  }
  state.SetItemsProcessed(state.iterations() * space.Size());
}
BENCHMARK(BM_EpsilonConstraintSweep);

}  // namespace

BENCHMARK_MAIN();
