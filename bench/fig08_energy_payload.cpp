// Fig. 8 — impact of payload size on energy consumption at 35 m.
//
// Paper: in the grey zone (P_tx = 7 here) medium payloads minimise U_eng;
// once the SNR clears the threshold the largest payload wins.
#include <iostream>

#include "bench_common.h"
#include "metrics/link_metrics.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Fig. 8 - U_eng vs payload size at 35 m",
      "grey zone prefers medium payloads; above threshold max payload wins");

  util::TextTable table({"payload[B]", "U_eng @ Ptx=7", "U_eng @ Ptx=15",
                         "U_eng @ Ptx=27"});
  struct Best {
    double value = 1e18;
    int payload = 0;
  };
  Best best7;
  Best best15;
  Best best27;
  for (const int payload : {5, 20, 35, 50, 65, 80, 95, 110}) {
    table.NewRow().Add(payload);
    for (const int level : {7, 15, 27}) {
      auto config = bench::DefaultConfig();
      config.distance_m = 35.0;
      config.pa_level = level;
      config.payload_bytes = payload;
      config.max_tries = 8;
      config.pkt_interval_ms = 150.0;
      auto options = bench::DefaultOptions(config, 500);
      options.seed = bench::kBenchSeed + payload * 5 + level;
      const auto result = node::RunLinkSimulation(options);
      const auto m = metrics::ComputeMetrics(result, 150.0);
      if (m.delivered_unique < 50) {
        table.Add("inf");
        continue;
      }
      table.Add(m.energy_uj_per_bit, 3);
      Best& best = level == 7 ? best7 : level == 15 ? best15 : best27;
      if (m.energy_uj_per_bit < best.value) {
        best.value = m.energy_uj_per_bit;
        best.payload = payload;
      }
    }
  }
  std::cout << table << "\nenergy-optimal payload:  Ptx=7 -> " << best7.payload
            << " B,  Ptx=15 -> " << best15.payload << " B,  Ptx=27 -> "
            << best27.payload << " B\n"
            << "(paper: medium payload in the grey zone, maximum payload "
               "once SNR exceeds the threshold)\n";
  return 0;
}
