// Fig. 16 — packet loss rate vs SNR under the four MAC configurations.
//
// Paper: high SNR clearly reduces loss (best energy/PLR trade-off at
// ~19 dB); retransmission does NOT uniformly reduce total loss because of
// the queue-loss/radio-loss trade-off at high arrival rates.
#include <iostream>

#include "bench_common.h"
#include "metrics/link_metrics.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

void Panel(const char* name, int queue_capacity, int max_tries) {
  std::cout << "\n(" << name << ")  Qmax=" << queue_capacity
            << "  NmaxTries=" << max_tries << "\n";
  util::TextTable table({"Ptx", "SNR[dB]", "PLR Tpkt=30ms", "PLR Tpkt=100ms"});
  for (const int level : {7, 11, 15, 19, 23, 27, 31}) {
    table.NewRow().Add(level);
    bool snr_added = false;
    for (const double interval : {30.0, 100.0}) {
      auto config = bench::DefaultConfig();
      config.distance_m = 35.0;
      config.pa_level = level;
      config.queue_capacity = queue_capacity;
      config.max_tries = max_tries;
      config.pkt_interval_ms = interval;
      config.payload_bytes = 110;
      auto options = bench::DefaultOptions(config, 700);
      options.seed = bench::kBenchSeed + level * 23 + max_tries +
                     queue_capacity;
      const auto result = node::RunLinkSimulation(options);
      const auto m = metrics::ComputeMetrics(result, interval);
      if (!snr_added) {
        table.Add(result.mean_snr_db, 1);
        snr_added = true;
      }
      table.Add(m.plr_total, 3);
    }
  }
  std::cout << table;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 16 - packet loss rate vs SNR under 4 MAC configurations",
      "loss falls with SNR (knee ~19 dB); retransmission alone does not "
      "uniformly reduce total loss under load");
  Panel("a", 1, 1);
  Panel("b", 1, 8);
  Panel("c", 30, 1);
  Panel("d", 30, 8);
  return 0;
}
