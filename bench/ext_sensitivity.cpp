// Extension — one-knob sensitivity: which parameter matters where?
//
// The paper's joint-effect zones say parameter leverage depends on link
// quality. This bench prints the per-parameter reachable metric ranges
// (model-predicted) on three contrasting links: strong (low-impact zone),
// medium, and grey. The pattern to see: on the strong link only l_D and
// T_pkt matter (overhead and load); in the grey zone P_tx and N_maxTries
// take over and the loss/delay spans explode.
#include <iostream>

#include "bench_common.h"
#include "core/opt/sensitivity.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

void Report(const char* label, double distance, int pa_level) {
  core::StackConfig base;
  base.distance_m = distance;
  base.pa_level = pa_level;
  base.max_tries = 3;
  base.queue_capacity = 10;
  base.pkt_interval_ms = 50.0;
  base.payload_bytes = 80;

  const core::models::ModelSet models;
  const auto report = core::opt::AnalyzeSensitivity(models, base);
  std::cout << "\n" << label << ": " << base.ToString() << "  (SNR "
            << util::FormatDouble(report.snr_db, 1) << " dB)\n"
            << report.ToString()
            << "most influential:  energy -> "
            << report.MostInfluentialFor(core::opt::Metric::kEnergy).parameter
            << ",  goodput -> "
            << report.MostInfluentialFor(core::opt::Metric::kGoodput).parameter
            << ",  delay -> "
            << report.MostInfluentialFor(core::opt::Metric::kDelay).parameter
            << ",  loss -> "
            << report.MostInfluentialFor(core::opt::Metric::kLoss).parameter
            << "\n";
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension - per-parameter sensitivity across link qualities",
      "parameter leverage depends on the joint-effect zone (the paper's "
      "central theme as a diagnostic)");
  Report("strong link (low-impact zone)", 10.0, 31);
  Report("medium link", 30.0, 15);
  Report("grey-zone link", 35.0, 11);
  return 0;
}
