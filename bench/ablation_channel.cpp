// Ablation — which channel ingredients produce the paper's observations?
//
// DESIGN.md calls out two generative choices:
//  (1) calibrated-exponential vs analytic O-QPSK BER: only the calibrated
//      curve produces the paper's smooth, payload-dependent grey zone;
//      the analytic curve is a cliff.
//  (2) temporal shadowing on/off: per-packet SNR variation is what smears
//      the PER transition (Sec. III-B's "smoother than expected").
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "metrics/aggregate.h"
#include "node/link_simulation.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

/// Measured PER vs SNR (by power sweep) for one channel variant.
std::vector<metrics::SnrBucket> Sweep(bool analytic, bool no_shadowing) {
  std::vector<link::AttemptRecord> attempts;
  for (const int level : {3, 7, 11, 15, 19, 23, 27, 31}) {
    auto config = bench::DefaultConfig();
    config.distance_m = 35.0;
    config.pa_level = level;
    config.payload_bytes = 110;
    config.pkt_interval_ms = 30.0;
    auto options = bench::DefaultOptions(config, 700);
    options.seed = bench::kBenchSeed + level;
    options.analytic_ber = analytic;
    options.disable_temporal_shadowing = no_shadowing;
    const auto result = node::RunLinkSimulation(options);
    attempts.insert(attempts.end(), result.log.Attempts().begin(),
                    result.log.Attempts().end());
  }
  return metrics::PerBySnr(attempts, 2.0);
}

double PerNear(const std::vector<metrics::SnrBucket>& buckets, double snr) {
  double best = 2.0;
  double best_dist = 1e18;
  for (const auto& b : buckets) {
    if (b.attempts < 30) continue;
    const double dist = std::abs(b.snr_center_db - snr);
    if (dist < best_dist) {
      best_dist = dist;
      best = b.Per();
    }
  }
  return best;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation - BER curve and temporal shadowing vs grey-zone shape",
      "only calibrated BER + per-packet SNR variation reproduces the "
      "paper's smooth grey zone (Fig. 6)");

  const auto calibrated = Sweep(false, false);
  const auto calibrated_static = Sweep(false, true);
  const auto analytic = Sweep(true, false);
  const auto analytic_static = Sweep(true, true);

  util::TextTable table({"SNR[dB]", "calibrated", "calibrated-noshadow",
                         "analytic", "analytic-noshadow"});
  for (double snr = 5.0; snr <= 25.0; snr += 2.0) {
    table.NewRow()
        .Add(snr, 0)
        .Add(PerNear(calibrated, snr), 3)
        .Add(PerNear(calibrated_static, snr), 3)
        .Add(PerNear(analytic, snr), 3)
        .Add(PerNear(analytic_static, snr), 3);
  }
  std::cout << table;

  // Transition width: SNR span where PER crosses from > 0.6 to < 0.1.
  const auto width = [](const std::vector<metrics::SnrBucket>& buckets) {
    double high = -100.0;
    double low = 100.0;
    for (const auto& b : buckets) {
      if (b.attempts < 30) continue;
      if (b.Per() > 0.6) high = std::max(high, b.snr_center_db);
      if (b.Per() < 0.1) low = std::min(low, b.snr_center_db);
    }
    return low - high;
  };
  std::cout << "\ngrey-zone transition width (PER 0.6 -> 0.1):\n"
            << "  calibrated + shadowing: " << width(calibrated) << " dB\n"
            << "  analytic  + shadowing: " << width(analytic) << " dB\n"
            << "  analytic, no shadowing: " << width(analytic_static)
            << " dB  (the 'sharp cliff' of earlier studies)\n";
  return 0;
}
