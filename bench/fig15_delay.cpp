// Fig. 15 — average delay vs SNR under two MAC configurations:
//   (a) Qmax = 1,  N_maxTries = 1  (no queueing, no retransmission)
//   (b) Qmax = 30, N_maxTries = 8  (deep queue, aggressive retransmission)
//
// Paper: in the grey zone, configuration (b) shows delays two to three
// orders of magnitude above (a) — pure queueing delay from rho > 1.
#include <iostream>

#include "bench_common.h"
#include "core/models/delay_model.h"
#include "metrics/link_metrics.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

void Panel(const char* name, int queue_capacity, int max_tries) {
  std::cout << "\n(" << name << ")  Qmax=" << queue_capacity
            << "  NmaxTries=" << max_tries << "\n";
  util::TextTable table({"Ptx", "SNR[dB]", "delay[ms] Tpkt=30ms",
                         "delay[ms] Tpkt=100ms", "rho(model,30ms)"});
  const core::models::DelayModel model;
  for (const int level : {7, 11, 15, 19, 23, 27, 31}) {
    table.NewRow().Add(level);
    bool snr_added = false;
    double snr = 0.0;
    for (const double interval : {30.0, 100.0}) {
      auto config = bench::DefaultConfig();
      config.distance_m = 35.0;
      config.pa_level = level;
      config.queue_capacity = queue_capacity;
      config.max_tries = max_tries;
      config.pkt_interval_ms = interval;
      config.payload_bytes = 110;
      auto options = bench::DefaultOptions(config, 700);
      options.seed = bench::kBenchSeed + level * 5 + max_tries;
      const auto result = node::RunLinkSimulation(options);
      const auto m = metrics::ComputeMetrics(result, interval);
      if (!snr_added) {
        snr = result.mean_snr_db;
        table.Add(snr, 1);
        snr_added = true;
      }
      if (m.delivered_unique < 30) {
        table.Add("-");
      } else {
        table.Add(m.mean_delay_ms, 2);
      }
    }
    core::models::ServiceTimeInputs in;
    in.payload_bytes = 110;
    in.snr_db = snr;
    in.max_tries = max_tries;
    table.Add(model.Utilization(in, 30.0), 3);
  }
  std::cout << table;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 15 - average delay vs SNR (35 m, 110 B)",
      "grey-zone delays with Qmax=30/N=8 are 2-3 orders of magnitude above "
      "Qmax=1/N=1 (queueing via rho > 1)");
  Panel("a", 1, 1);
  Panel("b", 30, 8);
  return 0;
}
