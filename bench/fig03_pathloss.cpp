// Fig. 3 — average RSSI vs distance with the log-normal path-loss fit.
//
// The paper fits its hallway to n = 2.19, sigma = 3.2 dB. We sample many
// positions along the hallway (each with its own spatial shadowing draw),
// measure the long-term average RSSI at max power, and refit the
// log-distance model from those synthetic measurements. The fitted exponent
// and deviation regenerate the figure's caption values.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "channel/channel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader("Fig. 3 - log-normal path loss",
                     "path loss exponent n = 2.19, deviation sigma = 3.2 dB");

  util::Rng rng(bench::kBenchSeed);
  channel::PathLoss path_loss{channel::PathLossParams{}};

  // 12 positions per distance, distances 2..40 m.
  std::vector<double> log_d;
  std::vector<double> rssi;
  util::TextTable table({"distance[m]", "mean RSSI[dBm]", "stddev[dB]"});
  for (double d = 2.0; d <= 40.0; d += 2.0) {
    util::RunningStats at_distance;
    for (int position = 0; position < 12; ++position) {
      channel::ChannelConfig config;
      config.distance_m = d;
      config.spatial_shadow_db = path_loss.SampleSpatialShadow(rng);
      channel::Channel channel(
          config, rng.Derive(static_cast<std::uint64_t>(position * 997 +
                                                        d * 31.0)));
      // Long-term mean RSSI at P_tx = 31 (0 dBm): the per-position average
      // a measurement campaign would record.
      const double mean_rssi = channel.MeanRssiDbm(0.0);
      at_distance.Add(mean_rssi);
      log_d.push_back(std::log10(d));
      rssi.push_back(mean_rssi);
    }
    table.NewRow().Add(d, 0).Add(at_distance.Mean(), 2).Add(
        at_distance.StdDev(), 2);
  }
  std::cout << table;

  // Refit: RSSI = P_tx - PL(d0) - 10 n log10(d) + X_sigma.
  const auto fit = util::FitLine(log_d, rssi);
  const double n_fit = -fit->slope / 10.0;
  std::cout << "\nfitted path-loss exponent n = " << util::FormatDouble(n_fit, 3)
            << "  (paper: 2.19)\n"
            << "fitted shadowing sigma     = " << util::FormatDouble(fit->rmse, 2)
            << " dB  (paper: 3.2)\n"
            << "fit R^2                    = "
            << util::FormatDouble(fit->r_squared, 3) << "\n";
  return 0;
}
