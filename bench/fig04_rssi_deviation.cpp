// Fig. 4 — RSSI deviation per output power at each distance.
//
// Paper observations regenerated here: (1) RSSI varies over time at every
// distance; (2) deviation does not correlate consistently with output
// power; (3) the 35 m position shows clearly larger deviation (human
// shadowing near the kitchen/meeting room); (4) at 35 m the lowest power's
// readings die at the sensitivity floor, collapsing the observed deviation.
#include <iostream>

#include "bench_common.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Fig. 4 - RSSI deviation vs output power and distance",
      "no consistent power correlation; largest deviation at 35 m");

  util::TextTable table({"distance[m]", "Ptx=3", "Ptx=11", "Ptx=19", "Ptx=31"});
  for (const double d : {10.0, 15.0, 20.0, 25.0, 30.0, 35.0}) {
    table.NewRow().Add(d, 0);
    for (const int level : {3, 11, 19, 31}) {
      auto config = bench::DefaultConfig();
      config.distance_m = d;
      config.pa_level = level;
      config.payload_bytes = 20;  // short probes: more receptions survive
      config.pkt_interval_ms = 50.0;
      auto options = bench::DefaultOptions(config, 800);
      options.seed = bench::kBenchSeed + level + static_cast<int>(d);
      const auto result = node::RunLinkSimulation(options);
      if (result.rssi_stats.Count() < 30) {
        table.Add("n/a");  // below sensitivity: no readings to deviate
      } else {
        table.Add(result.rssi_stats.StdDev(), 2);
      }
    }
  }
  std::cout << table
            << "\n(n/a: link at/below the CC2420 sensitivity floor - the "
               "paper's 35 m P_tx=3 case)\n";
  return 0;
}
