// Macro-benchmark for the sweep executor (the campaign hot path).
//
// Runs a ~5,000-configuration sweep (the Table I space subsampled) through
// RunSweep and reports configs/sec, events/sec and heap allocations per
// run, plus a machine-speed calibration score so a committed baseline can
// be compared across hosts. `--check <json>` re-runs the workload and
// fails (exit 1) if the calibration-normalized configs/sec regressed by
// more than the tolerance versus the committed BENCH_sweep.json, or if
// steady-state heap allocations exceed the `--max-allocs` ceiling (the
// zero-alloc invariant: the arena/scratch path must stay allocation-free
// per config, so the ceiling is absolute, not host-relative) — the CI
// perf-smoke gate.
//
// Usage:
//   perf_sweep [--out BENCH_sweep.json] [--check BENCH_sweep.json]
//              [--tolerance 0.25] [--max-allocs 2] [--stride 10]
//              [--packets 60] [--threads 0] [--repeat 3] [--prescreen]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/opt/config_space.h"
#include "experiment/sweep.h"
#include "util/args.h"

// ---------------------------------------------------------------------------
// Allocation counting: global operator new/delete overrides local to this
// binary. Counts every heap allocation on any thread.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_alloc_tracking{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_alloc_tracking.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Fixed arithmetic workload; its throughput (Mops/s) calibrates machine
// speed so normalized figures are comparable across hosts. Deterministic:
// no I/O, no allocation, integer-only.
double CalibrationScore() {
  constexpr std::uint64_t kIters = 40'000'000;
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x += i;
  }
  const auto t1 = Clock::now();
  // Fold x into the result so the loop cannot be optimized away.
  const double jitter = static_cast<double>(x & 1) * 1e-9;
  return static_cast<double>(kIters) / Seconds(t0, t1) / 1e6 + jitter;
}

struct BenchResult {
  std::size_t configs = 0;
  double configs_per_sec = 0.0;
  double events_per_sec = 0.0;
  double allocs_per_run = 0.0;
  double calib_mops = 0.0;
  double normalized = 0.0;  // configs/sec per calibration Mop/s
};

std::uint64_t SumEventsExecuted(
    const std::vector<wsnlink::experiment::SweepPoint>& points) {
  std::uint64_t total = 0;
  for (const auto& point : points) {
    for (const auto& sample : point.counters) {
      if (sample.name == "sim.events_executed") total += sample.value;
    }
  }
  return total;
}

// Pulls `"key": <number>` out of a JSON file written by this tool. Crude
// on purpose: the bench owns both sides of the format. Returns -1 when the
// key is missing or its value is not a plain finite number, so a corrupt
// baseline trips the caller's "no baseline metric" error instead of
// silently comparing against garbage.
double JsonNumber(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1.0;
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return -1.0;
  auto begin = text.find_first_not_of(" \t\n", colon + 1);
  if (begin == std::string::npos) return -1.0;
  auto end = text.find_first_of(",\n}", begin);
  if (end == std::string::npos) end = text.size();
  const auto last = text.find_last_not_of(" \t", end - 1);
  try {
    return wsnlink::util::ParseDouble(text.substr(begin, last - begin + 1),
                                      key);
  } catch (const std::invalid_argument&) {
    return -1.0;
  }
}

void WriteJson(const std::string& path, const BenchResult& r,
               std::size_t packets, unsigned threads, bool prescreen) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"schema\": \"wsnlink-bench-sweep-v1\",\n";
  out << "  \"workload\": {\n";
  out << "    \"configs\": " << r.configs << ",\n";
  out << "    \"packets_per_config\": " << packets << ",\n";
  out << "    \"threads\": " << threads << ",\n";
  out << "    \"analytic_prescreen\": " << (prescreen ? "true" : "false")
      << ",\n";
  out << "    \"base_seed\": 20150629\n";
  out << "  },\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", r.configs_per_sec);
  out << "  \"configs_per_sec\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.0f", r.events_per_sec);
  out << "  \"events_per_sec\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.1f", r.allocs_per_run);
  out << "  \"allocs_per_run\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.1f", r.calib_mops);
  out << "  \"calibration_mops\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.2f", r.normalized);
  out << "  \"configs_per_sec_per_calib_mop\": " << buf << ",\n";
  // Pre-overhaul executor on the same workload and host (thread-spawning
  // runner, tombstone event queue), measured when this baseline was
  // committed. Kept for the speedup record, not used by --check.
  out << "  \"legacy_configs_per_sec\": 15500,\n";
  std::snprintf(buf, sizeof(buf), "%.2f", r.configs_per_sec / 15500.0);
  out << "  \"speedup_vs_legacy\": " << buf << "\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsnlink;

  util::Args args(argc, argv, {"--prescreen"});
  const auto stride = args.GetSize("--stride", 10);
  const auto packets = static_cast<int>(args.GetSize("--packets", 60));
  const auto threads = static_cast<unsigned>(args.GetSize("--threads", 0));
  const auto repeat = args.GetSize("--repeat", 3);
  const bool prescreen = args.Has("--prescreen");
  const double tolerance = args.GetDouble("--tolerance", 0.25);
  const double max_allocs = args.GetDouble("--max-allocs", 2.0);
  const std::string out_path = args.GetString("--out", "");
  const std::string check_path = args.GetString("--check", "");

  auto space = core::opt::ConfigSpace::PaperTableI();
  std::vector<core::StackConfig> configs;
  for (std::size_t i = 0; i < space.Size(); i += stride) {
    configs.push_back(space.At(i));
  }

  experiment::SweepOptions options;
  options.base_seed = 20150629;
  options.packet_count = packets;
  options.threads = threads;
  options.analytic_prescreen = prescreen;

  std::printf("perf_sweep: %zu configs x %d packets, threads=%u%s\n",
              configs.size(), packets, threads,
              prescreen ? ", prescreen" : "");

  BenchResult result;
  result.configs = configs.size();
  result.calib_mops = CalibrationScore();

  // Warm-up run (also the allocation measurement: steady-state behavior,
  // pool already spun up).
  {
    auto warm = experiment::RunSweep(configs, options);
    (void)warm;
  }
  g_alloc_count.store(0);
  g_alloc_tracking.store(true);
  auto counted = experiment::RunSweep(configs, options);
  g_alloc_tracking.store(false);
  result.allocs_per_run = static_cast<double>(g_alloc_count.load()) /
                          static_cast<double>(configs.size());

  double best_elapsed = 1e300;
  std::uint64_t events = 0;
  for (std::size_t r = 0; r < repeat; ++r) {
    const auto t0 = Clock::now();
    auto points = experiment::RunSweep(configs, options);
    const auto t1 = Clock::now();
    const double elapsed = Seconds(t0, t1);
    if (elapsed < best_elapsed) {
      best_elapsed = elapsed;
      events = SumEventsExecuted(points);
    }
  }
  result.configs_per_sec =
      static_cast<double>(configs.size()) / best_elapsed;
  result.events_per_sec = static_cast<double>(events) / best_elapsed;
  result.normalized = result.configs_per_sec / result.calib_mops;

  std::printf("  calib        %10.1f Mops/s\n", result.calib_mops);
  std::printf("  configs/sec  %10.0f\n", result.configs_per_sec);
  std::printf("  events/sec   %10.0f\n", result.events_per_sec);
  std::printf("  allocs/run   %10.1f\n", result.allocs_per_run);
  std::printf("  normalized   %10.2f configs/sec per calib Mop\n",
              result.normalized);

  if (!out_path.empty()) {
    WriteJson(out_path, result, static_cast<std::size_t>(packets), threads,
              prescreen);
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::fprintf(stderr, "perf_sweep: cannot read %s\n",
                   check_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const double committed =
        JsonNumber(ss.str(), "configs_per_sec_per_calib_mop");
    if (committed <= 0.0) {
      std::fprintf(stderr, "perf_sweep: no baseline metric in %s\n",
                   check_path.c_str());
      return 2;
    }
    const double floor = committed * (1.0 - tolerance);
    std::printf("check: normalized %.2f vs committed %.2f (floor %.2f)\n",
                result.normalized, committed, floor);
    if (result.normalized < floor) {
      std::fprintf(stderr,
                   "perf_sweep: REGRESSION — normalized throughput %.2f "
                   "is below %.2f (committed %.2f - %g%%)\n",
                   result.normalized, floor, committed, tolerance * 100);
      return 1;
    }
    // The allocation gate is a hard ceiling, never host-normalized: the
    // arena/scratch executor is designed to run allocation-free per
    // config, so any drift here is a real leak back onto the heap, not
    // machine noise.
    std::printf("check: allocs/run %.1f vs ceiling %.1f\n",
                result.allocs_per_run, max_allocs);
    if (result.allocs_per_run > max_allocs) {
      std::fprintf(stderr,
                   "perf_sweep: REGRESSION — %.1f heap allocations per "
                   "config exceeds the zero-alloc ceiling of %.1f\n",
                   result.allocs_per_run, max_allocs);
      return 1;
    }
    std::printf("check: OK\n");
  }
  return 0;
}
