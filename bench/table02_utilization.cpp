// Table II — system utilization examples from the service-time model.
//
// Paper rows (T_pkt = 30 ms, l_D = 110 B, N_maxTries = 3, D_retry = 30 ms):
//   SNR 10 dB: T_service = 37.08 ms, rho = 1.236
//   SNR 20 dB: T_service = 21.39 ms, rho = 0.713
//   SNR 30 dB: T_service = 18.52 ms, rho = 0.617
// We print the model's values and cross-check against simulation at
// matching link qualities.
#include <iostream>

#include "bench_common.h"
#include "channel/channel.h"
#include "core/models/delay_model.h"
#include "metrics/link_metrics.h"
#include "phy/cc2420.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader("Table II - system utilization via the service-time "
                     "model (Tpkt=30ms, lD=110B, N=3, Dretry=30ms)",
                     "rho = 1.236 / 0.713 / 0.617 at SNR 10 / 20 / 30 dB");

  const core::models::DelayModel model;
  util::TextTable table({"SNR[dB]", "T_service model[ms]", "rho model",
                         "paper T_service", "paper rho", "T_service sim[ms]",
                         "rho sim"});

  struct PaperRow {
    double snr;
    double service;
    double rho;
  };
  for (const auto& row : {PaperRow{10.0, 37.08, 1.236},
                          PaperRow{20.0, 21.39, 0.713},
                          PaperRow{30.0, 18.52, 0.617}}) {
    core::models::ServiceTimeInputs in;
    in.payload_bytes = 110;
    in.snr_db = row.snr;
    in.max_tries = 3;
    in.retry_delay_ms = 30.0;
    const double service = model.Service().MeanMs(in);

    // Simulation cross-check: pick the PA level whose mean SNR at 35 m is
    // closest to the row's SNR, then override the spatial shadow to land
    // exactly on it.
    auto config = bench::DefaultConfig();
    config.distance_m = 35.0;
    config.pa_level = 31;
    config.max_tries = 3;
    config.retry_delay_ms = 30.0;
    config.queue_capacity = 30;
    config.pkt_interval_ms = 30.0;
    config.payload_bytes = 110;
    auto options = bench::DefaultOptions(config, 700);
    options.seed = bench::kBenchSeed + static_cast<int>(row.snr);
    {
      // Shift the link to the target SNR via spatial shadowing.
      channel::Channel probe(node::MakeChannelConfig(options),
                             util::Rng(bench::kBenchSeed));
      options.spatial_shadow_db =
          row.snr - probe.MeanSnrDb(phy::OutputPowerDbm(31));
    }
    const auto result = node::RunLinkSimulation(options);
    const auto m = metrics::ComputeMetrics(result, 30.0);

    table.NewRow()
        .Add(row.snr, 0)
        .Add(service, 2)
        .Add(model.Utilization(in, 30.0), 3)
        .Add(row.service, 2)
        .Add(row.rho, 3)
        .Add(m.mean_service_ms, 2)
        .Add(m.utilization, 3);
  }
  std::cout << table;
  return 0;
}
