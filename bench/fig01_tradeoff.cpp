// Fig. 1 — the headline goodput-vs-energy trade-off comparison.
//
// Single-parameter tuning guidelines from the literature versus joint
// multi-layer tuning, evaluated on the same grey-zone link. The paper's
// scatter shows the joint point strictly dominating: highest goodput AND
// lowest energy per bit. Payload tuning is shown as a series (the paper
// plots three payload sizes) to expose that an inappropriate single-knob
// choice can be catastrophically bad.
#include <iostream>

#include "bench_common.h"
#include "core/models/model_set.h"
#include "core/opt/baselines.h"
#include "metrics/link_metrics.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Fig. 1 - goodput vs energy trade-off: single-knob vs joint tuning",
      "joint tuning reaches the upper-left (high goodput, low energy) "
      "corner no single-parameter guideline reaches");

  constexpr double kCaseStudyShadowDb = -17.3;  // ~6.5 dB mean SNR at max power
  const core::models::ModelSet models(
      core::models::kPaperPerFit, core::models::kPaperNtriesFit,
      core::models::kPaperPlrFit,
      core::models::LinkQualityMap(channel::PathLossParams{}, -95.0,
                                   kCaseStudyShadowDb));
  const auto base = core::opt::CaseStudyBaseConfig(35.0);

  const auto measure = [&](const core::StackConfig& config) {
    node::SimulationOptions options;
    options.config = config;
    options.packet_count = 1500;
    options.seed = bench::kBenchSeed;
    options.spatial_shadow_db = kCaseStudyShadowDb;
    options.disable_temporal_shadowing = true;
    return metrics::MeasureConfig(options);
  };

  util::TextTable table(
      {"policy", "config", "goodput[kbps]", "U_eng[uJ/bit]"});

  // Single-knob baselines.
  for (const auto& choice :
       {core::opt::TunePowerBaseline(base),
        core::opt::TuneRetransmissionsBaseline(base)}) {
    const auto m = measure(choice.config);
    table.NewRow()
        .Add(choice.name)
        .Add(choice.config.ToString())
        .Add(m.goodput_kbps, 2)
        .Add(m.energy_uj_per_bit, 3);
  }

  // Payload tuning as a series (three sizes, like the paper's figure).
  for (const int payload : {5, 60, 114}) {
    auto config = base;
    config.payload_bytes = payload;
    const auto m = measure(config);
    table.NewRow()
        .Add("[1]-payload " + std::to_string(payload) + "B")
        .Add(config.ToString())
        .Add(m.goodput_kbps, 2)
        .Add(m.energy_uj_per_bit, 3);
  }

  // Joint tuning under an energy budget.
  const auto joint = core::opt::JointTuning(models, base, 0.55);
  const auto m = measure(joint.config);
  table.NewRow()
      .Add(joint.name)
      .Add(joint.config.ToString())
      .Add(m.goodput_kbps, 2)
      .Add(m.energy_uj_per_bit, 3);

  std::cout << table
            << "\n(the joint row should dominate: more goodput than any "
               "single-knob row at comparable or lower energy)\n";
  return 0;
}
