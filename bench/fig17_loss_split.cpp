// Fig. 17 — queuing loss vs radio loss decomposition
// (l_D = 110 B, T_pkt = 30 ms), sweeping N_maxTries and Q_max.
//
// Paper: in the grey zone the radio-loss reduction bought by
// retransmissions is paid for in queue loss (rho -> 1); only a large queue
// reduces PLR_queue.
#include <iostream>

#include "bench_common.h"
#include "metrics/link_metrics.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

void Panel(const char* name, int queue_capacity, int max_tries) {
  std::cout << "\n(" << name << ")  Qmax=" << queue_capacity
            << "  NmaxTries=" << max_tries << "\n";
  util::TextTable table(
      {"Ptx", "SNR[dB]", "PLR_queue", "PLR_radio", "PLR_total", "rho(meas)"});
  for (const int level : {7, 11, 15, 19, 23, 31}) {
    auto config = bench::DefaultConfig();
    config.distance_m = 35.0;
    config.pa_level = level;
    config.queue_capacity = queue_capacity;
    config.max_tries = max_tries;
    config.pkt_interval_ms = 30.0;
    config.payload_bytes = 110;
    auto options = bench::DefaultOptions(config, 800);
    options.seed = bench::kBenchSeed + level * 29 + max_tries * 3 +
                   queue_capacity;
    const auto result = node::RunLinkSimulation(options);
    const auto m = metrics::ComputeMetrics(result, 30.0);
    table.NewRow()
        .Add(level)
        .Add(result.mean_snr_db, 1)
        .Add(m.plr_queue, 3)
        .Add(m.plr_radio, 3)
        .Add(m.plr_total, 3)
        .Add(m.utilization, 2);
  }
  std::cout << table;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 17 - queue loss vs radio loss (l_D = 110 B, T_pkt = 30 ms)",
      "retransmission trades radio loss for queue loss in the grey zone; "
      "only a large queue reduces PLR_queue");
  Panel("a", 1, 1);
  Panel("b", 1, 8);
  Panel("c", 30, 1);
  Panel("d", 30, 8);
  return 0;
}
