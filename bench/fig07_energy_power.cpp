// Fig. 7 — optimal transmission power level for U_eng at 35 m.
//
// Paper: the output power becomes energy-optimal when the link just clears
// the grey zone; larger payloads need a higher power level (110 B is
// optimal at level 11, the smaller payloads at level 7).
#include <iostream>

#include "bench_common.h"
#include "metrics/link_metrics.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Fig. 7 - U_eng vs output power at 35 m",
      "optimal P_tx is intermediate, and larger l_D needs higher P_tx");

  util::TextTable table({"Ptx", "SNR[dB]", "U_eng(lD=5)", "U_eng(lD=50)",
                         "U_eng(lD=110)"});
  struct Best {
    double value = 1e18;
    int level = 0;
  };
  Best best5;
  Best best50;
  Best best110;
  for (const int level : {3, 7, 11, 15, 19, 23, 27, 31}) {
    table.NewRow().Add(level);
    bool snr_added = false;
    for (const int payload : {5, 50, 110}) {
      auto config = bench::DefaultConfig();
      config.distance_m = 35.0;
      config.pa_level = level;
      config.payload_bytes = payload;
      config.max_tries = 8;  // deliver if at all possible, count the energy
      config.pkt_interval_ms = 150.0;
      auto options = bench::DefaultOptions(config, 500);
      options.seed = bench::kBenchSeed + level;
      const auto result = node::RunLinkSimulation(options);
      const auto m = metrics::ComputeMetrics(result, 150.0);
      if (!snr_added) {
        table.Add(result.mean_snr_db, 1);
        snr_added = true;
      }
      if (m.delivered_unique < 50) {
        table.Add("inf");
        continue;
      }
      table.Add(m.energy_uj_per_bit, 3);
      Best& best = payload == 5 ? best5 : payload == 50 ? best50 : best110;
      if (m.energy_uj_per_bit < best.value) {
        best.value = m.energy_uj_per_bit;
        best.level = level;
      }
    }
  }
  std::cout << table << "\noptimal P_tx:  lD=5 -> " << best5.level
            << ",  lD=50 -> " << best50.level << ",  lD=110 -> "
            << best110.level
            << "\n(paper: 7 for small/medium payloads, 11 for 110 B)\n";
  return 0;
}
