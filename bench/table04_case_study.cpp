// Table IV — single-parameter tuning vs joint multi-layer tuning on the
// case-study link (Sec. VIII-C).
//
// Paper (reconstructed rows; source table partially garbled by OCR):
//   [11]-tuning power:        Ptx=31 lD=114 N=1 -> 15.39 kbps, 0.35 uJ/bit
//   [6]-tuning retransmission Ptx=23 lD=114 N=8 ->  8.53 kbps, 1.81 uJ/bit
//   [1]-minimal payload:      Ptx=23 lD=5   N=1 ->  1.49 kbps, 0.50 uJ/bit
//   [1]-maximal payload:      Ptx=23 lD=114 N=1 -> 11.81 kbps (garbled)
//   our work (joint):         Ptx=31 lD=68  N=3 -> 22.28 kbps, 0.24 uJ/bit
//
// The link: a deeply shadowed 35 m placement whose SNR reaches ~6 dB only
// at maximum power (the paper: "SNR increases to 6 dB after the output
// power level increases from 23 to 31").
#include <iostream>

#include "bench_common.h"
#include "core/models/model_set.h"
#include "core/opt/baselines.h"
#include "metrics/link_metrics.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;
  bench::PrintHeader(
      "Table IV - single-parameter vs joint multi-layer tuning",
      "joint tuning: ~22 kbps at ~0.24 uJ/bit, beating every single-knob "
      "policy on both axes or dominating the trade-off");

  constexpr double kCaseStudyShadowDb = -17.3;  // ~6.5 dB mean SNR at max power
  const core::models::ModelSet models(
      core::models::kPaperPerFit, core::models::kPaperNtriesFit,
      core::models::kPaperPlrFit,
      core::models::LinkQualityMap(channel::PathLossParams{}, -95.0,
                                   kCaseStudyShadowDb));

  const auto base = core::opt::CaseStudyBaseConfig(35.0);
  const auto policies = core::opt::AllPolicies(models, base, 0.55);

  util::TextTable table({"method", "Ptx", "lD[B]", "N", "goodput[kbps]",
                         "U_eng[uJ/bit]", "goodput model", "U_eng model"});
  for (const auto& policy : policies) {
    node::SimulationOptions options;
    options.config = policy.config;
    options.packet_count = 1500;
    options.seed = bench::kBenchSeed;
    options.spatial_shadow_db = kCaseStudyShadowDb;
    options.disable_temporal_shadowing = true;
    const auto measured = metrics::MeasureConfig(options);
    const auto predicted = models.Predict(policy.config);

    table.NewRow()
        .Add(policy.name)
        .Add(policy.config.pa_level)
        .Add(policy.config.payload_bytes)
        .Add(policy.config.max_tries)
        .Add(measured.goodput_kbps, 2)
        .Add(measured.energy_uj_per_bit, 3)
        .Add(predicted.max_goodput_kbps, 2)
        .Add(predicted.energy_uj_per_bit, 3);
  }
  std::cout << table
            << "\n(paper rows for reference: [11] 15.39/0.35, [6] 8.53/1.81, "
               "[1]-min 1.49/0.50, [1]-max 11.81, ours 22.28/0.24)\n";
  return 0;
}
