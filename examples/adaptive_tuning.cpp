// Adaptive tuning example — parameter adaptation under dynamic link quality.
//
// Sec. III-A concludes that RSSI instability "suggests the necessity of
// adapting to dynamic link quality for parameter tuning techniques", and
// Sec. IV-B that "adapting the payload size to the varying link quality can
// be an efficient way to minimize energy consumption in dynamic channel
// conditions". This example does exactly that: a link whose quality drifts
// between epochs (somebody moves furniture / a door closes), a static
// configuration chosen once, and an adaptive controller that re-optimises
// payload and power each epoch from the receiver's measured SNR using the
// empirical models.
#include <iostream>
#include <vector>

#include "core/models/model_set.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "phy/cc2420.h"
#include "phy/frame.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

/// One epoch of channel state: a static extra fade in dB.
struct Epoch {
  const char* label;
  double extra_fade_db;
};

metrics::LinkMetrics RunEpoch(const core::StackConfig& config, double fade,
                              std::uint64_t seed) {
  node::SimulationOptions options;
  options.config = config;
  options.seed = seed;
  options.packet_count = 700;
  options.spatial_shadow_db = fade;
  return metrics::MeasureConfig(options);
}

}  // namespace

int main() {
  using namespace wsnlink;
  std::cout << "Adaptive multi-layer tuning on a drifting 25 m link\n"
            << "(energy objective; the controller re-optimises payload and "
               "power from measured SNR each epoch)\n\n";

  const std::vector<Epoch> epochs{{"clear morning", 0.0},
                                  {"door closed", -8.0},
                                  {"rush hour", -14.0},
                                  {"evening", -5.0},
                                  {"night", +2.0}};

  const core::models::ModelSet models;

  // Static configuration: tuned once for the nominal (epoch-0) link using
  // the same models, then frozen.
  core::StackConfig static_config;
  static_config.distance_m = 25.0;
  static_config.pkt_interval_ms = 120.0;
  static_config.max_tries = 3;
  static_config.queue_capacity = 5;
  static_config.pa_level = models.LinkQuality().MinPaLevelForSnr(
      25.0, core::models::kEnergyMaxPayloadSnrDb);
  if (static_config.pa_level < 0) static_config.pa_level = 31;
  static_config.payload_bytes = phy::kMaxPayloadBytes;

  util::TextTable table({"epoch", "fade[dB]", "policy", "config",
                         "measured SNR[dB]", "energy[uJ/bit]", "loss"});
  double static_energy_total = 0.0;
  double adaptive_energy_total = 0.0;

  core::StackConfig adaptive_config = static_config;
  std::uint64_t seed = 100;
  for (const auto& epoch : epochs) {
    // --- static policy -------------------------------------------------
    const auto static_m = RunEpoch(static_config, epoch.extra_fade_db, seed);
    static_energy_total += static_m.energy_uj_per_bit;
    table.NewRow()
        .Add(epoch.label)
        .Add(epoch.extra_fade_db, 0)
        .Add("static")
        .Add(static_config.ToString())
        .Add(static_m.mean_snr_db, 1)
        .Add(static_m.energy_uj_per_bit, 3)
        .Add(static_m.plr_total, 3);

    // --- adaptive policy ------------------------------------------------
    // The controller reads the previous epoch's receiver SNR estimate
    // (here: a short probe at the current adaptive config) and re-derives
    // power + payload from the energy model, exactly the Sec. IV-C rule.
    const auto probe = RunEpoch(adaptive_config, epoch.extra_fade_db, seed + 1);
    const double measured_snr =
        probe.delivered_unique > 20 ? probe.mean_snr_db : 3.0;

    // SNR measured at the current level transfers to other levels by the
    // dBm difference between levels.
    const auto snr_at = [&](int level) {
      return measured_snr + phy::OutputPowerDbm(level) -
             phy::OutputPowerDbm(adaptive_config.pa_level);
    };
    int best_level = 31;
    for (const int level : {3, 7, 11, 15, 19, 23, 27, 31}) {
      if (snr_at(level) >= core::models::kEnergyMaxPayloadSnrDb) {
        best_level = level;
        break;
      }
    }
    adaptive_config.pa_level = best_level;
    adaptive_config.payload_bytes =
        snr_at(best_level) >= core::models::kEnergyMaxPayloadSnrDb
            ? phy::kMaxPayloadBytes
            : models.Energy().OptimalPayload(snr_at(best_level), best_level);

    const auto adaptive_m =
        RunEpoch(adaptive_config, epoch.extra_fade_db, seed + 2);
    adaptive_energy_total += adaptive_m.energy_uj_per_bit;
    table.NewRow()
        .Add("")
        .Add("")
        .Add("adaptive")
        .Add(adaptive_config.ToString())
        .Add(adaptive_m.mean_snr_db, 1)
        .Add(adaptive_m.energy_uj_per_bit, 3)
        .Add(adaptive_m.plr_total, 3);
    seed += 10;
  }
  std::cout << table << "\n";

  const double saving =
      100.0 * (1.0 - adaptive_energy_total / static_energy_total);
  std::cout << "total energy per bit across epochs: static = "
            << util::FormatDouble(static_energy_total, 3)
            << ", adaptive = " << util::FormatDouble(adaptive_energy_total, 3)
            << "  (adaptive saves " << util::FormatDouble(saving, 1)
            << "%)\n";
  return 0;
}
