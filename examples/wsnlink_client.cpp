// wsnlink_client: line-protocol client and load generator for wsnlinkd.
//
// Reads request lines from a trace file (or stdin), sends each and waits
// for its single-line reply, then prints a latency summary. Doubles as the
// CI load generator: `--out` captures the replies byte-for-byte for golden
// comparison, `--clients N` opens N concurrent connections replaying the
// same trace (exercising the daemon's batching path), and `--inprocess`
// drives a QueryService directly with no socket (for hosts without
// loopback).
//
// Usage:
//   wsnlink_client [--host H] [--port N] [--trace FILE] [--out FILE]
//                  [--repeat N] [--clients N] [--stats] [--inprocess]
//                  [--cache FILE] [--threads N]
//
// Timing lives here, not in the daemon: responses carry no timestamps (the
// determinism contract), so latency is measured where it is experienced.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/query_service.h"
#include "util/args.h"

namespace {

using wsnlink::serve::QueryService;

/// One blocking request/response socket session.
class SocketSession {
 public:
  SocketSession(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("client: cannot create socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = ::htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd_);
      throw std::runtime_error("client: bad host " + host);
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      throw std::runtime_error("client: cannot connect to " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    }
  }
  ~SocketSession() {
    if (fd_ >= 0) ::close(fd_);
  }
  SocketSession(const SocketSession&) = delete;
  SocketSession& operator=(const SocketSession&) = delete;

  std::string RoundTrip(const std::string& line) {
    std::string wire = line;
    wire += '\n';
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("client: send failed");
      }
      sent += static_cast<std::size_t>(n);
    }
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string reply = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return reply;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) throw std::runtime_error("client: server closed mid-reply");
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("client: recv failed");
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::vector<std::string> LoadTrace(const std::string& path) {
  std::vector<std::string> lines;
  std::istream* in = &std::cin;
  std::ifstream file;
  if (!path.empty()) {
    file.open(path);
    if (!file) throw std::runtime_error("client: cannot open trace " + path);
    in = &file;
  }
  std::string line;
  while (std::getline(*in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

struct RunResult {
  std::vector<std::string> responses;
  std::vector<double> latencies_us;
  std::uint64_t errors = 0;
};

/// Replays the trace `repeat` times over one transport.
template <typename AnswerFn>
RunResult Replay(const std::vector<std::string>& trace, int repeat,
                 AnswerFn&& answer) {
  RunResult result;
  result.responses.reserve(trace.size() * static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    for (const std::string& line : trace) {
      const auto start = std::chrono::steady_clock::now();
      std::string reply = answer(line);
      const auto stop = std::chrono::steady_clock::now();
      result.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(stop - start).count());
      if (reply.find("\"status\":\"error\"") != std::string::npos) {
        ++result.errors;
      }
      result.responses.push_back(std::move(reply));
    }
  }
  return result;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsnlink;
  try {
    const util::Args args(argc, argv, {"--stats", "--inprocess"});
    const std::string host = args.GetString("--host", "127.0.0.1");
    const auto port = static_cast<std::uint16_t>(args.GetSize("--port", 4710));
    const std::string trace_path = args.GetString("--trace", "");
    const std::string out_path = args.GetString("--out", "");
    const int repeat = args.GetPositiveInt("--repeat", 1);
    const int clients = args.GetPositiveInt("--clients", 1);
    const bool want_stats = args.Has("--stats");
    const bool inprocess = args.Has("--inprocess");

    const std::vector<std::string> trace = LoadTrace(trace_path);
    if (trace.empty()) {
      std::fprintf(stderr, "wsnlink_client: empty trace\n");
      return 1;
    }

    std::unique_ptr<QueryService> local;
    if (inprocess) {
      serve::ServiceOptions options;
      options.cache_path = args.GetString("--cache", "");
      options.threads = static_cast<unsigned>(args.GetSize("--threads", 0));
      local = std::make_unique<QueryService>(options);
    }

    std::vector<RunResult> per_client(static_cast<std::size_t>(clients));
    {
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          if (inprocess) {
            per_client[static_cast<std::size_t>(c)] =
                Replay(trace, repeat,
                       [&](const std::string& line) {
                         return local->Answer(line);
                       });
          } else {
            SocketSession session(host, port);
            per_client[static_cast<std::size_t>(c)] =
                Replay(trace, repeat,
                       [&](const std::string& line) {
                         return session.RoundTrip(line);
                       });
          }
        });
      }
      for (std::thread& t : threads) t.join();
    }

    // Golden capture uses client 0 (with --clients 1 that is everything).
    if (!out_path.empty()) {
      std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw std::runtime_error("client: cannot open out file " + out_path);
      }
      for (const std::string& reply : per_client[0].responses) {
        out << reply << '\n';
      }
    }

    std::vector<double> latencies;
    std::uint64_t errors = 0;
    std::size_t total = 0;
    for (const RunResult& r : per_client) {
      latencies.insert(latencies.end(), r.latencies_us.begin(),
                       r.latencies_us.end());
      errors += r.errors;
      total += r.responses.size();
    }

    if (want_stats) {
      const std::string stats_line = "{\"verb\":\"stats\"}";
      std::string reply;
      if (inprocess) {
        reply = local->Answer(stats_line);
      } else {
        SocketSession session(host, port);
        reply = session.RoundTrip(stats_line);
      }
      std::printf("%s\n", reply.c_str());
    }

    std::printf("wsnlink_client done requests=%zu errors=%llu p50_us=%.1f"
                " p99_us=%.1f\n",
                total, static_cast<unsigned long long>(errors),
                Percentile(latencies, 0.50), Percentile(latencies, 0.99));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wsnlink_client: %s\n", e.what());
    return 1;
  }
}
