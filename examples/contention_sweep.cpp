// Contention sweep: how a link degrades as senders share the medium.
//
// The paper studies one sender and folds "other traffic" into a collision
// factor (Sec. VIII-D). The network simulation replaces that with real
// contention: N senders on one collision domain, carrier sense observing
// each other's transmissions, overlaps resolved by SINR capture. This tool
// runs a node-count ladder and prints/exports how PER, loss, queue drops
// and carrier-sense pressure scale with contenders.
//
//   ./build/examples/contention_sweep --nodes 1,2,4 --packets 400
//   ./build/examples/contention_sweep --nodes 2 --interferer-duty 0.05
//       --no-shared-medium            (ablation: the paper's synthetic model)
//
// The CSV (--csv FILE) is deterministic in the flags, byte for byte.
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/contention.h"
#include "node/link_simulation.h"
#include "util/args.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

std::vector<int> ParseNodeList(const std::string& list) {
  std::vector<int> nodes;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    nodes.push_back(
        util::ParsePositiveInt(list.substr(begin, end - begin), "--nodes"));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return nodes;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Args args(argc, argv, {"--help", "--no-shared-medium"});
  if (args.Has("--help")) {
    std::cout
        << "usage: contention_sweep [--nodes N1,N2,...] [--packets N]\n"
           "                        [--seed N] [--distance M] [--spacing M]\n"
           "                        [--mac csma|lpl] [--interferer-duty D]\n"
           "                        [--no-shared-medium] [--sim-threads N]\n"
           "                        [--csv FILE]\n"
           "  --nodes             node-count ladder (default 1,2,4)\n"
           "  --spacing           extra sink distance per node [m]\n"
           "  --interferer-duty   synthetic duty-cycle interferer (ablation)\n"
           "  --no-shared-medium  disable emergent contention (ablation)\n"
           "  --sim-threads       worker threads inside each network run\n"
           "                      (optimistic parallel engine; default 1,\n"
           "                      output is byte-identical for any value)\n"
           "  --csv               write the ladder as deterministic CSV\n";
    return 0;
  }

  experiment::ContentionOptions options;
  options.node_counts = ParseNodeList(args.GetString("--nodes", "1,2,4"));
  options.packet_count = args.GetPositiveInt("--packets", 400);
  options.base_seed =
      static_cast<std::uint64_t>(args.GetInt("--seed", 1));
  options.config.distance_m = args.GetDouble("--distance", 20.0);
  options.config.pkt_interval_ms = 25.0;
  options.node_spacing_m = args.GetDouble("--spacing", 0.0);
  options.interferer_duty_cycle = args.GetDouble("--interferer-duty", 0.0);
  options.shared_medium = !args.Has("--no-shared-medium");
  options.sim_threads = args.GetPositiveInt("--sim-threads", 1);
  const std::string mac = args.GetString("--mac", "csma");
  if (mac == "csma") {
    options.mac = node::MacKind::kCsma;
  } else if (mac == "lpl") {
    options.mac = node::MacKind::kLpl;
  } else {
    throw std::invalid_argument("--mac must be csma or lpl, got " + mac);
  }

  const auto points = experiment::RunContentionSweep(options);

  util::TextTable table({"nodes", "generated", "delivered", "per",
                         "plr_total", "queue_drops", "cca_busy",
                         "collisions", "captures"});
  for (const auto& p : points) {
    table.NewRow()
        .Add(std::to_string(p.nodes))
        .Add(std::to_string(p.result.generated))
        .Add(std::to_string(p.result.delivered_unique))
        .Add(p.result.per, 4)
        .Add(p.result.plr_total, 4)
        .Add(std::to_string(p.result.queue_drops))
        .Add(std::to_string(p.result.cca_busy))
        .Add(std::to_string(p.result.medium.collisions))
        .Add(std::to_string(p.result.medium.captures));
  }
  std::cout << "Contention ladder (" << mac << ", "
            << (options.shared_medium ? "shared medium"
                                      : "no shared medium (ablation)")
            << ", " << options.packet_count << " packets/node):\n"
            << table;

  const std::string csv_path = args.GetString("--csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      throw std::runtime_error("cannot open " + csv_path + " for writing");
    }
    out << experiment::ContentionCsvHeader() << "\n";
    for (const auto& p : points) {
      out << experiment::SerializeContentionRow(p) << "\n";
    }
    std::cout << "wrote " << points.size() << " rows to " << csv_path << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "contention_sweep: " << e.what() << "\n";
  return 1;
}
