// tune — command-line configuration advisor.
//
// Feed it your deployment (distance, packet interval, payload per reading)
// and an objective; it prints the recommended multi-layer configuration,
// the model-predicted outcome, and a simulated verification run.
//
// Usage:
//   tune --distance 25 --interval 100 [--objective energy|goodput|delay|loss]
//        [--loss-target 0.01] [--energy-budget 0.3] [--verify]
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/opt/epsilon_constraint.h"
#include "util/args.h"
#include "core/opt/guidelines.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

void PrintRecommendation(const core::opt::Recommendation& rec, bool verify) {
  std::cout << "recommended configuration: " << rec.config.ToString() << "\n"
            << "rationale: " << rec.rationale << "\n\n";

  util::TextTable table({"metric", "model prediction", "verified (sim)"});
  metrics::LinkMetrics measured;
  if (verify) {
    node::SimulationOptions options;
    options.config = rec.config;
    options.seed = 1;
    options.packet_count = 2000;
    measured = metrics::MeasureConfig(options);
  }
  const auto add = [&](const char* name, double predicted, double actual,
                       int precision) {
    table.NewRow().Add(name).Add(predicted, precision);
    if (verify) {
      table.Add(actual, precision);
    } else {
      table.Add("-");
    }
  };
  add("energy [uJ/bit]", rec.predicted.energy_uj_per_bit,
      measured.energy_uj_per_bit, 3);
  // Note: the model column is the SATURATED maximum goodput; the verified
  // column is the goodput of the deployment's actual offered load.
  add("goodput [kbps] (model=saturated)", rec.predicted.max_goodput_kbps,
      measured.goodput_kbps, 2);
  add("delay [ms]", rec.predicted.total_delay_ms, measured.mean_delay_ms, 2);
  add("loss rate", rec.predicted.plr_total, measured.plr_total, 4);
  add("utilization rho", rec.predicted.utilization, measured.utilization, 3);
  std::cout << table;
}

}  // namespace

int main(int argc, char** argv) {
  double distance = 20.0;
  double interval = 100.0;
  std::string objective = "energy";
  double loss_target = 0.01;
  double energy_budget = 0.0;
  bool verify = false;

  try {
    const util::Args args(argc, argv, {"--verify"});
    distance = args.GetDouble("--distance", distance);
    interval = args.GetDouble("--interval", interval);
    objective = args.GetString("--objective", objective);
    loss_target = args.GetDouble("--loss-target", loss_target);
    energy_budget = args.GetDouble("--energy-budget", energy_budget);
    verify = args.Has("--verify");
    if (!args.Positional().empty()) {
      throw std::invalid_argument("unexpected positional argument");
    }
  } catch (const std::exception& e) {
    std::cerr << e.what()
              << "\nusage: tune --distance M --interval MS "
                 "[--objective energy|goodput|delay|loss] "
                 "[--loss-target F] [--energy-budget UJ] [--verify]\n";
    return 2;
  }

  std::cout << "deployment: " << distance << " m link, one packet every "
            << interval << " ms; objective: " << objective << "\n\n";

  core::opt::Deployment deployment;
  deployment.distance_m = distance;
  deployment.pkt_interval_ms = interval;
  const core::opt::Guidelines guidelines;

  if (objective == "energy") {
    PrintRecommendation(guidelines.MinimizeEnergy(deployment), verify);
  } else if (objective == "delay") {
    PrintRecommendation(guidelines.MinimizeDelay(deployment), verify);
  } else if (objective == "loss") {
    PrintRecommendation(guidelines.MinimizeLoss(deployment, loss_target),
                        verify);
  } else if (objective == "goodput") {
    if (energy_budget > 0.0) {
      // Joint epsilon-constraint search instead of the plain guideline.
      core::opt::ConfigSpace space;
      space.distances_m = {distance};
      space.pa_levels = {3, 7, 11, 15, 19, 23, 27, 31};
      space.max_tries = {1, 2, 3, 5, 8};
      space.retry_delays_ms = {0.0};
      space.queue_capacities = {30};
      space.pkt_intervals_ms = {interval};
      space.payload_bytes = {5,  10, 20, 30, 40, 50,  60,
                             70, 80, 90, 100, 110, 114};
      core::opt::Problem problem;
      problem.objective = core::opt::Metric::kGoodput;
      problem.constraints.push_back(
          core::opt::AtMost(core::opt::Metric::kEnergy, energy_budget));
      const auto solution = core::opt::SolveEpsilonConstraint(
          guidelines.Models(), space, problem);
      if (!solution) {
        std::cout << "no configuration satisfies the energy budget of "
                  << energy_budget << " uJ/bit on this link\n";
        return 1;
      }
      core::opt::Recommendation rec;
      rec.config = solution->config;
      rec.predicted = solution->prediction;
      rec.rationale = "epsilon-constraint: max goodput s.t. energy budget (" +
                      std::to_string(solution->feasible_count) +
                      " feasible configs)";
      PrintRecommendation(rec, verify);
    } else {
      PrintRecommendation(guidelines.MaximizeGoodput(deployment), verify);
    }
  } else {
    std::cerr << "unknown objective '" << objective << "'\n";
    return 2;
  }
  return 0;
}
