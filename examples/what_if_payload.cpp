// what_if_payload — offline payload tuning from a recorded attempt trace.
//
// Reads a per-attempt CSV (as written by experiment::WriteAttemptLogCsv or
// converted from the paper's public dataset) and answers: on the channel
// this trace recorded, what PER / radio loss / saturated goodput would each
// candidate payload have achieved, and which payload is goodput-optimal?
//
// Usage:
//   what_if_payload <attempts.csv> [max_tries]
//
// With no arguments, the tool records a demonstration trace itself (grey-
// zone link) and analyses that.
#include <iostream>
#include <string>

#include "channel/ber.h"
#include "experiment/dataset.h"
#include "metrics/what_if.h"
#include "node/link_simulation.h"
#include "util/args.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace wsnlink;

  std::vector<link::AttemptRecord> trace;
  int max_tries = 3;
  if (argc >= 2) {
    try {
      trace = experiment::ReadAttemptLogCsv(argv[1]);
    } catch (const std::exception& e) {
      std::cerr << "cannot read " << argv[1] << ": " << e.what() << "\n";
      return 1;
    }
    if (argc >= 3) {
      try {
        // atoi would silently turn garbage ("abc", "0", "-3") into a
        // nonsensical retry budget; reject anything that is not >= 1.
        max_tries = util::ParsePositiveInt(argv[2], "max_tries");
      } catch (const std::exception& e) {
        std::cerr << e.what()
                  << "\nusage: what_if_payload <attempts.csv> [max_tries]\n";
        return 2;
      }
    }
    std::cout << "trace: " << trace.size() << " attempts from " << argv[1]
              << "\n\n";
  } else {
    std::cout << "no trace given: recording a demonstration trace "
                 "(35 m grey-zone link, 1500 packets)\n\n";
    node::SimulationOptions options;
    options.config.distance_m = 35.0;
    options.config.pa_level = 11;
    options.config.max_tries = 1;
    options.config.queue_capacity = 1;
    options.config.pkt_interval_ms = 40.0;
    options.config.payload_bytes = 60;
    options.packet_count = 1500;
    options.seed = 7;
    const auto result = node::RunLinkSimulation(options);
    trace = result.log.Attempts();
  }
  if (trace.empty()) {
    std::cerr << "empty trace\n";
    return 1;
  }

  const channel::CalibratedExponentialBer ber;
  const std::vector<int> candidates{5, 10, 20, 30, 40, 50, 60, 70,
                                    80, 90, 100, 110, 114};
  const auto results =
      metrics::PayloadWhatIf(trace, ber, candidates, max_tries);

  util::TextTable table({"payload[B]", "PER", "PLR_radio(N)",
                         "maxGoodput[kbps]"});
  for (const auto& r : results) {
    table.NewRow()
        .Add(r.payload_bytes)
        .Add(r.per, 3)
        .Add(r.plr_radio, 4)
        .Add(r.max_goodput_kbps, 2);
  }
  std::cout << table << "\ngoodput-optimal payload on this trace (N = "
            << max_tries << "): "
            << metrics::BestPayloadOnTrace(trace, ber, max_tries) << " B\n";
  return 0;
}
