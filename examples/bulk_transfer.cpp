// Bulk-transfer example — the paper's Sec. VIII-C case study as an
// application: an indoor sensor must push a large buffer of data to a base
// station in a short time slot over a poor (grey-zone) link, maximising
// throughput subject to an energy budget.
//
// The example compares the transfer time and energy of (a) the deployment's
// default configuration, (b) the "just raise the power" fix, and (c) the
// joint multi-layer optimisation via the epsilon-constraint solver.
#include <iostream>

#include "core/models/model_set.h"
#include "core/opt/baselines.h"
#include "core/opt/epsilon_constraint.h"
#include "example_flags.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "util/args.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

// The case-study link: a 35 m placement in a deep fade; SNR reaches ~6 dB
// only at maximum output power.
constexpr double kShadowDb = -17.3;
constexpr double kBufferBytes = 64.0 * 1024.0;  // 64 KiB of samples

struct TransferOutcome {
  double seconds = 0.0;
  double millijoules = 0.0;
  double goodput_kbps = 0.0;
};

TransferOutcome Transfer(const core::StackConfig& config,
                         const util::Args& args) {
  node::SimulationOptions options;
  options.config = config;
  options.seed = 11;
  options.spatial_shadow_db = kShadowDb;
  options.disable_temporal_shadowing = true;
  options.packet_count = 1200;
  examples::ApplySimFlags(args, options);
  const auto m = metrics::MeasureConfig(options);

  TransferOutcome outcome;
  outcome.goodput_kbps = m.goodput_kbps;
  if (m.goodput_kbps > 0.0) {
    outcome.seconds = kBufferBytes * 8.0 / (m.goodput_kbps * 1000.0);
  }
  // Energy = energy-per-delivered-bit * buffer bits.
  outcome.millijoules = m.energy_uj_per_bit * kBufferBytes * 8.0 / 1000.0;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace wsnlink;

  const util::Args args(argc, argv, {"--help"});
  if (args.Has("--help")) {
    std::cout << "usage: bulk_transfer [--seed N] [--packets N]\n";
    return 0;
  }

  std::cout << "Bulk transfer: push 64 KiB over a grey-zone 35 m link\n\n";

  const core::models::ModelSet models(
      core::models::kPaperPerFit, core::models::kPaperNtriesFit,
      core::models::kPaperPlrFit,
      core::models::LinkQualityMap(channel::PathLossParams{}, -95.0,
                                   kShadowDb));

  const auto base = core::opt::CaseStudyBaseConfig(35.0);

  // Joint optimisation: maximise goodput with an energy budget, searching
  // power x payload x retransmissions.
  const auto joint = core::opt::JointTuning(models, base, 0.55);

  util::TextTable table({"strategy", "config", "transfer[s]", "energy[mJ]",
                         "goodput[kbps]"});
  const auto add = [&table, &args](const std::string& name,
                                   const core::StackConfig& config) {
    const auto outcome = Transfer(config, args);
    table.NewRow()
        .Add(name)
        .Add(config.ToString())
        .Add(outcome.seconds, 1)
        .Add(outcome.millijoules, 1)
        .Add(outcome.goodput_kbps, 2);
  };
  add("deployment default", base);
  add("raise power only [11]", core::opt::TunePowerBaseline(base).config);
  add("joint optimisation", joint.config);
  std::cout << table << "\n";

  std::cout << "The joint configuration transfers the buffer faster AND "
               "cheaper: the paper's Fig. 1 trade-off in application "
               "terms.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bulk_transfer: " << e.what() << "\n";
  return 1;
}
