// Smart-home monitoring example.
//
// The paper motivates one-hop WSN links with smart-home deployments (~25%
// of real deployments are single-hop). This example configures a sensor
// that reports readings every 200 ms to a base station 18 m away, with two
// competing requirements: packet loss below 1% and minimal energy (battery
// powered). It uses the per-metric guidelines (Sec. IV-C / VII-B) and shows
// what each recommendation costs on the simulated link.
#include <iostream>

#include "core/opt/guidelines.h"
#include "example_flags.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "util/args.h"
#include "util/table.h"

namespace {

using namespace wsnlink;

metrics::LinkMetrics Evaluate(const core::StackConfig& config,
                              const util::Args& args) {
  node::SimulationOptions options;
  options.config = config;
  options.seed = 7;
  options.packet_count = 2000;
  examples::ApplySimFlags(args, options);
  return metrics::MeasureConfig(options);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace wsnlink;

  const util::Args args(argc, argv, {"--help"});
  if (args.Has("--help")) {
    std::cout << "usage: smart_home_monitoring [--seed N] [--packets N]\n";
    return 0;
  }

  std::cout << "Smart-home monitoring: sensor -> base station, 18 m, one "
               "reading every 200 ms\n\n";

  core::opt::Deployment deployment;
  deployment.distance_m = 18.0;
  deployment.pkt_interval_ms = 200.0;

  const core::opt::Guidelines guidelines;

  // A naive deployment for contrast: everything at defaults/maximum.
  core::StackConfig naive;
  naive.distance_m = deployment.distance_m;
  naive.pkt_interval_ms = deployment.pkt_interval_ms;
  naive.pa_level = 31;
  naive.max_tries = 1;
  naive.queue_capacity = 1;
  naive.payload_bytes = 20;

  const auto energy_rec = guidelines.MinimizeEnergy(deployment);
  const auto loss_rec = guidelines.MinimizeLoss(deployment, 0.01);
  const auto delay_rec = guidelines.MinimizeDelay(deployment);

  util::TextTable table({"policy", "config", "loss", "energy[uJ/bit]",
                         "delay[ms]", "rho"});
  const auto add_row = [&table, &args](const std::string& name,
                                       const core::StackConfig& config) {
    const auto m = Evaluate(config, args);
    table.NewRow()
        .Add(name)
        .Add(config.ToString())
        .Add(m.plr_total, 4)
        .Add(m.energy_uj_per_bit, 3)
        .Add(m.mean_delay_ms, 2)
        .Add(m.utilization, 3);
  };
  add_row("naive defaults", naive);
  add_row("energy guideline (IV-C)", energy_rec.config);
  add_row("loss guideline (VII-B)", loss_rec.config);
  add_row("delay guideline (VI-B)", delay_rec.config);
  std::cout << table << "\n";

  std::cout << "guideline rationales:\n"
            << "  energy: " << energy_rec.rationale << "\n"
            << "  loss:   " << loss_rec.rationale << "\n"
            << "  delay:  " << delay_rec.rationale << "\n\n";

  // The energy guideline batches readings into the maximum payload. For a
  // sensor producing 20 B per reading, that means aggregating ~5 readings
  // per packet: show the resulting duty-cycle arithmetic.
  const auto& cfg = energy_rec.config;
  const double readings_per_packet = cfg.payload_bytes / 20.0;
  std::cout << "energy guideline batches ~"
            << util::FormatDouble(readings_per_packet, 1)
            << " readings per " << cfg.payload_bytes
            << " B packet at PA level " << cfg.pa_level
            << " -> predicted " << util::FormatDouble(
                   energy_rec.predicted.energy_uj_per_bit, 3)
            << " uJ per delivered bit\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "smart_home_monitoring: " << e.what() << "\n";
  return 1;
}
