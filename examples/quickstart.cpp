// Quickstart: simulate one configuration, predict it with the empirical
// models, and compare measured vs predicted metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Inspecting a run (docs/TRACING.md):
//   ./build/examples/quickstart --trace-out run.json --trace-csv run.csv
// then load run.json into chrome://tracing or https://ui.perfetto.dev.
#include <iostream>

#include "core/models/model_set.h"
#include "example_flags.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "util/args.h"
#include "util/table.h"

int main(int argc, char** argv) try {
  using namespace wsnlink;

  util::Args args(argc, argv, {"--help"});
  if (args.Has("--help")) {
    std::cout
        << "usage: quickstart [--seed N] [--packets N]\n"
           "                  [--trace-out FILE.json] [--trace-csv FILE.csv]\n"
           "  --trace-out   write the run's event trace as Chrome trace_event\n"
           "                JSON (open in chrome://tracing / Perfetto)\n"
           "  --trace-csv   write the same events as a flat CSV\n";
    return 0;
  }

  // 1. Describe the deployment: one sender-receiver pair, 20 m apart, a
  //    sensing application emitting a 110-byte reading every 100 ms.
  core::StackConfig config;
  config.distance_m = 20.0;
  config.pa_level = 19;
  config.max_tries = 3;
  config.retry_delay_ms = 0.0;
  config.queue_capacity = 5;
  config.pkt_interval_ms = 100.0;
  config.payload_bytes = 110;

  std::cout << "Configuration: " << config.ToString() << "\n";

  // 2. Predict the performance with the paper's empirical models.
  const core::models::ModelSet models;
  const auto predicted = models.Predict(config);

  // 3. Measure the same configuration on the simulated link, tracing the
  //    run when asked to.
  node::SimulationOptions options;
  options.config = config;
  options.seed = 42;
  options.packet_count = 2000;
  examples::ApplySimFlags(args, options);

  const std::string trace_out = args.GetString("--trace-out", "");
  const std::string trace_csv = args.GetString("--trace-csv", "");
  trace::Tracer tracer;
  if (!trace_out.empty() || !trace_csv.empty()) options.tracer = &tracer;

  const auto result = node::RunLinkSimulation(options);
  const auto measured =
      metrics::ComputeMetrics(result, config.pkt_interval_ms);

  // 4. Compare.
  util::TextTable table({"metric", "model prediction", "measured"});
  table.NewRow().Add("link SNR [dB]").Add(predicted.snr_db, 1).Add("-");
  table.NewRow().Add("PER").Add(predicted.per, 4).Add(measured.per, 4);
  table.NewRow()
      .Add("service time [ms]")
      .Add(predicted.service_time_ms, 2)
      .Add(measured.mean_service_ms, 2);
  table.NewRow()
      .Add("utilization rho")
      .Add(predicted.utilization, 3)
      .Add(measured.utilization, 3);
  table.NewRow()
      .Add("energy [uJ/bit]")
      .Add(predicted.energy_uj_per_bit, 3)
      .Add(measured.energy_uj_per_bit, 3);
  table.NewRow()
      .Add("delay [ms]")
      .Add(predicted.total_delay_ms, 2)
      .Add(measured.mean_delay_ms, 2);
  table.NewRow()
      .Add("loss rate")
      .Add(predicted.plr_total, 4)
      .Add(measured.plr_total, 4);
  std::cout << table;

  std::cout << "\n" << models.SummaryTable() << "\n";

  // 5. Export the trace and the per-layer counters.
  if (options.tracer != nullptr) {
    const auto events = tracer.Events();
    if (!trace_out.empty()) {
      trace::WriteChromeTraceJson(trace_out, events, result.counters);
      std::cout << "wrote " << events.size() << " trace events to "
                << trace_out << " (chrome://tracing)\n";
    }
    if (!trace_csv.empty()) {
      trace::WriteTraceCsv(trace_csv, events);
      std::cout << "wrote " << events.size() << " trace events to "
                << trace_csv << "\n";
    }
    if (tracer.DroppedCount() > 0) {
      std::cout << "note: ring dropped " << tracer.DroppedCount()
                << " oldest events\n";
    }
    std::cout << "\ncounters:\n";
    for (const auto& c : result.counters) {
      std::cout << "  " << c.name << " = " << c.value << "\n";
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "quickstart: " << e.what() << "\n";
  return 1;
}
