// Quickstart: simulate one configuration, predict it with the empirical
// models, and compare measured vs predicted metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/models/model_set.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "util/table.h"

int main() {
  using namespace wsnlink;

  // 1. Describe the deployment: one sender-receiver pair, 20 m apart, a
  //    sensing application emitting a 110-byte reading every 100 ms.
  core::StackConfig config;
  config.distance_m = 20.0;
  config.pa_level = 19;
  config.max_tries = 3;
  config.retry_delay_ms = 0.0;
  config.queue_capacity = 5;
  config.pkt_interval_ms = 100.0;
  config.payload_bytes = 110;

  std::cout << "Configuration: " << config.ToString() << "\n";

  // 2. Predict the performance with the paper's empirical models.
  const core::models::ModelSet models;
  const auto predicted = models.Predict(config);

  // 3. Measure the same configuration on the simulated link.
  node::SimulationOptions options;
  options.config = config;
  options.seed = 42;
  options.packet_count = 2000;
  const auto measured = metrics::MeasureConfig(options);

  // 4. Compare.
  util::TextTable table({"metric", "model prediction", "measured"});
  table.NewRow().Add("link SNR [dB]").Add(predicted.snr_db, 1).Add("-");
  table.NewRow().Add("PER").Add(predicted.per, 4).Add(measured.per, 4);
  table.NewRow()
      .Add("service time [ms]")
      .Add(predicted.service_time_ms, 2)
      .Add(measured.mean_service_ms, 2);
  table.NewRow()
      .Add("utilization rho")
      .Add(predicted.utilization, 3)
      .Add(measured.utilization, 3);
  table.NewRow()
      .Add("energy [uJ/bit]")
      .Add(predicted.energy_uj_per_bit, 3)
      .Add(measured.energy_uj_per_bit, 3);
  table.NewRow()
      .Add("delay [ms]")
      .Add(predicted.total_delay_ms, 2)
      .Add(measured.mean_delay_ms, 2);
  table.NewRow()
      .Add("loss rate")
      .Add(predicted.plr_total, 4)
      .Add(measured.plr_total, 4);
  std::cout << table;

  std::cout << "\n" << models.SummaryTable() << "\n";
  return 0;
}
