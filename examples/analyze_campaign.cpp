// analyze_campaign — offline analysis of a recorded dataset.
//
// The paper's dataset is public; this tool is the analysis half of the
// pipeline, runnable on any summary CSV produced by run_campaign (no
// simulation involved): refits the empirical models from the data,
// validates every model, and prints the per-zone aggregates.
//
// Usage:
//   run_campaign --stride 31 --packets 300 --out campaign.csv
//   analyze_campaign campaign.csv
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/fit/bootstrap.h"
#include "core/models/validation.h"
#include "experiment/analysis.h"
#include "experiment/dataset.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace wsnlink;
  if (argc != 2) {
    std::cerr << "usage: analyze_campaign <summary.csv>\n";
    return 2;
  }
  const std::string path = argv[1];

  std::vector<experiment::SweepPoint> points;
  try {
    points = experiment::ReadSummaryCsv(path);
  } catch (const std::exception& e) {
    std::cerr << "cannot read " << path << ": " << e.what() << "\n";
    return 1;
  }
  std::cout << "dataset: " << points.size() << " configurations from " << path
            << "\n\n";
  if (points.empty()) return 0;

  // ---- refit Eq. 3 from per-config PER observations -------------------
  std::vector<core::fit::ScaledExpSample> per_samples;
  for (const auto& p : points) {
    if (p.mean_snr_db < 4.0 || p.mean_snr_db > 28.0) continue;
    if (p.config.max_tries != 1) continue;  // PER observable at N=1
    core::fit::ScaledExpSample s;
    s.payload_bytes = p.config.payload_bytes;
    s.snr_db = p.mean_snr_db;
    s.value = p.measured.per;
    per_samples.push_back(s);
  }
  if (per_samples.size() >= 10) {
    const auto fit = core::fit::BootstrapScaledExponential(
        per_samples, util::Rng(1), {200, 0.95});
    if (fit) {
      std::cout << "Eq. 3 refit from dataset:  PER = "
                << util::FormatDouble(fit->point.coefficients.a, 4)
                << " * l_D * exp(" << util::FormatDouble(fit->point.coefficients.b, 3)
                << " * SNR)\n"
                << "  95% CI: a in [" << util::FormatDouble(fit->a.lo, 4)
                << ", " << util::FormatDouble(fit->a.hi, 4) << "], b in ["
                << util::FormatDouble(fit->b.lo, 3) << ", "
                << util::FormatDouble(fit->b.hi, 3) << "]"
                << "   (paper: 0.0128, -0.150)\n\n";
    }
  } else {
    std::cout << "(too few N=1 rows in the model validity window for an "
                 "Eq. 3 refit)\n\n";
  }

  // ---- validate all models against the dataset ------------------------
  const auto samples = experiment::ToValidationSamples(points);
  const auto report =
      core::models::ValidateModels(core::models::ModelSet(), samples);
  std::cout << "model validation (paper coefficients, SNR in [4, 28] dB):\n"
            << report.ToString() << "\n";

  // ---- fleet delay quantiles ------------------------------------------
  // Per-run delay quantiles (delay_p50_ms / delay_p99_ms / delay_max_ms
  // columns) aggregated across every configuration that delivered data:
  // the fleet-wide latency picture a deployment planner reads first.
  std::vector<double> p50s;
  std::vector<double> p99s;
  double fleet_max_ms = 0.0;
  for (const auto& p : points) {
    if (p.measured.delivered_unique == 0) continue;
    p50s.push_back(p.measured.delay_p50_ms);
    p99s.push_back(p.measured.p99_delay_ms);
    fleet_max_ms = std::max(fleet_max_ms, p.measured.delay_max_ms);
  }
  if (!p50s.empty()) {
    std::sort(p50s.begin(), p50s.end());
    std::sort(p99s.begin(), p99s.end());
    std::cout << "fleet delay quantiles over " << p50s.size()
              << " delivering configurations (ms):\n"
              << "  per-run p50:  median "
              << util::FormatDouble(util::Quantile(p50s, 0.5), 3) << "  worst "
              << util::FormatDouble(p50s.back(), 3) << "\n"
              << "  per-run p99:  median "
              << util::FormatDouble(util::Quantile(p99s, 0.5), 3) << "  worst "
              << util::FormatDouble(p99s.back(), 3) << "\n"
              << "  fleet max:    " << util::FormatDouble(fleet_max_ms, 3)
              << "\n\n";
  }

  // ---- zone aggregates -------------------------------------------------
  const auto zones = experiment::SummariseByZone(points);
  std::cout << "measured metrics by joint-effect zone:\n"
            << experiment::ZoneTable(zones);
  return 0;
}
