// Prints the service-curve delay bounds next to the measured delay
// distribution for one configuration — the CLI face of the cross-
// validation harness (src/validate/).
//
//   delay_bounds --distance 25 --pa 31 --payload 110 --tries 3 \
//                --interval 100 --packets 1000
//
// Useful both to sanity-check a tuned configuration ("is my p99 close to
// the analytic worst case?") and to reproduce a bound-violation failure
// from tests/validation_servicecurve_test.cpp interactively. The
// --per-scale flag deliberately mis-parameterises the analytic PER (e.g.
// 0.5 = "the model thinks the channel is twice as good") to demonstrate
// the harness catching a wrong model.
#include <cstdio>
#include <exception>
#include <string>

#include "util/args.h"
#include "validate/cross_validation.h"

namespace {

int Run(int argc, char** argv) {
  using wsnlink::util::Args;
  const Args args(argc, argv, {"--lpl", "--no-interference", "--no-shadowing"});

  wsnlink::validate::CrossValidationOptions options;
  auto& config = options.sim.config;
  config.distance_m = args.GetDouble("--distance", 20.0);
  config.pa_level = args.GetInt("--pa", 31);
  config.max_tries = args.GetPositiveInt("--tries", 3);
  config.retry_delay_ms = args.GetDouble("--retry", 0.0);
  config.queue_capacity = args.GetPositiveInt("--queue", 1);
  config.pkt_interval_ms = args.GetDouble("--interval", 100.0);
  config.payload_bytes = args.GetPositiveInt("--payload", 110);

  options.sim.packet_count = args.GetPositiveInt("--packets", 1000);
  options.sim.seed = static_cast<std::uint64_t>(args.GetSize("--seed", 1));
  options.sim.disable_interference = args.Has("--no-interference");
  options.sim.disable_temporal_shadowing = args.Has("--no-shadowing");
  if (args.Has("--lpl")) {
    options.sim.mac = wsnlink::node::MacKind::kLpl;
    options.sim.lpl_wakeup_interval_ms = args.GetDouble("--wakeup", 100.0);
  }
  options.nodes = args.GetPositiveInt("--nodes", 1);
  options.confidence = args.GetDouble("--confidence", 0.999);
  options.curve.per_scale = args.GetDouble("--per-scale", 1.0);

  const auto report = wsnlink::validate::RunCrossValidation(options);

  std::printf("config: %s  mac=%s nodes=%d packets=%d seed=%llu\n",
              config.ToString().c_str(),
              options.sim.mac == wsnlink::node::MacKind::kLpl ? "lpl" : "csma",
              options.nodes, options.sim.packet_count,
              static_cast<unsigned long long>(options.sim.seed));
  std::printf("%s", report.ToString().c_str());
  return report.Passed() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "delay_bounds: %s\n"
                 "usage: delay_bounds [--distance M] [--pa LEVEL] "
                 "[--payload B] [--tries N] [--retry MS] [--queue Q] "
                 "[--interval MS] [--packets N] [--seed S] [--nodes N] "
                 "[--lpl] [--wakeup MS] [--per-scale X] [--confidence C] "
                 "[--no-interference] [--no-shadowing]\n",
                 e.what());
    return 2;
  }
}
