// wsnlinkd: the tuning-as-a-service daemon.
//
// Serves the paper's models and simulator over a line-delimited protocol on
// loopback TCP (docs/SERVING.md). Every answer is cached by canonical
// request key and persisted through the checkpoint writer, so a restarted
// daemon warms from disk instead of recomputing.
//
// Usage:
//   wsnlinkd [--port N] [--cache FILE] [--threads N] [--max-inflight N]
//            [--persist-every N] [--cache-max-entries N] [--abort-after N]
//
//   --port          TCP port on 127.0.0.1 (default 4710; 0 = ephemeral)
//   --cache         persistent result cache path (default: memory only)
//   --threads       max concurrent computations per batch (0 = pool width)
//   --max-inflight  request lines answered per cycle before busy-rejecting
//   --persist-every persist cadence in new entries (default 1 = every one)
//   --cache-max-entries  FIFO entry cap on the result cache (0 = unbounded)
//   --abort-after   crash drill: _Exit(3) after answering N requests
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>

#include "serve/query_service.h"
#include "serve/server.h"
#include "util/args.h"

namespace {

wsnlink::serve::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsnlink;
  try {
    const util::Args args(argc, argv);
    serve::ServiceOptions service_options;
    service_options.threads =
        static_cast<unsigned>(args.GetSize("--threads", 0));
    service_options.cache_path = args.GetString("--cache", "");
    service_options.persist_every = args.GetSize("--persist-every", 1);
    service_options.cache_max_entries = args.GetSize("--cache-max-entries", 0);

    serve::ServerOptions server_options;
    server_options.port =
        static_cast<std::uint16_t>(args.GetSize("--port", 4710));
    server_options.max_inflight = args.GetSize("--max-inflight", 64);
    server_options.abort_after =
        static_cast<std::uint64_t>(args.GetSize("--abort-after", 0));

    serve::QueryService service(service_options);
    const serve::ServiceStats warm = service.Stats();
    serve::Server server(service, server_options);
    g_server = &server;
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);

    // The "listening" line is the readiness handshake scripts wait for;
    // keep its shape stable.
    std::printf("wsnlinkd listening 127.0.0.1:%u warm_loaded=%llu"
                " corrupt_dropped=%llu\n",
                static_cast<unsigned>(server.Port()),
                static_cast<unsigned long long>(warm.warm_loaded),
                static_cast<unsigned long long>(warm.corrupt_dropped));
    std::fflush(stdout);

    server.Run();
    g_server = nullptr;

    const serve::ServiceStats stats = service.Stats();
    std::printf("wsnlinkd done requests=%llu hits=%llu misses=%llu"
                " errors=%llu\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses),
                static_cast<unsigned long long>(stats.parse_errors));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wsnlinkd: %s\n", e.what());
    return 1;
  }
}
