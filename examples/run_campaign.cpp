// Campaign driver — regenerate the paper's measurement dataset.
//
// Sweeps the Table I configuration space (optionally strided / with fewer
// packets) and writes the per-configuration summary CSV, the synthetic
// equivalent of the paper's public dataset [15][16].
//
// Usage:
//   run_campaign [--stride N] [--packets N] [--out PATH] [--threads N]
//                [--seed N] [--checkpoint PATH] [--resume]
//                [--checkpoint-every N] [--max-configs N] [--abort-after N]
//
// The full campaign is 48,384 configurations; the default stride of 97
// keeps a quick demonstration under a minute. `--stride 1 --packets 4500`
// reproduces the full six-month campaign (hours of CPU time).
//
// Crash safety (docs/ROBUSTNESS.md): with `--checkpoint PATH`, completed
// configurations are persisted every `--checkpoint-every` completions; a
// crashed or budget-limited (`--max-configs`) run restarts with `--resume`
// and produces a summary CSV byte-identical to an uninterrupted run.
// `--abort-after N` hard-kills the process (no cleanup, no flush) after N
// completions — the CI crash-drill hook; never useful in production.
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include "experiment/campaign.h"
#include "util/args.h"
#include "util/table.h"

namespace {

constexpr const char* kUsage =
    "usage: run_campaign [--stride N] [--packets N] [--out PATH]\n"
    "                    [--threads N] [--seed N] [--checkpoint PATH]\n"
    "                    [--resume] [--checkpoint-every N] [--max-configs N]\n"
    "                    [--abort-after N]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace wsnlink;

  experiment::CampaignOptions options;
  std::size_t abort_after = 0;
  try {
    const util::Args args(argc, argv, {"--resume"});
    options.stride = args.GetSize("--stride", 97);
    if (options.stride < 1) {
      throw std::invalid_argument("--stride must be >= 1");
    }
    options.packet_count = args.GetPositiveInt("--packets", 200);
    options.summary_csv_path = args.GetString("--out", "campaign_summary.csv");
    options.threads = static_cast<unsigned>(args.GetInt("--threads", 0));
    options.base_seed = args.GetSize("--seed", options.base_seed);
    options.checkpoint_path = args.GetString("--checkpoint", "");
    options.checkpoint_every = static_cast<std::size_t>(
        args.GetPositiveInt("--checkpoint-every", 64));
    options.resume = args.Has("--resume");
    options.max_configs = args.GetSize("--max-configs", 0);
    abort_after = args.GetSize("--abort-after", 0);
    if (options.resume && options.checkpoint_path.empty()) {
      throw std::invalid_argument("--resume requires --checkpoint PATH");
    }
    if (!args.Positional().empty()) {
      throw std::invalid_argument("unexpected positional argument");
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << kUsage;
    return 2;
  }

  const auto total = options.space.Size();
  std::cout << "Table I space: " << total << " configurations ("
            << options.space.SizePerDistance() << " per distance x "
            << options.space.distances_m.size() << " distances)\n"
            << "sweeping every " << options.stride << "-th configuration, "
            << options.packet_count << " packets each -> "
            << options.summary_csv_path << "\n";
  if (!options.checkpoint_path.empty()) {
    std::cout << "checkpointing every " << options.checkpoint_every
              << " configurations -> " << options.checkpoint_path
              << (options.resume ? " (resuming)" : "") << "\n";
  }

  options.progress = [abort_after](std::size_t done, std::size_t all) {
    if (done % 50 == 0 || done == all) {
      std::cout << "\r  " << done << " / " << all << " configurations"
                << std::flush;
    }
    // Crash drill: simulate a power cut / OOM-kill. _Exit skips every
    // destructor and buffer flush on purpose — only the checkpoints
    // already renamed into place survive, exactly like a real crash.
    if (abort_after > 0 && done >= abort_after) {
      std::cout << "\nsimulated crash after " << done << " configurations\n";
      std::_Exit(3);
    }
  };

  try {
    const auto result = experiment::RunCampaign(options);
    if (!result.checkpoint_write_error.empty()) {
      std::cerr << "\nwarning: a checkpoint write failed ("
                << result.checkpoint_write_error
                << "); the previous checkpoint remained valid\n";
    }
    if (!result.complete) {
      std::cout << "\ninterrupted by --max-configs budget: "
                << (result.configs_resumed) << " restored + new work saved to "
                << options.checkpoint_path << "; rerun with --resume\n";
      return 3;
    }
    std::cout << "\ndone: " << result.configurations << " configurations ("
              << result.configs_resumed << " resumed from checkpoint, "
              << result.configs_failed << " failed), " << result.total_packets
              << " packets simulated\n";
    if (result.configs_failed > 0) {
      std::cout << "structured error records: " << options.summary_csv_path
                << ".errors.csv\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "\ncampaign failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
