// Campaign driver — regenerate the paper's measurement dataset.
//
// Sweeps the Table I configuration space (optionally strided / with fewer
// packets) and writes the per-configuration summary CSV, the synthetic
// equivalent of the paper's public dataset [15][16].
//
// Usage:
//   run_campaign [--stride N] [--packets N] [--out PATH] [--threads N]
//                [--seed N]
//
// The full campaign is 48,384 configurations; the default stride of 97
// keeps a quick demonstration under a minute. `--stride 1 --packets 4500`
// reproduces the full six-month campaign (hours of CPU time).
#include <iostream>
#include <string>

#include "experiment/campaign.h"
#include "util/args.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace wsnlink;

  experiment::CampaignOptions options;
  try {
    const util::Args args(argc, argv);
    options.stride = args.GetSize("--stride", 97);
    options.packet_count = args.GetInt("--packets", 200);
    options.summary_csv_path = args.GetString("--out", "campaign_summary.csv");
    options.threads = static_cast<unsigned>(args.GetInt("--threads", 0));
    options.base_seed = args.GetSize("--seed", options.base_seed);
    if (!args.Positional().empty()) {
      throw std::invalid_argument("unexpected positional argument");
    }
  } catch (const std::exception& e) {
    std::cerr << e.what()
              << "\nusage: run_campaign [--stride N] [--packets N] "
                 "[--out PATH] [--threads N] [--seed N]\n";
    return 2;
  }

  const auto total = options.space.Size();
  std::cout << "Table I space: " << total << " configurations ("
            << options.space.SizePerDistance() << " per distance x "
            << options.space.distances_m.size() << " distances)\n"
            << "sweeping every " << options.stride << "-th configuration, "
            << options.packet_count << " packets each -> "
            << options.summary_csv_path << "\n";

  options.progress = [](std::size_t done, std::size_t all) {
    if (done % 50 == 0 || done == all) {
      std::cout << "\r  " << done << " / " << all << " configurations"
                << std::flush;
    }
  };

  const auto result = experiment::RunCampaign(options);
  std::cout << "\ndone: " << result.configurations << " configurations, "
            << result.total_packets << " packets simulated\n";
  return 0;
}
