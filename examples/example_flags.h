// Shared command-line plumbing for the example binaries.
//
// Every example exposes the same pair of run knobs (--seed, --packets);
// before this helper each binary either hand-parsed them or hardcoded the
// values. ApplySimFlags overlays the flags onto an options struct whose
// fields already hold that example's defaults, so each binary keeps its own
// canonical seed/packet count while gaining validated overrides.
#pragma once

#include "node/link_simulation.h"
#include "util/args.h"

namespace wsnlink::examples {

/// Overlays `--seed N` and `--packets N` (validated, >= 1) onto `options`.
/// Absent flags leave the caller's defaults untouched.
inline void ApplySimFlags(const util::Args& args,
                          node::SimulationOptions& options) {
  options.seed = static_cast<std::uint64_t>(
      args.GetInt("--seed", static_cast<int>(options.seed)));
  options.packet_count =
      args.GetPositiveInt("--packets", options.packet_count);
}

}  // namespace wsnlink::examples
