// Golden regression pins: fixed-seed runs must keep producing the same
// numbers. These protect the calibration (DESIGN.md §1) against accidental
// drift — any intentional change to the channel, MAC timing or metric
// definitions must update these values consciously.
//
// Values are pinned with tight relative tolerances rather than exact
// equality so that benign floating-point reassociation (compiler/platform)
// does not trip them, while any behavioural change does.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "experiment/campaign.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"

namespace wsnlink {
namespace {

constexpr double kTol = 1e-6;  // relative

void ExpectNear(double actual, double pinned, const char* what) {
  EXPECT_NEAR(actual, pinned, std::abs(pinned) * kTol + 1e-12) << what;
}

TEST(Golden, MidLinkReferenceRun) {
  node::SimulationOptions options;
  options.config.distance_m = 25.0;
  options.config.pa_level = 19;
  options.config.max_tries = 3;
  options.config.queue_capacity = 10;
  options.config.pkt_interval_ms = 80.0;
  options.config.payload_bytes = 80;
  options.packet_count = 500;
  options.seed = 123456;
  const auto m = metrics::MeasureConfig(options);

  // Pinned on the calibrated channel (a = 0.0012, b = -0.15, preamble 3 dB)
  // and the TinyOS timing constants. Update deliberately, never casually.
  EXPECT_EQ(m.generated, 500);
  EXPECT_EQ(m.delivered_unique, 495u);
  ExpectNear(m.per, 0.033203125, "per");
  ExpectNear(m.mean_service_ms, 18.112187999999986, "service");
  ExpectNear(m.goodput_kbps, 7.9318694477383325, "goodput");
  ExpectNear(m.energy_uj_per_bit, 0.21350400000000144, "energy");
}

TEST(Golden, GreyZoneReferenceRun) {
  node::SimulationOptions options;
  options.config.distance_m = 35.0;
  options.config.pa_level = 11;
  options.config.max_tries = 8;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 60.0;
  options.config.payload_bytes = 110;
  options.packet_count = 400;
  options.seed = 654321;
  const auto m = metrics::MeasureConfig(options);

  EXPECT_EQ(m.generated, 400);
  ExpectNear(static_cast<double>(m.delivered_unique), 400.0, "delivered");
  ExpectNear(m.per, 0.19028340080971659, "per");
  ExpectNear(m.mean_tries_acked, 1.2650000000000001, "tries");
  ExpectNear(m.plr_radio, 0.0, "plr_radio");
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The reference campaign behind tests/golden/campaign_summary.csv: a fixed
// 8-configuration stride through the Table I space. To regenerate after an
// intentional behaviour change, run the `golden_campaign_csv` target's
// recipe (see docs/TRACING.md) or copy the <temp>.csv this test writes.
experiment::CampaignOptions GoldenCampaignOptions() {
  experiment::CampaignOptions options;
  options.stride = options.space.Size() / 8 + 1;
  options.packet_count = 60;
  options.base_seed = 20150629;  // ICDCS'15 opening day
  options.threads = 2;
  return options;
}

TEST(Golden, CampaignSummaryCsvMatchesCheckedInFile) {
  const std::string golden_path =
      std::string(WSNLINK_GOLDEN_DIR) + "/campaign_summary.csv";
  const std::string out_path = testing::TempDir() + "/campaign_summary.csv";

  auto options = GoldenCampaignOptions();
  options.summary_csv_path = out_path;
  const auto result = RunCampaign(options);
  EXPECT_EQ(result.configurations, 8u);

  const std::string expected = ReadFile(golden_path);
  const std::string actual = ReadFile(out_path);
  ASSERT_FALSE(expected.empty())
      << "golden file missing: " << golden_path
      << " — regenerate by copying " << out_path;
  // Byte-identical: the CSV writer formats deterministically
  // (util::FormatDouble with fixed precision), so any diff is a
  // behavioural change that must be reviewed, not noise.
  EXPECT_EQ(actual, expected)
      << "campaign summary drifted; if intentional, refresh "
      << golden_path << " from " << out_path;
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace wsnlink
