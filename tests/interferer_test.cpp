// Tests for the concurrent-transmitter interference model.
#include <gtest/gtest.h>

#include "channel/channel.h"
#include "channel/interferer.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "util/rng.h"

namespace wsnlink::channel {
namespace {

TEST(InterfererProcess, DisabledNeverActive) {
  InterfererProcess process(InterfererParams{}, util::Rng(1));
  for (sim::Time t = 0; t < 100 * sim::kSecond; t += sim::kSecond) {
    EXPECT_FALSE(process.ActiveAt(t));
  }
}

TEST(InterfererProcess, DutyCycleIsHonoured) {
  InterfererParams params;
  params.duty_cycle = 0.25;
  params.frame_duration = 4 * sim::kMillisecond;
  InterfererProcess process(params, util::Rng(2));
  int active = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (process.ActiveAt(static_cast<sim::Time>(i) * 500)) ++active;
  }
  EXPECT_NEAR(static_cast<double>(active) / n, 0.25, 0.02);
}

TEST(InterfererProcess, WindowOverlapDetection) {
  InterfererParams params;
  params.duty_cycle = 0.5;
  params.frame_duration = 10 * sim::kMillisecond;
  InterfererProcess process(params, util::Rng(3));

  // A long window in a 50% duty process essentially always overlaps.
  int overlaps = 0;
  for (int i = 0; i < 200; ++i) {
    const sim::Time start = static_cast<sim::Time>(i) * 100'000;
    if (process.ActiveDuring(start, start + 50'000)) ++overlaps;
  }
  EXPECT_GT(overlaps, 180);
}

TEST(InterfererProcess, InvalidParamsRejected) {
  InterfererParams bad;
  bad.duty_cycle = 1.0;
  EXPECT_THROW(InterfererProcess(bad, util::Rng(1)), std::invalid_argument);
  bad.duty_cycle = -0.1;
  EXPECT_THROW(InterfererProcess(bad, util::Rng(1)), std::invalid_argument);
  InterfererParams bad_frame;
  bad_frame.duty_cycle = 0.1;
  bad_frame.frame_duration = 0;
  EXPECT_THROW(InterfererProcess(bad_frame, util::Rng(1)),
               std::invalid_argument);
}

TEST(Interferer, CollisionsLoseFramesOnStrongLink) {
  // A strong link (loss ~0 without interference) under a 30% interferer:
  // every overlap without capture kills a frame.
  node::SimulationOptions options;
  options.config.distance_m = 10.0;
  options.config.pa_level = 31;
  options.config.max_tries = 1;
  options.config.queue_capacity = 1;
  options.config.pkt_interval_ms = 60.0;
  options.config.payload_bytes = 110;
  options.packet_count = 800;
  options.seed = 20;
  options.disable_interference = true;  // isolate the collision effect

  const auto clean = metrics::MeasureConfig(options);
  options.interferer_duty_cycle = 0.3;
  // Interferer louder than our -59.9 dBm RSSI: no capture.
  options.interferer_power_dbm = -55.0;
  const auto jammed = metrics::MeasureConfig(options);

  EXPECT_LT(clean.plr_radio, 0.02);
  EXPECT_GT(jammed.plr_radio, 0.10);
}

TEST(Interferer, CaptureSavesFramesFromWeakInterferer) {
  node::SimulationOptions options;
  options.config.distance_m = 10.0;
  options.config.pa_level = 31;
  options.config.max_tries = 1;
  options.config.queue_capacity = 1;
  options.config.pkt_interval_ms = 60.0;
  options.config.payload_bytes = 110;
  options.packet_count = 800;
  options.seed = 21;
  options.disable_interference = true;
  options.interferer_duty_cycle = 0.3;
  // Our RSSI at 10 m / 0 dBm is ~-59.9 dBm; a -80 dBm interferer is far
  // below the capture margin.
  options.interferer_power_dbm = -80.0;

  const auto m = metrics::MeasureConfig(options);
  EXPECT_LT(m.plr_radio, 0.02);
}

TEST(Interferer, RetransmissionRecoversCollisionLosses) {
  node::SimulationOptions options;
  options.config.distance_m = 10.0;
  options.config.pa_level = 31;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 80.0;
  options.config.payload_bytes = 80;
  options.packet_count = 600;
  options.seed = 22;
  options.disable_interference = true;
  options.interferer_duty_cycle = 0.2;
  options.interferer_power_dbm = -55.0;

  options.config.max_tries = 1;
  const auto no_retx = metrics::MeasureConfig(options);
  options.config.max_tries = 5;
  const auto retx = metrics::MeasureConfig(options);
  EXPECT_LT(retx.plr_radio, no_retx.plr_radio / 2.0);
}

TEST(Interferer, CcaDefersToInterferer) {
  // With a heavy interferer, the CSMA MAC's CCA finds the channel busy.
  node::SimulationOptions options;
  options.config.distance_m = 10.0;
  options.config.max_tries = 2;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 50.0;
  options.config.payload_bytes = 50;
  options.packet_count = 400;
  options.seed = 23;
  options.disable_interference = true;
  options.interferer_duty_cycle = 0.4;

  const auto result = node::RunLinkSimulation(options);
  EXPECT_GT(result.cca_busy, 100u);
}

}  // namespace
}  // namespace wsnlink::channel
