// Tests for the mobility model and its channel integration.
#include <gtest/gtest.h>

#include "channel/channel.h"
#include "channel/mobility.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "util/rng.h"

namespace wsnlink::channel {
namespace {

TEST(MobilityModel, DisabledStaysPut) {
  MobilityModel model(MobilityParams{}, 22.5);
  EXPECT_FALSE(model.Enabled());
  for (sim::Time t = 0; t < 100 * sim::kSecond; t += sim::kSecond) {
    EXPECT_DOUBLE_EQ(model.DistanceAt(t), 22.5);
  }
  EXPECT_THROW((void)model.Period(), std::logic_error);
}

TEST(MobilityModel, TriangleWaveGeometry) {
  MobilityParams params;
  params.speed_mps = 1.0;
  params.min_distance_m = 10.0;
  params.max_distance_m = 30.0;
  MobilityModel model(params, 10.0);
  ASSERT_TRUE(model.Enabled());

  // Walking out: 1 m/s from 10 m.
  EXPECT_DOUBLE_EQ(model.DistanceAt(0), 10.0);
  EXPECT_NEAR(model.DistanceAt(5 * sim::kSecond), 15.0, 1e-9);
  EXPECT_NEAR(model.DistanceAt(20 * sim::kSecond), 30.0, 1e-9);
  // Walking back.
  EXPECT_NEAR(model.DistanceAt(25 * sim::kSecond), 25.0, 1e-9);
  EXPECT_NEAR(model.DistanceAt(40 * sim::kSecond), 10.0, 1e-9);
  // Periodicity.
  EXPECT_EQ(model.Period(), 40 * sim::kSecond);
  EXPECT_NEAR(model.DistanceAt(47 * sim::kSecond),
              model.DistanceAt(7 * sim::kSecond), 1e-9);
}

TEST(MobilityModel, StartMidRangeAndClamping) {
  MobilityParams params;
  params.speed_mps = 2.0;
  params.min_distance_m = 10.0;
  params.max_distance_m = 20.0;
  // Start beyond max: clamped to 20 (walks back first by fold).
  MobilityModel model(params, 35.0);
  EXPECT_NEAR(model.DistanceAt(0), 20.0, 1e-9);
  EXPECT_NEAR(model.DistanceAt(sim::kSecond), 18.0, 1e-9);
}

TEST(MobilityModel, DistanceAlwaysInRange) {
  MobilityParams params;
  params.speed_mps = 3.7;
  params.min_distance_m = 12.0;
  params.max_distance_m = 33.0;
  MobilityModel model(params, 17.0);
  for (sim::Time t = 0; t < 500 * sim::kSecond; t += 777'777) {
    const double d = model.DistanceAt(t);
    EXPECT_GE(d, 12.0 - 1e-9);
    EXPECT_LE(d, 33.0 + 1e-9);
  }
}

TEST(MobilityModel, InvalidParamsRejected) {
  MobilityParams bad;
  bad.speed_mps = -1.0;
  EXPECT_THROW(MobilityModel(bad, 10.0), std::invalid_argument);
  MobilityParams bad_range;
  bad_range.speed_mps = 1.0;
  bad_range.min_distance_m = 20.0;
  bad_range.max_distance_m = 10.0;
  EXPECT_THROW(MobilityModel(bad_range, 10.0), std::invalid_argument);
}

TEST(MobilityChannel, RssiFollowsTheWalk) {
  ChannelConfig config;
  config.distance_m = 10.0;
  config.mobility.speed_mps = 1.0;
  config.mobility.min_distance_m = 10.0;
  config.mobility.max_distance_m = 35.0;
  config.use_default_temporal_sigma = false;
  config.shadowing.sigma_db = 0.0;
  config.noise.burst_rate_hz = 0.0;
  Channel channel(config, util::Rng(1));

  EXPECT_NEAR(channel.DistanceAt(0), 10.0, 1e-9);
  EXPECT_NEAR(channel.DistanceAt(25 * sim::kSecond), 35.0, 1e-9);

  const auto near = channel.Transmit(0.0, 50, sim::kSecond);
  const auto far = channel.Transmit(0.0, 50, 24 * sim::kSecond);
  // 11 m vs 34 m: ~10.7 dB weaker.
  EXPECT_GT(near.rssi_dbm, far.rssi_dbm + 8.0);
}

TEST(MobilityChannel, WalkDegradesDeliveryAtLowPower) {
  node::SimulationOptions options;
  options.config.distance_m = 10.0;
  options.config.pa_level = 7;  // fine at 10 m, grey at 35 m
  options.config.max_tries = 1;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 100.0;
  options.config.payload_bytes = 110;
  options.packet_count = 1000;  // 100 s: 2 patrol legs at 0.5 m/s
  options.seed = 5;
  options.mobility_speed_mps = 0.5;

  const auto moving = metrics::MeasureConfig(options);
  options.mobility_speed_mps = 0.0;  // parked at 10 m
  const auto parked = metrics::MeasureConfig(options);

  EXPECT_GT(moving.plr_radio, parked.plr_radio + 0.05);
}

}  // namespace
}  // namespace wsnlink::channel
