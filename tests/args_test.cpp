// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include "util/args.h"

namespace wsnlink::util {
namespace {

Args Parse(std::vector<const char*> argv,
           const std::vector<std::string>& switches = {}) {
  argv.insert(argv.begin(), "tool");
  return Args(static_cast<int>(argv.size()), argv.data(), switches);
}

TEST(Args, FlagsAndPositionals) {
  const auto args =
      Parse({"--out", "file.csv", "input.csv", "--stride", "31"});
  EXPECT_EQ(args.GetString("--out", ""), "file.csv");
  EXPECT_EQ(args.GetSize("--stride", 1), 31u);
  ASSERT_EQ(args.Positional().size(), 1u);
  EXPECT_EQ(args.Positional()[0], "input.csv");
}

TEST(Args, DefaultsWhenAbsent) {
  const auto args = Parse({});
  EXPECT_EQ(args.GetString("--objective", "energy"), "energy");
  EXPECT_DOUBLE_EQ(args.GetDouble("--distance", 20.0), 20.0);
  EXPECT_EQ(args.GetInt("--packets", 300), 300);
  EXPECT_FALSE(args.Get("--out").has_value());
}

TEST(Args, Switches) {
  const auto args = Parse({"--verify", "--distance", "25"}, {"--verify"});
  EXPECT_TRUE(args.Has("--verify"));
  EXPECT_FALSE(args.Has("--quiet"));
  EXPECT_DOUBLE_EQ(args.GetDouble("--distance", 0.0), 25.0);
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(Parse({"--out"}), std::invalid_argument);
}

TEST(Args, BadNumericValueThrows) {
  const auto args = Parse({"--distance", "12abc"});
  EXPECT_THROW((void)args.GetDouble("--distance", 0.0),
               std::invalid_argument);
  const auto args2 = Parse({"--packets", "1.5"});
  EXPECT_THROW((void)args2.GetInt("--packets", 0), std::invalid_argument);
}

TEST(Args, SwitchBeforeValueFlagNotConfused) {
  // A switch must not swallow the next token.
  const auto args = Parse({"--verify", "positional"}, {"--verify"});
  EXPECT_TRUE(args.Has("--verify"));
  ASSERT_EQ(args.Positional().size(), 1u);
}

}  // namespace
}  // namespace wsnlink::util
