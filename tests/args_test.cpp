// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include "util/args.h"

namespace wsnlink::util {
namespace {

Args Parse(std::vector<const char*> argv,
           const std::vector<std::string>& switches = {}) {
  argv.insert(argv.begin(), "tool");
  return Args(static_cast<int>(argv.size()), argv.data(), switches);
}

TEST(Args, FlagsAndPositionals) {
  const auto args =
      Parse({"--out", "file.csv", "input.csv", "--stride", "31"});
  EXPECT_EQ(args.GetString("--out", ""), "file.csv");
  EXPECT_EQ(args.GetSize("--stride", 1), 31u);
  ASSERT_EQ(args.Positional().size(), 1u);
  EXPECT_EQ(args.Positional()[0], "input.csv");
}

TEST(Args, DefaultsWhenAbsent) {
  const auto args = Parse({});
  EXPECT_EQ(args.GetString("--objective", "energy"), "energy");
  EXPECT_DOUBLE_EQ(args.GetDouble("--distance", 20.0), 20.0);
  EXPECT_EQ(args.GetInt("--packets", 300), 300);
  EXPECT_FALSE(args.Get("--out").has_value());
}

TEST(Args, Switches) {
  const auto args = Parse({"--verify", "--distance", "25"}, {"--verify"});
  EXPECT_TRUE(args.Has("--verify"));
  EXPECT_FALSE(args.Has("--quiet"));
  EXPECT_DOUBLE_EQ(args.GetDouble("--distance", 0.0), 25.0);
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(Parse({"--out"}), std::invalid_argument);
}

TEST(Args, BadNumericValueThrows) {
  const auto args = Parse({"--distance", "12abc"});
  EXPECT_THROW((void)args.GetDouble("--distance", 0.0),
               std::invalid_argument);
  const auto args2 = Parse({"--packets", "1.5"});
  EXPECT_THROW((void)args2.GetInt("--packets", 0), std::invalid_argument);
}

TEST(Args, SwitchBeforeValueFlagNotConfused) {
  // A switch must not swallow the next token.
  const auto args = Parse({"--verify", "positional"}, {"--verify"});
  EXPECT_TRUE(args.Has("--verify"));
  ASSERT_EQ(args.Positional().size(), 1u);
}

TEST(Args, ParsePositiveIntWholeStringOnly) {
  EXPECT_EQ(ParsePositiveInt("3", "packets"), 3);
  EXPECT_EQ(ParsePositiveInt("120", "packets"), 120);
  for (const char* bad : {"", "abc", "3x", "0", "-2", "1.5"}) {
    EXPECT_THROW((void)ParsePositiveInt(bad, "packets"),
                 std::invalid_argument)
        << "accepted '" << bad << "'";
  }
}

TEST(Args, ParseDoubleWholeFiniteStringOnly) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5", "tolerance"), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-3e2", "tolerance"), -300.0);
  EXPECT_DOUBLE_EQ(ParseDouble("42", "tolerance"), 42.0);
  // Raw strtod/atof would accept the first three of these (trailing junk)
  // and the non-finite spellings; the validated parser throws on all.
  for (const char* bad : {"1.5x", "12abc", "7,", "", "abc", "nan", "inf",
                          "-inf"}) {
    EXPECT_THROW((void)ParseDouble(bad, "tolerance"), std::invalid_argument)
        << "accepted '" << bad << "'";
  }
}

}  // namespace
}  // namespace wsnlink::util
