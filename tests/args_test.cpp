// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include "util/args.h"

namespace wsnlink::util {
namespace {

Args Parse(std::vector<const char*> argv,
           const std::vector<std::string>& switches = {}) {
  argv.insert(argv.begin(), "tool");
  return Args(static_cast<int>(argv.size()), argv.data(), switches);
}

TEST(Args, FlagsAndPositionals) {
  const auto args =
      Parse({"--out", "file.csv", "input.csv", "--stride", "31"});
  EXPECT_EQ(args.GetString("--out", ""), "file.csv");
  EXPECT_EQ(args.GetSize("--stride", 1), 31u);
  ASSERT_EQ(args.Positional().size(), 1u);
  EXPECT_EQ(args.Positional()[0], "input.csv");
}

TEST(Args, DefaultsWhenAbsent) {
  const auto args = Parse({});
  EXPECT_EQ(args.GetString("--objective", "energy"), "energy");
  EXPECT_DOUBLE_EQ(args.GetDouble("--distance", 20.0), 20.0);
  EXPECT_EQ(args.GetInt("--packets", 300), 300);
  EXPECT_FALSE(args.Get("--out").has_value());
}

TEST(Args, Switches) {
  const auto args = Parse({"--verify", "--distance", "25"}, {"--verify"});
  EXPECT_TRUE(args.Has("--verify"));
  EXPECT_FALSE(args.Has("--quiet"));
  EXPECT_DOUBLE_EQ(args.GetDouble("--distance", 0.0), 25.0);
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(Parse({"--out"}), std::invalid_argument);
}

TEST(Args, BadNumericValueThrows) {
  const auto args = Parse({"--distance", "12abc"});
  EXPECT_THROW((void)args.GetDouble("--distance", 0.0),
               std::invalid_argument);
  const auto args2 = Parse({"--packets", "1.5"});
  EXPECT_THROW((void)args2.GetInt("--packets", 0), std::invalid_argument);
}

TEST(Args, SwitchBeforeValueFlagNotConfused) {
  // A switch must not swallow the next token.
  const auto args = Parse({"--verify", "positional"}, {"--verify"});
  EXPECT_TRUE(args.Has("--verify"));
  ASSERT_EQ(args.Positional().size(), 1u);
}

TEST(Args, ParsePositiveIntWholeStringOnly) {
  EXPECT_EQ(ParsePositiveInt("3", "packets"), 3);
  EXPECT_EQ(ParsePositiveInt("120", "packets"), 120);
  for (const char* bad : {"", "abc", "3x", "0", "-2", "1.5"}) {
    EXPECT_THROW((void)ParsePositiveInt(bad, "packets"),
                 std::invalid_argument)
        << "accepted '" << bad << "'";
  }
}

TEST(Args, ParseDoubleWholeFiniteStringOnly) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5", "tolerance"), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-3e2", "tolerance"), -300.0);
  EXPECT_DOUBLE_EQ(ParseDouble("42", "tolerance"), 42.0);
  // Raw strtod/atof would accept the first three of these (trailing junk)
  // and the non-finite spellings; the validated parser throws on all.
  for (const char* bad : {"1.5x", "12abc", "7,", "", "abc", "nan", "inf",
                          "-inf"}) {
    EXPECT_THROW((void)ParseDouble(bad, "tolerance"), std::invalid_argument)
        << "accepted '" << bad << "'";
  }
  // strtod extensions the canonical grammar closes: leading/trailing
  // whitespace, hex floats, a leading '+', overflow to infinity.
  for (const char* bad : {" 1.5", "1.5 ", "\t2", "0x1p3", "0X2", "+1.5",
                          "1e999", "NaN", "INF", "infinity"}) {
    EXPECT_THROW((void)ParseDouble(bad, "tolerance"), std::invalid_argument)
        << "accepted '" << bad << "'";
  }
}

TEST(Args, ParseCanonicalDoubleSharedGrammar) {
  double out = -1.0;
  EXPECT_TRUE(ParseCanonicalDouble("2.25e-1", out));
  EXPECT_DOUBLE_EQ(out, 0.225);
  EXPECT_TRUE(ParseCanonicalDouble("-0.5", out));
  EXPECT_DOUBLE_EQ(out, -0.5);
  EXPECT_TRUE(ParseCanonicalDouble("1000000", out));
  EXPECT_DOUBLE_EQ(out, 1e6);

  // A failed parse must not touch `out`.
  out = 7.0;
  EXPECT_FALSE(ParseCanonicalDouble("nan", out));
  EXPECT_FALSE(ParseCanonicalDouble("inf", out));
  EXPECT_FALSE(ParseCanonicalDouble("0x1p3", out));
  EXPECT_FALSE(ParseCanonicalDouble(" 1", out));
  EXPECT_FALSE(ParseCanonicalDouble("1 ", out));
  EXPECT_FALSE(ParseCanonicalDouble("+2", out));
  EXPECT_FALSE(ParseCanonicalDouble("", out));
  EXPECT_FALSE(ParseCanonicalDouble("1e999", out));
  EXPECT_FALSE(ParseCanonicalDouble("--1", out));
  EXPECT_DOUBLE_EQ(out, 7.0);
}

TEST(Args, GetDoubleUsesCanonicalGrammar) {
  // Args::GetDouble used to go through raw stod and quietly accepted what
  // ParseDouble rejected; both now share ParseCanonicalDouble.
  for (const char* bad : {"inf", "nan", "0x1p3", " 1.5", "+2", "1e999"}) {
    const char* argv[] = {"tool", "--x", bad};
    const Args args(3, argv);
    EXPECT_THROW((void)args.GetDouble("--x", 0.0), std::invalid_argument)
        << "accepted '" << bad << "'";
  }
  const char* argv[] = {"tool", "--x", "-2.5e1"};
  const Args args(3, argv);
  EXPECT_DOUBLE_EQ(args.GetDouble("--x", 0.0), -25.0);
}

}  // namespace
}  // namespace wsnlink::util
