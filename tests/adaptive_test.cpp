// Tests for the link-quality estimator and adaptive controller.
#include <gtest/gtest.h>

#include "core/opt/adaptive.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "phy/cc2420.h"
#include "phy/frame.h"

namespace wsnlink::core::opt {
namespace {

// ----------------------------------------------------------- estimator ----

TEST(LinkQualityEstimator, FirstSampleSetsEstimate) {
  LinkQualityEstimator est;
  EXPECT_FALSE(est.HasEstimate());
  EXPECT_THROW((void)est.SnrDb(), std::logic_error);
  est.OnReception(15.0);
  EXPECT_TRUE(est.HasEstimate());
  EXPECT_DOUBLE_EQ(est.SnrDb(), 15.0);
}

TEST(LinkQualityEstimator, EwmaConvergesToNewLevel) {
  LinkQualityEstimator est(0.2);
  est.OnReception(20.0);
  for (int i = 0; i < 50; ++i) est.OnReception(8.0);
  EXPECT_NEAR(est.SnrDb(), 8.0, 0.01);
}

TEST(LinkQualityEstimator, LossesDragEstimateDown) {
  LinkQualityEstimator est(0.1, /*loss_step_db=*/1.0);
  est.OnReception(20.0);
  for (int i = 0; i < 10; ++i) est.OnLoss();
  EXPECT_NEAR(est.SnrDb(), 10.0, 1e-9);
  EXPECT_EQ(est.Losses(), 10u);
  // Never below the floor.
  for (int i = 0; i < 100; ++i) est.OnLoss();
  EXPECT_DOUBLE_EQ(est.SnrDb(), -5.0);
}

TEST(LinkQualityEstimator, LossBeforeAnyReceptionIsIgnored) {
  LinkQualityEstimator est;
  est.OnLoss();
  EXPECT_FALSE(est.HasEstimate());
}

TEST(LinkQualityEstimator, ResetForgets) {
  LinkQualityEstimator est;
  est.OnReception(12.0);
  est.Reset();
  EXPECT_FALSE(est.HasEstimate());
  EXPECT_EQ(est.Receptions(), 0u);
}

TEST(LinkQualityEstimator, InvalidAlphaRejected) {
  EXPECT_THROW(LinkQualityEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(LinkQualityEstimator(1.5), std::invalid_argument);
  EXPECT_THROW(LinkQualityEstimator(0.1, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------- controller ----

StackConfig InitialConfig() {
  StackConfig config;
  config.distance_m = 25.0;
  config.pa_level = 31;
  config.max_tries = 3;
  config.queue_capacity = 5;
  config.pkt_interval_ms = 150.0;
  config.payload_bytes = 80;
  return config;
}

TEST(AdaptiveController, GoodLinkDropsPowerAndBeatsThresholdRule) {
  const models::ModelSet models;
  AdaptiveController controller(models, InitialConfig());
  // 30 dB measured at level 31: the controller backs the power way off.
  const auto config = controller.DeriveConfig(30.0, 31);
  EXPECT_LE(config.pa_level, 11);

  // Its exhaustive search is at least as good as the simpler "lowest power
  // clearing the low-impact zone, max payload" guideline branch.
  const double snr = 30.0 + phy::OutputPowerDbm(config.pa_level);
  const double chosen_energy =
      models.Energy().MicrojoulesPerBit(config.payload_bytes, snr,
                                        config.pa_level);
  // Reference: "lowest power clearing the low-impact zone" is level 15
  // here (30 - 7 = 23 dB) at max payload.
  const double rule_energy = models.Energy().MicrojoulesPerBit(
      phy::kMaxPayloadBytes, 30.0 - 7.0, 15);
  EXPECT_LE(chosen_energy, rule_energy + 1e-9);
}

TEST(AdaptiveController, BadLinkShrinksPayloadAndKeepsHighPower) {
  const models::ModelSet models;
  AdaptiveController controller(models, InitialConfig());
  const auto config = controller.DeriveConfig(8.0, 31);
  EXPECT_LT(config.payload_bytes, phy::kMaxPayloadBytes);
  // High power region (the two cheapest-per-dB top levels trade off).
  EXPECT_GE(config.pa_level, 23);
  // The loss ceiling still holds at the candidate's own SNR.
  const double snr = 8.0 + phy::OutputPowerDbm(config.pa_level);
  EXPECT_LE(models.Plr().RadioLoss(config.payload_bytes, snr,
                                   config.max_tries),
            0.05 + 1e-9);
}

TEST(AdaptiveController, EnergyObjectiveHonoursLossCeiling) {
  AdaptiveControllerConfig policy;
  policy.objective = AdaptationObjective::kEnergy;
  policy.radio_loss_ceiling = 0.02;
  AdaptiveController controller(models::ModelSet(), InitialConfig(), policy);
  const auto config = controller.DeriveConfig(12.0, 31);
  const auto prediction =
      models::ModelSet().PredictAtSnr(config, 12.0 + 0.0);
  EXPECT_LE(prediction.plr_radio, 0.02 + 1e-9);
}

TEST(AdaptiveController, GoodputObjectivePicksLargeRetryBudget) {
  AdaptiveControllerConfig policy;
  policy.objective = AdaptationObjective::kGoodput;
  AdaptiveController controller(models::ModelSet(), InitialConfig(), policy);
  const auto config = controller.DeriveConfig(15.0, 31);
  EXPECT_EQ(config.max_tries, 8);
  EXPECT_EQ(config.payload_bytes, phy::kMaxPayloadBytes);
}

TEST(AdaptiveController, ReconfiguresOnlyAfterEpochAndChange) {
  AdaptiveControllerConfig policy;
  policy.packets_per_epoch = 10;
  policy.min_snr_change_db = 2.0;
  AdaptiveController controller(models::ModelSet(), InitialConfig(), policy);

  // Not enough reports yet.
  for (int i = 0; i < 9; ++i) controller.ReportReception(25.0);
  EXPECT_FALSE(controller.MaybeReconfigure());

  controller.ReportReception(25.0);
  EXPECT_TRUE(controller.MaybeReconfigure());
  EXPECT_EQ(controller.Reconfigurations(), 1);
  const auto first = controller.Config();

  // Same link: epoch passes but hysteresis suppresses a change.
  for (int i = 0; i < 10; ++i) controller.ReportReception(25.2);
  EXPECT_FALSE(controller.MaybeReconfigure());
  EXPECT_EQ(controller.Config(), first);

  // Link collapses: the next epoch reconfigures.
  for (int i = 0; i < 10; ++i) controller.ReportReception(9.0);
  EXPECT_TRUE(controller.MaybeReconfigure());
  EXPECT_NE(controller.Config(), first);
}

TEST(AdaptiveController, InvalidEpochRejected) {
  AdaptiveControllerConfig policy;
  policy.packets_per_epoch = 0;
  EXPECT_THROW(
      AdaptiveController(models::ModelSet(), InitialConfig(), policy),
      std::invalid_argument);
}

TEST(AdaptiveController, ClosedLoopBeatsStaticOnDegradedLink) {
  // Closed loop against the simulator: run epochs on a faded link; the
  // controller must converge to a configuration with materially lower
  // energy-per-bit than the static choice that assumed a clear link.
  const models::ModelSet models;
  StackConfig static_config = InitialConfig();
  static_config.pa_level = 15;                         // tuned for clear link
  static_config.payload_bytes = phy::kMaxPayloadBytes;

  constexpr double kFade = -12.0;
  const auto run = [&](const StackConfig& config, std::uint64_t seed) {
    node::SimulationOptions options;
    options.config = config;
    options.seed = seed;
    options.packet_count = 600;
    options.spatial_shadow_db = kFade;
    return metrics::MeasureConfig(options);
  };

  const auto static_m = run(static_config, 42);

  AdaptiveControllerConfig policy;
  policy.objective = AdaptationObjective::kEnergy;
  policy.radio_loss_ceiling = 0.05;
  AdaptiveController controller(models, static_config, policy);
  // Feed one probing epoch's observations.
  const auto probe = run(controller.Config(), 43);
  for (int i = 0; i < 100; ++i) {
    controller.ReportReception(probe.mean_snr_db);
  }
  (void)controller.MaybeReconfigure();
  const auto adapted_m = run(controller.Config(), 44);

  EXPECT_LT(adapted_m.plr_total, static_m.plr_total + 0.02);
  EXPECT_LT(adapted_m.energy_uj_per_bit, static_m.energy_uj_per_bit);
}

}  // namespace
}  // namespace wsnlink::core::opt
