// Tuning-service test battery: protocol strictness, canonical cache keys,
// the QueryService answer path, the socket front end, and the checked-in
// response golden.
//
// Suite names all start with Serve so the sanitizer CI lanes pick the
// whole battery up by regex.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "util/fault_injection.h"

namespace wsnlink {
namespace {

using serve::CanonicalKey;
using serve::ExtractCompleteLines;
using serve::FormatDouble;
using serve::ParseRequest;
using serve::ProtocolError;
using serve::QueryService;
using serve::Request;
using serve::ServiceOptions;

constexpr const char* kWhatIfLine =
    "{\"verb\":\"what_if\",\"distance_m\":20,\"pa_level\":31,"
    "\"max_tries\":3,\"retry_delay_ms\":0,\"queue_capacity\":30,"
    "\"pkt_interval_ms\":100,\"payload_bytes\":50,\"packets\":80,"
    "\"seed\":7}";

constexpr const char* kOptimizeLine =
    "{\"verb\":\"optimize\",\"objective\":\"energy\",\"distance_m\":20,"
    "\"pkt_interval_ms\":100,\"min_goodput_kbps\":2,\"max_delay_ms\":50}";

// ---------------------------------------------------------------------------
// Protocol parsing
// ---------------------------------------------------------------------------

TEST(ServeProtocol, ParsesWhatIfRequest) {
  const Request r = ParseRequest(kWhatIfLine);
  EXPECT_EQ(r.verb, serve::Verb::kWhatIf);
  EXPECT_EQ(r.config.distance_m, 20.0);
  EXPECT_EQ(r.config.pa_level, 31);
  EXPECT_EQ(r.config.max_tries, 3);
  EXPECT_EQ(r.config.payload_bytes, 50);
  EXPECT_EQ(r.packets, 80);
  EXPECT_EQ(r.seed, 7u);
  EXPECT_EQ(r.mac, node::MacKind::kCsma);
}

TEST(ServeProtocol, ParsesOptimizeRequestWithConstraints) {
  const Request r = ParseRequest(kOptimizeLine);
  EXPECT_EQ(r.verb, serve::Verb::kOptimize);
  EXPECT_EQ(r.objective, serve::Objective::kEnergy);
  EXPECT_EQ(r.distance_m, 20.0);
  ASSERT_TRUE(r.min_goodput_kbps.has_value());
  EXPECT_EQ(*r.min_goodput_kbps, 2.0);
  ASSERT_TRUE(r.max_delay_ms.has_value());
  EXPECT_EQ(*r.max_delay_ms, 50.0);
  EXPECT_FALSE(r.max_energy_uj_per_bit.has_value());
  EXPECT_FALSE(r.snr_db.has_value());
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  const char* bad[] = {
      "",
      "   ",
      "not json",
      "{",
      "{}",
      "{\"verb\":\"bogus\"}",
      "{\"verb\":\"what_if\",\"pa_level\":4}",          // invalid PA level
      "{\"verb\":\"what_if\",\"payload_bytes\":9999}",  // out of range
      "{\"verb\":\"what_if\",\"packets\":0}",
      "{\"verb\":\"what_if\",\"packets\":999999}",
      "{\"verb\":\"what_if\",\"distance_m\":-3}",
      "{\"verb\":\"what_if\",\"mac\":\"tdma\"}",
      "{\"verb\":\"what_if\",\"unknown_knob\":1}",
      "{\"verb\":\"optimize\",\"objective\":\"karma\"}",
      "{\"verb\":\"optimize\",\"min_goodput_kbps\":2}"
      "{\"verb\":\"optimize\"}",                         // trailing bytes
      "{\"verb\":\"what_if\",\"seed\":1,\"seed\":2}",    // duplicate key
      "{\"verb\":\"what_if\",\"config\":{\"pa\":3}}",    // nested object
      "[1,2,3]",
      "{\"verb\":\"stats\",\"extra\":true}",
  };
  for (const char* line : bad) {
    EXPECT_THROW((void)ParseRequest(line), ProtocolError) << line;
  }
}

TEST(ServeProtocol, RejectsOversizedLine) {
  std::string line = "{\"verb\":\"what_if\",\"seed\":";
  line.append(serve::kMaxRequestBytes, '1');
  line += "}";
  EXPECT_THROW((void)ParseRequest(line), ProtocolError);
}

TEST(ServeProtocol, CanonicalKeyIgnoresSpellingAndKeyOrder) {
  // Same query, different field order, whitespace and number spellings.
  const Request a = ParseRequest(kWhatIfLine);
  const Request b = ParseRequest(
      "{ \"seed\": 7 , \"packets\": 80, \"payload_bytes\": 50,"
      " \"pkt_interval_ms\": 1e2, \"queue_capacity\": 30,"
      " \"retry_delay_ms\": 0.0, \"max_tries\": 3, \"pa_level\": 31,"
      " \"distance_m\": 20.0, \"verb\": \"what_if\" }");
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
}

TEST(ServeProtocol, CanonicalKeySeparatesSeedContracts) {
  Request a = ParseRequest(kWhatIfLine);
  Request b = a;
  b.seed = 8;
  Request c = a;
  c.packets = 81;
  EXPECT_NE(CanonicalKey(a), CanonicalKey(b));
  EXPECT_NE(CanonicalKey(a), CanonicalKey(c));
  // The version tag partitions keys across code versions.
  EXPECT_NE(CanonicalKey(a, "wsnlink-serve-v1"),
            CanonicalKey(a, "wsnlink-serve-v2"));
}

TEST(ServeProtocol, CanonicalKeyRejectsStats) {
  const Request stats = ParseRequest("{\"verb\":\"stats\"}");
  EXPECT_THROW((void)CanonicalKey(stats), std::logic_error);
}

TEST(ServeProtocol, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(20.0), "20");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(-3.25), "-3.25");
}

TEST(ServeProtocol, ExtractCompleteLinesKeepsTail) {
  std::string buffer = "one\r\ntwo\nthr";
  const auto lines = ExtractCompleteLines(buffer);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_EQ(buffer, "thr");

  buffer += "ee\n";
  const auto more = ExtractCompleteLines(buffer);
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0], "three");
  EXPECT_TRUE(buffer.empty());
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

TEST(ServeService, WhatIfAnswerIsOkAndCachedByteIdentical) {
  QueryService service(ServiceOptions{});
  const std::string first = service.Answer(kWhatIfLine);
  EXPECT_NE(first.find("\"status\":\"ok\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"verb\":\"what_if\""), std::string::npos);
  EXPECT_NE(first.find("\"goodput_kbps\":"), std::string::npos);

  const std::string second = service.Answer(kWhatIfLine);
  EXPECT_EQ(first, second);

  const auto stats = service.Stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.computed_what_if, 1u);
}

TEST(ServeService, OptimizeAnswerMatchesDirectSolve) {
  QueryService service(ServiceOptions{});
  const std::string reply = service.Answer(kOptimizeLine);
  EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"feasible_count\":"), std::string::npos);
  EXPECT_NE(reply.find("\"config\":{"), std::string::npos);
  EXPECT_NE(reply.find("\"prediction\":{"), std::string::npos);
}

TEST(ServeService, InfeasibleOptimizeIsAnswered) {
  QueryService service(ServiceOptions{});
  const std::string reply = service.Answer(
      "{\"verb\":\"optimize\",\"objective\":\"energy\",\"distance_m\":35,"
      "\"min_goodput_kbps\":100000}");
  EXPECT_NE(reply.find("\"status\":\"infeasible\""), std::string::npos)
      << reply;
}

TEST(ServeService, MalformedLineYieldsStructuredError) {
  QueryService service(ServiceOptions{});
  const std::string reply = service.Answer("garbage");
  EXPECT_EQ(reply.find("{\"status\":\"error\",\"error\":\""), 0u) << reply;
  EXPECT_EQ(reply.find('\n'), std::string::npos);
  const auto stats = service.Stats();
  EXPECT_EQ(stats.parse_errors, 1u);
  EXPECT_EQ(stats.cache_entries, 0u);  // errors are never cached
}

TEST(ServeService, StatsVerbReportsCounters) {
  QueryService service(ServiceOptions{});
  (void)service.Answer(kWhatIfLine);
  const std::string reply = service.Answer("{\"verb\":\"stats\"}");
  EXPECT_NE(reply.find("\"verb\":\"stats\""), std::string::npos);
  EXPECT_NE(reply.find("\"cache_misses\":1"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"cache_entries\":1"), std::string::npos) << reply;
}

TEST(ServeService, ServingSpaceIsValidAndTableIShaped) {
  const auto space = serve::ServingSpace(20.0, 100.0);
  EXPECT_NO_THROW(space.Validate());
  EXPECT_EQ(space.distances_m.size(), 1u);
  EXPECT_EQ(space.pa_levels.size(), 8u);
  EXPECT_GT(space.Size(), 100u);
}

// ---------------------------------------------------------------------------
// Socket front end
// ---------------------------------------------------------------------------

/// Minimal blocking client for the end-to-end tests.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("test client: socket failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = ::htons(port);
    addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      throw std::runtime_error("test client: connect failed");
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  std::string ReadLine() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) throw std::runtime_error("test client: connection closed");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct RunningServer {
  explicit RunningServer(QueryService& service, serve::ServerOptions options)
      : server(service, options), thread([this] { server.Run(); }) {}
  ~RunningServer() {
    server.Stop();
    thread.join();
  }
  serve::Server server;
  std::thread thread;
};

TEST(ServeServer, AnswersMixedRequestsOverLoopback) {
  QueryService service(ServiceOptions{});
  RunningServer running(service, serve::ServerOptions{});
  ASSERT_GT(running.server.Port(), 0);

  TestClient client(running.server.Port());
  client.Send(std::string(kWhatIfLine) + "\n" + "malformed\n" +
              std::string(kWhatIfLine) + "\n");
  const std::string first = client.ReadLine();
  const std::string error = client.ReadLine();
  const std::string repeat = client.ReadLine();

  EXPECT_NE(first.find("\"status\":\"ok\""), std::string::npos) << first;
  EXPECT_EQ(error.find("{\"status\":\"error\""), 0u) << error;
  // Replies return in request order and the cached repeat is byte-equal.
  EXPECT_EQ(first, repeat);
  // The socket path answers with the same bytes as the in-process path.
  QueryService local(ServiceOptions{});
  EXPECT_EQ(first, local.Answer(kWhatIfLine));
}

TEST(ServeServer, OverlongLineGetsErrorAndConnectionSurvives) {
  QueryService service(ServiceOptions{});
  RunningServer running(service, serve::ServerOptions{});

  TestClient client(running.server.Port());
  std::string big(serve::kMaxRequestBytes + 100, 'x');
  big += '\n';
  client.Send(big);
  const std::string error = client.ReadLine();
  EXPECT_EQ(error.find("{\"status\":\"error\""), 0u) << error;

  client.Send(std::string(kWhatIfLine) + "\n");
  const std::string ok = client.ReadLine();
  EXPECT_NE(ok.find("\"status\":\"ok\""), std::string::npos) << ok;
}

TEST(ServeServer, MaxInflightOverflowIsBusyRejectedNotDropped) {
  QueryService service(ServiceOptions{});
  serve::ServerOptions options;
  options.max_inflight = 2;
  RunningServer running(service, options);

  constexpr int kLines = 12;
  TestClient client(running.server.Port());
  std::string burst;
  for (int i = 0; i < kLines; ++i) {
    burst += "{\"verb\":\"stats\"}\n";
  }
  client.Send(burst);

  // Every line gets exactly one reply, whether answered or busy-rejected
  // (how many land in one poll cycle is timing-dependent; totals are not).
  int ok = 0;
  int busy = 0;
  for (int i = 0; i < kLines; ++i) {
    const std::string reply = client.ReadLine();
    if (reply.find("\"status\":\"ok\"") != std::string::npos) {
      ++ok;
    } else {
      EXPECT_NE(reply.find("busy"), std::string::npos) << reply;
      ++busy;
    }
  }
  EXPECT_EQ(ok + busy, kLines);
  EXPECT_EQ(service.Stats().busy_rejected, static_cast<std::uint64_t>(busy));
}

TEST(ServeServer, ShortWritesAndEintrNeverCorruptResponses) {
  QueryService service(ServiceOptions{});
  RunningServer running(service, serve::ServerOptions{});

  // Reference bytes from an uninstrumented in-process answer path.
  QueryService local(ServiceOptions{});
  const std::string expected_ok = local.Answer(kWhatIfLine);
  const std::string expected_stats_shape = "\"verb\":\"stats\"";

  // Degrade most sends at the "serve.send" site: a multi-hundred-byte
  // reply now dribbles out one byte at a time, interleaved with EINTRs.
  // The schedule is a seeded hash of the operation ordinal, so the drill
  // replays identically. The responses must still arrive byte-exact and
  // in request order.
  util::ScopedFaultInjection injection;
  injection->FailWithProbability("serve.send", 0.95, /*seed=*/20150629);

  TestClient client(running.server.Port());
  client.Send(std::string(kWhatIfLine) + "\n" + "{\"verb\":\"stats\"}\n" +
              std::string(kWhatIfLine) + "\n");
  const std::string first = client.ReadLine();
  const std::string stats = client.ReadLine();
  const std::string repeat = client.ReadLine();

  EXPECT_EQ(first, expected_ok);
  EXPECT_EQ(repeat, expected_ok);
  EXPECT_NE(stats.find(expected_stats_shape), std::string::npos) << stats;

  // The drill only counts if the fault site actually fired — and fired
  // often enough to exercise both the short-write and the EINTR arm.
  EXPECT_GT(util::FaultInjector::Global().Injected("serve.send"), 10u);
}

TEST(ServeServer, ConcurrentClientsAllGetTheirOwnAnswers) {
  QueryService service(ServiceOptions{});
  RunningServer running(service, serve::ServerOptions{});

  constexpr int kClients = 4;
  constexpr int kRequests = 3;
  std::vector<std::vector<std::string>> replies(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TestClient client(running.server.Port());
      for (int r = 0; r < kRequests; ++r) {
        client.Send(std::string(kWhatIfLine) + "\n");
        replies[static_cast<std::size_t>(c)].push_back(client.ReadLine());
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::string expected = replies[0][0];
  EXPECT_NE(expected.find("\"status\":\"ok\""), std::string::npos);
  for (const auto& per_client : replies) {
    ASSERT_EQ(per_client.size(), static_cast<std::size_t>(kRequests));
    for (const auto& reply : per_client) EXPECT_EQ(reply, expected);
  }
  EXPECT_EQ(service.Stats().computed_what_if, 1u);  // one compute, rest hits
}

// ---------------------------------------------------------------------------
// Response golden
// ---------------------------------------------------------------------------

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ServeGolden, TraceResponsesMatchCheckedInFile) {
  const std::string dir = WSNLINK_GOLDEN_DIR;
  const std::string trace_text = ReadFileOrDie(dir + "/serve_trace.txt");
  const std::string golden = ReadFileOrDie(dir + "/serve_responses.txt");
  ASSERT_FALSE(trace_text.empty());
  ASSERT_FALSE(golden.empty());

  std::vector<std::string> lines;
  std::istringstream in(trace_text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  ASSERT_FALSE(lines.empty());

  QueryService service(ServiceOptions{});
  std::string actual;
  for (const std::string& request : lines) {
    actual += service.Answer(request);
    actual += '\n';
  }
  EXPECT_EQ(actual, golden)
      << "serve responses drifted from tests/golden/serve_responses.txt —"
         " if the change is intentional (simulator physics, response"
         " schema), bump kServeVersionTag and run tests/golden/regen.sh";
}

}  // namespace
}  // namespace wsnlink
