// Unit tests for the CC2420 PHY model: power table, frame geometry, timing.
#include <gtest/gtest.h>

#include "phy/cc2420.h"
#include "phy/frame.h"
#include "phy/timing.h"
#include "sim/time.h"

namespace wsnlink::phy {
namespace {

// ------------------------------------------------------------- cc2420 ----

TEST(Cc2420, PaLevelTableComplete) {
  const auto levels = PaLevels();
  ASSERT_EQ(levels.size(), 8u);
  EXPECT_EQ(levels.front().level, 3);
  EXPECT_EQ(levels.back().level, 31);
}

TEST(Cc2420, PowerMonotoneInLevel) {
  double prev_dbm = -100.0;
  double prev_ma = 0.0;
  for (const auto& entry : PaLevels()) {
    EXPECT_GT(entry.output_dbm, prev_dbm);
    EXPECT_GT(entry.current_ma, prev_ma);
    prev_dbm = entry.output_dbm;
    prev_ma = entry.current_ma;
  }
}

TEST(Cc2420, DatasheetAnchors) {
  EXPECT_DOUBLE_EQ(OutputPowerDbm(31), 0.0);
  EXPECT_DOUBLE_EQ(OutputPowerDbm(3), -25.0);
  EXPECT_DOUBLE_EQ(OutputPowerDbm(11), -10.0);
  // 3 V * 17.4 mA = 52.2 mW.
  EXPECT_NEAR(TxPowerMilliwatts(31), 52.2, 1e-9);
}

TEST(Cc2420, EnergyPerBitMatchesHandCalc) {
  // 52.2 mW / 250 kbps = 0.2088 uJ/bit.
  EXPECT_NEAR(EnergyPerBitMicrojoule(31), 0.2088, 1e-6);
  // Lowest level: 25.5 mW -> 0.102 uJ/bit.
  EXPECT_NEAR(EnergyPerBitMicrojoule(3), 0.102, 1e-6);
}

TEST(Cc2420, ValidationOfLevels) {
  EXPECT_TRUE(IsValidPaLevel(3));
  EXPECT_TRUE(IsValidPaLevel(31));
  EXPECT_FALSE(IsValidPaLevel(0));
  EXPECT_FALSE(IsValidPaLevel(32));
  EXPECT_FALSE(IsValidPaLevel(5));
  EXPECT_THROW((void)LookupPaLevel(12), std::invalid_argument);
}

TEST(Cc2420, RxEnergyPositiveAndNearTx) {
  EXPECT_GT(RxEnergyPerBitMicrojoule(), 0.2);
  EXPECT_LT(RxEnergyPerBitMicrojoule(), 0.25);
}

// -------------------------------------------------------------- frame ----

TEST(Frame, OverheadGeometry) {
  // 127-byte max MPDU minus 13 bytes overhead = 114-byte max payload —
  // the paper's "maximum payload size in our radio stack".
  EXPECT_EQ(kMaxPayloadBytes, 114);
  EXPECT_EQ(kStackOverheadBytes, 19);
  EXPECT_EQ(DataFrameBytes(114), 133);
  EXPECT_EQ(DataFrameBytes(1), 20);
}

TEST(Frame, PayloadValidation) {
  EXPECT_NO_THROW(ValidatePayloadSize(1));
  EXPECT_NO_THROW(ValidatePayloadSize(114));
  EXPECT_THROW(ValidatePayloadSize(0), std::invalid_argument);
  EXPECT_THROW(ValidatePayloadSize(115), std::invalid_argument);
  EXPECT_THROW(ValidatePayloadSize(-5), std::invalid_argument);
}

TEST(Frame, AirTimeAt250kbps) {
  // 133 bytes * 8 / 250 kb/s = 4.256 ms.
  EXPECT_EQ(DataFrameAirTime(114), sim::FromMilliseconds(4.256));
  // 1 byte = 32 us.
  EXPECT_EQ(AirTime(1), 32);
  // ACK: 11 bytes = 352 us.
  EXPECT_EQ(AckAirTime(), 352);
}

TEST(Frame, AirTimeLinearInBytes) {
  EXPECT_EQ(AirTime(100), 2 * AirTime(50));
  EXPECT_THROW((void)AirTime(0), std::invalid_argument);
}

// ------------------------------------------------------------- timing ----

TEST(Timing, PaperConstants) {
  EXPECT_EQ(kTurnaroundTime, 224);                 // 0.224 ms
  EXPECT_EQ(kAckWaitTimeout, 8192);                // 8.192 ms
  EXPECT_EQ(kAckTime, 1960);                       // ~1.96 ms
  EXPECT_EQ(kInitialBackoffMean, 5280);            // 5.28 ms
  EXPECT_EQ(MeanMacDelay(), 5280 + 224);
}

TEST(Timing, SpiLoadCalibratedTo693At110B) {
  // The Table II calibration point: T_SPI(110 B) ~= 6.93 ms.
  EXPECT_NEAR(sim::ToMilliseconds(SpiLoadTime(110)), 6.93, 0.02);
}

TEST(Timing, SpiLoadGrowsWithPayload) {
  sim::Duration prev = 0;
  for (const int l : {1, 20, 50, 80, 110, 114}) {
    const auto t = SpiLoadTime(l);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_THROW((void)SpiLoadTime(0), std::invalid_argument);
}

TEST(Timing, ServiceTimeComponentsForTableII) {
  // First-attempt success at l_D = 110: T_SPI + T_MAC + T_frame + T_ACK
  // should land on the paper's 18.52 ms Table II value.
  const double total_ms = sim::ToMilliseconds(SpiLoadTime(110)) +
                          sim::ToMilliseconds(MeanMacDelay()) +
                          sim::ToMilliseconds(DataFrameAirTime(110)) +
                          sim::ToMilliseconds(kAckTime);
  EXPECT_NEAR(total_ms, 18.52, 0.05);
}

}  // namespace
}  // namespace wsnlink::phy
