// Tests for the duty-cycled low-power-listening MAC.
#include <gtest/gtest.h>

#include <optional>

#include "channel/channel.h"
#include "mac/lpl_mac.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "phy/cc2420.h"
#include "phy/frame.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace wsnlink::mac {
namespace {

channel::ChannelConfig StrongLink() {
  channel::ChannelConfig config;
  config.distance_m = 5.0;
  config.noise.burst_rate_hz = 0.0;
  return config;
}

struct LplHarness {
  sim::Simulator simulator;
  channel::Channel channel;
  LplMac mac;
  std::optional<SendResult> result;
  int deliveries = 0;

  LplHarness(LplParams params, std::uint64_t seed,
             channel::ChannelConfig link = StrongLink())
      : channel(link, util::Rng(seed)),
        mac(simulator, channel, params, util::Rng(seed + 1)) {
    mac.SetDeliveryCallback([this](const DeliveryInfo&) { ++deliveries; });
  }

  void SendAndRun(int payload) {
    mac.Send(1, payload, [this](const SendResult& r) { result = r; });
    simulator.Run();
  }
};

TEST(LplMac, DeliversOnStrongLink) {
  LplParams params;
  params.wakeup_interval = 100 * sim::kMillisecond;
  LplHarness h(params, 500);
  h.SendAndRun(60);
  ASSERT_TRUE(h.result.has_value());
  EXPECT_TRUE(h.result->acked);
  EXPECT_TRUE(h.result->delivered);
  EXPECT_GE(h.deliveries, 1);
}

TEST(LplMac, TrainLengthBoundedByWakeupInterval) {
  // On a strong link the train stops at the receiver's first wake window,
  // so the copy count is at most one full interval's worth.
  LplParams params;
  params.wakeup_interval = 200 * sim::kMillisecond;
  LplHarness h(params, 501);
  h.SendAndRun(50);
  ASSERT_TRUE(h.result->acked);
  const auto copy_slot = phy::DataFrameAirTime(50) + 1'600;
  const auto max_copies = (params.wakeup_interval + params.probe_duration) /
                              copy_slot + 2;
  EXPECT_LE(h.mac.CopiesSent(), static_cast<std::uint64_t>(max_copies));
  EXPECT_GE(h.mac.CopiesSent(), 1u);
}

TEST(LplMac, CompletionLatencyWithinOneInterval) {
  LplParams params;
  params.wakeup_interval = 150 * sim::kMillisecond;
  LplHarness h(params, 502);
  h.SendAndRun(40);
  ASSERT_TRUE(h.result->acked);
  const auto elapsed = h.result->completed_at - h.result->accepted_at;
  // Must finish within one wakeup interval plus overheads.
  EXPECT_LE(elapsed, params.wakeup_interval + 30 * sim::kMillisecond);
}

TEST(LplMac, ShorterWakeupMeansFewerCopies) {
  LplParams fast;
  fast.wakeup_interval = 50 * sim::kMillisecond;
  LplParams slow;
  slow.wakeup_interval = 400 * sim::kMillisecond;

  std::uint64_t fast_copies = 0;
  std::uint64_t slow_copies = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    LplHarness hf(fast, 510 + seed);
    hf.SendAndRun(60);
    fast_copies += hf.mac.CopiesSent();
    LplHarness hs(slow, 510 + seed);
    hs.SendAndRun(60);
    slow_copies += hs.mac.CopiesSent();
  }
  // Mean train length scales with the wakeup interval.
  EXPECT_GT(slow_copies, 3 * fast_copies);
}

TEST(LplMac, EnergyScalesWithCopies) {
  LplParams params;
  params.wakeup_interval = 100 * sim::kMillisecond;
  LplHarness h(params, 520);
  h.SendAndRun(80);
  const double per_copy = phy::EnergyPerBitMicrojoule(31) * 8.0 *
                          static_cast<double>(phy::DataFrameBytes(80));
  EXPECT_NEAR(h.result->tx_energy_uj,
              per_copy * static_cast<double>(h.mac.CopiesSent()), 1e-6);
  EXPECT_EQ(h.result->radiated_bytes,
            static_cast<int>(h.mac.CopiesSent()) * phy::DataFrameBytes(80));
}

TEST(LplMac, DeadLinkExhaustsTrains) {
  channel::ChannelConfig dead;
  dead.distance_m = 35.0;
  dead.use_default_temporal_sigma = false;
  dead.shadowing.sigma_db = 0.0;
  dead.noise.burst_rate_hz = 0.0;

  LplParams params;
  params.wakeup_interval = 50 * sim::kMillisecond;
  params.max_tries = 3;
  params.pa_level = 3;  // below sensitivity at 35 m
  LplHarness h(params, 530, dead);
  h.SendAndRun(30);
  ASSERT_TRUE(h.result.has_value());
  EXPECT_FALSE(h.result->acked);
  EXPECT_FALSE(h.result->delivered);
  EXPECT_EQ(h.result->tries, 3);
}

TEST(LplMac, DutyCycleArithmetic) {
  LplParams params;
  params.wakeup_interval = 110 * sim::kMillisecond;
  params.probe_duration = 11 * sim::kMillisecond;
  LplHarness h(params, 540);
  EXPECT_NEAR(h.mac.ReceiverIdleDutyCycle(), 0.1, 1e-12);
  // 10% of the 56.4 mW RX power.
  EXPECT_NEAR(h.mac.ReceiverIdlePowerMw(), 5.64, 1e-9);
}

TEST(LplMac, InvalidParamsRejected) {
  sim::Simulator simulator;
  channel::Channel channel(StrongLink(), util::Rng(1));
  LplParams bad;
  bad.wakeup_interval = 0;
  EXPECT_THROW(LplMac(simulator, channel, bad, util::Rng(2)),
               std::invalid_argument);
  LplParams bad_probe;
  bad_probe.probe_duration = bad_probe.wakeup_interval + 1;
  EXPECT_THROW(LplMac(simulator, channel, bad_probe, util::Rng(2)),
               std::invalid_argument);
  LplParams bad_level;
  bad_level.pa_level = 4;
  EXPECT_THROW(LplMac(simulator, channel, bad_level, util::Rng(2)),
               std::invalid_argument);
}

TEST(LplMac, EndToEndThroughLinkSimulation) {
  node::SimulationOptions options;
  options.mac = node::MacKind::kLpl;
  options.lpl_wakeup_interval_ms = 100.0;
  options.config.distance_m = 10.0;
  options.config.pa_level = 31;
  options.config.max_tries = 2;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 500.0;
  options.config.payload_bytes = 60;
  options.packet_count = 50;
  options.seed = 3;
  const auto m = metrics::MeasureConfig(options);
  EXPECT_GE(m.delivered_unique, 48u);
  // LPL delay is dominated by the rendezvous wait (~half an interval).
  EXPECT_GT(m.mean_delay_ms, 10.0);
  EXPECT_LT(m.mean_delay_ms, 120.0);
  // Sender energy per bit is far above always-on CSMA (many copies).
  EXPECT_GT(m.energy_uj_per_bit, 1.0);
}

TEST(LplMac, LplVsCsmaDelayAndSenderEnergy) {
  node::SimulationOptions options;
  options.config.distance_m = 10.0;
  options.config.max_tries = 3;
  options.config.queue_capacity = 5;
  // Not a multiple of the wakeup interval, so packet arrivals rotate
  // through all rendezvous phases instead of aliasing onto one offset.
  options.config.pkt_interval_ms = 410.0;
  options.config.payload_bytes = 80;
  options.packet_count = 80;
  options.seed = 4;

  const auto csma = metrics::MeasureConfig(options);
  options.mac = node::MacKind::kLpl;
  options.lpl_wakeup_interval_ms = 200.0;
  const auto lpl = metrics::MeasureConfig(options);

  EXPECT_GT(lpl.mean_delay_ms, 3.0 * csma.mean_delay_ms);
  EXPECT_GT(lpl.energy_uj_per_bit, 5.0 * csma.energy_uj_per_bit);
}

// ----------------------------------- wakeup-interval parameter sweep ----

class LplWakeupSweep : public ::testing::TestWithParam<double> {};

TEST_P(LplWakeupSweep, DelayTracksHalfTheInterval) {
  const double wakeup_ms = GetParam();
  node::SimulationOptions options;
  options.mac = node::MacKind::kLpl;
  options.lpl_wakeup_interval_ms = wakeup_ms;
  options.config.distance_m = 10.0;
  options.config.pa_level = 31;
  options.config.max_tries = 2;
  options.config.queue_capacity = 5;
  // Coprime-ish to every swept interval: rendezvous phases rotate.
  options.config.pkt_interval_ms = 3.17 * wakeup_ms + 11.0;
  options.config.payload_bytes = 60;
  options.packet_count = 120;
  options.seed = 1000 + static_cast<std::uint64_t>(wakeup_ms);
  const auto m = metrics::MeasureConfig(options);

  ASSERT_GT(m.delivered_unique, 110u);
  // Mean rendezvous wait ~ wakeup/2 plus per-copy and SPI overheads.
  EXPECT_GT(m.mean_delay_ms, 0.25 * wakeup_ms);
  EXPECT_LT(m.mean_delay_ms, 0.85 * wakeup_ms + 15.0);
  // Receiver duty cycle shrinks with the interval.
  EXPECT_NEAR(m.receiver_idle_power_mw, 11.0 / wakeup_ms * 56.4,
              0.01 * 56.4);
}

INSTANTIATE_TEST_SUITE_P(WakeupIntervals, LplWakeupSweep,
                         ::testing::Values(50.0, 100.0, 200.0, 400.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "w" + std::to_string(
                                            static_cast<int>(info.param));
                         });

}  // namespace
}  // namespace wsnlink::mac
