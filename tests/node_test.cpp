// Tests for the end-to-end simulation runner.
#include <gtest/gtest.h>

#include "node/link_simulation.h"

namespace wsnlink::node {
namespace {

SimulationOptions StrongLinkOptions() {
  SimulationOptions options;
  options.config.distance_m = 10.0;
  options.config.pa_level = 31;
  options.config.max_tries = 3;
  options.config.queue_capacity = 10;
  options.config.pkt_interval_ms = 50.0;
  options.config.payload_bytes = 60;
  options.packet_count = 200;
  options.seed = 77;
  return options;
}

TEST(LinkSimulation, RunsToCompletion) {
  const auto result = RunLinkSimulation(StrongLinkOptions());
  EXPECT_EQ(result.generated, 200);
  EXPECT_EQ(result.log.Packets().size(), 200u);
  // Strong link: near-perfect delivery.
  EXPECT_GT(result.unique_delivered, 195u);
  EXPECT_GT(result.end_time, 0);
  // Untraced runs use the MAC's collapsed fast path: at least one arrival
  // event and one completion event per generated packet still go through
  // the simulator.
  EXPECT_GE(result.events_executed, 2u * 200u);
}

TEST(LinkSimulation, DeterministicForSameSeed) {
  const auto a = RunLinkSimulation(StrongLinkOptions());
  const auto b = RunLinkSimulation(StrongLinkOptions());
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.unique_delivered, b.unique_delivered);
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.log.Packets().size(), b.log.Packets().size());
  for (std::size_t i = 0; i < a.log.Packets().size(); ++i) {
    EXPECT_EQ(a.log.Packets()[i].completed_at, b.log.Packets()[i].completed_at);
    EXPECT_EQ(a.log.Packets()[i].tries, b.log.Packets()[i].tries);
  }
}

TEST(LinkSimulation, DifferentSeedsDiffer) {
  auto options = StrongLinkOptions();
  const auto a = RunLinkSimulation(options);
  options.seed = 78;
  const auto b = RunLinkSimulation(options);
  EXPECT_NE(a.end_time, b.end_time);
}

TEST(LinkSimulation, MeanSnrMatchesChannelArithmetic) {
  const auto options = StrongLinkOptions();
  const auto result = RunLinkSimulation(options);
  // 0 dBm - (38 + 21.9*log10(10)) = -59.9 dBm; quiet floor -95.6.
  EXPECT_NEAR(result.mean_snr_db, -59.9 + 95.6, 1e-6);
  // Receiver-observed SNR should scatter around the ground truth.
  EXPECT_NEAR(result.snr_stats.Mean(), result.mean_snr_db, 1.5);
}

TEST(LinkSimulation, ChannelAblationSwitchesApply) {
  auto options = StrongLinkOptions();
  options.disable_temporal_shadowing = true;
  options.disable_interference = true;
  const auto result = RunLinkSimulation(options);
  // Without shadowing, receiver RSSI variation collapses to noise-floor
  // variation only.
  EXPECT_LT(result.rssi_stats.StdDev(), 0.2);
  EXPECT_EQ(result.cca_busy, 0u);
}

TEST(LinkSimulation, SpatialShadowDegradesDelivery) {
  auto options = StrongLinkOptions();
  options.config.distance_m = 30.0;
  options.config.pa_level = 11;
  const auto nominal = RunLinkSimulation(options);
  options.spatial_shadow_db = -10.0;
  const auto faded = RunLinkSimulation(options);
  EXPECT_LT(faded.unique_delivered, nominal.unique_delivered);
  EXPECT_NEAR(nominal.mean_snr_db - faded.mean_snr_db, 10.0, 1e-9);
}

TEST(LinkSimulation, InvalidOptionsRejected) {
  auto options = StrongLinkOptions();
  options.packet_count = 0;
  EXPECT_THROW((void)RunLinkSimulation(options), std::invalid_argument);
  options = StrongLinkOptions();
  options.config.pa_level = 10;
  EXPECT_THROW((void)RunLinkSimulation(options), std::invalid_argument);
}

TEST(LinkSimulation, SaturatedQueueDropsArePlentiful) {
  SimulationOptions options;
  options.config.distance_m = 35.0;
  options.config.pa_level = 7;        // grey zone
  options.config.max_tries = 8;       // long service times
  options.config.queue_capacity = 1;  // no buffering
  options.config.pkt_interval_ms = 10.0;  // rho >> 1
  options.config.payload_bytes = 110;
  options.packet_count = 300;
  options.seed = 9;
  const auto result = RunLinkSimulation(options);
  int drops = 0;
  for (const auto& p : result.log.Packets()) {
    if (p.dropped_at_queue) ++drops;
  }
  EXPECT_GT(drops, 100);
}

TEST(LinkSimulation, AnalyticBerSharperThanCalibrated) {
  // At a mid-grey SNR, the analytic curve delivers either almost all or
  // almost nothing; the calibrated curve sits in between. Use a config
  // whose calibrated PER is solidly intermediate.
  SimulationOptions options;
  options.config.distance_m = 35.0;
  options.config.pa_level = 11;  // ~13 dB
  options.config.max_tries = 1;
  options.config.queue_capacity = 1;
  options.config.pkt_interval_ms = 100.0;
  options.config.payload_bytes = 110;
  options.packet_count = 400;
  options.seed = 10;
  options.disable_temporal_shadowing = true;
  options.disable_interference = true;

  const auto calibrated = RunLinkSimulation(options);
  options.analytic_ber = true;
  const auto analytic = RunLinkSimulation(options);

  const double cal_rate = static_cast<double>(calibrated.unique_delivered) /
                          calibrated.generated;
  const double ana_rate =
      static_cast<double>(analytic.unique_delivered) / analytic.generated;
  // Calibrated: intermediate loss. Analytic at 13 dB: essentially lossless.
  EXPECT_GT(cal_rate, 0.5);
  EXPECT_LT(cal_rate, 0.95);
  EXPECT_GT(ana_rate, 0.99);
}

}  // namespace
}  // namespace wsnlink::node
