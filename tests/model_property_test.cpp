// Cross-model consistency properties, swept over a (payload, SNR) grid.
//
// These are the algebraic relationships the model family must satisfy for
// ANY input — the analogue of the simulator's property suite, but for the
// paper's equations themselves.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/models/model_set.h"
#include "phy/frame.h"

namespace wsnlink::core::models {
namespace {

struct GridPoint {
  int payload;
  double snr_db;
};

class ModelGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ModelGrid, ServiceTimeOrdering) {
  const ServiceTimeModel model;
  for (const int tries : {1, 3, 8}) {
    ServiceTimeInputs in;
    in.payload_bytes = GetParam().payload;
    in.snr_db = GetParam().snr_db;
    in.max_tries = tries;
    const double delivered = model.DeliveredMs(in);
    const double lost = model.LostMs(in);
    const double mean = model.MeanMs(in);
    // A delivery can never take longer (in expectation) than exhausting
    // the whole retry budget, and the mixture sits between the branches.
    EXPECT_LE(delivered, lost + 1e-9);
    EXPECT_GE(mean, delivered - 1e-9);
    EXPECT_LE(mean, lost + 1e-9);
    EXPECT_GT(delivered, 0.0);
  }
}

TEST_P(ModelGrid, ServiceTimeMonotoneInRetryDelay) {
  const ServiceTimeModel model;
  ServiceTimeInputs in;
  in.payload_bytes = GetParam().payload;
  in.snr_db = GetParam().snr_db;
  in.max_tries = 3;
  double prev = -1.0;
  for (const double retry : {0.0, 30.0, 60.0, 120.0}) {
    in.retry_delay_ms = retry;
    const double mean = model.MeanMs(in);
    EXPECT_GE(mean, prev);
    prev = mean;
  }
}

TEST_P(ModelGrid, PerAndPlrBaseAgreeInShape) {
  // Eq. 3 and Eq. 8's base are independent fits of nearly the same thing;
  // they must agree within a factor ~2 everywhere both are meaningful.
  const PerModel per;
  const PlrModel plr;
  const double a = per.Per(GetParam().payload, GetParam().snr_db);
  const double b = plr.AttemptLoss(GetParam().payload, GetParam().snr_db);
  if (a > 1e-4 && a < 1.0 && b < 1.0) {
    EXPECT_LT(std::abs(std::log(a / b)), std::log(2.2))
        << "per=" << a << " base=" << b;
  }
}

TEST_P(ModelGrid, GoodputMonotoneInSnr) {
  const GoodputModel model;
  ServiceTimeInputs in;
  in.payload_bytes = GetParam().payload;
  in.max_tries = 3;
  in.snr_db = GetParam().snr_db;
  const double here = model.MaxGoodputKbps(in);
  in.snr_db = GetParam().snr_db + 3.0;
  const double better_link = model.MaxGoodputKbps(in);
  EXPECT_GE(better_link, here - 1e-9);
}

TEST_P(ModelGrid, RetriesMonotoneLossBoundedGoodputEffect) {
  // Radio loss is strictly monotone in the retry budget (Eq. 8). Goodput
  // is NOT (a fast failed slot can beat a slow recovery in Eq. 4 — the
  // grey-zone trade-off the paper discusses), but its swing across budgets
  // stays bounded.
  const GoodputModel goodput;
  const PlrModel plr;
  ServiceTimeInputs in;
  in.payload_bytes = GetParam().payload;
  in.snr_db = GetParam().snr_db;

  double prev_loss = 2.0;
  double min_goodput = 1e18;
  double max_goodput = 0.0;
  for (const int tries : {1, 2, 3, 5, 8}) {
    in.max_tries = tries;
    const double g = goodput.MaxGoodputKbps(in);
    const double l = plr.RadioLoss(GetParam().payload, GetParam().snr_db, tries);
    EXPECT_LE(l, prev_loss + 1e-12);
    prev_loss = l;
    min_goodput = std::min(min_goodput, g);
    max_goodput = std::max(max_goodput, g);
  }
  EXPECT_GT(min_goodput, 0.0);
  EXPECT_LT(max_goodput, 2.0 * min_goodput + 1e-9);
}

TEST_P(ModelGrid, EnergyDecreasesWithSnrAtFixedPower) {
  const EnergyModel model;
  const double here =
      model.MicrojoulesPerBit(GetParam().payload, GetParam().snr_db, 31);
  const double better =
      model.MicrojoulesPerBit(GetParam().payload, GetParam().snr_db + 3.0, 31);
  if (std::isfinite(here)) {
    EXPECT_LE(better, here + 1e-12);
  }
}

TEST_P(ModelGrid, UtilizationScalesInverselyWithInterval) {
  const DelayModel model;
  ServiceTimeInputs in;
  in.payload_bytes = GetParam().payload;
  in.snr_db = GetParam().snr_db;
  in.max_tries = 3;
  const double rho_50 = model.Utilization(in, 50.0);
  const double rho_100 = model.Utilization(in, 100.0);
  EXPECT_NEAR(rho_50, 2.0 * rho_100, 1e-9);
}

TEST_P(ModelGrid, PredictionInternallyConsistent) {
  ModelSet models;
  StackConfig config;
  config.payload_bytes = GetParam().payload;
  config.max_tries = 3;
  config.queue_capacity = 10;
  config.pkt_interval_ms = 80.0;
  const auto p = models.PredictAtSnr(config, GetParam().snr_db);
  // Total loss composes queue and radio loss.
  EXPECT_NEAR(p.plr_total,
              1.0 - (1.0 - p.plr_queue) * (1.0 - p.plr_radio), 1e-12);
  // Delay includes at least the service time.
  EXPECT_GE(p.total_delay_ms, p.service_time_ms - 1e-9);
  // Stability predicate consistent with rho.
  EXPECT_EQ(p.plr_queue > 0.0, p.utilization > 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    PayloadSnrGrid, ModelGrid,
    ::testing::Values(GridPoint{5, 6.0}, GridPoint{5, 15.0},
                      GridPoint{5, 25.0}, GridPoint{50, 6.0},
                      GridPoint{50, 12.0}, GridPoint{50, 20.0},
                      GridPoint{110, 7.0}, GridPoint{110, 14.0},
                      GridPoint{110, 22.0}, GridPoint{114, 9.0},
                      GridPoint{114, 19.0}, GridPoint{114, 30.0}),
    [](const ::testing::TestParamInfo<GridPoint>& info) {
      return "l" + std::to_string(info.param.payload) + "_s" +
             std::to_string(static_cast<int>(info.param.snr_db));
    });

}  // namespace
}  // namespace wsnlink::core::models
