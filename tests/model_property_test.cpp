// Cross-model consistency properties, swept over a (payload, SNR) grid.
//
// These are the algebraic relationships the model family must satisfy for
// ANY input — the analogue of the simulator's property suite, but for the
// paper's equations themselves.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/models/model_set.h"
#include "node/link_simulation.h"
#include "phy/frame.h"
#include "validate/service_curve.h"

namespace wsnlink::core::models {
namespace {

struct GridPoint {
  int payload;
  double snr_db;
};

class ModelGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ModelGrid, ServiceTimeOrdering) {
  const ServiceTimeModel model;
  for (const int tries : {1, 3, 8}) {
    ServiceTimeInputs in;
    in.payload_bytes = GetParam().payload;
    in.snr_db = GetParam().snr_db;
    in.max_tries = tries;
    const double delivered = model.DeliveredMs(in);
    const double lost = model.LostMs(in);
    const double mean = model.MeanMs(in);
    // A delivery can never take longer (in expectation) than exhausting
    // the whole retry budget, and the mixture sits between the branches.
    EXPECT_LE(delivered, lost + 1e-9);
    EXPECT_GE(mean, delivered - 1e-9);
    EXPECT_LE(mean, lost + 1e-9);
    EXPECT_GT(delivered, 0.0);
  }
}

TEST_P(ModelGrid, ServiceTimeMonotoneInRetryDelay) {
  const ServiceTimeModel model;
  ServiceTimeInputs in;
  in.payload_bytes = GetParam().payload;
  in.snr_db = GetParam().snr_db;
  in.max_tries = 3;
  double prev = -1.0;
  for (const double retry : {0.0, 30.0, 60.0, 120.0}) {
    in.retry_delay_ms = retry;
    const double mean = model.MeanMs(in);
    EXPECT_GE(mean, prev);
    prev = mean;
  }
}

TEST_P(ModelGrid, PerAndPlrBaseAgreeInShape) {
  // Eq. 3 and Eq. 8's base are independent fits of nearly the same thing;
  // they must agree within a factor ~2 everywhere both are meaningful.
  const PerModel per;
  const PlrModel plr;
  const double a = per.Per(GetParam().payload, GetParam().snr_db);
  const double b = plr.AttemptLoss(GetParam().payload, GetParam().snr_db);
  if (a > 1e-4 && a < 1.0 && b < 1.0) {
    EXPECT_LT(std::abs(std::log(a / b)), std::log(2.2))
        << "per=" << a << " base=" << b;
  }
}

TEST_P(ModelGrid, GoodputMonotoneInSnr) {
  const GoodputModel model;
  ServiceTimeInputs in;
  in.payload_bytes = GetParam().payload;
  in.max_tries = 3;
  in.snr_db = GetParam().snr_db;
  const double here = model.MaxGoodputKbps(in);
  in.snr_db = GetParam().snr_db + 3.0;
  const double better_link = model.MaxGoodputKbps(in);
  EXPECT_GE(better_link, here - 1e-9);
}

TEST_P(ModelGrid, RetriesMonotoneLossBoundedGoodputEffect) {
  // Radio loss is strictly monotone in the retry budget (Eq. 8). Goodput
  // is NOT (a fast failed slot can beat a slow recovery in Eq. 4 — the
  // grey-zone trade-off the paper discusses), but its swing across budgets
  // stays bounded.
  const GoodputModel goodput;
  const PlrModel plr;
  ServiceTimeInputs in;
  in.payload_bytes = GetParam().payload;
  in.snr_db = GetParam().snr_db;

  double prev_loss = 2.0;
  double min_goodput = 1e18;
  double max_goodput = 0.0;
  for (const int tries : {1, 2, 3, 5, 8}) {
    in.max_tries = tries;
    const double g = goodput.MaxGoodputKbps(in);
    const double l = plr.RadioLoss(GetParam().payload, GetParam().snr_db, tries);
    EXPECT_LE(l, prev_loss + 1e-12);
    prev_loss = l;
    min_goodput = std::min(min_goodput, g);
    max_goodput = std::max(max_goodput, g);
  }
  EXPECT_GT(min_goodput, 0.0);
  EXPECT_LT(max_goodput, 2.0 * min_goodput + 1e-9);
}

TEST_P(ModelGrid, EnergyDecreasesWithSnrAtFixedPower) {
  const EnergyModel model;
  const double here =
      model.MicrojoulesPerBit(GetParam().payload, GetParam().snr_db, 31);
  const double better =
      model.MicrojoulesPerBit(GetParam().payload, GetParam().snr_db + 3.0, 31);
  if (std::isfinite(here)) {
    EXPECT_LE(better, here + 1e-12);
  }
}

TEST_P(ModelGrid, UtilizationScalesInverselyWithInterval) {
  const DelayModel model;
  ServiceTimeInputs in;
  in.payload_bytes = GetParam().payload;
  in.snr_db = GetParam().snr_db;
  in.max_tries = 3;
  const double rho_50 = model.Utilization(in, 50.0);
  const double rho_100 = model.Utilization(in, 100.0);
  EXPECT_NEAR(rho_50, 2.0 * rho_100, 1e-9);
}

TEST_P(ModelGrid, PredictionInternallyConsistent) {
  ModelSet models;
  StackConfig config;
  config.payload_bytes = GetParam().payload;
  config.max_tries = 3;
  config.queue_capacity = 10;
  config.pkt_interval_ms = 80.0;
  const auto p = models.PredictAtSnr(config, GetParam().snr_db);
  // Total loss composes queue and radio loss.
  EXPECT_NEAR(p.plr_total,
              1.0 - (1.0 - p.plr_queue) * (1.0 - p.plr_radio), 1e-12);
  // Delay includes at least the service time.
  EXPECT_GE(p.total_delay_ms, p.service_time_ms - 1e-9);
  // Stability predicate consistent with rho.
  EXPECT_EQ(p.plr_queue > 0.0, p.utilization > 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    PayloadSnrGrid, ModelGrid,
    ::testing::Values(GridPoint{5, 6.0}, GridPoint{5, 15.0},
                      GridPoint{5, 25.0}, GridPoint{50, 6.0},
                      GridPoint{50, 12.0}, GridPoint{50, 20.0},
                      GridPoint{110, 7.0}, GridPoint{110, 14.0},
                      GridPoint{110, 22.0}, GridPoint{114, 9.0},
                      GridPoint{114, 19.0}, GridPoint{114, 30.0}),
    [](const ::testing::TestParamInfo<GridPoint>& info) {
      return "l" + std::to_string(info.param.payload) + "_s" +
             std::to_string(static_cast<int>(info.param.snr_db));
    });

// --- service-curve bound algebra (src/validate/) ------------------------
//
// The delay/backlog bounds must respect the same kind of ordering laws as
// the closed-form models above, for any configuration in scope: a larger
// retry budget or payload can only push the worst case out, and the
// analytic delay-CCDF envelope must be a valid step-function tail.

wsnlink::node::SimulationOptions CurveOptions(double distance_m, int pa,
                                              int payload, int tries) {
  wsnlink::node::SimulationOptions options;
  options.config.distance_m = distance_m;
  options.config.pa_level = pa;
  options.config.payload_bytes = payload;
  options.config.max_tries = tries;
  return options;
}

TEST(ServiceCurveProperty, MaxDelayMonotoneInRetryLimit) {
  for (const double d : {10.0, 25.0, 31.0}) {
    for (const int payload : {20, 110}) {
      double prev_delay = 0.0;
      double prev_service = 0.0;
      for (int tries = 1; tries <= 8; ++tries) {
        const wsnlink::validate::ServiceCurveModel model(
            CurveOptions(d, 7, payload, tries));
        const auto& b = model.Bounds();
        EXPECT_GE(b.max_delay_ms, prev_delay)
            << "d=" << d << " l=" << payload << " tries=" << tries;
        EXPECT_GE(b.max_service_ms, prev_service);
        // More tries never increases the residual loss after the ladder.
        prev_delay = b.max_delay_ms;
        prev_service = b.max_service_ms;
      }
    }
  }
}

TEST(ServiceCurveProperty, RadioLossNonIncreasingInRetryLimit) {
  for (const double d : {25.0, 31.0}) {
    double prev = 2.0;
    for (int tries = 1; tries <= 8; ++tries) {
      const wsnlink::validate::ServiceCurveModel model(
          CurveOptions(d, 7, 110, tries));
      EXPECT_LE(model.RadioLossBound(), prev + 1e-12)
          << "d=" << d << " tries=" << tries;
      prev = model.RadioLossBound();
    }
  }
}

TEST(ServiceCurveProperty, BoundsMonotoneInPayloadSize) {
  for (const double d : {10.0, 25.0, 31.0}) {
    for (const int tries : {1, 3}) {
      double prev_min = 0.0;
      double prev_max = 0.0;
      double prev_loss = 0.0;
      for (const int payload : {5, 20, 50, 80, 110, 114}) {
        const wsnlink::validate::ServiceCurveModel model(
            CurveOptions(d, 7, payload, tries));
        const auto& b = model.Bounds();
        EXPECT_GE(b.min_delay_ms, prev_min)
            << "d=" << d << " tries=" << tries << " l=" << payload;
        EXPECT_GE(b.max_delay_ms, prev_max);
        // A longer frame can only be easier to lose (Eq. 3 is linear in
        // the radiated bytes).
        EXPECT_GE(model.EffectiveAttemptLoss(), prev_loss - 1e-12);
        prev_min = b.min_delay_ms;
        prev_max = b.max_delay_ms;
        prev_loss = model.EffectiveAttemptLoss();
      }
    }
  }
}

TEST(ServiceCurveProperty, CcdfEnvelopeIsAValidTail) {
  for (const double d : {10.0, 28.0}) {
    for (const int tries : {1, 3, 8}) {
      const wsnlink::validate::ServiceCurveModel model(
          CurveOptions(d, 7, 110, tries));
      const auto& ccdf = model.Bounds().ccdf;
      ASSERT_EQ(ccdf.size(), static_cast<std::size_t>(tries));
      for (std::size_t i = 0; i < ccdf.size(); ++i) {
        EXPECT_GE(ccdf[i].tail_probability, 0.0);
        EXPECT_LE(ccdf[i].tail_probability, 1.0);
        if (i > 0) {
          EXPECT_GT(ccdf[i].delay_ms, ccdf[i - 1].delay_ms);
          EXPECT_LE(ccdf[i].tail_probability,
                    ccdf[i - 1].tail_probability + 1e-12);
        }
      }
      // The last step is the hard maximum: nothing delivered later.
      EXPECT_DOUBLE_EQ(ccdf.back().tail_probability, 0.0);
      EXPECT_DOUBLE_EQ(ccdf.back().delay_ms, model.Bounds().max_delay_ms);
    }
  }
}

TEST(ServiceCurveProperty, AttemptTailNonIncreasingInK) {
  const wsnlink::validate::ServiceCurveModel model(
      CurveOptions(28.0, 7, 110, 8));
  for (const double factor : {1.0, 2.0}) {
    double prev = 2.0;
    for (int k = 1; k <= 8; ++k) {
      const double tail = model.AttemptTailProbability(k, factor);
      EXPECT_GE(tail, 0.0);
      EXPECT_LE(tail, 1.0);
      EXPECT_LE(tail, prev + 1e-12) << "k=" << k << " factor=" << factor;
      prev = tail;
    }
  }
}

TEST(ServiceCurveProperty, HalvedPerNeverRaisesTheEnvelope) {
  for (const double d : {10.0, 25.0, 31.0}) {
    const auto options = CurveOptions(d, 7, 110, 3);
    const wsnlink::validate::ServiceCurveModel calibrated(options);
    wsnlink::validate::ServiceCurveParams halved;
    halved.per_scale = 0.5;
    const wsnlink::validate::ServiceCurveModel optimistic(options, 1, halved);
    for (int k = 1; k <= 3; ++k) {
      EXPECT_LE(optimistic.AttemptTailProbability(k, 1.0),
                calibrated.AttemptTailProbability(k, 1.0) + 1e-12);
    }
  }
}

TEST(ServiceCurveProperty, StabilityFlagMatchesUtilization) {
  for (const double interval : {10.0, 50.0, 100.0, 1000.0}) {
    auto options = CurveOptions(25.0, 7, 110, 3);
    options.config.pkt_interval_ms = interval;
    options.config.queue_capacity = 4;
    const wsnlink::validate::ServiceCurveModel model(options);
    const auto& b = model.Bounds();
    EXPECT_EQ(b.stable, b.worst_case_utilization < 1.0);
    EXPECT_GE(b.backlog_bound_pkts, 0);
    EXPECT_LE(b.backlog_bound_pkts, options.config.queue_capacity - 1 > 0
                                        ? options.config.queue_capacity - 1
                                        : 1);
    EXPECT_GE(b.max_delay_ms, b.min_delay_ms);
    EXPECT_GT(b.arrival.rate_pps, 0.0);
    EXPECT_GT(b.service.rate_pps, 0.0);
  }
}

}  // namespace
}  // namespace wsnlink::core::models
