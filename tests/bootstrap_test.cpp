// Tests for the bootstrap confidence intervals.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/fit/bootstrap.h"
#include "util/rng.h"

namespace wsnlink::core::fit {
namespace {

std::vector<ScaledExpSample> NoisySamples(double a, double b, double noise,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ScaledExpSample> samples;
  for (const double l : {20.0, 50.0, 80.0, 110.0}) {
    for (double snr = 5.0; snr <= 24.0; snr += 1.0) {
      ScaledExpSample s;
      s.payload_bytes = l;
      s.snr_db = snr;
      s.value = std::max(
          0.0, a * l * std::exp(b * snr) * (1.0 + rng.Gaussian(0.0, noise)));
      samples.push_back(s);
    }
  }
  return samples;
}

TEST(Bootstrap, IntervalsCoverTrueCoefficients) {
  const auto samples = NoisySamples(0.0128, -0.15, 0.08, 1);
  const auto result =
      BootstrapScaledExponential(samples, util::Rng(2), {200, 0.95});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->a.Contains(0.0128))
      << "[" << result->a.lo << ", " << result->a.hi << "]";
  EXPECT_TRUE(result->b.Contains(-0.15))
      << "[" << result->b.lo << ", " << result->b.hi << "]";
  EXPECT_GE(result->successful_replicates, 150);
  EXPECT_LT(result->a.lo, result->a.hi);
  EXPECT_LT(result->b.lo, result->b.hi);
}

TEST(Bootstrap, NoiselessDataGivesTightIntervals) {
  const auto samples = NoisySamples(0.02, -0.18, 0.0, 3);
  const auto result =
      BootstrapScaledExponential(samples, util::Rng(4), {100, 0.95});
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(result->a.Width(), 1e-6);
  EXPECT_LT(result->b.Width(), 1e-5);
}

TEST(Bootstrap, MoreNoiseWidensIntervals) {
  const auto quiet = BootstrapScaledExponential(
      NoisySamples(0.011, -0.145, 0.05, 5), util::Rng(6), {150, 0.95});
  const auto loud = BootstrapScaledExponential(
      NoisySamples(0.011, -0.145, 0.30, 5), util::Rng(6), {150, 0.95});
  ASSERT_TRUE(quiet.has_value());
  ASSERT_TRUE(loud.has_value());
  EXPECT_GT(loud->b.Width(), quiet->b.Width());
}

TEST(Bootstrap, DeterministicForSameSeed) {
  const auto samples = NoisySamples(0.0128, -0.15, 0.1, 7);
  const auto a = BootstrapScaledExponential(samples, util::Rng(8));
  const auto b = BootstrapScaledExponential(samples, util::Rng(8));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(a->a.lo, b->a.lo);
  EXPECT_DOUBLE_EQ(a->b.hi, b->b.hi);
}

TEST(Bootstrap, DegenerateInputReturnsNullopt) {
  std::vector<ScaledExpSample> flat(20, ScaledExpSample{50.0, 10.0, 0.1});
  EXPECT_FALSE(
      BootstrapScaledExponential(flat, util::Rng(9)).has_value());
}

TEST(Bootstrap, InvalidOptionsRejected) {
  const auto samples = NoisySamples(0.0128, -0.15, 0.1, 10);
  EXPECT_THROW((void)BootstrapScaledExponential(samples, util::Rng(1),
                                                {1, 0.95}),
               std::invalid_argument);
  EXPECT_THROW((void)BootstrapScaledExponential(samples, util::Rng(1),
                                                {100, 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace wsnlink::core::fit
