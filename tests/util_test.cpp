// Unit tests for the util substrate: RNG, statistics, histogram, units,
// tables, CSV.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/fault_injection.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace wsnlink::util {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, DeriveIsDeterministicAndIndependent) {
  Rng root(7);
  Rng child1 = root.Derive("channel");
  Rng child2 = Rng(7).Derive("channel");
  EXPECT_EQ(child1(), child2());

  Rng other = root.Derive("mac");
  Rng again = root.Derive("channel");
  // Distinct labels give distinct streams.
  EXPECT_NE(other(), again());
}

TEST(Rng, DeriveDoesNotPerturbParent) {
  Rng a(9);
  Rng b(9);
  (void)a.Derive("x");
  EXPECT_EQ(a(), b());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.Mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.StdDev(), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliEdgesAreExact) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.Mean(), 4.0, 0.1);
  EXPECT_GT(stats.Min(), 0.0);
}

// ------------------------------------------------------------- stats ----

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 4u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_NEAR(s.Variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(RunningStats, ThrowsOnEmpty) {
  RunningStats s;
  EXPECT_THROW((void)s.Mean(), std::logic_error);
  EXPECT_THROW((void)s.Min(), std::logic_error);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(0, 1);
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), all.Count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.Min(), all.Min());
  EXPECT_DOUBLE_EQ(left.Max(), all.Max());
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
}

TEST(FitLine, RecoversExactLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const auto fit = FitLine(xs, ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 3.0, 1e-12);
  EXPECT_NEAR(fit->intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->rmse, 0.0, 1e-10);
}

TEST(FitLine, DegenerateInputsRejected) {
  const std::vector<double> one{1.0};
  EXPECT_FALSE(FitLine(one, one).has_value());
  const std::vector<double> same_x{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_FALSE(FitLine(same_x, ys).has_value());
}

TEST(Correlation, PerfectAndAnti) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> up{2, 4, 6, 8};
  const std::vector<double> down{8, 6, 4, 2};
  EXPECT_NEAR(*Correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(*Correlation(xs, down), -1.0, 1e-12);
}

TEST(Rmse, ZeroForIdenticalVectors) {
  const std::vector<double> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(Rmse(a, a), 0.0);
  EXPECT_DOUBLE_EQ(MaxAbsError(a, a), 0.0);
}

// ---------------------------------------------------------- histogram ----

TEST(Histogram, CountsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.99);
  h.Add(-1.0);
  h.Add(10.0);
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.Count(9), 1u);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 1u);
  EXPECT_EQ(h.Total(), 4u);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.5);
}

TEST(Histogram, CdfReachesOne) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 100; ++i) h.Add(i / 100.0);
  EXPECT_NEAR(h.CdfAtBin(3), 1.0, 1e-12);
}

TEST(Histogram, WeightedAddAndMode) {
  Histogram h(0.0, 3.0, 3);
  h.Add(0.5, 2);
  h.Add(1.5, 5);
  h.Add(2.5, 1);
  EXPECT_EQ(h.ModeBin(), 1u);
  EXPECT_NEAR(h.Fraction(1), 5.0 / 8.0, 1e-12);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// -------------------------------------------------------------- units ----

TEST(Units, DbmMilliwattRoundTrip) {
  EXPECT_NEAR(DbmToMilliwatt(0.0), 1.0, 1e-12);
  EXPECT_NEAR(DbmToMilliwatt(10.0), 10.0, 1e-9);
  EXPECT_NEAR(MilliwattToDbm(1.0), 0.0, 1e-12);
  for (const double dbm : {-95.0, -25.0, 0.0, 7.5}) {
    EXPECT_NEAR(MilliwattToDbm(DbmToMilliwatt(dbm)), dbm, 1e-9);
  }
}

TEST(Units, AddPowersDominatedByLarger) {
  // Adding a signal 30 dB below barely moves the total.
  EXPECT_NEAR(AddPowersDbm(0.0, -30.0), 0.0043, 1e-3);
  // Adding two equal powers adds 3 dB.
  EXPECT_NEAR(AddPowersDbm(-95.0, -95.0), -92.0, 0.02);
}

TEST(Units, InvalidArguments) {
  EXPECT_THROW((void)MilliwattToDbm(0.0), std::invalid_argument);
  EXPECT_THROW((void)LinearToDb(-1.0), std::invalid_argument);
}

// -------------------------------------------------------------- table ----

TEST(TextTable, AlignsAndRendersAllRows) {
  TextTable t({"a", "long_header"});
  t.NewRow().Add("x").Add(1.5, 1);
  t.NewRow().Add("yy").Add(22);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(TextTable, RejectsTooManyCells) {
  TextTable t({"only"});
  t.NewRow().Add("1");
  EXPECT_THROW(t.Add("2"), std::logic_error);
}

TEST(TextTable, CsvEscapesCommas) {
  TextTable t({"h"});
  t.NewRow().Add("a,b");
  EXPECT_NE(t.ToCsv().find("\"a,b\""), std::string::npos);
}

// ---------------------------------------------------------------- csv ----

TEST(Csv, ParseSimpleLine) {
  const auto cells = ParseCsvLine("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(Csv, ParseQuotedCells) {
  const auto cells = ParseCsvLine(R"("a,b","say ""hi""",plain)");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a,b");
  EXPECT_EQ(cells[1], "say \"hi\"");
  EXPECT_EQ(cells[2], "plain");
}

TEST(Csv, WriteReadRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "wsn_csv_test.csv").string();
  {
    CsvWriter writer(path, {"x", "label"});
    writer.WriteRow({"1.5", "alpha,beta"});
    writer.WriteRow({"2.5", "plain"});
    EXPECT_EQ(writer.RowsWritten(), 2u);
  }
  const auto data = ReadCsv(path);
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[0][1], "alpha,beta");
  const auto xs = data.NumericColumn("x");
  EXPECT_DOUBLE_EQ(xs[0], 1.5);
  EXPECT_DOUBLE_EQ(xs[1], 2.5);
  std::filesystem::remove(path);
}

TEST(Csv, NumericColumnRejectsText) {
  const auto path =
      (std::filesystem::temp_directory_path() / "wsn_csv_test2.csv").string();
  {
    CsvWriter writer(path, {"x"});
    writer.WriteRow({"not-a-number"});
  }
  const auto data = ReadCsv(path);
  EXPECT_THROW((void)data.NumericColumn("x"), std::runtime_error);
  EXPECT_THROW((void)data.ColumnIndex("missing"), std::out_of_range);
  std::filesystem::remove(path);
}

TEST(Csv, WriterEnforcesColumnCount) {
  const auto path =
      (std::filesystem::temp_directory_path() / "wsn_csv_test3.csv").string();
  CsvWriter writer(path, {"a", "b"});
  EXPECT_THROW(writer.WriteRow({"only-one"}), std::invalid_argument);
  std::filesystem::remove(path);
}

// ------------------------------------------------------ FaultInjection ----

TEST(FaultInjector, DisarmedByDefaultAndNeverFails) {
  ScopedFaultInjection injection;
  EXPECT_FALSE(injection->Armed());
  EXPECT_FALSE(injection->ShouldFail("csv.write"));
  // Unscheduled sites are not even counted.
  EXPECT_EQ(injection->Operations("csv.write"), 0u);
}

TEST(FaultInjector, FailAfterFailsEveryOperationFromThreshold) {
  ScopedFaultInjection injection;
  injection->FailAfter("site", 2);
  EXPECT_TRUE(injection->Armed());
  EXPECT_FALSE(injection->ShouldFail("site"));  // ordinal 0
  EXPECT_FALSE(injection->ShouldFail("site"));  // ordinal 1
  EXPECT_TRUE(injection->ShouldFail("site"));   // ordinal 2: disk now full
  EXPECT_TRUE(injection->ShouldFail("site"));   // ...and stays full
  EXPECT_EQ(injection->Operations("site"), 4u);
  EXPECT_EQ(injection->Injected("site"), 2u);
}

TEST(FaultInjector, FailNthFailsExactlyOne) {
  ScopedFaultInjection injection;
  injection->FailNth("site", 1);
  EXPECT_FALSE(injection->ShouldFail("site"));
  EXPECT_TRUE(injection->ShouldFail("site"));
  EXPECT_FALSE(injection->ShouldFail("site"));
  EXPECT_EQ(injection->Injected("site"), 1u);
}

TEST(FaultInjector, SitesAreIndependent) {
  ScopedFaultInjection injection;
  injection->FailAfter("a", 0);
  EXPECT_TRUE(injection->ShouldFail("a"));
  EXPECT_FALSE(injection->ShouldFail("b"));
}

TEST(FaultInjector, ProbabilityScheduleIsDeterministicInSeed) {
  const auto run = [](std::uint64_t seed) {
    ScopedFaultInjection injection;
    injection->FailWithProbability("site", 0.5, seed);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(injection->ShouldFail("site"));
    }
    return outcomes;
  };
  const auto a = run(42);
  EXPECT_EQ(a, run(42));
  EXPECT_NE(a, run(43));
  // p=0.5 over 64 ordinals: both outcomes must actually occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST(FaultInjector, MaybeThrowRaisesInjectedFaultNamingSite) {
  ScopedFaultInjection injection;
  injection->FailAfter("sweep.worker", 0);
  try {
    injection->MaybeThrow("sweep.worker");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("sweep.worker"), std::string::npos);
  }
}

TEST(FaultInjector, ScopeClearsSchedulesOnExit) {
  {
    ScopedFaultInjection injection;
    injection->FailAfter("site", 0);
    EXPECT_TRUE(FaultInjector::Global().Armed());
  }
  EXPECT_FALSE(FaultInjector::Global().Armed());
}

TEST(Csv, WriterInjectedWriteFailureThrowsWithPath) {
  ScopedFaultInjection injection;
  // Ordinal 0 is the header row the constructor writes; fail the first
  // data row.
  injection->FailNth("csv.write", 1);
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsn_csv_fault.csv").string();
  CsvWriter writer(path, {"a", "b"});
  try {
    writer.WriteRow({"1", "2"});
    FAIL() << "write failure was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(Csv, WriterInjectedCloseFailureThrowsWithPath) {
  ScopedFaultInjection injection;
  injection->FailNth("csv.close", 0);
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsn_csv_close.csv").string();
  CsvWriter writer(path, {"a"});
  writer.WriteRow({"1"});
  try {
    writer.Close();
    FAIL() << "close failure was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(Csv, WriterRejectsRowsAfterClose) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsn_csv_closed.csv").string();
  CsvWriter writer(path, {"a"});
  writer.WriteRow({"1"});
  writer.Close();
  EXPECT_THROW(writer.WriteRow({"2"}), std::logic_error);
  std::filesystem::remove(path);
}

TEST(Csv, WriterOpenFailureNamesPath) {
  const std::string path = "/nonexistent-dir-wsn/out.csv";
  try {
    CsvWriter writer(path, {"a"});
    FAIL() << "open of an unwritable path succeeded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

}  // namespace
}  // namespace wsnlink::util
