// Tests for the sweep driver, dataset export and campaign.
#include <gtest/gtest.h>

#include <filesystem>

#include "experiment/campaign.h"
#include "experiment/dataset.h"
#include "experiment/sweep.h"
#include "util/csv.h"
#include "util/fault_injection.h"

namespace wsnlink::experiment {
namespace {

std::vector<core::StackConfig> SmallConfigSet() {
  std::vector<core::StackConfig> configs;
  for (const int level : {11, 19, 31}) {
    core::StackConfig config;
    config.distance_m = 25.0;
    config.pa_level = level;
    config.max_tries = 3;
    config.queue_capacity = 5;
    config.pkt_interval_ms = 50.0;
    config.payload_bytes = 80;
    configs.push_back(config);
  }
  return configs;
}

TEST(Sweep, ResultsParallelInputOrder) {
  SweepOptions options;
  options.packet_count = 100;
  const auto points = RunSweep(SmallConfigSet(), options);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].config.pa_level, 11);
  EXPECT_EQ(points[2].config.pa_level, 31);
  // Higher power -> higher SNR.
  EXPECT_LT(points[0].mean_snr_db, points[2].mean_snr_db);
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  SweepOptions serial;
  serial.packet_count = 100;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.packet_count = 100;
  parallel.threads = 4;

  const auto a = RunSweep(SmallConfigSet(), serial);
  const auto b = RunSweep(SmallConfigSet(), parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].measured.goodput_kbps, b[i].measured.goodput_kbps);
    EXPECT_DOUBLE_EQ(a[i].measured.per, b[i].measured.per);
    EXPECT_EQ(a[i].measured.delivered_unique, b[i].measured.delivered_unique);
  }
}

TEST(Sweep, ProgressCallbackReachesTotal) {
  SweepOptions options;
  options.packet_count = 50;
  options.threads = 2;
  std::atomic<std::size_t> last{0};
  options.progress = [&last](std::size_t done, std::size_t total) {
    EXPECT_LE(done, total);
    std::size_t prev = last.load();
    while (done > prev && !last.compare_exchange_weak(prev, done)) {
    }
  };
  const auto points = RunSweep(SmallConfigSet(), options);
  EXPECT_EQ(last.load(), points.size());
}

TEST(Sweep, RawVariantReturnsFullResults) {
  SweepOptions options;
  options.packet_count = 60;
  const auto results = RunSweepRaw(SmallConfigSet(), options);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_EQ(r.generated, 60);
    EXPECT_EQ(r.log.Packets().size(), 60u);
    EXPECT_FALSE(r.log.Attempts().empty());
  }
  // Raw and metric sweeps are seeded identically per index.
  const auto points = RunSweep(SmallConfigSet(), options);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(points[i].measured.delivered_unique,
              results[i].unique_delivered);
  }
}

TEST(Sweep, SeedsDifferPerIndex) {
  EXPECT_NE(SweepSeed(1, 0), SweepSeed(1, 1));
  EXPECT_NE(SweepSeed(1, 0), SweepSeed(2, 0));
  EXPECT_EQ(SweepSeed(5, 3), SweepSeed(5, 3));
}

TEST(Dataset, SummaryRoundTrip) {
  SweepOptions options;
  options.packet_count = 80;
  const auto points = RunSweep(SmallConfigSet(), options);

  const auto path =
      (std::filesystem::temp_directory_path() / "wsn_summary.csv").string();
  WriteSummaryCsv(path, points);
  const auto loaded = ReadSummaryCsv(path);
  ASSERT_EQ(loaded.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(loaded[i].config.pa_level, points[i].config.pa_level);
    EXPECT_NEAR(loaded[i].measured.goodput_kbps,
                points[i].measured.goodput_kbps, 1e-4);
    EXPECT_NEAR(loaded[i].measured.per, points[i].measured.per, 1e-5);
    EXPECT_EQ(loaded[i].measured.delivered_unique,
              points[i].measured.delivered_unique);
  }
  std::filesystem::remove(path);
}

TEST(Dataset, PacketLogCsvHasRowPerPacket) {
  node::SimulationOptions options;
  options.config = SmallConfigSet()[0];
  options.packet_count = 60;
  options.seed = 4;
  const auto result = node::RunLinkSimulation(options);

  const auto path =
      (std::filesystem::temp_directory_path() / "wsn_packets.csv").string();
  WritePacketLogCsv(path, result.log);
  const auto data = util::ReadCsv(path);
  EXPECT_EQ(data.rows.size(), 60u);
  EXPECT_EQ(data.headers, PacketCsvHeaders());
  // Tries column sane.
  const auto tries = data.NumericColumn("tries");
  for (const double t : tries) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 3.0);
  }
  std::filesystem::remove(path);
}

TEST(Campaign, StridedSubsampleRunsAndWritesCsv) {
  CampaignOptions options;
  options.packet_count = 30;
  options.stride = 1400;  // 48384 / 1400 -> ~35 configs
  options.summary_csv_path =
      (std::filesystem::temp_directory_path() / "wsn_campaign.csv").string();
  const auto result = RunCampaign(options);
  EXPECT_GT(result.configurations, 30u);
  EXPECT_LT(result.configurations, 40u);
  EXPECT_EQ(result.total_packets, result.configurations * 30u);

  const auto loaded = ReadSummaryCsv(options.summary_csv_path);
  EXPECT_EQ(loaded.size(), result.configurations);
  std::filesystem::remove(options.summary_csv_path);
}

TEST(Campaign, InvalidStrideRejected) {
  CampaignOptions options;
  options.stride = 0;
  EXPECT_THROW((void)RunCampaign(options), std::invalid_argument);
}

TEST(Campaign, InvalidCheckpointIntervalRejected) {
  CampaignOptions options;
  options.checkpoint_every = 0;
  EXPECT_THROW((void)RunCampaign(options), std::invalid_argument);
}

TEST(FaultInjection, ThrowingWorkerMarksOnlyThatPointFailed) {
  util::ScopedFaultInjection injection;
  injection->FailNth("sweep.worker", 1);  // second config's worker throws

  SweepOptions options;
  options.packet_count = 50;
  options.threads = 1;  // serial => site ordinals follow config order
  const auto points = RunSweep(SmallConfigSet(), options);
  ASSERT_EQ(points.size(), 3u);

  EXPECT_FALSE(points[0].failed);
  EXPECT_TRUE(points[1].failed);
  EXPECT_FALSE(points[2].failed);
  // The failed point carries a structured error and zeroed metrics but
  // keeps its config; its neighbours are untouched.
  EXPECT_NE(points[1].error.find("sweep.worker"), std::string::npos);
  EXPECT_EQ(points[1].measured.delivered_unique, 0u);
  EXPECT_EQ(points[1].config.pa_level, 19);
  EXPECT_GT(points[0].measured.delivered_unique, 0u);
}

TEST(FaultInjection, CampaignCountsFailuresAndWritesErrorRecords) {
  util::ScopedFaultInjection injection;
  injection->FailNth("sweep.worker", 0);

  CampaignOptions options;
  options.packet_count = 20;
  options.stride = 4000;  // ~13 configs
  options.threads = 1;
  options.summary_csv_path =
      (std::filesystem::temp_directory_path() / "wsn_faulted.csv").string();
  const auto result = RunCampaign(options);

  EXPECT_EQ(result.configs_failed, 1u);
  // The failure is visible in the campaign counter roll-up...
  bool found = false;
  for (const auto& sample : result.counters) {
    if (sample.name == "campaign.configs_failed") {
      found = true;
      EXPECT_EQ(sample.value, 1u);
    }
  }
  EXPECT_TRUE(found);
  // ...and as a structured record next to the summary CSV.
  const std::string errors_path = options.summary_csv_path + ".errors.csv";
  ASSERT_TRUE(std::filesystem::exists(errors_path));
  const auto records = util::ReadCsv(errors_path);
  ASSERT_EQ(records.rows.size(), 1u);
  EXPECT_EQ(records.rows[0][0], "0");
  EXPECT_NE(records.rows[0][1].find("sweep.worker"), std::string::npos);

  std::filesystem::remove(options.summary_csv_path);
  std::filesystem::remove(errors_path);
}

TEST(FaultInjection, SummaryCsvWriteFailureThrowsWithPath) {
  util::ScopedFaultInjection injection;
  injection->FailAfter("csv.write", 0);  // disk full from the first write

  SweepOptions sweep;
  sweep.packet_count = 30;
  const auto points = RunSweep(SmallConfigSet(), sweep);
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsn_enospc.csv").string();
  try {
    WriteSummaryCsv(path, points);
    FAIL() << "silently truncated summary CSV";
  } catch (const std::runtime_error& e) {
    // The error must name the file so a campaign log points at the bad
    // volume, not just "write failed".
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace wsnlink::experiment
