// Tests for the sweep driver, dataset export and campaign.
#include <gtest/gtest.h>

#include <filesystem>

#include "experiment/campaign.h"
#include "experiment/dataset.h"
#include "experiment/sweep.h"
#include "util/csv.h"

namespace wsnlink::experiment {
namespace {

std::vector<core::StackConfig> SmallConfigSet() {
  std::vector<core::StackConfig> configs;
  for (const int level : {11, 19, 31}) {
    core::StackConfig config;
    config.distance_m = 25.0;
    config.pa_level = level;
    config.max_tries = 3;
    config.queue_capacity = 5;
    config.pkt_interval_ms = 50.0;
    config.payload_bytes = 80;
    configs.push_back(config);
  }
  return configs;
}

TEST(Sweep, ResultsParallelInputOrder) {
  SweepOptions options;
  options.packet_count = 100;
  const auto points = RunSweep(SmallConfigSet(), options);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].config.pa_level, 11);
  EXPECT_EQ(points[2].config.pa_level, 31);
  // Higher power -> higher SNR.
  EXPECT_LT(points[0].mean_snr_db, points[2].mean_snr_db);
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  SweepOptions serial;
  serial.packet_count = 100;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.packet_count = 100;
  parallel.threads = 4;

  const auto a = RunSweep(SmallConfigSet(), serial);
  const auto b = RunSweep(SmallConfigSet(), parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].measured.goodput_kbps, b[i].measured.goodput_kbps);
    EXPECT_DOUBLE_EQ(a[i].measured.per, b[i].measured.per);
    EXPECT_EQ(a[i].measured.delivered_unique, b[i].measured.delivered_unique);
  }
}

TEST(Sweep, ProgressCallbackReachesTotal) {
  SweepOptions options;
  options.packet_count = 50;
  options.threads = 2;
  std::atomic<std::size_t> last{0};
  options.progress = [&last](std::size_t done, std::size_t total) {
    EXPECT_LE(done, total);
    std::size_t prev = last.load();
    while (done > prev && !last.compare_exchange_weak(prev, done)) {
    }
  };
  const auto points = RunSweep(SmallConfigSet(), options);
  EXPECT_EQ(last.load(), points.size());
}

TEST(Sweep, RawVariantReturnsFullResults) {
  SweepOptions options;
  options.packet_count = 60;
  const auto results = RunSweepRaw(SmallConfigSet(), options);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_EQ(r.generated, 60);
    EXPECT_EQ(r.log.Packets().size(), 60u);
    EXPECT_FALSE(r.log.Attempts().empty());
  }
  // Raw and metric sweeps are seeded identically per index.
  const auto points = RunSweep(SmallConfigSet(), options);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(points[i].measured.delivered_unique,
              results[i].unique_delivered);
  }
}

TEST(Sweep, SeedsDifferPerIndex) {
  EXPECT_NE(SweepSeed(1, 0), SweepSeed(1, 1));
  EXPECT_NE(SweepSeed(1, 0), SweepSeed(2, 0));
  EXPECT_EQ(SweepSeed(5, 3), SweepSeed(5, 3));
}

TEST(Dataset, SummaryRoundTrip) {
  SweepOptions options;
  options.packet_count = 80;
  const auto points = RunSweep(SmallConfigSet(), options);

  const auto path =
      (std::filesystem::temp_directory_path() / "wsn_summary.csv").string();
  WriteSummaryCsv(path, points);
  const auto loaded = ReadSummaryCsv(path);
  ASSERT_EQ(loaded.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(loaded[i].config.pa_level, points[i].config.pa_level);
    EXPECT_NEAR(loaded[i].measured.goodput_kbps,
                points[i].measured.goodput_kbps, 1e-4);
    EXPECT_NEAR(loaded[i].measured.per, points[i].measured.per, 1e-5);
    EXPECT_EQ(loaded[i].measured.delivered_unique,
              points[i].measured.delivered_unique);
  }
  std::filesystem::remove(path);
}

TEST(Dataset, PacketLogCsvHasRowPerPacket) {
  node::SimulationOptions options;
  options.config = SmallConfigSet()[0];
  options.packet_count = 60;
  options.seed = 4;
  const auto result = node::RunLinkSimulation(options);

  const auto path =
      (std::filesystem::temp_directory_path() / "wsn_packets.csv").string();
  WritePacketLogCsv(path, result.log);
  const auto data = util::ReadCsv(path);
  EXPECT_EQ(data.rows.size(), 60u);
  EXPECT_EQ(data.headers, PacketCsvHeaders());
  // Tries column sane.
  const auto tries = data.NumericColumn("tries");
  for (const double t : tries) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 3.0);
  }
  std::filesystem::remove(path);
}

TEST(Campaign, StridedSubsampleRunsAndWritesCsv) {
  CampaignOptions options;
  options.packet_count = 30;
  options.stride = 1400;  // 48384 / 1400 -> ~35 configs
  options.summary_csv_path =
      (std::filesystem::temp_directory_path() / "wsn_campaign.csv").string();
  const auto result = RunCampaign(options);
  EXPECT_GT(result.configurations, 30u);
  EXPECT_LT(result.configurations, 40u);
  EXPECT_EQ(result.total_packets, result.configurations * 30u);

  const auto loaded = ReadSummaryCsv(options.summary_csv_path);
  EXPECT_EQ(loaded.size(), result.configurations);
  std::filesystem::remove(options.summary_csv_path);
}

TEST(Campaign, InvalidStrideRejected) {
  CampaignOptions options;
  options.stride = 0;
  EXPECT_THROW((void)RunCampaign(options), std::invalid_argument);
}

}  // namespace
}  // namespace wsnlink::experiment
