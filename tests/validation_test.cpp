// Tests for model validation and campaign analysis.
#include <gtest/gtest.h>

#include "core/models/validation.h"
#include "experiment/analysis.h"
#include "experiment/sweep.h"

namespace wsnlink {
namespace {

/// Sweep a small slice of the space for validation fodder.
std::vector<experiment::SweepPoint> SmallSweep() {
  std::vector<core::StackConfig> configs;
  for (const int level : {7, 11, 15, 19, 23, 31}) {
    for (const int payload : {20, 80, 110}) {
      core::StackConfig config;
      config.distance_m = 35.0;
      config.pa_level = level;
      config.max_tries = 3;
      config.queue_capacity = 10;
      config.pkt_interval_ms = 80.0;
      config.payload_bytes = payload;
      configs.push_back(config);
    }
  }
  experiment::SweepOptions options;
  options.packet_count = 300;
  options.base_seed = 99;
  return experiment::RunSweep(configs, options);
}

TEST(Validation, SamplesCarrySweepData) {
  const auto points = SmallSweep();
  const auto samples = experiment::ToValidationSamples(points);
  ASSERT_EQ(samples.size(), points.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].config.pa_level, points[i].config.pa_level);
    EXPECT_DOUBLE_EQ(samples[i].measured_per, points[i].measured.per);
    EXPECT_EQ(samples[i].has_energy,
              points[i].measured.delivered_unique > 0);
  }
}

TEST(Validation, ModelsTrackMeasurementsOnValidRegion) {
  const auto points = SmallSweep();
  const auto samples = experiment::ToValidationSamples(points);
  const auto report =
      core::models::ValidateModels(core::models::ModelSet(), samples);

  // Sanity: the validity filter kept a useful share of the sweep.
  EXPECT_GT(report.per.samples, 8u);
  // The calibrated channel was built to match Eq. 3: PER RMSE within a few
  // points, service time within ~15% relative.
  EXPECT_LT(report.per.rmse, 0.10);
  EXPECT_LT(report.service_time.mean_relative_error, 0.20);
  EXPECT_LT(report.utilization.mean_relative_error, 0.20);
  // Energy relative error modest on the delivering configs.
  EXPECT_LT(report.energy.mean_relative_error, 0.30);
}

TEST(Validation, SnrWindowFiltersSamples) {
  const auto points = SmallSweep();
  const auto samples = experiment::ToValidationSamples(points);
  const auto narrow = core::models::ValidateModels(
      core::models::ModelSet(), samples, 15.0, 20.0);
  const auto wide = core::models::ValidateModels(
      core::models::ModelSet(), samples, 0.0, 40.0);
  EXPECT_LT(narrow.per.samples, wide.per.samples);
}

TEST(Validation, ReportRendersEveryModelRow) {
  const auto points = SmallSweep();
  const auto report = core::models::ValidateModels(
      core::models::ModelSet(), experiment::ToValidationSamples(points));
  const auto text = report.ToString();
  for (const char* token :
       {"PER", "T_service", "U_eng", "PLR_radio", "utilization"}) {
    EXPECT_NE(text.find(token), std::string::npos) << token;
  }
}

TEST(Analysis, ZoneSummaryPartitionsAllConfigs) {
  const auto points = SmallSweep();
  const auto zones = experiment::SummariseByZone(points);
  ASSERT_EQ(zones.size(), 4u);
  std::size_t total = 0;
  for (const auto& z : zones) total += z.configs;
  EXPECT_EQ(total, points.size());
}

TEST(Analysis, ZonesShowThePaperGradient) {
  const auto points = SmallSweep();
  const auto zones = experiment::SummariseByZone(points);
  // zones: [dead, high, medium, low]
  const auto& high = zones[1];
  const auto& low = zones[3];
  ASSERT_GT(high.configs, 0u);
  ASSERT_GT(low.configs, 0u);
  EXPECT_GT(high.mean_per, low.mean_per);
  EXPECT_GT(high.mean_plr_total, low.mean_plr_total);
  EXPECT_LT(high.mean_goodput_kbps, low.mean_goodput_kbps + 1e-9);
}

TEST(Analysis, ZoneTableRenders) {
  const auto zones = experiment::SummariseByZone(SmallSweep());
  const auto text = experiment::ZoneTable(zones);
  EXPECT_NE(text.find("dead"), std::string::npos);
  EXPECT_NE(text.find("medium"), std::string::npos);
}

}  // namespace
}  // namespace wsnlink
