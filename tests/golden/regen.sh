#!/usr/bin/env sh
# Regenerates tests/golden/campaign_summary.csv and serve_responses.txt
# after an *intentional* behaviour change (channel calibration, MAC
# timing, metric definitions, serve protocol/response schema).
#
# The files are byte-compared by Golden.CampaignSummaryCsvMatchesCheckedInFile
# and ServeGolden.TraceResponsesMatchCheckedInFile, so never refresh them
# to silence a failing test without understanding why the numbers moved —
# review the diff like any other calibration change. A serve-response
# change that affects answers also needs a kServeVersionTag bump
# (src/serve/protocol.h) so stale persisted caches invalidate.
#
# The workload mirrors GoldenCampaignOptions() in tests/golden_test.cpp:
# an 8-configuration stride through the 48,384-point Table I space
# (48384 / 8 + 1 = 6049), 60 packets each, base seed 20150629. The thread
# count does not affect the output (the determinism suite pins that), so
# any worker count regenerates the same bytes.
#
# Usage:  tests/golden/regen.sh   [BUILD_DIR=/path/to/build]
set -eu

ROOT=$(CDPATH='' cd -- "$(dirname -- "$0")/../.." && pwd)
BUILD=${BUILD_DIR:-"$ROOT/build"}
GOLDEN="$ROOT/tests/golden/campaign_summary.csv"

if [ ! -d "$BUILD" ]; then
  echo "regen.sh: build directory $BUILD not found (set BUILD_DIR)" >&2
  exit 2
fi

cmake --build "$BUILD" --target run_campaign
"$BUILD/examples/run_campaign" \
  --stride 6049 --packets 60 --seed 20150629 --threads 2 \
  --out "$GOLDEN"

# Serve golden: replay the fixed request trace through an in-process
# QueryService (no socket, no cache file) and freeze the response bytes.
SERVE_GOLDEN="$ROOT/tests/golden/serve_responses.txt"
cmake --build "$BUILD" --target wsnlink_client
"$BUILD/examples/wsnlink_client" --inprocess \
  --trace "$ROOT/tests/golden/serve_trace.txt" \
  --out "$SERVE_GOLDEN"

echo
git -C "$ROOT" --no-pager diff --stat -- "$GOLDEN" "$SERVE_GOLDEN" || true
echo "regen.sh: wrote $GOLDEN and $SERVE_GOLDEN — review the diff, then commit deliberately."
