#!/usr/bin/env sh
# Regenerates tests/golden/campaign_summary.csv after an *intentional*
# behaviour change (channel calibration, MAC timing, metric definitions).
#
# The file is byte-compared by Golden.CampaignSummaryCsvMatchesCheckedInFile,
# so never refresh it to silence a failing test without understanding why
# the numbers moved — review the diff like any other calibration change.
#
# The workload mirrors GoldenCampaignOptions() in tests/golden_test.cpp:
# an 8-configuration stride through the 48,384-point Table I space
# (48384 / 8 + 1 = 6049), 60 packets each, base seed 20150629. The thread
# count does not affect the output (the determinism suite pins that), so
# any worker count regenerates the same bytes.
#
# Usage:  tests/golden/regen.sh   [BUILD_DIR=/path/to/build]
set -eu

ROOT=$(CDPATH='' cd -- "$(dirname -- "$0")/../.." && pwd)
BUILD=${BUILD_DIR:-"$ROOT/build"}
GOLDEN="$ROOT/tests/golden/campaign_summary.csv"

if [ ! -d "$BUILD" ]; then
  echo "regen.sh: build directory $BUILD not found (set BUILD_DIR)" >&2
  exit 2
fi

cmake --build "$BUILD" --target run_campaign
"$BUILD/examples/run_campaign" \
  --stride 6049 --packets 60 --seed 20150629 --threads 2 \
  --out "$GOLDEN"

echo
git -C "$ROOT" --no-pager diff --stat -- "$GOLDEN" || true
echo "regen.sh: wrote $GOLDEN — review the diff, then commit deliberately."
