// Gap-coverage tests: listen-energy accounting, attempt CSV schema, Derive
// overloads, edge cases collected across modules.
#include <gtest/gtest.h>

#include <filesystem>

#include "channel/ber.h"
#include "experiment/dataset.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "phy/timing.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace wsnlink {
namespace {

// --------------------------------------------------- listen energy ----

TEST(ListenEnergy, PerPacketListenTimeMatchesComponents) {
  // Clean link, N=1: listen time = backoff + turnaround + T_ACK exactly.
  node::SimulationOptions options;
  options.config.distance_m = 5.0;
  options.config.pa_level = 31;
  options.config.max_tries = 1;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 100.0;
  options.config.payload_bytes = 40;
  options.packet_count = 100;
  options.seed = 90;
  options.disable_interference = true;
  const auto result = node::RunLinkSimulation(options);

  for (const auto& p : result.log.Packets()) {
    ASSERT_TRUE(p.acked);
    const auto fixed = phy::kTurnaroundTime + phy::kAckTime;
    EXPECT_GE(p.listen_time, fixed);
    EXPECT_LE(p.listen_time, fixed + phy::kInitialBackoffMax);
  }
}

TEST(ListenEnergy, MetricsExposeListenPerBit) {
  node::SimulationOptions options;
  options.config.distance_m = 10.0;
  options.config.pa_level = 31;
  options.config.max_tries = 3;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 100.0;
  options.config.payload_bytes = 80;
  options.packet_count = 200;
  options.seed = 91;
  const auto m = metrics::MeasureConfig(options);
  // ~12 ms listen at 56.4 mW for 640 delivered bits ~= 1.0-1.2 uJ/bit:
  // larger than the transmit term, the classic idle-listening lesson.
  EXPECT_GT(m.sender_listen_uj_per_bit, 0.5);
  EXPECT_LT(m.sender_listen_uj_per_bit, 3.0);
  EXPECT_GT(m.sender_listen_uj_per_bit, m.energy_uj_per_bit);
  // Always-on receiver: full RX power.
  EXPECT_NEAR(m.receiver_idle_power_mw, 56.4, 1e-9);
}

TEST(ListenEnergy, RetriesIncreaseListenTime) {
  node::SimulationOptions options;
  options.config.distance_m = 35.0;
  options.config.pa_level = 11;
  options.config.max_tries = 8;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 100.0;
  options.config.payload_bytes = 110;
  options.packet_count = 400;
  options.seed = 92;
  const auto result = node::RunLinkSimulation(options);

  double listen_1try = 0.0;
  int n1 = 0;
  double listen_multi = 0.0;
  int nm = 0;
  for (const auto& p : result.log.Packets()) {
    if (p.dropped_at_queue || !p.acked) continue;
    if (p.tries == 1) {
      listen_1try += static_cast<double>(p.listen_time);
      ++n1;
    } else {
      listen_multi += static_cast<double>(p.listen_time);
      ++nm;
    }
  }
  ASSERT_GT(n1, 10);
  ASSERT_GT(nm, 10);
  EXPECT_GT(listen_multi / nm, 1.5 * listen_1try / n1);
}

// ----------------------------------------------------- attempt CSV ----

TEST(Dataset, AttemptLogCsvRoundTrip) {
  node::SimulationOptions options;
  options.config.distance_m = 30.0;
  options.config.pa_level = 11;
  options.config.max_tries = 3;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 50.0;
  options.config.payload_bytes = 80;
  options.packet_count = 80;
  options.seed = 93;
  const auto result = node::RunLinkSimulation(options);

  const auto path =
      (std::filesystem::temp_directory_path() / "wsn_attempts.csv").string();
  experiment::WriteAttemptLogCsv(path, result.log);
  const auto loaded = experiment::ReadAttemptLogCsv(path);
  ASSERT_EQ(loaded.size(), result.log.Attempts().size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].packet_id, result.log.Attempts()[i].packet_id);
    EXPECT_EQ(loaded[i].acked, result.log.Attempts()[i].acked);
    EXPECT_NEAR(loaded[i].snr_db, result.log.Attempts()[i].snr_db, 1e-4);
  }
  std::filesystem::remove(path);
}

// ------------------------------------------------------------ misc ----

TEST(Rng, NumericDeriveOverloadIndependent) {
  util::Rng root(5);
  util::Rng a = root.Derive(std::uint64_t{1});
  util::Rng b = root.Derive(std::uint64_t{2});
  EXPECT_NE(a(), b());
  // Deterministic.
  util::Rng a2 = util::Rng(5).Derive(std::uint64_t{1});
  EXPECT_EQ(util::Rng(5).Derive(std::uint64_t{1})(), a2());
}

TEST(Timing, NegativeMillisecondsRound) {
  EXPECT_EQ(sim::FromMilliseconds(-1.5), -1500);
}

TEST(Ber, ModelNamesDistinct) {
  EXPECT_EQ(channel::AnalyticOQpskBer().Name(), "analytic-oqpsk");
  EXPECT_EQ(channel::CalibratedExponentialBer().Name(), "calibrated-exp");
  EXPECT_EQ(channel::MakeDefaultBerModel()->Name(), "calibrated-exp");
}

TEST(Histogram, AsciiRendersBars) {
  util::Histogram h(0.0, 3.0, 3);
  h.Add(0.5, 10);
  h.Add(1.5, 5);
  const auto art = h.ToAscii(20);
  // The fuller bin renders a longer bar.
  const auto first_bar = art.find("####################");
  EXPECT_NE(first_bar, std::string::npos);
  EXPECT_NE(art.find(" 10\n"), std::string::npos);
  EXPECT_NE(art.find(" 5\n"), std::string::npos);
}

}  // namespace
}  // namespace wsnlink
