// Locks the wsnlint rule engine (tools/wsnlint) three ways:
//
//  1. Golden: linting the tests/lint_fixtures corpus (one bad + one clean
//     file per rule, plus allow-directive abuse) must reproduce
//     expected.golden byte-for-byte — rule ids, line numbers, messages and
//     sort order are all load-bearing for the CI gate.
//  2. Fix: --fix inserts a missing #pragma once after the leading comment
//     block, resolves the finding, and is idempotent.
//  3. Mutation: the seeded mutations from the acceptance criteria
//     (std::rand() in src/sim/, an unordered_map loop in a CSV writer)
//     must be detected, and the real repo must lint clean — so CI fails
//     if either mutation lands in the tree.
#include "rules.h"
#include "runner.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace {

using wsnlint::ApplyFixes;
using wsnlint::CheckSource;
using wsnlint::Finding;
using analysis::FormatFindings;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) return true;
  }
  return false;
}

TEST(Lint, FixtureCorpusMatchesGolden) {
  wsnlint::Options options;
  options.root = WSNLINK_LINT_FIXTURES_DIR;
  options.paths = {"src", "bench"};
  const wsnlint::RunResult result = wsnlint::Run(options);
  const std::string expected =
      ReadFile(std::string(WSNLINK_LINT_FIXTURES_DIR) + "/expected.golden");
  EXPECT_EQ(FormatFindings(result.findings), expected);
}

TEST(Lint, RepoLintsClean) {
  // The whole working tree must stay finding-free; every sanctioned
  // exception is a wsnlint:allow with a justification, which suppresses
  // its finding (and is itself checked for staleness).
  wsnlint::Options options;
  options.root = WSNLINK_SOURCE_DIR;
  const wsnlint::RunResult result = wsnlint::Run(options);
  EXPECT_EQ(FormatFindings(result.findings), "");
  EXPECT_GT(result.files_scanned, 200);  // really scanned the tree
}

TEST(Lint, FixInsertsPragmaOnceAfterCommentBlock) {
  const std::string bad_header =
      ReadFile(std::string(WSNLINK_LINT_FIXTURES_DIR) + "/src/bad_header.h");
  ASSERT_TRUE(HasRule(CheckSource("src/bad_header.h", bad_header),
                      "header-hygiene"));

  const std::string fixed = ApplyFixes("src/bad_header.h", bad_header);
  EXPECT_NE(fixed, bad_header);
  EXPECT_NE(fixed.find("#pragma once"), std::string::npos);
  // Inserted after the leading comment block, not at byte zero.
  EXPECT_EQ(fixed.rfind("// Fixture", 0), 0u);
  // The pragma finding is resolved (the using-namespace one remains).
  bool pragma_finding = false;
  for (const Finding& f : CheckSource("src/bad_header.h", fixed)) {
    if (f.message.find("#pragma once") != std::string::npos) {
      pragma_finding = true;
    }
  }
  EXPECT_FALSE(pragma_finding);
}

TEST(Lint, FixIsIdempotent) {
  const std::string bad_header =
      ReadFile(std::string(WSNLINK_LINT_FIXTURES_DIR) + "/src/bad_header.h");
  const std::string once = ApplyFixes("src/bad_header.h", bad_header);
  const std::string twice = ApplyFixes("src/bad_header.h", once);
  EXPECT_EQ(once, twice);

  // Already-clean files are returned byte-identical.
  const std::string clean_header =
      ReadFile(std::string(WSNLINK_LINT_FIXTURES_DIR) + "/src/clean_header.h");
  EXPECT_EQ(ApplyFixes("src/clean_header.h", clean_header), clean_header);
}

TEST(Lint, MutationStdRandInSimIsDetected) {
  const std::string mutated =
      "#include \"sim/simulator.h\"\n"
      "#include <cstdlib>\n"
      "int Jitter() { return std::rand() % 7; }\n";
  EXPECT_TRUE(HasRule(CheckSource("src/sim/simulator.cpp", mutated),
                      "no-wallclock"));
}

TEST(Lint, MutationUnorderedLoopInCsvWriterIsDetected) {
  const std::string mutated =
      "#include \"util/csv.h\"\n"
      "#include <unordered_map>\n"
      "void Dump(wsnlink::util::CsvWriter& w,\n"
      "          const std::unordered_map<int, int>& m) {\n"
      "  for (const auto& [k, v] : m) w.WriteRow({});\n"
      "}\n";
  EXPECT_TRUE(HasRule(CheckSource("src/util/csv.cpp", mutated),
                      "no-unordered-output"));
}

TEST(Lint, CommentsAndStringsAreNotCode) {
  const std::string content =
      "// std::rand() in a comment\n"
      "/* steady_clock in a block comment */\n"
      "const char* s = \"std::rand()\";\n"
      "const char* r = R\"(random_device)\";\n";
  EXPECT_TRUE(CheckSource("src/doc.cpp", content).empty());
}

TEST(Lint, DigitSeparatorIsNotACharLiteral) {
  // If 1'000'000 opened a char literal the scanner would blank the rest of
  // the line and the std::rand() on the next one.
  const std::string content =
      "long big = 1'000'000;\n"
      "int bad = std::rand();\n";
  EXPECT_TRUE(HasRule(CheckSource("src/sep.cpp", content), "no-wallclock"));
  EXPECT_FALSE(HasRule(CheckSource("src/sep.cpp", content), "no-float-eq"));
}

TEST(Lint, RuleScopingFollowsDirectories) {
  const std::string clock_user =
      "#include <chrono>\n"
      "double Now();\n";
  // Wall-clock reads are a src/-only contract: bench timing harnesses are
  // allowed to measure real time.
  EXPECT_TRUE(HasRule(CheckSource("src/phy/timing.cpp", clock_user),
                      "no-wallclock"));
  EXPECT_FALSE(HasRule(CheckSource("bench/perf_sweep.cpp", clock_user),
                       "no-wallclock"));

  // Raw parsing is legal only inside src/util/ (the validated parsers
  // themselves are implemented with it).
  const std::string parser = "int n = std::stoi(text);\n";
  EXPECT_FALSE(HasRule(CheckSource("src/util/args.cpp", parser),
                       "no-raw-parse"));
  EXPECT_TRUE(HasRule(CheckSource("src/experiment/sweep.cpp", parser),
                      "no-raw-parse"));
}

TEST(Lint, AllowDirectiveSuppressesAndIsChecked) {
  const std::string allowed =
      "// wsnlint:allow(no-naked-new): fixture-scale arena, freed in Reset\n"
      "int* Make() { return new int[4]; }\n";
  EXPECT_TRUE(CheckSource("src/arena.cpp", allowed).empty());

  const std::string unjustified =
      "// wsnlint:allow(no-naked-new)\n"
      "int* Make() { return new int[4]; }\n";
  EXPECT_TRUE(HasRule(CheckSource("src/arena.cpp", unjustified),
                      "allow-directive"));

  const std::string stale =
      "// wsnlint:allow(no-naked-new): nothing here actually allocates\n"
      "int Make() { return 4; }\n";
  EXPECT_TRUE(HasRule(CheckSource("src/arena.cpp", stale),
                      "allow-directive"));
}

TEST(Lint, FixtureDirsAreExcludedFromTreeScans) {
  EXPECT_TRUE(wsnlint::IsExcluded("tests/lint_fixtures/src/bad_header.h"));
  EXPECT_TRUE(wsnlint::IsExcluded("tests/golden/contention_n1.csv"));
  EXPECT_TRUE(wsnlint::IsExcluded("build/foo.cpp"));
  EXPECT_FALSE(wsnlint::IsExcluded("tests/lint_test.cpp"));
  EXPECT_FALSE(wsnlint::IsExcluded("src/sim/simulator.cpp"));
}

}  // namespace
