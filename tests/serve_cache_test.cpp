// Cache integrity drills for the tuning service's persistent result store.
//
// The contract under test (docs/SERVING.md):
//  * round trip: Save then Load restores every entry byte-exactly;
//  * damage containment: one flipped byte costs exactly the damaged entry
//    (a recompute), never the whole cache and never a corrupt answer;
//  * torn writes: the cache persists through the same instrumented
//    atomic writer as campaign checkpoints ("checkpoint.write" fault
//    site), so an injected failure leaves the previous file intact;
//  * invalidation: a version-tag mismatch discards the file wholesale;
//  * warm start: a restarted QueryService answers from disk with the
//    exact bytes the cold computation produced.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "experiment/checkpoint.h"
#include "serve/query_service.h"
#include "serve/result_cache.h"
#include "util/fault_injection.h"

namespace wsnlink {
namespace {

using serve::CacheLoadReport;
using serve::QueryService;
using serve::ResultCache;
using serve::ServiceOptions;

constexpr const char* kTag = "wsnlink-servecache-test-v1";

std::string TempPath(const char* name) {
  return testing::TempDir() + "/wsnlink_" + name + ".cache";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << contents;
}

// ResultCache owns a mutex (immovable), so helpers fill one in place.
void FillEntries(ResultCache& cache, int count) {
  for (int i = 0; i < count; ++i) {
    cache.Store("key|" + std::to_string(i),
                "{\"status\":\"ok\",\"value\":" + std::to_string(i * 10) +
                    "}");
  }
}

void SaveCacheWithEntries(int count, const std::string& path) {
  ResultCache cache(kTag);
  FillEntries(cache, count);
  cache.Save(path);
}

TEST(ServeCache, SaveLoadRoundTripIsExact) {
  const std::string path = TempPath("roundtrip");
  SaveCacheWithEntries(5, path);
  ResultCache loaded(kTag);
  const CacheLoadReport report = loaded.Load(path);
  EXPECT_EQ(report.loaded, 5u);
  EXPECT_EQ(report.corrupt_dropped, 0u);
  EXPECT_FALSE(report.salvaged);
  EXPECT_FALSE(report.invalidated);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(loaded.Lookup("key|" + std::to_string(i)),
              "{\"status\":\"ok\",\"value\":" + std::to_string(i * 10) + "}");
  }
  std::remove(path.c_str());
}

TEST(ServeCache, MissingFileIsColdStartNotError) {
  ResultCache cache(kTag);
  const CacheLoadReport report = cache.Load(TempPath("does_not_exist"));
  EXPECT_TRUE(report.missing);
  EXPECT_EQ(report.loaded, 0u);
  EXPECT_EQ(cache.Size(), 0u);
}

TEST(ServeCache, SingleFlippedByteDropsOnlyTheDamagedEntry) {
  const std::string path = TempPath("byteflip");
  SaveCacheWithEntries(4, path);

  std::string contents = ReadFile(path);
  // Flip one byte inside entry 2's payload ("value\":20" -> "value\":2z").
  const std::size_t pos = contents.find("\"value\":20");
  ASSERT_NE(pos, std::string::npos);
  contents[pos + 9] = 'z';
  WriteFile(path, contents);

  ResultCache loaded(kTag);
  const CacheLoadReport report = loaded.Load(path);
  EXPECT_TRUE(report.salvaged);  // whole-file checksum no longer matches
  EXPECT_EQ(report.loaded, 3u);
  EXPECT_EQ(report.corrupt_dropped, 1u);

  // Undamaged entries answer; the damaged one is a miss (a recompute),
  // never a corrupt payload.
  EXPECT_EQ(loaded.Lookup("key|2"), "");
  EXPECT_EQ(loaded.Lookup("key|0"), "{\"status\":\"ok\",\"value\":0}");
  EXPECT_EQ(loaded.Lookup("key|3"), "{\"status\":\"ok\",\"value\":30}");
  std::remove(path.c_str());
}

TEST(ServeCache, TruncatedTailSalvagesVerifyingEntries) {
  const std::string path = TempPath("truncated");
  SaveCacheWithEntries(4, path);

  std::string contents = ReadFile(path);
  // Chop mid-way through the last entry line (simulates a torn append on
  // a filesystem without the atomic rename).
  contents.resize(contents.rfind("entry ") + 10);
  WriteFile(path, contents);

  ResultCache loaded(kTag);
  const CacheLoadReport report = loaded.Load(path);
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.loaded, 3u);
  EXPECT_GE(report.corrupt_dropped, 1u);
  EXPECT_EQ(loaded.Lookup("key|0"), "{\"status\":\"ok\",\"value\":0}");
  std::remove(path.c_str());
}

TEST(ServeCache, VersionTagMismatchDiscardsWholeFile) {
  const std::string path = TempPath("invalidate");
  SaveCacheWithEntries(3, path);

  ResultCache newer("wsnlink-servecache-test-v2");
  const CacheLoadReport report = newer.Load(path);
  EXPECT_TRUE(report.invalidated);
  EXPECT_EQ(report.loaded, 0u);
  EXPECT_EQ(newer.Size(), 0u);
  std::remove(path.c_str());
}

TEST(ServeCache, DamagedHeaderMeansColdStart) {
  const std::string path = TempPath("badheader");
  SaveCacheWithEntries(3, path);
  std::string contents = ReadFile(path);
  contents[0] = 'X';  // break the magic
  WriteFile(path, contents);

  ResultCache loaded(kTag);
  const CacheLoadReport report = loaded.Load(path);
  EXPECT_EQ(report.loaded, 0u);
  EXPECT_EQ(loaded.Size(), 0u);
  std::remove(path.c_str());
}

TEST(ServeCache, TornWriteLeavesPreviousFileIntact) {
  const std::string path = TempPath("tornwrite");
  ResultCache cache(kTag);
  FillEntries(cache, 2);
  cache.Save(path);
  const std::string before = ReadFile(path);

  cache.Store("key|extra", "{\"status\":\"ok\",\"value\":999}");
  {
    // The cache persists through the checkpoint writer, so the campaign
    // torn-write drill applies verbatim: fail the very next write.
    util::ScopedFaultInjection injection;
    injection->FailNth("checkpoint.write", 0);
    EXPECT_THROW(cache.Save(path), experiment::CheckpointError);
  }

  // Atomic publish: the failed write never touched the live file, and the
  // tmp file was cleaned up.
  EXPECT_EQ(ReadFile(path), before);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // The next save (fault cleared) succeeds and includes the new entry.
  cache.Save(path);
  ResultCache loaded(kTag);
  EXPECT_EQ(loaded.Load(path).loaded, 3u);
  EXPECT_EQ(loaded.Lookup("key|extra"), "{\"status\":\"ok\",\"value\":999}");
  std::remove(path.c_str());
}

TEST(ServeCache, StoreRejectsUnrepresentableKeysAndPayloads) {
  ResultCache cache(kTag);
  EXPECT_THROW(cache.Store("", "x"), std::invalid_argument);
  EXPECT_THROW(cache.Store("has space", "x"), std::invalid_argument);
  EXPECT_THROW(cache.Store("key", ""), std::invalid_argument);
  EXPECT_THROW(cache.Store("key", "two\nlines"), std::invalid_argument);

  // First writer wins; a duplicate store is a no-op, not an overwrite.
  cache.Store("key", "first");
  cache.Store("key", "second");
  EXPECT_EQ(cache.Lookup("key"), "first");
}

// ---------------------------------------------------------------------------
// Entry cap / FIFO eviction
// ---------------------------------------------------------------------------

TEST(ServeCache, CapEvictsOldestInsertedFirst) {
  ResultCache cache(kTag, /*max_entries=*/3);
  FillEntries(cache, 5);  // stores key|0 .. key|4 in order
  EXPECT_EQ(cache.Size(), 3u);
  EXPECT_EQ(cache.Evictions(), 2u);
  // FIFO: the two oldest stores are gone, the three newest answer.
  EXPECT_EQ(cache.Lookup("key|0"), "");
  EXPECT_EQ(cache.Lookup("key|1"), "");
  EXPECT_EQ(cache.Lookup("key|2"), "{\"status\":\"ok\",\"value\":20}");
  EXPECT_EQ(cache.Lookup("key|4"), "{\"status\":\"ok\",\"value\":40}");
}

TEST(ServeCache, DuplicateStoreDoesNotRefreshFifoPosition) {
  ResultCache cache(kTag, /*max_entries=*/3);
  FillEntries(cache, 3);  // order: key|0, key|1, key|2
  // A duplicate store of the oldest key is a no-op — it must NOT move
  // key|0 to the back (eviction is insertion order, never recency).
  cache.Store("key|0", "different-bytes");
  cache.Store("key|fresh", "{\"status\":\"ok\",\"value\":999}");
  EXPECT_EQ(cache.Lookup("key|0"), "");  // still the eviction victim
  EXPECT_EQ(cache.Lookup("key|1"), "{\"status\":\"ok\",\"value\":10}");
  EXPECT_EQ(cache.Lookup("key|fresh"), "{\"status\":\"ok\",\"value\":999}");
}

TEST(ServeCache, CappedSaveIsByteIdenticalToUncappedSurvivorSet) {
  // Warm-start byte identity must survive the cap: a capped cache's file
  // is exactly the file an uncapped cache holding the surviving set would
  // write — eviction removes whole entries, never perturbs survivors.
  const std::string capped_path = TempPath("capped");
  const std::string survivors_path = TempPath("survivors");
  {
    ResultCache capped(kTag, /*max_entries=*/2);
    FillEntries(capped, 5);  // survivors: key|3, key|4
    capped.Save(capped_path);
  }
  {
    ResultCache uncapped(kTag);
    uncapped.Store("key|3", "{\"status\":\"ok\",\"value\":30}");
    uncapped.Store("key|4", "{\"status\":\"ok\",\"value\":40}");
    uncapped.Save(survivors_path);
  }
  EXPECT_EQ(ReadFile(capped_path), ReadFile(survivors_path));
  std::remove(capped_path.c_str());
  std::remove(survivors_path.c_str());
}

TEST(ServeCache, LoadAppliesCapDeterministically) {
  const std::string path = TempPath("loadcap");
  SaveCacheWithEntries(5, path);  // key|0 .. key|4, serialized in key order

  ResultCache capped(kTag, /*max_entries=*/2);
  const CacheLoadReport report = capped.Load(path);
  // The cap keeps the last max_entries in key order — the file's own
  // deterministic entry order — and reports the intact-but-evicted rest.
  EXPECT_EQ(report.loaded, 2u);
  EXPECT_EQ(report.cap_evicted, 3u);
  EXPECT_EQ(report.corrupt_dropped, 0u);
  EXPECT_FALSE(report.salvaged);
  EXPECT_EQ(capped.Size(), 2u);
  EXPECT_EQ(capped.Lookup("key|3"), "{\"status\":\"ok\",\"value\":30}");
  EXPECT_EQ(capped.Lookup("key|4"), "{\"status\":\"ok\",\"value\":40}");
  EXPECT_EQ(capped.Lookup("key|0"), "");

  // Round trip under the cap: save the survivors, reload, same bytes.
  capped.Save(path);
  ResultCache reloaded(kTag, /*max_entries=*/2);
  const CacheLoadReport second = reloaded.Load(path);
  EXPECT_EQ(second.loaded, 2u);
  EXPECT_EQ(second.cap_evicted, 0u);
  EXPECT_EQ(reloaded.Lookup("key|4"), "{\"status\":\"ok\",\"value\":40}");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end through QueryService
// ---------------------------------------------------------------------------

constexpr const char* kWhatIfLine =
    "{\"verb\":\"what_if\",\"distance_m\":20,\"pa_level\":31,"
    "\"payload_bytes\":50,\"packets\":60,\"seed\":11}";

TEST(ServeCache, WarmStartedServiceAnswersFromDiskByteIdentical) {
  const std::string path = TempPath("warmstart");
  std::remove(path.c_str());

  ServiceOptions options;
  options.cache_path = path;
  std::string cold_answer;
  {
    QueryService service(options);
    cold_answer = service.Answer(kWhatIfLine);
    EXPECT_EQ(service.Stats().cache_misses, 1u);
  }  // dtor flushes

  QueryService warmed(options);
  EXPECT_EQ(warmed.Stats().warm_loaded, 1u);
  EXPECT_EQ(warmed.Answer(kWhatIfLine), cold_answer);
  const auto stats = warmed.Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.computed_what_if, 0u);
  std::remove(path.c_str());
}

TEST(ServeCache, ServiceHonorsCacheEntryCap) {
  constexpr const char* kOtherLine =
      "{\"verb\":\"what_if\",\"distance_m\":20,\"pa_level\":31,"
      "\"payload_bytes\":50,\"packets\":60,\"seed\":12}";

  ServiceOptions options;
  options.cache_max_entries = 1;
  QueryService service(options);

  const std::string first = service.Answer(kWhatIfLine);
  const std::string second = service.Answer(kOtherLine);
  EXPECT_EQ(service.Stats().cache_entries, 1u);

  // The first answer was evicted by the second; recomputing it lands on
  // the same bytes (answers are pure functions of the key).
  EXPECT_EQ(service.Answer(kWhatIfLine), first);
  const auto stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.computed_what_if, 3u);
  EXPECT_EQ(stats.cache_entries, 1u);

  // And a repeat of the most recent store is a genuine hit.
  EXPECT_EQ(service.Answer(kWhatIfLine), first);
  EXPECT_EQ(service.Stats().cache_hits, 1u);
  (void)second;
}

TEST(ServeCache, CorruptPersistedEntryMeansRecomputeNotCorruption) {
  const std::string path = TempPath("recompute");
  std::remove(path.c_str());

  ServiceOptions options;
  options.cache_path = path;
  std::string cold_answer;
  {
    QueryService service(options);
    cold_answer = service.Answer(kWhatIfLine);
  }

  // Flip one byte in the persisted payload.
  std::string contents = ReadFile(path);
  const std::size_t pos = contents.find("goodput_kbps");
  ASSERT_NE(pos, std::string::npos);
  contents[pos] = 'G';
  WriteFile(path, contents);

  QueryService service(options);
  const auto warm = service.Stats();
  EXPECT_EQ(warm.warm_loaded, 0u);
  EXPECT_EQ(warm.corrupt_dropped, 1u);

  // The damaged entry is recomputed — and lands on the same bytes.
  const std::string recomputed = service.Answer(kWhatIfLine);
  EXPECT_EQ(recomputed, cold_answer);
  EXPECT_EQ(service.Stats().cache_misses, 1u);
  EXPECT_EQ(service.Stats().computed_what_if, 1u);
  std::remove(path.c_str());
}

TEST(ServeCache, PersistFailureDegradesToMemoryServing) {
  const std::string path = TempPath("persistfail");
  std::remove(path.c_str());

  ServiceOptions options;
  options.cache_path = path;
  QueryService service(options);

  std::string answer;
  {
    util::ScopedFaultInjection injection;
    injection->FailAfter("checkpoint.write", 0);  // disk stays full
    answer = service.Answer(kWhatIfLine);
    EXPECT_NE(answer.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_GE(service.Stats().persist_failures, 1u);
  }

  // Still serving (from memory), and the next flush succeeds.
  EXPECT_EQ(service.Answer(kWhatIfLine), answer);
  EXPECT_TRUE(service.Flush());
  ResultCache loaded(std::string(serve::kServeVersionTag));
  EXPECT_EQ(loaded.Load(path).loaded, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wsnlink
