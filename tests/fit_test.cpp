// Unit tests for the fitting machinery: linear system solver, Levenberg-
// Marquardt, and the scaled-exponential fitters.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/fit/exponential_fit.h"
#include "core/fit/gauss_newton.h"
#include "util/rng.h"

namespace wsnlink::core::fit {
namespace {

// ------------------------------------------------------ linear solver ----

TEST(SolveLinearSystem, TwoByTwo) {
  std::vector<std::vector<double>> a{{2.0, 1.0}, {1.0, 3.0}};
  std::vector<double> b{5.0, 10.0};
  SolveLinearSystem(a, b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, NeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  std::vector<std::vector<double>> a{{0.0, 1.0}, {1.0, 0.0}};
  std::vector<double> b{2.0, 3.0};
  SolveLinearSystem(a, b);
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows) {
  std::vector<std::vector<double>> a{{1.0, 2.0}, {2.0, 4.0}};
  std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(SolveLinearSystem(a, b), std::runtime_error);
}

TEST(SolveLinearSystem, ThreeByThree) {
  std::vector<std::vector<double>> a{
      {4.0, -2.0, 1.0}, {-2.0, 4.0, -2.0}, {1.0, -2.0, 4.0}};
  std::vector<double> b{11.0, -16.0, 17.0};
  SolveLinearSystem(a, b);
  // Verify by substitution.
  EXPECT_NEAR(4 * b[0] - 2 * b[1] + b[2], 11.0, 1e-9);
  EXPECT_NEAR(-2 * b[0] + 4 * b[1] - 2 * b[2], -16.0, 1e-9);
}

// ---------------------------------------------------- Gauss-Newton/LM ----

TEST(Minimize, QuadraticBowl) {
  // Residuals r_i = params - targets: minimum at targets.
  const ResidualFn residuals = [](std::span<const double> p,
                                  std::span<double> out) {
    out[0] = p[0] - 3.0;
    out[1] = p[1] + 2.0;
  };
  const auto result = Minimize(residuals, {0.0, 0.0}, 2);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.params[0], 3.0, 1e-6);
  EXPECT_NEAR(result.params[1], -2.0, 1e-6);
  EXPECT_NEAR(result.sse, 0.0, 1e-10);
}

TEST(Minimize, NonlinearExponentialRecovery) {
  // y = 2.5 * exp(-0.3 x), noiseless.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(i * 0.5);
    ys.push_back(2.5 * std::exp(-0.3 * xs.back()));
  }
  const ResidualFn residuals = [&](std::span<const double> p,
                                   std::span<double> out) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      out[i] = p[0] * std::exp(p[1] * xs[i]) - ys[i];
    }
  };
  const auto result = Minimize(residuals, {1.0, -0.1}, xs.size());
  EXPECT_NEAR(result.params[0], 2.5, 1e-4);
  EXPECT_NEAR(result.params[1], -0.3, 1e-4);
}

TEST(Minimize, InvalidInputsThrow) {
  const ResidualFn residuals = [](std::span<const double>, std::span<double>) {
  };
  EXPECT_THROW((void)Minimize(residuals, {}, 3), std::invalid_argument);
  EXPECT_THROW((void)Minimize(residuals, {1.0}, 0), std::invalid_argument);
}

// ------------------------------------------- scaled exponential fitter ----

std::vector<ScaledExpSample> SyntheticSamples(double a, double b,
                                              double noise_sigma,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ScaledExpSample> samples;
  for (const double l : {5.0, 20.0, 35.0, 50.0, 65.0, 95.0, 110.0}) {
    for (double snr = 5.0; snr <= 25.0; snr += 1.0) {
      ScaledExpSample s;
      s.payload_bytes = l;
      s.snr_db = snr;
      const double clean = a * l * std::exp(b * snr);
      s.value = std::max(0.0, clean * (1.0 + rng.Gaussian(0.0, noise_sigma)));
      samples.push_back(s);
    }
  }
  return samples;
}

TEST(FitScaledExponential, RecoversPaperPerCoefficientsNoiseless) {
  const auto samples = SyntheticSamples(0.0128, -0.15, 0.0, 1);
  const auto fit = FitScaledExponential(samples);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coefficients.a, 0.0128, 1e-5);
  EXPECT_NEAR(fit->coefficients.b, -0.15, 1e-4);
  EXPECT_GT(fit->log_r_squared, 0.999);
  EXPECT_NEAR(fit->rmse, 0.0, 1e-8);
}

TEST(FitScaledExponential, RobustToTenPercentNoise) {
  const auto samples = SyntheticSamples(0.02, -0.18, 0.10, 2);
  const auto fit = FitScaledExponential(samples);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coefficients.a, 0.02, 0.004);
  EXPECT_NEAR(fit->coefficients.b, -0.18, 0.02);
}

TEST(FitScaledExponential, HandlesZeroValueSamples) {
  auto samples = SyntheticSamples(0.011, -0.145, 0.0, 3);
  // Zero out the high-SNR tail (observed zero loss) — log domain must skip
  // them, nonlinear refinement must not blow up.
  for (auto& s : samples) {
    if (s.snr_db > 20.0) s.value = 0.0;
  }
  const auto fit = FitScaledExponential(samples);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coefficients.a, 0.011, 0.002);
  EXPECT_NEAR(fit->coefficients.b, -0.145, 0.02);
}

TEST(FitScaledExponential, DegenerateInputsReturnNullopt) {
  std::vector<ScaledExpSample> too_few{{50.0, 10.0, 0.1},
                                       {50.0, 12.0, 0.08}};
  EXPECT_FALSE(FitScaledExponential(too_few).has_value());

  // All values zero: nothing in the log domain.
  std::vector<ScaledExpSample> zeros(10, ScaledExpSample{50.0, 10.0, 0.0});
  EXPECT_FALSE(FitScaledExponential(zeros).has_value());

  // Constant SNR: slope unidentifiable.
  std::vector<ScaledExpSample> flat(10, ScaledExpSample{50.0, 10.0, 0.1});
  EXPECT_FALSE(FitScaledExponential(flat).has_value());
}

// ------------------------------------------------- plain exponential ----

TEST(FitExponential, RecoversKnownCurve) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 0.0; x <= 20.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(0.7 * std::exp(-0.2 * x));
  }
  const auto fit = FitExponential(xs, ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->a, 0.7, 1e-6);
  EXPECT_NEAR(fit->b, -0.2, 1e-6);
}

TEST(FitExponential, SizeMismatchThrows) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0};
  EXPECT_THROW((void)FitExponential(xs, ys), std::invalid_argument);
}

}  // namespace
}  // namespace wsnlink::core::fit
