// Fixture: the approved way to consume randomness — a seeded generator
// derived through the lineage API. Mentions of std::rand() in comments or
// "std::rand()" in string literals must not trip the rule.
#include "util/rng.h"

double NoiseSample(const wsnlink::util::Rng& parent) {
  auto rng = parent.Derive("noise-floor");
  return rng.Gaussian(0.0, 1.0);
}

const char* kDocs = "never call std::rand() or steady_clock in src/";
