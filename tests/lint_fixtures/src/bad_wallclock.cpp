// Fixture: every way of smuggling wall-clock time or ambient entropy into
// the simulator that rule no-wallclock must catch.
#include <chrono>
#include <cstdlib>

int JitterSeed() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<int>(now.count()) + std::rand();
}

long Stamp() { return time(nullptr); }
