// Fixture: tolerance-based comparison, integer equality, and a digit
// separator (1'000'000) — none of which may trip no-float-eq.
#include <cmath>

bool NearlyEqual(double a, double b) { return std::fabs(a - b) < 1e-9; }

bool IsMillion(long x) { return x == 1'000'000; }

bool BelowHalf(double x) { return x <= 0.5; }
