// Fixture: same export shape as bad_unordered_csv.cpp but over std::map,
// whose iteration order is the key order — deterministic output bytes.
#include <map>
#include <string>

#include "util/csv.h"

void DumpCounters(const std::map<std::string, int>& counters,
                  wsnlink::util::CsvWriter& out) {
  for (const auto& [name, value] : counters) {
    out.WriteRow({name, std::to_string(value)});
  }
}
