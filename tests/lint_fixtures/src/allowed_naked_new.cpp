// Fixture: the escape hatch used correctly — a justified file-scope allow
// suppresses the naked-new findings below, and because it suppresses
// something it is not stale. This file must lint clean.
//
// wsnlint:allow(no-naked-new): fixture exercising a justified suppression.
struct Arena {
  int* base;
};

Arena MakeArena(int n) { return Arena{new int[n]}; }

void FreeArena(Arena& a) { delete[] a.base; }
