// Fixture: header missing #pragma once and leaking a namespace into every
// includer — both header-hygiene findings. Also the --fix corpus: the fix
// must insert the pragma after this comment block and stay idempotent.

#include <string>

using namespace std;

struct BadHeaderFixture {
  string name;
};
