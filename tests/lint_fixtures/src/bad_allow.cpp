// Fixture: every way to misuse the escape hatch. An allow without a
// justification, an allow for a rule id that does not exist, and a
// justified allow that suppresses nothing (stale).
//
// wsnlint:allow(no-wallclock)
// wsnlint:allow(no-such-rule): typo'd rule ids must be caught
// wsnlint:allow(no-raw-parse): nothing in this file parses numbers
int Answer() { return 42; }
