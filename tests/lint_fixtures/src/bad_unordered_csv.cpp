// Fixture: iterating an unordered_map while writing CSV output — the exact
// hash-order nondeterminism bug rule no-unordered-output exists for.
#include <string>
#include <unordered_map>

#include "util/csv.h"

void DumpCounters(const std::unordered_map<std::string, int>& counters,
                  wsnlink::util::CsvWriter& out) {
  for (const auto& [name, value] : counters) {
    out.WriteRow({name, std::to_string(value)});
  }
}
