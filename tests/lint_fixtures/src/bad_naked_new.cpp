// Fixture: manual ownership in src/ — naked new and delete, the leak-by-
// early-return pattern rule no-naked-new bans.
struct Buffer {
  int* data;
};

Buffer MakeBuffer(int n) { return Buffer{new int[n]}; }

void FreeBuffer(Buffer& b) { delete[] b.data; }
