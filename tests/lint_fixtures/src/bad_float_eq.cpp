// Fixture: exact floating-point comparisons against literals, in both
// orders and with an exponent form — all no-float-eq findings.
bool AtOrigin(double x) { return x == 0.0; }

bool IsUnit(double gain) { return 1.0 == gain; }

bool Converged(double delta) { return delta != 1e-9; }
