// Fixture: a marked hot-path file that stays allocation-free — placement
// new into caller-owned storage and plain arithmetic are both fine.
// wsnlint:hot-path
#include <new>

struct Slot {
  double value;
};

double Step(void* storage, double x) {
  Slot* slot = new (storage) Slot{x * 2.0};
  return slot->value;
}
