// Fixture: a marked hot-path file that allocates — every heap token is a
// finding. wsnlint:hot-path
#include <memory>

void Step(double* out) {
  auto scratch = std::make_unique<double[]>(64);
  double* raw = new double[64];
  out[0] = scratch[0] + raw[0];
  delete[] raw;
}
