// Fixture: owning types instead of naked new/delete. Placement new, a
// deleted copy constructor, and "new" inside comments/strings are all
// legitimate and must not be flagged.
#include <memory>
#include <new>

struct Pool {
  Pool() = default;
  Pool(const Pool&) = delete;
  alignas(8) unsigned char slot[64];

  // Starts a new object in the slot (placement new is fine).
  void Emplace() { ::new (static_cast<void*>(slot)) int(0); }
};

std::unique_ptr<Pool> MakePool() { return std::make_unique<Pool>(); }

const char* kDocs = "naked new int[3] in a string literal is not code";
