// Fixture: hygienic header — #pragma once is the first directive, no
// using-namespace at file scope.
#pragma once

#include <string>

struct CleanHeaderFixture {
  std::string name;
};
