// Fixture: the approved parsing path for CLI harnesses — whole-string
// validated helpers that throw on garbage instead of truncating it.
#include <string>

#include "util/args.h"

int PacketCount(const std::string& arg) {
  return wsnlink::util::ParsePositiveInt(arg, "packets");
}

double Tolerance(const std::string& arg) {
  return wsnlink::util::ParseDouble(arg, "tolerance");
}
