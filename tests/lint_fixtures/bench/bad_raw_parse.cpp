// Fixture: raw numeric parsing in a CLI harness. atoi returns 0 on garbage
// and strtod accepts trailing junk — rule no-raw-parse pushes both through
// the validated util parsers instead.
#include <cstdlib>
#include <string>

int PacketCount(const char* arg) { return atoi(arg); }

double Tolerance(const std::string& arg) {
  return std::strtod(arg.c_str(), nullptr);
}
