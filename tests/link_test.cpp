// Unit tests for the transmit queue and link layer.
#include <gtest/gtest.h>

#include "channel/channel.h"
#include "link/link_layer.h"
#include "link/transmit_queue.h"
#include "mac/csma_mac.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace wsnlink::link {
namespace {

// ------------------------------------------------------ transmit queue ----

TEST(TransmitQueue, CapacityOneMeansNoBuffering) {
  TransmitQueue q(1);
  EXPECT_TRUE(q.Offer({1, 10, 0}));
  (void)q.StartService();
  // In-service packet occupies the single slot: next arrival drops.
  EXPECT_FALSE(q.Offer({2, 10, 0}));
  EXPECT_EQ(q.Drops(), 1u);
  q.FinishService();
  EXPECT_TRUE(q.Offer({3, 10, 0}));
}

TEST(TransmitQueue, FifoOrder) {
  TransmitQueue q(10);
  for (std::uint64_t id = 1; id <= 5; ++id) EXPECT_TRUE(q.Offer({id, 10, 0}));
  for (std::uint64_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(q.StartService().id, id);
    q.FinishService();
  }
}

TEST(TransmitQueue, OccupancyCountsInService) {
  TransmitQueue q(3);
  EXPECT_EQ(q.Occupancy(), 0);
  (void)q.Offer({1, 10, 0});
  (void)q.Offer({2, 10, 0});
  EXPECT_EQ(q.Occupancy(), 2);
  (void)q.StartService();
  EXPECT_EQ(q.Occupancy(), 2);  // 1 in service + 1 waiting
  (void)q.Offer({3, 10, 0});
  EXPECT_TRUE(q.Full());
  EXPECT_FALSE(q.Offer({4, 10, 0}));
  EXPECT_EQ(q.Accepted(), 3u);
  EXPECT_EQ(q.Drops(), 1u);
}

TEST(TransmitQueue, MisuseThrows) {
  TransmitQueue q(2);
  EXPECT_THROW((void)q.StartService(), std::logic_error);  // nothing waiting
  EXPECT_THROW(q.FinishService(), std::logic_error);       // nothing serving
  (void)q.Offer({1, 10, 0});
  (void)q.StartService();
  EXPECT_THROW((void)q.StartService(), std::logic_error);  // already serving
  EXPECT_THROW(TransmitQueue(0), std::invalid_argument);
}

// ---------------------------------------------------------- link layer ----

struct LinkHarness {
  sim::Simulator simulator;
  channel::Channel channel;
  mac::CsmaMac mac;
  LinkLayer link;

  LinkHarness(double distance, int pa_level, int max_tries, int queue_cap,
              std::uint64_t seed)
      : channel(MakeChannel(distance), util::Rng(seed)),
        mac(simulator, channel, MakeMac(pa_level, max_tries),
            util::Rng(seed + 1)),
        link(simulator, mac, queue_cap) {}

  static channel::ChannelConfig MakeChannel(double distance) {
    channel::ChannelConfig config;
    config.distance_m = distance;
    config.noise.burst_rate_hz = 0.0;
    return config;
  }
  static mac::MacParams MakeMac(int pa_level, int max_tries) {
    mac::MacParams params;
    params.pa_level = pa_level;
    params.max_tries = max_tries;
    return params;
  }
};

TEST(LinkLayer, SinglePacketLifecycleLogged) {
  LinkHarness h(5.0, 31, 3, 5, 200);
  EXPECT_TRUE(h.link.Accept(1, 50));
  h.simulator.Run();

  ASSERT_EQ(h.link.Log().Packets().size(), 1u);
  const auto& p = h.link.Log().Packets()[0];
  EXPECT_EQ(p.id, 1u);
  EXPECT_FALSE(p.dropped_at_queue);
  EXPECT_TRUE(p.acked);
  EXPECT_TRUE(p.delivered);
  EXPECT_EQ(p.tries, 1);
  EXPECT_EQ(p.service_start, p.arrived_at);  // idle link serves immediately
  EXPECT_GT(p.completed_at, p.service_start);
  EXPECT_NE(p.first_delivered_at, kNever);
  EXPECT_GT(p.first_delivered_at, p.service_start);
  EXPECT_LT(p.first_delivered_at, p.completed_at);
  EXPECT_GT(p.tx_energy_uj, 0.0);
  EXPECT_TRUE(h.link.Idle());
}

TEST(LinkLayer, BurstArrivalsQueueAndServeInOrder) {
  LinkHarness h(5.0, 31, 1, 10, 201);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    EXPECT_TRUE(h.link.Accept(id, 20));
  }
  h.simulator.Run();

  const auto& packets = h.link.Log().Packets();
  ASSERT_EQ(packets.size(), 5u);
  sim::Time prev_completion = -1;
  for (const auto& p : packets) {
    EXPECT_TRUE(p.acked);
    EXPECT_GT(p.completed_at, prev_completion);
    prev_completion = p.completed_at;
  }
  // The later packets waited: their service start is after arrival.
  EXPECT_GT(packets[4].service_start, packets[4].arrived_at);
}

TEST(LinkLayer, QueueOverflowDropsAreLogged) {
  LinkHarness h(5.0, 31, 1, 2, 202);
  for (std::uint64_t id = 1; id <= 6; ++id) (void)h.link.Accept(id, 20);
  h.simulator.Run();

  const auto& packets = h.link.Log().Packets();
  ASSERT_EQ(packets.size(), 6u);
  int drops = 0;
  for (const auto& p : packets) {
    if (p.dropped_at_queue) {
      ++drops;
      EXPECT_EQ(p.service_start, kNever);
      EXPECT_EQ(p.completed_at, kNever);
      EXPECT_EQ(p.tries, 0);
    }
  }
  EXPECT_EQ(drops, 4);  // capacity 2: ids 1-2 held, 3-6 dropped
  EXPECT_EQ(h.link.Queue().Drops(), 4u);
}

TEST(LinkLayer, QueueDepthAtArrivalRecorded) {
  LinkHarness h(5.0, 31, 1, 10, 203);
  for (std::uint64_t id = 1; id <= 4; ++id) (void)h.link.Accept(id, 20);
  const auto& packets = h.link.Log().Packets();
  EXPECT_EQ(packets[0].queue_depth_at_arrival, 0);
  EXPECT_EQ(packets[1].queue_depth_at_arrival, 1);
  EXPECT_EQ(packets[2].queue_depth_at_arrival, 2);
  EXPECT_EQ(packets[3].queue_depth_at_arrival, 3);
  h.simulator.Run();
}

TEST(LinkLayer, AttemptLogMatchesTries) {
  LinkHarness h(35.0, 7, 8, 5, 204);  // grey zone: retransmissions happen
  for (std::uint64_t id = 1; id <= 50; ++id) {
    (void)h.link.Accept(id, 110);
    h.simulator.Run();
  }
  int total_tries = 0;
  int cca_exhausted_tries = 0;
  for (const auto& p : h.link.Log().Packets()) total_tries += p.tries;
  // Attempts that never transmitted (CCA exhaustion) are not in the log;
  // with interference disabled there are none.
  (void)cca_exhausted_tries;
  EXPECT_EQ(h.link.Log().Attempts().size(),
            static_cast<std::size_t>(total_tries));
}

TEST(LinkLayer, DeliveryCallbackForwarded) {
  LinkHarness h(5.0, 31, 3, 15, 205);
  int delivered = 0;
  h.link.SetDeliveryCallback(
      [&delivered](const mac::DeliveryInfo&) { ++delivered; });
  for (std::uint64_t id = 1; id <= 10; ++id) (void)h.link.Accept(id, 30);
  h.simulator.Run();
  EXPECT_EQ(delivered, 10);
}

TEST(LinkLayer, UndeliveredPacketHasNoDeliveryTimestamp) {
  LinkHarness h(35.0, 3, 2, 5, 206);  // below sensitivity
  (void)h.link.Accept(1, 50);
  h.simulator.Run();
  const auto& p = h.link.Log().Packets()[0];
  EXPECT_FALSE(p.delivered);
  EXPECT_EQ(p.first_delivered_at, kNever);
  EXPECT_EQ(p.rssi_dbm, 0.0);
}

}  // namespace
}  // namespace wsnlink::link
