// Observability-layer tests: tracer/counter mechanics, exporter formats,
// and — most importantly — the lifecycle invariants of traced runs. These
// turn the stack's implicit contracts (paired service/completion events,
// attempt accounting, non-negative queues, monotonic time) into enforced
// regressions over the real simulator, not mocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "link/packet_log.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "trace/counters.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace wsnlink {
namespace {

using trace::EventType;
using trace::TraceEvent;

// ---------------------------------------------------------------------------
// Tracer / CounterRegistry mechanics

TEST(Trace, EmitAndReadBack) {
  trace::Tracer tracer(8);
  for (int i = 0; i < 5; ++i) {
    tracer.Emit({i * 10, EventType::kPacketGenerated, trace::Layer::kApp,
                 static_cast<std::uint64_t>(i), 0, 0, 0.0});
  }
  EXPECT_EQ(tracer.EmittedCount(), 5u);
  EXPECT_EQ(tracer.DroppedCount(), 0u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].at, i * 10);
    EXPECT_EQ(events[i].packet_id, static_cast<std::uint64_t>(i));
  }
}

TEST(Trace, RingOverwritesOldestWhenFull) {
  trace::Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.Emit({i, EventType::kCcaBusy, trace::Layer::kMac,
                 static_cast<std::uint64_t>(i), 0, 0, 0.0});
  }
  EXPECT_EQ(tracer.EmittedCount(), 10u);
  EXPECT_EQ(tracer.DroppedCount(), 6u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // The four newest survive, still in chronological order.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i].at, 6 + i);
}

TEST(Trace, ClearForgetsEvents) {
  trace::Tracer tracer(4);
  tracer.Emit({1, EventType::kCcaBusy, trace::Layer::kMac, 0, 0, 0, 0.0});
  tracer.Clear();
  EXPECT_EQ(tracer.EmittedCount(), 0u);
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(Trace, RejectsZeroCapacity) {
  EXPECT_THROW(trace::Tracer(0), std::invalid_argument);
}

TEST(Trace, EventTypeNamesAreStable) {
  EXPECT_STREQ(trace::EventTypeName(EventType::kTxAttemptStart),
               "TxAttemptStart");
  EXPECT_STREQ(trace::EventTypeName(EventType::kQueueDrop), "QueueDrop");
  EXPECT_STREQ(trace::LayerName(trace::Layer::kMac), "mac");
}

TEST(Trace, CounterRegistryRegistersOnceAndSnapshotsSorted) {
  trace::CounterRegistry registry;
  const auto a = registry.Register("mac.tx_attempts");
  const auto b = registry.Register("app.packets_generated");
  EXPECT_EQ(registry.Register("mac.tx_attempts"), a);
  registry.Add(a, 3);
  registry.Add(b);
  EXPECT_EQ(registry.Value("mac.tx_attempts"), 3u);
  EXPECT_EQ(registry.Value("app.packets_generated"), 1u);
  EXPECT_EQ(registry.Value("no.such.counter"), 0u);

  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].name, "app.packets_generated");
  EXPECT_EQ(snapshot[1].name, "mac.tx_attempts");
  EXPECT_EQ(snapshot[1].value, 3u);
}

TEST(Trace, MergeCountersSumsByName) {
  const std::vector<std::vector<trace::CounterSample>> snapshots = {
      {{"a", 1}, {"b", 2}},
      {{"b", 3}, {"c", 4}},
  };
  const auto merged = trace::MergeCounters(snapshots);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0], (trace::CounterSample{"a", 1}));
  EXPECT_EQ(merged[1], (trace::CounterSample{"b", 5}));
  EXPECT_EQ(merged[2], (trace::CounterSample{"c", 4}));
}

// ---------------------------------------------------------------------------
// Traced-run lifecycle invariants

/// A loss-prone, overloaded configuration: retries, radio losses and queue
/// drops all occur, so every lifecycle path is exercised.
node::SimulationOptions GreyZoneOptions() {
  node::SimulationOptions options;
  options.config.distance_m = 35.0;
  options.config.pa_level = 11;
  options.config.max_tries = 3;
  options.config.retry_delay_ms = 5.0;
  options.config.queue_capacity = 3;
  options.config.pkt_interval_ms = 20.0;
  options.config.payload_bytes = 110;
  options.packet_count = 400;
  options.seed = 7;
  return options;
}

struct PacketEvents {
  std::vector<TraceEvent> events;  // in emission order
  int Count(EventType type) const {
    return static_cast<int>(
        std::count_if(events.begin(), events.end(),
                      [type](const TraceEvent& e) { return e.type == type; }));
  }
};

std::map<std::uint64_t, PacketEvents> GroupByPacket(
    const std::vector<TraceEvent>& events) {
  std::map<std::uint64_t, PacketEvents> by_packet;
  for (const auto& e : events) by_packet[e.packet_id].events.push_back(e);
  return by_packet;
}

TEST(TraceInvariants, LifecyclePairingAndAttemptAccounting) {
  auto options = GreyZoneOptions();
  trace::Tracer tracer;
  options.tracer = &tracer;
  const auto result = node::RunLinkSimulation(options);
  const auto events = tracer.Events();
  ASSERT_EQ(tracer.DroppedCount(), 0u) << "ring too small for this run";
  ASSERT_FALSE(events.empty());

  // Global timestamp monotonicity: simulated time never goes backwards in
  // the emitted stream.
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_GE(events[i].at, events[i - 1].at) << "event " << i;
  }

  const auto by_packet = GroupByPacket(events);

  // Attempt records per packet (sender's on-air attempts).
  std::map<std::uint64_t, int> attempts_logged;
  for (const auto& a : result.log.Attempts()) ++attempts_logged[a.packet_id];

  int service_starts = 0;
  int completions = 0;
  for (const auto& record : result.log.Packets()) {
    ASSERT_TRUE(by_packet.count(record.id)) << "packet " << record.id
                                            << " left no events";
    const auto& pe = by_packet.at(record.id);

    if (record.dropped_at_queue) {
      // Dropped packets never enter service: arrival + drop, nothing else.
      EXPECT_EQ(pe.Count(EventType::kQueueDrop), 1);
      EXPECT_EQ(pe.Count(EventType::kServiceStart), 0);
      EXPECT_EQ(pe.Count(EventType::kPacketCompleted), 0);
      EXPECT_EQ(pe.Count(EventType::kTxAttemptStart), 0);
      continue;
    }

    // Every ServiceStart has exactly one matching Completed, in order.
    EXPECT_EQ(pe.Count(EventType::kServiceStart), 1) << "packet " << record.id;
    EXPECT_EQ(pe.Count(EventType::kPacketCompleted), 1)
        << "packet " << record.id;
    ++service_starts;
    ++completions;

    // On-air attempts in the trace equal the attempt log; together with
    // CCA-exhausted attempts (CcaBusy with no backoffs left) they equal the
    // PacketRecord's tries.
    const int tx_starts = pe.Count(EventType::kTxAttemptStart);
    EXPECT_EQ(tx_starts, attempts_logged[record.id]) << "packet " << record.id;
    int cca_exhausted = 0;
    for (const auto& e : pe.events) {
      if (e.type == EventType::kCcaBusy && e.arg0 <= 0) ++cca_exhausted;
    }
    EXPECT_EQ(tx_starts + cca_exhausted, record.tries)
        << "packet " << record.id;

    // Per-packet timestamp ordering across the lifecycle.
    sim::Time arrival = -1;
    sim::Time service = -1;
    sim::Time completed = -1;
    std::int64_t last_attempt_index = 0;
    for (const auto& e : pe.events) {
      switch (e.type) {
        case EventType::kPacketArrival:
          arrival = e.at;
          break;
        case EventType::kServiceStart:
          service = e.at;
          ASSERT_GE(service, arrival) << "packet " << record.id;
          break;
        case EventType::kTxAttemptStart:
          ASSERT_GE(e.at, service) << "packet " << record.id;
          // Attempt indices strictly increase within the packet.
          ASSERT_GT(e.arg0, last_attempt_index) << "packet " << record.id;
          last_attempt_index = e.arg0;
          break;
        case EventType::kPacketCompleted:
          completed = e.at;
          ASSERT_GE(completed, service) << "packet " << record.id;
          break;
        default:
          break;
      }
    }
    EXPECT_EQ(arrival, record.arrived_at);
    EXPECT_EQ(service, record.service_start);
    EXPECT_EQ(completed, record.completed_at);
  }
  EXPECT_EQ(service_starts, completions);
  EXPECT_GT(service_starts, 0);
}

TEST(TraceInvariants, QueueDepthNeverNegativeAndBounded) {
  auto options = GreyZoneOptions();
  trace::Tracer tracer;
  options.tracer = &tracer;
  const auto result = node::RunLinkSimulation(options);
  (void)result;

  const int capacity = options.config.queue_capacity;
  std::int64_t depth = 0;  // reconstructed occupancy (incl. in-service)
  for (const auto& e : tracer.Events()) {
    switch (e.type) {
      case EventType::kQueueEnqueue:
        ++depth;
        ASSERT_EQ(e.arg0, depth);
        ASSERT_LE(depth, capacity);
        break;
      case EventType::kQueueDrop:
        // Drops only happen at capacity; occupancy unchanged.
        ASSERT_EQ(e.arg0, capacity);
        ASSERT_EQ(depth, capacity);
        break;
      case EventType::kServiceStart:
        // Moving a packet into service does not change occupancy.
        ASSERT_EQ(e.arg0, depth);
        ASSERT_GE(depth, 1);
        break;
      case EventType::kPacketCompleted:
        --depth;
        ASSERT_GE(depth, 0);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(depth, 0) << "every served packet must complete";
}

TEST(TraceInvariants, CountersMatchPacketLog) {
  auto options = GreyZoneOptions();
  trace::Tracer tracer;
  options.tracer = &tracer;
  const auto result = node::RunLinkSimulation(options);

  std::uint64_t drops = 0;
  std::uint64_t acked = 0;
  std::uint64_t tries = 0;
  for (const auto& r : result.log.Packets()) {
    if (r.dropped_at_queue) ++drops;
    if (r.acked) ++acked;
    tries += static_cast<std::uint64_t>(r.tries);
  }

  auto value = [&result](const std::string& name) {
    for (const auto& c : result.counters) {
      if (c.name == name) return c.value;
    }
    return std::uint64_t{0};
  };

  EXPECT_EQ(value("app.packets_generated"),
            static_cast<std::uint64_t>(result.generated));
  EXPECT_EQ(value("link.queue_drops"), drops);
  EXPECT_EQ(value("link.accepted") + drops,
            static_cast<std::uint64_t>(result.generated));
  EXPECT_EQ(value("link.acked"), acked);
  EXPECT_EQ(value("link.completed"), value("link.served"));
  EXPECT_EQ(value("mac.tx_attempts"),
            static_cast<std::uint64_t>(result.log.Attempts().size()));
  EXPECT_EQ(value("mac.cca_busy"), result.cca_busy);
  EXPECT_EQ(value("app.rx_unique"), result.unique_delivered);
  EXPECT_EQ(value("app.rx_duplicates"), result.duplicates);
  EXPECT_EQ(value("sim.events_executed"), result.events_executed);
  EXPECT_LE(value("mac.tx_attempts") + 0, tries);
  // Trace event count cross-check: one TxAttemptStart per attempt record.
  const auto events = tracer.Events();
  const auto tx_events = std::count_if(
      events.begin(), events.end(),
      [](const TraceEvent& e) { return e.type == EventType::kTxAttemptStart; });
  EXPECT_EQ(static_cast<std::uint64_t>(tx_events), value("mac.tx_attempts"));
}

TEST(TraceInvariants, TracingIsObservationalOnly) {
  // A traced run and an untraced run of the same seed must produce the
  // same physics: tracing may never perturb scheduling or RNG draws.
  auto options = GreyZoneOptions();
  const auto plain = metrics::MeasureConfig(options);

  trace::Tracer tracer;
  options.tracer = &tracer;
  const auto traced = metrics::MeasureConfig(options);
  EXPECT_GT(tracer.EmittedCount(), 0u);

  EXPECT_EQ(plain.generated, traced.generated);
  EXPECT_EQ(plain.delivered_unique, traced.delivered_unique);
  EXPECT_EQ(plain.per, traced.per);
  EXPECT_EQ(plain.goodput_kbps, traced.goodput_kbps);
  EXPECT_EQ(plain.energy_uj_per_bit, traced.energy_uj_per_bit);
  EXPECT_EQ(plain.mean_delay_ms, traced.mean_delay_ms);
  EXPECT_EQ(plain.plr_total, traced.plr_total);
}

TEST(TraceInvariants, IdenticalSeedsProduceIdenticalStreams) {
  auto options = GreyZoneOptions();
  trace::Tracer first;
  options.tracer = &first;
  (void)node::RunLinkSimulation(options);

  trace::Tracer second;
  options.tracer = &second;
  (void)node::RunLinkSimulation(options);

  EXPECT_EQ(first.EmittedCount(), second.EmittedCount());
  EXPECT_TRUE(first.Events() == second.Events());
}

TEST(TraceInvariants, LplTrainsMatchTries) {
  node::SimulationOptions options;
  options.mac = node::MacKind::kLpl;
  options.lpl_wakeup_interval_ms = 100.0;
  options.config.distance_m = 30.0;
  options.config.pa_level = 15;
  options.config.max_tries = 3;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 400.0;
  options.config.payload_bytes = 50;
  options.packet_count = 60;
  options.seed = 11;
  trace::Tracer tracer;
  options.tracer = &tracer;
  const auto result = node::RunLinkSimulation(options);

  const auto by_packet = GroupByPacket(tracer.Events());
  for (const auto& record : result.log.Packets()) {
    if (record.dropped_at_queue) continue;
    const auto& pe = by_packet.at(record.id);
    // One train per MAC-level try; every train radiates at least one copy;
    // the receiver latches awake at most once per train.
    EXPECT_EQ(pe.Count(EventType::kLplTrainStart), record.tries);
    EXPECT_GE(pe.Count(EventType::kLplCopySent),
              pe.Count(EventType::kLplTrainStart));
    EXPECT_LE(pe.Count(EventType::kLplReceiverWake), record.tries);
  }
}

// ---------------------------------------------------------------------------
// Exporters

std::vector<TraceEvent> SmallTracedRun(
    std::vector<trace::CounterSample>* counters = nullptr) {
  node::SimulationOptions options;
  options.config.distance_m = 20.0;
  options.config.pa_level = 19;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 50.0;
  options.config.payload_bytes = 40;
  options.packet_count = 20;
  options.seed = 3;
  trace::Tracer tracer;
  options.tracer = &tracer;
  auto result = node::RunLinkSimulation(options);
  if (counters != nullptr) *counters = std::move(result.counters);
  return tracer.Events();
}

TEST(TraceExport, ChromeJsonIsBalancedAndNamed) {
  std::vector<trace::CounterSample> counters;
  const auto events = SmallTracedRun(&counters);
  const std::string json = trace::ChromeTraceJson(events, counters);

  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("TxAttemptStart"), std::string::npos);
  EXPECT_NE(json.find("\"mac.tx_attempts\""), std::string::npos);
  // Per-packet service spans come out as async begin/end pairs.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);

  // Structural sanity: braces and brackets balance (no quoted strings in
  // the format contain either character).
  long braces = 0;
  long brackets = 0;
  for (const char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceExport, WritesJsonAndCsvFiles) {
  std::vector<trace::CounterSample> counters;
  const auto events = SmallTracedRun(&counters);

  const std::string json_path = testing::TempDir() + "/wsnlink_trace.json";
  trace::WriteChromeTraceJson(json_path, events, counters);
  std::FILE* f = std::fopen(json_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);

  const std::string csv_path = testing::TempDir() + "/wsnlink_trace.csv";
  trace::WriteTraceCsv(csv_path, events);
  const std::string csv = trace::TraceCsv(events);
  // Header plus one line per event.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), events.size() + 1);
  EXPECT_EQ(csv.rfind("t_us,layer,event,packet_id,arg0,arg1,value", 0), 0u);

  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(TraceExport, ThrowsOnUnwritablePath) {
  EXPECT_THROW(trace::WriteChromeTraceJson("/nonexistent-dir/x.json", {}),
               std::runtime_error);
  EXPECT_THROW(trace::WriteTraceCsv("/nonexistent-dir/x.csv", {}),
               std::runtime_error);
}

}  // namespace
}  // namespace wsnlink
