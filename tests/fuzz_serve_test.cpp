// Randomized robustness fuzzing for the wsnlinkd request path.
//
// Properties under test (all driven in-process — the socket layer adds
// only framing, which is fuzzed separately through ExtractCompleteLines):
//  * ParseRequest is total over arbitrary bytes: any input either parses
//    or throws a typed ProtocolError — never a crash, hang or other
//    exception type.
//  * QueryService::Answer is total: every line, however hostile, yields
//    exactly one single-line reply; malformed ones a structured error.
//  * Mutating one valid request (byte flips, insertions, deletions,
//    truncations) never produces anything but a parse or a clean error.
//  * The framing layer reassembles a request stream byte-exactly no
//    matter how the bytes are chunked, and oversized/unterminated input
//    stays bounded.
//
// All randomness is fixed-seed Rng, so failures reproduce.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/query_service.h"
#include "util/rng.h"

namespace wsnlink {
namespace {

using serve::ExtractCompleteLines;
using serve::ParseRequest;
using serve::ProtocolError;
using serve::QueryService;
using serve::ServiceOptions;
using util::Rng;

constexpr const char* kValidLines[] = {
    "{\"verb\":\"what_if\",\"distance_m\":15,\"pa_level\":27,"
    "\"payload_bytes\":40,\"packets\":50,\"seed\":3}",
    "{\"verb\":\"optimize\",\"objective\":\"delay\",\"distance_m\":25,"
    "\"max_loss\":0.1}",
    "{\"verb\":\"stats\"}",
};

/// Returns true when the line parses, false when it threw ProtocolError.
/// Any other escape (crash, different exception) fails the test.
bool ParseIsTotal(const std::string& line) {
  try {
    (void)ParseRequest(line);
    return true;
  } catch (const ProtocolError&) {
    return false;
  }
}

void ExpectStructuredReply(const std::string& reply) {
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply.find('\n'), std::string::npos) << reply;
  EXPECT_EQ(reply.find('\r'), std::string::npos) << reply;
  EXPECT_EQ(reply.front(), '{') << reply;
  EXPECT_NE(reply.find("\"status\":\""), std::string::npos) << reply;
}

TEST(ServeFuzz, RandomBytesNeverEscapeTheParser) {
  Rng rng(20150629);
  static constexpr char kAlphabet[] =
      "{}[]\":,.+-eE0123456789 \t\\\"verbwhat_ifoptimize\x01\x7f\n";
  for (int iter = 0; iter < 3000; ++iter) {
    const auto len = static_cast<std::size_t>(rng.UniformInt(0, 120));
    std::string line;
    line.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      line += kAlphabet[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(sizeof(kAlphabet)) - 2))];
    }
    (void)ParseIsTotal(line);  // must not crash or throw anything else
  }
}

TEST(ServeFuzz, MutatedValidRequestsParseOrErrorCleanly) {
  Rng rng(424242);
  int parsed = 0;
  int rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string line = kValidLines[static_cast<std::size_t>(
        rng.UniformInt(0, 2))];
    const int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      if (line.empty()) break;
      const auto pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(line.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:  // flip
          line[pos] = static_cast<char>(rng.UniformInt(1, 126));
          break;
        case 1:  // insert
          line.insert(pos, 1, static_cast<char>(rng.UniformInt(1, 126)));
          break;
        default:  // delete
          line.erase(pos, 1);
          break;
      }
    }
    if (ParseIsTotal(line)) {
      ++parsed;
    } else {
      ++rejected;
    }
  }
  // Sanity on the fuzzer itself: mutations must actually be breaking
  // requests, and a few survivors prove the parser is not rejecting all.
  EXPECT_GT(rejected, 100);
  EXPECT_GT(parsed + rejected, 0);
}

TEST(ServeFuzz, NumberFieldsFollowTheCanonicalGrammar) {
  // The protocol shares util::ParseCanonicalDouble with the CLI/CSV
  // parsers: non-finite spellings, hex floats, embedded whitespace and a
  // leading '+' in a number field must all be clean ProtocolError rejects,
  // never silently-parsed values.
  // (Whitespace around a number is legal *inter-token* whitespace, so it
  // never reaches the number grammar — the tokenizer strips it.)
  const char* bad_numbers[] = {"inf",   "-inf",  "nan", "0x1p3", "0X2",
                               "+15",   "1e999", "infinity",
                               "1.5.5", "--3"};
  for (const char* bad : bad_numbers) {
    const std::string line =
        std::string("{\"verb\":\"what_if\",\"distance_m\":") + bad +
        ",\"pa_level\":27,\"payload_bytes\":40,\"packets\":50,\"seed\":3}";
    EXPECT_FALSE(ParseIsTotal(line)) << "accepted distance_m=" << bad;
  }
  // The happy path still parses: plain decimal and scientific forms.
  const char* good_numbers[] = {"15", "15.5", "1.55e1", "2E1"};
  for (const char* good : good_numbers) {
    const std::string line =
        std::string("{\"verb\":\"what_if\",\"distance_m\":") + good +
        ",\"pa_level\":27,\"payload_bytes\":40,\"packets\":50,\"seed\":3}";
    EXPECT_TRUE(ParseIsTotal(line)) << "rejected distance_m=" << good;
  }
}

TEST(ServeFuzz, TruncationsOfValidRequestsNeverEscape) {
  for (const char* valid : kValidLines) {
    const std::string line = valid;
    for (std::size_t cut = 0; cut < line.size(); ++cut) {
      (void)ParseIsTotal(line.substr(0, cut));
    }
  }
}

TEST(ServeFuzz, AnswerIsTotalOverHostileLines) {
  QueryService service(ServiceOptions{});
  Rng rng(777);
  std::vector<std::string> hostile = {
      "",
      "\t",
      "{\"verb\":\"what_if\"",
      std::string(3000, '{'),
      "{\"verb\":\"what_if\",\"packets\":-5}",
      "{\"verb\":\"what_if\",\"seed\":99999999999999999999999999}",
      "{\"verb\":\"what_if\",\"distance_m\":1e308}",
      "{\"verb\":\"what_if\",\"distance_m\":nan}",
      std::string("\x00\x01\x02", 3),
  };
  for (int iter = 0; iter < 200; ++iter) {
    const auto len = static_cast<std::size_t>(rng.UniformInt(0, 200));
    std::string junk;
    for (std::size_t i = 0; i < len; ++i) {
      junk += static_cast<char>(rng.UniformInt(1, 255));
    }
    hostile.push_back(junk);
  }
  for (const std::string& line : hostile) {
    const std::string reply = service.Answer(line);
    ExpectStructuredReply(reply);
  }
  // Nothing hostile may have been cached.
  EXPECT_EQ(service.Stats().cache_entries, 0u);
}

TEST(ServeFuzz, OversizedLineIsRejectedNotComputed) {
  QueryService service(ServiceOptions{});
  std::string line = "{\"verb\":\"what_if\",\"seed\":1";
  line.append(2 * serve::kMaxRequestBytes, ' ');
  line += "}";
  const std::string reply = service.Answer(line);
  EXPECT_NE(reply.find("\"status\":\"error\""), std::string::npos) << reply;
  EXPECT_EQ(service.Stats().computed_what_if, 0u);
}

TEST(ServeFuzz, InterleavedChunkingReassemblesExactly) {
  Rng rng(31337);
  for (int iter = 0; iter < 300; ++iter) {
    // A stream of several requests with CRLF/LF mixes.
    std::vector<std::string> expected;
    std::string stream;
    const int count = static_cast<int>(rng.UniformInt(1, 8));
    for (int i = 0; i < count; ++i) {
      std::string line = kValidLines[static_cast<std::size_t>(
          rng.UniformInt(0, 2))];
      line += std::to_string(i);  // make lines distinguishable
      expected.push_back(line);
      stream += line;
      stream += (rng.UniformInt(0, 1) != 0) ? "\r\n" : "\n";
    }

    // Deliver in random-size chunks; collect whatever frames complete.
    std::string buffer;
    std::vector<std::string> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const auto chunk = static_cast<std::size_t>(rng.UniformInt(1, 17));
      buffer += stream.substr(pos, chunk);
      pos += chunk;
      for (std::string& line : ExtractCompleteLines(buffer)) {
        got.push_back(std::move(line));
      }
    }
    EXPECT_TRUE(buffer.empty());
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]);
    }
  }
}

TEST(ServeFuzz, ErrorRepliesAreSingleLineAndEscaped) {
  QueryService service(ServiceOptions{});
  // Error messages echo offending bytes; quotes/newlines must be escaped
  // or stripped so the reply stays one well-formed line.
  const std::string reply = service.Answer(
      "{\"verb\":\"what_if\",\"mac\":\"a\\\"b\"}");
  ExpectStructuredReply(reply);
}

}  // namespace
}  // namespace wsnlink
