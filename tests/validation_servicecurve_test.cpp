// Service-curve delay-bound cross-validation grid (src/validate/).
//
// Each grid point runs the event-driven simulator for one configuration
// and asserts the measured per-packet delay distribution respects the
// closed-form service-curve bounds: hard min/max delay, backlog, the
// analytic delay-CCDF envelope (up to the DKW band), the try-count tail
// and the radio-loss envelope. The grid spans the paper's parameter
// space — distance x PA level x payload x retry limit x retry delay x
// queue depth x packet interval — for both MACs, with N = 1 and small-N
// shared-medium networks and the interference/shadowing ablations.
//
// The negative suite proves the harness bites: deliberately
// mis-parameterised bounds (PER halved / quartered via per_scale) must
// FAIL on lossy links, robustly in the seed (checked for seeds 1..5
// during calibration; the baked-in seeds keep the test deterministic).
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "validate/cross_validation.h"
#include "validate/service_curve.h"

namespace wsnlink::validate {
namespace {

struct GridPoint {
  const char* name;
  double distance_m = 20.0;
  int pa_level = 31;
  int payload_bytes = 110;
  int max_tries = 1;
  double retry_delay_ms = 0.0;
  int queue_capacity = 1;
  double pkt_interval_ms = 100.0;
  int packets = 1200;
  int nodes = 1;
  bool lpl = false;
  double wakeup_ms = 100.0;
  bool no_interference = false;
  bool no_shadowing = false;
};

CrossValidationOptions MakeOptions(const GridPoint& p) {
  CrossValidationOptions options;
  options.sim.config.distance_m = p.distance_m;
  options.sim.config.pa_level = p.pa_level;
  options.sim.config.payload_bytes = p.payload_bytes;
  options.sim.config.max_tries = p.max_tries;
  options.sim.config.retry_delay_ms = p.retry_delay_ms;
  options.sim.config.queue_capacity = p.queue_capacity;
  options.sim.config.pkt_interval_ms = p.pkt_interval_ms;
  options.sim.packet_count = p.packets;
  options.sim.seed = 1;
  options.sim.disable_interference = p.no_interference;
  options.sim.disable_temporal_shadowing = p.no_shadowing;
  if (p.lpl) {
    options.sim.mac = node::MacKind::kLpl;
    options.sim.lpl_wakeup_interval_ms = p.wakeup_ms;
  }
  options.nodes = p.nodes;
  return options;
}

class ValidationGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ValidationGrid, EmpiricalDistributionRespectsAnalyticBounds) {
  const CrossValidationReport report =
      RunCrossValidation(MakeOptions(GetParam()));
  EXPECT_TRUE(report.Passed()) << report.ToString();
  EXPECT_GT(report.samples, 0u);
  EXPECT_FALSE(report.bounds.ccdf.empty());
  // The report's summary statistics must be internally consistent even
  // when every bound holds.
  EXPECT_LE(report.measured_min_ms, report.measured_p50_ms);
  EXPECT_LE(report.measured_p50_ms, report.measured_p99_ms);
  EXPECT_LE(report.measured_p99_ms, report.measured_max_ms);
  EXPECT_LE(report.p50_ci.lo, report.p50_ci.hi);
}

// clang-format off
const GridPoint kGrid[] = {
    // --- single-link CSMA, single try: the sharp loss-envelope regime,
    // sweeping distance x PA level x payload across the workable range ---
    {.name = "csma_d5_pa3_l110", .distance_m = 5, .pa_level = 3},
    {.name = "csma_d10_pa3_l110", .distance_m = 10, .pa_level = 3},
    {.name = "csma_d15_pa3_l50", .distance_m = 15, .pa_level = 3,
     .payload_bytes = 50},
    {.name = "csma_d25_pa7_l110", .distance_m = 25, .pa_level = 7},
    {.name = "csma_d28_pa7_l110", .distance_m = 28, .pa_level = 7},
    {.name = "csma_d31_pa7_l110", .distance_m = 31, .pa_level = 7},
    {.name = "csma_d32_pa7_l114", .distance_m = 32, .pa_level = 7,
     .payload_bytes = 114},
    {.name = "csma_d26_pa7_l20", .distance_m = 26, .pa_level = 7,
     .payload_bytes = 20},
    {.name = "csma_d28_pa7_l50", .distance_m = 28, .pa_level = 7,
     .payload_bytes = 50},
    {.name = "csma_d30_pa7_l80", .distance_m = 30, .pa_level = 7,
     .payload_bytes = 80},
    {.name = "csma_d31_pa7_l60", .distance_m = 31, .pa_level = 7,
     .payload_bytes = 60},
    {.name = "csma_d20_pa11_l110", .distance_m = 20, .pa_level = 11},
    {.name = "csma_d25_pa11_l110", .distance_m = 25, .pa_level = 11},
    {.name = "csma_d28_pa11_l50", .distance_m = 28, .pa_level = 11,
     .payload_bytes = 50},
    {.name = "csma_d15_pa15_l110", .distance_m = 15, .pa_level = 15},
    {.name = "csma_d25_pa15_l60", .distance_m = 25, .pa_level = 15,
     .payload_bytes = 60},
    {.name = "csma_d10_pa31_l5", .distance_m = 10, .payload_bytes = 5},

    // --- retry ladders, retry delays, queueing, saturation ---
    {.name = "csma_d20_pa3_l20_t4", .distance_m = 20, .pa_level = 3,
     .payload_bytes = 20, .max_tries = 4},
    {.name = "csma_d28_pa7_t3", .distance_m = 28, .pa_level = 7,
     .max_tries = 3},
    {.name = "csma_d28_pa7_t2_retry10", .distance_m = 28, .pa_level = 7,
     .max_tries = 2, .retry_delay_ms = 10},
    {.name = "csma_d25_pa7_t5_q4_i30", .distance_m = 25, .pa_level = 7,
     .max_tries = 5, .queue_capacity = 4, .pkt_interval_ms = 30},
    {.name = "csma_d31_pa7_t8_q8_i20_retry5", .distance_m = 31, .pa_level = 7,
     .max_tries = 8, .retry_delay_ms = 5, .queue_capacity = 8,
     .pkt_interval_ms = 20},
    {.name = "csma_d20_pa31_t3_q2_i10", .distance_m = 20, .max_tries = 3,
     .queue_capacity = 2, .pkt_interval_ms = 10, .packets = 1500},
    {.name = "csma_d35_pa31_t3", .distance_m = 35, .max_tries = 3},

    // --- channel ablations ---
    {.name = "csma_d28_pa7_t3_nointerf", .distance_m = 28, .pa_level = 7,
     .max_tries = 3, .no_interference = true},
    {.name = "csma_d25_pa11_t3_noshadow", .distance_m = 25, .pa_level = 11,
     .max_tries = 3, .no_shadowing = true},

    // --- low-power-listening MAC, wakeup interval 50..200 ms ---
    {.name = "lpl_d20_pa11_w50", .distance_m = 20, .pa_level = 11,
     .max_tries = 3, .packets = 600, .lpl = true, .wakeup_ms = 50},
    {.name = "lpl_d25_pa11_w100", .distance_m = 25, .pa_level = 11,
     .max_tries = 3, .packets = 600, .lpl = true, .wakeup_ms = 100},
    {.name = "lpl_d25_pa15_w200_t2", .distance_m = 25, .pa_level = 15,
     .max_tries = 2, .pkt_interval_ms = 500, .packets = 400, .lpl = true,
     .wakeup_ms = 200},
    {.name = "lpl_d28_pa7_w50", .distance_m = 28, .pa_level = 7,
     .max_tries = 3, .pkt_interval_ms = 500, .packets = 400, .lpl = true,
     .wakeup_ms = 50},

    // --- shared medium: N identical contenders vs the N = 1 points ---
    {.name = "net2_csma_d20_pa11", .distance_m = 20, .pa_level = 11,
     .max_tries = 3, .packets = 600, .nodes = 2},
    {.name = "net3_csma_d25_pa15", .distance_m = 25, .pa_level = 15,
     .max_tries = 3, .pkt_interval_ms = 150, .packets = 600, .nodes = 3},
    {.name = "net3_csma_d15_pa31_i50", .distance_m = 15, .max_tries = 3,
     .pkt_interval_ms = 50, .packets = 500, .nodes = 3},
    {.name = "net2_lpl_d20_pa15_w50", .distance_m = 20, .pa_level = 15,
     .max_tries = 3, .pkt_interval_ms = 300, .packets = 400, .nodes = 2,
     .lpl = true, .wakeup_ms = 50},
};
// clang-format on

INSTANTIATE_TEST_SUITE_P(
    ServiceCurve, ValidationGrid, ::testing::ValuesIn(kGrid),
    [](const ::testing::TestParamInfo<GridPoint>& info) {
      return std::string(info.param.name);
    });

// --- the harness must bite: mis-parameterised bounds fail ---------------

bool MentionsRadioLoss(const CrossValidationReport& report) {
  for (const std::string& v : report.violations) {
    if (v.find("radio loss") != std::string::npos) return true;
  }
  return false;
}

// "The model thinks the channel is twice as good as it is." On a lossy
// single-try link the measured radio loss must overshoot the halved
// analytic envelope by more than the DKW band.
TEST(ServiceCurveNegative, HalvedPerFailsOnLossyLink) {
  GridPoint p;
  p.name = "negative_half";
  p.distance_m = 31;
  p.pa_level = 7;
  p.max_tries = 1;
  p.packets = 12000;
  p.no_interference = true;
  CrossValidationOptions options = MakeOptions(p);
  options.curve.per_scale = 0.5;
  const CrossValidationReport report = RunCrossValidation(options);
  EXPECT_FALSE(report.Passed()) << report.ToString();
  EXPECT_TRUE(MentionsRadioLoss(report)) << report.ToString();
}

// A grosser mis-parameterisation is caught with far fewer samples, and
// with every channel impairment left on.
TEST(ServiceCurveNegative, QuarteredPerFailsQuickly) {
  GridPoint p;
  p.name = "negative_quarter";
  p.distance_m = 28;
  p.pa_level = 7;
  p.max_tries = 1;
  p.packets = 2500;
  CrossValidationOptions options = MakeOptions(p);
  options.curve.per_scale = 0.25;
  const CrossValidationReport report = RunCrossValidation(options);
  EXPECT_FALSE(report.Passed()) << report.ToString();
  EXPECT_TRUE(MentionsRadioLoss(report)) << report.ToString();
}

// The correctly-parameterised model on the same configurations passes —
// the negative results above are the model's fault, not the link's.
TEST(ServiceCurveNegative, SameConfigsPassWhenParameterisedCorrectly) {
  GridPoint p;
  p.name = "control";
  p.distance_m = 31;
  p.pa_level = 7;
  p.max_tries = 1;
  p.packets = 12000;
  p.no_interference = true;
  const CrossValidationReport report = RunCrossValidation(MakeOptions(p));
  EXPECT_TRUE(report.Passed()) << report.ToString();
}

// --- scope: configurations the model refuses to certify ----------------

TEST(ServiceCurveScope, RejectsPoissonArrivals) {
  node::SimulationOptions options;
  options.poisson_arrivals = true;
  EXPECT_THROW(ServiceCurveModel{options}, std::invalid_argument);
}

TEST(ServiceCurveScope, RejectsMobility) {
  node::SimulationOptions options;
  options.mobility_speed_mps = 1.0;
  EXPECT_THROW(ServiceCurveModel{options}, std::invalid_argument);
}

TEST(ServiceCurveScope, RejectsSyntheticInterferer) {
  node::SimulationOptions options;
  options.interferer_duty_cycle = 0.25;
  EXPECT_THROW(ServiceCurveModel{options}, std::invalid_argument);
}

TEST(ServiceCurveScope, RejectsBadModelParameters) {
  const node::SimulationOptions options;
  EXPECT_THROW(ServiceCurveModel(options, 0), std::invalid_argument);
  ServiceCurveParams params;
  params.per_scale = 0.0;
  EXPECT_THROW(ServiceCurveModel(options, 1, params), std::invalid_argument);
  params.per_scale = 1.0;
  params.model_margin = -1.0;
  EXPECT_THROW(ServiceCurveModel(options, 1, params), std::invalid_argument);
}

TEST(ServiceCurveScope, ThrowsWhenNothingIsDelivered) {
  GridPoint p;
  p.name = "dead_link";
  p.distance_m = 80;
  p.pa_level = 3;
  p.packets = 40;
  EXPECT_THROW((void)RunCrossValidation(MakeOptions(p)), std::runtime_error);
}

}  // namespace
}  // namespace wsnlink::validate
