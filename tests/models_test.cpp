// Unit tests for the empirical models (Eqs. 2-8) including the paper's own
// published anchor values (Table II, zone thresholds).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/models/delay_model.h"
#include "core/models/energy_model.h"
#include "core/models/goodput_model.h"
#include "core/models/link_quality.h"
#include "core/models/model_set.h"
#include "core/models/ntries_model.h"
#include "core/models/per_model.h"
#include "core/models/plr_model.h"
#include "core/models/service_time_model.h"
#include "phy/frame.h"

namespace wsnlink::core::models {
namespace {

// ---------------------------------------------------------- PER model ----

TEST(PerModel, PaperEquation3Values) {
  PerModel per;
  // PER = 0.0128 * l * exp(-0.15 * snr).
  EXPECT_NEAR(per.Per(110, 19.0), 0.0128 * 110 * std::exp(-0.15 * 19.0),
              1e-12);
  // At 19 dB the max-payload PER drops to ~0.08 (the paper's "PER
  // decreases to 0.1 until around 19 dB for maximum l_D").
  EXPECT_NEAR(per.Per(110, 19.0), 0.082, 0.005);
}

TEST(PerModel, MonotoneInPayloadAndSnr) {
  PerModel per;
  EXPECT_GT(per.Per(110, 10.0), per.Per(20, 10.0));
  EXPECT_GT(per.Per(50, 8.0), per.Per(50, 15.0));
}

TEST(PerModel, ClampsToProbabilityRange) {
  PerModel per;
  EXPECT_DOUBLE_EQ(per.Per(114, -20.0), 1.0);
  EXPECT_LT(per.Per(1, 40.0), 1e-3);
  EXPECT_GE(per.Per(1, 40.0), 0.0);
}

TEST(PerModel, SnrForPerInvertsPer) {
  PerModel per;
  for (const double target : {0.5, 0.1, 0.01}) {
    const double snr = per.SnrForPer(80, target);
    EXPECT_NEAR(per.Per(80, snr), target, 1e-9);
  }
}

TEST(PerModel, ZoneClassificationMatchesFig6d) {
  EXPECT_EQ(PerModel::ClassifyZone(8.0), PerModel::Zone::kHighImpact);
  EXPECT_EQ(PerModel::ClassifyZone(15.0), PerModel::Zone::kMediumImpact);
  EXPECT_EQ(PerModel::ClassifyZone(19.0), PerModel::Zone::kLowImpact);
  EXPECT_EQ(PerModel::ClassifyZone(30.0), PerModel::Zone::kLowImpact);
}

TEST(PerModel, RejectsBadCoefficientsAndInputs) {
  EXPECT_THROW(PerModel({0.0, -0.1}), std::invalid_argument);
  EXPECT_THROW(PerModel({0.01, 0.1}), std::invalid_argument);
  PerModel per;
  EXPECT_THROW((void)per.Per(0, 10.0), std::invalid_argument);
  EXPECT_THROW((void)per.SnrForPer(50, 0.0), std::invalid_argument);
  EXPECT_THROW((void)per.SnrForPer(50, 1.0), std::invalid_argument);
}

// ------------------------------------------------------- Ntries model ----

TEST(NtriesModel, PaperEquation7Values) {
  NtriesModel n;
  EXPECT_NEAR(n.MeanTries(110, 20.0), 1.0 + 0.02 * 110 * std::exp(-3.6),
              1e-12);
  EXPECT_NEAR(n.MeanTries(110, 10.0), 1.3636, 0.01);
}

TEST(NtriesModel, AlwaysAtLeastOne) {
  NtriesModel n;
  EXPECT_GE(n.MeanTries(1, 40.0), 1.0);
  EXPECT_GE(n.MeanTriesTruncated(114, -10.0, 1), 1.0);
}

TEST(NtriesModel, TruncatedBoundedByMaxTries) {
  NtriesModel n;
  for (const int max_tries : {1, 2, 3, 8}) {
    const double mean = n.MeanTriesTruncated(114, 0.0, max_tries);
    EXPECT_LE(mean, static_cast<double>(max_tries));
    EXPECT_GE(mean, 1.0);
  }
}

TEST(NtriesModel, TruncatedConvergesToUnboundedOnGoodLinks) {
  NtriesModel n;
  EXPECT_NEAR(n.MeanTriesTruncated(50, 25.0, 8), n.MeanTries(50, 25.0), 1e-3);
}

TEST(NtriesModel, ImpliedFailureConsistentWithGeometric) {
  NtriesModel n;
  const double p = n.ImpliedAttemptFailure(110, 12.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  // Unbounded geometric mean tries = 1 / (1 - p).
  EXPECT_NEAR(1.0 / (1.0 - p), n.MeanTries(110, 12.0), 1e-9);
}

// ---------------------------------------------------------- PLR model ----

TEST(PlrModel, PaperEquation8Values) {
  PlrModel plr;
  const double base = 0.011 * 110 * std::exp(-0.145 * 10.0);
  EXPECT_NEAR(plr.RadioLoss(110, 10.0, 3), std::pow(base, 3), 1e-12);
}

TEST(PlrModel, MoreTriesStrictlyReduceLoss) {
  PlrModel plr;
  double prev = 1.1;
  for (int n = 1; n <= 8; ++n) {
    const double loss = plr.RadioLoss(114, 8.0, n);
    EXPECT_LT(loss, prev);
    prev = loss;
  }
}

TEST(PlrModel, MinTriesForLossFindsSmallest) {
  PlrModel plr;
  const int n = plr.MinTriesForLoss(110, 10.0, 0.01);
  ASSERT_GE(n, 1);
  EXPECT_LE(plr.RadioLoss(110, 10.0, n), 0.01);
  if (n > 1) {
    EXPECT_GT(plr.RadioLoss(110, 10.0, n - 1), 0.01);
  }
}

TEST(PlrModel, MinTriesForLossSaturatesAtLimit) {
  PlrModel plr;
  // Hopeless link: even `limit` tries cannot reach the target.
  EXPECT_EQ(plr.MinTriesForLoss(114, -5.0, 1e-9, 4), 4);
}

TEST(QueueLoss, FluidEstimate) {
  EXPECT_DOUBLE_EQ(QueueLossEstimate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(QueueLossEstimate(1.0), 0.0);
  EXPECT_NEAR(QueueLossEstimate(2.0), 0.5, 1e-12);
  EXPECT_NEAR(QueueLossEstimate(1.25), 0.2, 1e-12);
  EXPECT_THROW((void)QueueLossEstimate(-0.1), std::invalid_argument);
}

TEST(CombineLoss, IndependentComposition) {
  EXPECT_DOUBLE_EQ(CombineLoss(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(CombineLoss(1.0, 0.0), 1.0);
  EXPECT_NEAR(CombineLoss(0.5, 0.5), 0.75, 1e-12);
  EXPECT_THROW((void)CombineLoss(-0.1, 0.0), std::invalid_argument);
}

// ------------------------------------------------- service time model ----

TEST(ServiceTime, TableIIRow30dB) {
  // T_pkt=30ms, SNR=30, l_D=110, N=3, D_retry=30ms -> 18.52 ms.
  ServiceTimeModel model;
  ServiceTimeInputs in;
  in.payload_bytes = 110;
  in.snr_db = 30.0;
  in.max_tries = 3;
  in.retry_delay_ms = 30.0;
  EXPECT_NEAR(model.MeanMs(in), 18.52, 0.75);
}

TEST(ServiceTime, TableIIRow20dB) {
  ServiceTimeModel model;
  ServiceTimeInputs in;
  in.payload_bytes = 110;
  in.snr_db = 20.0;
  in.max_tries = 3;
  in.retry_delay_ms = 30.0;
  EXPECT_NEAR(model.MeanMs(in), 21.39, 1.0);
}

TEST(ServiceTime, TableIIRow10dB) {
  ServiceTimeModel model;
  ServiceTimeInputs in;
  in.payload_bytes = 110;
  in.snr_db = 10.0;
  in.max_tries = 3;
  in.retry_delay_ms = 30.0;
  EXPECT_NEAR(model.MeanMs(in), 37.08, 2.0);
}

TEST(ServiceTime, DeliveredLessThanLostOnBadLink) {
  ServiceTimeModel model;
  ServiceTimeInputs in;
  in.payload_bytes = 110;
  in.snr_db = 8.0;
  in.max_tries = 5;
  in.retry_delay_ms = 0.0;
  EXPECT_LT(model.DeliveredMs(in), model.LostMs(in));
  // The mixture lies between the two cases.
  const double mean = model.MeanMs(in);
  EXPECT_GE(mean, model.DeliveredMs(in));
  EXPECT_LE(mean, model.LostMs(in));
}

TEST(ServiceTime, GrowsWithPayloadTriesAndRetryDelay) {
  ServiceTimeModel model;
  ServiceTimeInputs in;
  in.snr_db = 10.0;
  in.max_tries = 3;
  in.payload_bytes = 50;

  auto base = model.MeanMs(in);
  in.payload_bytes = 110;
  EXPECT_GT(model.MeanMs(in), base);

  // The worst case (every attempt exhausted) strictly grows with the retry
  // budget. (The *mean* need not: more tries shift weight from the
  // expensive Eq. 6 branch to the cheaper Eq. 5 branch.)
  const double lost_base = model.LostMs(in);
  in.max_tries = 8;
  EXPECT_GT(model.LostMs(in), lost_base);

  base = model.MeanMs(in);
  in.retry_delay_ms = 60.0;
  EXPECT_GT(model.MeanMs(in), base);
}

TEST(ServiceTime, NoRetransmissionIgnoresRetryDelay) {
  ServiceTimeModel model;
  ServiceTimeInputs a;
  a.payload_bytes = 80;
  a.snr_db = 25.0;
  a.max_tries = 1;
  a.retry_delay_ms = 0.0;
  ServiceTimeInputs b = a;
  b.retry_delay_ms = 100.0;
  // With N=1 there are no retries, but Eq. (5) still charges (N_tries-1)
  // partial retries for the *average* — with N capped at 1 both match.
  EXPECT_NEAR(model.MeanMs(a), model.MeanMs(b), 1e-9);
}

// -------------------------------------------------------- energy model ----

TEST(EnergyModel, Equation2HandComputed) {
  EnergyModel energy;
  // E_tx(31) = 0.2088 uJ/bit; overhead 19 B.
  const double per = PerModel().Per(68, 6.0);
  const double expected = 0.2088 * (19.0 + 68.0) / 68.0 / (1.0 - per);
  EXPECT_NEAR(energy.MicrojoulesPerBit(68, 6.0, 31), expected, 1e-9);
}

TEST(EnergyModel, InfiniteWhenPerSaturates) {
  EnergyModel energy;
  EXPECT_TRUE(std::isinf(energy.MicrojoulesPerBit(114, -20.0, 31)));
  EXPECT_DOUBLE_EQ(energy.BitsPerMicrojoule(114, -20.0, 31), 0.0);
}

TEST(EnergyModel, OptimalPayloadIsMaxAboveThreshold) {
  // Sec. IV-B: above ~17 dB the energy-optimal payload is the maximum.
  EnergyModel energy;
  EXPECT_EQ(energy.OptimalPayload(17.0, 31), phy::kMaxPayloadBytes);
  EXPECT_EQ(energy.OptimalPayload(25.0, 31), phy::kMaxPayloadBytes);
}

TEST(EnergyModel, OptimalPayloadShrinksInGreyZone) {
  // Fig. 9: optimal l_D decreases from max to <40 B as SNR drops
  // from 17 dB to 5 dB.
  EnergyModel energy;
  const int at_10 = energy.OptimalPayload(10.0, 31);
  const int at_5 = energy.OptimalPayload(5.0, 31);
  EXPECT_LT(at_10, phy::kMaxPayloadBytes);
  EXPECT_LT(at_5, 45);
  EXPECT_LT(at_5, at_10);
}

TEST(EnergyModel, OptimalPaLevelPrefersJustEnoughPower) {
  // SNR(level) mapping of a 35 m link: lower levels save energy only while
  // the PER cost stays moderate.
  EnergyModel energy;
  const LinkQualityMap lq;
  const int best = energy.OptimalPaLevel(
      110, [&](int level) { return lq.SnrDb(level, 35.0); });
  EXPECT_GE(best, 7);
  EXPECT_LT(best, 31);  // max power is never energy-optimal at 35 m
}

// ------------------------------------------------------- goodput model ----

TEST(GoodputModel, MaxPayloadOptimalOutsideGreyZone) {
  GoodputModel goodput;
  EXPECT_EQ(goodput.OptimalPayload(20.0, 8), phy::kMaxPayloadBytes);
  EXPECT_EQ(goodput.OptimalPayload(9.0, 8), phy::kMaxPayloadBytes);
}

TEST(GoodputModel, OptimalPayloadShrinksDeepInGreyZone) {
  GoodputModel goodput;
  const int no_retx = goodput.OptimalPayload(6.0, 1);
  EXPECT_LT(no_retx, phy::kMaxPayloadBytes);
}

TEST(GoodputModel, RetransmissionsGrowOptimalPayload) {
  // Sec. V-C: larger N_maxTries increases the goodput-optimal payload.
  GoodputModel goodput;
  EXPECT_GE(goodput.OptimalPayload(6.0, 8), goodput.OptimalPayload(6.0, 1));
}

TEST(GoodputModel, GoodputIncreasesWithSnr) {
  GoodputModel goodput;
  ServiceTimeInputs in;
  in.payload_bytes = 110;
  in.max_tries = 3;
  double prev = 0.0;
  for (double snr = 5.0; snr <= 30.0; snr += 5.0) {
    in.snr_db = snr;
    const double g = goodput.MaxGoodputKbps(in);
    EXPECT_GT(g, prev);
    prev = g;
  }
  // Saturates near the stack's practical ceiling (well below 250 kbps
  // because of SPI + MAC overheads).
  EXPECT_LT(prev, 60.0);
  EXPECT_GT(prev, 30.0);
}

TEST(GoodputModel, CaseStudyJointPointBeatsBaselines) {
  // The Table IV "our work" configuration at SNR 6 dB.
  GoodputModel goodput;
  ServiceTimeInputs ours;
  ours.payload_bytes = 68;
  ours.snr_db = 6.0;
  ours.max_tries = 3;
  const double g_ours = goodput.MaxGoodputKbps(ours);

  ServiceTimeInputs power_only;  // [11]: max power, l=114, N=1
  power_only.payload_bytes = 114;
  power_only.snr_db = 6.0;
  power_only.max_tries = 1;
  const double g_power = goodput.MaxGoodputKbps(power_only);

  EXPECT_GT(g_ours, g_power);
  // Magnitudes in the paper's ballpark (22.28 vs 15.39 kbps).
  EXPECT_NEAR(g_ours, 22.3, 4.0);
}

// --------------------------------------------------------- delay model ----

TEST(DelayModel, TableIIUtilization) {
  DelayModel delay;
  ServiceTimeInputs in;
  in.payload_bytes = 110;
  in.max_tries = 3;
  in.retry_delay_ms = 30.0;

  in.snr_db = 10.0;
  EXPECT_NEAR(delay.Utilization(in, 30.0), 1.236, 0.08);
  EXPECT_FALSE(delay.Stable(in, 30.0));

  in.snr_db = 20.0;
  EXPECT_NEAR(delay.Utilization(in, 30.0), 0.713, 0.04);
  EXPECT_TRUE(delay.Stable(in, 30.0));

  in.snr_db = 30.0;
  EXPECT_NEAR(delay.Utilization(in, 30.0), 0.617, 0.03);
}

TEST(DelayModel, QueueWaitExplodesTowardsSaturation) {
  DelayModel delay;
  ServiceTimeInputs in;
  in.payload_bytes = 110;
  in.snr_db = 25.0;
  in.max_tries = 3;
  const double t_service = delay.Service().MeanMs(in);

  const double relaxed = delay.QueueWaitMs(in, t_service * 2.0, 30);
  const double tight = delay.QueueWaitMs(in, t_service * 1.02, 30);
  EXPECT_GT(tight, 5.0 * relaxed);
}

TEST(DelayModel, SaturatedDelayScalesWithQueueCapacity) {
  DelayModel delay;
  ServiceTimeInputs in;
  in.payload_bytes = 110;
  in.snr_db = 10.0;
  in.max_tries = 8;
  // rho > 1 at T_pkt = 10 ms.
  ASSERT_FALSE(delay.Stable(in, 10.0));
  const double q1 = delay.TotalDelayMs(in, 10.0, 1);
  const double q30 = delay.TotalDelayMs(in, 10.0, 30);
  // Fig. 15: Qmax=30 delays are orders of magnitude above Qmax=1.
  EXPECT_GT(q30, 10.0 * q1);
}

TEST(DelayModel, MaxStableTries) {
  DelayModel delay;
  // Generous interval: all 8 tries stable.
  EXPECT_EQ(delay.MaxStableTries(50, 25.0, 0.0, 500.0), 8);
  // Impossible interval: not even one.
  EXPECT_EQ(delay.MaxStableTries(110, 25.0, 0.0, 5.0), 0);
}

// ----------------------------------------------------------- model set ----

TEST(ModelSet, PredictionFieldsConsistent) {
  ModelSet models;
  StackConfig config;
  config.distance_m = 30.0;
  config.pa_level = 15;
  config.max_tries = 3;
  config.queue_capacity = 10;
  config.pkt_interval_ms = 50.0;
  config.payload_bytes = 80;

  const auto p = models.Predict(config);
  EXPECT_NEAR(p.snr_db, models.LinkQuality().SnrDb(15, 30.0), 1e-12);
  EXPECT_NEAR(p.per, models.Per().Per(80, p.snr_db), 1e-12);
  EXPECT_NEAR(p.utilization, p.service_time_ms / 50.0, 1e-12);
  EXPECT_NEAR(p.plr_total,
              1.0 - (1.0 - p.plr_queue) * (1.0 - p.plr_radio), 1e-12);
  EXPECT_GT(p.max_goodput_kbps, 0.0);
  EXPECT_GT(p.total_delay_ms, p.service_time_ms - 1e-9);
}

TEST(ModelSet, PredictAtSnrOverridesPlacement) {
  ModelSet models;
  StackConfig config;
  const auto a = models.PredictAtSnr(config, 10.0);
  const auto b = models.PredictAtSnr(config, 25.0);
  EXPECT_GT(a.per, b.per);
  EXPECT_DOUBLE_EQ(a.snr_db, 10.0);
}

TEST(ModelSet, SummaryTableMentionsAllModels) {
  const std::string summary = ModelSet().SummaryTable();
  for (const char* token : {"Eq. 2", "Eq. 3", "Eq. 4", "Eq. 7", "Eq. 8"}) {
    EXPECT_NE(summary.find(token), std::string::npos) << token;
  }
}

// -------------------------------------------------------- link quality ----

TEST(LinkQuality, SnrDecreasesWithDistanceIncreasesWithPower) {
  LinkQualityMap lq;
  EXPECT_GT(lq.SnrDb(31, 10.0), lq.SnrDb(31, 35.0));
  EXPECT_GT(lq.SnrDb(31, 20.0), lq.SnrDb(3, 20.0));
}

TEST(LinkQuality, MinPaLevelForSnr) {
  LinkQualityMap lq;
  const int level = lq.MinPaLevelForSnr(20.0, 19.0);
  ASSERT_GT(level, 0);
  EXPECT_GE(lq.SnrDb(level, 20.0), 19.0);
  // The next lower level (if any) must fall short.
  if (level > 3) {
    EXPECT_LT(lq.SnrDb(level - 4, 20.0), 19.0);
  }
  // Far away, even max power may fail a high target.
  EXPECT_EQ(lq.MinPaLevelForSnr(35.0, 25.0), -1);
}

TEST(LinkQuality, PaperCaseStudyAnchor) {
  // The case-study link has ~6 dB SNR at max power: a deeply shadowed
  // 35 m placement (-17 dB spatial fade) in our calibrated hallway.
  LinkQualityMap lq(channel::PathLossParams{}, -95.0, -17.0);
  EXPECT_NEAR(lq.SnrDb(31, 35.0), 6.0, 1.5);
}

}  // namespace
}  // namespace wsnlink::core::models
