// Tests for time-windowed metrics.
#include <gtest/gtest.h>

#include "metrics/link_metrics.h"
#include "metrics/timeline.h"
#include "node/link_simulation.h"

namespace wsnlink::metrics {
namespace {

node::SimulationOptions BaseOptions() {
  node::SimulationOptions options;
  options.config.distance_m = 15.0;
  options.config.pa_level = 31;
  options.config.max_tries = 3;
  options.config.queue_capacity = 10;
  options.config.pkt_interval_ms = 20.0;
  options.config.payload_bytes = 80;
  options.packet_count = 500;  // 10 s of traffic
  options.seed = 60;
  return options;
}

TEST(Timeline, WindowsTileTheRun) {
  const auto result = node::RunLinkSimulation(BaseOptions());
  const auto timeline = ComputeTimeline(result.log, sim::kSecond);
  ASSERT_GE(timeline.size(), 10u);
  int total_arrivals = 0;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_EQ(timeline[i].window_start,
              static_cast<sim::Time>(i) * sim::kSecond);
    EXPECT_EQ(timeline[i].window_end - timeline[i].window_start,
              sim::kSecond);
    total_arrivals += timeline[i].arrivals;
  }
  EXPECT_EQ(total_arrivals, result.generated);
}

TEST(Timeline, SteadyLinkGivesFlatSeries) {
  const auto result = node::RunLinkSimulation(BaseOptions());
  const auto timeline = ComputeTimeline(result.log, sim::kSecond);
  // Interior windows (skip the possibly partial last one): stable goodput
  // of 50 pkt/s * 640 bits = 32 kbps.
  for (std::size_t i = 0; i + 1 < timeline.size(); ++i) {
    EXPECT_NEAR(timeline[i].goodput_kbps, 32.0, 3.0) << "window " << i;
    EXPECT_LT(timeline[i].plr_total, 0.1);
  }
}

TEST(Timeline, MobilityShowsDegradationOverTime) {
  auto options = BaseOptions();
  options.config.pa_level = 7;
  options.config.max_tries = 1;
  options.config.pkt_interval_ms = 50.0;
  options.packet_count = 1200;  // 60 s: walks 10 m -> 35 m within one leg
  options.mobility_speed_mps = 0.5;
  options.config.distance_m = 10.0;
  const auto result = node::RunLinkSimulation(options);
  const auto timeline = ComputeTimeline(result.log, 10 * sim::kSecond);
  ASSERT_GE(timeline.size(), 5u);
  // First window: near position (10-15 m). Later window: near 35 m.
  EXPECT_LT(timeline.front().plr_total + 0.1, timeline[4].plr_total);
}

TEST(Timeline, QueueDropsAttributedToWindows) {
  auto options = BaseOptions();
  options.config.pkt_interval_ms = 2.0;  // saturating
  options.config.queue_capacity = 1;
  options.packet_count = 1000;
  const auto result = node::RunLinkSimulation(options);
  const auto timeline = ComputeTimeline(result.log, sim::kSecond);
  ASSERT_FALSE(timeline.empty());
  EXPECT_GT(timeline.front().plr_queue, 0.5);
}

TEST(Timeline, EmptyLogAndBadWindow) {
  link::PacketLog empty;
  EXPECT_TRUE(ComputeTimeline(empty, sim::kSecond).empty());
  EXPECT_THROW((void)ComputeTimeline(empty, 0), std::invalid_argument);
}

TEST(Timeline, EnergyPerBitMatchesWholeRunRoughly) {
  const auto options = BaseOptions();
  const auto result = node::RunLinkSimulation(options);
  const auto whole = ComputeMetrics(result, options.config.pkt_interval_ms);
  const auto timeline = ComputeTimeline(result.log, sim::kSecond);
  double weighted = 0.0;
  double bits = 0.0;
  for (const auto& w : timeline) {
    const double window_bits =
        w.goodput_kbps * 1000.0 * sim::ToSeconds(sim::kSecond);
    weighted += w.energy_uj_per_bit * window_bits;
    bits += window_bits;
  }
  ASSERT_GT(bits, 0.0);
  EXPECT_NEAR(weighted / bits, whole.energy_uj_per_bit,
              0.05 * whole.energy_uj_per_bit);
}

}  // namespace
}  // namespace wsnlink::metrics
