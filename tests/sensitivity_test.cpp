// Tests for the per-parameter sensitivity analysis.
#include <gtest/gtest.h>


#include <cmath>
#include "core/opt/sensitivity.h"

namespace wsnlink::core::opt {
namespace {

StackConfig BaseAt(double distance, int pa_level) {
  StackConfig config;
  config.distance_m = distance;
  config.pa_level = pa_level;
  config.max_tries = 3;
  config.queue_capacity = 10;
  config.pkt_interval_ms = 50.0;
  config.payload_bytes = 80;
  return config;
}

TEST(Sensitivity, CoversAllSixTunableParameters) {
  const models::ModelSet models;
  const auto report = AnalyzeSensitivity(models, BaseAt(20.0, 19));
  ASSERT_EQ(report.parameters.size(), 6u);
  std::vector<std::string> names;
  for (const auto& p : report.parameters) names.push_back(p.parameter);
  EXPECT_EQ(names, (std::vector<std::string>{"P_tx", "l_D", "N_maxTries",
                                             "D_retry", "Q_max", "T_pkt"}));
}

TEST(Sensitivity, RangesAreOrderedAndFinite) {
  const models::ModelSet models;
  const auto report = AnalyzeSensitivity(models, BaseAt(25.0, 15));
  for (const auto& p : report.parameters) {
    EXPECT_LE(p.energy_uj_per_bit.min, p.energy_uj_per_bit.max) << p.parameter;
    EXPECT_LE(p.max_goodput_kbps.min, p.max_goodput_kbps.max) << p.parameter;
    EXPECT_LE(p.total_delay_ms.min, p.total_delay_ms.max) << p.parameter;
    EXPECT_GE(p.plr_total.min, 0.0);
    EXPECT_LE(p.plr_total.max, 1.0);
    EXPECT_TRUE(std::isfinite(p.total_delay_ms.max)) << p.parameter;
  }
}

TEST(Sensitivity, PowerDominatesOnAGreyLink) {
  // In the grey zone, output power is the big lever for loss and goodput.
  const models::ModelSet models;
  const auto report = AnalyzeSensitivity(models, BaseAt(35.0, 11));
  EXPECT_EQ(report.MostInfluentialFor(Metric::kLoss).parameter, "P_tx");
  EXPECT_EQ(report.MostInfluentialFor(Metric::kGoodput).parameter, "P_tx");
}

TEST(Sensitivity, LossLeverageCollapsesOnAStrongLink) {
  // Low-impact zone: no knob can move loss much (Fig. 6(d)'s flat region).
  const models::ModelSet models;
  const auto strong = AnalyzeSensitivity(models, BaseAt(10.0, 31));
  const auto grey = AnalyzeSensitivity(models, BaseAt(35.0, 11));
  const double strong_loss_span =
      strong.MostInfluentialFor(Metric::kLoss).plr_total.Span();
  const double grey_loss_span =
      grey.MostInfluentialFor(Metric::kLoss).plr_total.Span();
  EXPECT_LT(strong_loss_span, 0.5 * grey_loss_span);
}

TEST(Sensitivity, PayloadAlwaysMovesEnergy) {
  // Overhead amortisation makes l_D an energy lever on every link.
  const models::ModelSet models;
  for (const int level : {11, 19, 31}) {
    const auto report = AnalyzeSensitivity(models, BaseAt(20.0, level));
    for (const auto& p : report.parameters) {
      if (p.parameter == "l_D") {
        EXPECT_GT(p.energy_uj_per_bit.Span(), 0.1) << "level=" << level;
      }
    }
  }
}

TEST(Sensitivity, FixedSnrOverride) {
  const models::ModelSet models;
  const auto at_link = AnalyzeSensitivity(models, BaseAt(20.0, 19));
  const auto at_6db = AnalyzeSensitivity(
      models, BaseAt(20.0, 19), ConfigSpace::PaperTableI(), 6.0);
  EXPECT_DOUBLE_EQ(at_6db.snr_db, 6.0);
  // The grey-zone override shows much larger loss leverage.
  EXPECT_GT(at_6db.MostInfluentialFor(Metric::kLoss).plr_total.Span(),
            at_link.MostInfluentialFor(Metric::kLoss).plr_total.Span());
}

TEST(Sensitivity, ReportRenders) {
  const models::ModelSet models;
  const auto text = AnalyzeSensitivity(models, BaseAt(20.0, 19)).ToString();
  for (const char* token : {"P_tx", "l_D", "T_pkt", "goodput span"}) {
    EXPECT_NE(text.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace wsnlink::core::opt
