// Optimistic parallel engine tests.
//
// The engine's whole contract is bit-identity: RunNetworkSimulation with
// --sim-threads N must produce byte-for-byte the results of the
// sequential kernel, for every N, both MACs, contended and private-air
// topologies — down to per-packet logs, per-node counters, medium
// statistics and aggregate counter snapshots. The TimeWarp suite pins the
// rollback substrate itself (kernel snapshots with lane-ordered keys, the
// whole-stack save/restore path including RNG lineages and counters) and
// the checkpoint/resume flow through the parallel engine; the
// ParallelNetwork suite pins engine-vs-sequential equivalence. Both run
// under TSan in CI (the optimistic scheduler is the racy-by-construction
// part of the codebase).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "experiment/checkpoint.h"
#include "experiment/contention.h"
#include "experiment/sweep.h"
#include "node/network_simulation.h"
#include "node/node_stack.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace wsnlink {
namespace {

node::SimulationOptions ContendedBase() {
  node::SimulationOptions options;
  options.config.distance_m = 20.0;
  options.config.pa_level = 19;
  options.config.max_tries = 3;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 25.0;
  options.config.payload_bytes = 110;
  options.seed = 1234;
  options.packet_count = 150;
  // Quiet ambient bursts and no synthetic interferer: every conflict the
  // engine has to detect comes from the contenders themselves.
  options.disable_interference = true;
  options.interferer_duty_cycle = 0.0;
  return options;
}

node::NetworkOptions ContendedNetwork(int nodes, int sim_threads) {
  auto network = node::UniformNetwork(ContendedBase(),
                                      std::vector<double>(nodes, 20.0));
  network.sim_threads = sim_threads;
  return network;
}

void ExpectNodesIdentical(const node::SimulationResult& a,
                          const node::SimulationResult& b, int node) {
  EXPECT_EQ(a.generated, b.generated) << "node " << node;
  EXPECT_EQ(a.unique_delivered, b.unique_delivered) << "node " << node;
  EXPECT_EQ(a.duplicates, b.duplicates) << "node " << node;
  EXPECT_EQ(a.unique_payload_bytes, b.unique_payload_bytes) << "node " << node;
  EXPECT_EQ(a.last_delivery_at, b.last_delivery_at) << "node " << node;
  EXPECT_EQ(a.end_time, b.end_time) << "node " << node;
  EXPECT_EQ(a.events_executed, b.events_executed) << "node " << node;
  EXPECT_EQ(a.cca_busy, b.cca_busy) << "node " << node;
  EXPECT_EQ(a.receiver_idle_duty, b.receiver_idle_duty) << "node " << node;
  // Bit-exact double comparison is intentional across the board: same
  // seed, same order of operations — any drift is an equivalence bug.
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db) << "node " << node;
  ASSERT_EQ(a.rssi_stats.Count(), b.rssi_stats.Count()) << "node " << node;
  if (a.rssi_stats.Count() > 0) {
    EXPECT_EQ(a.rssi_stats.Mean(), b.rssi_stats.Mean()) << "node " << node;
    EXPECT_EQ(a.snr_stats.Mean(), b.snr_stats.Mean()) << "node " << node;
    EXPECT_EQ(a.lqi_stats.Mean(), b.lqi_stats.Mean()) << "node " << node;
  }
  EXPECT_EQ(a.counters, b.counters) << "node " << node;

  ASSERT_EQ(a.log.Packets().size(), b.log.Packets().size()) << "node " << node;
  for (std::size_t i = 0; i < a.log.Packets().size(); ++i) {
    const auto& pa = a.log.Packets()[i];
    const auto& pb = b.log.Packets()[i];
    EXPECT_EQ(pa.id, pb.id) << "node " << node << " packet " << i;
    EXPECT_EQ(pa.arrived_at, pb.arrived_at) << "node " << node << " pkt " << i;
    EXPECT_EQ(pa.dropped_at_queue, pb.dropped_at_queue)
        << "node " << node << " pkt " << i;
    EXPECT_EQ(pa.service_start, pb.service_start)
        << "node " << node << " pkt " << i;
    EXPECT_EQ(pa.completed_at, pb.completed_at)
        << "node " << node << " pkt " << i;
    EXPECT_EQ(pa.acked, pb.acked) << "node " << node << " pkt " << i;
    EXPECT_EQ(pa.delivered, pb.delivered) << "node " << node << " pkt " << i;
    EXPECT_EQ(pa.tries, pb.tries) << "node " << node << " pkt " << i;
    EXPECT_EQ(pa.tx_energy_uj, pb.tx_energy_uj)
        << "node " << node << " pkt " << i;
    EXPECT_EQ(pa.listen_time, pb.listen_time)
        << "node " << node << " pkt " << i;
    EXPECT_EQ(pa.first_delivered_at, pb.first_delivered_at)
        << "node " << node << " pkt " << i;
    EXPECT_EQ(pa.rssi_dbm, pb.rssi_dbm) << "node " << node << " pkt " << i;
  }
  ASSERT_EQ(a.log.Attempts().size(), b.log.Attempts().size())
      << "node " << node;
  for (std::size_t i = 0; i < a.log.Attempts().size(); ++i) {
    const auto& aa = a.log.Attempts()[i];
    const auto& ab = b.log.Attempts()[i];
    EXPECT_EQ(aa.packet_id, ab.packet_id) << "node " << node << " att " << i;
    EXPECT_EQ(aa.attempt, ab.attempt) << "node " << node << " att " << i;
    EXPECT_EQ(aa.at, ab.at) << "node " << node << " att " << i;
    EXPECT_EQ(aa.data_received, ab.data_received)
        << "node " << node << " att " << i;
    EXPECT_EQ(aa.acked, ab.acked) << "node " << node << " att " << i;
    EXPECT_EQ(aa.snr_db, ab.snr_db) << "node " << node << " att " << i;
  }
}

void ExpectNetworksIdentical(const node::NetworkResult& a,
                             const node::NetworkResult& b) {
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.medium_active, b.medium_active);
  EXPECT_EQ(a.medium.frames, b.medium.frames);
  EXPECT_EQ(a.medium.busy_hits, b.medium.busy_hits);
  EXPECT_EQ(a.medium.collisions, b.medium.collisions);
  EXPECT_EQ(a.medium.captures, b.medium.captures);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered_unique, b.delivered_unique);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.acked_packets, b.acked_packets);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.cca_busy, b.cca_busy);
  EXPECT_EQ(a.per, b.per);
  EXPECT_EQ(a.plr_total, b.plr_total);
  EXPECT_EQ(a.run_counters, b.run_counters);
  EXPECT_EQ(a.aggregate_counters, b.aggregate_counters);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    ExpectNodesIdentical(a.nodes[i], b.nodes[i], static_cast<int>(i));
  }
}

// --- engine vs sequential equivalence ---------------------------------

TEST(ParallelNetwork, ThreadsOneVsEightBitIdenticalCsma) {
  for (const int nodes : {2, 4, 8}) {
    const auto seq = node::RunNetworkSimulation(ContendedNetwork(nodes, 1));
    const auto par = node::RunNetworkSimulation(ContendedNetwork(nodes, 8));
    // The contended rungs must actually exercise conflict detection, or
    // this test proves nothing about speculation.
    EXPECT_GT(seq.cca_busy, 0u) << "nodes " << nodes;
    ExpectNetworksIdentical(seq, par);
  }
}

TEST(ParallelNetwork, ThreadsOneVsEightBitIdenticalLpl) {
  auto base = ContendedBase();
  base.mac = node::MacKind::kLpl;
  base.lpl_wakeup_interval_ms = 50.0;
  base.config.pkt_interval_ms = 100.0;
  base.packet_count = 60;
  for (const int nodes : {2, 4}) {
    auto network =
        node::UniformNetwork(base, std::vector<double>(nodes, 20.0));
    const auto seq = node::RunNetworkSimulation(network);
    network.sim_threads = 8;
    const auto par = node::RunNetworkSimulation(network);
    ExpectNetworksIdentical(seq, par);
  }
}

TEST(ParallelNetwork, EveryThreadCountAgrees) {
  const auto reference = node::RunNetworkSimulation(ContendedNetwork(5, 1));
  // Covers lp_count < nodes, lp_count == nodes and the lp_count > nodes
  // clamp in one sweep.
  for (const int threads : {2, 3, 5, 16}) {
    const auto par =
        node::RunNetworkSimulation(ContendedNetwork(5, threads));
    ExpectNetworksIdentical(reference, par);
  }
}

TEST(ParallelNetwork, UncontendedPrivateAirMatchesSequential) {
  auto network = ContendedNetwork(4, 1);
  network.shared_medium = false;
  const auto seq = node::RunNetworkSimulation(network);
  network.sim_threads = 4;
  const auto par = node::RunNetworkSimulation(network);
  EXPECT_FALSE(par.medium_active);
  ExpectNetworksIdentical(seq, par);
}

// Rolled-back speculation must leave no trace in any counter: the
// sequential and parallel aggregate snapshots (mac.cca_busy, link.*,
// sim.* and the medium.* samples) must agree exactly.
TEST(ParallelNetwork, CountersCarryNoRolledBackWork) {
  const auto seq = node::RunNetworkSimulation(ContendedNetwork(3, 1));
  const auto par = node::RunNetworkSimulation(ContendedNetwork(3, 8));
  ASSERT_FALSE(seq.aggregate_counters.empty());
  EXPECT_EQ(seq.aggregate_counters, par.aggregate_counters);
  EXPECT_EQ(seq.run_counters, par.run_counters);
  ASSERT_EQ(seq.nodes.size(), par.nodes.size());
  for (std::size_t i = 0; i < seq.nodes.size(); ++i) {
    EXPECT_EQ(seq.nodes[i].counters, par.nodes[i].counters) << "node " << i;
  }
}

TEST(ParallelNetwork, TracerForcesSequentialEngine) {
  trace::Tracer traced_seq;
  trace::Tracer traced_par;
  auto a = ContendedNetwork(3, 1);
  a.base.tracer = &traced_seq;
  auto b = ContendedNetwork(3, 8);  // tracer attached: must fall back
  b.base.tracer = &traced_par;
  const auto ra = node::RunNetworkSimulation(a);
  const auto rb = node::RunNetworkSimulation(b);
  ExpectNetworksIdentical(ra, rb);
  EXPECT_EQ(traced_seq.Events(), traced_par.Events());
}

TEST(ParallelNetwork, RejectsNonPositiveSimThreads) {
  auto network = ContendedNetwork(2, 0);
  EXPECT_THROW(node::RunNetworkSimulation(network), std::invalid_argument);
}

TEST(ParallelNetwork, ContentionSweepSimThreadsInvariance) {
  experiment::ContentionOptions options;
  options.config.distance_m = 20.0;
  options.config.pkt_interval_ms = 25.0;
  options.node_counts = {1, 2, 4};
  options.base_seed = 77;
  options.packet_count = 120;

  auto serial = options;
  serial.sim_threads = 1;
  auto wide = options;
  wide.sim_threads = 8;
  const auto a = experiment::RunContentionSweep(serial);
  const auto b = experiment::RunContentionSweep(wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(experiment::SerializeContentionRow(a[i]),
              experiment::SerializeContentionRow(b[i]))
        << "rung " << i;
    EXPECT_EQ(a[i].result.aggregate_counters, b[i].result.aggregate_counters)
        << "rung " << i;
  }
}

// --- the rollback substrate -------------------------------------------

void StepUntil(sim::Simulator& simulator, sim::Time until) {
  sim::Time at = 0;
  while (simulator.PeekNextEventAt(at) && at <= until) simulator.Step();
}

// A forced straggler: run a stack halfway, snapshot, speculate well past
// the snapshot, then roll back and finish from the snapshot. If any state
// leaks through the rollback — an RNG lineage, a counter, a queue slot, a
// log record, a pending event key — the final results diverge from an
// identical stack that never speculated.
TEST(TimeWarp, RollbackRestoresRngLineageAndCountersExactly) {
  auto options = ContendedBase();
  options.packet_count = 120;
  const util::Rng root(options.seed);

  sim::Simulator sim_a;
  node::NodeStack straight(sim_a, options, root, nullptr, 0);
  straight.AttachTrace(nullptr, true);
  straight.Start();
  sim_a.Run();
  auto expected = straight.Harvest(sim_a.Now(), sim_a.EventsExecuted());

  sim::Simulator sim_b;
  node::NodeStack straggler(sim_b, options, root, nullptr, 0);
  straggler.AttachTrace(nullptr, true);
  straggler.Start();
  StepUntil(sim_b, sim::FromMilliseconds(800.0));

  sim::Simulator::Snapshot kernel_snapshot;
  node::NodeStack::Snapshot stack_snapshot;
  sim_b.SaveState(kernel_snapshot);
  straggler.SaveState(stack_snapshot);
  const std::uint64_t executed_at_snapshot = sim_b.EventsExecuted();

  // Speculate far beyond the snapshot, then discover the "violation".
  StepUntil(sim_b, sim::FromMilliseconds(2200.0));
  ASSERT_GT(sim_b.EventsExecuted(), executed_at_snapshot)
      << "speculation executed nothing — the rollback is untested";
  sim_b.RestoreState(kernel_snapshot);
  straggler.RestoreState(stack_snapshot);
  EXPECT_EQ(sim_b.EventsExecuted(), executed_at_snapshot);

  sim_b.Run();
  auto resumed = straggler.Harvest(sim_b.Now(), sim_b.EventsExecuted());
  ExpectNodesIdentical(expected, resumed, 0);
}

// Kernel snapshots must restore pending events with their original
// lane-ordered keys: after a rollback, same-time events still execute in
// (lane, lane-sequence) order and follow-ups inherit their lane.
TEST(TimeWarp, KernelSnapshotPreservesLaneOrderedKeys) {
  sim::Simulator simulator;
  simulator.ConfigureLanes(3);
  std::vector<std::pair<sim::Time, int>> log;

  simulator.SetCurrentLane(1);
  simulator.ScheduleAt(10, [&] {
    log.emplace_back(simulator.Now(), 1);
    simulator.Schedule(5, [&] { log.emplace_back(simulator.Now(), 11); });
  });
  simulator.SetCurrentLane(2);
  simulator.ScheduleAt(10, [&] { log.emplace_back(simulator.Now(), 2); });
  simulator.SetCurrentLane(0);
  simulator.ScheduleAt(10, [&] { log.emplace_back(simulator.Now(), 0); });

  sim::Simulator::Snapshot snapshot;
  simulator.SaveState(snapshot);
  simulator.Run();
  const std::vector<std::pair<sim::Time, int>> expected = {
      {10, 0}, {10, 1}, {10, 2}, {15, 11}};
  EXPECT_EQ(log, expected);

  log.clear();
  simulator.RestoreState(snapshot);
  simulator.Run();
  EXPECT_EQ(log, expected) << "replay after rollback diverged";
}

// --- checkpoint/resume through the parallel engine ---------------------

// A contention campaign interrupted mid-ladder and resumed must emit the
// same bytes as an uninterrupted sequential run: checkpointed rows are
// stored verbatim, and the remaining rung — recomputed in isolation from
// its stored seed, through the parallel engine — must reproduce the
// sequential row exactly.
TEST(TimeWarp, CheckpointResumeByteIdenticalWithParallelEngine) {
  experiment::ContentionOptions options;
  options.config.distance_m = 20.0;
  options.config.pkt_interval_ms = 25.0;
  options.node_counts = {2, 3, 4};
  options.base_seed = 99;
  options.packet_count = 100;

  auto sequential = options;
  sequential.sim_threads = 1;
  const auto reference = experiment::RunContentionSweep(sequential);
  ASSERT_EQ(reference.size(), 3u);

  // "Crash" after the first two rungs of a parallel run: persist them.
  auto interrupted = options;
  interrupted.sim_threads = 8;
  interrupted.node_counts = {2, 3};
  const auto first_half = experiment::RunContentionSweep(interrupted);
  experiment::Checkpoint checkpoint;
  checkpoint.meta.base_seed = options.base_seed;
  checkpoint.meta.packet_count = options.packet_count;
  checkpoint.meta.stride = 1;
  checkpoint.meta.space_size = options.node_counts.size();
  checkpoint.meta.config_count = options.node_counts.size();
  for (std::size_t i = 0; i < first_half.size(); ++i) {
    experiment::CheckpointRow row;
    row.index = i;
    row.csv_row = experiment::SerializeContentionRow(first_half[i]);
    checkpoint.rows.push_back(row);
  }
  const std::string path =
      testing::TempDir() + "/wsnlink_timewarp_checkpoint.txt";
  experiment::WriteCheckpoint(path, checkpoint);

  // Resume: reload, then recompute rung 2 in isolation from its stored
  // seed contract (SweepSeed(base, 2)), parallel engine on.
  const auto loaded = experiment::ReadCheckpoint(path);
  ASSERT_EQ(loaded.rows.size(), 2u);

  node::SimulationOptions base;
  base.config = options.config;
  base.seed = experiment::SweepSeed(options.base_seed, 2);
  base.packet_count = options.packet_count;
  base.disable_interference = true;
  base.interferer_duty_cycle = 0.0;
  auto remainder = node::UniformNetwork(
      base, std::vector<double>(4, options.config.distance_m));
  remainder.sim_threads = 8;
  experiment::ContentionPoint last;
  last.nodes = 4;
  last.seed = base.seed;
  last.result = node::RunNetworkSimulation(remainder);

  const std::vector<std::string> resumed = {
      loaded.rows[0].csv_row, loaded.rows[1].csv_row,
      experiment::SerializeContentionRow(last)};
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i],
              experiment::SerializeContentionRow(reference[i]))
        << "rung " << i;
  }
}

}  // namespace
}  // namespace wsnlink
