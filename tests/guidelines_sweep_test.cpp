// Parameterized validation of the Sec. IV-C / V-C / VI-B / VII-B guidelines
// against the simulator: across deployments, each guideline's
// recommendation must actually deliver on its own metric when measured,
// not just in model arithmetic.
#include <gtest/gtest.h>

#include <string>

#include "core/opt/guidelines.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"

namespace wsnlink::core::opt {
namespace {

struct DeploymentCase {
  double distance_m;
  double pkt_interval_ms;
};

class GuidelineSweep : public ::testing::TestWithParam<DeploymentCase> {
 protected:
  static metrics::LinkMetrics Measure(const StackConfig& config,
                                      std::uint64_t seed) {
    node::SimulationOptions options;
    options.config = config;
    options.seed = seed;
    options.packet_count = 900;
    return metrics::MeasureConfig(options);
  }

  static StackConfig Naive(const DeploymentCase& dep) {
    StackConfig config;
    config.distance_m = dep.distance_m;
    config.pkt_interval_ms = dep.pkt_interval_ms;
    config.pa_level = 31;
    config.max_tries = 1;
    config.queue_capacity = 1;
    config.payload_bytes = 30;
    return config;
  }
};

TEST_P(GuidelineSweep, EnergyGuidelineBeatsNaiveOnEnergy) {
  const Deployment dep{GetParam().distance_m, GetParam().pkt_interval_ms};
  const Guidelines g;
  const auto rec = g.MinimizeEnergy(dep);
  const auto recommended = Measure(rec.config, 1000);
  const auto naive = Measure(Naive(GetParam()), 1000);
  ASSERT_GT(recommended.delivered_unique, 100u);
  EXPECT_LT(recommended.energy_uj_per_bit, naive.energy_uj_per_bit)
      << rec.config.ToString();
}

TEST_P(GuidelineSweep, LossGuidelineMeetsItsTarget) {
  const Deployment dep{GetParam().distance_m, GetParam().pkt_interval_ms};
  const Guidelines g;
  const auto rec = g.MinimizeLoss(dep, 0.01);
  const auto measured = Measure(rec.config, 1001);
  // Target 1%; allow measurement noise + interference bursts.
  EXPECT_LT(measured.plr_total, 0.04) << rec.config.ToString();
}

TEST_P(GuidelineSweep, DelayGuidelineAvoidsQueueing) {
  const Deployment dep{GetParam().distance_m, GetParam().pkt_interval_ms};
  const Guidelines g;
  const auto rec = g.MinimizeDelay(dep);
  const auto measured = Measure(rec.config, 1002);
  ASSERT_GT(measured.delivered_unique, 100u);
  // No queue build-up: waiting time well under one service time.
  EXPECT_LT(measured.mean_queue_wait_ms, measured.mean_service_ms)
      << rec.config.ToString();
  EXPECT_LT(measured.utilization, 1.0);
}

TEST_P(GuidelineSweep, GoodputGuidelineSaturatesTheLink) {
  const Deployment dep{GetParam().distance_m, GetParam().pkt_interval_ms};
  const Guidelines g;
  const auto rec = g.MaximizeGoodput(dep);
  auto config = rec.config;
  const auto measured = Measure(config, 1003);
  // Bulk mode floods the queue (1 ms arrivals): most of the 900 generated
  // packets drop at the queue and only the served stream matters.
  // At least 60% of the model's saturated prediction must be realised
  // (the model is an upper bound at poor SNR).
  ASSERT_GT(measured.delivered_unique, 40u);
  EXPECT_GT(measured.goodput_kbps,
            0.6 * rec.predicted.max_goodput_kbps)
      << rec.config.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Deployments, GuidelineSweep,
    ::testing::Values(DeploymentCase{10.0, 100.0}, DeploymentCase{15.0, 60.0},
                      DeploymentCase{20.0, 100.0}, DeploymentCase{25.0, 150.0},
                      DeploymentCase{30.0, 100.0},
                      DeploymentCase{35.0, 200.0}),
    [](const ::testing::TestParamInfo<DeploymentCase>& info) {
      return "d" + std::to_string(static_cast<int>(info.param.distance_m)) +
             "_t" + std::to_string(static_cast<int>(info.param.pkt_interval_ms));
    });

}  // namespace
}  // namespace wsnlink::core::opt
