// Fixture: raw-string scanner regression. Every banned construct below
// sits inside raw-string literals (bare R and u8R/uR/UR/LR prefixed), at
// line starts a broken scanner would read as code. This file lives under
// serve/ so it is an LP-isolation root; a correct scanner reports nothing.
#include <string>

namespace fixture {

std::string Help() {
  std::string text = R"(
static int fake = 0;
thread_local int spook = 1;
)";
  const char* extra = u8R"u8(
static long ghost = 1;
)u8";
  const char16_t* wide = uR"(
static double haunt = 2.0;
)";
  const char32_t* wider = UR"(
static float shade = 3.0f;
)";
  const wchar_t* widest = LR"(
static char wisp = 'x';
)";
  text += extra[0];
  return text + static_cast<char>(wide[0] + wider[0]) +
         static_cast<char>(widest[0]);
}

}  // namespace fixture
