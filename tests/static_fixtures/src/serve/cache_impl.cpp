// Fixture: serve/ is itself an LP root; this mutable static carries a
// justified allow, so nothing may be reported (and the allow is not stale).
// wsnstatic:allow(lp-isolation): fixture — append-only, mutex-guarded registry

namespace fixture {

int CacheHits() {
  static int hits = 0;
  return ++hits;
}

}  // namespace fixture
