// Fixture: downward include — link (level 4) including phy (level 2) is
// the sanctioned direction and must produce nothing.
#pragma once

#include "phy/bad_radio.h"

namespace fixture {

int Frame(int payload);

}  // namespace fixture
