// Fixture: layer-DAG violation — phy (level 2) must not include from
// experiment (level 8).
#pragma once

#include "experiment/plan.h"

namespace fixture {

int Modulate(int symbol);

}  // namespace fixture
