// Fixture: a wsnlint:hot-path root whose banned-API violations live two
// calls away in other translation units. wsnlint polices this file itself;
// wsnstatic must follow the calls out of it.
// wsnlint:hot-path

namespace fixture {

int FormatRow(int config);
int PureMix(int value);

int RunHotLoop(int configs) {
  int acc = 0;
  for (int i = 0; i < configs; ++i) {
    acc += FormatRow(i);
    acc += PureMix(acc);
  }
  return acc;
}

}  // namespace fixture
