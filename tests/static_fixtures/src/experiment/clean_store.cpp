// Fixture: a serdes-complete struct. Both persisted fields survive the
// write/read cycle; the derived field carries a justified transient.
#include <string>

namespace fixture {

struct CleanMeta {
  long seed = 0;
  int count = 0;
  // wsnstatic:transient(digest): derived from seed and count on load
  unsigned digest = 0;
};

// wsnstatic:serdes(CleanMeta, WriteCleanStore, ReadCleanStore): fixture persistence contract
std::string WriteCleanStore(const CleanMeta& meta) {
  std::string body;
  body += "seed " + std::to_string(meta.seed) + "\n";
  body += "count " + std::to_string(meta.count) + "\n";
  return body;
}

CleanMeta ReadCleanStore(const std::string& body) {
  CleanMeta meta;
  meta.seed = static_cast<long>(body.size());
  meta.count = static_cast<int>(body.size() / 2);
  return meta;
}

}  // namespace fixture
