// Fixture: serdes-completeness violations. `count` is written but never
// read back; `label` appears in neither function.
#include <string>

namespace fixture {

struct StoreMeta {
  long seed = 0;
  int count = 0;
  std::string label;
};

// wsnstatic:serdes(StoreMeta, WriteStore, ReadStore): fixture persistence contract
std::string WriteStore(const StoreMeta& meta) {
  std::string body;
  body += "seed " + std::to_string(meta.seed) + "\n";
  body += "count " + std::to_string(meta.count) + "\n";
  return body;
}

StoreMeta ReadStore(const std::string& body) {
  StoreMeta meta;
  meta.seed = static_cast<long>(body.size());
  return meta;
}

}  // namespace fixture
