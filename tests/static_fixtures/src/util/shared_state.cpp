// Fixture: mutable static reachable from an LP root — must be flagged.
// The immutable table below it must not be.
#include "util/shared_state.h"

namespace fixture {

int SharedBump(int step) {
  static int hits = 0;
  static const int kScale = 2;
  hits += step;
  return hits * kScale;
}

}  // namespace fixture
