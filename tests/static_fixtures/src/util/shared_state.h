// Fixture: header pulled in by the LP root; its implementation file holds
// the offending static.
#pragma once

namespace fixture {

int SharedBump(int step);

}  // namespace fixture
