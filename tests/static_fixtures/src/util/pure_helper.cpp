// Fixture: reachable from the hot root but allocation- and entropy-free —
// must produce nothing.

namespace fixture {

int PureMix(int value) {
  return value * 2654435761u % 4096;
}

}  // namespace fixture
