// Fixture: heap allocation two calls below a hot root — must be flagged
// as hot-path-transitive even though this file is not itself hot.
#include <cstdlib>

namespace fixture {

char* AllocBuffer(unsigned bytes) {
  return static_cast<char*>(std::malloc(bytes));
}

}  // namespace fixture
