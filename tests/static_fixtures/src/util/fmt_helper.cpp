// Fixture: one call below the hot root. Clean itself — it forwards into
// the allocating helper, so the violation is two levels deep.

namespace fixture {

char* AllocBuffer(unsigned bytes);
long StampNow();

int FormatRow(int config) {
  char* buffer = AllocBuffer(64);
  buffer[0] = static_cast<char>(config);
  const long stamp = StampNow();
  return static_cast<int>(stamp) + buffer[0];
}

}  // namespace fixture
