// Fixture: wall-clock read two calls below a hot root — must be flagged
// as hot-path-transitive ambient entropy.
#include <chrono>

namespace fixture {

long StampNow() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace fixture
