// Fixture: LP-isolation root (matches the node/timewarp.cpp root rule).
// Pulls in shared_state.h, whose paired .cpp hides a mutable static — the
// reachability walk must find it through the header pairing.
#include "util/shared_state.h"

namespace fixture {

int Advance(int step) { return SharedBump(step); }

}  // namespace fixture
