// Fixture: snapshot-completeness violations. `dropped_` is saved but never
// restored; `forgotten_` appears in neither body. Both must be flagged.
#pragma once

namespace fixture {

class BadEngine {
 public:
  struct State {
    int ticks;
    int dropped;
  };

  void SaveState(State& out) const {
    out.ticks = ticks_;
    out.dropped = dropped_;
  }

  void RestoreState(const State& state) {
    ticks_ = state.ticks;
  }

 private:
  int ticks_ = 0;
  int dropped_ = 0;
  int forgotten_ = 0;
};

}  // namespace fixture
