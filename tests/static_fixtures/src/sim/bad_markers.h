// Fixture: marker-directive abuse on an otherwise complete snapshot pair.
// `cache_` is round-tripped, so its transient marker is stale; `ghost_`
// names no member at all.
#pragma once

namespace fixture {

class MarkedEngine {
 public:
  struct State {
    int cache;
  };

  void SaveState(State& out) const { out.cache = cache_; }
  void RestoreState(const State& state) { cache_ = state.cache; }

 private:
  // wsnstatic:transient(cache_): stale by construction — the member round-trips
  int cache_ = 0;
  // wsnstatic:transient(ghost_): names nothing in this file
};

}  // namespace fixture
