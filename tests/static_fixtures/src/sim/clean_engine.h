// Fixture: a snapshot-complete class. Every live member round-trips and
// the construction-time wiring carries a justified transient marker.
#pragma once

namespace fixture {

class CleanEngine {
 public:
  struct State {
    int ticks;
    long seed;
  };

  void SaveState(State& out) const {
    out.ticks = ticks_;
    out.seed = seed_;
  }

  void RestoreState(const State& state) {
    ticks_ = state.ticks;
    seed_ = state.seed;
  }

 private:
  int ticks_ = 0;
  long seed_ = 0;
  // wsnstatic:transient(observer_): attach-time wiring, not simulation state
  void* observer_ = nullptr;
};

}  // namespace fixture
