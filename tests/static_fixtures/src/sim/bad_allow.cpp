// Fixture: allow-directive abuse — unknown rule id, missing justification,
// and a justified allow that suppresses nothing (stale).
// wsnstatic:allow(no-such-rule): misspelt rule ids must be reported
// wsnstatic:allow(layer-dag)
// wsnstatic:allow(lp-isolation): nothing in this file trips the rule

namespace fixture {

int Answer() { return 42; }

}  // namespace fixture
