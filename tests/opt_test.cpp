// Unit tests for the optimization layer: config space, objectives,
// guidelines, Pareto front, epsilon-constraint MOP and baselines.
#include <gtest/gtest.h>

#include <set>

#include "core/models/model_set.h"
#include "core/opt/baselines.h"
#include "core/opt/config_space.h"
#include "core/opt/epsilon_constraint.h"
#include "core/opt/guidelines.h"
#include "core/opt/objectives.h"
#include "core/opt/pareto.h"
#include "phy/frame.h"

namespace wsnlink::core::opt {
namespace {

// ------------------------------------------------------- config space ----

TEST(ConfigSpace, PaperTableISizes) {
  const auto space = ConfigSpace::PaperTableI();
  // 8 * 4 * 3 * 2 * 6 * 7 = 8064 settings per distance (paper Sec. II-C).
  EXPECT_EQ(space.SizePerDistance(), 8064u);
  // 6 distances -> 48384, "close to 50 thousand".
  EXPECT_EQ(space.Size(), 48384u);
  EXPECT_NO_THROW(space.Validate());
}

TEST(ConfigSpace, AtEnumeratesEveryConfigExactlyOnce) {
  ConfigSpace space;
  space.distances_m = {10, 20};
  space.pa_levels = {3, 31};
  space.max_tries = {1, 3};
  space.retry_delays_ms = {0};
  space.queue_capacities = {1, 30};
  space.pkt_intervals_ms = {50};
  space.payload_bytes = {20, 110};
  ASSERT_EQ(space.Size(), 32u);

  std::set<std::string> seen;
  for (std::size_t i = 0; i < space.Size(); ++i) {
    seen.insert(space.At(i).ToString());
  }
  EXPECT_EQ(seen.size(), 32u);
  EXPECT_THROW((void)space.At(32), std::out_of_range);
}

TEST(ConfigSpace, DistanceIsSlowestIndex) {
  const auto space = ConfigSpace::PaperTableI();
  // The first SizePerDistance() entries share the first distance — the
  // paper ran all per-distance combinations before moving the mote.
  EXPECT_DOUBLE_EQ(space.At(0).distance_m, 10.0);
  EXPECT_DOUBLE_EQ(space.At(space.SizePerDistance() - 1).distance_m, 10.0);
  EXPECT_DOUBLE_EQ(space.At(space.SizePerDistance()).distance_m, 15.0);
}

TEST(ConfigSpace, ForEachVisitsAll) {
  ConfigSpace space;
  space.distances_m = {10};
  space.pa_levels = {31};
  space.max_tries = {1, 3};
  space.retry_delays_ms = {0, 30};
  space.queue_capacities = {1};
  space.pkt_intervals_ms = {50};
  space.payload_bytes = {20};
  std::size_t count = 0;
  space.ForEach([&count](const StackConfig&) { ++count; });
  EXPECT_EQ(count, 4u);
}

TEST(ConfigSpace, ValidateCatchesBadValues) {
  auto space = ConfigSpace::PaperTableI();
  space.pa_levels.push_back(12);  // not a CC2420 level
  EXPECT_THROW(space.Validate(), std::invalid_argument);

  auto empty = ConfigSpace::PaperTableI();
  empty.payload_bytes.clear();
  EXPECT_THROW(empty.Validate(), std::invalid_argument);
}

// ---------------------------------------------------------- objectives ----

TEST(Objectives, CostOrientation) {
  models::MetricPrediction p;
  p.energy_uj_per_bit = 2.0;
  p.max_goodput_kbps = 10.0;
  p.total_delay_ms = 30.0;
  p.plr_total = 0.25;
  EXPECT_DOUBLE_EQ(MetricValue(p, Metric::kGoodput), 10.0);
  EXPECT_DOUBLE_EQ(MetricCost(p, Metric::kGoodput), -10.0);
  EXPECT_DOUBLE_EQ(MetricCost(p, Metric::kEnergy), 2.0);
  EXPECT_DOUBLE_EQ(MetricCost(p, Metric::kDelay), 30.0);
  EXPECT_DOUBLE_EQ(MetricCost(p, Metric::kLoss), 0.25);
  EXPECT_EQ(MetricName(Metric::kEnergy), "energy[uJ/bit]");
}

// -------------------------------------------------------------- Pareto ----

models::MetricPrediction MakePrediction(double energy, double goodput) {
  models::MetricPrediction p;
  p.energy_uj_per_bit = energy;
  p.max_goodput_kbps = goodput;
  return p;
}

TEST(Pareto, DominationSemantics) {
  const std::vector<Metric> metrics{Metric::kEnergy, Metric::kGoodput};
  const auto better = MakePrediction(1.0, 20.0);
  const auto worse = MakePrediction(2.0, 10.0);
  const auto mixed = MakePrediction(0.5, 5.0);
  EXPECT_TRUE(Dominates(better, worse, metrics));
  EXPECT_FALSE(Dominates(worse, better, metrics));
  EXPECT_FALSE(Dominates(better, mixed, metrics));
  EXPECT_FALSE(Dominates(mixed, better, metrics));
  // Equal points do not dominate each other.
  EXPECT_FALSE(Dominates(better, better, metrics));
}

TEST(Pareto, FrontExtractsNonDominated) {
  const std::vector<Metric> metrics{Metric::kEnergy, Metric::kGoodput};
  std::vector<ParetoPoint> points;
  points.push_back({StackConfig{}, MakePrediction(1.0, 10.0)});  // front
  points.push_back({StackConfig{}, MakePrediction(2.0, 20.0)});  // front
  points.push_back({StackConfig{}, MakePrediction(2.5, 15.0)});  // dominated
  points.push_back({StackConfig{}, MakePrediction(0.5, 5.0)});   // front
  const auto front = ParetoFront(points, metrics);
  EXPECT_EQ(front.size(), 3u);
  for (const auto& p : front) {
    EXPECT_NE(p.prediction.energy_uj_per_bit, 2.5);
  }
}

// ------------------------------------------------- epsilon constraint ----

ConfigSpace SmallSpace() {
  ConfigSpace space;
  space.distances_m = {20.0};
  space.pa_levels = {3, 7, 11, 15, 19, 23, 27, 31};
  space.max_tries = {1, 3, 8};
  space.retry_delays_ms = {0.0};
  space.queue_capacities = {30};
  space.pkt_intervals_ms = {1.0};
  space.payload_bytes = {5, 20, 50, 80, 110, 114};
  return space;
}

TEST(EpsilonConstraint, UnconstrainedMatchesBruteForce) {
  const models::ModelSet models;
  const auto space = SmallSpace();
  Problem problem;
  problem.objective = Metric::kGoodput;
  const auto solution = SolveEpsilonConstraint(models, space, problem);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ(solution->feasible_count, space.Size());

  // Brute force comparison.
  double best = -1.0;
  for (std::size_t i = 0; i < space.Size(); ++i) {
    const auto p = models.Predict(space.At(i));
    best = std::max(best, p.max_goodput_kbps);
  }
  EXPECT_NEAR(solution->prediction.max_goodput_kbps, best, 1e-9);
}

TEST(EpsilonConstraint, ConstraintsFilterFeasibleSet) {
  const models::ModelSet models;
  const auto space = SmallSpace();
  Problem problem;
  problem.objective = Metric::kGoodput;
  problem.constraints.push_back(AtMost(Metric::kEnergy, 0.20));
  const auto solution = SolveEpsilonConstraint(models, space, problem);
  ASSERT_TRUE(solution.has_value());
  EXPECT_LE(solution->prediction.energy_uj_per_bit, 0.20);
  EXPECT_LT(solution->feasible_count, space.Size());

  // Tightening the budget can only reduce the achievable goodput.
  Problem tighter = problem;
  tighter.constraints[0] = AtMost(Metric::kEnergy, 0.175);
  const auto tight_solution = SolveEpsilonConstraint(models, space, tighter);
  ASSERT_TRUE(tight_solution.has_value());
  EXPECT_LE(tight_solution->prediction.max_goodput_kbps,
            solution->prediction.max_goodput_kbps + 1e-9);
}

TEST(EpsilonConstraint, InfeasibleReturnsNullopt) {
  const models::ModelSet models;
  Problem problem;
  problem.objective = Metric::kEnergy;
  problem.constraints.push_back(GoodputAtLeast(10000.0));  // impossible
  EXPECT_FALSE(SolveEpsilonConstraint(models, SmallSpace(), problem));
}

TEST(EpsilonConstraint, FixedSnrOverridesPlacement) {
  const models::ModelSet models;
  const auto space = SmallSpace();
  Problem at_6db;
  at_6db.objective = Metric::kGoodput;
  at_6db.fixed_snr_db = 6.0;
  const auto grey = SolveEpsilonConstraint(models, space, at_6db);
  ASSERT_TRUE(grey.has_value());
  // In the grey zone retransmissions are essential for goodput.
  EXPECT_GT(grey->config.max_tries, 1);

  // Without retransmission the grey-zone goodput-optimal payload is NOT
  // the maximum (Sec. V-C / Fig. 13 left panel).
  auto no_retx_space = space;
  no_retx_space.max_tries = {1};
  const auto no_retx = SolveEpsilonConstraint(models, no_retx_space, at_6db);
  ASSERT_TRUE(no_retx.has_value());
  EXPECT_LT(no_retx->config.payload_bytes, phy::kMaxPayloadBytes);
  // And its goodput is below the retransmitting optimum.
  EXPECT_LT(no_retx->prediction.max_goodput_kbps,
            grey->prediction.max_goodput_kbps);
}

TEST(EvaluateSpace, ReturnsEveryPoint) {
  const models::ModelSet models;
  const auto space = SmallSpace();
  const auto points = EvaluateSpace(models, space);
  EXPECT_EQ(points.size(), space.Size());
}

// ---------------------------------------------------------- guidelines ----

TEST(Guidelines, EnergyShortLinkUsesMinimalPowerMaxPayload) {
  Guidelines g;
  Deployment dep;
  dep.distance_m = 10.0;
  const auto rec = g.MinimizeEnergy(dep);
  EXPECT_EQ(rec.config.payload_bytes, phy::kMaxPayloadBytes);
  EXPECT_LT(rec.config.pa_level, 31);  // close link: low power suffices
  // The recommended link sits in (or above) the low-impact zone.
  EXPECT_GE(rec.predicted.snr_db, models::kEnergyMaxPayloadSnrDb - 1e-9);
}

TEST(Guidelines, EnergyRecommendationBeatsNaiveMaxPower) {
  Guidelines g;
  Deployment dep;
  dep.distance_m = 25.0;
  const auto rec = g.MinimizeEnergy(dep);

  StackConfig naive = rec.config;
  naive.pa_level = 31;
  naive.payload_bytes = 20;
  const auto naive_prediction = g.Models().Predict(naive);
  EXPECT_LT(rec.predicted.energy_uj_per_bit,
            naive_prediction.energy_uj_per_bit);
}

TEST(Guidelines, GoodputUsesMaxPayloadOutsideGreyZone) {
  Guidelines g;
  Deployment dep;
  dep.distance_m = 15.0;
  const auto rec = g.MaximizeGoodput(dep);
  EXPECT_EQ(rec.config.payload_bytes, phy::kMaxPayloadBytes);
  EXPECT_EQ(rec.config.max_tries, 8);
}

TEST(Guidelines, DelayKeepsUtilizationBelowOne) {
  Guidelines g;
  Deployment dep;
  dep.distance_m = 20.0;
  dep.pkt_interval_ms = 100.0;
  const auto rec = g.MinimizeDelay(dep);
  EXPECT_LT(rec.predicted.utilization, 1.0);
  EXPECT_EQ(rec.config.queue_capacity, 1);
  EXPECT_DOUBLE_EQ(rec.config.retry_delay_ms, 0.0);
}

TEST(Guidelines, LossMeetsTargetWhenFeasible) {
  Guidelines g;
  Deployment dep;
  dep.distance_m = 20.0;
  dep.pkt_interval_ms = 200.0;
  const auto rec = g.MinimizeLoss(dep, 0.01);
  EXPECT_LE(rec.predicted.plr_radio, 0.01 + 1e-9);
  EXPECT_LT(rec.predicted.utilization, 1.0);
}

TEST(Guidelines, LossFallsBackToLargeQueueWhenSaturated) {
  Guidelines g;
  Deployment dep;
  dep.distance_m = 35.0;
  dep.pkt_interval_ms = 5.0;  // brutal arrival rate: rho >= 1 inevitable
  const auto rec = g.MinimizeLoss(dep, 0.01);
  EXPECT_EQ(rec.config.queue_capacity, 30);
}

// ----------------------------------------------------------- baselines ----

TEST(Baselines, EachPolicyChangesOnlyItsKnob) {
  const auto base = CaseStudyBaseConfig(35.0);
  const auto power = TunePowerBaseline(base);
  EXPECT_EQ(power.config.pa_level, 31);
  EXPECT_EQ(power.config.payload_bytes, base.payload_bytes);
  EXPECT_EQ(power.config.max_tries, base.max_tries);

  const auto retx = TuneRetransmissionsBaseline(base);
  EXPECT_EQ(retx.config.pa_level, base.pa_level);
  EXPECT_EQ(retx.config.max_tries, 8);

  const auto min_payload = MinPayloadBaseline(base);
  EXPECT_EQ(min_payload.config.payload_bytes, 5);
  const auto max_payload = MaxPayloadBaseline(base);
  EXPECT_EQ(max_payload.config.payload_bytes, phy::kMaxPayloadBytes);
}

TEST(Baselines, JointTuningDominatesSinglesOnCaseStudyLink) {
  // Evaluate all policies at the case-study link quality (6 dB at max
  // power; single-knob policies that keep P_tx=23 sit at ~3 dB).
  const models::ModelSet models(
      models::kPaperPerFit, models::kPaperNtriesFit, models::kPaperPlrFit,
      models::LinkQualityMap(channel::PathLossParams{}, -95.0, -17.0));
  const auto base = CaseStudyBaseConfig(35.0);
  const auto joint = JointTuning(models, base, 0.45);
  const auto joint_prediction = models.Predict(joint.config);

  for (const auto& single :
       {TunePowerBaseline(base), TuneRetransmissionsBaseline(base),
        MinPayloadBaseline(base), MaxPayloadBaseline(base)}) {
    const auto p = models.Predict(single.config);
    EXPECT_GT(joint_prediction.max_goodput_kbps, p.max_goodput_kbps)
        << single.name;
  }
  // And it respects the energy budget.
  EXPECT_LE(joint_prediction.energy_uj_per_bit, 0.45 + 1e-9);
}

TEST(Baselines, AllPoliciesReturnsFiveNamedChoices) {
  const models::ModelSet models;
  const auto base = CaseStudyBaseConfig(30.0);
  const auto all = AllPolicies(models, base, 0.0);
  ASSERT_EQ(all.size(), 5u);
  std::set<std::string> names;
  for (const auto& choice : all) names.insert(choice.name);
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace wsnlink::core::opt
