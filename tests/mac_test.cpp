// Unit tests for the CSMA-CA MAC state machine.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "channel/channel.h"
#include "mac/csma_mac.h"
#include "phy/cc2420.h"
#include "phy/frame.h"
#include "phy/timing.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace wsnlink::mac {
namespace {

/// A strong short link where essentially every frame gets through.
channel::ChannelConfig StrongLink() {
  channel::ChannelConfig config;
  config.distance_m = 3.0;
  config.noise.burst_rate_hz = 0.0;  // no CCA noise in logic tests
  return config;
}

/// A link below sensitivity: nothing is ever decoded.
channel::ChannelConfig DeadLink() {
  channel::ChannelConfig config;
  config.distance_m = 35.0;
  config.use_default_temporal_sigma = false;
  config.shadowing.sigma_db = 0.0;
  config.noise.burst_rate_hz = 0.0;
  return config;
}

struct Harness {
  sim::Simulator simulator;
  channel::Channel channel;
  CsmaMac mac;
  std::optional<SendResult> result;
  std::vector<DeliveryInfo> deliveries;
  std::vector<AttemptInfo> attempts;

  Harness(channel::ChannelConfig config, MacParams params, std::uint64_t seed)
      : channel(config, util::Rng(seed)),
        mac(simulator, channel, params, util::Rng(seed + 1)) {
    mac.SetDeliveryCallback(
        [this](const DeliveryInfo& info) { deliveries.push_back(info); });
    mac.SetAttemptCallback(
        [this](const AttemptInfo& info) { attempts.push_back(info); });
  }

  void SendAndRun(int payload) {
    mac.Send(1, payload, [this](const SendResult& r) { result = r; });
    simulator.Run();
  }
};

TEST(CsmaMac, StrongLinkSucceedsFirstTry) {
  MacParams params;
  params.max_tries = 3;
  params.pa_level = 31;
  Harness h(StrongLink(), params, 100);
  h.SendAndRun(50);

  ASSERT_TRUE(h.result.has_value());
  EXPECT_TRUE(h.result->acked);
  EXPECT_TRUE(h.result->delivered);
  EXPECT_EQ(h.result->tries, 1);
  EXPECT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.attempts.size(), 1u);
  EXPECT_TRUE(h.attempts[0].acked);
}

TEST(CsmaMac, ServiceTimeWithinModelBounds) {
  // Single successful attempt: T_SPI + backoff + T_TR + T_frame + T_ACK.
  MacParams params;
  params.max_tries = 1;
  params.pa_level = 31;
  Harness h(StrongLink(), params, 101);
  h.SendAndRun(110);
  ASSERT_TRUE(h.result->acked);

  const auto elapsed = h.result->completed_at - h.result->accepted_at;
  const auto fixed = phy::SpiLoadTime(110) + phy::kTurnaroundTime +
                     phy::DataFrameAirTime(110) + phy::kAckTime;
  EXPECT_GE(elapsed, fixed);  // backoff >= 0
  EXPECT_LE(elapsed, fixed + phy::kInitialBackoffMax);
}

TEST(CsmaMac, DeadLinkExhaustsAllTries) {
  MacParams params;
  params.max_tries = 5;
  params.pa_level = 3;  // -25 dBm at 35 m: below sensitivity
  Harness h(DeadLink(), params, 102);
  h.SendAndRun(50);

  ASSERT_TRUE(h.result.has_value());
  EXPECT_FALSE(h.result->acked);
  EXPECT_FALSE(h.result->delivered);
  EXPECT_EQ(h.result->tries, 5);
  EXPECT_EQ(h.deliveries.size(), 0u);
  EXPECT_EQ(h.attempts.size(), 5u);
}

TEST(CsmaMac, RetryDelayStretchesFailure) {
  MacParams fast;
  fast.max_tries = 3;
  fast.retry_delay = 0;
  fast.pa_level = 3;
  Harness h_fast(DeadLink(), fast, 103);
  h_fast.SendAndRun(50);

  MacParams slow = fast;
  slow.retry_delay = sim::FromMilliseconds(60.0);
  Harness h_slow(DeadLink(), slow, 103);
  h_slow.SendAndRun(50);

  const auto fast_time =
      h_fast.result->completed_at - h_fast.result->accepted_at;
  const auto slow_time =
      h_slow.result->completed_at - h_slow.result->accepted_at;
  // Two retries, each delayed 60 ms extra (minus backoff randomness).
  EXPECT_GT(slow_time, fast_time + 2 * sim::FromMilliseconds(50.0));
}

TEST(CsmaMac, EnergyAccountsAllAttempts) {
  MacParams params;
  params.max_tries = 4;
  params.pa_level = 3;
  Harness h(DeadLink(), params, 104);
  h.SendAndRun(30);

  const double per_attempt = phy::EnergyPerBitMicrojoule(3) * 8.0 *
                             static_cast<double>(phy::DataFrameBytes(30));
  EXPECT_NEAR(h.result->tx_energy_uj, 4.0 * per_attempt, 1e-9);
  EXPECT_EQ(h.result->radiated_bytes, 4 * phy::DataFrameBytes(30));
}

TEST(CsmaMac, BusyRejectsConcurrentSend) {
  MacParams params;
  Harness h(StrongLink(), params, 105);
  h.mac.Send(1, 10, [](const SendResult&) {});
  EXPECT_TRUE(h.mac.Busy());
  EXPECT_THROW(h.mac.Send(2, 10, [](const SendResult&) {}), std::logic_error);
  h.simulator.Run();
  EXPECT_FALSE(h.mac.Busy());
}

TEST(CsmaMac, InvalidParamsRejected) {
  sim::Simulator simulator;
  channel::Channel channel(StrongLink(), util::Rng(1));
  MacParams bad_tries;
  bad_tries.max_tries = 0;
  EXPECT_THROW(CsmaMac(simulator, channel, bad_tries, util::Rng(2)),
               std::invalid_argument);
  MacParams bad_level;
  bad_level.pa_level = 12;
  EXPECT_THROW(CsmaMac(simulator, channel, bad_level, util::Rng(2)),
               std::invalid_argument);
  MacParams ok;
  CsmaMac mac(simulator, channel, ok, util::Rng(2));
  EXPECT_THROW(mac.Send(1, 0, [](const SendResult&) {}),
               std::invalid_argument);
  EXPECT_THROW(mac.Send(1, 10, nullptr), std::invalid_argument);
}

TEST(CsmaMac, MidLinkRetransmissionRecoversPackets) {
  // At a loss-prone SNR, max_tries=8 should ack packets that max_tries=1
  // drops. Statistical over 300 packets.
  channel::ChannelConfig config;
  config.distance_m = 35.0;
  config.noise.burst_rate_hz = 0.0;

  const auto run = [&](int tries, std::uint64_t seed) {
    sim::Simulator simulator;
    channel::Channel channel(config, util::Rng(seed));
    MacParams params;
    params.max_tries = tries;
    params.pa_level = 7;  // grey zone at 35 m
    CsmaMac mac(simulator, channel, params, util::Rng(seed + 7));
    int acked = 0;
    for (std::uint64_t id = 0; id < 300; ++id) {
      mac.Send(id, 110, [&acked](const SendResult& r) {
        if (r.acked) ++acked;
      });
      simulator.Run();
    }
    return acked;
  };

  EXPECT_GT(run(8, 42), run(1, 42) + 30);
}

TEST(CsmaMac, DuplicateDeliveryOnLostAck) {
  // Over many grey-zone packets some ACKs get lost after delivery; the
  // retransmission then produces a duplicate DeliveryInfo.
  channel::ChannelConfig config;
  config.distance_m = 35.0;
  config.noise.burst_rate_hz = 0.0;

  sim::Simulator simulator;
  channel::Channel channel(config, util::Rng(7));
  MacParams params;
  params.max_tries = 8;
  params.pa_level = 7;
  CsmaMac mac(simulator, channel, params, util::Rng(8));
  std::vector<DeliveryInfo> deliveries;
  mac.SetDeliveryCallback(
      [&](const DeliveryInfo& info) { deliveries.push_back(info); });
  int acked = 0;
  for (std::uint64_t id = 0; id < 400; ++id) {
    mac.Send(id, 110, [&](const SendResult& r) {
      if (r.acked) ++acked;
    });
    simulator.Run();
  }
  // Deliveries exceed unique acked packets whenever an ACK was lost.
  EXPECT_GT(static_cast<int>(deliveries.size()), acked / 2);
  bool any_duplicate = false;
  for (std::size_t i = 1; i < deliveries.size(); ++i) {
    if (deliveries[i].packet_id == deliveries[i - 1].packet_id) {
      any_duplicate = true;
      break;
    }
  }
  EXPECT_TRUE(any_duplicate);
}

TEST(CsmaMac, AttemptSnrRecorded) {
  MacParams params;
  Harness h(StrongLink(), params, 106);
  h.SendAndRun(40);
  ASSERT_FALSE(h.attempts.empty());
  // Strong 3 m link: SNR should be comfortably above 30 dB.
  EXPECT_GT(h.attempts[0].snr_db, 30.0);
  EXPECT_EQ(h.attempts[0].payload_bytes, 40);
  EXPECT_EQ(h.attempts[0].attempt, 1);
}

}  // namespace
}  // namespace wsnlink::mac
