// Thread-count determinism regression.
//
// The sweep driver promises results deterministic in (base_seed, config
// order) regardless of worker count. This pins that promise bit-exactly:
// a single-threaded sweep and an 8-worker sweep over the same configs must
// produce identical metric vectors, identical counter snapshots and —
// with capture_traces on — identical per-run event streams. A campaign
// run through the same paths must serialize to a byte-identical CSV.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/opt/config_space.h"
#include "experiment/campaign.h"
#include "experiment/sweep.h"
#include "metrics/latency.h"
#include "serve/query_service.h"

namespace wsnlink {
namespace {

std::vector<core::StackConfig> TestConfigs() {
  // A deterministic slice of the paper's Table I space covering short and
  // long distances, both CCA modes and several payload/queue settings.
  const auto space = core::opt::ConfigSpace::PaperTableI();
  std::vector<core::StackConfig> configs;
  for (std::size_t i = 0; i < space.Size(); i += space.Size() / 6 + 1) {
    configs.push_back(space.At(i));
  }
  return configs;
}

experiment::SweepOptions BaseOptions(unsigned threads) {
  experiment::SweepOptions options;
  options.base_seed = 99;
  options.packet_count = 120;
  options.threads = threads;
  options.capture_traces = true;
  return options;
}

void ExpectMetricsIdentical(const metrics::LinkMetrics& a,
                            const metrics::LinkMetrics& b, std::size_t i) {
  EXPECT_EQ(a.generated, b.generated) << "config " << i;
  EXPECT_EQ(a.delivered_unique, b.delivered_unique) << "config " << i;
  EXPECT_EQ(a.duplicates, b.duplicates) << "config " << i;
  // Bit-exact double comparison is intentional: same seed, same order of
  // operations, any divergence is a determinism bug.
  EXPECT_EQ(a.per, b.per) << "config " << i;
  EXPECT_EQ(a.mean_tries_all, b.mean_tries_all) << "config " << i;
  EXPECT_EQ(a.goodput_kbps, b.goodput_kbps) << "config " << i;
  EXPECT_EQ(a.energy_uj_per_bit, b.energy_uj_per_bit) << "config " << i;
  EXPECT_EQ(a.mean_delay_ms, b.mean_delay_ms) << "config " << i;
  EXPECT_EQ(a.p99_delay_ms, b.p99_delay_ms) << "config " << i;
  EXPECT_EQ(a.delay_p50_ms, b.delay_p50_ms) << "config " << i;
  EXPECT_EQ(a.delay_max_ms, b.delay_max_ms) << "config " << i;
  EXPECT_EQ(a.plr_queue, b.plr_queue) << "config " << i;
  EXPECT_EQ(a.plr_radio, b.plr_radio) << "config " << i;
  EXPECT_EQ(a.plr_total, b.plr_total) << "config " << i;
  EXPECT_EQ(a.mean_rssi_dbm, b.mean_rssi_dbm) << "config " << i;
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db) << "config " << i;
  EXPECT_EQ(a.mean_lqi, b.mean_lqi) << "config " << i;
  EXPECT_EQ(a.duration_s, b.duration_s) << "config " << i;
}

TEST(Determinism, SweepIdenticalAcrossThreadCounts) {
  const auto configs = TestConfigs();
  ASSERT_GE(configs.size(), 4u);

  const auto serial = RunSweep(configs, BaseOptions(1));
  const auto parallel = RunSweep(configs, BaseOptions(8));
  ASSERT_EQ(serial.size(), parallel.size());

  for (std::size_t i = 0; i < serial.size(); ++i) {
    ExpectMetricsIdentical(serial[i].measured, parallel[i].measured, i);
    EXPECT_EQ(serial[i].mean_snr_db, parallel[i].mean_snr_db) << "config " << i;

    // Counter snapshots: same names, same values, same order.
    ASSERT_EQ(serial[i].counters.size(), parallel[i].counters.size())
        << "config " << i;
    EXPECT_TRUE(serial[i].counters == parallel[i].counters) << "config " << i;

    // Event streams: bit-identical traces (timestamps, ids, args, values).
    ASSERT_EQ(serial[i].events.size(), parallel[i].events.size())
        << "config " << i;
    EXPECT_TRUE(serial[i].events == parallel[i].events) << "config " << i;
    EXPECT_FALSE(serial[i].events.empty()) << "config " << i;
  }
}

TEST(Determinism, LatencyProfileIdenticalAcrossThreadCounts) {
  // The validation harness byte-compares latency histograms; pin the whole
  // per-packet sojourn-time record, not just the summary quantiles.
  const auto configs = TestConfigs();
  const auto serial = RunSweepRaw(configs, BaseOptions(1));
  const auto parallel = RunSweepRaw(configs, BaseOptions(8));
  ASSERT_EQ(serial.size(), parallel.size());

  bool any_delivered = false;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto profile1 = metrics::CollectLatencies(serial[i]);
    const auto profile8 = metrics::CollectLatencies(parallel[i]);
    EXPECT_EQ(profile1.Serialize(), profile8.Serialize()) << "config " << i;
    EXPECT_TRUE(profile1.queue_depths_at_arrival ==
                profile8.queue_depths_at_arrival)
        << "config " << i;
    if (!profile1.Empty()) {
      any_delivered = true;
      const auto hist1 = profile1.ToHistogram(0.0, 500.0, 32);
      const auto hist8 = profile8.ToHistogram(0.0, 500.0, 32);
      ASSERT_EQ(hist1.BinCount(), hist8.BinCount()) << "config " << i;
      for (std::size_t bin = 0; bin < hist1.BinCount(); ++bin) {
        EXPECT_EQ(hist1.Count(bin), hist8.Count(bin))
            << "config " << i << " bin " << bin;
      }
      EXPECT_EQ(hist1.Underflow(), hist8.Underflow()) << "config " << i;
      EXPECT_EQ(hist1.Overflow(), hist8.Overflow()) << "config " << i;
    }
  }
  EXPECT_TRUE(any_delivered);
}

TEST(Determinism, RepeatedSweepIsIdentical) {
  const auto configs = TestConfigs();
  const auto first = RunSweep(configs, BaseOptions(4));
  const auto second = RunSweep(configs, BaseOptions(4));
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ExpectMetricsIdentical(first[i].measured, second[i].measured, i);
    EXPECT_TRUE(first[i].events == second[i].events) << "config " << i;
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Determinism, CampaignCsvIdenticalAcrossThreadCounts) {
  const std::string path1 = testing::TempDir() + "/campaign_t1.csv";
  const std::string path8 = testing::TempDir() + "/campaign_t8.csv";

  experiment::CampaignOptions options;
  options.stride = options.space.Size() / 8 + 1;  // 8 configurations
  options.packet_count = 80;
  options.base_seed = 77;

  options.threads = 1;
  options.summary_csv_path = path1;
  const auto serial = RunCampaign(options);

  options.threads = 8;
  options.summary_csv_path = path8;
  const auto parallel = RunCampaign(options);

  EXPECT_EQ(serial.configurations, parallel.configurations);
  EXPECT_EQ(serial.total_packets, parallel.total_packets);
  EXPECT_TRUE(serial.counters == parallel.counters);
  EXPECT_FALSE(serial.counters.empty());

  const std::string csv1 = ReadFile(path1);
  const std::string csv8 = ReadFile(path8);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv8);

  std::remove(path1.c_str());
  std::remove(path8.c_str());
}

// ---------------------------------------------------------------------------
// Tuning service: the same determinism contract, one layer up. A batch's
// response vector must be a pure function of its request vector — across
// worker counts, across repeat runs, and across cold/cached states.
// ---------------------------------------------------------------------------

std::vector<std::string> ServeQueryMix() {
  // A mix of what_if (several seeds/configs), optimize, malformed lines
  // and an interleaved duplicate (so the batch exercises concurrent
  // compute, cache stores and error paths together).
  std::vector<std::string> lines;
  const int pa_levels[] = {7, 15, 23, 31};
  for (int i = 0; i < 8; ++i) {
    lines.push_back(
        "{\"verb\":\"what_if\",\"distance_m\":20,\"pa_level\":" +
        std::to_string(pa_levels[i % 4]) +
        ",\"payload_bytes\":" + std::to_string(30 + 20 * (i % 3)) +
        ",\"packets\":60,\"seed\":" + std::to_string(1 + i / 4) + "}");
  }
  lines.push_back(lines[2]);  // duplicate: hit-vs-compute race fodder
  lines.push_back(
      "{\"verb\":\"optimize\",\"objective\":\"energy\",\"distance_m\":20,"
      "\"min_goodput_kbps\":2}");
  lines.push_back("definitely not a request");
  lines.push_back(lines[5]);
  return lines;
}

TEST(Determinism, ServeBatchIdenticalAcrossThreadCounts) {
  const auto lines = ServeQueryMix();

  serve::ServiceOptions serial_options;
  serial_options.threads = 1;
  serve::QueryService serial(serial_options);
  const auto serial_replies = serial.AnswerBatch(lines);

  serve::ServiceOptions parallel_options;
  parallel_options.threads = 8;
  serve::QueryService parallel(parallel_options);
  const auto parallel_replies = parallel.AnswerBatch(lines);

  ASSERT_EQ(serial_replies.size(), lines.size());
  ASSERT_EQ(parallel_replies.size(), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    // Byte-identical, not just equivalent: responses are canonical.
    EXPECT_EQ(serial_replies[i], parallel_replies[i]) << "line " << i;
  }
}

TEST(Determinism, ServeCachedRunMatchesColdRunByteExact) {
  const auto lines = ServeQueryMix();

  serve::ServiceOptions options;
  options.threads = 8;
  serve::QueryService service(options);

  const auto cold = service.AnswerBatch(lines);
  const auto stats_after_cold = service.Stats();
  EXPECT_GT(stats_after_cold.cache_entries, 0u);

  const auto cached = service.AnswerBatch(lines);
  const auto stats_after_cached = service.Stats();
  // The repeat run computed nothing new...
  EXPECT_EQ(stats_after_cached.computed_what_if,
            stats_after_cold.computed_what_if);
  EXPECT_EQ(stats_after_cached.computed_optimize,
            stats_after_cold.computed_optimize);

  // ...and answered with the exact cold-run bytes.
  ASSERT_EQ(cold.size(), cached.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i], cached[i]) << "line " << i;
  }
}

}  // namespace
}  // namespace wsnlink
