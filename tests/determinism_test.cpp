// Thread-count determinism regression.
//
// The sweep driver promises results deterministic in (base_seed, config
// order) regardless of worker count. This pins that promise bit-exactly:
// a single-threaded sweep and an 8-worker sweep over the same configs must
// produce identical metric vectors, identical counter snapshots and —
// with capture_traces on — identical per-run event streams. A campaign
// run through the same paths must serialize to a byte-identical CSV.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "channel/ber.h"
#include "channel/noise.h"
#include "channel/path_loss.h"
#include "channel/shadowing.h"
#include "core/models/model_set.h"
#include "core/opt/config_space.h"
#include "experiment/campaign.h"
#include "experiment/sweep.h"
#include "metrics/latency.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "node/run_scratch.h"
#include "serve/query_service.h"
#include "util/rng.h"

namespace wsnlink {
namespace {

std::vector<core::StackConfig> TestConfigs() {
  // A deterministic slice of the paper's Table I space covering short and
  // long distances, both CCA modes and several payload/queue settings.
  const auto space = core::opt::ConfigSpace::PaperTableI();
  std::vector<core::StackConfig> configs;
  for (std::size_t i = 0; i < space.Size(); i += space.Size() / 6 + 1) {
    configs.push_back(space.At(i));
  }
  return configs;
}

experiment::SweepOptions BaseOptions(unsigned threads) {
  experiment::SweepOptions options;
  options.base_seed = 99;
  options.packet_count = 120;
  options.threads = threads;
  options.capture_traces = true;
  return options;
}

void ExpectMetricsIdentical(const metrics::LinkMetrics& a,
                            const metrics::LinkMetrics& b, std::size_t i) {
  EXPECT_EQ(a.generated, b.generated) << "config " << i;
  EXPECT_EQ(a.delivered_unique, b.delivered_unique) << "config " << i;
  EXPECT_EQ(a.duplicates, b.duplicates) << "config " << i;
  // Bit-exact double comparison is intentional: same seed, same order of
  // operations, any divergence is a determinism bug.
  EXPECT_EQ(a.per, b.per) << "config " << i;
  EXPECT_EQ(a.mean_tries_all, b.mean_tries_all) << "config " << i;
  EXPECT_EQ(a.goodput_kbps, b.goodput_kbps) << "config " << i;
  EXPECT_EQ(a.energy_uj_per_bit, b.energy_uj_per_bit) << "config " << i;
  EXPECT_EQ(a.mean_delay_ms, b.mean_delay_ms) << "config " << i;
  EXPECT_EQ(a.p99_delay_ms, b.p99_delay_ms) << "config " << i;
  EXPECT_EQ(a.delay_p50_ms, b.delay_p50_ms) << "config " << i;
  EXPECT_EQ(a.delay_max_ms, b.delay_max_ms) << "config " << i;
  EXPECT_EQ(a.plr_queue, b.plr_queue) << "config " << i;
  EXPECT_EQ(a.plr_radio, b.plr_radio) << "config " << i;
  EXPECT_EQ(a.plr_total, b.plr_total) << "config " << i;
  EXPECT_EQ(a.mean_rssi_dbm, b.mean_rssi_dbm) << "config " << i;
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db) << "config " << i;
  EXPECT_EQ(a.mean_lqi, b.mean_lqi) << "config " << i;
  EXPECT_EQ(a.duration_s, b.duration_s) << "config " << i;
}

TEST(Determinism, SweepIdenticalAcrossThreadCounts) {
  const auto configs = TestConfigs();
  ASSERT_GE(configs.size(), 4u);

  const auto serial = RunSweep(configs, BaseOptions(1));
  const auto parallel = RunSweep(configs, BaseOptions(8));
  ASSERT_EQ(serial.size(), parallel.size());

  for (std::size_t i = 0; i < serial.size(); ++i) {
    ExpectMetricsIdentical(serial[i].measured, parallel[i].measured, i);
    EXPECT_EQ(serial[i].mean_snr_db, parallel[i].mean_snr_db) << "config " << i;

    // Counter snapshots: same names, same values, same order.
    ASSERT_EQ(serial[i].counters.size(), parallel[i].counters.size())
        << "config " << i;
    EXPECT_TRUE(serial[i].counters == parallel[i].counters) << "config " << i;

    // Event streams: bit-identical traces (timestamps, ids, args, values).
    ASSERT_EQ(serial[i].events.size(), parallel[i].events.size())
        << "config " << i;
    EXPECT_TRUE(serial[i].events == parallel[i].events) << "config " << i;
    EXPECT_FALSE(serial[i].events.empty()) << "config " << i;
  }
}

TEST(Determinism, LatencyProfileIdenticalAcrossThreadCounts) {
  // The validation harness byte-compares latency histograms; pin the whole
  // per-packet sojourn-time record, not just the summary quantiles.
  const auto configs = TestConfigs();
  const auto serial = RunSweepRaw(configs, BaseOptions(1));
  const auto parallel = RunSweepRaw(configs, BaseOptions(8));
  ASSERT_EQ(serial.size(), parallel.size());

  bool any_delivered = false;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto profile1 = metrics::CollectLatencies(serial[i]);
    const auto profile8 = metrics::CollectLatencies(parallel[i]);
    EXPECT_EQ(profile1.Serialize(), profile8.Serialize()) << "config " << i;
    EXPECT_TRUE(profile1.queue_depths_at_arrival ==
                profile8.queue_depths_at_arrival)
        << "config " << i;
    if (!profile1.Empty()) {
      any_delivered = true;
      const auto hist1 = profile1.ToHistogram(0.0, 500.0, 32);
      const auto hist8 = profile8.ToHistogram(0.0, 500.0, 32);
      ASSERT_EQ(hist1.BinCount(), hist8.BinCount()) << "config " << i;
      for (std::size_t bin = 0; bin < hist1.BinCount(); ++bin) {
        EXPECT_EQ(hist1.Count(bin), hist8.Count(bin))
            << "config " << i << " bin " << bin;
      }
      EXPECT_EQ(hist1.Underflow(), hist8.Underflow()) << "config " << i;
      EXPECT_EQ(hist1.Overflow(), hist8.Overflow()) << "config " << i;
    }
  }
  EXPECT_TRUE(any_delivered);
}

TEST(Determinism, RepeatedSweepIsIdentical) {
  const auto configs = TestConfigs();
  const auto first = RunSweep(configs, BaseOptions(4));
  const auto second = RunSweep(configs, BaseOptions(4));
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ExpectMetricsIdentical(first[i].measured, second[i].measured, i);
    EXPECT_TRUE(first[i].events == second[i].events) << "config " << i;
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Determinism, CampaignCsvIdenticalAcrossThreadCounts) {
  const std::string path1 = testing::TempDir() + "/campaign_t1.csv";
  const std::string path8 = testing::TempDir() + "/campaign_t8.csv";

  experiment::CampaignOptions options;
  options.stride = options.space.Size() / 8 + 1;  // 8 configurations
  options.packet_count = 80;
  options.base_seed = 77;

  options.threads = 1;
  options.summary_csv_path = path1;
  const auto serial = RunCampaign(options);

  options.threads = 8;
  options.summary_csv_path = path8;
  const auto parallel = RunCampaign(options);

  EXPECT_EQ(serial.configurations, parallel.configurations);
  EXPECT_EQ(serial.total_packets, parallel.total_packets);
  EXPECT_TRUE(serial.counters == parallel.counters);
  EXPECT_FALSE(serial.counters.empty());

  const std::string csv1 = ReadFile(path1);
  const std::string csv8 = ReadFile(path8);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv8);

  std::remove(path1.c_str());
  std::remove(path8.c_str());
}

// ---------------------------------------------------------------------------
// Batched (structure-of-arrays) kernels vs their scalar twins. The batch
// paths promise bit-identical per-lane output; every EXPECT_EQ on a double
// below is intentionally exact.
// ---------------------------------------------------------------------------

TEST(Determinism, RngLanesMatchScalarStreams) {
  constexpr std::size_t kLanes = 7;  // odd, not a SIMD width: exercises tails
  std::vector<util::Rng> rngs;
  const util::Rng root(20150629);
  for (std::size_t i = 0; i < kLanes; ++i) {
    rngs.push_back(root.Derive(static_cast<std::uint64_t>(i)));
  }
  util::RngLanes lanes{std::span<const util::Rng>(rngs)};
  ASSERT_EQ(lanes.Size(), kLanes);

  std::vector<std::uint64_t> bits(kLanes);
  std::vector<double> uniforms(kLanes);
  std::vector<double> gaussians(kLanes);
  for (int round = 0; round < 16; ++round) {
    lanes.NextAll(bits);
    for (std::size_t i = 0; i < kLanes; ++i) {
      EXPECT_EQ(bits[i], rngs[i]()) << "lane " << i << " round " << round;
    }
    lanes.NextDoubleAll(uniforms);
    for (std::size_t i = 0; i < kLanes; ++i) {
      EXPECT_EQ(uniforms[i], rngs[i].NextDouble())
          << "lane " << i << " round " << round;
    }
    lanes.GaussianAll(gaussians);
    for (std::size_t i = 0; i < kLanes; ++i) {
      EXPECT_EQ(gaussians[i], rngs[i].Gaussian())
          << "lane " << i << " round " << round;
    }
  }

  // Extract() returns a scalar generator that continues the lane's stream.
  for (std::size_t i = 0; i < kLanes; ++i) {
    util::Rng resumed = lanes.Extract(i);
    EXPECT_EQ(resumed(), rngs[i]()) << "lane " << i;
    EXPECT_EQ(resumed.Derive("child")(), rngs[i].Derive("child")())
        << "lane " << i;
  }
}

TEST(Determinism, ShadowingLanesMatchScalarProcesses) {
  std::vector<channel::ShadowingParams> params;
  std::vector<util::Rng> rngs;
  const util::Rng root(42);
  for (int i = 0; i < 5; ++i) {
    channel::ShadowingParams p;
    p.sigma_db = channel::DefaultTemporalSigmaDb(10.0 + 6.0 * i);
    p.coherence = (1 + i) * sim::kSecond;
    params.push_back(p);
    rngs.push_back(root.Derive(static_cast<std::uint64_t>(i)));
  }

  std::vector<channel::ShadowingProcess> scalar;
  for (std::size_t i = 0; i < params.size(); ++i) {
    scalar.emplace_back(params[i], rngs[i]);
  }
  channel::ShadowingLanes lanes{std::span<const channel::ShadowingParams>(params),
                                std::span<const util::Rng>(rngs)};

  // Irregular clock incl. a zero-dt repeat and a long gap.
  const sim::Time times[] = {0,
                             3 * sim::kMillisecond,
                             3 * sim::kMillisecond,
                             250 * sim::kMillisecond,
                             251 * sim::kMillisecond,
                             9 * sim::kSecond};
  std::vector<double> batch(params.size());
  for (const sim::Time t : times) {
    lanes.SampleAll(t, batch);
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      EXPECT_EQ(batch[i], scalar[i].Sample(t)) << "lane " << i << " t=" << t;
    }
  }
}

TEST(Determinism, BerBatchMatchesScalar) {
  std::vector<double> snr;
  for (int i = 0; i <= 80; ++i) snr.push_back(-10.0 + 0.5 * i);
  std::vector<double> batch(snr.size());

  const channel::CalibratedExponentialBer calibrated;
  const channel::AnalyticOQpskBer analytic;  // exercises the default loop
  for (const int frame_bytes : {10, 52, 133}) {
    calibrated.FrameSuccessProbabilityBatch(snr, frame_bytes, batch);
    for (std::size_t i = 0; i < snr.size(); ++i) {
      EXPECT_EQ(batch[i], calibrated.FrameSuccessProbability(snr[i], frame_bytes))
          << "snr " << snr[i] << " bytes " << frame_bytes;
    }
    analytic.FrameSuccessProbabilityBatch(snr, frame_bytes, batch);
    for (std::size_t i = 0; i < snr.size(); ++i) {
      EXPECT_EQ(batch[i], analytic.FrameSuccessProbability(snr[i], frame_bytes))
          << "snr " << snr[i] << " bytes " << frame_bytes;
    }
  }
  EXPECT_THROW(calibrated.FrameSuccessProbabilityBatch(snr, 0, batch),
               std::invalid_argument);
  std::vector<double> short_out(snr.size() - 1);
  EXPECT_THROW(calibrated.FrameSuccessProbabilityBatch(snr, 52, short_out),
               std::invalid_argument);
}

TEST(Determinism, PathLossBatchMatchesScalar) {
  const channel::PathLoss model{channel::PathLossParams{}};
  std::vector<double> distances;
  for (int i = 1; i <= 70; ++i) distances.push_back(0.5 * i);
  std::vector<double> batch(distances.size());
  model.MeanLossDbBatch(distances, batch);
  for (std::size_t i = 0; i < distances.size(); ++i) {
    EXPECT_EQ(batch[i], model.MeanLossDb(distances[i])) << "d " << distances[i];
  }
  distances.push_back(0.0);
  batch.push_back(0.0);
  EXPECT_THROW(model.MeanLossDbBatch(distances, batch), std::invalid_argument);
}

TEST(Determinism, NoiseLanesMatchScalarProcesses) {
  std::vector<channel::NoiseParams> params(4);
  params[1].burst_rate_hz = 4.0;
  params[2].quiet_sigma_db = 2.5;
  params[3].burst_mean_elevation_db = 12.0;
  std::vector<util::Rng> rngs;
  const util::Rng root(7);
  for (std::size_t i = 0; i < params.size(); ++i) {
    rngs.push_back(root.Derive(static_cast<std::uint64_t>(i)));
  }

  std::vector<channel::NoiseFloorProcess> scalar;
  for (std::size_t i = 0; i < params.size(); ++i) {
    scalar.emplace_back(params[i], rngs[i]);
  }
  channel::NoiseFloorLanes lanes{std::span<const channel::NoiseParams>(params),
                                 std::span<const util::Rng>(rngs)};
  std::vector<double> batch(params.size());
  for (sim::Time t = 0; t < 2 * sim::kSecond; t += 37 * sim::kMillisecond) {
    lanes.SampleDbmAll(t, batch);
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      EXPECT_EQ(batch[i], scalar[i].SampleDbm(t)) << "lane " << i << " t=" << t;
    }
  }
}

TEST(Determinism, PredictBatchMatchesScalarPredict) {
  // A slice wider than one 64-wide block so the block loop's tail runs.
  const auto space = core::opt::ConfigSpace::PaperTableI();
  std::vector<core::StackConfig> configs;
  for (std::size_t i = 0; i < space.Size(); i += space.Size() / 150 + 1) {
    configs.push_back(space.At(i));
  }
  ASSERT_GT(configs.size(), 64u);

  const core::models::ModelSet models;
  std::vector<core::models::MetricPrediction> batch(configs.size());
  models.PredictBatch(configs, batch);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto scalar = models.Predict(configs[i]);
    EXPECT_EQ(batch[i].snr_db, scalar.snr_db) << "config " << i;
    EXPECT_EQ(batch[i].per, scalar.per) << "config " << i;
    EXPECT_EQ(batch[i].mean_tries, scalar.mean_tries) << "config " << i;
    EXPECT_EQ(batch[i].service_time_ms, scalar.service_time_ms)
        << "config " << i;
    EXPECT_EQ(batch[i].utilization, scalar.utilization) << "config " << i;
    EXPECT_EQ(batch[i].energy_uj_per_bit, scalar.energy_uj_per_bit)
        << "config " << i;
    EXPECT_EQ(batch[i].max_goodput_kbps, scalar.max_goodput_kbps)
        << "config " << i;
    EXPECT_EQ(batch[i].total_delay_ms, scalar.total_delay_ms) << "config " << i;
    EXPECT_EQ(batch[i].plr_radio, scalar.plr_radio) << "config " << i;
    EXPECT_EQ(batch[i].plr_queue, scalar.plr_queue) << "config " << i;
    EXPECT_EQ(batch[i].plr_total, scalar.plr_total) << "config " << i;
  }

  std::vector<core::models::MetricPrediction> wrong(configs.size() - 1);
  EXPECT_THROW(models.PredictBatch(configs, wrong), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scratch-recycled runs vs plain runs. The arena-backed overload promises
// the exact results of the allocating one — cold (first use of a scratch)
// and warm (scratch previously used by a *different* configuration).
// ---------------------------------------------------------------------------

node::SimulationOptions ScratchRunOptions(std::size_t space_index) {
  const auto space = core::opt::ConfigSpace::PaperTableI();
  node::SimulationOptions options;
  options.config = space.At(space_index % space.Size());
  options.seed = 4242;
  options.packet_count = 150;
  options.collect_counters = true;
  return options;
}

void ExpectResultsIdentical(const node::SimulationResult& a,
                            const node::SimulationResult& b,
                            double pkt_interval_ms, const char* label) {
  EXPECT_EQ(a.unique_delivered, b.unique_delivered) << label;
  EXPECT_EQ(a.duplicates, b.duplicates) << label;
  EXPECT_EQ(a.unique_payload_bytes, b.unique_payload_bytes) << label;
  EXPECT_EQ(a.last_delivery_at, b.last_delivery_at) << label;
  EXPECT_EQ(a.end_time, b.end_time) << label;
  EXPECT_EQ(a.generated, b.generated) << label;
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db) << label;
  EXPECT_EQ(a.cca_busy, b.cca_busy) << label;
  EXPECT_EQ(a.events_executed, b.events_executed) << label;
  ASSERT_EQ(a.counters.size(), b.counters.size()) << label;
  EXPECT_TRUE(a.counters == b.counters) << label;
  const auto ma = metrics::ComputeMetrics(a, pkt_interval_ms);
  const auto mb = metrics::ComputeMetrics(b, pkt_interval_ms);
  ExpectMetricsIdentical(ma, mb, 0);
}

TEST(Determinism, ScratchRunMatchesPlainRunColdAndWarm) {
  const auto options_a = ScratchRunOptions(0);
  const auto options_b = ScratchRunOptions(1234);
  const auto plain_a = node::RunLinkSimulation(options_a);
  const auto plain_b = node::RunLinkSimulation(options_b);

  node::LinkRunScratch scratch;
  const auto cold_a = node::RunLinkSimulation(options_a, scratch);
  ExpectResultsIdentical(plain_a, cold_a, options_a.config.pkt_interval_ms,
                         "cold A");
  // Warm: the scratch just carried a different configuration; nothing of B
  // may bleed into a rerun of A.
  const auto warm_b = node::RunLinkSimulation(options_b, scratch);
  ExpectResultsIdentical(plain_b, warm_b, options_b.config.pkt_interval_ms,
                         "warm B");
  const auto warm_a = node::RunLinkSimulation(options_a, scratch);
  ExpectResultsIdentical(plain_a, warm_a, options_a.config.pkt_interval_ms,
                         "warm A");
}

TEST(Determinism, SweepWithoutTracesIdenticalAcrossThreadCounts) {
  // capture_traces=false routes workers through the thread-local scratch
  // (zero-alloc) path; worker count still must not leak into results.
  const auto configs = TestConfigs();
  auto options1 = BaseOptions(1);
  options1.capture_traces = false;
  auto options8 = BaseOptions(8);
  options8.capture_traces = false;

  const auto serial = RunSweep(configs, options1);
  const auto parallel = RunSweep(configs, options8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ExpectMetricsIdentical(serial[i].measured, parallel[i].measured, i);
    ASSERT_EQ(serial[i].counters.size(), parallel[i].counters.size())
        << "config " << i;
    EXPECT_TRUE(serial[i].counters == parallel[i].counters) << "config " << i;
    EXPECT_FALSE(serial[i].counters.empty()) << "config " << i;
  }
}

TEST(Determinism, SweepScratchPathMatchesTracedPathMetrics) {
  // The traced sweep path allocates per run; the untraced one recycles
  // scratch. Metrics and per-layer counters must not depend on which path
  // ran. (sim.* kernel counters are excluded: attaching a tracer schedules
  // extra observational events, so event totals differ by design — that
  // predates the scratch path and holds for the generic path too.)
  const auto configs = TestConfigs();
  auto traced = BaseOptions(4);
  auto untraced = BaseOptions(4);
  untraced.capture_traces = false;

  const auto strip_sim = [](const std::vector<trace::CounterSample>& counters) {
    std::vector<trace::CounterSample> layer;
    for (const auto& sample : counters) {
      if (!sample.name.starts_with("sim.")) layer.push_back(sample);
    }
    return layer;
  };

  const auto with_traces = RunSweep(configs, traced);
  const auto without_traces = RunSweep(configs, untraced);
  ASSERT_EQ(with_traces.size(), without_traces.size());
  for (std::size_t i = 0; i < with_traces.size(); ++i) {
    ExpectMetricsIdentical(with_traces[i].measured, without_traces[i].measured,
                           i);
    const auto layer_traced = strip_sim(with_traces[i].counters);
    const auto layer_scratch = strip_sim(without_traces[i].counters);
    EXPECT_FALSE(layer_traced.empty()) << "config " << i;
    EXPECT_TRUE(layer_traced == layer_scratch) << "config " << i;
  }
}

// ---------------------------------------------------------------------------
// Tuning service: the same determinism contract, one layer up. A batch's
// response vector must be a pure function of its request vector — across
// worker counts, across repeat runs, and across cold/cached states.
// ---------------------------------------------------------------------------

std::vector<std::string> ServeQueryMix() {
  // A mix of what_if (several seeds/configs), optimize, malformed lines
  // and an interleaved duplicate (so the batch exercises concurrent
  // compute, cache stores and error paths together).
  std::vector<std::string> lines;
  const int pa_levels[] = {7, 15, 23, 31};
  for (int i = 0; i < 8; ++i) {
    lines.push_back(
        "{\"verb\":\"what_if\",\"distance_m\":20,\"pa_level\":" +
        std::to_string(pa_levels[i % 4]) +
        ",\"payload_bytes\":" + std::to_string(30 + 20 * (i % 3)) +
        ",\"packets\":60,\"seed\":" + std::to_string(1 + i / 4) + "}");
  }
  lines.push_back(lines[2]);  // duplicate: hit-vs-compute race fodder
  lines.push_back(
      "{\"verb\":\"optimize\",\"objective\":\"energy\",\"distance_m\":20,"
      "\"min_goodput_kbps\":2}");
  lines.push_back("definitely not a request");
  lines.push_back(lines[5]);
  return lines;
}

TEST(Determinism, ServeBatchIdenticalAcrossThreadCounts) {
  const auto lines = ServeQueryMix();

  serve::ServiceOptions serial_options;
  serial_options.threads = 1;
  serve::QueryService serial(serial_options);
  const auto serial_replies = serial.AnswerBatch(lines);

  serve::ServiceOptions parallel_options;
  parallel_options.threads = 8;
  serve::QueryService parallel(parallel_options);
  const auto parallel_replies = parallel.AnswerBatch(lines);

  ASSERT_EQ(serial_replies.size(), lines.size());
  ASSERT_EQ(parallel_replies.size(), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    // Byte-identical, not just equivalent: responses are canonical.
    EXPECT_EQ(serial_replies[i], parallel_replies[i]) << "line " << i;
  }
}

TEST(Determinism, ServeCachedRunMatchesColdRunByteExact) {
  const auto lines = ServeQueryMix();

  serve::ServiceOptions options;
  options.threads = 8;
  serve::QueryService service(options);

  const auto cold = service.AnswerBatch(lines);
  const auto stats_after_cold = service.Stats();
  EXPECT_GT(stats_after_cold.cache_entries, 0u);

  const auto cached = service.AnswerBatch(lines);
  const auto stats_after_cached = service.Stats();
  // The repeat run computed nothing new...
  EXPECT_EQ(stats_after_cached.computed_what_if,
            stats_after_cold.computed_what_if);
  EXPECT_EQ(stats_after_cached.computed_optimize,
            stats_after_cold.computed_optimize);

  // ...and answered with the exact cold-run bytes.
  ASSERT_EQ(cold.size(), cached.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i], cached[i]) << "line " << i;
  }
}

}  // namespace
}  // namespace wsnlink
