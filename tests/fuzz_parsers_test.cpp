// Randomized round-trip and malformed-input fuzzing for the two
// hand-rolled parsers (util/csv.cpp, util/args.cpp).
//
// The properties under test:
//  * CSV: any vector of byte strings written through CsvWriter /
//    EscapeCsvCell reads back cell-for-cell identical through ReadCsv —
//    including quotes, commas, CR, LF and CRLF content.
//  * CSV: malformed inputs (truncated rows, unterminated quotes, stray
//    bytes) either parse into *some* row shape or throw a typed
//    exception; they never crash and never mangle silently on the
//    round-trip path.
//  * Args: every random argv either parses or throws
//    std::invalid_argument; `--flag --other` and duplicate flags are
//    rejected instead of silently mis-binding.
//
// All "random" inputs come from a fixed-seed Rng, so failures reproduce.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/args.h"
#include "util/csv.h"
#include "util/rng.h"

namespace {

using wsnlink::util::Args;
using wsnlink::util::CsvData;
using wsnlink::util::CsvWriter;
using wsnlink::util::EscapeCsvCell;
using wsnlink::util::ParseCsvLine;
using wsnlink::util::ReadCsv;
using wsnlink::util::Rng;

std::filesystem::path TempCsvPath(const char* tag) {
  return std::filesystem::temp_directory_path() /
         (std::string("wsnlink_fuzz_") + tag + ".csv");
}

/// A random cell drawn from an alphabet rich in CSV metacharacters.
std::string RandomCell(Rng& rng) {
  static constexpr char kAlphabet[] = "ab,\"\n\r;x 0.5-";
  const auto len = static_cast<std::size_t>(rng.UniformInt(0, 12));
  std::string cell;
  cell.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    cell += kAlphabet[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(sizeof(kAlphabet)) - 2))];
  }
  return cell;
}

TEST(CsvFuzz, RandomCellsRoundTripExactly) {
  Rng rng(20150629);
  const auto path = TempCsvPath("roundtrip");
  for (int iter = 0; iter < 200; ++iter) {
    const auto columns = static_cast<std::size_t>(rng.UniformInt(1, 6));
    const auto rows = static_cast<std::size_t>(rng.UniformInt(0, 8));

    std::vector<std::string> headers(columns);
    for (std::size_t c = 0; c < columns; ++c) {
      // Headers must be distinguishable; content is still adversarial.
      headers[c] = "h" + std::to_string(c) + RandomCell(rng);
    }
    std::vector<std::vector<std::string>> table(rows);
    for (auto& row : table) {
      row.resize(columns);
      for (auto& cell : row) cell = RandomCell(rng);
    }

    {
      CsvWriter writer(path.string(), headers);
      for (const auto& row : table) writer.WriteRow(row);
    }
    const CsvData data = ReadCsv(path.string());

    ASSERT_EQ(data.headers, headers) << "iteration " << iter;
    ASSERT_EQ(data.rows.size(), rows) << "iteration " << iter;
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(data.rows[r], table[r]) << "iteration " << iter;
    }
  }
  std::filesystem::remove(path);
}

TEST(CsvFuzz, CrlfLineEndingsAreStripped) {
  const auto path = TempCsvPath("crlf");
  {
    std::ofstream out(path);
    out << "a,b\r\n1,2\r\n3,4\r\n";
  }
  const CsvData data = ReadCsv(path.string());
  ASSERT_EQ(data.headers, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[0], (std::vector<std::string>{"1", "2"}));
  // The numeric path must not choke on what used to be "2\r".
  EXPECT_EQ(data.NumericColumn("b"), (std::vector<double>{2.0, 4.0}));
  std::filesystem::remove(path);
}

TEST(CsvFuzz, QuotedEmbeddedNewlinesStayOneRecord) {
  const auto path = TempCsvPath("multiline");
  {
    std::ofstream out(path);
    out << "name,note\n";
    out << "x,\"line one\nline two\"\n";
    out << "y,plain\n";
  }
  const CsvData data = ReadCsv(path.string());
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[0][1], "line one\nline two");
  EXPECT_EQ(data.rows[1][1], "plain");
  std::filesystem::remove(path);
}

TEST(CsvFuzz, UnterminatedQuoteThrowsInsteadOfHanging) {
  const auto path = TempCsvPath("unterminated");
  {
    std::ofstream out(path);
    out << "a,b\n";
    out << "1,\"never closed\n";
  }
  EXPECT_THROW((void)ReadCsv(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(CsvFuzz, MalformedBytesNeverCrash) {
  Rng rng(42);
  const auto path = TempCsvPath("malformed");
  static constexpr char kBytes[] = ",\"\n\r a1.;\t";
  for (int iter = 0; iter < 300; ++iter) {
    {
      std::ofstream out(path, std::ios::binary);
      const auto len = static_cast<std::size_t>(rng.UniformInt(0, 64));
      for (std::size_t i = 0; i < len; ++i) {
        out << kBytes[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(sizeof(kBytes)) - 2))];
      }
    }
    // Must either produce a table or throw a typed error; anything else
    // (crash, hang, UB) fails the test by construction.
    try {
      const CsvData data = ReadCsv(path.string());
      for (const auto& row : data.rows) EXPECT_GE(row.size(), 1u);
    } catch (const std::runtime_error&) {
    }
  }
  std::filesystem::remove(path);
}

TEST(CsvFuzz, TruncatedRowsSurfaceAsShortRowError) {
  const auto path = TempCsvPath("truncated");
  {
    std::ofstream out(path);
    out << "a,b,c\n1,2,3\n4,5\n";
  }
  const CsvData data = ReadCsv(path.string());
  ASSERT_EQ(data.rows.size(), 2u);
  // The short row parses (lenient reader) but the typed column accessor
  // refuses to fabricate the missing cell.
  EXPECT_THROW((void)data.NumericColumn("c"), std::runtime_error);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Args
// ---------------------------------------------------------------------------

Args Parse(std::vector<std::string> argv,
           const std::vector<std::string>& switches = {}) {
  std::vector<const char*> raw;
  raw.push_back("prog");
  for (const auto& a : argv) raw.push_back(a.c_str());
  return Args(static_cast<int>(raw.size()), raw.data(), switches);
}

TEST(ArgsFuzz, FlagFollowedByFlagIsMissingValue) {
  EXPECT_THROW(Parse({"--out", "--stride", "3"}), std::invalid_argument);
}

TEST(ArgsFuzz, DuplicateFlagIsRejected) {
  EXPECT_THROW(Parse({"--stride", "3", "--stride", "4"}),
               std::invalid_argument);
}

TEST(ArgsFuzz, NegativeSizeIsRejectedNotWrapped) {
  const auto args = Parse({"--count", "-3"});
  EXPECT_THROW((void)args.GetSize("--count", 0), std::invalid_argument);
}

TEST(ArgsFuzz, NegativeValuesAreNotMistakenForFlags) {
  const auto args = Parse({"--offset", "-3.5"});
  EXPECT_DOUBLE_EQ(args.GetDouble("--offset", 0.0), -3.5);
}

TEST(ArgsFuzz, RandomArgvParsesOrThrowsTypedError) {
  Rng rng(7);
  static const std::vector<std::string> kTokens = {
      "--a",  "--b",   "--a",  "7",     "-1",   "3.5",
      "pos",  "--",    "x,y",  "--c",   "",     "12abc",
  };
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::string> argv;
    const auto len = static_cast<std::size_t>(rng.UniformInt(0, 6));
    for (std::size_t i = 0; i < len; ++i) {
      argv.push_back(kTokens[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(kTokens.size()) - 1))]);
    }
    try {
      const auto args = Parse(argv, {"--b"});
      // Accessors on whatever parsed must also be total: value or typed
      // throw, never UB.
      for (const char* flag : {"--a", "--b", "--c"}) {
        try {
          (void)args.GetDouble(flag, 0.0);
          (void)args.GetSize(flag, 0);
          (void)args.GetInt(flag, 0);
        } catch (const std::invalid_argument&) {
        } catch (const std::out_of_range&) {
        }
      }
    } catch (const std::invalid_argument&) {
    }
  }
}

}  // namespace
