// Unit tests for the distribution-band statistics helpers behind the
// service-curve cross-validation harness: empirical CDF/CCDF evaluation,
// the DKW confidence band and its quantile form, and the fixed-seed
// percentile bootstrap. Everything here is deterministic — seeded Rng
// lineage only, no wall-clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace wsnlink::util {
namespace {

std::vector<double> SortedSample(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.Uniform(0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  return xs;
}

TEST(Stats, EmpiricalCdfStepFunction) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(EmpiricalCdf(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalCdf(xs, 1.0), 0.25);  // right-continuous at jumps
  EXPECT_DOUBLE_EQ(EmpiricalCdf(xs, 1.5), 0.25);
  EXPECT_DOUBLE_EQ(EmpiricalCdf(xs, 2.0), 0.75);  // counts both ties
  EXPECT_DOUBLE_EQ(EmpiricalCdf(xs, 4.9), 0.75);
  EXPECT_DOUBLE_EQ(EmpiricalCdf(xs, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(EmpiricalCdf(xs, 1e9), 1.0);
}

TEST(Stats, EmpiricalCcdfComplementsCdf) {
  const auto xs = SortedSample(11, 257);
  for (const double t : {-1.0, 3.25, 50.0, 99.999, 200.0}) {
    EXPECT_NEAR(EmpiricalCdf(xs, t) + EmpiricalCcdf(xs, t), 1.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(EmpiricalCcdf(xs, xs.back()), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalCcdf(xs, xs.front() - 1.0), 1.0);
}

TEST(Stats, EmpiricalCdfMonotoneNondecreasing) {
  const auto xs = SortedSample(7, 100);
  double prev = -1.0;
  for (double t = -10.0; t <= 110.0; t += 0.7) {
    const double f = EmpiricalCdf(xs, t);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST(Stats, EmpiricalCdfSingleElement) {
  const std::vector<double> xs = {3.0};
  EXPECT_DOUBLE_EQ(EmpiricalCdf(xs, 2.999), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalCdf(xs, 3.0), 1.0);
}

TEST(Stats, EmpiricalCdfRejectsEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW((void)EmpiricalCdf(empty, 0.0), std::invalid_argument);
  EXPECT_THROW((void)EmpiricalCcdf(empty, 0.0), std::invalid_argument);
}

TEST(Stats, DkwEpsilonMatchesClosedForm) {
  // eps = sqrt(ln(2/alpha) / (2n)).
  EXPECT_NEAR(DkwEpsilon(100, 0.95), std::sqrt(std::log(40.0) / 200.0), 1e-12);
  EXPECT_NEAR(DkwEpsilon(1, 0.5), std::sqrt(std::log(4.0) / 2.0), 1e-12);
}

TEST(Stats, DkwEpsilonShrinksWithSampleSize) {
  double prev = 10.0;
  for (const std::size_t n : {1u, 10u, 100u, 1000u, 100000u}) {
    const double eps = DkwEpsilon(n, 0.99);
    EXPECT_LT(eps, prev);
    EXPECT_GT(eps, 0.0);
    prev = eps;
  }
  // Quadrupling n halves eps.
  EXPECT_NEAR(DkwEpsilon(400, 0.99), DkwEpsilon(100, 0.99) / 2.0, 1e-12);
}

TEST(Stats, DkwEpsilonGrowsWithConfidence) {
  EXPECT_LT(DkwEpsilon(500, 0.90), DkwEpsilon(500, 0.99));
  EXPECT_LT(DkwEpsilon(500, 0.99), DkwEpsilon(500, 0.9999));
}

TEST(Stats, DkwEpsilonRejectsBadArguments) {
  EXPECT_THROW((void)DkwEpsilon(0, 0.95), std::invalid_argument);
  EXPECT_THROW((void)DkwEpsilon(10, 0.0), std::invalid_argument);
  EXPECT_THROW((void)DkwEpsilon(10, 1.0), std::invalid_argument);
  EXPECT_THROW((void)DkwEpsilon(10, -0.5), std::invalid_argument);
}

TEST(Stats, DkwBandCoversTrueUniformCdf) {
  // The sample is U[0,100]; with 99% confidence the band around the
  // empirical CDF must cover the true CDF t/100 everywhere. A single
  // fixed-seed draw either passes forever or fails forever — no flake.
  const auto xs = SortedSample(42, 2000);
  const double eps = DkwEpsilon(xs.size(), 0.99);
  for (double t = 0.0; t <= 100.0; t += 0.5) {
    const double truth = t / 100.0;
    const double fn = EmpiricalCdf(xs, t);
    EXPECT_LE(std::abs(fn - truth), eps) << "t=" << t;
  }
}

TEST(Stats, DkwQuantileBandBracketsPointEstimate) {
  const auto xs = SortedSample(3, 750);
  for (const double p : {0.05, 0.5, 0.9, 0.99}) {
    const auto band = DkwQuantileBand(xs, p, 0.95);
    const double point = Quantile(xs, p);
    EXPECT_LE(band.lo, point + 1e-12);
    EXPECT_GE(band.hi, point - 1e-12);
    EXPECT_LE(band.lo, band.hi);
  }
}

TEST(Stats, DkwQuantileBandClampsAtEdges) {
  const auto xs = SortedSample(9, 50);
  // p=0 and p=1 push p±eps outside [0,1]; the band must clamp, not throw.
  const auto lo_band = DkwQuantileBand(xs, 0.0, 0.95);
  const auto hi_band = DkwQuantileBand(xs, 1.0, 0.95);
  EXPECT_DOUBLE_EQ(lo_band.lo, xs.front());
  EXPECT_DOUBLE_EQ(hi_band.hi, xs.back());
}

TEST(Stats, DkwQuantileBandNarrowsWithSampleSize) {
  const auto small = SortedSample(5, 100);
  const auto large = SortedSample(5, 10000);
  const auto band_small = DkwQuantileBand(small, 0.5, 0.95);
  const auto band_large = DkwQuantileBand(large, 0.5, 0.95);
  EXPECT_LT(band_large.hi - band_large.lo, band_small.hi - band_small.lo);
}

TEST(Stats, DkwQuantileBandRejectsBadArguments) {
  const std::vector<double> empty;
  const auto xs = SortedSample(1, 10);
  EXPECT_THROW((void)DkwQuantileBand(empty, 0.5, 0.95), std::invalid_argument);
  EXPECT_THROW((void)DkwQuantileBand(xs, -0.1, 0.95), std::invalid_argument);
  EXPECT_THROW((void)DkwQuantileBand(xs, 1.1, 0.95), std::invalid_argument);
  EXPECT_THROW((void)DkwQuantileBand(xs, 0.5, 1.0), std::invalid_argument);
}

TEST(Stats, BootstrapCiIsDeterministicInSeed) {
  const auto xs = SortedSample(17, 300);
  const auto a = BootstrapQuantileCi(xs, 0.9, Rng(123), 150, 0.95);
  const auto b = BootstrapQuantileCi(xs, 0.9, Rng(123), 150, 0.95);
  const auto c = BootstrapQuantileCi(xs, 0.9, Rng(124), 150, 0.95);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  // A different seed resamples differently (intervals overlap but the
  // endpoints almost surely differ).
  EXPECT_GT(std::abs(a.lo - c.lo) + std::abs(a.hi - c.hi), 0.0);
}

TEST(Stats, BootstrapCiBracketsMedianOfSymmetricSample) {
  // Sample is uniform on [0,100]; the true median 50 must land inside a
  // 99% bootstrap interval for this fixed seed.
  const auto xs = SortedSample(29, 1500);
  const auto ci = BootstrapQuantileCi(xs, 0.5, Rng(7), 300, 0.99);
  EXPECT_LT(ci.lo, 50.0);
  EXPECT_GT(ci.hi, 50.0);
  EXPECT_LE(ci.lo, ci.hi);
}

TEST(Stats, BootstrapCiDegenerateSampleCollapses) {
  const std::vector<double> xs(40, 7.5);
  const auto ci = BootstrapQuantileCi(xs, 0.75, Rng(1), 50, 0.95);
  EXPECT_DOUBLE_EQ(ci.lo, 7.5);
  EXPECT_DOUBLE_EQ(ci.hi, 7.5);
}

TEST(Stats, BootstrapCiWidensWithConfidence) {
  const auto xs = SortedSample(31, 400);
  const auto narrow = BootstrapQuantileCi(xs, 0.5, Rng(2), 400, 0.80);
  const auto wide = BootstrapQuantileCi(xs, 0.5, Rng(2), 400, 0.99);
  EXPECT_LE(wide.lo, narrow.lo + 1e-12);
  EXPECT_GE(wide.hi, narrow.hi - 1e-12);
}

TEST(Stats, BootstrapCiRejectsBadArguments) {
  const std::vector<double> empty;
  const auto xs = SortedSample(1, 10);
  EXPECT_THROW((void)BootstrapQuantileCi(empty, 0.5, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW((void)BootstrapQuantileCi(xs, 1.5, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW((void)BootstrapQuantileCi(xs, 0.5, Rng(1), 0),
               std::invalid_argument);
  EXPECT_THROW((void)BootstrapQuantileCi(xs, 0.5, Rng(1), 100, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace wsnlink::util
