// Property suite locking down the sweep-executor overhaul.
//
// The performance work (shared pool, chunked dispatch, collapsed MAC fast
// path, analytic prescreen) is only admissible because it changes *nothing*
// observable. This file pins that:
//  * bit-identical metrics, counters and traces across worker counts
//    {1, 4, 16} crossed with several chunk sizes;
//  * the untraced collapsed MAC path produces the same metrics and the
//    same MAC/link/app counters as the traced event-by-event path;
//  * analytic prescreen leaves every simulated point bit-identical to the
//    same index in an un-prescreened sweep;
// plus the physical monotonicity properties the paper's models rely on:
// PER non-increasing in SNR, every served packet uses >= 1 transmission,
// PLR_radio non-increasing in N_maxTries, and energy per delivered bit
// minimised at an interior payload size.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string_view>
#include <vector>

#include "core/opt/config_space.h"
#include "experiment/sweep.h"

namespace wsnlink {
namespace {

std::vector<core::StackConfig> SliceOfTableI(std::size_t count) {
  const auto space = core::opt::ConfigSpace::PaperTableI();
  std::vector<core::StackConfig> configs;
  const std::size_t stride = space.Size() / count + 1;
  for (std::size_t i = 0; i < space.Size(); i += stride) {
    configs.push_back(space.At(i));
  }
  return configs;
}

/// Field-by-field bit-exact metric comparison (EXPECT_EQ on doubles is
/// deliberate: any divergence is a determinism bug, not noise).
void ExpectSamePoint(const experiment::SweepPoint& a,
                     const experiment::SweepPoint& b, std::size_t i) {
  EXPECT_EQ(a.measured.generated, b.measured.generated) << "config " << i;
  EXPECT_EQ(a.measured.delivered_unique, b.measured.delivered_unique)
      << "config " << i;
  EXPECT_EQ(a.measured.per, b.measured.per) << "config " << i;
  EXPECT_EQ(a.measured.goodput_kbps, b.measured.goodput_kbps)
      << "config " << i;
  EXPECT_EQ(a.measured.energy_uj_per_bit, b.measured.energy_uj_per_bit)
      << "config " << i;
  EXPECT_EQ(a.measured.mean_delay_ms, b.measured.mean_delay_ms)
      << "config " << i;
  EXPECT_EQ(a.measured.p99_delay_ms, b.measured.p99_delay_ms)
      << "config " << i;
  EXPECT_EQ(a.measured.plr_queue, b.measured.plr_queue) << "config " << i;
  EXPECT_EQ(a.measured.plr_radio, b.measured.plr_radio) << "config " << i;
  EXPECT_EQ(a.measured.mean_tries_all, b.measured.mean_tries_all)
      << "config " << i;
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db) << "config " << i;
  EXPECT_EQ(a.simulated, b.simulated) << "config " << i;
}

TEST(PerfInvariance, ThreadAndChunkCrossProductIsBitIdentical) {
  const auto configs = SliceOfTableI(8);
  ASSERT_GE(configs.size(), 6u);

  experiment::SweepOptions reference_options;
  reference_options.base_seed = 20150629;
  reference_options.packet_count = 100;
  reference_options.threads = 1;
  reference_options.chunk = 1;
  reference_options.capture_traces = true;
  const auto reference = RunSweep(configs, reference_options);

  const unsigned thread_counts[] = {1, 4, 16};
  const std::size_t chunk_sizes[] = {0, 1, 3, 64};
  for (const unsigned threads : thread_counts) {
    for (const std::size_t chunk : chunk_sizes) {
      auto options = reference_options;
      options.threads = threads;
      options.chunk = chunk;
      const auto run = RunSweep(configs, options);
      ASSERT_EQ(run.size(), reference.size())
          << "threads=" << threads << " chunk=" << chunk;
      for (std::size_t i = 0; i < run.size(); ++i) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " chunk=" + std::to_string(chunk));
        ExpectSamePoint(reference[i], run[i], i);
        EXPECT_TRUE(reference[i].counters == run[i].counters)
            << "config " << i;
        EXPECT_TRUE(reference[i].events == run[i].events) << "config " << i;
      }
    }
  }
}

TEST(PerfInvariance, EffectiveChunkSizeIsSaneAndBounded) {
  experiment::SweepOptions options;
  // Explicit chunk requests are honoured as-is.
  options.chunk = 7;
  EXPECT_EQ(experiment::SweepChunkSize(options, 1000), 7u);
  // Auto chunking never returns 0 and never exceeds its cap.
  options.chunk = 0;
  for (const std::size_t total : {1u, 2u, 17u, 500u, 5000u, 100000u}) {
    const auto chunk = experiment::SweepChunkSize(options, total);
    EXPECT_GE(chunk, 1u) << "total " << total;
    EXPECT_LE(chunk, 64u) << "total " << total;
  }
}

// The untraced sweep uses CsmaMac's collapsed fast path (one synchronous
// pass per packet); the traced sweep keeps the original event-per-hop
// chain so the trace ring stays time-ordered. Both must agree on every
// observable except the simulator's own event bookkeeping.
TEST(PerfInvariance, TracedAndUntracedPathsAgree) {
  const auto configs = SliceOfTableI(6);

  experiment::SweepOptions options;
  options.base_seed = 424242;
  options.packet_count = 150;
  options.capture_traces = false;
  const auto fast = RunSweep(configs, options);

  options.capture_traces = true;
  const auto traced = RunSweep(configs, options);

  ASSERT_EQ(fast.size(), traced.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ExpectSamePoint(fast[i], traced[i], i);
    // Counters must match except the sim.* family: the collapsed path
    // executes fewer simulator events by design.
    auto NonSim = [](const std::vector<trace::CounterSample>& samples) {
      std::vector<trace::CounterSample> kept;
      for (const auto& s : samples) {
        if (std::string_view(s.name).substr(0, 4) != "sim.") {
          kept.push_back(s);
        }
      }
      return kept;
    };
    EXPECT_TRUE(NonSim(fast[i].counters) == NonSim(traced[i].counters))
        << "config " << i;
    EXPECT_FALSE(traced[i].events.empty()) << "config " << i;
  }
}

TEST(PerfInvariance, PrescreenKeepsSimulatedPointsBitIdentical) {
  const auto configs = SliceOfTableI(40);
  const auto mask = experiment::PrescreenMask(configs, 0.10);
  const auto kept = static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), true));
  // The screen must actually screen: some configs simulated, some skipped.
  ASSERT_GT(kept, 0u);
  ASSERT_LT(kept, configs.size());

  experiment::SweepOptions options;
  options.base_seed = 7;
  options.packet_count = 80;
  const auto full = RunSweep(configs, options);

  options.analytic_prescreen = true;
  const auto screened = RunSweep(configs, options);

  ASSERT_EQ(full.size(), screened.size());
  for (std::size_t i = 0; i < screened.size(); ++i) {
    EXPECT_EQ(screened[i].simulated, mask[i]) << "config " << i;
    if (screened[i].simulated) {
      // Seeds are keyed to the original index, so surviving points are
      // the same bits as the un-prescreened sweep.
      ExpectSamePoint(full[i], screened[i], i);
    } else {
      // Skipped points carry the model prediction, not zeros.
      EXPECT_GT(screened[i].measured.goodput_kbps, 0.0) << "config " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Physical monotonicity properties (paper Sec. III): these hold for any
// correct executor and would catch a fast path that, say, reuses RNG draws
// or mis-orders attempts.
// ---------------------------------------------------------------------------

core::StackConfig GreyZoneConfig() {
  core::StackConfig config;
  config.distance_m = 35.0;
  config.pa_level = 11;
  config.max_tries = 3;
  config.queue_capacity = 10;
  config.pkt_interval_ms = 100.0;
  config.payload_bytes = 110;
  return config;
}

experiment::SweepOptions QuietChannelOptions() {
  experiment::SweepOptions options;
  options.base_seed = 31337;
  options.packet_count = 400;
  options.disable_temporal_shadowing = true;
  options.disable_interference = true;
  return options;
}

TEST(PerfInvariance, PerNonIncreasingInSnr) {
  // Walk P_tx up the CC2420 ladder at fixed distance: SNR rises with each
  // step, so attempt-level PER must fall (modulo sampling noise on a
  // quiet channel, hence the small slack).
  std::vector<core::StackConfig> configs;
  for (const int pa : {3, 7, 11, 15, 19, 23, 27, 31}) {
    auto config = GreyZoneConfig();
    config.pa_level = pa;
    configs.push_back(config);
  }
  const auto points = RunSweep(configs, QuietChannelOptions());
  ASSERT_EQ(points.size(), configs.size());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].mean_snr_db, points[i - 1].mean_snr_db)
        << "pa step " << i;
    EXPECT_LE(points[i].measured.per, points[i - 1].measured.per + 0.03)
        << "PER rose from pa_level " << configs[i - 1].pa_level << " to "
        << configs[i].pa_level;
  }
  // And the endpoints are far apart: the ladder actually spans the grey
  // zone rather than saturating at one end.
  EXPECT_GT(points.front().measured.per, points.back().measured.per + 0.10);
}

TEST(PerfInvariance, EveryServedPacketUsesAtLeastOneTry) {
  std::vector<core::StackConfig> configs;
  for (const int pa : {3, 11, 31}) {
    auto config = GreyZoneConfig();
    config.pa_level = pa;
    configs.push_back(config);
  }
  auto options = QuietChannelOptions();
  options.packet_count = 200;
  const auto results = RunSweepRaw(configs, options);
  for (const auto& result : results) {
    for (const auto& packet : result.log.Packets()) {
      if (packet.dropped_at_queue) continue;
      EXPECT_GE(packet.tries, 1) << "served packet with zero transmissions";
    }
  }
}

TEST(PerfInvariance, RadioLossNonIncreasingInMaxTries) {
  std::vector<core::StackConfig> configs;
  for (const int tries : {1, 2, 4, 8}) {
    auto config = GreyZoneConfig();
    config.max_tries = tries;
    configs.push_back(config);
  }
  const auto points = RunSweep(configs, QuietChannelOptions());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].measured.plr_radio,
              points[i - 1].measured.plr_radio + 0.03)
        << "PLR_radio rose from max_tries " << configs[i - 1].max_tries
        << " to " << configs[i].max_tries;
  }
  EXPECT_GT(points.front().measured.plr_radio,
            points.back().measured.plr_radio);
}

TEST(PerfInvariance, EnergyPerBitMinimisedAtInteriorPayload) {
  // Tiny payloads waste energy on header overhead; maximal payloads on a
  // grey link waste it on retransmissions of long frames. The optimum is
  // interior (the paper's Fig. 9 trade-off).
  std::vector<core::StackConfig> configs;
  const std::vector<int> payloads = {4, 20, 40, 60, 80, 100, 114};
  for (const int payload : payloads) {
    auto config = GreyZoneConfig();
    config.payload_bytes = payload;
    configs.push_back(config);
  }
  const auto points = RunSweep(configs, QuietChannelOptions());
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].measured.energy_uj_per_bit <
        points[best].measured.energy_uj_per_bit) {
      best = i;
    }
  }
  EXPECT_GT(best, 0u) << "energy/bit minimised at the smallest payload";
  EXPECT_LT(best, payloads.size() - 1)
      << "energy/bit minimised at the largest payload";
}

}  // namespace
}  // namespace wsnlink
