// Unit + statistical tests for the channel substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "channel/ber.h"
#include "channel/channel.h"
#include "channel/noise.h"
#include "channel/path_loss.h"
#include "channel/shadowing.h"
#include "sim/time.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wsnlink::channel {
namespace {

// ----------------------------------------------------------- path loss ----

TEST(PathLoss, ReferenceDistanceLoss) {
  PathLoss pl(PathLossParams{});
  EXPECT_DOUBLE_EQ(pl.MeanLossDb(1.0), 38.0);
}

TEST(PathLoss, TenXDistanceAddsTenNdB) {
  PathLossParams params;
  params.exponent = 2.19;
  PathLoss pl(params);
  EXPECT_NEAR(pl.MeanLossDb(10.0) - pl.MeanLossDb(1.0), 21.9, 1e-9);
  EXPECT_NEAR(pl.MeanLossDb(20.0) - pl.MeanLossDb(2.0), 21.9, 1e-9);
}

TEST(PathLoss, MonotonicInDistance) {
  PathLoss pl(PathLossParams{});
  double prev = -1e9;
  for (double d = 1.0; d <= 40.0; d += 0.5) {
    const double loss = pl.MeanLossDb(d);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(PathLoss, RssiIsTxMinusLoss) {
  PathLoss pl(PathLossParams{});
  EXPECT_NEAR(pl.MeanRssiDbm(0.0, 35.0), -(38.0 + 21.9 * std::log10(35.0)),
              1e-9);
}

TEST(PathLoss, SpatialShadowHasConfiguredSigma) {
  PathLoss pl(PathLossParams{});
  util::Rng rng(3);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(pl.SampleSpatialShadow(rng));
  EXPECT_NEAR(stats.Mean(), 0.0, 0.08);
  EXPECT_NEAR(stats.StdDev(), 3.2, 0.08);
}

TEST(PathLoss, RejectsInvalidParams) {
  PathLossParams bad;
  bad.exponent = 0.0;
  EXPECT_THROW(PathLoss{bad}, std::invalid_argument);
  PathLoss good{PathLossParams{}};
  EXPECT_THROW((void)good.MeanLossDb(0.0), std::invalid_argument);
}

// ----------------------------------------------------------- shadowing ----

TEST(Shadowing, StationarySigmaMatches) {
  ShadowingParams params;
  params.sigma_db = 2.0;
  params.coherence = 100 * sim::kMillisecond;
  ShadowingProcess process(params, util::Rng(4));
  util::RunningStats stats;
  // Sample far apart (10x coherence) for near-independent draws.
  for (int i = 0; i < 5000; ++i) {
    stats.Add(process.Sample(static_cast<sim::Time>(i) * sim::kSecond));
  }
  EXPECT_NEAR(stats.Mean(), 0.0, 0.15);
  EXPECT_NEAR(stats.StdDev(), 2.0, 0.15);
}

TEST(Shadowing, CloseSamplesAreCorrelated) {
  ShadowingParams params;
  params.sigma_db = 2.0;
  params.coherence = 2 * sim::kSecond;
  ShadowingProcess process(params, util::Rng(5));
  // Consecutive samples 1 ms apart should barely move.
  const double first = process.Sample(0);
  const double second = process.Sample(sim::kMillisecond);
  EXPECT_NEAR(first, second, 0.5);
}

TEST(Shadowing, TimeMovingBackwardsThrows) {
  ShadowingProcess process(ShadowingParams{}, util::Rng(6));
  (void)process.Sample(1000);
  EXPECT_THROW((void)process.Sample(500), std::logic_error);
}

TEST(Shadowing, DefaultSigmaLargestAt35m) {
  EXPECT_GT(DefaultTemporalSigmaDb(35.0), DefaultTemporalSigmaDb(20.0));
  EXPECT_GT(DefaultTemporalSigmaDb(35.0), DefaultTemporalSigmaDb(30.0));
  EXPECT_DOUBLE_EQ(DefaultTemporalSigmaDb(10.0), DefaultTemporalSigmaDb(20.0));
}

TEST(Shadowing, ZeroSigmaIsConstantZeroProcess) {
  ShadowingParams params;
  params.sigma_db = 0.0;
  ShadowingProcess process(params, util::Rng(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(process.Sample(i * sim::kSecond), 0.0);
  }
}

// ------------------------------------------------------------- noise ----

TEST(Noise, MeanNearMinus95) {
  NoiseFloorProcess process(NoiseParams{}, util::Rng(8));
  util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(process.SampleDbm(static_cast<sim::Time>(i) * 500));
  }
  EXPECT_NEAR(stats.Mean(), -95.0, 0.5);
}

TEST(Noise, DistributionIsRightSkewed) {
  // Interference bursts push samples up, so mean > median.
  NoiseFloorProcess process(NoiseParams{}, util::Rng(9));
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) {
    samples.push_back(process.SampleDbm(static_cast<sim::Time>(i) * 500));
  }
  EXPECT_GT(util::Mean(samples), util::Median(samples));
}

TEST(Noise, NoBurstsWhenRateZero) {
  NoiseParams params;
  params.burst_rate_hz = 0.0;
  NoiseFloorProcess process(params, util::Rng(10));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(process.InterferenceActive(i * sim::kSecond));
  }
}

TEST(Noise, BurstsOccurAtConfiguredRate) {
  NoiseParams params;
  params.burst_rate_hz = 2.0;
  params.burst_mean_duration = 50 * sim::kMillisecond;
  NoiseFloorProcess process(params, util::Rng(11));
  int active = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (process.InterferenceActive(static_cast<sim::Time>(i) * 1000)) ++active;
  }
  // Duty cycle ~ rate * duration = 0.1.
  EXPECT_NEAR(static_cast<double>(active) / n, 0.1, 0.035);
}

// --------------------------------------------------------------- BER ----

TEST(Ber, AnalyticCurveIsMonotoneDecreasing) {
  AnalyticOQpskBer ber;
  double prev = 1.0;
  for (double snr = -5.0; snr <= 15.0; snr += 0.5) {
    const double b = ber.BitErrorRate(snr);
    EXPECT_LE(b, prev + 1e-12);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 0.5);
    prev = b;
  }
}

TEST(Ber, AnalyticCliffIsSharp) {
  // The textbook DSSS curve collapses over a few dB.
  AnalyticOQpskBer ber;
  EXPECT_GT(ber.BitErrorRate(-2.0), 2e-3);
  EXPECT_LT(ber.BitErrorRate(6.0), 1e-8);
}

TEST(Ber, CalibratedMatchesPaperPerModelAtAttemptLevel) {
  // One attempt = 19 B overhead + payload data frame, plus an 11 B ACK.
  // For large payloads the attempt failure probability must approximate
  // the paper's Eq. (3): 0.0128 * l * exp(-0.15 snr).
  CalibratedExponentialBer ber;
  for (const double l : {80.0, 110.0}) {
    for (double snr = 12.0; snr <= 22.0; snr += 2.0) {
      const double data_fail =
          1.0 - ber.FrameSuccessProbability(snr, static_cast<int>(l) + 19);
      const double ack_fail = 1.0 - ber.FrameSuccessProbability(snr, 11);
      const double attempt_fail =
          1.0 - (1.0 - data_fail) * (1.0 - ack_fail);
      const double per_paper = 0.0128 * l * std::exp(-0.15 * snr);
      EXPECT_NEAR(attempt_fail, per_paper, 0.25 * per_paper)
          << "l=" << l << " snr=" << snr;
    }
  }
}

TEST(Ber, CalibratedFrameLossLinearInBytes) {
  // The empirical law: loss scales linearly with frame size (Eq. 3's
  // shape), not as an independent-bit-error power.
  CalibratedExponentialBer ber;
  const double loss1 = 1.0 - ber.FrameSuccessProbability(15.0, 50);
  const double loss2 = 1.0 - ber.FrameSuccessProbability(15.0, 100);
  EXPECT_NEAR(loss2, 2.0 * loss1, 1e-9);
  // And saturates at total loss instead of going negative.
  EXPECT_DOUBLE_EQ(ber.FrameSuccessProbability(-30.0, 127), 0.0);
}

TEST(Ber, AnalyticFrameSuccessComposesBitErrors) {
  AnalyticOQpskBer ber;
  const double p1 = ber.FrameSuccessProbability(1.0, 50);
  const double p2 = ber.FrameSuccessProbability(1.0, 100);
  EXPECT_NEAR(p2, p1 * p1, 1e-9);
}

TEST(Ber, CalibratedCurveSmootherThanAnalytic) {
  // Span of SNR taking PER(133B frame) from 0.9 to 0.1 is wider for the
  // calibrated curve — the paper's observed smooth grey zone.
  const auto transition_width = [](const BerModel& ber) {
    double snr_90 = 0.0;
    double snr_10 = 0.0;
    for (double snr = -10.0; snr < 40.0; snr += 0.01) {
      const double per = 1.0 - ber.FrameSuccessProbability(snr, 133);
      if (per > 0.9) snr_90 = snr;
      if (per > 0.1) snr_10 = snr;
    }
    return snr_10 - snr_90;
  };
  EXPECT_GT(transition_width(CalibratedExponentialBer()),
            3.0 * transition_width(AnalyticOQpskBer()));
}

TEST(Ber, InvalidConstruction) {
  EXPECT_THROW(CalibratedExponentialBer(0.0, -0.1), std::invalid_argument);
  EXPECT_THROW(CalibratedExponentialBer(0.1, 0.1), std::invalid_argument);
  CalibratedExponentialBer ok;
  EXPECT_THROW((void)ok.FrameSuccessProbability(10.0, 0),
               std::invalid_argument);
}

// ------------------------------------------------------------ channel ----

ChannelConfig TestConfig(double distance) {
  ChannelConfig config;
  config.distance_m = distance;
  return config;
}

TEST(Channel, MeanRssiFollowsPathLoss) {
  Channel ch(TestConfig(20.0), util::Rng(12));
  const double expected = 0.0 - (38.0 + 21.9 * std::log10(20.0));
  EXPECT_NEAR(ch.MeanRssiDbm(0.0), expected, 1e-9);
  EXPECT_NEAR(ch.MeanSnrDb(0.0), expected + 95.6, 1e-9);
}

TEST(Channel, StrongLinkDeliversAlmostEverything) {
  Channel ch(TestConfig(5.0), util::Rng(13));
  int delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto out = ch.Transmit(0.0, 133, static_cast<sim::Time>(i) * 10000);
    if (out.received) ++delivered;
  }
  EXPECT_GT(delivered, 1900);
}

TEST(Channel, BelowSensitivityNothingArrives) {
  ChannelConfig config = TestConfig(35.0);
  Channel ch(config, util::Rng(14));
  // -25 dBm at 35 m: RSSI ~= -98.7 dBm, below the -97 dBm sensitivity.
  int delivered = 0;
  for (int i = 0; i < 500; ++i) {
    const auto out =
        ch.Transmit(-25.0, 20, static_cast<sim::Time>(i) * 10000);
    if (out.received) ++delivered;
  }
  EXPECT_LT(delivered, 100);  // only shadowing excursions can save a frame
}

TEST(Channel, PerIncreasesWithFrameSize) {
  // Medium link: larger frames fail more often.
  const auto loss_rate = [](int frame_bytes) {
    Channel ch(TestConfig(30.0), util::Rng(15));
    int lost = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      const auto out =
          ch.Transmit(-10.0, frame_bytes, static_cast<sim::Time>(i) * 5000);
      if (!out.received) ++lost;
    }
    return static_cast<double>(lost) / n;
  };
  EXPECT_GT(loss_rate(130), loss_rate(25) + 0.02);
}

TEST(Channel, SnrIsRssiMinusNoise) {
  Channel ch(TestConfig(20.0), util::Rng(16));
  const auto out = ch.Transmit(0.0, 50, 0);
  EXPECT_NEAR(out.snr_db, out.rssi_dbm - out.noise_dbm, 1e-12);
}

TEST(Channel, LqiCorrelatesWithSnr) {
  Channel strong(TestConfig(5.0), util::Rng(17));
  Channel weak(TestConfig(35.0), util::Rng(17));
  util::RunningStats lqi_strong;
  util::RunningStats lqi_weak;
  for (int i = 0; i < 500; ++i) {
    lqi_strong.Add(strong.Transmit(0.0, 50, i * 10000).lqi);
    lqi_weak.Add(weak.Transmit(-15.0, 50, i * 10000).lqi);
  }
  EXPECT_GT(lqi_strong.Mean(), lqi_weak.Mean() + 10.0);
}

TEST(Channel, DeterministicForSameSeed) {
  Channel a(TestConfig(25.0), util::Rng(18));
  Channel b(TestConfig(25.0), util::Rng(18));
  for (int i = 0; i < 200; ++i) {
    const auto oa = a.Transmit(-5.0, 70, i * 1000);
    const auto ob = b.Transmit(-5.0, 70, i * 1000);
    EXPECT_EQ(oa.received, ob.received);
    EXPECT_DOUBLE_EQ(oa.rssi_dbm, ob.rssi_dbm);
    EXPECT_DOUBLE_EQ(oa.snr_db, ob.snr_db);
    EXPECT_EQ(oa.lqi, ob.lqi);
  }
}

TEST(Channel, NullBerModelRejected) {
  EXPECT_THROW(Channel(TestConfig(10.0), nullptr, util::Rng(1)),
               std::invalid_argument);
}

TEST(Channel, SpatialShadowShiftsMeanRssi) {
  ChannelConfig config = TestConfig(20.0);
  config.spatial_shadow_db = 5.0;
  Channel shifted(config, util::Rng(19));
  Channel base(TestConfig(20.0), util::Rng(19));
  EXPECT_NEAR(shifted.MeanRssiDbm(0.0) - base.MeanRssiDbm(0.0), 5.0, 1e-12);
}

}  // namespace
}  // namespace wsnlink::channel
