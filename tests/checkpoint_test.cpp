// Crash-safety tests: checkpoint format validation and campaign resume.
//
// The load-bearing property is bit-identity — a campaign interrupted at an
// arbitrary point and resumed must emit a summary CSV byte-equal to an
// uninterrupted run (docs/ROBUSTNESS.md). Everything else here defends the
// resume path's failure modes: truncated/corrupt/foreign checkpoint files
// must be rejected loudly, never silently resumed into garbage.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <random>
#include <sstream>
#include <string>

#include "experiment/campaign.h"
#include "experiment/checkpoint.h"
#include "experiment/dataset.h"
#include "util/fault_injection.h"

namespace wsnlink::experiment {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

Checkpoint SampleCheckpoint() {
  Checkpoint checkpoint;
  checkpoint.meta.base_seed = 2013;
  checkpoint.meta.packet_count = 50;
  checkpoint.meta.stride = 4000;
  checkpoint.meta.space_size = 48384;
  checkpoint.meta.config_count = 13;
  checkpoint.rows.push_back({0, false, "", "10,11,3,30,5,50,80,1,2,3"});
  checkpoint.rows.push_back({5, true, "injected fault at sweep.worker",
                             "10,11,3,30,5,50,80,0,0,0"});
  checkpoint.rows.push_back({12, false, "", "40,31,1,90,1,200,100,4,5,6"});
  return checkpoint;
}

/// Small, fast campaign shared by the resume tests: ~13 configurations.
CampaignOptions SmallCampaign(const std::string& csv,
                              const std::string& checkpoint) {
  CampaignOptions options;
  options.packet_count = 20;
  options.stride = 4000;
  options.base_seed = 77;
  options.summary_csv_path = csv;
  options.checkpoint_path = checkpoint;
  options.checkpoint_every = 2;
  options.collect_counters = false;
  return options;
}

TEST(Checkpoint, WriteReadRoundTrip) {
  const std::string path = TempPath("wsn_ckpt_roundtrip.ckpt");
  const Checkpoint original = SampleCheckpoint();
  WriteCheckpoint(path, original);

  const Checkpoint loaded = ReadCheckpoint(path);
  EXPECT_EQ(loaded.meta, original.meta);
  ASSERT_EQ(loaded.rows.size(), original.rows.size());
  for (std::size_t i = 0; i < loaded.rows.size(); ++i) {
    EXPECT_EQ(loaded.rows[i].index, original.rows[i].index);
    EXPECT_EQ(loaded.rows[i].failed, original.rows[i].failed);
    EXPECT_EQ(loaded.rows[i].error, original.rows[i].error);
    EXPECT_EQ(loaded.rows[i].csv_row, original.rows[i].csv_row);
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingFileRejected) {
  EXPECT_THROW((void)ReadCheckpoint(TempPath("wsn_ckpt_nonexistent.ckpt")),
               CheckpointError);
}

TEST(Checkpoint, TruncatedFileRejected) {
  const std::string path = TempPath("wsn_ckpt_truncated.ckpt");
  WriteCheckpoint(path, SampleCheckpoint());
  const std::string contents = ReadFile(path);

  // Chop at every prefix length that drops at least the end line: all must
  // be rejected, none may crash.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, contents.size() / 2,
        contents.size() - 2}) {
    WriteFile(path, contents.substr(0, keep));
    EXPECT_THROW((void)ReadCheckpoint(path), CheckpointError)
        << "prefix of " << keep << " bytes was accepted";
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, BadMagicRejected) {
  const std::string path = TempPath("wsn_ckpt_magic.ckpt");
  WriteCheckpoint(path, SampleCheckpoint());
  std::string contents = ReadFile(path);
  contents[0] = 'X';
  WriteFile(path, contents);
  EXPECT_THROW((void)ReadCheckpoint(path), CheckpointError);
  std::filesystem::remove(path);
}

TEST(Checkpoint, VersionMismatchRejected) {
  const std::string path = TempPath("wsn_ckpt_version.ckpt");
  // Future-versioned file with a correct checksum: the version gate, not
  // the checksum, must reject it.
  std::string body = "wsnlink-checkpoint 999\n";
  std::ostringstream out;
  out << body << "end " << std::hex << std::setw(16) << std::setfill('0')
      << CheckpointChecksum(body) << "\n";
  WriteFile(path, out.str());
  try {
    (void)ReadCheckpoint(path);
    FAIL() << "version 999 was accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, ChecksumMismatchRejected) {
  const std::string path = TempPath("wsn_ckpt_checksum.ckpt");
  WriteCheckpoint(path, SampleCheckpoint());
  std::string contents = ReadFile(path);
  // Flip one payload byte (a digit of base_seed) without touching the
  // stored checksum.
  const std::size_t pos = contents.find("2013");
  ASSERT_NE(pos, std::string::npos);
  contents[pos] = '9';
  WriteFile(path, contents);
  try {
    (void)ReadCheckpoint(path);
    FAIL() << "bit-flipped checkpoint was accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, TrailingGarbageRejected) {
  const std::string path = TempPath("wsn_ckpt_trailing.ckpt");
  WriteCheckpoint(path, SampleCheckpoint());
  WriteFile(path, ReadFile(path) + "row 3 ok\t\t1,2,3\n");
  EXPECT_THROW((void)ReadCheckpoint(path), CheckpointError);
  std::filesystem::remove(path);
}

TEST(Checkpoint, CorruptionFuzzNeverCrashesOrMisparses) {
  const std::string path = TempPath("wsn_ckpt_fuzz.ckpt");
  WriteCheckpoint(path, SampleCheckpoint());
  const std::string pristine = ReadFile(path);

  std::mt19937 rng(20150629);
  std::uniform_int_distribution<std::size_t> pos_dist(0, pristine.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = pristine;
    const int mutations = 1 + static_cast<int>(rng() % 4);
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = pos_dist(rng) % mutated.size();
      switch (rng() % 3) {
        case 0:  // flip
          mutated[pos] = static_cast<char>(byte_dist(rng));
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // truncate
          mutated.resize(pos);
          break;
      }
      if (mutated.empty()) break;
    }
    WriteFile(path, mutated);
    // A mutation may cancel out (e.g. flipping a byte to itself); anything
    // else must surface as CheckpointError — never a crash, never a
    // silently wrong parse of a checksummed file.
    try {
      const Checkpoint loaded = ReadCheckpoint(path);
      EXPECT_EQ(loaded.meta, SampleCheckpoint().meta)
          << "trial " << trial << ": corrupted checkpoint parsed differently";
    } catch (const CheckpointError&) {
      // Expected for essentially every mutation.
    }
  }
  std::filesystem::remove(path);
}

TEST(CampaignResume, InterruptedRunResumesBitIdentical) {
  const std::string ref_csv = TempPath("wsn_resume_ref.csv");
  const std::string resumed_csv = TempPath("wsn_resume_out.csv");
  const std::string ckpt = TempPath("wsn_resume.ckpt");
  std::filesystem::remove(ckpt);
  std::filesystem::remove(resumed_csv);

  // Reference: one uninterrupted run.
  const auto reference = RunCampaign(SmallCampaign(ref_csv, ""));
  EXPECT_TRUE(reference.complete);

  // Interrupted run: stop after 5 fresh completions (threads=1 so the
  // cancel budget is exact — a wide pool could drain all 13 configs before
  // the predicate fires). The resumed run goes back to the default pool,
  // so byte-identity is also checked across thread counts. No CSV yet.
  CampaignOptions interrupted = SmallCampaign(resumed_csv, ckpt);
  interrupted.max_configs = 5;
  interrupted.threads = 1;
  const auto partial = RunCampaign(interrupted);
  EXPECT_FALSE(partial.complete);
  EXPECT_FALSE(std::filesystem::exists(resumed_csv));
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  // Resume: restores the checkpointed rows, runs the rest, writes the CSV.
  CampaignOptions resume = SmallCampaign(resumed_csv, ckpt);
  resume.resume = true;
  const auto resumed = RunCampaign(resume);
  EXPECT_TRUE(resumed.complete);
  EXPECT_GE(resumed.configs_resumed, 5u);
  EXPECT_LT(resumed.configs_resumed, resumed.configurations);

  // The headline guarantee: byte-for-byte equality.
  EXPECT_EQ(ReadFile(resumed_csv), ReadFile(ref_csv));

  std::filesystem::remove(ref_csv);
  std::filesystem::remove(resumed_csv);
  std::filesystem::remove(ckpt);
}

TEST(CampaignResume, DelayQuantileColumnsSurviveResume) {
  // The summary schema's delay_p50_ms / delay_p99_ms / delay_max_ms
  // columns ride through the checkpoint as serialized CSV rows; a resumed
  // campaign must restore them bit-exactly and keep them internally
  // ordered. (Byte-identity above already implies this; parsing the rows
  // back pins the schema <-> struct mapping itself.)
  const std::string ref_csv = TempPath("wsn_resume_delay_ref.csv");
  const std::string resumed_csv = TempPath("wsn_resume_delay_out.csv");
  const std::string ckpt = TempPath("wsn_resume_delay.ckpt");
  std::filesystem::remove(ckpt);
  std::filesystem::remove(resumed_csv);

  (void)RunCampaign(SmallCampaign(ref_csv, ""));
  CampaignOptions interrupted = SmallCampaign(resumed_csv, ckpt);
  interrupted.max_configs = 5;
  interrupted.threads = 1;
  (void)RunCampaign(interrupted);
  CampaignOptions resume = SmallCampaign(resumed_csv, ckpt);
  resume.resume = true;
  (void)RunCampaign(resume);

  const auto reference = ReadSummaryCsv(ref_csv);
  const auto resumed = ReadSummaryCsv(resumed_csv);
  ASSERT_EQ(reference.size(), resumed.size());
  ASSERT_FALSE(reference.empty());
  bool any_delivered = false;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    // Bit-exact: the resumed rows come from the checkpoint, not a re-run.
    EXPECT_EQ(reference[i].measured.delay_p50_ms,
              resumed[i].measured.delay_p50_ms)
        << "row " << i;
    EXPECT_EQ(reference[i].measured.p99_delay_ms,
              resumed[i].measured.p99_delay_ms)
        << "row " << i;
    EXPECT_EQ(reference[i].measured.delay_max_ms,
              resumed[i].measured.delay_max_ms)
        << "row " << i;
    if (resumed[i].measured.delivered_unique > 0) {
      any_delivered = true;
      EXPECT_GT(resumed[i].measured.delay_p50_ms, 0.0) << "row " << i;
      EXPECT_LE(resumed[i].measured.delay_p50_ms,
                resumed[i].measured.p99_delay_ms)
          << "row " << i;
      EXPECT_LE(resumed[i].measured.p99_delay_ms,
                resumed[i].measured.delay_max_ms)
          << "row " << i;
    }
  }
  EXPECT_TRUE(any_delivered);

  std::filesystem::remove(ref_csv);
  std::filesystem::remove(resumed_csv);
  std::filesystem::remove(ckpt);
}

TEST(CampaignResume, CompletedCampaignReemitsIdenticalCsv) {
  const std::string csv = TempPath("wsn_resume_complete.csv");
  const std::string ckpt = TempPath("wsn_resume_complete.ckpt");
  std::filesystem::remove(ckpt);

  CampaignOptions options = SmallCampaign(csv, ckpt);
  const auto first = RunCampaign(options);
  EXPECT_TRUE(first.complete);
  const std::string first_bytes = ReadFile(csv);

  options.resume = true;
  const auto second = RunCampaign(options);
  EXPECT_TRUE(second.complete);
  // Everything restored, nothing re-simulated.
  EXPECT_EQ(second.configs_resumed, second.configurations);
  EXPECT_EQ(ReadFile(csv), first_bytes);

  std::filesystem::remove(csv);
  std::filesystem::remove(ckpt);
}

TEST(CampaignResume, SeedContractMismatchRejected) {
  const std::string csv = TempPath("wsn_resume_contract.csv");
  const std::string ckpt = TempPath("wsn_resume_contract.ckpt");
  std::filesystem::remove(ckpt);

  CampaignOptions options = SmallCampaign(csv, ckpt);
  options.max_configs = 3;
  (void)RunCampaign(options);
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  // Rows measured under seed 77 must not seed a campaign keyed to 78.
  CampaignOptions mismatched = SmallCampaign(csv, ckpt);
  mismatched.resume = true;
  mismatched.base_seed = 78;
  EXPECT_THROW((void)RunCampaign(mismatched), CheckpointError);

  std::filesystem::remove(csv);
  std::filesystem::remove(ckpt);
}

TEST(CampaignResume, CheckpointWriteFaultDegradesGracefully) {
  const std::string csv = TempPath("wsn_resume_fault.csv");
  const std::string ckpt = TempPath("wsn_resume_fault.ckpt");
  std::filesystem::remove(ckpt);

  util::ScopedFaultInjection injection;
  injection->FailAfter("checkpoint.write", 0);  // disk stays full

  const auto result = RunCampaign(SmallCampaign(csv, ckpt));
  // The campaign completes and delivers its CSV despite every checkpoint
  // write failing; the failure is reported, not thrown.
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.checkpoint_write_error.empty());
  EXPECT_NE(result.checkpoint_write_error.find("checkpoint"),
            std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(csv));
  // The atomic tmp+rename protocol never published a bad file.
  EXPECT_FALSE(std::filesystem::exists(ckpt));
  EXPECT_FALSE(std::filesystem::exists(ckpt + ".tmp"));

  std::filesystem::remove(csv);
}

TEST(CampaignResume, FaultedCheckpointWriteLeavesPreviousIntact) {
  const std::string csv = TempPath("wsn_resume_prev.csv");
  const std::string ckpt = TempPath("wsn_resume_prev.ckpt");
  std::filesystem::remove(ckpt);

  // First: a healthy partial run leaves a valid checkpoint.
  CampaignOptions options = SmallCampaign(csv, ckpt);
  options.max_configs = 3;
  (void)RunCampaign(options);
  ASSERT_TRUE(std::filesystem::exists(ckpt));
  const std::string before = ReadFile(ckpt);

  // Then: resume with all checkpoint writes failing. The run completes and
  // the pre-existing checkpoint file is byte-identical to before.
  util::ScopedFaultInjection injection;
  injection->FailAfter("checkpoint.write", 0);
  CampaignOptions resume = SmallCampaign(csv, ckpt);
  resume.resume = true;
  const auto result = RunCampaign(resume);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.checkpoint_write_error.empty());
  EXPECT_EQ(ReadFile(ckpt), before);

  std::filesystem::remove(csv);
  std::filesystem::remove(ckpt);
}

}  // namespace
}  // namespace wsnlink::experiment
