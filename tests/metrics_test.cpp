// Tests for metric extraction and SNR-bucketed aggregation.
#include <gtest/gtest.h>

#include "metrics/aggregate.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"

namespace wsnlink::metrics {
namespace {

node::SimulationOptions Options(double distance, int pa_level, int tries,
                                int queue, double interval, int payload,
                                int packets, std::uint64_t seed) {
  node::SimulationOptions options;
  options.config.distance_m = distance;
  options.config.pa_level = pa_level;
  options.config.max_tries = tries;
  options.config.queue_capacity = queue;
  options.config.pkt_interval_ms = interval;
  options.config.payload_bytes = payload;
  options.packet_count = packets;
  options.seed = seed;
  return options;
}

TEST(LinkMetrics, ConservationOfPackets) {
  // generated = delivered + queue drops + radio losses (as fractions).
  const auto options = Options(30.0, 11, 3, 5, 40.0, 80, 500, 1);
  const auto result = node::RunLinkSimulation(options);
  const auto m = ComputeMetrics(result, options.config.pkt_interval_ms);

  const double recon = (1.0 - m.plr_queue) * (1.0 - m.plr_radio);
  const double delivered_frac =
      static_cast<double>(m.delivered_unique) / m.generated;
  EXPECT_NEAR(recon, delivered_frac, 1e-9);
  EXPECT_NEAR(m.plr_total, 1.0 - delivered_frac, 1e-9);
}

TEST(LinkMetrics, StrongLinkIsClean) {
  const auto options = Options(10.0, 31, 3, 10, 50.0, 60, 300, 2);
  const auto m = MeasureConfig(options);
  EXPECT_EQ(m.generated, 300);
  // An interference burst can occasionally defeat even a strong link.
  EXPECT_GE(m.delivered_unique, 298u);
  EXPECT_LT(m.per, 0.02);
  EXPECT_NEAR(m.mean_tries_acked, 1.0, 0.02);
  EXPECT_DOUBLE_EQ(m.plr_queue, 0.0);
  EXPECT_LT(m.plr_radio, 0.01);
  EXPECT_GT(m.goodput_kbps, 0.0);
  EXPECT_GT(m.mean_delay_ms, 0.0);
  EXPECT_LT(m.mean_delay_ms, m.mean_service_ms);  // delivery precedes ACK
  EXPECT_GT(m.energy_uj_per_bit, 0.2);            // >= raw E_tx at level 31
  EXPECT_LT(m.energy_uj_per_bit, 0.35);
}

TEST(LinkMetrics, EnergyPerBitReflectsOverheadAmortisation) {
  // Small payloads pay proportionally more overhead energy per bit.
  const auto small = MeasureConfig(Options(10.0, 31, 1, 5, 50.0, 5, 200, 3));
  const auto large = MeasureConfig(Options(10.0, 31, 1, 5, 50.0, 114, 200, 3));
  EXPECT_GT(small.energy_uj_per_bit, 2.0 * large.energy_uj_per_bit);
}

TEST(LinkMetrics, QueueWaitVisibleUnderLoad) {
  // rho ~ 0.9: queue wait is nonzero but bounded.
  const auto loaded = MeasureConfig(Options(15.0, 31, 3, 30, 21.0, 110, 800, 4));
  EXPECT_GT(loaded.mean_queue_wait_ms, 1.0);
  const auto relaxed =
      MeasureConfig(Options(15.0, 31, 3, 30, 200.0, 110, 200, 4));
  EXPECT_LT(relaxed.mean_queue_wait_ms, 0.5);
}

TEST(LinkMetrics, UtilizationTracksServiceOverInterval) {
  const auto options = Options(20.0, 19, 3, 5, 50.0, 110, 400, 5);
  const auto m = MeasureConfig(options);
  EXPECT_NEAR(m.utilization, m.mean_service_ms / 50.0, 1e-9);
  EXPECT_GT(m.utilization, 0.2);
  EXPECT_LT(m.utilization, 0.8);
}

TEST(LinkMetrics, P99DelayAtLeastMean) {
  const auto m = MeasureConfig(Options(25.0, 15, 3, 30, 25.0, 110, 600, 6));
  EXPECT_GE(m.p99_delay_ms, m.mean_delay_ms);
}

// ----------------------------------------------------------- aggregate ----

TEST(Aggregate, PerBySnrBucketsAreSorted) {
  const auto options = Options(35.0, 11, 1, 1, 30.0, 110, 800, 7);
  const auto result = node::RunLinkSimulation(options);
  const auto buckets = PerBySnr(result.log.Attempts(), 1.0);
  ASSERT_GT(buckets.size(), 1u);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GT(buckets[i].snr_center_db, buckets[i - 1].snr_center_db);
  }
  std::uint64_t total = 0;
  for (const auto& b : buckets) {
    total += b.attempts;
    EXPECT_GE(b.Per(), 0.0);
    EXPECT_LE(b.Per(), 1.0);
  }
  EXPECT_EQ(total, result.log.Attempts().size());
}

TEST(Aggregate, PerDecreasesAcrossSnrRange) {
  // Pool attempts from several powers at 35 m: low-SNR buckets must show
  // higher PER than high-SNR buckets.
  std::vector<link::AttemptRecord> all;
  for (const int level : {7, 11, 15, 23, 31}) {
    const auto result = node::RunLinkSimulation(
        Options(35.0, level, 1, 1, 30.0, 110, 600, 8 + level));
    const auto& attempts = result.log.Attempts();
    all.insert(all.end(), attempts.begin(), attempts.end());
  }
  const auto buckets = PerBySnr(all, 2.0);
  ASSERT_GT(buckets.size(), 4u);
  // Average PER of the lowest third vs highest third of buckets.
  const std::size_t third = buckets.size() / 3;
  double low = 0.0;
  double high = 0.0;
  for (std::size_t i = 0; i < third; ++i) {
    low += buckets[i].Per();
    high += buckets[buckets.size() - 1 - i].Per();
  }
  EXPECT_GT(low, high + 0.1 * third);
}

TEST(Aggregate, PayloadFilterRestricts) {
  const auto result =
      node::RunLinkSimulation(Options(30.0, 11, 2, 5, 30.0, 50, 400, 9));
  const auto all = PerBySnr(result.log.Attempts(), 2.0);
  const auto same = PerBySnrForPayload(result.log.Attempts(), 50, 2.0);
  const auto none = PerBySnrForPayload(result.log.Attempts(), 51, 2.0);
  EXPECT_EQ(none.size(), 0u);
  std::uint64_t total_all = 0;
  std::uint64_t total_same = 0;
  for (const auto& b : all) total_all += b.attempts;
  for (const auto& b : same) total_same += b.attempts;
  EXPECT_EQ(total_all, total_same);
}

TEST(Aggregate, FitSamplesRespectMinCount) {
  const auto result =
      node::RunLinkSimulation(Options(35.0, 11, 1, 1, 30.0, 110, 500, 10));
  const auto strict =
      PerFitSamples(result.log.Attempts(), 1.0, /*min_attempts=*/100);
  const auto loose =
      PerFitSamples(result.log.Attempts(), 1.0, /*min_attempts=*/1);
  EXPECT_LE(strict.size(), loose.size());
  for (const auto& s : strict) {
    EXPECT_EQ(s.payload_bytes, 110.0);
    EXPECT_GE(s.value, 0.0);
    EXPECT_LE(s.value, 1.0);
  }
}

TEST(Aggregate, NtriesSamplesHaveNonNegativeExtraTries) {
  const auto result =
      node::RunLinkSimulation(Options(35.0, 11, 8, 5, 60.0, 110, 500, 11));
  const auto samples = NtriesFitSamples(result.log.Packets(), 2.0, 5);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    EXPECT_GE(s.value, 0.0);        // extra tries can't be negative
    EXPECT_LT(s.value, 7.0 + 1e-9); // at most max_tries - 1
  }
}

TEST(Aggregate, InvalidBucketWidthThrows) {
  std::vector<link::AttemptRecord> empty;
  EXPECT_THROW((void)PerBySnr(empty, 0.0), std::invalid_argument);
  std::vector<link::PacketRecord> no_packets;
  EXPECT_THROW((void)NtriesFitSamples(no_packets, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace wsnlink::metrics
