// Tests for the weighted-sum MOP scalarisation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/opt/epsilon_constraint.h"
#include "core/opt/pareto.h"
#include "core/opt/weighted_sum.h"
#include "phy/frame.h"

namespace wsnlink::core::opt {
namespace {

ConfigSpace SmallSpace() {
  ConfigSpace space;
  space.distances_m = {20.0};
  space.pa_levels = {3, 7, 11, 15, 19, 23, 27, 31};
  space.max_tries = {1, 3, 8};
  space.retry_delays_ms = {0.0};
  space.queue_capacities = {30};
  space.pkt_intervals_ms = {1.0};
  space.payload_bytes = {5, 20, 50, 80, 110, 114};
  return space;
}

TEST(WeightedSum, PureGoodputWeightMatchesEpsilonUnconstrained) {
  const models::ModelSet models;
  const auto space = SmallSpace();

  const auto weighted = SolveWeightedSum(
      models, space, {{Metric::kGoodput, 1.0}});
  ASSERT_TRUE(weighted.has_value());

  Problem problem;
  problem.objective = Metric::kGoodput;
  const auto eps = SolveEpsilonConstraint(models, space, problem);
  ASSERT_TRUE(eps.has_value());

  EXPECT_NEAR(weighted->prediction.max_goodput_kbps,
              eps->prediction.max_goodput_kbps, 1e-9);
}

TEST(WeightedSum, PureEnergyWeightFindsMinimumFiniteEnergy) {
  const models::ModelSet models;
  const auto space = SmallSpace();
  const auto solution = SolveWeightedSum(
      models, space, {{Metric::kEnergy, 1.0}});
  ASSERT_TRUE(solution.has_value());

  // Brute force over finite-energy points.
  double best = 1e18;
  const auto points = EvaluateSpace(models, space);
  for (const auto& p : points) {
    if (std::isfinite(p.prediction.energy_uj_per_bit)) {
      best = std::min(best, p.prediction.energy_uj_per_bit);
    }
  }
  EXPECT_NEAR(solution->prediction.energy_uj_per_bit, best, 1e-9);
}

TEST(WeightedSum, SolutionIsParetoOptimal) {
  // Any strictly-positive-weight optimum must be non-dominated.
  const models::ModelSet models;
  const auto space = SmallSpace();
  const std::vector<Metric> axes{Metric::kEnergy, Metric::kGoodput};

  const auto solution = SolveWeightedSum(
      models, space, {{Metric::kEnergy, 0.5}, {Metric::kGoodput, 0.5}});
  ASSERT_TRUE(solution.has_value());

  const auto points = EvaluateSpace(models, space);
  for (const auto& p : points) {
    EXPECT_FALSE(Dominates(p.prediction, solution->prediction, axes))
        << p.config.ToString();
  }
}

TEST(WeightedSum, WeightShiftMovesAlongTradeoff) {
  const models::ModelSet models;
  const auto space = SmallSpace();
  const auto goodput_heavy = SolveWeightedSum(
      models, space, {{Metric::kEnergy, 0.05}, {Metric::kGoodput, 0.95}});
  const auto energy_heavy = SolveWeightedSum(
      models, space, {{Metric::kEnergy, 0.95}, {Metric::kGoodput, 0.05}});
  ASSERT_TRUE(goodput_heavy.has_value());
  ASSERT_TRUE(energy_heavy.has_value());
  EXPECT_GE(goodput_heavy->prediction.max_goodput_kbps,
            energy_heavy->prediction.max_goodput_kbps);
  EXPECT_GE(energy_heavy->prediction.max_goodput_kbps, 0.0);
  EXPECT_LE(energy_heavy->prediction.energy_uj_per_bit,
            goodput_heavy->prediction.energy_uj_per_bit);
}

TEST(WeightedSum, InvalidWeightsRejected) {
  const models::ModelSet models;
  EXPECT_THROW(
      (void)SolveWeightedSum(models, SmallSpace(), {}),
      std::invalid_argument);
  EXPECT_THROW((void)SolveWeightedSum(models, SmallSpace(),
                                      {{Metric::kEnergy, -1.0}}),
               std::invalid_argument);
}

TEST(WeightedSum, FixedSnrHonoured) {
  const models::ModelSet models;
  const auto grey = SolveWeightedSum(models, SmallSpace(),
                                     {{Metric::kGoodput, 1.0}}, 6.0);
  const auto clear = SolveWeightedSum(models, SmallSpace(),
                                      {{Metric::kGoodput, 1.0}}, 25.0);
  ASSERT_TRUE(grey.has_value());
  ASSERT_TRUE(clear.has_value());
  EXPECT_LT(grey->prediction.max_goodput_kbps,
            clear->prediction.max_goodput_kbps);
}

}  // namespace
}  // namespace wsnlink::core::opt
