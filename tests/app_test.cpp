// Unit tests for the application layer: traffic generation and the sink.
#include <gtest/gtest.h>

#include "app/sink.h"
#include "app/traffic_gen.h"
#include "channel/channel.h"
#include "link/link_layer.h"
#include "mac/csma_mac.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace wsnlink::app {
namespace {

struct AppHarness {
  sim::Simulator simulator;
  channel::Channel channel;
  mac::CsmaMac mac;
  link::LinkLayer link;

  explicit AppHarness(std::uint64_t seed, double distance = 5.0)
      : channel(MakeChannel(distance), util::Rng(seed)),
        mac(simulator, channel, mac::MacParams{}, util::Rng(seed + 1)),
        link(simulator, mac, 30) {}

  static channel::ChannelConfig MakeChannel(double distance) {
    channel::ChannelConfig config;
    config.distance_m = distance;
    config.noise.burst_rate_hz = 0.0;
    return config;
  }
};

TEST(TrafficGenerator, GeneratesExactCountAtFixedInterval) {
  AppHarness h(300);
  TrafficParams params;
  params.pkt_interval = 50 * sim::kMillisecond;
  params.payload_bytes = 40;
  params.packet_count = 10;
  TrafficGenerator gen(h.simulator, h.link, params, util::Rng(1));
  gen.Start();
  h.simulator.Run();

  EXPECT_EQ(gen.Generated(), 10);
  EXPECT_TRUE(gen.Done());
  const auto& packets = h.link.Log().Packets();
  ASSERT_EQ(packets.size(), 10u);
  // Arrivals exactly 50 ms apart.
  for (std::size_t i = 1; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].arrived_at - packets[i - 1].arrived_at,
              50 * sim::kMillisecond);
  }
  // Sequential ids from 1.
  EXPECT_EQ(packets.front().id, gen.FirstPacketId());
  EXPECT_EQ(packets.back().id, 10u);
}

TEST(TrafficGenerator, PoissonArrivalsHaveExponentialGaps) {
  AppHarness h(301);
  TrafficParams params;
  params.pkt_interval = 20 * sim::kMillisecond;
  params.payload_bytes = 10;
  params.packet_count = 2000;
  params.poisson = true;
  TrafficGenerator gen(h.simulator, h.link, params, util::Rng(2));
  gen.Start();
  h.simulator.Run();

  const auto& packets = h.link.Log().Packets();
  util::RunningStats gaps;
  for (std::size_t i = 1; i < packets.size(); ++i) {
    gaps.Add(sim::ToMilliseconds(packets[i].arrived_at -
                                 packets[i - 1].arrived_at));
  }
  EXPECT_NEAR(gaps.Mean(), 20.0, 1.5);
  // Exponential: stddev ~ mean (deterministic would be 0).
  EXPECT_GT(gaps.StdDev(), 12.0);
}

TEST(TrafficGenerator, InvalidParamsRejected) {
  AppHarness h(302);
  TrafficParams bad;
  bad.pkt_interval = 0;
  EXPECT_THROW(TrafficGenerator(h.simulator, h.link, bad, util::Rng(1)),
               std::invalid_argument);
  TrafficParams bad2;
  bad2.packet_count = 0;
  EXPECT_THROW(TrafficGenerator(h.simulator, h.link, bad2, util::Rng(1)),
               std::invalid_argument);
  TrafficParams bad3;
  bad3.payload_bytes = 200;
  EXPECT_THROW(TrafficGenerator(h.simulator, h.link, bad3, util::Rng(1)),
               std::invalid_argument);
}

TEST(PacketSink, CountsUniqueAndDuplicates) {
  PacketSink sink;
  mac::DeliveryInfo info;
  info.packet_id = 1;
  info.payload_bytes = 50;
  info.received_at = 1000;
  info.rssi_dbm = -70.0;
  info.snr_db = 25.0;
  info.lqi = 105;
  sink.OnDelivery(info);
  sink.OnDelivery(info);  // duplicate copy
  info.packet_id = 2;
  info.received_at = 2000;
  sink.OnDelivery(info);

  EXPECT_EQ(sink.UniqueCount(), 2u);
  EXPECT_EQ(sink.DuplicateCount(), 1u);
  EXPECT_EQ(sink.UniquePayloadBytes(), 100u);
  EXPECT_EQ(sink.LastDeliveryAt(), 2000);
  ASSERT_EQ(sink.Receptions().size(), 3u);
  EXPECT_FALSE(sink.Receptions()[0].duplicate);
  EXPECT_TRUE(sink.Receptions()[1].duplicate);
  EXPECT_EQ(sink.RssiStats().Count(), 3u);
  EXPECT_NEAR(sink.SnrStats().Mean(), 25.0, 1e-12);
}

TEST(PacketSink, EndToEndWithLink) {
  AppHarness h(303);
  PacketSink sink;
  h.link.SetDeliveryCallback(
      [&sink](const mac::DeliveryInfo& info) { sink.OnDelivery(info); });
  TrafficParams params;
  params.pkt_interval = 30 * sim::kMillisecond;
  params.payload_bytes = 60;
  params.packet_count = 100;
  TrafficGenerator gen(h.simulator, h.link, params, util::Rng(3));
  gen.Start();
  h.simulator.Run();

  // Strong link: everything arrives exactly once.
  EXPECT_EQ(sink.UniqueCount(), 100u);
  EXPECT_EQ(sink.UniquePayloadBytes(), 6000u);
  EXPECT_GT(sink.LqiStats().Mean(), 100.0);
}

}  // namespace
}  // namespace wsnlink::app
