// Property-based tests: structural invariants that must hold for ANY
// configuration, checked over a deterministic sample of the Table I space
// plus adversarial (failure-injection) scenarios.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/models/model_set.h"
#include "core/opt/config_space.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "phy/cc2420.h"
#include "phy/frame.h"

namespace wsnlink {
namespace {

/// Indices into the Table I space, spread across all dimensions (the space
/// is row-major with payload fastest, distance slowest).
class ConfigSpaceSample : public ::testing::TestWithParam<std::size_t> {};

node::SimulationOptions OptionsFor(std::size_t index) {
  const auto space = core::opt::ConfigSpace::PaperTableI();
  node::SimulationOptions options;
  options.config = space.At(index % space.Size());
  options.seed = 0xABCD + index;
  options.packet_count = 120;
  return options;
}

TEST_P(ConfigSpaceSample, PacketConservation) {
  const auto options = OptionsFor(GetParam());
  const auto result = node::RunLinkSimulation(options);

  std::size_t drops = 0;
  std::size_t served_delivered = 0;
  std::size_t served_lost = 0;
  for (const auto& p : result.log.Packets()) {
    if (p.dropped_at_queue) {
      ++drops;
    } else if (p.delivered) {
      ++served_delivered;
    } else {
      ++served_lost;
    }
  }
  EXPECT_EQ(result.log.Packets().size(),
            static_cast<std::size_t>(result.generated));
  EXPECT_EQ(drops + served_delivered + served_lost,
            static_cast<std::size_t>(result.generated));
  EXPECT_EQ(served_delivered, result.unique_delivered);
}

TEST_P(ConfigSpaceSample, TimestampsAreOrdered) {
  const auto options = OptionsFor(GetParam());
  const auto result = node::RunLinkSimulation(options);
  for (const auto& p : result.log.Packets()) {
    if (p.dropped_at_queue) {
      EXPECT_EQ(p.service_start, link::kNever);
      EXPECT_EQ(p.completed_at, link::kNever);
      EXPECT_EQ(p.tries, 0);
      continue;
    }
    EXPECT_GE(p.service_start, p.arrived_at);
    EXPECT_GT(p.completed_at, p.service_start);
    if (p.first_delivered_at != link::kNever) {
      EXPECT_GT(p.first_delivered_at, p.service_start);
      EXPECT_LE(p.first_delivered_at, p.completed_at);
    } else {
      EXPECT_FALSE(p.delivered);
    }
  }
}

TEST_P(ConfigSpaceSample, TriesWithinBudget) {
  const auto options = OptionsFor(GetParam());
  const auto result = node::RunLinkSimulation(options);
  for (const auto& p : result.log.Packets()) {
    if (p.dropped_at_queue) continue;
    EXPECT_GE(p.tries, 1);
    EXPECT_LE(p.tries, options.config.max_tries);
    // An acked packet cannot have been dropped or undelivered.
    if (p.acked) {
      EXPECT_TRUE(p.delivered);
    }
  }
}

TEST_P(ConfigSpaceSample, EnergyMatchesAttemptAccounting) {
  const auto options = OptionsFor(GetParam());
  const auto result = node::RunLinkSimulation(options);

  // Packet energy equals tries * per-attempt frame energy (CSMA: one frame
  // per try; CCA-exhausted tries radiate nothing, so energy can only be
  // lower, never higher).
  const double per_attempt =
      phy::EnergyPerBitMicrojoule(options.config.pa_level) * 8.0 *
      static_cast<double>(phy::DataFrameBytes(options.config.payload_bytes));
  for (const auto& p : result.log.Packets()) {
    EXPECT_LE(p.tx_energy_uj, p.tries * per_attempt + 1e-9);
    if (result.cca_busy == 0) {
      EXPECT_NEAR(p.tx_energy_uj, p.tries * per_attempt, 1e-9);
    }
  }
}

TEST_P(ConfigSpaceSample, QueueDepthBounded) {
  const auto options = OptionsFor(GetParam());
  const auto result = node::RunLinkSimulation(options);
  for (const auto& p : result.log.Packets()) {
    EXPECT_GE(p.queue_depth_at_arrival, 0);
    EXPECT_LE(p.queue_depth_at_arrival, options.config.queue_capacity);
    if (p.dropped_at_queue) {
      EXPECT_EQ(p.queue_depth_at_arrival, options.config.queue_capacity);
    }
  }
}

TEST_P(ConfigSpaceSample, MetricsWithinRanges) {
  const auto options = OptionsFor(GetParam());
  const auto m = metrics::MeasureConfig(options);
  EXPECT_GE(m.per, 0.0);
  EXPECT_LE(m.per, 1.0);
  for (const double rate : {m.plr_queue, m.plr_radio, m.plr_total}) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_GE(m.goodput_kbps, 0.0);
  EXPECT_LT(m.goodput_kbps, 250.0);  // cannot exceed the PHY rate
  EXPECT_GE(m.mean_queue_wait_ms, 0.0);
  if (m.delivered_unique > 0) {
    EXPECT_GT(m.energy_uj_per_bit, 0.0);
    EXPECT_GE(m.p99_delay_ms, 0.0);
  }
}

TEST_P(ConfigSpaceSample, DeterministicRerun) {
  const auto options = OptionsFor(GetParam());
  const auto a = metrics::MeasureConfig(options);
  const auto b = metrics::MeasureConfig(options);
  EXPECT_DOUBLE_EQ(a.goodput_kbps, b.goodput_kbps);
  EXPECT_DOUBLE_EQ(a.energy_uj_per_bit, b.energy_uj_per_bit);
  EXPECT_DOUBLE_EQ(a.mean_delay_ms, b.mean_delay_ms);
  EXPECT_EQ(a.delivered_unique, b.delivered_unique);
}

TEST_P(ConfigSpaceSample, ModelPredictionsAreFiniteAndConsistent) {
  const auto options = OptionsFor(GetParam());
  const core::models::ModelSet models;
  const auto p = models.Predict(options.config);
  EXPECT_GE(p.per, 0.0);
  EXPECT_LE(p.per, 1.0);
  EXPECT_GE(p.plr_radio, 0.0);
  EXPECT_LE(p.plr_radio, 1.0);
  EXPECT_GT(p.service_time_ms, 0.0);
  EXPECT_TRUE(std::isfinite(p.service_time_ms));
  EXPECT_GE(p.mean_tries, 1.0);
  EXPECT_LE(p.mean_tries, static_cast<double>(options.config.max_tries));
  EXPECT_GE(p.max_goodput_kbps, 0.0);
  EXPECT_GE(p.total_delay_ms, p.service_time_ms - 1e-9);
  // Energy may be +inf on dead links but never negative or NaN.
  EXPECT_FALSE(std::isnan(p.energy_uj_per_bit));
  EXPECT_GE(p.energy_uj_per_bit, 0.0);
}

// Spread 16 indices across the 48384-point space (coprime stride).
INSTANTIATE_TEST_SUITE_P(
    TableISample, ConfigSpaceSample,
    ::testing::Values(0, 3023, 6046, 9069, 12092, 15115, 18138, 21161, 24184,
                      27207, 30230, 33253, 36276, 39299, 42322, 48383),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return "idx" + std::to_string(info.param);
    });

// ------------------------------------------------- failure injection ----

TEST(FailureInjection, NearJammedChannelStillTerminates) {
  node::SimulationOptions options;
  options.config.distance_m = 10.0;
  options.config.max_tries = 8;
  options.config.queue_capacity = 30;
  options.config.pkt_interval_ms = 20.0;
  options.config.payload_bytes = 110;
  options.packet_count = 200;
  options.seed = 77;
  options.interferer_duty_cycle = 0.9;  // near-continuous jamming
  options.interferer_power_dbm = -40.0;

  const auto result = node::RunLinkSimulation(options);
  const auto m = metrics::ComputeMetrics(result, 20.0);
  // Every packet resolved; loss enormous but bounded and accounted.
  EXPECT_EQ(result.log.Packets().size(), 200u);
  EXPECT_GT(m.plr_total, 0.5);
  EXPECT_LE(m.plr_total, 1.0);
  // CCA deferral must have triggered massively.
  EXPECT_GT(result.cca_busy, 500u);
}

TEST(FailureInjection, DeadLinkDrainsQueueCompletely) {
  node::SimulationOptions options;
  options.config.distance_m = 35.0;
  options.config.pa_level = 3;  // below sensitivity
  options.config.max_tries = 8;
  options.config.queue_capacity = 30;
  options.config.pkt_interval_ms = 10.0;
  options.config.payload_bytes = 114;
  options.packet_count = 300;
  options.seed = 78;
  options.disable_temporal_shadowing = true;

  const auto result = node::RunLinkSimulation(options);
  EXPECT_EQ(result.unique_delivered, 0u);
  for (const auto& p : result.log.Packets()) {
    if (!p.dropped_at_queue) {
      EXPECT_NE(p.completed_at, link::kNever);  // nothing left in flight
    }
  }
}

TEST(FailureInjection, BurstArrivalsIntoTinyQueue) {
  // 1 ms arrivals into Qmax=1 on a slow link: almost everything drops at
  // the queue, yet metrics stay consistent.
  node::SimulationOptions options;
  options.config.distance_m = 20.0;
  options.config.max_tries = 3;
  options.config.queue_capacity = 1;
  options.config.pkt_interval_ms = 1.0;
  options.config.payload_bytes = 114;
  options.packet_count = 500;
  options.seed = 79;

  const auto m = metrics::MeasureConfig(options);
  EXPECT_GT(m.plr_queue, 0.8);
  EXPECT_NEAR(1.0 - (1.0 - m.plr_queue) * (1.0 - m.plr_radio), m.plr_total,
              1e-9);
}

TEST(FailureInjection, ExtremePayloadsAcrossAllPowers) {
  // Smallest and largest payload at every PA level: no crashes, sane logs.
  for (const int payload : {1, phy::kMaxPayloadBytes}) {
    for (const auto& entry : phy::PaLevels()) {
      node::SimulationOptions options;
      options.config.distance_m = 30.0;
      options.config.pa_level = entry.level;
      options.config.payload_bytes = payload;
      options.config.pkt_interval_ms = 50.0;
      options.packet_count = 40;
      options.seed = 80 + payload + entry.level;
      const auto result = node::RunLinkSimulation(options);
      EXPECT_EQ(result.log.Packets().size(), 40u)
          << "payload=" << payload << " level=" << entry.level;
    }
  }
}

TEST(FailureInjection, LplUnderJammingTerminates) {
  node::SimulationOptions options;
  options.mac = node::MacKind::kLpl;
  options.lpl_wakeup_interval_ms = 100.0;
  options.config.distance_m = 10.0;
  options.config.max_tries = 2;
  options.config.queue_capacity = 3;
  options.config.pkt_interval_ms = 300.0;
  options.config.payload_bytes = 60;
  options.packet_count = 50;
  options.seed = 81;
  options.interferer_duty_cycle = 0.8;
  options.interferer_power_dbm = -40.0;

  const auto result = node::RunLinkSimulation(options);
  EXPECT_EQ(result.log.Packets().size(), 50u);
  const auto m = metrics::ComputeMetrics(result, 300.0);
  EXPECT_GT(m.plr_total, 0.3);
}

}  // namespace
}  // namespace wsnlink
