// Multi-node network simulation tests.
//
// The refactor's load-bearing promise is that RunLinkSimulation is the N=1
// special case of RunNetworkSimulation, bit for bit — the first two tests
// pin that for both MACs down to per-packet logs, counters and traced
// event streams. The rest exercise what only N>1 can show: emergent
// carrier-sense pressure and collisions without any synthetic interferer,
// monotone degradation in contender count, per-node counter bookkeeping,
// and thread-count invariance of the contention sweep.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/contention.h"
#include "node/link_simulation.h"
#include "node/network_simulation.h"
#include "trace/trace.h"

namespace wsnlink {
namespace {

node::SimulationOptions BaseOptions() {
  node::SimulationOptions options;
  options.config.distance_m = 20.0;
  options.config.pa_level = 19;
  options.config.max_tries = 3;
  options.config.queue_capacity = 5;
  options.config.pkt_interval_ms = 25.0;
  options.config.payload_bytes = 110;
  options.seed = 1234;
  options.packet_count = 300;
  return options;
}

std::uint64_t CounterValue(const std::vector<trace::CounterSample>& samples,
                           const std::string& name) {
  for (const auto& s : samples) {
    if (s.name == name) return s.value;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

void ExpectResultsIdentical(const node::SimulationResult& a,
                            const node::SimulationResult& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.unique_delivered, b.unique_delivered);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.unique_payload_bytes, b.unique_payload_bytes);
  EXPECT_EQ(a.last_delivery_at, b.last_delivery_at);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.cca_busy, b.cca_busy);
  EXPECT_EQ(a.receiver_idle_duty, b.receiver_idle_duty);
  // Bit-exact double comparison is intentional: same seed, same order of
  // operations, any divergence is an equivalence bug.
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db);
  ASSERT_EQ(a.rssi_stats.Count(), b.rssi_stats.Count());
  if (a.rssi_stats.Count() > 0) {
    EXPECT_EQ(a.rssi_stats.Mean(), b.rssi_stats.Mean());
    EXPECT_EQ(a.snr_stats.Mean(), b.snr_stats.Mean());
    EXPECT_EQ(a.lqi_stats.Mean(), b.lqi_stats.Mean());
  }
  EXPECT_EQ(a.counters, b.counters);

  ASSERT_EQ(a.log.Packets().size(), b.log.Packets().size());
  for (std::size_t i = 0; i < a.log.Packets().size(); ++i) {
    const auto& pa = a.log.Packets()[i];
    const auto& pb = b.log.Packets()[i];
    EXPECT_EQ(pa.id, pb.id) << "packet " << i;
    EXPECT_EQ(pa.arrived_at, pb.arrived_at) << "packet " << i;
    EXPECT_EQ(pa.dropped_at_queue, pb.dropped_at_queue) << "packet " << i;
    EXPECT_EQ(pa.service_start, pb.service_start) << "packet " << i;
    EXPECT_EQ(pa.completed_at, pb.completed_at) << "packet " << i;
    EXPECT_EQ(pa.acked, pb.acked) << "packet " << i;
    EXPECT_EQ(pa.delivered, pb.delivered) << "packet " << i;
    EXPECT_EQ(pa.tries, pb.tries) << "packet " << i;
    EXPECT_EQ(pa.tx_energy_uj, pb.tx_energy_uj) << "packet " << i;
    EXPECT_EQ(pa.listen_time, pb.listen_time) << "packet " << i;
    EXPECT_EQ(pa.first_delivered_at, pb.first_delivered_at) << "packet " << i;
    EXPECT_EQ(pa.rssi_dbm, pb.rssi_dbm) << "packet " << i;
  }
  ASSERT_EQ(a.log.Attempts().size(), b.log.Attempts().size());
  for (std::size_t i = 0; i < a.log.Attempts().size(); ++i) {
    const auto& aa = a.log.Attempts()[i];
    const auto& ab = b.log.Attempts()[i];
    EXPECT_EQ(aa.packet_id, ab.packet_id) << "attempt " << i;
    EXPECT_EQ(aa.attempt, ab.attempt) << "attempt " << i;
    EXPECT_EQ(aa.at, ab.at) << "attempt " << i;
    EXPECT_EQ(aa.data_received, ab.data_received) << "attempt " << i;
    EXPECT_EQ(aa.acked, ab.acked) << "attempt " << i;
    EXPECT_EQ(aa.snr_db, ab.snr_db) << "attempt " << i;
  }
}

// --- N=1 equivalence --------------------------------------------------

TEST(NetworkSimulation, SingleNodeMatchesLinkSimulationCsma) {
  const auto options = BaseOptions();
  trace::Tracer link_tracer;
  trace::Tracer network_tracer;

  auto link_options = options;
  link_options.tracer = &link_tracer;
  const auto link = node::RunLinkSimulation(link_options);

  auto network_base = options;
  network_base.tracer = &network_tracer;
  auto network = node::RunNetworkSimulation(
      node::SingleLinkNetwork(network_base));
  ASSERT_EQ(network.nodes.size(), 1u);
  EXPECT_FALSE(network.medium_active);
  EXPECT_EQ(network.medium.frames, 0u);
  EXPECT_EQ(network.end_time, link.end_time);
  EXPECT_EQ(network.events_executed, link.events_executed);
  EXPECT_EQ(network.generated, static_cast<std::uint64_t>(link.generated));
  EXPECT_EQ(network.delivered_unique, link.unique_delivered);
  EXPECT_EQ(network.cca_busy, link.cca_busy);

  const auto collapsed = node::CollapseToSingleLink(std::move(network));
  ExpectResultsIdentical(link, collapsed);

  // The traced event streams must be identical too (including the node
  // stamp: every single-link event belongs to node 0).
  const auto link_events = link_tracer.Events();
  const auto network_events = network_tracer.Events();
  EXPECT_EQ(link_events, network_events);
  for (const auto& e : network_events) EXPECT_EQ(e.node, 0);
}

TEST(NetworkSimulation, SingleNodeMatchesLinkSimulationLpl) {
  auto options = BaseOptions();
  options.mac = node::MacKind::kLpl;
  options.lpl_wakeup_interval_ms = 50.0;
  options.config.pkt_interval_ms = 200.0;
  options.packet_count = 150;

  const auto link = node::RunLinkSimulation(options);
  auto network = node::RunNetworkSimulation(node::SingleLinkNetwork(options));
  ASSERT_EQ(network.nodes.size(), 1u);
  const auto collapsed = node::CollapseToSingleLink(std::move(network));
  ExpectResultsIdentical(link, collapsed);
}

// --- topology validation ----------------------------------------------

TEST(NetworkSimulation, RejectsEmptyTopology) {
  node::NetworkOptions options;
  options.base = BaseOptions();
  EXPECT_THROW(node::RunNetworkSimulation(options), std::invalid_argument);
}

TEST(NetworkSimulation, RejectsInvertedMobilityBounds) {
  auto options = BaseOptions();
  options.mobility_speed_mps = 1.0;
  options.mobility_min_m = 30.0;
  options.mobility_max_m = 10.0;  // min >= max
  EXPECT_THROW(node::RunLinkSimulation(options), std::invalid_argument);
  EXPECT_THROW(
      node::RunNetworkSimulation(node::SingleLinkNetwork(options)),
      std::invalid_argument);
}

TEST(NetworkSimulation, RejectsStartDistanceOutsidePatrolRange) {
  auto options = BaseOptions();
  options.mobility_speed_mps = 1.0;
  options.mobility_min_m = 25.0;
  options.mobility_max_m = 35.0;
  options.config.distance_m = 20.0;  // outside [25, 35]
  EXPECT_THROW(node::RunLinkSimulation(options), std::invalid_argument);
}

TEST(NetworkSimulation, RejectsNonPositivePacketCountOverride) {
  auto base = BaseOptions();
  auto options = node::SingleLinkNetwork(base);
  options.nodes[0].packet_count = -3;
  EXPECT_THROW(node::RunNetworkSimulation(options), std::invalid_argument);
}

// --- emergent contention ----------------------------------------------

node::SimulationOptions ContendedBase() {
  auto options = BaseOptions();
  // No ambient interference bursts and no synthetic interferer: every
  // carrier-sense hit and every collision below is emergent.
  options.disable_interference = true;
  options.interferer_duty_cycle = 0.0;
  return options;
}

TEST(NetworkSimulation, TwoSendersContendEmergently) {
  const auto base = ContendedBase();
  const auto solo =
      node::RunNetworkSimulation(node::UniformNetwork(base, {20.0}));
  const auto pair =
      node::RunNetworkSimulation(node::UniformNetwork(base, {20.0, 20.0}));

  EXPECT_FALSE(solo.medium_active);
  EXPECT_EQ(solo.cca_busy, 0u);

  EXPECT_TRUE(pair.medium_active);
  EXPECT_GT(pair.medium.frames, 0u);
  EXPECT_GT(pair.cca_busy, 0u) << "CCA never sensed the other sender";
  EXPECT_GT(pair.medium.collisions, 0u) << "no overlapping frames collided";
  EXPECT_GT(pair.per, solo.per)
      << "collisions should raise PER over the uncontended link";
}

TEST(NetworkSimulation, DegradationMonotoneInContenderCount) {
  const auto base = ContendedBase();
  std::vector<node::NetworkResult> ladder;
  for (const int n : {1, 2, 4}) {
    ladder.push_back(node::RunNetworkSimulation(
        node::UniformNetwork(base, std::vector<double>(n, 20.0))));
  }
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GE(ladder[i].per, ladder[i - 1].per) << "rung " << i;
    EXPECT_GE(ladder[i].queue_drops, ladder[i - 1].queue_drops)
        << "rung " << i;
    EXPECT_GE(ladder[i].plr_total, ladder[i - 1].plr_total) << "rung " << i;
  }
}

TEST(NetworkSimulation, PerNodeCounterInvariants) {
  auto base = ContendedBase();
  base.packet_count = 150;
  const auto result = node::RunNetworkSimulation(
      node::UniformNetwork(base, {15.0, 20.0, 25.0}));
  ASSERT_EQ(result.nodes.size(), 3u);

  std::uint64_t generated_sum = 0;
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    const auto& n = result.nodes[i];
    const auto generated = static_cast<std::uint64_t>(n.generated);
    generated_sum += generated;
    EXPECT_EQ(CounterValue(n.counters, "app.packets_generated"), generated)
        << "node " << i;
    EXPECT_EQ(CounterValue(n.counters, "link.accepted") +
                  CounterValue(n.counters, "link.queue_drops"),
              generated)
        << "node " << i;
    EXPECT_EQ(CounterValue(n.counters, "mac.cca_busy"), n.cca_busy)
        << "node " << i;
    EXPECT_EQ(CounterValue(n.counters, "app.rx_unique"), n.unique_delivered)
        << "node " << i;
  }

  // Aggregates: counter sums across nodes plus the medium.* samples.
  EXPECT_EQ(result.generated, generated_sum);
  EXPECT_EQ(CounterValue(result.aggregate_counters, "app.packets_generated"),
            generated_sum);
  EXPECT_EQ(CounterValue(result.aggregate_counters, "medium.frames"),
            result.medium.frames);
  EXPECT_EQ(CounterValue(result.aggregate_counters, "medium.collisions"),
            result.medium.collisions);
  EXPECT_GT(CounterValue(result.aggregate_counters, "sim.events_executed"),
            0u);
}

TEST(NetworkSimulation, LplSendersSenseSharedMedium) {
  auto base = ContendedBase();
  base.mac = node::MacKind::kLpl;
  base.lpl_wakeup_interval_ms = 50.0;
  base.config.pkt_interval_ms = 100.0;
  base.packet_count = 80;
  const auto pair =
      node::RunNetworkSimulation(node::UniformNetwork(base, {20.0, 20.0}));
  EXPECT_TRUE(pair.medium_active);
  EXPECT_GT(pair.cca_busy, 0u)
      << "LPL train carrier sense never saw the other sender";
}

TEST(NetworkSimulation, AblationSyntheticInterfererWithoutMedium) {
  auto base = ContendedBase();
  base.interferer_duty_cycle = 0.2;
  auto options = node::UniformNetwork(base, {20.0, 20.0});
  options.shared_medium = false;
  const auto result = node::RunNetworkSimulation(options);
  EXPECT_FALSE(result.medium_active);
  EXPECT_EQ(result.medium.collisions, 0u);
  EXPECT_GT(result.cca_busy, 0u)
      << "the synthetic interferer should still drive CCA busy";
}

// --- contention sweep --------------------------------------------------

TEST(Contention, SweepThreadCountInvariance) {
  experiment::ContentionOptions options;
  options.config.distance_m = 20.0;
  options.config.pkt_interval_ms = 25.0;
  options.node_counts = {1, 2, 3};
  options.base_seed = 77;
  options.packet_count = 120;

  auto serial = options;
  serial.threads = 1;
  auto wide = options;
  wide.threads = 8;
  const auto a = experiment::RunContentionSweep(serial);
  const auto b = experiment::RunContentionSweep(wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed) << "rung " << i;
    EXPECT_EQ(experiment::SerializeContentionRow(a[i]),
              experiment::SerializeContentionRow(b[i]))
        << "rung " << i;
    EXPECT_EQ(a[i].result.aggregate_counters, b[i].result.aggregate_counters)
        << "rung " << i;
  }
}

TEST(Contention, CsvRowMatchesHeaderArity) {
  experiment::ContentionOptions options;
  options.node_counts = {2};
  options.packet_count = 60;
  const auto points = experiment::RunContentionSweep(options);
  ASSERT_EQ(points.size(), 1u);
  const auto count_fields = [](const std::string& s) {
    std::size_t fields = 1;
    for (const char c : s) fields += c == ',';
    return fields;
  };
  EXPECT_EQ(count_fields(experiment::ContentionCsvHeader()),
            count_fields(experiment::SerializeContentionRow(points[0])));
}

TEST(Contention, RejectsBadLadders) {
  experiment::ContentionOptions empty;
  empty.node_counts = {};
  EXPECT_THROW(experiment::RunContentionSweep(empty), std::invalid_argument);

  experiment::ContentionOptions zero;
  zero.node_counts = {1, 0};
  EXPECT_THROW(experiment::RunContentionSweep(zero), std::invalid_argument);
}

}  // namespace
}  // namespace wsnlink
