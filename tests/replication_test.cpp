// Tests for the multi-seed replication harness.
#include <gtest/gtest.h>

#include "experiment/replication.h"

namespace wsnlink::experiment {
namespace {

node::SimulationOptions MidLink() {
  node::SimulationOptions options;
  options.config.distance_m = 30.0;
  options.config.pa_level = 15;
  options.config.max_tries = 3;
  options.config.queue_capacity = 10;
  options.config.pkt_interval_ms = 60.0;
  options.config.payload_bytes = 80;
  options.packet_count = 300;
  options.seed = 7;
  return options;
}

TEST(Replication, AggregatesAreSane) {
  const auto rep = MeasureReplicated(MidLink(), 8);
  EXPECT_EQ(rep.replicates, 8);
  EXPECT_GT(rep.goodput_kbps.mean, 0.0);
  EXPECT_GE(rep.goodput_kbps.stddev, 0.0);
  EXPECT_GT(rep.goodput_kbps.ci95_half_width, 0.0);
  // Half-width below the stddev for 8 replicates (1.96/sqrt(8) < 1).
  EXPECT_LT(rep.goodput_kbps.ci95_half_width, rep.goodput_kbps.stddev);
  EXPECT_GE(rep.plr_total.mean, 0.0);
  EXPECT_LE(rep.plr_total.mean, 1.0);
}

TEST(Replication, DeterministicInBaseSeed) {
  const auto a = MeasureReplicated(MidLink(), 5);
  const auto b = MeasureReplicated(MidLink(), 5);
  EXPECT_DOUBLE_EQ(a.goodput_kbps.mean, b.goodput_kbps.mean);
  EXPECT_DOUBLE_EQ(a.energy_uj_per_bit.stddev, b.energy_uj_per_bit.stddev);
}

TEST(Replication, ReplicatesActuallyVary) {
  // Different seeds must produce different realisations (nonzero spread on
  // a link with losses).
  auto options = MidLink();
  options.config.pa_level = 11;  // more stochastic
  const auto rep = MeasureReplicated(options, 6);
  EXPECT_GT(rep.per.stddev, 0.0);
}

TEST(Replication, MoreReplicatesShrinkTheInterval) {
  const auto few = MeasureReplicated(MidLink(), 4);
  const auto many = MeasureReplicated(MidLink(), 16);
  EXPECT_LT(many.goodput_kbps.ci95_half_width,
            few.goodput_kbps.ci95_half_width * 1.5);
}

TEST(Replication, SignificanceTestSemantics) {
  ReplicatedScalar high{10.0, 1.0, 0.5};
  ReplicatedScalar low{8.0, 1.0, 0.5};
  EXPECT_TRUE(SignificantlyGreater(high, low));
  EXPECT_FALSE(SignificantlyGreater(low, high));
  ReplicatedScalar overlapping{8.8, 1.0, 0.5};
  EXPECT_FALSE(SignificantlyGreater(overlapping, low));
}

TEST(Replication, CaseStudyDominanceIsSignificant) {
  // The Fig. 1 verdict with error bars: joint beats power-only beyond the
  // 95% intervals on the static case-study link.
  node::SimulationOptions joint;
  joint.config.distance_m = 35.0;
  joint.config.pa_level = 31;
  joint.config.max_tries = 8;
  joint.config.queue_capacity = 30;
  joint.config.pkt_interval_ms = 1.0;
  joint.config.payload_bytes = 100;
  // Saturating sender: only the served stream matters, so give it enough
  // arrivals for a few hundred served packets per replicate.
  joint.packet_count = 5000;
  joint.seed = 17;
  joint.spatial_shadow_db = -17.3;
  joint.disable_temporal_shadowing = true;

  auto power_only = joint;
  power_only.config.max_tries = 1;
  power_only.config.payload_bytes = 114;

  const auto rep_joint = MeasureReplicated(joint, 8);
  const auto rep_power = MeasureReplicated(power_only, 8);
  EXPECT_TRUE(SignificantlyGreater(rep_joint.goodput_kbps,
                                   rep_power.goodput_kbps));
  // On energy the two policies are close (Eq. 2 is N-independent); joint
  // must be at least non-inferior within the error bars.
  EXPECT_LE(rep_joint.energy_uj_per_bit.mean,
            rep_power.energy_uj_per_bit.mean +
                rep_power.energy_uj_per_bit.ci95_half_width);
}

TEST(Replication, InvalidReplicateCountRejected) {
  EXPECT_THROW((void)MeasureReplicated(MidLink(), 1), std::invalid_argument);
}

}  // namespace
}  // namespace wsnlink::experiment
