// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace wsnlink::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(FromMilliseconds(1.5), 1500);
  EXPECT_EQ(FromSeconds(2.0), 2'000'000);
  EXPECT_DOUBLE_EQ(ToMilliseconds(2500), 2.5);
  EXPECT_DOUBLE_EQ(ToSeconds(500'000), 0.5);
  EXPECT_EQ(FromMilliseconds(0.2235), 224);  // rounds to nearest us
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(Simulator, FifoStableForEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(10, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedSchedulingFromCallback) {
  Simulator sim;
  std::vector<Time> fire_times;
  sim.Schedule(5, [&] {
    fire_times.push_back(sim.Now());
    sim.Schedule(7, [&] { fire_times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(fire_times, (std::vector<Time>{5, 12}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(handle.Pending());
  handle.Cancel();
  EXPECT_FALSE(handle.Pending());
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.EventsExecuted(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int count = 0;
  auto handle = sim.Schedule(1, [&] { ++count; });
  sim.Run();
  EXPECT_FALSE(handle.Pending());
  handle.Cancel();  // must not crash or rewind anything
  EXPECT_EQ(count, 1);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<int> fired;
  sim.Schedule(10, [&] { fired.push_back(10); });
  sim.Schedule(20, [&] { fired.push_back(20); });
  sim.Schedule(30, [&] { fired.push_back(30); });
  const auto count = sim.RunUntil(20);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.Now(), 20);
  sim.Run();
  EXPECT_EQ(fired.back(), 30);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.Schedule(1, [&] { ++count; });
  sim.Schedule(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RejectsInvalidScheduling) {
  Simulator sim;
  EXPECT_THROW(sim.Schedule(-1, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.ScheduleAt(0, nullptr), std::invalid_argument);
  sim.Schedule(5, [] {});
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(1, [] {}), std::invalid_argument);
}

TEST(Simulator, ManyEventsCountTracked) {
  Simulator sim;
  for (int i = 0; i < 1000; ++i) sim.Schedule(i, [] {});
  EXPECT_EQ(sim.QueueSize(), 1000u);
  sim.Run();
  EXPECT_EQ(sim.EventsExecuted(), 1000u);
}

TEST(Simulator, CancelledHeadDoesNotBlockRunUntil) {
  Simulator sim;
  bool later_fired = false;
  auto handle = sim.Schedule(5, [] {});
  handle.Cancel();
  sim.Schedule(10, [&] { later_fired = true; });
  sim.RunUntil(10);
  EXPECT_TRUE(later_fired);
}

}  // namespace
}  // namespace wsnlink::sim
