// Locks the wsnstatic semantic analyzer (tools/wsnstatic) four ways:
//
//  1. Golden: analyzing the tests/static_fixtures corpus (bad + clean
//     files per rule family, plus marker abuse) must reproduce
//     expected.golden byte-for-byte — rule ids, line numbers, messages and
//     sort order are all load-bearing for the CI gate.
//  2. Clean tree: the real working tree must analyze finding-free; every
//     sanctioned exception is a justified wsnstatic marker, itself checked
//     for staleness.
//  3. Mutation: the seeded mutations from the acceptance criteria (drop a
//     snapshot field restore, add an upward include, call a banned API two
//     levels below a hot root) must each be detected — so CI goes red if
//     one lands in the tree.
//  4. Determinism: re-running the analyzer over the same inputs yields
//     byte-identical output (the golden compare is meaningful).
#include "checks.h"
#include "runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using analysis::FormatFindings;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool HasRule(const std::vector<analysis::Finding>& findings,
             const std::string& rule) {
  for (const analysis::Finding& finding : findings) {
    if (finding.rule == rule) return true;
  }
  return false;
}

TEST(Static, FixtureCorpusMatchesGolden) {
  wsnstatic::Options options;
  options.root = WSNLINK_STATIC_FIXTURES_DIR;
  const wsnstatic::RunResult result = wsnstatic::Run(options);
  const std::string expected =
      ReadFile(std::string(WSNLINK_STATIC_FIXTURES_DIR) + "/expected.golden");
  EXPECT_EQ(FormatFindings(result.findings), expected);
}

TEST(Static, RepoAnalyzesClean) {
  // The whole simulator tree must stay finding-free; every sanctioned
  // exception is a justified wsnstatic marker, which suppresses its
  // finding (and is itself checked for staleness).
  wsnstatic::Options options;
  options.root = WSNLINK_SOURCE_DIR;
  const wsnstatic::RunResult result = wsnstatic::Run(options);
  EXPECT_EQ(FormatFindings(result.findings), "");
  EXPECT_GT(result.files_scanned, 100);  // really scanned the tree
}

TEST(Static, RerunIsByteIdentical) {
  wsnstatic::Options options;
  options.root = WSNLINK_STATIC_FIXTURES_DIR;
  const wsnstatic::RunResult first = wsnstatic::Run(options);
  const wsnstatic::RunResult second = wsnstatic::Run(options);
  EXPECT_EQ(FormatFindings(first.findings), FormatFindings(second.findings));
  EXPECT_EQ(first.inventory, second.inventory);
}

TEST(Static, InventoryListsJustifiedMarkers) {
  wsnstatic::Options options;
  options.root = WSNLINK_SOURCE_DIR;
  const wsnstatic::RunResult result = wsnstatic::Run(options);
  // The live tree's sanctioned escapes must all surface in the artifact.
  EXPECT_NE(result.inventory.find("allow(lp-isolation)"), std::string::npos);
  EXPECT_NE(result.inventory.find("transient("), std::string::npos);
  EXPECT_NE(result.inventory.find("serdes("), std::string::npos);
}

// --- Mutation drills (in-process twins of the CI sed drills) -------------

TEST(Static, MutationDroppedRestoreIsDetected) {
  const std::string source = R"(
class Engine {
 public:
  struct State { int ticks; int credits; };
  void SaveState(State& out) const {
    out.ticks = ticks_;
    out.credits = credits_;
  }
  void RestoreState(const State& state) {
    ticks_ = state.ticks;
  }
 private:
  int ticks_ = 0;
  int credits_ = 0;
};
)";
  const wsnstatic::RunResult result =
      wsnstatic::Check({{"src/sim/engine.h", source}});
  EXPECT_TRUE(HasRule(result.findings, "snapshot-complete"));
}

TEST(Static, MutationUpwardIncludeIsDetected) {
  const std::string source = "#include \"experiment/sweep.h\"\n";
  const wsnstatic::RunResult result =
      wsnstatic::Check({{"src/channel/medium.cpp", source}});
  EXPECT_TRUE(HasRule(result.findings, "layer-dag"));
}

TEST(Static, MutationAllocTwoLevelsBelowHotRootIsDetected) {
  // root (hot) -> Middle() -> Leaf() -> malloc: the violation is two
  // translation units away from the wsnlint:hot-path marker.
  const std::string root = R"(
// wsnlint:hot-path
int Middle(int);
int Run(int n) { return Middle(n); }
)";
  const std::string middle = R"(
int Leaf(int);
int Middle(int n) { return Leaf(n); }
)";
  const std::string leaf = R"(
#include <cstdlib>
int Leaf(int n) { return static_cast<char*>(std::malloc(n))[0]; }
)";
  const wsnstatic::RunResult result =
      wsnstatic::Check({{"src/experiment/root.cpp", root},
                        {"src/util/middle.cpp", middle},
                        {"src/util/leaf.cpp", leaf}});
  EXPECT_TRUE(HasRule(result.findings, "hot-path-transitive"));
}

TEST(Static, MutationSharedStaticBelowLpRootIsDetected) {
  const std::string root = "#include \"util/shared.h\"\n";
  const std::string header = "int Bump();\n";
  const std::string impl = R"(
#include "util/shared.h"
int Bump() {
  static int hits = 0;
  return ++hits;
}
)";
  const wsnstatic::RunResult result =
      wsnstatic::Check({{"src/node/timewarp.cpp", root},
                        {"src/util/shared.h", header},
                        {"src/util/shared.cpp", impl}});
  EXPECT_TRUE(HasRule(result.findings, "lp-isolation"));
}

// --- Scanner regressions -------------------------------------------------

TEST(Static, PrefixedRawStringsAreNotCode) {
  // u8R/uR/UR/LR prefixed raw strings hid banned tokens from earlier
  // scanners that only recognised the bare R prefix. serve/ files are LP
  // roots, so a misread would surface as an lp-isolation finding.
  const std::string source = R"outer(
const char* a = u8R"(
static int fake = 0;
)";
const wchar_t* b = LR"(
thread_local int spook = 1;
)";
)outer";
  const wsnstatic::RunResult result =
      wsnstatic::Check({{"src/serve/text.cpp", source}});
  EXPECT_EQ(FormatFindings(result.findings), "");
}

TEST(Static, StaleTransientIsDetected) {
  // A transient marker on a member that round-trips is itself a finding —
  // escapes cannot rot in place once the member is properly saved.
  const std::string source = R"(
class Engine {
 public:
  struct State { int ticks; };
  void SaveState(State& out) const { out.ticks = ticks_; }
  void RestoreState(const State& state) { ticks_ = state.ticks; }
 private:
  // wsnstatic:transient(ticks_): pretend this was once unsaved
  int ticks_ = 0;
};
)";
  const wsnstatic::RunResult result =
      wsnstatic::Check({{"src/sim/engine.h", source}});
  EXPECT_TRUE(HasRule(result.findings, "marker-directive"));
}

TEST(Static, ListRulesCoversEveryFamily) {
  std::vector<std::string> ids;
  for (const wsnstatic::RuleInfo& rule : wsnstatic::Rules()) {
    ids.push_back(rule.id);
  }
  for (const char* expected : {"snapshot-complete", "serdes-complete",
                               "hot-path-transitive", "lp-isolation",
                               "layer-dag"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << "missing rule " << expected;
  }
}

}  // namespace
