// Tests for the counterfactual trace analysis.
#include <gtest/gtest.h>

#include "channel/ber.h"
#include "metrics/link_metrics.h"
#include "metrics/what_if.h"
#include "node/link_simulation.h"
#include "phy/frame.h"

namespace wsnlink::metrics {
namespace {

node::SimulationOptions TraceRun(int payload, std::uint64_t seed) {
  node::SimulationOptions options;
  options.config.distance_m = 35.0;
  options.config.pa_level = 11;  // medium grey zone
  options.config.max_tries = 1;
  options.config.queue_capacity = 1;
  options.config.pkt_interval_ms = 40.0;
  options.config.payload_bytes = payload;
  options.packet_count = 1500;
  options.seed = seed;
  return options;
}

TEST(WhatIf, SelfConsistentAtOwnPayload) {
  // The counterfactual PER for the run's own payload must match what the
  // run actually measured.
  const auto options = TraceRun(80, 11);
  const auto result = node::RunLinkSimulation(options);
  const auto measured = ComputeMetrics(result, 40.0);

  const channel::CalibratedExponentialBer ber;
  const double predicted =
      CounterfactualPer(result.log.Attempts(), ber, 80);
  EXPECT_NEAR(predicted, measured.per, 0.05);
}

TEST(WhatIf, PredictsOtherPayloadsRuns) {
  // A counterfactual for payload B computed on payload A's trace must land
  // near what an actual run with payload B measures on the same link.
  const auto trace_run = node::RunLinkSimulation(TraceRun(40, 12));
  const channel::CalibratedExponentialBer ber;
  const double predicted_110 =
      CounterfactualPer(trace_run.log.Attempts(), ber, 110);

  const auto actual_110 = node::RunLinkSimulation(TraceRun(110, 13));
  const auto measured_110 = ComputeMetrics(actual_110, 40.0);
  EXPECT_NEAR(predicted_110, measured_110.per, 0.07);
}

TEST(WhatIf, PerMonotoneInPayload) {
  const auto result = node::RunLinkSimulation(TraceRun(60, 14));
  const channel::CalibratedExponentialBer ber;
  double prev = -1.0;
  for (const int payload : {5, 20, 50, 80, 110}) {
    const double per = CounterfactualPer(result.log.Attempts(), ber, payload);
    EXPECT_GT(per, prev);
    prev = per;
  }
}

TEST(WhatIf, GoodputCurveHasInteriorStructure) {
  const auto result = node::RunLinkSimulation(TraceRun(60, 15));
  const channel::CalibratedExponentialBer ber;
  const std::vector<int> payloads{5, 20, 40, 60, 80, 100, 114};
  const auto what_if =
      PayloadWhatIf(result.log.Attempts(), ber, payloads, 1);
  ASSERT_EQ(what_if.size(), payloads.size());
  // Tiny payloads are overhead-dominated: goodput must rise from 5 B.
  EXPECT_GT(what_if[2].max_goodput_kbps, what_if[0].max_goodput_kbps);
  for (const auto& r : what_if) {
    EXPECT_GE(r.per, 0.0);
    EXPECT_LE(r.per, 1.0);
    EXPECT_GE(r.max_goodput_kbps, 0.0);
  }
}

TEST(WhatIf, RetransmissionsShiftBestPayloadUp) {
  const auto result = node::RunLinkSimulation(TraceRun(60, 16));
  const channel::CalibratedExponentialBer ber;
  const int best_n1 = BestPayloadOnTrace(result.log.Attempts(), ber, 1);
  const int best_n8 = BestPayloadOnTrace(result.log.Attempts(), ber, 8);
  EXPECT_GE(best_n8, best_n1);
  EXPECT_GE(best_n1, 1);
  EXPECT_LE(best_n8, phy::kMaxPayloadBytes);
}

TEST(WhatIf, InvalidInputsRejected) {
  const channel::CalibratedExponentialBer ber;
  std::vector<link::AttemptRecord> empty;
  EXPECT_THROW((void)CounterfactualPer(empty, ber, 50),
               std::invalid_argument);
  std::vector<link::AttemptRecord> one(1);
  EXPECT_THROW((void)CounterfactualPer(one, ber, 0), std::invalid_argument);
  const std::vector<int> payloads{50};
  EXPECT_THROW((void)PayloadWhatIf(one, ber, payloads, 0),
               std::invalid_argument);
  EXPECT_THROW((void)PayloadWhatIf(one, ber, payloads, 1, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace wsnlink::metrics
