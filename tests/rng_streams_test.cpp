// Stream-discipline tests for the deterministic RNG layer.
//
// The sweep executor's determinism guarantee rests on three properties of
// util::Rng and experiment::SweepSeed:
//  * re-seeding reproduces the exact sequence (same seed -> same bits);
//  * Derive() yields streams that depend only on (seed lineage, stream id)
//    — not on how much the parent has been consumed — and distinct ids
//    give unrelated streams;
//  * SweepSeed(base, i) is injective enough that no two runs of a sweep
//    share a seed.
// If any of these break, runs stop being independent and the bit-exact
// cross-thread invariance tests start failing for confusing reasons; this
// file makes the root cause fail loudly instead.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "core/opt/config_space.h"
#include "experiment/sweep.h"
#include "util/rng.h"

namespace wsnlink {
namespace {

using util::Rng;

std::vector<std::uint64_t> Draw(Rng rng, std::size_t count) {
  std::vector<std::uint64_t> values(count);
  for (auto& v : values) v = rng();
  return values;
}

TEST(RngStreams, SameSeedReproducesExactSequence) {
  EXPECT_EQ(Draw(Rng(123), 256), Draw(Rng(123), 256));
  EXPECT_NE(Draw(Rng(123), 256), Draw(Rng(124), 256));
}

TEST(RngStreams, DeriveIsIndependentOfParentConsumption) {
  Rng fresh(555);
  const auto before = Draw(fresh.Derive("channel"), 64);

  Rng consumed(555);
  for (int i = 0; i < 10000; ++i) (void)consumed();
  const auto after = Draw(consumed.Derive("channel"), 64);

  // Derive depends on the seed lineage only, so draining the parent must
  // not shift its children.
  EXPECT_EQ(before, after);
}

TEST(RngStreams, DistinctStreamIdsGiveUnrelatedStreams) {
  const Rng root(2015);
  const auto a = Draw(root.Derive("mac"), 512);
  const auto b = Draw(root.Derive("channel"), 512);
  const auto c = Draw(root.Derive(42), 512);

  // No aligned collisions beyond chance (expected ~0 for 64-bit values).
  std::size_t collisions = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    collisions += static_cast<std::size_t>(a[i] == b[i]);
    collisions += static_cast<std::size_t>(a[i] == c[i]);
  }
  EXPECT_EQ(collisions, 0u);

  // Nor is one stream a shifted copy of another (the classic correlated-
  // substream failure): check every offset within a small window.
  for (std::size_t offset = 1; offset < 16; ++offset) {
    std::size_t matches = 0;
    for (std::size_t i = 0; i + offset < a.size(); ++i) {
      matches += static_cast<std::size_t>(a[i + offset] == b[i]);
    }
    EXPECT_EQ(matches, 0u) << "offset " << offset;
  }
}

TEST(RngStreams, DeriveChainIsReproducible) {
  const Rng root(77);
  const auto a = Draw(root.Derive("node").Derive("phy").Derive(3), 64);
  const auto b = Draw(root.Derive("node").Derive("phy").Derive(3), 64);
  EXPECT_EQ(a, b);
  // Sibling at the last level differs.
  const auto c = Draw(root.Derive("node").Derive("phy").Derive(4), 64);
  EXPECT_NE(a, c);
}

TEST(RngStreams, DistributionHelpersStayInRange) {
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto n = rng.UniformInt(-3, 7);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 7);
    EXPECT_GT(rng.Exponential(2.5), 0.0);
  }
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
  Rng coin(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(coin.Bernoulli(0.0));
    EXPECT_TRUE(coin.Bernoulli(1.0));
  }
}

TEST(RngStreams, SweepSeedsAreDistinctAcrossRunsAndBases) {
  std::set<std::uint64_t> seeds;
  const std::uint64_t bases[] = {0, 1, 77, 20150629};
  constexpr std::size_t kRunsPerBase = 20000;
  for (const auto base : bases) {
    for (std::size_t i = 0; i < kRunsPerBase; ++i) {
      seeds.insert(experiment::SweepSeed(base, i));
    }
  }
  // Any collision here means two sweep runs would share RNG streams.
  EXPECT_EQ(seeds.size(), std::size(bases) * kRunsPerBase);
}

TEST(RngStreams, SweepSeedIsStableWithinProcessAndNontrivial) {
  // Stability: same inputs, same seed (the reproduce-one-run contract).
  EXPECT_EQ(experiment::SweepSeed(99, 5), experiment::SweepSeed(99, 5));
  // The mapping must not be the identity/offset shortcut that made
  // neighbouring runs' xoshiro states correlated before SplitMix seeding.
  EXPECT_NE(experiment::SweepSeed(99, 5), 99u + 5u);
  EXPECT_NE(experiment::SweepSeed(99, 6) - experiment::SweepSeed(99, 5), 1u);
}

TEST(RngStreams, SeededRunsMatchSweepRuns) {
  // A single simulation seeded with SweepSeed(base, i) reproduces the
  // i-th sweep point exactly — the contract tools rely on to re-run one
  // interesting configuration out of a campaign.
  const auto space = core::opt::ConfigSpace::PaperTableI();
  std::vector<core::StackConfig> configs;
  for (std::size_t i = 0; i < 4; ++i) {
    configs.push_back(space.At(i * (space.Size() / 4)));
  }

  experiment::SweepOptions options;
  options.base_seed = 321;
  options.packet_count = 60;
  const auto points = RunSweep(configs, options);

  for (std::size_t i = 0; i < configs.size(); ++i) {
    node::SimulationOptions single;
    single.config = configs[i];
    single.packet_count = options.packet_count;
    single.seed = experiment::SweepSeed(options.base_seed, i);
    const auto result = RunLinkSimulation(single);
    EXPECT_EQ(static_cast<std::uint64_t>(result.unique_delivered),
              points[i].measured.delivered_unique)
        << "config " << i;
    EXPECT_EQ(result.mean_snr_db, points[i].mean_snr_db) << "config " << i;
  }
}

}  // namespace
}  // namespace wsnlink
