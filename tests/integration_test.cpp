// Integration tests: the simulated testbed and the empirical models must
// tell the same story. These are the properties the paper's analysis rests
// on — parameterized across the configuration space (TEST_P sweeps).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/models/model_set.h"
#include "core/opt/baselines.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"

namespace wsnlink {
namespace {

node::SimulationOptions BaseOptions() {
  node::SimulationOptions options;
  options.config.distance_m = 25.0;
  options.config.pa_level = 19;
  options.config.max_tries = 3;
  options.config.queue_capacity = 10;
  options.config.pkt_interval_ms = 100.0;
  options.config.payload_bytes = 80;
  options.packet_count = 800;
  options.seed = 1234;
  return options;
}

// ------------------------------------------------ model vs measurement ----

/// Sweep axis: (distance, pa_level) pairs covering strong to grey links.
struct LinkPoint {
  double distance_m;
  int pa_level;
};

class ModelTracksSimulation : public ::testing::TestWithParam<LinkPoint> {};

TEST_P(ModelTracksSimulation, PerWithinTolerance) {
  auto options = BaseOptions();
  options.config.distance_m = GetParam().distance_m;
  options.config.pa_level = GetParam().pa_level;
  options.config.max_tries = 1;
  options.config.pkt_interval_ms = 60.0;

  const auto result = node::RunLinkSimulation(options);
  const auto measured =
      metrics::ComputeMetrics(result, options.config.pkt_interval_ms);
  const core::models::ModelSet models;
  const double predicted =
      models.Per().Per(options.config.payload_bytes, result.mean_snr_db);

  // Within the model's validity region, measurement tracks Eq. 3. The
  // tolerance is part absolute, part relative: temporal shadowing biases
  // the measured mean upward (Jensen: PER is convex in SNR) and the model
  // references payload bytes while an attempt also risks the ACK.
  if (result.mean_snr_db > 6.0 && result.mean_snr_db < 28.0) {
    EXPECT_NEAR(measured.per, predicted, 0.05 + 0.6 * predicted)
        << "SNR=" << result.mean_snr_db;
  }
}

TEST_P(ModelTracksSimulation, ServiceTimeWithinTenPercent) {
  auto options = BaseOptions();
  options.config.distance_m = GetParam().distance_m;
  options.config.pa_level = GetParam().pa_level;

  const auto result = node::RunLinkSimulation(options);
  const auto measured =
      metrics::ComputeMetrics(result, options.config.pkt_interval_ms);
  if (measured.delivered_unique < 50) return;  // dead link: nothing to check

  const core::models::ModelSet models;
  core::models::ServiceTimeInputs in;
  in.payload_bytes = options.config.payload_bytes;
  in.snr_db = result.mean_snr_db;
  in.max_tries = options.config.max_tries;
  in.retry_delay_ms = options.config.retry_delay_ms;
  const double predicted = models.Service().MeanMs(in);
  EXPECT_NEAR(measured.mean_service_ms, predicted, 0.15 * predicted)
      << "SNR=" << result.mean_snr_db;
}

TEST_P(ModelTracksSimulation, EnergyWithinTolerance) {
  auto options = BaseOptions();
  options.config.distance_m = GetParam().distance_m;
  options.config.pa_level = GetParam().pa_level;
  options.config.max_tries = 3;

  const auto result = node::RunLinkSimulation(options);
  const auto measured =
      metrics::ComputeMetrics(result, options.config.pkt_interval_ms);
  if (measured.delivered_unique < 100) return;

  const core::models::ModelSet models;
  const double predicted = models.Energy().MicrojoulesPerBit(
      options.config.payload_bytes, result.mean_snr_db,
      options.config.pa_level);
  if (std::isinf(predicted)) return;
  EXPECT_NEAR(measured.energy_uj_per_bit, predicted, 0.20 * predicted)
      << "SNR=" << result.mean_snr_db;
}

TEST_P(ModelTracksSimulation, RadioLossWithinTolerance) {
  auto options = BaseOptions();
  options.config.distance_m = GetParam().distance_m;
  options.config.pa_level = GetParam().pa_level;
  options.config.max_tries = 1;  // Eq. 8 at N=1 equals the attempt base
  options.packet_count = 1200;

  const auto result = node::RunLinkSimulation(options);
  const auto measured =
      metrics::ComputeMetrics(result, options.config.pkt_interval_ms);
  const core::models::ModelSet models;
  const double predicted = models.Plr().RadioLoss(
      options.config.payload_bytes, result.mean_snr_db, 1);
  if (result.mean_snr_db > 6.0 && result.mean_snr_db < 28.0) {
    EXPECT_NEAR(measured.plr_radio, predicted, 0.05 + 0.6 * predicted)
        << "SNR=" << result.mean_snr_db;
  }
}

TEST_P(ModelTracksSimulation, SaturatedGoodputWithinTolerance) {
  auto options = BaseOptions();
  options.config.distance_m = GetParam().distance_m;
  options.config.pa_level = GetParam().pa_level;
  options.config.pkt_interval_ms = 1.0;  // saturating sender
  options.config.queue_capacity = 30;
  options.config.max_tries = 3;
  options.packet_count = 2500;

  const auto result = node::RunLinkSimulation(options);
  const auto measured = metrics::ComputeMetrics(result, 1.0);
  if (measured.delivered_unique < 100) return;  // dead link

  const core::models::ModelSet models;
  core::models::ServiceTimeInputs in;
  in.payload_bytes = options.config.payload_bytes;
  in.snr_db = result.mean_snr_db;
  in.max_tries = options.config.max_tries;
  const double predicted = models.Goodput().MaxGoodputKbps(in);
  EXPECT_NEAR(measured.goodput_kbps, predicted, 0.2 * predicted)
      << "SNR=" << result.mean_snr_db;
}

INSTANTIATE_TEST_SUITE_P(
    LinkQualitySweep, ModelTracksSimulation,
    ::testing::Values(LinkPoint{10.0, 31}, LinkPoint{15.0, 23},
                      LinkPoint{20.0, 19}, LinkPoint{25.0, 15},
                      LinkPoint{30.0, 15}, LinkPoint{30.0, 11},
                      LinkPoint{35.0, 15}, LinkPoint{35.0, 11}),
    [](const ::testing::TestParamInfo<LinkPoint>& info) {
      // Built with += rather than an operator+ chain: GCC 12's -O3
      // inliner raises a bogus -Wrestrict on `const char* + string&&`
      // (PR105651), which the -Werror checked build would promote.
      std::string name = "d";
      name += std::to_string(static_cast<int>(info.param.distance_m));
      name += "_p";
      name += std::to_string(info.param.pa_level);
      return name;
    });

// -------------------------------------------- payload-size properties ----

class PayloadSweep : public ::testing::TestWithParam<int> {};

TEST_P(PayloadSweep, PerGrowsWithPayloadAtFixedSnr) {
  // Fig. 6(c): at the same link, bigger frames fail more.
  auto options = BaseOptions();
  options.config.distance_m = 35.0;
  options.config.pa_level = 11;
  options.config.max_tries = 1;
  options.config.payload_bytes = GetParam();
  options.packet_count = 1500;
  const auto small = metrics::MeasureConfig(options);

  options.config.payload_bytes = 110;
  const auto large = metrics::MeasureConfig(options);
  if (GetParam() <= 50) {
    EXPECT_GT(large.per, small.per) << "payload=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, PayloadSweep,
                         ::testing::Values(5, 20, 35, 50));

// ----------------------------------------------- qualitative findings ----

TEST(PaperFindings, GoodputSaturatesAboveLowImpactZone) {
  // Sec. V: goodput rises with SNR until ~19 dB, then flattens.
  auto options = BaseOptions();
  options.config.distance_m = 35.0;
  options.config.max_tries = 1;          // sharpen the SNR dependence
  options.config.pkt_interval_ms = 5.0;  // saturating-ish traffic
  options.config.queue_capacity = 30;
  options.config.payload_bytes = 110;
  // Long run: averages over many shadowing coherence times, so the
  // comparison reflects the mean link rather than one fade realisation.
  options.packet_count = 2500;

  double goodput_grey = 0.0;
  double goodput_edge = 0.0;
  double goodput_high = 0.0;
  options.config.pa_level = 7;  // ~8-9 dB
  goodput_grey = metrics::MeasureConfig(options).goodput_kbps;
  options.config.pa_level = 19;  // ~19 dB
  goodput_edge = metrics::MeasureConfig(options).goodput_kbps;
  options.config.pa_level = 31;  // ~24 dB
  goodput_high = metrics::MeasureConfig(options).goodput_kbps;

  EXPECT_GT(goodput_edge, 1.3 * goodput_grey);
  // Beyond the knee, extra power buys little.
  EXPECT_LT(goodput_high, 1.2 * goodput_edge);
}

TEST(PaperFindings, QueueDelayOrdersOfMagnitude) {
  // Fig. 15: in the grey zone with high load, Qmax=30 delays are orders of
  // magnitude above Qmax=1.
  auto options = BaseOptions();
  options.config.distance_m = 35.0;
  options.config.pa_level = 11;
  options.config.max_tries = 8;
  options.config.pkt_interval_ms = 20.0;
  options.config.payload_bytes = 110;
  options.packet_count = 600;

  options.config.queue_capacity = 1;
  const auto q1 = metrics::MeasureConfig(options);
  options.config.queue_capacity = 30;
  const auto q30 = metrics::MeasureConfig(options);

  EXPECT_GT(q30.mean_delay_ms, 8.0 * q1.mean_delay_ms);
}

TEST(PaperFindings, RetransmissionTradeoffUnderHighLoad) {
  // Sec. VII / Fig. 17: in the grey zone at high arrival rate,
  // retransmissions trade radio loss for queue loss.
  auto options = BaseOptions();
  options.config.distance_m = 35.0;
  options.config.pa_level = 11;
  options.config.pkt_interval_ms = 30.0;
  options.config.payload_bytes = 110;
  options.config.queue_capacity = 1;
  options.packet_count = 800;

  options.config.max_tries = 1;
  const auto no_retx = metrics::MeasureConfig(options);
  options.config.max_tries = 8;
  const auto retx = metrics::MeasureConfig(options);

  EXPECT_LT(retx.plr_radio, no_retx.plr_radio);   // radio loss improves
  EXPECT_GT(retx.plr_queue, no_retx.plr_queue);   // queue loss worsens
}

TEST(PaperFindings, LargeQueueAbsorbsOverflowLoss) {
  // Fig. 17(d): only a large queue reduces PLR_queue once rho > 1.
  auto options = BaseOptions();
  options.config.distance_m = 35.0;
  options.config.pa_level = 11;
  options.config.max_tries = 8;
  options.config.pkt_interval_ms = 30.0;
  options.config.payload_bytes = 110;
  options.packet_count = 800;

  options.config.queue_capacity = 1;
  const auto small_queue = metrics::MeasureConfig(options);
  options.config.queue_capacity = 30;
  const auto large_queue = metrics::MeasureConfig(options);
  EXPECT_LT(large_queue.plr_queue, small_queue.plr_queue);
}

TEST(PaperFindings, OptimalPowerNotMaxForEnergy) {
  // Fig. 7: at 35 m the energy-optimal PA level is intermediate.
  auto options = BaseOptions();
  options.config.distance_m = 35.0;
  options.config.max_tries = 3;
  options.config.pkt_interval_ms = 60.0;
  options.config.payload_bytes = 50;
  options.packet_count = 700;

  double best_energy = 1e18;
  int best_level = -1;
  for (const int level : {3, 7, 11, 15, 19, 23, 27, 31}) {
    options.config.pa_level = level;
    options.seed = 555;  // shared seed: same channel realisation
    const auto m = metrics::MeasureConfig(options);
    if (m.delivered_unique < 50) continue;  // dead link
    if (m.energy_uj_per_bit < best_energy) {
      best_energy = m.energy_uj_per_bit;
      best_level = level;
    }
  }
  EXPECT_GE(best_level, 7);
  EXPECT_LE(best_level, 19);
}

TEST(PaperFindings, UtilizationRuleSeparatesDelayRegimes) {
  // Sec. VI: rho < 1 -> small queueing delay; rho > 1 -> huge.
  const core::models::ModelSet models;
  auto options = BaseOptions();
  options.config.distance_m = 30.0;
  options.config.pa_level = 15;
  options.config.queue_capacity = 30;
  options.config.payload_bytes = 110;
  options.config.max_tries = 3;
  options.packet_count = 500;

  // Model says which intervals are stable.
  core::models::ServiceTimeInputs in;
  in.payload_bytes = 110;
  in.snr_db = models.LinkQuality().SnrDb(15, 30.0);
  in.max_tries = 3;
  const double t_service = models.Service().MeanMs(in);

  options.config.pkt_interval_ms = t_service * 1.6;  // rho ~ 0.63
  const auto stable = metrics::MeasureConfig(options);
  options.config.pkt_interval_ms = t_service * 0.6;  // rho ~ 1.7
  const auto saturated = metrics::MeasureConfig(options);

  EXPECT_LT(stable.mean_queue_wait_ms, t_service);
  EXPECT_GT(saturated.mean_queue_wait_ms, 5.0 * t_service);
}

TEST(PaperFindings, JointTuningBeatsSingleKnobsOnSimulatedLink) {
  // The Fig. 1 headline, verified on the simulator rather than the models:
  // evaluate all five policies on the same grey-zone link. The case-study
  // link is a static deep fade (the paper's "SNR increases to 6 dB at
  // maximum power" example assumes a fixed link quality).
  constexpr double kCaseShadowDb = -17.3;
  const core::models::ModelSet models(
      core::models::kPaperPerFit, core::models::kPaperNtriesFit,
      core::models::kPaperPlrFit,
      core::models::LinkQualityMap(channel::PathLossParams{}, -95.0,
                                   kCaseShadowDb));
  const auto base = core::opt::CaseStudyBaseConfig(35.0);
  const auto joint = core::opt::JointTuning(models, base, 0.55);

  const auto evaluate = [&](const core::StackConfig& config) {
    node::SimulationOptions options;
    options.config = config;
    options.packet_count = 1200;
    options.seed = 99;
    options.spatial_shadow_db = kCaseShadowDb;
    options.disable_temporal_shadowing = true;
    return metrics::MeasureConfig(options);
  };

  const auto joint_measured = evaluate(joint.config);
  const auto power_measured =
      evaluate(core::opt::TunePowerBaseline(base).config);
  const auto retx_measured =
      evaluate(core::opt::TuneRetransmissionsBaseline(base).config);
  const auto min_payload_measured =
      evaluate(core::opt::MinPayloadBaseline(base).config);

  EXPECT_GT(joint_measured.goodput_kbps, power_measured.goodput_kbps);
  EXPECT_GT(joint_measured.goodput_kbps, retx_measured.goodput_kbps);
  EXPECT_GT(joint_measured.goodput_kbps, min_payload_measured.goodput_kbps);
  // Better energy than the no-retransmission max-power policy too.
  EXPECT_LT(joint_measured.energy_uj_per_bit,
            power_measured.energy_uj_per_bit);
}

}  // namespace
}  // namespace wsnlink
