// Reusable per-worker scratch for zero-alloc link simulations.
// wsnlint:hot-path — the zero-alloc invariant is linted in this file.
//
// A sweep worker runs thousands of configurations back to back; every
// growable resource a single run needs — the event kernel's slot pool, the
// stack components' arena, both counter registries and all record buffers —
// lives here and is recycled run to run. After the first few runs warm the
// capacities up, a run performs no steady-state heap allocation beyond the
// one escaping counters snapshot.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "app/sink.h"
#include "link/packet_log.h"
#include "link/transmit_queue.h"
#include "sim/simulator.h"
#include "trace/counters.h"
#include "util/arena.h"

namespace wsnlink::node {

/// One worker's recycled simulation state. Pass to the scratch overload of
/// RunLinkSimulation; the struct must outlive each run's result reduction
/// (reception/log buffers are borrowed by the stack during the run).
struct LinkRunScratch {
  sim::Simulator simulator;
  util::MonotonicArena arena;          ///< stack components live here
  trace::CounterRegistry node_registry;
  trace::CounterRegistry run_registry;  ///< kernel-level "sim.*" counters
  std::vector<link::PacketRecord> packet_buf;
  std::vector<link::AttemptRecord> attempt_buf;
  std::vector<link::QueuedPacket> queue_buf;
  std::vector<std::pair<std::uint64_t, std::size_t>> open_buf;
  std::vector<std::uint8_t> seen_buf;
  std::vector<app::ReceptionRecord> reception_buf;
  std::vector<double> delay_buf;  ///< metric quantile scratch

  /// Prepares for the next run: destroys the previous run's arena-resident
  /// stack components first (they may still reference the simulator), then
  /// rewinds the event kernel and marks both registries' counters stale.
  void BeginRun() {
    arena.Reset();
    simulator.Reset();
    node_registry.BeginRun();
    run_registry.BeginRun();
  }
};

}  // namespace wsnlink::node
