#include "node/network_simulation.h"

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "node/node_stack.h"
#include "node/timewarp.h"
#include "sim/simulator.h"

namespace wsnlink::node {

NetworkOptions SingleLinkNetwork(const SimulationOptions& options) {
  NetworkOptions network;
  network.base = options;
  NodeSpec spec;
  spec.config = options.config;
  spec.spatial_shadow_db = options.spatial_shadow_db;
  spec.packet_count = options.packet_count;
  network.nodes.push_back(spec);
  return network;
}

NetworkOptions UniformNetwork(const SimulationOptions& base,
                              const std::vector<double>& distances_m) {
  NetworkOptions network;
  network.base = base;
  network.nodes.reserve(distances_m.size());
  for (const double distance : distances_m) {
    NodeSpec spec;
    spec.config = base.config;
    spec.config.distance_m = distance;
    spec.spatial_shadow_db = base.spatial_shadow_db;
    network.nodes.push_back(spec);
  }
  return network;
}

namespace detail {

SimulationOptions ResolveNodeOptions(const NetworkOptions& options,
                                     const NodeSpec& spec) {
  SimulationOptions resolved = options.base;
  resolved.config = spec.config;
  resolved.spatial_shadow_db = spec.spatial_shadow_db;
  if (spec.packet_count < 0) {
    throw std::invalid_argument(
        "RunNetworkSimulation: NodeSpec::packet_count must be >= 0 "
        "(0 inherits the base packet count)");
  }
  if (spec.packet_count > 0) resolved.packet_count = spec.packet_count;
  resolved.config.Validate();
  if (resolved.packet_count < 1) {
    throw std::invalid_argument(
        "RunNetworkSimulation: packet_count must be >= 1");
  }
  // Channel-level consistency (mobility bounds etc.) fails here with the
  // node index still known to the caller, not deep inside the stack build.
  MakeChannelConfig(resolved).Validate();
  return resolved;
}

void FinalizeNetworkAggregates(NetworkResult& result, bool collect_counters) {
  std::uint64_t failed_attempts = 0;
  for (const SimulationResult& node : result.nodes) {
    result.generated += static_cast<std::uint64_t>(node.generated);
    result.delivered_unique += node.unique_delivered;
    result.cca_busy += node.cca_busy;
    result.attempts += node.log.Attempts().size();
    for (const auto& attempt : node.log.Attempts()) {
      if (!attempt.data_received) ++failed_attempts;
    }
    for (const auto& packet : node.log.Packets()) {
      if (packet.dropped_at_queue) ++result.queue_drops;
      if (packet.acked) ++result.acked_packets;
    }
  }
  if (result.attempts > 0) {
    result.per = static_cast<double>(failed_attempts) /
                 static_cast<double>(result.attempts);
  }
  if (result.generated > 0) {
    result.plr_total = 1.0 - static_cast<double>(result.delivered_unique) /
                                 static_cast<double>(result.generated);
  }

  if (collect_counters) {
    std::vector<std::vector<trace::CounterSample>> snapshots;
    snapshots.reserve(result.nodes.size() + 1);
    for (const SimulationResult& node : result.nodes) {
      snapshots.push_back(node.counters);
    }
    snapshots.push_back(result.run_counters);
    result.aggregate_counters = trace::MergeCounters(snapshots);
    if (result.medium_active) {
      trace::AddSample(result.aggregate_counters, "medium.frames",
                       result.medium.frames);
      trace::AddSample(result.aggregate_counters, "medium.busy_hits",
                       result.medium.busy_hits);
      trace::AddSample(result.aggregate_counters, "medium.collisions",
                       result.medium.collisions);
      trace::AddSample(result.aggregate_counters, "medium.captures",
                       result.medium.captures);
    }
  }
}

}  // namespace detail

NetworkResult RunNetworkSimulation(const NetworkOptions& options) {
  if (options.nodes.empty()) {
    throw std::invalid_argument(
        "RunNetworkSimulation: topology needs at least one node");
  }
  if (options.sim_threads < 1) {
    throw std::invalid_argument(
        "RunNetworkSimulation: sim_threads must be >= 1");
  }

  // The optimistic engine needs at least two nodes to partition, a null
  // tracer (traced event streams are defined by the sequential
  // interleaving) and a topology within the kernel's lane limit. Results
  // are byte-identical either way — the engines differ only in wall-clock.
  if (options.sim_threads > 1 && options.nodes.size() >= 2 &&
      options.base.tracer == nullptr &&
      options.nodes.size() <= sim::Simulator::kMaxLanes) {
    return RunNetworkSimulationTimeWarp(
        options, static_cast<unsigned>(options.sim_threads),
        static_cast<unsigned>(options.sim_threads));
  }

  sim::Simulator simulator;
  // Lane-structured event keys: same-time events tie-break by (node,
  // per-node sequence) instead of global scheduling order, the invariant
  // the parallel engine reproduces per-LP. Oversized topologies (beyond
  // the 16-bit lane space) keep the legacy single-lane keys — they can
  // only run sequentially anyway.
  const bool laned = options.nodes.size() <= sim::Simulator::kMaxLanes;
  if (laned) {
    simulator.ConfigureLanes(static_cast<std::uint32_t>(options.nodes.size()));
  }

  // The medium only exists when two or more senders can actually contend:
  // a single node with a medium would pay the bookkeeping, lose the MAC
  // fast path and gain nothing — and N=1 must stay bit-identical to the
  // single-link simulation.
  std::optional<channel::Medium> medium;
  if (options.shared_medium && options.nodes.size() > 1) {
    medium.emplace(options.capture_margin_db);
  }

  const util::Rng root(options.base.seed);
  std::vector<std::unique_ptr<NodeStack>> stacks;
  stacks.reserve(options.nodes.size());
  for (std::size_t i = 0; i < options.nodes.size(); ++i) {
    // Node 0 keeps the single-link lineage; later nodes branch off it, so
    // growing the topology never disturbs the streams of existing nodes.
    const util::Rng node_root =
        i == 0 ? root : root.Derive("node-" + std::to_string(i));
    stacks.push_back(std::make_unique<NodeStack>(
        simulator, detail::ResolveNodeOptions(options, options.nodes[i]),
        node_root, medium ? &*medium : nullptr, static_cast<int>(i)));
  }

  // Observability: the kernel's counters are run-scoped (one simulator
  // serves every node); each stack attaches its own registry and stamps
  // its node id into the shared tracer's events.
  trace::CounterRegistry run_registry;
  trace::TraceContext run_ctx;
  run_ctx.tracer = options.base.tracer;
  run_ctx.counters = options.base.collect_counters ? &run_registry : nullptr;
  if (run_ctx.Active()) simulator.AttachTrace(run_ctx);
  for (auto& stack : stacks) {
    stack->AttachTrace(options.base.tracer, options.base.collect_counters);
  }

  for (std::size_t i = 0; i < stacks.size(); ++i) {
    if (laned) simulator.SetCurrentLane(static_cast<std::uint32_t>(i));
    stacks[i]->Start();
  }
  simulator.Run();

  NetworkResult result;
  result.end_time = simulator.Now();
  result.events_executed = simulator.EventsExecuted();
  result.nodes.reserve(stacks.size());
  for (auto& stack : stacks) {
    result.nodes.push_back(
        stack->Harvest(result.end_time, result.events_executed));
  }
  if (medium) {
    result.medium = medium->Stats();
    result.medium_active = true;
  }

  if (options.base.collect_counters) {
    result.run_counters = run_registry.Snapshot();
  }
  detail::FinalizeNetworkAggregates(result, options.base.collect_counters);
  return result;
}

SimulationResult CollapseToSingleLink(NetworkResult&& network) {
  if (network.nodes.size() != 1) {
    throw std::invalid_argument(
        "CollapseToSingleLink: expected exactly one node, got " +
        std::to_string(network.nodes.size()));
  }
  SimulationResult result = std::move(network.nodes.front());
  // The pre-refactor runner kept one registry for the whole run; merging
  // the node-scoped and run-scoped snapshots (disjoint name sets, both
  // sorted) reproduces that single snapshot byte for byte.
  if (!result.counters.empty() || !network.run_counters.empty()) {
    result.counters =
        trace::MergeCounters({result.counters, network.run_counters});
  }
  return result;
}

}  // namespace wsnlink::node
