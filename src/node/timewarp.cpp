// wsnlint:hot-path — the speculate/validate/rollback/commit cycle is the
// parallel engine's per-window inner loop. All round state (kernel
// snapshots, stack snapshots, frame ledgers, read logs) lives in reusable
// vectors that keep their capacity across windows, so steady-state rounds
// run without touching the heap allocator; the no-hot-alloc rule keeps
// that reuse honest at review time.
#include "node/timewarp.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "channel/medium.h"
#include "node/node_stack.h"
#include "sim/simulator.h"
#include "trace/counters.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wsnlink::node {
namespace {

// Lookahead window sizing. The floor is one maximum frame airtime (half
// the medium retention window), so a window always spans at least one
// potential cross-LP interaction; the driver doubles the window after
// conflict-free rounds and halves it when a round needs repeated repair
// passes. Adaptation reads only committed facts (iteration counts), never
// wall clocks, so the window trajectory — and a fortiori the committed
// execution, which is window-invariant — is deterministic.
constexpr sim::Duration kMinWindow = channel::kMediumRetentionWindow / 2;
constexpr sim::Duration kInitialWindow = 4 * kMinWindow;
constexpr sim::Duration kMaxWindow = 64 * kMinWindow;

// A window converges in at most as many repair passes as it has
// cross-LP-interacting events (each pass extends the sequential prefix by
// at least one event key — see the fixpoint argument in
// docs/ARCHITECTURE.md). Blowing through this cap therefore indicates a
// detection bug, not a hard workload.
constexpr unsigned kMaxWindowIterations = 1000;

/// One radiated frame in a speculative or committed ledger. `reg_time` is
/// the simulated time of the event that registered it (frames register at
/// their own start in practice, but the engine never relies on that).
struct TwFrame {
  int node = 0;
  sim::Time start = 0;
  sim::Time end = 0;
  double sink_rssi_dbm = 0.0;
  sim::Time reg_time = 0;
};

/// Whether a speculative frame is visible to a query executing at
/// (t_exec, q_node). Mirrors the kernel's lane-ordered key comparison at
/// event granularity: node p's event at time T precedes node q's event at
/// time T' exactly when (T, p) < (T', q), and a query sees precisely the
/// frames registered by preceding events. Committed frames skip this
/// filter — they predate GVT and every live query runs after it.
[[nodiscard]] constexpr bool FrameVisible(const TwFrame& f, sim::Time t_exec,
                                          int q_node) noexcept {
  return f.reg_time < t_exec || (f.reg_time == t_exec && f.node < q_node);
}

/// One logged medium query: enough to re-evaluate it against a different
/// frame ledger and detect a causality violation. Results compare by bit
/// pattern — any numeric drift is a divergence, not a rounding question.
struct TwRead {
  enum class Kind : std::uint8_t { kBusyAt, kStrongest };
  Kind kind = Kind::kBusyAt;
  int q_node = 0;
  sim::Time t_exec = 0;
  sim::Time a = 0;  ///< BusyAt: query instant; Strongest: interval start.
  sim::Time b = 0;  ///< Strongest: interval end.
  bool busy = false;
  bool has_value = false;
  std::uint64_t value_bits = 0;
};

/// Closed-open occupancy test over one ledger (Medium::BusyAt semantics).
[[nodiscard]] bool AnyBusy(const std::vector<TwFrame>& frames, sim::Time t,
                           sim::Time t_exec, int listener, bool speculative) {
  for (const TwFrame& f : frames) {
    if (f.node == listener) continue;
    if (speculative && !FrameVisible(f, t_exec, listener)) continue;
    if (f.start <= t && t < f.end) return true;
  }
  return false;
}

/// Open-interval strongest-overlap fold over one ledger
/// (Medium::StrongestOverlapDbm semantics; max is order-independent).
void FoldStrongest(const std::vector<TwFrame>& frames, sim::Time start,
                   sim::Time end, int node, sim::Time t_exec, bool speculative,
                   std::optional<double>& strongest) {
  for (const TwFrame& f : frames) {
    if (f.node == node) continue;
    if (speculative && !FrameVisible(f, t_exec, node)) continue;
    if (f.start < end && f.end > start) {
      if (!strongest || f.sink_rssi_dbm > *strongest) {
        strongest = f.sink_rssi_dbm;
      }
    }
  }
}

/// Per-LP view of the shared medium: answers the stack's queries from the
/// committed ledger, the other LPs' previous-pass frames and its own live
/// frames, and logs every answer for post-window validation. RNG-free like
/// the sequential Medium, so attaching a view never perturbs a stack's
/// random streams.
class TwMediumView final : public channel::Medium {
 public:
  TwMediumView(double capture_margin_db, std::size_t lp,
               const sim::Simulator* sim,
               const std::vector<TwFrame>* committed,
               const std::vector<std::vector<TwFrame>>* stable)
      : channel::Medium(capture_margin_db),
        lp_(lp),
        sim_(sim),
        committed_(committed),
        stable_(stable) {}

  /// Clears the speculative round state (capacity kept).
  void BeginRound() {
    frames_.clear();
    reads_.clear();
    delta_ = {};
  }

  void Begin(int node, sim::Time start, sim::Time end,
             double sink_rssi_dbm) override {
    if (end <= start) {
      throw std::invalid_argument("Medium::Begin: frame must have end > start");
    }
    frames_.push_back({node, start, end, sink_rssi_dbm, sim_->Now()});
    ++delta_.frames;
  }

  bool BusyAt(sim::Time t, int listener) override {
    const sim::Time t_exec = sim_->Now();
    bool busy = AnyBusy(*committed_, t, t_exec, listener, false);
    for (std::size_t lp = 0; !busy && lp < stable_->size(); ++lp) {
      if (lp == lp_) continue;
      busy = AnyBusy((*stable_)[lp], t, t_exec, listener, true);
    }
    if (!busy) busy = AnyBusy(frames_, t, t_exec, listener, true);
    if (busy) ++delta_.busy_hits;
    TwRead read;
    read.q_node = listener;
    read.t_exec = t_exec;
    read.a = t;
    read.busy = busy;
    reads_.push_back(read);
    return busy;
  }

  std::optional<double> StrongestOverlapDbm(sim::Time start, sim::Time end,
                                            int node) const override {
    const sim::Time t_exec = sim_->Now();
    std::optional<double> strongest;
    FoldStrongest(*committed_, start, end, node, t_exec, false, strongest);
    for (std::size_t lp = 0; lp < stable_->size(); ++lp) {
      if (lp == lp_) continue;
      FoldStrongest((*stable_)[lp], start, end, node, t_exec, true, strongest);
    }
    FoldStrongest(frames_, start, end, node, t_exec, true, strongest);
    TwRead read;
    read.kind = TwRead::Kind::kStrongest;
    read.q_node = node;
    read.t_exec = t_exec;
    read.a = start;
    read.b = end;
    read.has_value = strongest.has_value();
    if (strongest) read.value_bits = std::bit_cast<std::uint64_t>(*strongest);
    reads_.push_back(read);
    return strongest;
  }

  void NoteCollision(bool captured) noexcept override {
    ++delta_.collisions;
    if (captured) ++delta_.captures;
  }

  [[nodiscard]] const std::vector<TwFrame>& Frames() const noexcept {
    return frames_;
  }
  [[nodiscard]] const std::vector<TwRead>& Reads() const noexcept {
    return reads_;
  }
  [[nodiscard]] const channel::MediumStats& Delta() const noexcept {
    return delta_;
  }

 private:
  std::size_t lp_;
  const sim::Simulator* sim_;
  const std::vector<TwFrame>* committed_;
  const std::vector<std::vector<TwFrame>>* stable_;
  std::vector<TwFrame> frames_;
  // The read log grows inside const queries (StrongestOverlapDbm is a pure
  // lookup to the stacks; the log is engine bookkeeping).
  mutable std::vector<TwRead> reads_;
  channel::MediumStats delta_;
};

/// One logical process: a private event kernel carrying a contiguous node
/// range, its medium view, a run-scoped counter registry (the kernel's
/// sim.* series) and the reusable snapshot storage the rollback path
/// restores from.
struct Lp {
  Lp(double capture_margin_db, std::size_t index,
     const std::vector<TwFrame>* committed,
     const std::vector<std::vector<TwFrame>>* stable)
      : view(capture_margin_db, index, &sim, committed, stable) {}

  Lp(const Lp&) = delete;
  Lp& operator=(const Lp&) = delete;

  sim::Simulator sim;
  TwMediumView view;
  // deque: stacks are immovable (they hand out internal pointers) and the
  // hot-path rule forbids per-stack heap handles.
  std::deque<NodeStack> stacks;
  int first_node = 0;
  trace::CounterRegistry run_registry;
  sim::Simulator::Snapshot sim_snap;
  std::vector<NodeStack::Snapshot> stack_snaps;
  std::vector<std::uint64_t> run_counter_snap;
  bool needs_run = true;
  bool valid = true;
  std::string error;
};

/// Re-evaluates every logged query of `view` against the committed ledger
/// plus every LP's final frames for this pass. The uniform key filter
/// reproduces exactly the visible set of the sequential interleaving, so a
/// mismatch — compared bit for bit — is precisely a causality violation.
[[nodiscard]] bool ReadsStillHold(const TwMediumView& view,
                                  const std::vector<TwFrame>& committed,
                                  const std::deque<Lp>& lps) {
  for (const TwRead& r : view.Reads()) {
    if (r.kind == TwRead::Kind::kBusyAt) {
      bool busy = AnyBusy(committed, r.a, r.t_exec, r.q_node, false);
      for (std::size_t i = 0; !busy && i < lps.size(); ++i) {
        busy = AnyBusy(lps[i].view.Frames(), r.a, r.t_exec, r.q_node, true);
      }
      if (busy != r.busy) return false;
    } else {
      std::optional<double> strongest;
      FoldStrongest(committed, r.a, r.b, r.q_node, r.t_exec, false, strongest);
      for (const Lp& other : lps) {
        FoldStrongest(other.view.Frames(), r.a, r.b, r.q_node, r.t_exec, true,
                      strongest);
      }
      if (strongest.has_value() != r.has_value) return false;
      if (strongest &&
          std::bit_cast<std::uint64_t>(*strongest) != r.value_bits) {
        return false;
      }
    }
  }
  return true;
}

/// Runs `fn` over every LP on the shared pool. ParallelFor is a barrier,
/// so each phase (snapshot, speculate, validate) sees the previous one
/// completed; exceptions are captured per-LP (pool tasks must not throw)
/// and rethrown serially.
template <typename Fn>
void RunOnAll(util::ThreadPool& pool, std::deque<Lp>& lps,
              unsigned max_parallel, const Fn& fn) {
  std::atomic<bool> failed{false};
  pool.ParallelFor(lps.size(), 1, max_parallel, [&](std::size_t i) {
    try {
      fn(lps[i]);
    } catch (const std::exception& e) {
      lps[i].error = e.what();
      failed.store(true, std::memory_order_relaxed);
    }
  });
  if (failed.load(std::memory_order_relaxed)) {
    for (const Lp& lp : lps) {
      if (!lp.error.empty()) {
        throw std::runtime_error("RunNetworkSimulationTimeWarp: LP fault: " +
                                 lp.error);
      }
    }
  }
}

/// The windowed optimistic driver: speculate each window, repair until the
/// read logs reach the (unique) fixpoint, commit, advance GVT, fossil-
/// collect, adapt the window.
void RunWindows(std::deque<Lp>& lps, std::vector<std::vector<TwFrame>>& stable,
                std::vector<TwFrame>& committed,
                channel::MediumStats& medium_stats, util::ThreadPool& pool,
                unsigned max_parallel) {
  sim::Duration window = kInitialWindow;
  while (true) {
    // Skip-ahead GVT: the window starts at the earliest pending event
    // anywhere, so idle stretches (low duty cycles, LPL sleep) cost no
    // empty rounds.
    bool any = false;
    sim::Time next = 0;
    for (Lp& lp : lps) {
      sim::Time at = 0;
      if (lp.sim.PeekNextEventAt(at) && (!any || at < next)) {
        any = true;
        next = at;
      }
    }
    if (!any) break;
    const sim::Time window_end = next + window;  // executes events at <= end

    // Snapshot every LP at the window top (the rollback anchor) and reset
    // the speculative round state.
    RunOnAll(pool, lps, max_parallel, [](Lp& lp) {
      lp.sim.SaveState(lp.sim_snap);
      for (std::size_t j = 0; j < lp.stacks.size(); ++j) {
        lp.stacks[j].SaveState(lp.stack_snaps[j]);
      }
      lp.run_registry.SaveValues(lp.run_counter_snap);
      lp.view.BeginRound();
      lp.needs_run = true;
      lp.valid = true;
    });
    for (std::vector<TwFrame>& frames : stable) frames.clear();

    unsigned iterations = 0;
    while (true) {
      ++iterations;
      if (iterations > kMaxWindowIterations) {
        throw std::logic_error(
            "RunNetworkSimulationTimeWarp: window failed to converge in " +
            std::to_string(kMaxWindowIterations) +
            " passes — causality detection bug");
      }
      const bool first_pass = iterations == 1;
      // Speculate: every LP that needs (re-)execution rolls back to the
      // window-top snapshot and runs its events against the stable view of
      // everyone's previous pass.
      RunOnAll(pool, lps, max_parallel, [first_pass, window_end](Lp& lp) {
        if (!lp.needs_run) return;
        if (!first_pass) {
          lp.sim.RestoreState(lp.sim_snap);
          for (std::size_t j = 0; j < lp.stacks.size(); ++j) {
            lp.stacks[j].RestoreState(lp.stack_snaps[j]);
          }
          lp.run_registry.RestoreValues(lp.run_counter_snap);
          lp.view.BeginRound();
        }
        sim::Time at = 0;
        while (lp.sim.PeekNextEventAt(at) && at <= window_end) lp.sim.Step();
      });
      // Validate: every LP's reads (including the ones that did not rerun)
      // against everyone's final frames for this pass.
      RunOnAll(pool, lps, max_parallel, [&committed, &lps](Lp& lp) {
        lp.valid = ReadsStillHold(lp.view, committed, lps);
      });
      bool all_valid = true;
      for (const Lp& lp : lps) all_valid = all_valid && lp.valid;
      if (all_valid) break;
      // Publish this pass's frames as the next pass's stable view and mark
      // the violated LPs for re-execution.
      for (std::size_t i = 0; i < lps.size(); ++i) {
        const std::vector<TwFrame>& frames = lps[i].view.Frames();
        stable[i].assign(frames.begin(), frames.end());
        lps[i].needs_run = !lps[i].valid;
      }
    }

    // Commit: the window reached its fixpoint, which is the sequential
    // execution of (GVT, window_end]. Frames join the committed ledger in
    // LP order and the per-view statistics deltas fold into the run totals
    // — rolled-back passes left no trace in either.
    for (Lp& lp : lps) {
      const std::vector<TwFrame>& frames = lp.view.Frames();
      committed.insert(committed.end(), frames.begin(), frames.end());
      medium_stats.frames += lp.view.Delta().frames;
      medium_stats.busy_hits += lp.view.Delta().busy_hits;
      medium_stats.collisions += lp.view.Delta().collisions;
      medium_stats.captures += lp.view.Delta().captures;
    }
    const sim::Time gvt = window_end;
    // Fossil collection: queries look back at most one retention window
    // from their execution instant, and every future query runs after GVT.
    if (gvt > channel::kMediumRetentionWindow) {
      const sim::Time horizon = gvt - channel::kMediumRetentionWindow;
      std::erase_if(committed,
                    [horizon](const TwFrame& f) { return f.end < horizon; });
    }
    if (iterations > 2) {
      window = std::max(kMinWindow, window / 2);
    } else if (iterations == 1) {
      window = std::min(kMaxWindow, window * 2);
    }
  }
}

}  // namespace

NetworkResult RunNetworkSimulationTimeWarp(const NetworkOptions& options,
                                           unsigned lp_count,
                                           unsigned max_parallel) {
  const std::size_t node_count = options.nodes.size();
  if (node_count < 2) {
    throw std::logic_error(
        "RunNetworkSimulationTimeWarp: needs at least two nodes");
  }
  lp_count = static_cast<unsigned>(
      std::min<std::size_t>(lp_count, node_count));
  if (lp_count < 1) lp_count = 1;
  if (max_parallel < 1) max_parallel = 1;
  const bool contended = options.shared_medium && node_count > 1;
  const bool collect = options.base.collect_counters;

  std::vector<TwFrame> committed;
  std::vector<std::vector<TwFrame>> stable(lp_count);
  std::deque<Lp> lps;

  // Contiguous block partition; every LP declares the full lane table so
  // node i's events carry the same (time, lane, lane-sequence) keys they
  // would on the sequential kernel.
  const util::Rng root(options.base.seed);
  const std::size_t base_size = node_count / lp_count;
  const std::size_t remainder = node_count % lp_count;
  std::size_t next_node = 0;
  for (unsigned i = 0; i < lp_count; ++i) {
    Lp& lp = lps.emplace_back(options.capture_margin_db,
                              static_cast<std::size_t>(i), &committed,
                              &stable);
    lp.first_node = static_cast<int>(next_node);
    lp.sim.ConfigureLanes(static_cast<std::uint32_t>(node_count));
    const std::size_t size = base_size + (i < remainder ? 1 : 0);
    for (std::size_t j = 0; j < size; ++j, ++next_node) {
      // Same per-node lineage as the sequential engine: node 0 keeps the
      // single-link root, later nodes branch off it.
      const util::Rng node_root =
          next_node == 0 ? root
                         : root.Derive("node-" + std::to_string(next_node));
      lp.stacks.emplace_back(
          lp.sim, detail::ResolveNodeOptions(options, options.nodes[next_node]),
          node_root, contended ? &lp.view : nullptr,
          static_cast<int>(next_node));
    }
    lp.stack_snaps.resize(lp.stacks.size());
    trace::TraceContext run_ctx;
    run_ctx.counters = collect ? &lp.run_registry : nullptr;
    if (run_ctx.Active()) lp.sim.AttachTrace(run_ctx);
    for (NodeStack& stack : lp.stacks) stack.AttachTrace(nullptr, collect);
  }

  // Schedule each node's first arrival under its own lane (the only
  // scheduling that happens outside an event).
  for (Lp& lp : lps) {
    for (std::size_t j = 0; j < lp.stacks.size(); ++j) {
      lp.sim.SetCurrentLane(
          static_cast<std::uint32_t>(lp.first_node) +
          static_cast<std::uint32_t>(j));
      lp.stacks[j].Start();
    }
  }

  util::ThreadPool& pool = util::ThreadPool::Shared();
  channel::MediumStats medium_stats;
  if (contended) {
    RunWindows(lps, stable, committed, medium_stats, pool, max_parallel);
  } else {
    // Private-air stacks never interact: each LP runs to completion in one
    // pass, no speculation and no snapshots.
    RunOnAll(pool, lps, max_parallel, [](Lp& lp) { lp.sim.Run(); });
  }

  NetworkResult result;
  for (Lp& lp : lps) {
    result.end_time = std::max(result.end_time, lp.sim.LastEventAt());
    result.events_executed += lp.sim.EventsExecuted();
  }
  result.nodes.reserve(node_count);
  for (Lp& lp : lps) {
    for (NodeStack& stack : lp.stacks) {
      result.nodes.push_back(
          stack.Harvest(result.end_time, result.events_executed));
    }
  }
  if (contended) {
    result.medium = medium_stats;
    result.medium_active = true;
  }
  if (collect) {
    std::vector<std::vector<trace::CounterSample>> run_snapshots;
    run_snapshots.reserve(lps.size());
    for (Lp& lp : lps) run_snapshots.push_back(lp.run_registry.Snapshot());
    result.run_counters = trace::MergeCounters(run_snapshots);
  }
  detail::FinalizeNetworkAggregates(result, collect);
  return result;
}

}  // namespace wsnlink::node
