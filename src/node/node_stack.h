// One sender stack of a (possibly multi-node) simulation.
//
// Extracted from the inline assembly that RunLinkSimulation used to do for
// exactly one link: channel (from the config's distance), MAC (CSMA or
// LPL), bounded queue + link layer, traffic source and per-node sink, all
// driven by a shared discrete-event kernel. Each stack owns a private RNG
// lineage and counter registry, so N stacks on one simulator stay
// independent everywhere except the air they share (channel::Medium).
#pragma once

#include <cstdint>
#include <memory>

#include "app/sink.h"
#include "app/traffic_gen.h"
#include "channel/channel.h"
#include "channel/medium.h"
#include "link/link_layer.h"
#include "mac/mac.h"
#include "node/link_simulation.h"
#include "sim/simulator.h"
#include "trace/counters.h"
#include "util/rng.h"

namespace wsnlink::node {

/// A fully wired sender→sink stack on a shared simulator.
class NodeStack {
 public:
  /// Builds the stack exactly as the single-link simulation does: channel,
  /// MAC, link queue and traffic source derive their streams from `root`
  /// with the historical labels, so a stack built from the run's root RNG
  /// reproduces the pre-refactor run bit for bit. `medium` may be null
  /// (uncontended); when set, the channel joins it as `node_id`.
  /// `options` must already be validated; `simulator` and `medium` must
  /// outlive the stack.
  NodeStack(sim::Simulator& simulator, const SimulationOptions& options,
            util::Rng root, channel::Medium* medium, int node_id);

  NodeStack(const NodeStack&) = delete;
  NodeStack& operator=(const NodeStack&) = delete;

  /// Attaches the run's tracer and (when `collect_counters`) this node's
  /// private registry to every layer, stamping events with the node id.
  /// Call before Start().
  void AttachTrace(trace::Tracer* tracer, bool collect_counters);

  /// Schedules the traffic source's first packet.
  void Start();

  /// Extracts this node's results after the simulator has run. Moves the
  /// packet log out; call once. `end_time`/`events_executed` are the shared
  /// kernel's values (every node reports the same run envelope).
  [[nodiscard]] SimulationResult Harvest(sim::Time end_time,
                                         std::uint64_t events_executed);

  [[nodiscard]] int NodeId() const noexcept { return node_id_; }
  [[nodiscard]] const channel::Channel& Link() const noexcept {
    return *channel_;
  }

 private:
  SimulationOptions options_;
  int node_id_;
  std::unique_ptr<channel::Channel> channel_;
  std::unique_ptr<mac::Mac> mac_;
  std::unique_ptr<link::LinkLayer> link_;
  app::PacketSink sink_;
  std::unique_ptr<app::TrafficGenerator> generator_;
  trace::CounterRegistry registry_;
  bool collect_counters_ = false;
  double receiver_idle_duty_ = 1.0;
};

}  // namespace wsnlink::node
