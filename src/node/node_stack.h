// One sender stack of a (possibly multi-node) simulation.
//
// Extracted from the inline assembly that RunLinkSimulation used to do for
// exactly one link: channel (from the config's distance), MAC (CSMA or
// LPL), bounded queue + link layer, traffic source and per-node sink, all
// driven by a shared discrete-event kernel. Each stack owns a private RNG
// lineage and counter registry, so N stacks on one simulator stay
// independent everywhere except the air they share (channel::Medium).
#pragma once

#include <cstdint>

#include "app/sink.h"
#include "app/traffic_gen.h"
#include "channel/channel.h"
#include "channel/medium.h"
#include "link/link_layer.h"
#include "mac/mac.h"
#include "node/link_simulation.h"
#include "node/run_scratch.h"
#include "sim/simulator.h"
#include "trace/counters.h"
#include "util/arena.h"
#include "util/rng.h"

namespace wsnlink::node {

/// A fully wired sender→sink stack on a shared simulator.
class NodeStack {
 public:
  /// Builds the stack exactly as the single-link simulation does: channel,
  /// MAC, link queue and traffic source derive their streams from `root`
  /// with the historical labels, so a stack built from the run's root RNG
  /// reproduces the pre-refactor run bit for bit. `medium` may be null
  /// (uncontended); when set, the channel joins it as `node_id`.
  /// `options` must already be validated; `simulator` and `medium` must
  /// outlive the stack.
  ///
  /// `scratch` (optional) switches the stack into recycled-storage mode:
  /// components are placed in the scratch arena and every growable buffer
  /// (queue ring, packet/attempt logs, sink state) reuses the scratch
  /// vectors' warm heap blocks. The scratch's simulator must be `simulator`
  /// and BeginRun() must have been called. Simulation behaviour and results
  /// are bit-identical to the default mode.
  NodeStack(sim::Simulator& simulator, const SimulationOptions& options,
            util::Rng root, channel::Medium* medium, int node_id,
            LinkRunScratch* scratch = nullptr);

  NodeStack(const NodeStack&) = delete;
  NodeStack& operator=(const NodeStack&) = delete;

  /// Attaches the run's tracer and (when `collect_counters`) this node's
  /// private registry to every layer, stamping events with the node id.
  /// Call before Start().
  void AttachTrace(trace::Tracer* tracer, bool collect_counters);

  /// Folds the run-level registry (kernel "sim.*" counters) into this
  /// node's Harvest() snapshot via a single-allocation merge-join — the
  /// scratch path's equivalent of the campaign-side MergeCounters roll-up.
  /// Leave unset when the caller merges run counters itself.
  void SetRunRegistry(const trace::CounterRegistry* run_registry) noexcept {
    run_registry_ = run_registry;
  }

  /// Schedules the traffic source's first packet.
  void Start();

  /// Extracts this node's results after the simulator has run. Moves the
  /// packet log out; call once. `end_time`/`events_executed` are the shared
  /// kernel's values (every node reports the same run envelope).
  [[nodiscard]] SimulationResult Harvest(sim::Time end_time,
                                         std::uint64_t events_executed);

  [[nodiscard]] int NodeId() const noexcept { return node_id_; }
  [[nodiscard]] const channel::Channel& Link() const noexcept {
    return *channel_;
  }

  /// Every layer's mutable state plus this node's counter values — the
  /// whole-stack image the optimistic engine saves before speculating and
  /// restores on a causality violation. Pair with a simulator snapshot
  /// taken at the same instant (pending events belong to the kernel).
  struct Snapshot {
    channel::Channel::State channel;
    mac::MacSnapshot mac;
    link::LinkLayer::State link;
    app::PacketSink::State sink;
    app::TrafficGenerator::State traffic;
    std::vector<std::uint64_t> counters;
  };

  void SaveState(Snapshot& out) const;
  void RestoreState(const Snapshot& snapshot);

 private:
  // wsnstatic:transient(options_, node_id_): run configuration fixed at construction; never mutated during a run
  SimulationOptions options_;
  int node_id_;
  // Both BER models are cheap value members; the channel borrows whichever
  // the options select (no per-stack model allocation either way).
  // wsnstatic:transient(analytic_ber_, calibrated_ber_): immutable BER model values; pure functions of SNR
  channel::AnalyticOQpskBer analytic_ber_;
  channel::CalibratedExponentialBer calibrated_ber_;
  // Components live in an arena: the stack's own in default mode, the
  // caller's recycled one in scratch mode. The arena destroys them in
  // reverse construction order (generator → link → mac → channel), which
  // respects their reference dependencies.
  // wsnstatic:transient(own_arena_, arena_): component storage, not state; each arena-hosted component snapshots itself in the stack Snapshot
  util::MonotonicArena own_arena_;
  util::MonotonicArena* arena_;
  channel::Channel* channel_ = nullptr;
  mac::Mac* mac_ = nullptr;
  link::LinkLayer* link_ = nullptr;
  app::PacketSink sink_;
  app::TrafficGenerator* generator_ = nullptr;
  // wsnstatic:transient(own_registry_): default backing registry; live counters sit behind registry_, whose values Save/Restore round-trip
  trace::CounterRegistry own_registry_;
  trace::CounterRegistry* registry_;  // &own_registry_ or scratch's
  const trace::CounterRegistry* run_registry_ = nullptr;
  // wsnstatic:transient(collect_counters_, receiver_idle_duty_): run configuration fixed at construction; never mutated during a run
  bool collect_counters_ = false;
  double receiver_idle_duty_ = 1.0;
};

}  // namespace wsnlink::node
