#include "node/link_simulation.h"

#include <stdexcept>

#include "node/network_simulation.h"
#include "node/node_stack.h"
#include "node/run_scratch.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace wsnlink::node {

channel::ChannelConfig MakeChannelConfig(const SimulationOptions& options) {
  channel::ChannelConfig config;
  config.distance_m = options.config.distance_m;
  config.spatial_shadow_db = options.spatial_shadow_db;
  if (options.disable_temporal_shadowing) {
    config.use_default_temporal_sigma = false;
    config.shadowing.sigma_db = 0.0;
  }
  if (options.disable_interference) {
    config.noise.burst_rate_hz = 0.0;
  }
  config.interferer.duty_cycle = options.interferer_duty_cycle;
  config.interferer.rx_power_dbm = options.interferer_power_dbm;
  config.mobility.speed_mps = options.mobility_speed_mps;
  config.mobility.min_distance_m = options.mobility_min_m;
  config.mobility.max_distance_m = options.mobility_max_m;
  // Reject inconsistent placements (mobility bounds, distances) here, with
  // the options still in hand, instead of simulating nonsense.
  config.Validate();
  return config;
}

SimulationResult RunLinkSimulation(const SimulationOptions& options) {
  // The single link is the N=1 network: one stack, no shared medium. The
  // collapse merges the node- and run-scoped counters back into the single
  // snapshot this function has always returned — bit-identical to the
  // pre-refactor inline assembly.
  return CollapseToSingleLink(RunNetworkSimulation(SingleLinkNetwork(options)));
}

SimulationResult RunLinkSimulation(const SimulationOptions& options,
                                   LinkRunScratch& scratch) {
  // Same validation, in the same order and with the same messages, as the
  // N=1 network path above (ResolveNodeOptions) — callers must not be able
  // to tell the two overloads apart.
  if (options.packet_count < 0) {
    throw std::invalid_argument(
        "RunNetworkSimulation: NodeSpec::packet_count must be >= 0 "
        "(0 inherits the base packet count)");
  }
  options.config.Validate();
  if (options.packet_count < 1) {
    throw std::invalid_argument(
        "RunNetworkSimulation: packet_count must be >= 1");
  }
  MakeChannelConfig(options).Validate();

  scratch.BeginRun();
  const util::Rng root(options.seed);
  // N=1 never joins a shared medium (the generic path only builds one for
  // shared_medium && nodes > 1), so the uncontended fast paths stay on.
  NodeStack stack(scratch.simulator, options, root, nullptr, 0, &scratch);

  trace::TraceContext run_ctx;
  run_ctx.tracer = options.tracer;
  run_ctx.counters = options.collect_counters ? &scratch.run_registry : nullptr;
  if (run_ctx.Active()) scratch.simulator.AttachTrace(run_ctx);
  if (options.collect_counters) stack.SetRunRegistry(&scratch.run_registry);

  stack.AttachTrace(options.tracer, options.collect_counters);
  stack.Start();
  scratch.simulator.Run();
  return stack.Harvest(scratch.simulator.Now(),
                       scratch.simulator.EventsExecuted());
}

}  // namespace wsnlink::node
