#include "node/link_simulation.h"

#include <stdexcept>

#include "app/traffic_gen.h"
#include "link/link_layer.h"
#include "mac/csma_mac.h"
#include "mac/lpl_mac.h"
#include "phy/cc2420.h"
#include "sim/simulator.h"

namespace wsnlink::node {

channel::ChannelConfig MakeChannelConfig(const SimulationOptions& options) {
  channel::ChannelConfig config;
  config.distance_m = options.config.distance_m;
  config.spatial_shadow_db = options.spatial_shadow_db;
  if (options.disable_temporal_shadowing) {
    config.use_default_temporal_sigma = false;
    config.shadowing.sigma_db = 0.0;
  }
  if (options.disable_interference) {
    config.noise.burst_rate_hz = 0.0;
  }
  config.interferer.duty_cycle = options.interferer_duty_cycle;
  config.interferer.rx_power_dbm = options.interferer_power_dbm;
  config.mobility.speed_mps = options.mobility_speed_mps;
  config.mobility.min_distance_m = options.mobility_min_m;
  config.mobility.max_distance_m = options.mobility_max_m;
  return config;
}

SimulationResult RunLinkSimulation(const SimulationOptions& options) {
  options.config.Validate();
  if (options.packet_count < 1) {
    throw std::invalid_argument("RunLinkSimulation: packet_count must be >= 1");
  }

  util::Rng root(options.seed);
  sim::Simulator simulator;

  std::unique_ptr<channel::BerModel> ber;
  if (options.analytic_ber) {
    ber = std::make_unique<channel::AnalyticOQpskBer>();
  } else {
    ber = channel::MakeDefaultBerModel();
  }
  channel::Channel channel(MakeChannelConfig(options), std::move(ber),
                           root.Derive("channel"));

  std::unique_ptr<mac::Mac> mac;
  mac::CsmaMac* csma = nullptr;
  if (options.mac == MacKind::kCsma) {
    mac::MacParams mac_params;
    mac_params.max_tries = options.config.max_tries;
    mac_params.retry_delay =
        sim::FromMilliseconds(options.config.retry_delay_ms);
    mac_params.pa_level = options.config.pa_level;
    auto owned = std::make_unique<mac::CsmaMac>(simulator, channel, mac_params,
                                                root.Derive("mac"));
    csma = owned.get();
    mac = std::move(owned);
  }
  double receiver_idle_duty = 1.0;
  if (options.mac == MacKind::kLpl) {
    mac::LplParams lpl_params;
    lpl_params.wakeup_interval =
        sim::FromMilliseconds(options.lpl_wakeup_interval_ms);
    lpl_params.max_tries = options.config.max_tries;
    lpl_params.retry_delay =
        sim::FromMilliseconds(options.config.retry_delay_ms);
    lpl_params.pa_level = options.config.pa_level;
    auto owned = std::make_unique<mac::LplMac>(simulator, channel, lpl_params,
                                               root.Derive("mac"));
    receiver_idle_duty = owned->ReceiverIdleDutyCycle();
    mac = std::move(owned);
  }

  link::LinkLayer link(simulator, *mac, options.config.queue_capacity);
  // The run's log sizes are known up front: one record per generated packet
  // and at most max_tries attempts each. Reserving avoids mid-run regrowth.
  link.MutableLog().Reserve(
      static_cast<std::size_t>(options.packet_count),
      static_cast<std::size_t>(options.packet_count) *
          static_cast<std::size_t>(options.config.max_tries));

  app::PacketSink sink;
  sink.Reserve(static_cast<std::size_t>(options.packet_count));
  link.SetDeliveryCallback(
      [&sink](const mac::DeliveryInfo& info) { sink.OnDelivery(info); });

  app::TrafficParams traffic;
  traffic.pkt_interval = sim::FromMilliseconds(options.config.pkt_interval_ms);
  traffic.payload_bytes = options.config.payload_bytes;
  traffic.packet_count = options.packet_count;
  traffic.poisson = options.poisson_arrivals;
  app::TrafficGenerator generator(simulator, link, traffic,
                                  root.Derive("traffic"));

  // Observability: one registry per run; the tracer (if any) is the
  // caller's. Attached before the first event fires so the counter ids are
  // registered and the trace covers the whole run.
  trace::CounterRegistry registry;
  trace::TraceContext ctx;
  ctx.tracer = options.tracer;
  ctx.counters = options.collect_counters ? &registry : nullptr;
  if (ctx.Active()) {
    simulator.AttachTrace(ctx);
    mac->AttachTrace(ctx);
    link.AttachTrace(ctx);
    generator.AttachTrace(ctx);
    sink.AttachTrace(ctx);
  }

  SimulationResult result;
  generator.Start();
  simulator.Run();

  result.log = std::move(link.MutableLog());
  result.unique_delivered = sink.UniqueCount();
  result.duplicates = sink.DuplicateCount();
  result.unique_payload_bytes = sink.UniquePayloadBytes();
  result.last_delivery_at = sink.LastDeliveryAt();
  result.end_time = simulator.Now();
  result.generated = generator.Generated();
  result.mean_snr_db = channel.MeanSnrDb(
      phy::OutputPowerDbm(options.config.pa_level));
  result.rssi_stats = sink.RssiStats();
  result.snr_stats = sink.SnrStats();
  result.lqi_stats = sink.LqiStats();
  result.cca_busy = csma != nullptr ? csma->CcaBusyCount() : 0;
  result.receiver_idle_duty = receiver_idle_duty;
  result.events_executed = simulator.EventsExecuted();
  if (ctx.counters != nullptr) result.counters = registry.Snapshot();
  return result;
}

}  // namespace wsnlink::node
