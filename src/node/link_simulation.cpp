#include "node/link_simulation.h"

#include "node/network_simulation.h"

namespace wsnlink::node {

channel::ChannelConfig MakeChannelConfig(const SimulationOptions& options) {
  channel::ChannelConfig config;
  config.distance_m = options.config.distance_m;
  config.spatial_shadow_db = options.spatial_shadow_db;
  if (options.disable_temporal_shadowing) {
    config.use_default_temporal_sigma = false;
    config.shadowing.sigma_db = 0.0;
  }
  if (options.disable_interference) {
    config.noise.burst_rate_hz = 0.0;
  }
  config.interferer.duty_cycle = options.interferer_duty_cycle;
  config.interferer.rx_power_dbm = options.interferer_power_dbm;
  config.mobility.speed_mps = options.mobility_speed_mps;
  config.mobility.min_distance_m = options.mobility_min_m;
  config.mobility.max_distance_m = options.mobility_max_m;
  // Reject inconsistent placements (mobility bounds, distances) here, with
  // the options still in hand, instead of simulating nonsense.
  config.Validate();
  return config;
}

SimulationResult RunLinkSimulation(const SimulationOptions& options) {
  // The single link is the N=1 network: one stack, no shared medium. The
  // collapse merges the node- and run-scoped counters back into the single
  // snapshot this function has always returned — bit-identical to the
  // pre-refactor inline assembly.
  return CollapseToSingleLink(RunNetworkSimulation(SingleLinkNetwork(options)));
}

}  // namespace wsnlink::node
