// Optimistic (Time-Warp style) parallel engine for the network simulation.
//
// Partitions the topology into logical processes (LPs) of contiguous node
// ranges, each with its own event kernel and local virtual time, and runs
// them speculatively on the shared work-stealing pool in bounded lookahead
// windows. Causality violations are detected through the shared-medium
// ledger: every LP executes against a per-LP Medium view that records the
// frames it radiates and the queries it answers; after each window the
// logged reads are re-evaluated against everyone's frames and any LP whose
// answers changed rolls back (kernel snapshot + per-node stack snapshots +
// counter values, all RNG lineages included) and re-executes. When the
// window reaches a fixpoint it commits: frames move to the committed
// ledger, medium statistics fold into the run totals, GVT advances to the
// window edge and frames beyond any future query's reach are fossil-
// collected (channel::kMediumRetentionWindow).
//
// Bit-identity contract: the kernel's lane-structured event keys
// (sim/simulator.h) make same-time event order a pure function of
// (time, node, per-node sequence) — independent of which simulator runs
// the node — and the view's visibility filter admits exactly the frames a
// query would have seen in the sequential interleaving. The committed
// execution is therefore *identical* to the one-kernel run: results,
// per-packet logs, counters and medium statistics match byte for byte for
// every LP count and thread count, including --sim-threads 1.
#pragma once

#include "node/network_simulation.h"

namespace wsnlink::node {

/// Runs `options` through the optimistic LP engine with `lp_count` logical
/// processes executing on at most `max_parallel` threads. Requires at least
/// two nodes, a null tracer (event traces need the sequential interleaving)
/// and nodes.size() within the kernel's lane limit; RunNetworkSimulation
/// checks all of that before dispatching here. Results are byte-identical
/// to the sequential engine.
[[nodiscard]] NetworkResult RunNetworkSimulationTimeWarp(
    const NetworkOptions& options, unsigned lp_count, unsigned max_parallel);

}  // namespace wsnlink::node
