// N-node shared-medium network simulation.
//
// Generalises the single sender→receiver experiment to N sender stacks
// contending for one sink over a shared medium (channel/medium.h): CCA
// senses real ongoing transmissions from the other nodes, and overlapping
// frames at the receiver collide (SINR capture or destructive loss). This
// replaces the paper's Sec. VIII-D synthetic "collision factor"
// (SimulationOptions::interferer_duty_cycle) as the default contention
// mechanism — the synthetic interferer remains available as an ablation by
// disabling the shared medium.
//
// The N=1 case is the old single-link simulation, bit for bit:
// RunLinkSimulation delegates here and collapses the result, so every
// existing caller (sweeps, campaigns, examples, goldens) is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/medium.h"
#include "node/link_simulation.h"

namespace wsnlink::node {

/// Placement and traffic of one sender in the topology.
struct NodeSpec {
  /// The node's stack configuration; `config.distance_m` is its distance
  /// to the sink.
  core::StackConfig config;
  /// Static spatial shadowing offset of this placement, dB.
  double spatial_shadow_db = 0.0;
  /// Packets this node generates; 0 inherits NetworkOptions::base.
  int packet_count = 0;
};

/// Topology spec: N senders at given distances → one sink.
struct NetworkOptions {
  /// Shared run knobs (seed, MAC kind, arrival process, ablation flags,
  /// tracer, counters). Per-node fields overridden by NodeSpec: config,
  /// spatial_shadow_db, packet_count.
  SimulationOptions base;
  /// One entry per sender; must be non-empty.
  std::vector<NodeSpec> nodes;
  /// Couple the senders through a shared medium (real contention). With
  /// false — or with a single node — every stack keeps a private air and
  /// only the synthetic interferer remains (the paper's approximation).
  bool shared_medium = true;
  /// SINR capture threshold of the shared medium, dB.
  double capture_margin_db = 3.0;
  /// Worker threads for the optimistic parallel engine (node/timewarp.h).
  /// 1 (the default) runs the sequential kernel; >= 2 partitions the
  /// topology into logical processes and executes them speculatively, with
  /// results byte-identical to the sequential run. Single-node topologies
  /// and runs with a tracer attached always use the sequential kernel
  /// (event traces need the global interleaving). Must be >= 1.
  int sim_threads = 1;
};

/// The N=1 topology equivalent to RunLinkSimulation(options).
[[nodiscard]] NetworkOptions SingleLinkNetwork(const SimulationOptions& options);

/// N identical senders (base's config) at the given sink distances.
[[nodiscard]] NetworkOptions UniformNetwork(
    const SimulationOptions& base, const std::vector<double>& distances_m);

/// Per-node and aggregate outcome of a network run.
struct NetworkResult {
  /// One entry per sender, in NetworkOptions::nodes order. end_time and
  /// events_executed repeat the shared kernel's run envelope.
  std::vector<SimulationResult> nodes;
  sim::Time end_time = 0;
  std::uint64_t events_executed = 0;

  /// Shared-medium activity (all zero when the medium was inactive).
  channel::MediumStats medium;
  bool medium_active = false;

  /// Run-scoped counters (the kernel's sim.* series; empty when counters
  /// are off).
  std::vector<trace::CounterSample> run_counters;
  /// Sum of every node's counters plus run_counters plus (when active) the
  /// medium.* samples; sorted by name. Empty when counters are off.
  std::vector<trace::CounterSample> aggregate_counters;

  // Aggregate tallies over all nodes.
  std::uint64_t generated = 0;         ///< packets offered by all sources
  std::uint64_t delivered_unique = 0;  ///< unique packets decoded at sinks
  std::uint64_t attempts = 0;          ///< data frames radiated
  std::uint64_t acked_packets = 0;     ///< packets finished with an ACK
  std::uint64_t queue_drops = 0;       ///< packets lost at full queues
  std::uint64_t cca_busy = 0;          ///< carrier-sense busy verdicts
  /// Fraction of data-frame attempts the receiver failed to decode.
  double per = 0.0;
  /// End-to-end loss: 1 - delivered_unique / generated.
  double plr_total = 0.0;
};

/// Runs the network to completion. Deterministic in (options): node i's
/// random lineage is root for i=0 (the single-link lineage) and
/// root.Derive("node-i") otherwise, so adding senders never perturbs the
/// streams of existing ones.
[[nodiscard]] NetworkResult RunNetworkSimulation(const NetworkOptions& options);

/// Converts a 1-node NetworkResult into the legacy SimulationResult
/// (merging the node's counters with the run-scoped ones exactly as the
/// pre-refactor single registry reported them). Requires nodes.size() == 1.
[[nodiscard]] SimulationResult CollapseToSingleLink(NetworkResult&& network);

namespace detail {

/// Folds a NodeSpec over the shared base options into the per-node
/// SimulationOptions a NodeStack consumes, validating as the single-link
/// runner always has. Shared between the sequential and optimistic
/// engines so both build identical stacks.
[[nodiscard]] SimulationOptions ResolveNodeOptions(const NetworkOptions& options,
                                                   const NodeSpec& spec);

/// Computes the aggregate tallies (PER, PLR, drops, ...) over
/// `result.nodes` and — when `collect_counters` — the merged aggregate
/// counter snapshot from the per-node counters, `result.run_counters` and
/// the medium.* samples. Both engines finish through this, which is what
/// keeps their aggregates byte-identical.
void FinalizeNetworkAggregates(NetworkResult& result, bool collect_counters);

}  // namespace detail

}  // namespace wsnlink::node
