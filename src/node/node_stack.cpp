#include "node/node_stack.h"

#include <utility>

#include "mac/csma_mac.h"
#include "mac/lpl_mac.h"
#include "phy/cc2420.h"

namespace wsnlink::node {

NodeStack::NodeStack(sim::Simulator& simulator,
                     const SimulationOptions& options, util::Rng root,
                     channel::Medium* medium, int node_id,
                     LinkRunScratch* scratch)
    : options_(options),
      node_id_(node_id),
      arena_(scratch != nullptr ? &scratch->arena : &own_arena_),
      registry_(scratch != nullptr ? &scratch->node_registry
                                   : &own_registry_) {
  const channel::BerModel* ber =
      options_.analytic_ber
          ? static_cast<const channel::BerModel*>(&analytic_ber_)
          : static_cast<const channel::BerModel*>(&calibrated_ber_);
  channel_ = arena_->New<channel::Channel>(MakeChannelConfig(options_), ber,
                                           root.Derive("channel"));
  if (medium != nullptr) channel_->AttachMedium(medium, node_id_);

  if (options_.mac == MacKind::kCsma) {
    mac::MacParams mac_params;
    mac_params.max_tries = options_.config.max_tries;
    mac_params.retry_delay =
        sim::FromMilliseconds(options_.config.retry_delay_ms);
    mac_params.pa_level = options_.config.pa_level;
    mac_ = arena_->New<mac::CsmaMac>(simulator, *channel_, mac_params,
                                     root.Derive("mac"));
  }
  if (options_.mac == MacKind::kLpl) {
    mac::LplParams lpl_params;
    lpl_params.wakeup_interval =
        sim::FromMilliseconds(options_.lpl_wakeup_interval_ms);
    lpl_params.max_tries = options_.config.max_tries;
    lpl_params.retry_delay =
        sim::FromMilliseconds(options_.config.retry_delay_ms);
    lpl_params.pa_level = options_.config.pa_level;
    auto* lpl = arena_->New<mac::LplMac>(simulator, *channel_, lpl_params,
                                         root.Derive("mac"));
    receiver_idle_duty_ = lpl->ReceiverIdleDutyCycle();
    mac_ = lpl;
  }

  link::LinkLayer::Storage link_storage;
  if (scratch != nullptr) {
    link_storage.queue = &scratch->queue_buf;
    link_storage.open_records = &scratch->open_buf;
  }
  link_ = arena_->New<link::LinkLayer>(
      simulator, *mac_, options_.config.queue_capacity, link_storage);
  if (scratch != nullptr) {
    link_->MutableLog().AdoptStorage(std::move(scratch->packet_buf),
                                     std::move(scratch->attempt_buf));
    sink_.AttachStorage(&scratch->seen_buf, &scratch->reception_buf);
  }
  // The run's log sizes are known up front: one record per generated packet
  // and at most max_tries attempts each. Reserving avoids mid-run regrowth.
  link_->MutableLog().Reserve(
      static_cast<std::size_t>(options_.packet_count),
      static_cast<std::size_t>(options_.packet_count) *
          static_cast<std::size_t>(options_.config.max_tries));

  sink_.Reserve(static_cast<std::size_t>(options_.packet_count));
  link_->SetDeliveryCallback(
      [this](const mac::DeliveryInfo& info) { sink_.OnDelivery(info); });

  app::TrafficParams traffic;
  traffic.pkt_interval = sim::FromMilliseconds(options_.config.pkt_interval_ms);
  traffic.payload_bytes = options_.config.payload_bytes;
  traffic.packet_count = options_.packet_count;
  traffic.poisson = options_.poisson_arrivals;
  generator_ = arena_->New<app::TrafficGenerator>(simulator, *link_, traffic,
                                                  root.Derive("traffic"));
}

void NodeStack::AttachTrace(trace::Tracer* tracer, bool collect_counters) {
  collect_counters_ = collect_counters;
  trace::TraceContext ctx;
  ctx.tracer = tracer;
  ctx.counters = collect_counters ? registry_ : nullptr;
  ctx.node = node_id_;
  if (!ctx.Active()) return;
  mac_->AttachTrace(ctx);
  link_->AttachTrace(ctx);
  generator_->AttachTrace(ctx);
  sink_.AttachTrace(ctx);
}

void NodeStack::Start() { generator_->Start(); }

void NodeStack::SaveState(Snapshot& out) const {
  channel_->SaveState(out.channel);
  mac_->SaveState(out.mac);
  link_->SaveState(out.link);
  sink_.SaveState(out.sink);
  generator_->SaveState(out.traffic);
  registry_->SaveValues(out.counters);
}

void NodeStack::RestoreState(const Snapshot& snapshot) {
  channel_->RestoreState(snapshot.channel);
  mac_->RestoreState(snapshot.mac);
  link_->RestoreState(snapshot.link);
  sink_.RestoreState(snapshot.sink);
  generator_->RestoreState(snapshot.traffic);
  registry_->RestoreValues(snapshot.counters);
}

SimulationResult NodeStack::Harvest(sim::Time end_time,
                                    std::uint64_t events_executed) {
  SimulationResult result;
  result.log = std::move(link_->MutableLog());
  result.unique_delivered = sink_.UniqueCount();
  result.duplicates = sink_.DuplicateCount();
  result.unique_payload_bytes = sink_.UniquePayloadBytes();
  result.last_delivery_at = sink_.LastDeliveryAt();
  result.end_time = end_time;
  result.generated = generator_->Generated();
  result.mean_snr_db =
      channel_->MeanSnrDb(phy::OutputPowerDbm(options_.config.pa_level));
  result.rssi_stats = sink_.RssiStats();
  result.snr_stats = sink_.SnrStats();
  result.lqi_stats = sink_.LqiStats();
  result.cca_busy = mac_->CcaBusyCount();
  result.receiver_idle_duty = receiver_idle_duty_;
  result.events_executed = events_executed;
  if (collect_counters_) {
    result.counters = run_registry_ != nullptr
                          ? trace::SnapshotMerged(*registry_, *run_registry_)
                          : registry_->Snapshot();
  }
  return result;
}

}  // namespace wsnlink::node
