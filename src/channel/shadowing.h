// Temporal shadowing (slow fading) process.
//
// The paper observes (Fig. 4) that RSSI is not stable over time in the
// hallway, with no consistent correlation to output power, and that the 35 m
// position shows markedly larger deviation (people moving near a kitchen and
// meeting room). We model the temporal component as a first-order
// Gauss-Markov (AR(1) / discretised Ornstein-Uhlenbeck) process: stationary
// N(0, sigma(d)) with exponential autocorrelation over a coherence time.
// This temporal SNR variation is also what smooths the PER-vs-SNR transition
// (Sec. III-B) relative to the sharp analytic DSSS cliff.
#pragma once

#include "sim/time.h"
#include "util/rng.h"

namespace wsnlink::channel {

/// Parameters of the temporal shadowing process.
struct ShadowingParams {
  /// Stationary standard deviation in dB.
  double sigma_db = 1.2;
  /// Autocorrelation time constant: correlation between samples dt apart is
  /// exp(-dt / coherence).
  sim::Duration coherence = 2 * sim::kSecond;
};

/// Distance-dependent default deviation reproducing the paper's Fig. 4:
/// moderate everywhere, largest at 35 m (human shadowing near that spot).
[[nodiscard]] double DefaultTemporalSigmaDb(double distance_m) noexcept;

/// Lazily-evaluated AR(1) shadowing process.
///
/// Sample(t) may only be called with non-decreasing t (the simulator's
/// clock); it advances the process state by the elapsed interval.
class ShadowingProcess {
 public:
  ShadowingProcess(ShadowingParams params, util::Rng rng);

  /// Shadowing offset in dB at simulated time `now`.
  double Sample(sim::Time now);

  [[nodiscard]] const ShadowingParams& Params() const noexcept { return params_; }

 private:
  ShadowingParams params_;
  util::Rng rng_;
  sim::Time last_time_ = 0;
  double value_ = 0.0;
  bool initialised_ = false;
};

}  // namespace wsnlink::channel
