// Temporal shadowing (slow fading) process.
//
// The paper observes (Fig. 4) that RSSI is not stable over time in the
// hallway, with no consistent correlation to output power, and that the 35 m
// position shows markedly larger deviation (people moving near a kitchen and
// meeting room). We model the temporal component as a first-order
// Gauss-Markov (AR(1) / discretised Ornstein-Uhlenbeck) process: stationary
// N(0, sigma(d)) with exponential autocorrelation over a coherence time.
// This temporal SNR variation is also what smooths the PER-vs-SNR transition
// (Sec. III-B) relative to the sharp analytic DSSS cliff.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace wsnlink::channel {

/// Parameters of the temporal shadowing process.
struct ShadowingParams {
  /// Stationary standard deviation in dB.
  double sigma_db = 1.2;
  /// Autocorrelation time constant: correlation between samples dt apart is
  /// exp(-dt / coherence).
  sim::Duration coherence = 2 * sim::kSecond;
};

/// Distance-dependent default deviation reproducing the paper's Fig. 4:
/// moderate everywhere, largest at 35 m (human shadowing near that spot).
[[nodiscard]] double DefaultTemporalSigmaDb(double distance_m) noexcept;

/// Lazily-evaluated AR(1) shadowing process.
///
/// Sample(t) may only be called with non-decreasing t (the simulator's
/// clock); it advances the process state by the elapsed interval.
class ShadowingProcess {
 public:
  ShadowingProcess(ShadowingParams params, util::Rng rng);

  /// Shadowing offset in dB at simulated time `now`.
  double Sample(sim::Time now);

  [[nodiscard]] const ShadowingParams& Params() const noexcept { return params_; }

  /// Mutable-state image for speculative save/restore (the optimistic
  /// engine rolls the process — including its RNG lineage — back to the
  /// last committed instant).
  struct State {
    util::Rng rng;
    sim::Time last_time = 0;
    double value = 0.0;
    bool initialised = false;
  };

  void SaveState(State& out) const {
    out.rng = rng_;
    out.last_time = last_time_;
    out.value = value_;
    out.initialised = initialised_;
  }

  void RestoreState(const State& state) {
    rng_ = state.rng;
    last_time_ = state.last_time;
    value_ = state.value;
    initialised_ = state.initialised;
  }

 private:
  // wsnstatic:transient(params_): process configuration fixed at construction; never mutated during a run
  ShadowingParams params_;
  util::Rng rng_;
  sim::Time last_time_ = 0;
  double value_ = 0.0;
  bool initialised_ = false;
};

/// Structure-of-arrays bank of K independent AR(1) shadowing processes
/// advanced in lockstep on a shared clock.
///
/// Lane i's sample sequence is bit-identical to a ShadowingProcess built
/// from (params[i], rngs[i]) and called with the same time sequence: the
/// update is the same plain elementwise arithmetic over contiguous state
/// arrays (auto-vectorizable, no intrinsics), and the RNG lanes advance by
/// exactly the scalar draw count (two uniforms per Gaussian).
class ShadowingLanes {
 public:
  /// Requires params.size() == rngs.size(); validates every lane's params
  /// with the same checks (and messages) as the scalar constructor.
  ShadowingLanes(std::span<const ShadowingParams> params,
                 std::span<const util::Rng> rngs);

  [[nodiscard]] std::size_t Lanes() const noexcept { return params_.size(); }

  /// One Sample(now) per lane into `out` (size must equal Lanes()). All
  /// lanes share the clock: `now` may not decrease between calls.
  void SampleAll(sim::Time now, std::span<double> out);

 private:
  std::vector<ShadowingParams> params_;
  util::RngLanes rngs_;
  std::vector<double> value_;
  std::vector<double> rho_;    // per-call scratch
  std::vector<double> gauss_;  // per-call scratch
  sim::Time last_time_ = 0;
  bool initialised_ = false;
};

}  // namespace wsnlink::channel
