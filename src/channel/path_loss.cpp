// wsnlint:hot-path — part of the per-config inner loop; the zero-alloc
// invariant (docs/PERF.md) is linted here and measured by perf_sweep.
#include "channel/path_loss.h"

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace wsnlink::channel {

PathLoss::PathLoss(PathLossParams params) : params_(params) {
  if (params_.exponent <= 0.0) {
    throw std::invalid_argument("PathLoss: exponent must be > 0");
  }
  if (params_.sigma_db < 0.0) {
    throw std::invalid_argument("PathLoss: sigma must be >= 0");
  }
  if (params_.reference_distance_m <= 0.0) {
    throw std::invalid_argument("PathLoss: reference distance must be > 0");
  }
}

double PathLoss::MeanLossDb(double distance_m) const {
  if (distance_m <= 0.0) {
    throw std::invalid_argument("PathLoss: distance must be > 0");
  }
  return params_.reference_loss_db +
         10.0 * params_.exponent *
             std::log10(distance_m / params_.reference_distance_m);
}

void PathLoss::MeanLossDbBatch(std::span<const double> distance_m,
                               std::span<double> out) const {
  if (distance_m.size() != out.size()) {
    throw std::invalid_argument("MeanLossDbBatch: distance/out size mismatch");
  }
  for (const double d : distance_m) {
    if (d <= 0.0) {
      throw std::invalid_argument("PathLoss: distance must be > 0");
    }
  }
  // Hoisted constants; the per-element expression keeps the scalar
  // association  ref + (10 * n) * log10(d / d0)  so results match bit for
  // bit. Plain contiguous loop, no calls besides log10.
  const double ref = params_.reference_loss_db;
  const double ten_n = 10.0 * params_.exponent;
  const double d0 = params_.reference_distance_m;
  for (std::size_t i = 0; i < distance_m.size(); ++i) {
    out[i] = ref + ten_n * std::log10(distance_m[i] / d0);
  }
}

double PathLoss::MeanRssiDbm(double tx_power_dbm, double distance_m) const {
  return tx_power_dbm - MeanLossDb(distance_m);
}

double PathLoss::SampleSpatialShadow(util::Rng& rng) const {
  return rng.Gaussian(0.0, params_.sigma_db);
}

}  // namespace wsnlink::channel
