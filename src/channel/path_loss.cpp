#include "channel/path_loss.h"

#include <cmath>
#include <stdexcept>

namespace wsnlink::channel {

PathLoss::PathLoss(PathLossParams params) : params_(params) {
  if (params_.exponent <= 0.0) {
    throw std::invalid_argument("PathLoss: exponent must be > 0");
  }
  if (params_.sigma_db < 0.0) {
    throw std::invalid_argument("PathLoss: sigma must be >= 0");
  }
  if (params_.reference_distance_m <= 0.0) {
    throw std::invalid_argument("PathLoss: reference distance must be > 0");
  }
}

double PathLoss::MeanLossDb(double distance_m) const {
  if (distance_m <= 0.0) {
    throw std::invalid_argument("PathLoss: distance must be > 0");
  }
  return params_.reference_loss_db +
         10.0 * params_.exponent *
             std::log10(distance_m / params_.reference_distance_m);
}

double PathLoss::MeanRssiDbm(double tx_power_dbm, double distance_m) const {
  return tx_power_dbm - MeanLossDb(distance_m);
}

double PathLoss::SampleSpatialShadow(util::Rng& rng) const {
  return rng.Gaussian(0.0, params_.sigma_db);
}

}  // namespace wsnlink::channel
