// Bit-error-rate curves.
//
// Two models are provided:
//
// * AnalyticOQpskBer — the textbook IEEE 802.15.4 2.4 GHz O-QPSK/DSSS symbol
//   error expression. It has a very sharp SNR cliff (a couple of dB wide),
//   which is what earlier studies ([11][13] in the paper) describe.
//
// * CalibratedExponentialBer — an empirically calibrated *frame* loss law,
//   linear in frame size:
//
//     P(frame lost) = min(1, 8 * A * bytes * exp(B * snr)),
//
//   with A = 0.0012, B = -0.15. Real 802.15.4 hardware exhibits PER that
//   scales close to linearly with frame length even when the loss is far
//   from small (burst errors and DSSS symbol correction break the
//   independent-bit-error composition), and the paper's Eq. (3) is exactly
//   such a linear-in-l_D law. The coefficients are calibrated at the
//   *attempt* level: one attempt radiates the payload plus 19 B stack
//   overhead and risks an 11 B ACK on the way back, so for mid-to-large
//   payloads the attempt failure probability approximates Eq. (3),
//   PER ~ 0.0128 * l_D * exp(-0.15 * snr). BitErrorRate() reports the
//   small-loss-equivalent per-bit rate A * exp(B * snr).
//
// The choice is a pluggable polymorphic strategy so the ablation bench can
// quantify what each curve does to the reproduced figures.
#pragma once

#include <memory>
#include <span>
#include <string>

namespace wsnlink::channel {

/// Strategy interface mapping per-packet SNR to bit error probability.
class BerModel {
 public:
  virtual ~BerModel() = default;

  /// Bit error probability in [0, 0.5] for the given SNR in dB.
  [[nodiscard]] virtual double BitErrorRate(double snr_db) const = 0;

  /// Human-readable name for bench output.
  [[nodiscard]] virtual std::string Name() const = 0;

  /// Probability that a frame of `frame_bytes` bytes (PHY payload incl.
  /// overhead) is received without errors. The default composes
  /// independent bit errors: (1 - BER)^(8 * bytes). Models with measured
  /// frame-level behaviour may override.
  [[nodiscard]] virtual double FrameSuccessProbability(double snr_db,
                                                       int frame_bytes) const;

  /// Structure-of-arrays batch: out[i] = FrameSuccessProbability(snr_db[i],
  /// frame_bytes), bit for bit. The default loops the scalar virtual; models
  /// with a closed-form loss law override with a hoisted contiguous sweep
  /// the compiler can vectorize. Requires snr_db.size() == out.size().
  virtual void FrameSuccessProbabilityBatch(std::span<const double> snr_db,
                                            int frame_bytes,
                                            std::span<double> out) const;
};

/// IEEE 802.15.4 O-QPSK with DSSS (2.4 GHz PHY) analytic BER.
class AnalyticOQpskBer final : public BerModel {
 public:
  [[nodiscard]] double BitErrorRate(double snr_db) const override;
  [[nodiscard]] std::string Name() const override { return "analytic-oqpsk"; }
};

/// Calibrated linear-in-bytes frame loss matching the paper's Eq. (3).
class CalibratedExponentialBer final : public BerModel {
 public:
  /// Frame loss = min(1, 8*a*bytes*exp(b*snr)). Requires a > 0 and b < 0.
  explicit CalibratedExponentialBer(double a = 0.0012, double b = -0.15);

  [[nodiscard]] double BitErrorRate(double snr_db) const override;
  [[nodiscard]] double FrameSuccessProbability(double snr_db,
                                               int frame_bytes) const override;
  void FrameSuccessProbabilityBatch(std::span<const double> snr_db,
                                    int frame_bytes,
                                    std::span<double> out) const override;
  [[nodiscard]] std::string Name() const override { return "calibrated-exp"; }

  [[nodiscard]] double A() const noexcept { return a_; }
  [[nodiscard]] double B() const noexcept { return b_; }

 private:
  double a_;
  double b_;
};

/// Factory for the default (calibrated) curve.
[[nodiscard]] std::unique_ptr<BerModel> MakeDefaultBerModel();

}  // namespace wsnlink::channel
