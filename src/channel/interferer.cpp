#include "channel/interferer.h"

#include <stdexcept>

namespace wsnlink::channel {

InterfererProcess::InterfererProcess(InterfererParams params, util::Rng rng)
    : params_(params), rng_(rng), enabled_(params.duty_cycle > 0.0) {
  if (params_.duty_cycle < 0.0 || params_.duty_cycle >= 1.0) {
    throw std::invalid_argument("InterfererProcess: duty cycle must be in [0, 1)");
  }
  if (enabled_ && params_.frame_duration <= 0) {
    throw std::invalid_argument("InterfererProcess: frame duration must be > 0");
  }
}

void InterfererProcess::AdvanceTo(sim::Time t) {
  // Mean gap g solves  frame / (frame + g) = duty  =>  g = frame*(1-d)/d.
  const double frame_s = sim::ToSeconds(params_.frame_duration);
  const double mean_gap_s =
      frame_s * (1.0 - params_.duty_cycle) / params_.duty_cycle;
  if (!started_) {
    frame_start_ = sim::FromSeconds(rng_.Exponential(mean_gap_s));
    frame_end_ = frame_start_ + params_.frame_duration;
    started_ = true;
  }
  while (frame_end_ < t) {
    frame_start_ = frame_end_ + sim::FromSeconds(rng_.Exponential(mean_gap_s));
    frame_end_ = frame_start_ + params_.frame_duration;
  }
}

bool InterfererProcess::ActiveAt(sim::Time t) { return ActiveDuring(t, t); }

bool InterfererProcess::ActiveDuring(sim::Time start, sim::Time end) {
  if (!enabled_) return false;
  if (start > end) {
    throw std::invalid_argument("InterfererProcess: start must be <= end");
  }
  AdvanceTo(start);
  // The current window is the first one ending at/after `start`; it
  // overlaps [start, end] iff it begins before `end`.
  return frame_start_ <= end;
}

}  // namespace wsnlink::channel
