#include "channel/channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wsnlink::channel {

namespace {

ShadowingParams ResolveShadowing(const ChannelConfig& config) {
  ShadowingParams params = config.shadowing;
  if (config.use_default_temporal_sigma) {
    params.sigma_db = DefaultTemporalSigmaDb(config.distance_m);
  }
  return params;
}

}  // namespace

int SnrToLqi(double snr_db, util::Rng& rng) {
  // CC2420 LQI is chip-correlation based; empirically it saturates around
  // 106-110 on strong links and bottoms out near 50.
  const double raw = 55.0 + 2.8 * snr_db + rng.Gaussian(0.0, 2.0);
  return static_cast<int>(std::clamp(raw, 40.0, 110.0));
}

Channel::Channel(ChannelConfig config, std::unique_ptr<BerModel> ber,
                 util::Rng rng)
    : config_(config),
      path_loss_(config.path_loss),
      ber_(std::move(ber)),
      shadowing_(ResolveShadowing(config), rng.Derive("shadowing")),
      noise_(config.noise, rng.Derive("noise-floor")),
      interferer_(config.interferer, rng.Derive("interferer")),
      mobility_(config.mobility, config.distance_m),
      loss_rng_(rng.Derive("frame-loss")),
      lqi_rng_(rng.Derive("lqi")) {
  if (!ber_) throw std::invalid_argument("Channel: BER model must be non-null");
  if (config_.distance_m <= 0.0) {
    throw std::invalid_argument("Channel: distance must be > 0");
  }
}

Channel::Channel(ChannelConfig config, util::Rng rng)
    : Channel(config, MakeDefaultBerModel(), rng) {}

double Channel::PathRssiDbm(double tx_power_dbm, double distance_m) const {
  if (!rssi_cache_valid_ || tx_power_dbm != rssi_cache_tx_dbm_ ||
      distance_m != rssi_cache_dist_m_) {
    rssi_cache_tx_dbm_ = tx_power_dbm;
    rssi_cache_dist_m_ = distance_m;
    rssi_cache_value_ = path_loss_.MeanRssiDbm(tx_power_dbm, distance_m) +
                        config_.spatial_shadow_db;
    rssi_cache_valid_ = true;
  }
  return rssi_cache_value_;
}

double Channel::MeanRssiDbm(double tx_power_dbm) const {
  return path_loss_.MeanRssiDbm(tx_power_dbm, config_.distance_m) +
         config_.spatial_shadow_db;
}

double Channel::MeanSnrDb(double tx_power_dbm) const {
  return MeanRssiDbm(tx_power_dbm) - config_.noise.quiet_mean_dbm;
}

double Channel::DistanceAt(sim::Time t) const {
  return mobility_.Enabled() ? mobility_.DistanceAt(t) : config_.distance_m;
}

double Channel::SampleNoiseFloorDbm(sim::Time now) {
  return noise_.SampleDbm(now);
}

bool Channel::CcaBusy(sim::Time now) {
  return noise_.InterferenceActive(now) || interferer_.ActiveAt(now);
}

TransmissionOutcome Channel::Transmit(double tx_power_dbm, int frame_bytes,
                                      sim::Time now) {
  if (frame_bytes <= 0) {
    throw std::invalid_argument("Channel::Transmit: frame_bytes must be > 0");
  }
  TransmissionOutcome out;
  out.rssi_dbm = PathRssiDbm(tx_power_dbm, DistanceAt(now)) +
                 shadowing_.Sample(now);
  out.noise_dbm = noise_.SampleDbm(now);
  out.snr_db = out.rssi_dbm - out.noise_dbm;
  out.lqi = SnrToLqi(out.snr_db, lqi_rng_);
  if (out.rssi_dbm < config_.sensitivity_dbm ||
      out.snr_db < config_.preamble_snr_db) {
    out.received = false;
    // Keep the per-frame draw count constant for stream stability.
    loss_rng_.NextDouble();
    return out;
  }
  // Collision with a concurrent transmitter: the frame occupied the air
  // over [now - airtime, now]; any interferer overlap jams it unless our
  // signal captures the receiver.
  const auto airtime = static_cast<sim::Duration>(frame_bytes) * 32;
  const sim::Time start = now > airtime ? now - airtime : 0;
  if (interferer_.ActiveDuring(start, now)) {
    out.collided = true;
    if (out.rssi_dbm - config_.interferer.rx_power_dbm <
        config_.interferer.capture_margin_db) {
      out.received = false;
      loss_rng_.NextDouble();  // keep draw count stable
      return out;
    }
  }
  const double p_success = ber_->FrameSuccessProbability(out.snr_db, frame_bytes);
  out.received = loss_rng_.NextDouble() < p_success;
  return out;
}

}  // namespace wsnlink::channel
