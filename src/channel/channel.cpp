#include "channel/channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace wsnlink::channel {

namespace {

ShadowingParams ResolveShadowing(const ChannelConfig& config) {
  ShadowingParams params = config.shadowing;
  if (config.use_default_temporal_sigma) {
    params.sigma_db = DefaultTemporalSigmaDb(config.distance_m);
  }
  return params;
}

}  // namespace

void ChannelConfig::Validate() const {
  if (distance_m <= 0.0) {
    throw std::invalid_argument("ChannelConfig: distance must be > 0");
  }
  if (mobility.speed_mps < 0.0) {
    throw std::invalid_argument(
        "ChannelConfig: mobility speed must be >= 0 m/s");
  }
  if (mobility.speed_mps > 0.0) {
    if (mobility.min_distance_m <= 0.0 ||
        mobility.min_distance_m >= mobility.max_distance_m) {
      throw std::invalid_argument(
          "ChannelConfig: mobility requires 0 < min distance < max distance "
          "(got min=" +
          std::to_string(mobility.min_distance_m) +
          " m, max=" + std::to_string(mobility.max_distance_m) + " m)");
    }
    if (distance_m < mobility.min_distance_m ||
        distance_m > mobility.max_distance_m) {
      throw std::invalid_argument(
          "ChannelConfig: start distance " + std::to_string(distance_m) +
          " m lies outside the mobility range [" +
          std::to_string(mobility.min_distance_m) + ", " +
          std::to_string(mobility.max_distance_m) + "] m");
    }
  }
}

int SnrToLqi(double snr_db, util::Rng& rng) {
  // CC2420 LQI is chip-correlation based; empirically it saturates around
  // 106-110 on strong links and bottoms out near 50.
  const double raw = 55.0 + 2.8 * snr_db + rng.Gaussian(0.0, 2.0);
  return static_cast<int>(std::clamp(raw, 40.0, 110.0));
}

Channel::Channel(ChannelConfig config, std::unique_ptr<BerModel> ber,
                 util::Rng rng)
    : config_(config),
      path_loss_(config.path_loss),
      ber_owned_(std::move(ber)),
      ber_(ber_owned_.get()),
      shadowing_(ResolveShadowing(config), rng.Derive("shadowing")),
      noise_(config.noise, rng.Derive("noise-floor")),
      interferer_(config.interferer, rng.Derive("interferer")),
      mobility_(config.mobility, config.distance_m),
      loss_rng_(rng.Derive("frame-loss")),
      lqi_rng_(rng.Derive("lqi")) {
  if (ber_ == nullptr) {
    throw std::invalid_argument("Channel: BER model must be non-null");
  }
  config_.Validate();
}

Channel::Channel(ChannelConfig config, const BerModel* ber, util::Rng rng)
    : config_(config),
      path_loss_(config.path_loss),
      ber_(ber),
      shadowing_(ResolveShadowing(config), rng.Derive("shadowing")),
      noise_(config.noise, rng.Derive("noise-floor")),
      interferer_(config.interferer, rng.Derive("interferer")),
      mobility_(config.mobility, config.distance_m),
      loss_rng_(rng.Derive("frame-loss")),
      lqi_rng_(rng.Derive("lqi")) {
  if (ber_ == nullptr) {
    throw std::invalid_argument("Channel: BER model must be non-null");
  }
  config_.Validate();
}

Channel::Channel(ChannelConfig config, util::Rng rng)
    : Channel(config, MakeDefaultBerModel(), rng) {}

double Channel::PathRssiDbm(double tx_power_dbm, double distance_m) const {
  if (!rssi_cache_valid_ || tx_power_dbm != rssi_cache_tx_dbm_ ||
      distance_m != rssi_cache_dist_m_) {
    rssi_cache_tx_dbm_ = tx_power_dbm;
    rssi_cache_dist_m_ = distance_m;
    rssi_cache_value_ = path_loss_.MeanRssiDbm(tx_power_dbm, distance_m) +
                        config_.spatial_shadow_db;
    rssi_cache_valid_ = true;
  }
  return rssi_cache_value_;
}

double Channel::MeanRssiDbm(double tx_power_dbm) const {
  return path_loss_.MeanRssiDbm(tx_power_dbm, config_.distance_m) +
         config_.spatial_shadow_db;
}

double Channel::MeanSnrDb(double tx_power_dbm) const {
  return MeanRssiDbm(tx_power_dbm) - config_.noise.quiet_mean_dbm;
}

double Channel::DistanceAt(sim::Time t) const {
  return mobility_.Enabled() ? mobility_.DistanceAt(t) : config_.distance_m;
}

double Channel::SampleNoiseFloorDbm(sim::Time now) {
  return noise_.SampleDbm(now);
}

bool Channel::CcaBusy(sim::Time now) {
  // The medium check comes last: the first two legs advance their renewal
  // RNG streams with short-circuit semantics that pre-date multi-node, so
  // appending the RNG-free medium query keeps uncontended draw sequences
  // bit-identical.
  return noise_.InterferenceActive(now) || interferer_.ActiveAt(now) ||
         MediumBusy(now);
}

void Channel::BeginTransmission(double tx_power_dbm, sim::Time start,
                                sim::Time end) {
  if (medium_ == nullptr) return;
  medium_->Begin(node_id_, start, end,
                 PathRssiDbm(tx_power_dbm, DistanceAt(start)));
}

TransmissionOutcome Channel::Transmit(double tx_power_dbm, int frame_bytes,
                                      sim::Time now) {
  if (frame_bytes <= 0) {
    throw std::invalid_argument("Channel::Transmit: frame_bytes must be > 0");
  }
  TransmissionOutcome out;
  out.rssi_dbm = PathRssiDbm(tx_power_dbm, DistanceAt(now)) +
                 shadowing_.Sample(now);
  out.noise_dbm = noise_.SampleDbm(now);
  out.snr_db = out.rssi_dbm - out.noise_dbm;
  out.lqi = SnrToLqi(out.snr_db, lqi_rng_);
  if (out.rssi_dbm < config_.sensitivity_dbm ||
      out.snr_db < config_.preamble_snr_db) {
    out.received = false;
    // Keep the per-frame draw count constant for stream stability.
    loss_rng_.NextDouble();
    return out;
  }
  // Collision with a concurrent transmitter: the frame occupied the air
  // over [now - airtime, now]; any interferer overlap jams it unless our
  // signal captures the receiver.
  const auto airtime = static_cast<sim::Duration>(frame_bytes) * 32;
  const sim::Time start = now > airtime ? now - airtime : 0;
  if (interferer_.ActiveDuring(start, now)) {
    out.collided = true;
    if (out.rssi_dbm - config_.interferer.rx_power_dbm <
        config_.interferer.capture_margin_db) {
      out.received = false;
      loss_rng_.NextDouble();  // keep draw count stable
      return out;
    }
  }
  // Collision with a real concurrent node (shared medium): same window, but
  // the jammer's power is the actual registered sink-side RSSI of the
  // strongest overlapping frame, not a configured constant.
  if (medium_ != nullptr) {
    if (const auto strongest =
            medium_->StrongestOverlapDbm(start, now, node_id_)) {
      out.collided = true;
      const bool captured =
          out.rssi_dbm - *strongest >= medium_->CaptureMarginDb();
      medium_->NoteCollision(captured);
      if (!captured) {
        out.received = false;
        loss_rng_.NextDouble();  // keep draw count stable
        return out;
      }
    }
  }
  const double p_success = ber_->FrameSuccessProbability(out.snr_db, frame_bytes);
  out.received = loss_rng_.NextDouble() < p_success;
  return out;
}

}  // namespace wsnlink::channel
