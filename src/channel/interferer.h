// Concurrent-transmitter interference model.
//
// Sec. VIII-D: "One [factor] is concurrent transmission, which can cause
// extra packet loss due to packet collisions." This module models a nearby
// 802.15.4 transmitter that is not coordinated with our link: it puts
// frames on the air with a configurable offered load (duty cycle). Our
// sender's CCA defers while an interferer frame is on air, but collisions
// still happen when the interferer starts during our own frame (the
// hidden-window problem CCA cannot close).
#pragma once

#include "sim/time.h"
#include "util/rng.h"

namespace wsnlink::channel {

/// Parameters of the concurrent transmitter.
struct InterfererParams {
  /// Fraction of time its frames occupy the air, in [0, 1). 0 disables it.
  double duty_cycle = 0.0;
  /// On-air duration of one interferer frame.
  sim::Duration frame_duration = 4 * sim::kMillisecond;
  /// Received power of the interferer at our receiver, dBm.
  double rx_power_dbm = -70.0;
  /// Capture margin: our frame survives an overlap if its RSSI exceeds the
  /// interferer by at least this many dB.
  double capture_margin_db = 3.0;
};

/// Renewal process of interferer frames: exponential gaps sized so the
/// long-run on-air fraction equals the duty cycle.
class InterfererProcess {
 public:
  InterfererProcess(InterfererParams params, util::Rng rng);

  /// True if an interferer frame is on air at `t` (t non-decreasing).
  bool ActiveAt(sim::Time t);

  /// True if any interferer frame overlaps [start, end].
  /// Requires start <= end; both non-decreasing across calls.
  bool ActiveDuring(sim::Time start, sim::Time end);

  [[nodiscard]] const InterfererParams& Params() const noexcept {
    return params_;
  }

  /// Mutable-state image for speculative save/restore (`enabled_` is
  /// configuration, not run state).
  struct State {
    util::Rng rng;
    sim::Time frame_start = 0;
    sim::Time frame_end = -1;
    bool started = false;
  };

  void SaveState(State& out) const {
    out.rng = rng_;
    out.frame_start = frame_start_;
    out.frame_end = frame_end_;
    out.started = started_;
  }

  void RestoreState(const State& state) {
    rng_ = state.rng;
    frame_start_ = state.frame_start;
    frame_end_ = state.frame_end;
    started_ = state.started;
  }

 private:
  void AdvanceTo(sim::Time t);

  // wsnstatic:transient(params_, enabled_): process configuration fixed at construction; never mutated during a run
  InterfererParams params_;
  util::Rng rng_;
  bool enabled_;
  sim::Time frame_start_ = 0;
  sim::Time frame_end_ = -1;
  bool started_ = false;
};

}  // namespace wsnlink::channel
