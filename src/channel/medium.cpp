#include "channel/medium.h"

#include <algorithm>
#include <stdexcept>

namespace wsnlink::channel {

Medium::Medium(double capture_margin_db)
    : capture_margin_db_(capture_margin_db) {
  if (capture_margin_db < 0.0) {
    throw std::invalid_argument("Medium: capture margin must be >= 0 dB");
  }
}

void Medium::Begin(int node, sim::Time start, sim::Time end,
                   double sink_rssi_dbm) {
  if (end <= start) {
    throw std::invalid_argument("Medium::Begin: frame must have end > start");
  }
  // Prune frames that ended long before any query can still reach them.
  // Simulated time is monotonic, so everything retained stays relevant.
  if (start > kMediumRetentionWindow) {
    const sim::Time horizon = start - kMediumRetentionWindow;
    std::erase_if(active_,
                  [horizon](const Frame& f) { return f.end < horizon; });
  }
  active_.push_back({node, start, end, sink_rssi_dbm});
  ++stats_.frames;
}

bool Medium::BusyAt(sim::Time t, int listener) {
  for (const Frame& f : active_) {
    if (f.node != listener && f.start <= t && t < f.end) {
      ++stats_.busy_hits;
      return true;
    }
  }
  return false;
}

std::optional<double> Medium::StrongestOverlapDbm(sim::Time start,
                                                  sim::Time end,
                                                  int node) const {
  std::optional<double> strongest;
  for (const Frame& f : active_) {
    if (f.node == node) continue;
    // Open-interval overlap: frames that merely touch at an endpoint do not
    // collide (the receiver resynchronises between back-to-back frames).
    if (f.start < end && f.end > start) {
      if (!strongest || f.sink_rssi_dbm > *strongest) {
        strongest = f.sink_rssi_dbm;
      }
    }
  }
  return strongest;
}

void Medium::NoteCollision(bool captured) noexcept {
  ++stats_.collisions;
  if (captured) ++stats_.captures;
}

}  // namespace wsnlink::channel
