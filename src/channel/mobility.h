// Node mobility model.
//
// Sec. VIII-D: "the environment where the WSN is deployed and the mobility
// of a node also have a possibly large impact on the performance". This
// module makes the sender-receiver distance a function of time: a constant-
// speed patrol between two waypoints (triangle wave), the standard simple
// mobility pattern for a link study. The channel recomputes path loss per
// transmission from the instantaneous distance, so a walking node sweeps
// the link through every SNR zone — the scenario the adaptive controller
// (core/opt/adaptive.h) exists for.
#pragma once

#include "sim/time.h"

namespace wsnlink::channel {

/// Parameters of the waypoint patrol.
struct MobilityParams {
  /// 0 disables mobility (the distance stays at the configured value).
  double speed_mps = 0.0;
  /// Patrol endpoints in metres; requires 0 < min < max when enabled.
  double min_distance_m = 10.0;
  double max_distance_m = 35.0;
};

/// Deterministic triangle-wave distance profile.
class MobilityModel {
 public:
  /// `start_distance_m` is where the node begins (clamped into range);
  /// it initially walks outward (towards max).
  MobilityModel(MobilityParams params, double start_distance_m);

  /// True if the node moves at all.
  [[nodiscard]] bool Enabled() const noexcept { return params_.speed_mps > 0.0; }

  /// Distance at simulated time t (pure; callable in any order).
  [[nodiscard]] double DistanceAt(sim::Time t) const;

  /// Time to walk one full period (out and back). Requires Enabled().
  [[nodiscard]] sim::Duration Period() const;

  [[nodiscard]] const MobilityParams& Params() const noexcept { return params_; }

 private:
  MobilityParams params_;
  double start_offset_m_ = 0.0;  // position along the unfolded walk at t=0
};

}  // namespace wsnlink::channel
