// The composed link channel.
//
// Combines path loss, a static spatial shadowing offset, the temporal
// shadowing process, the noise-floor process and a BER curve into a single
// object the PHY asks one question of: "this frame, these bytes, this power,
// now — does it arrive, and with what RSSI/LQI?".
#pragma once

#include <memory>

#include "channel/ber.h"
#include "channel/interferer.h"
#include "channel/medium.h"
#include "channel/mobility.h"
#include "channel/noise.h"
#include "channel/path_loss.h"
#include "channel/shadowing.h"
#include "sim/time.h"
#include "util/rng.h"

namespace wsnlink::channel {

/// Full channel configuration for one sender-receiver placement.
struct ChannelConfig {
  /// Sender-receiver distance in metres. Must be > 0.
  double distance_m = 20.0;
  PathLossParams path_loss{};
  /// Static per-position shadowing offset in dB. The default 0 reproduces
  /// the calibrated "hallway mean" placement; experiment sweeps that want
  /// spot-to-spot scatter (Fig. 3) sample it via PathLoss.
  double spatial_shadow_db = 0.0;
  /// Temporal shadowing. If `use_default_temporal_sigma` is true the sigma
  /// is derived from distance (DefaultTemporalSigmaDb), reproducing the
  /// paper's larger deviation at 35 m.
  ShadowingParams shadowing{};
  bool use_default_temporal_sigma = true;
  NoiseParams noise{};
  /// Concurrent 802.15.4 transmitter (Sec. VIII-D's collision factor);
  /// duty_cycle = 0 (default) disables it.
  InterfererParams interferer{};
  /// Node mobility (Sec. VIII-D's mobility factor); speed 0 (default)
  /// keeps the distance fixed at `distance_m`.
  MobilityParams mobility{};
  /// Receiver sensitivity: frames whose RSSI falls below this are never
  /// detected regardless of SNR (CC2420 datasheet: -95 dBm typical; we use
  /// the harder floor where the preamble cannot be acquired at all).
  double sensitivity_dbm = -97.0;
  /// Preamble-acquisition SNR threshold: below this instantaneous SNR the
  /// receiver never synchronises, so the frame is lost before bit errors
  /// even matter. This models the effective death of the link below ~5 dB
  /// that the paper's Fig. 6 shows (the calibrated BER curve alone is only
  /// valid inside the grey zone and above).
  double preamble_snr_db = 3.0;

  /// Throws std::invalid_argument with a field-naming message when the
  /// configuration is inconsistent (distance, mobility bounds). Called by
  /// the Channel constructor; exposed so option mappers can fail early.
  void Validate() const;
};

/// Outcome of one frame transmission attempt over the channel.
struct TransmissionOutcome {
  /// True if the frame was decoded by the receiver.
  bool received = false;
  /// Received signal strength at the receiver in dBm.
  double rssi_dbm = 0.0;
  /// Instantaneous noise floor during the frame, dBm.
  double noise_dbm = 0.0;
  /// Signal-to-noise ratio in dB (rssi - noise).
  double snr_db = 0.0;
  /// CC2420-style link quality indicator (roughly 50..110).
  int lqi = 0;
  /// True if the frame overlapped a concurrent transmission (whether or
  /// not capture saved it).
  bool collided = false;
};

/// A point-to-point radio channel between one sender and one receiver.
class Channel {
 public:
  /// `ber` must be non-null. `rng` seeds the channel's private random
  /// streams (shadowing / noise / bit errors are derived sub-streams).
  Channel(ChannelConfig config, std::unique_ptr<BerModel> ber, util::Rng rng);

  /// Non-owning BER variant for arena/scratch construction: `ber` must be
  /// non-null and outlive the channel. Behaviour is identical to the owning
  /// constructor with the same model — only the lifetime contract differs.
  Channel(ChannelConfig config, const BerModel* ber, util::Rng rng);

  /// Convenience constructor using the default calibrated BER model.
  Channel(ChannelConfig config, util::Rng rng);

  /// Simulates one frame of `frame_bytes` total PHY bytes sent at
  /// `tx_power_dbm`, at simulated time `now` (non-decreasing across calls).
  TransmissionOutcome Transmit(double tx_power_dbm, int frame_bytes,
                               sim::Time now);

  /// Mean RSSI for this placement (path loss + spatial offset, no temporal
  /// variation) — what a long-term average measurement would converge to.
  /// With mobility enabled this is the value at the configured start
  /// distance; use DistanceAt for the instantaneous geometry.
  [[nodiscard]] double MeanRssiDbm(double tx_power_dbm) const;

  /// Sender-receiver distance at simulated time t (constant without
  /// mobility).
  [[nodiscard]] double DistanceAt(sim::Time t) const;

  /// Mean SNR using the configured quiet noise mean; the "link quality"
  /// axis used throughout the paper's figures.
  [[nodiscard]] double MeanSnrDb(double tx_power_dbm) const;

  /// Samples the instantaneous noise floor (for noise-floor studies and for
  /// the MAC's CCA). Time must be non-decreasing across all channel calls.
  double SampleNoiseFloorDbm(sim::Time now);

  /// True if energy above the CCA threshold is present (interference burst,
  /// synthetic interferer, or — with a medium attached — a concurrent
  /// frame from another node).
  bool CcaBusy(sim::Time now);

  /// Joins a shared multi-transmitter medium as `node_id`. The medium must
  /// outlive the channel. All medium queries are RNG-free, so attaching
  /// never perturbs this channel's random streams.
  void AttachMedium(Medium* medium, int node_id) noexcept {
    medium_ = medium;
    node_id_ = node_id;
  }

  /// True when this channel senses real concurrent transmitters (a medium
  /// is attached). MACs use this to disable single-user fast paths.
  [[nodiscard]] bool ContendedMedium() const noexcept {
    return medium_ != nullptr;
  }

  /// True when another node's frame is on the air at `now` (always false
  /// without a medium). RNG-free, unlike CcaBusy.
  bool MediumBusy(sim::Time now) {
    return medium_ != nullptr && medium_->BusyAt(now, node_id_);
  }

  /// Announces a frame this node radiates over [start, end) to the shared
  /// medium (no-op without one). The registered sink-side power is the mean
  /// RSSI at the start-of-frame geometry — deliberately RNG-free.
  void BeginTransmission(double tx_power_dbm, sim::Time start, sim::Time end);

  [[nodiscard]] const ChannelConfig& Config() const noexcept { return config_; }
  [[nodiscard]] const BerModel& Ber() const noexcept { return *ber_; }

  /// Every mutable channel member: the stochastic processes (with their
  /// RNG lineages), the per-frame RNGs and the memoised path-loss cache.
  /// A SaveState/RestoreState round trip makes subsequent Transmit calls
  /// replay bit-identically — the channel half of a speculative rollback.
  struct State {
    ShadowingProcess::State shadowing;
    NoiseFloorProcess::State noise;
    InterfererProcess::State interferer;
    util::Rng loss_rng;
    util::Rng lqi_rng;
    double rssi_cache_tx_dbm = 0.0;
    double rssi_cache_dist_m = 0.0;
    double rssi_cache_value = 0.0;
    bool rssi_cache_valid = false;
  };

  void SaveState(State& out) const {
    shadowing_.SaveState(out.shadowing);
    noise_.SaveState(out.noise);
    interferer_.SaveState(out.interferer);
    out.loss_rng = loss_rng_;
    out.lqi_rng = lqi_rng_;
    out.rssi_cache_tx_dbm = rssi_cache_tx_dbm_;
    out.rssi_cache_dist_m = rssi_cache_dist_m_;
    out.rssi_cache_value = rssi_cache_value_;
    out.rssi_cache_valid = rssi_cache_valid_;
  }

  void RestoreState(const State& state) {
    shadowing_.RestoreState(state.shadowing);
    noise_.RestoreState(state.noise);
    interferer_.RestoreState(state.interferer);
    loss_rng_ = state.loss_rng;
    lqi_rng_ = state.lqi_rng;
    rssi_cache_tx_dbm_ = state.rssi_cache_tx_dbm;
    rssi_cache_dist_m_ = state.rssi_cache_dist_m;
    rssi_cache_value_ = state.rssi_cache_value;
    rssi_cache_valid_ = state.rssi_cache_valid;
  }

 private:
  // wsnstatic:transient(config_, path_loss_): placement configuration fixed at construction; never mutated during a run
  ChannelConfig config_;
  PathLoss path_loss_;
  // wsnstatic:transient(ber_owned_): owning slot for the BER model; the model itself is immutable after construction
  std::unique_ptr<BerModel> ber_owned_;  // empty in non-owning mode
  const BerModel* ber_;                  // always valid; what Transmit uses
  ShadowingProcess shadowing_;
  NoiseFloorProcess noise_;
  InterfererProcess interferer_;
  // wsnstatic:transient(mobility_): pure function of sim time; holds no mutable state between calls
  MobilityModel mobility_;
  util::Rng loss_rng_;  // per-frame delivery coin flips
  util::Rng lqi_rng_;   // LQI measurement noise
  // wsnstatic:transient(medium_, node_id_): construction-time wiring to the shared air; the medium owns its own rollback
  Medium* medium_ = nullptr;  // shared air (multi-node runs only)
  int node_id_ = 0;

  /// Memoised path-loss RSSI (path loss + spatial offset) for the last
  /// (tx power, distance) pair. Transmit() recomputes the same log10 every
  /// frame on static links; caching on exact input equality returns the
  /// identical double, so results are bit-for-bit unchanged.
  double PathRssiDbm(double tx_power_dbm, double distance_m) const;
  mutable double rssi_cache_tx_dbm_ = 0.0;
  mutable double rssi_cache_dist_m_ = 0.0;
  mutable double rssi_cache_value_ = 0.0;
  mutable bool rssi_cache_valid_ = false;
};

/// Maps SNR to a CC2420-style LQI value with measurement noise.
[[nodiscard]] int SnrToLqi(double snr_db, util::Rng& rng);

}  // namespace wsnlink::channel
