// Shared radio medium for multi-transmitter simulations.
//
// The paper's Sec. VIII-D treats concurrent transmitters as a synthetic
// "collision factor" — an independent renewal process jamming a fraction of
// the air (interferer.h). That approximation cannot capture the feedback
// loop between contenders: a sender that backs off changes what the other
// sender's CCA sees. The Medium closes that loop: every node registers the
// frames it actually radiates, CCA queries it for ongoing transmissions,
// and receptions that overlap a concurrent frame collide (SINR capture or
// destructive loss).
//
// Modelling assumptions (documented in docs/ARCHITECTURE.md):
//  * Single collision domain: all senders are within carrier-sense range of
//    each other, so BusyAt() ignores geometry between senders and only the
//    receiver-side power (the registered RSSI at the sink) enters the
//    capture comparison.
//  * ACKs are not registered: 802.15.4 ACKs are sent inside the turnaround
//    window without a CCA, and their 352 us airtime is negligible next to
//    data frames. They can still be *lost* to a collision (the ACK's own
//    Transmit() runs the overlap check like any frame).
//  * All queries are RNG-free, so attaching a medium never perturbs the
//    random streams of an uncontended stack — the N=1 network path stays
//    bit-identical to the single-link simulation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.h"

namespace wsnlink::channel {

/// How far back a finished frame can still matter to any query. Receivers
/// look back one frame airtime from the reception instant; the largest
/// 802.15.4 frame is 133 bytes at 32 us/byte = 4256 us. Twice that is a
/// comfortable margin and keeps the active list a handful of entries
/// regardless of run length. Shared with the optimistic engine's fossil
/// collection: committed frames older than GVT minus this window can never
/// influence a query and are reclaimed.
inline constexpr sim::Duration kMediumRetentionWindow = 8'512;

/// Aggregate activity statistics of a shared medium (diagnostics; summed
/// over the whole run).
struct MediumStats {
  /// Data frames registered by all nodes.
  std::uint64_t frames = 0;
  /// CCA queries that found another node's frame on the air.
  std::uint64_t busy_hits = 0;
  /// Receptions that overlapped a concurrent frame.
  std::uint64_t collisions = 0;
  /// Collided receptions saved by SINR capture.
  std::uint64_t captures = 0;
};

/// The shared air between N sender stacks and one sink.
///
/// Not thread-safe: one Medium belongs to one simulation run (runs in a
/// sweep are embarrassingly parallel and each owns its medium).
///
/// The query/registration surface is virtual so the optimistic parallel
/// engine can interpose a per-LP view (node/timewarp.h) that logs reads
/// for cross-LP conflict detection while the stacks stay oblivious.
class Medium {
 public:
  /// `capture_margin_db`: a reception survives an overlap when its RSSI at
  /// the sink exceeds the strongest overlapping frame by at least this
  /// margin (classic SINR capture threshold; 802.15.4 receivers capture at
  /// ~3 dB co-channel rejection).
  explicit Medium(double capture_margin_db = 3.0);

  virtual ~Medium() = default;
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a frame node `node` radiates over [start, end) whose mean
  /// received power at the sink is `sink_rssi_dbm`. `start` must be
  /// non-decreasing across calls (simulated time is monotonic).
  virtual void Begin(int node, sim::Time start, sim::Time end,
                     double sink_rssi_dbm);

  /// True when a frame from any node other than `listener` is on the air at
  /// `t` (single collision domain: every sender hears every other sender).
  [[nodiscard]] virtual bool BusyAt(sim::Time t, int listener);

  /// Strongest sink-side RSSI among frames from nodes other than `node`
  /// overlapping the open interval (start, end); nullopt when the air was
  /// clear. Pure: no RNG, no stats mutation.
  [[nodiscard]] virtual std::optional<double> StrongestOverlapDbm(
      sim::Time start, sim::Time end, int node) const;

  /// Records the outcome of a collided reception (diagnostics).
  virtual void NoteCollision(bool captured) noexcept;

  [[nodiscard]] double CaptureMarginDb() const noexcept {
    return capture_margin_db_;
  }

  [[nodiscard]] const MediumStats& Stats() const noexcept { return stats_; }

  /// Frames currently tracked (diagnostics/tests; includes recently ended
  /// frames not yet pruned).
  [[nodiscard]] std::size_t TrackedFrames() const noexcept {
    return active_.size();
  }

 private:
  struct Frame {
    int node = 0;
    sim::Time start = 0;
    sim::Time end = 0;
    double sink_rssi_dbm = 0.0;
  };

  std::vector<Frame> active_;
  double capture_margin_db_;
  MediumStats stats_;
};

}  // namespace wsnlink::channel
