#include "channel/shadowing.h"

#include <cmath>
#include <stdexcept>

namespace wsnlink::channel {

double DefaultTemporalSigmaDb(double distance_m) noexcept {
  // Baseline indoor flicker plus a strong human-shadowing component close to
  // the 35 m position (kitchen / meeting room in the paper's hallway).
  const double base = 1.0;
  if (distance_m >= 33.0) return base + 1.8;
  if (distance_m >= 28.0) return base + 0.4;
  return base;
}

ShadowingProcess::ShadowingProcess(ShadowingParams params, util::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.sigma_db < 0.0) {
    throw std::invalid_argument("ShadowingProcess: sigma must be >= 0");
  }
  if (params_.coherence <= 0) {
    throw std::invalid_argument("ShadowingProcess: coherence must be > 0");
  }
}

double ShadowingProcess::Sample(sim::Time now) {
  if (!initialised_) {
    value_ = rng_.Gaussian(0.0, params_.sigma_db);
    last_time_ = now;
    initialised_ = true;
    return value_;
  }
  if (now < last_time_) {
    throw std::logic_error("ShadowingProcess: time moved backwards");
  }
  const double dt = static_cast<double>(now - last_time_);
  const double tau = static_cast<double>(params_.coherence);
  const double rho = std::exp(-dt / tau);
  // AR(1) update preserving the stationary variance sigma^2.
  const double innovation_sigma =
      params_.sigma_db * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  value_ = rho * value_ + rng_.Gaussian(0.0, innovation_sigma);
  last_time_ = now;
  return value_;
}

}  // namespace wsnlink::channel
