// wsnlint:hot-path — part of the per-config inner loop; the zero-alloc
// invariant (docs/PERF.md) is linted here and measured by perf_sweep.
#include "channel/shadowing.h"

#include <cmath>
#include <stdexcept>

namespace wsnlink::channel {

double DefaultTemporalSigmaDb(double distance_m) noexcept {
  // Baseline indoor flicker plus a strong human-shadowing component close to
  // the 35 m position (kitchen / meeting room in the paper's hallway).
  const double base = 1.0;
  if (distance_m >= 33.0) return base + 1.8;
  if (distance_m >= 28.0) return base + 0.4;
  return base;
}

ShadowingProcess::ShadowingProcess(ShadowingParams params, util::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.sigma_db < 0.0) {
    throw std::invalid_argument("ShadowingProcess: sigma must be >= 0");
  }
  if (params_.coherence <= 0) {
    throw std::invalid_argument("ShadowingProcess: coherence must be > 0");
  }
}

ShadowingLanes::ShadowingLanes(std::span<const ShadowingParams> params,
                               std::span<const util::Rng> rngs)
    : params_(params.begin(), params.end()),
      rngs_(rngs),
      value_(params.size(), 0.0),
      rho_(params.size(), 0.0),
      gauss_(params.size(), 0.0) {
  if (params.size() != rngs.size()) {
    throw std::invalid_argument("ShadowingLanes: params/rngs size mismatch");
  }
  for (const ShadowingParams& p : params_) {
    if (p.sigma_db < 0.0) {
      throw std::invalid_argument("ShadowingProcess: sigma must be >= 0");
    }
    if (p.coherence <= 0) {
      throw std::invalid_argument("ShadowingProcess: coherence must be > 0");
    }
  }
}

void ShadowingLanes::SampleAll(sim::Time now, std::span<double> out) {
  if (out.size() != params_.size()) {
    throw std::invalid_argument("ShadowingLanes: output size mismatch");
  }
  const std::size_t n = params_.size();
  if (!initialised_) {
    rngs_.GaussianAll(gauss_);
    for (std::size_t k = 0; k < n; ++k) {
      // Matches the scalar rng_.Gaussian(0.0, sigma) = mean + sigma * z.
      value_[k] = 0.0 + params_[k].sigma_db * gauss_[k];
    }
    last_time_ = now;
    initialised_ = true;
    for (std::size_t k = 0; k < n; ++k) out[k] = value_[k];
    return;
  }
  if (now < last_time_) {
    throw std::logic_error("ShadowingProcess: time moved backwards");
  }
  const double dt = static_cast<double>(now - last_time_);
  for (std::size_t k = 0; k < n; ++k) {
    rho_[k] = std::exp(-dt / static_cast<double>(params_[k].coherence));
  }
  rngs_.GaussianAll(gauss_);
  for (std::size_t k = 0; k < n; ++k) {
    const double rho = rho_[k];
    const double innovation_sigma =
        params_[k].sigma_db * std::sqrt(std::max(0.0, 1.0 - rho * rho));
    // Same expression shape as the scalar update (Gaussian(0, s) expands to
    // 0.0 + s * z) so the lane agrees bit for bit.
    value_[k] = rho * value_[k] + (0.0 + innovation_sigma * gauss_[k]);
  }
  last_time_ = now;
  for (std::size_t k = 0; k < n; ++k) out[k] = value_[k];
}

double ShadowingProcess::Sample(sim::Time now) {
  if (!initialised_) {
    value_ = rng_.Gaussian(0.0, params_.sigma_db);
    last_time_ = now;
    initialised_ = true;
    return value_;
  }
  if (now < last_time_) {
    throw std::logic_error("ShadowingProcess: time moved backwards");
  }
  const double dt = static_cast<double>(now - last_time_);
  const double tau = static_cast<double>(params_.coherence);
  const double rho = std::exp(-dt / tau);
  // AR(1) update preserving the stationary variance sigma^2.
  const double innovation_sigma =
      params_.sigma_db * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  value_ = rho * value_ + rng_.Gaussian(0.0, innovation_sigma);
  last_time_ = now;
  return value_;
}

}  // namespace wsnlink::channel
