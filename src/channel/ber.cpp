#include "channel/ber.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "util/units.h"

namespace wsnlink::channel {

double BerModel::FrameSuccessProbability(double snr_db, int frame_bytes) const {
  if (frame_bytes <= 0) {
    throw std::invalid_argument("FrameSuccessProbability: frame_bytes must be > 0");
  }
  const double ber = BitErrorRate(snr_db);
  return std::pow(1.0 - ber, 8.0 * static_cast<double>(frame_bytes));
}

void BerModel::FrameSuccessProbabilityBatch(std::span<const double> snr_db,
                                            int frame_bytes,
                                            std::span<double> out) const {
  if (snr_db.size() != out.size()) {
    throw std::invalid_argument(
        "FrameSuccessProbabilityBatch: snr/out size mismatch");
  }
  for (std::size_t i = 0; i < snr_db.size(); ++i) {
    out[i] = FrameSuccessProbability(snr_db[i], frame_bytes);
  }
}

double AnalyticOQpskBer::BitErrorRate(double snr_db) const {
  // 802.15.4 2.4 GHz PHY: 4 information bits per 32-chip symbol, 16-ary
  // quasi-orthogonal signalling. Standard approximation (e.g. Zuniga &
  // Krishnamachari): BER = 8/15 * 1/16 * sum_{k=2}^{16} (-1)^k C(16,k)
  //                        * exp(20 * SINR_lin * (1/k - 1)).
  const double sinr = util::DbToLinear(snr_db);
  static constexpr double kBinom16[17] = {
      1, 16, 120, 560, 1820, 4368, 8008, 11440, 12870,
      11440, 8008, 4368, 1820, 560, 120, 16, 1};
  double acc = 0.0;
  for (int k = 2; k <= 16; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    acc += sign * kBinom16[k] * std::exp(20.0 * sinr * (1.0 / k - 1.0));
  }
  const double ber = (8.0 / 15.0) * (1.0 / 16.0) * acc;
  return std::clamp(ber, 0.0, 0.5);
}

CalibratedExponentialBer::CalibratedExponentialBer(double a, double b)
    : a_(a), b_(b) {
  if (a <= 0.0) throw std::invalid_argument("CalibratedExponentialBer: a must be > 0");
  if (b >= 0.0) throw std::invalid_argument("CalibratedExponentialBer: b must be < 0");
}

double CalibratedExponentialBer::BitErrorRate(double snr_db) const {
  return std::min(0.5, a_ * std::exp(b_ * snr_db));
}

double CalibratedExponentialBer::FrameSuccessProbability(
    double snr_db, int frame_bytes) const {
  if (frame_bytes <= 0) {
    throw std::invalid_argument("FrameSuccessProbability: frame_bytes must be > 0");
  }
  // Linear-in-bytes frame loss: the empirical scaling of Eq. (3). For
  // small losses this equals the bit-composition of BitErrorRate().
  const double loss = 8.0 * a_ * static_cast<double>(frame_bytes) *
                      std::exp(b_ * snr_db);
  return std::clamp(1.0 - loss, 0.0, 1.0);
}

void CalibratedExponentialBer::FrameSuccessProbabilityBatch(
    std::span<const double> snr_db, int frame_bytes,
    std::span<double> out) const {
  if (snr_db.size() != out.size()) {
    throw std::invalid_argument(
        "FrameSuccessProbabilityBatch: snr/out size mismatch");
  }
  if (frame_bytes <= 0) {
    throw std::invalid_argument("FrameSuccessProbability: frame_bytes must be > 0");
  }
  // Hoisted scalar expression, left-associated exactly like the scalar
  // path: ((8 * a) * bytes) * exp(b * snr). Plain contiguous loop.
  const double scale = 8.0 * a_ * static_cast<double>(frame_bytes);
  for (std::size_t i = 0; i < snr_db.size(); ++i) {
    const double loss = scale * std::exp(b_ * snr_db[i]);
    out[i] = std::clamp(1.0 - loss, 0.0, 1.0);
  }
}

std::unique_ptr<BerModel> MakeDefaultBerModel() {
  return std::make_unique<CalibratedExponentialBer>();
}

}  // namespace wsnlink::channel
