// Noise-floor process.
//
// The paper analysed ~24 million noise-floor samples (Fig. 5) and found the
// distribution is not well represented by a constant: assuming a constant
// -95 dBm floor distorts the SNR distribution. We model the floor as a base
// Gaussian component around a quiet level plus intermittent interference
// bursts (2.4 GHz ISM neighbours: WiFi beacons, microwave ovens) that raise
// the floor by several dB for tens of milliseconds. The mixture's mean is
// calibrated to -95 dBm and its right skew reproduces the real-vs-constant
// SNR discrepancy of Fig. 5.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace wsnlink::channel {

/// Parameters of the noise-floor mixture process.
struct NoiseParams {
  /// Quiet-floor mean in dBm. Chosen so the overall mixture mean is ~-95.
  double quiet_mean_dbm = -95.6;
  /// Quiet-floor standard deviation in dB.
  double quiet_sigma_db = 0.9;
  /// Mean rate of interference bursts (bursts per second).
  double burst_rate_hz = 0.8;
  /// Mean burst duration.
  sim::Duration burst_mean_duration = 40 * sim::kMillisecond;
  /// Mean burst elevation above the quiet floor, in dB (exponentially
  /// distributed per burst: many small bumps, occasional big ones).
  double burst_mean_elevation_db = 7.0;
};

/// Time-varying noise floor with Poisson interference bursts.
///
/// SampleDbm(t) must be called with non-decreasing t.
class NoiseFloorProcess {
 public:
  NoiseFloorProcess(NoiseParams params, util::Rng rng);

  /// Instantaneous noise floor in dBm at simulated time `now`.
  double SampleDbm(sim::Time now);

  /// True if an interference burst is active at `now` (used by the MAC's
  /// clear-channel assessment). Advances the burst schedule like SampleDbm.
  bool InterferenceActive(sim::Time now);

  [[nodiscard]] const NoiseParams& Params() const noexcept { return params_; }

  /// Mutable-state image for speculative save/restore: the burst schedule
  /// and the RNG that drives it rewind together, so a rolled-back sample
  /// sequence replays bit-identically.
  struct State {
    util::Rng rng;
    sim::Time burst_start = 0;
    sim::Time burst_end = -1;
    double burst_elevation_db = 0.0;
    bool schedule_started = false;
  };

  void SaveState(State& out) const {
    out.rng = rng_;
    out.burst_start = burst_start_;
    out.burst_end = burst_end_;
    out.burst_elevation_db = burst_elevation_db_;
    out.schedule_started = schedule_started_;
  }

  void RestoreState(const State& state) {
    rng_ = state.rng;
    burst_start_ = state.burst_start;
    burst_end_ = state.burst_end;
    burst_elevation_db_ = state.burst_elevation_db;
    schedule_started_ = state.schedule_started;
  }

 private:
  /// Advances the burst schedule so it covers `now`.
  void AdvanceBursts(sim::Time now);

  // wsnstatic:transient(params_): process configuration fixed at construction; never mutated during a run
  NoiseParams params_;
  util::Rng rng_;
  // Current / next burst window.
  sim::Time burst_start_ = 0;
  sim::Time burst_end_ = -1;  // end < start means "no burst scheduled yet"
  double burst_elevation_db_ = 0.0;
  bool schedule_started_ = false;
};

/// Bank of K independent noise-floor processes sampled in lockstep.
///
/// Unlike the shadowing/BER kernels this one cannot be a flat SIMD sweep —
/// the Poisson burst schedule is data-dependent control flow per lane — so
/// the bank simply owns the scalar processes and loops them, which keeps
/// the batch channel API uniform and trivially bit-identical per lane.
class NoiseFloorLanes {
 public:
  /// One process per (params[i], rngs[i]). Sizes must match.
  NoiseFloorLanes(std::span<const NoiseParams> params,
                  std::span<const util::Rng> rngs);

  [[nodiscard]] std::size_t Lanes() const noexcept { return lanes_.size(); }

  /// One SampleDbm(now) per lane into `out` (size must equal Lanes()).
  void SampleDbmAll(sim::Time now, std::span<double> out);

 private:
  std::vector<NoiseFloorProcess> lanes_;
};

}  // namespace wsnlink::channel
