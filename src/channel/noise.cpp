// wsnlint:hot-path — part of the per-config inner loop; the zero-alloc
// invariant (docs/PERF.md) is linted here and measured by perf_sweep.
#include "channel/noise.h"

#include <stdexcept>

#include "util/units.h"

namespace wsnlink::channel {

NoiseFloorProcess::NoiseFloorProcess(NoiseParams params, util::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.quiet_sigma_db < 0.0) {
    throw std::invalid_argument("NoiseFloorProcess: sigma must be >= 0");
  }
  if (params_.burst_rate_hz < 0.0) {
    throw std::invalid_argument("NoiseFloorProcess: burst rate must be >= 0");
  }
  if (params_.burst_mean_duration <= 0) {
    throw std::invalid_argument("NoiseFloorProcess: burst duration must be > 0");
  }
}

void NoiseFloorProcess::AdvanceBursts(sim::Time now) {
  if (params_.burst_rate_hz <= 0.0) {
    // No interference configured; park the schedule far in the future.
    burst_start_ = now + 1;
    burst_end_ = burst_start_ - 1;
    return;
  }
  if (!schedule_started_) {
    const double gap_s = rng_.Exponential(1.0 / params_.burst_rate_hz);
    burst_start_ = sim::FromSeconds(gap_s);
    burst_end_ = burst_start_ +
                 sim::FromSeconds(rng_.Exponential(
                     sim::ToSeconds(params_.burst_mean_duration)));
    burst_elevation_db_ = rng_.Exponential(params_.burst_mean_elevation_db);
    schedule_started_ = true;
  }
  // Roll the schedule forward until the current burst window ends at or
  // after `now`.
  while (burst_end_ < now) {
    const double gap_s = rng_.Exponential(1.0 / params_.burst_rate_hz);
    burst_start_ = burst_end_ + sim::FromSeconds(gap_s);
    burst_end_ = burst_start_ +
                 sim::FromSeconds(rng_.Exponential(
                     sim::ToSeconds(params_.burst_mean_duration)));
    burst_elevation_db_ = rng_.Exponential(params_.burst_mean_elevation_db);
  }
}

bool NoiseFloorProcess::InterferenceActive(sim::Time now) {
  AdvanceBursts(now);
  return now >= burst_start_ && now <= burst_end_;
}

double NoiseFloorProcess::SampleDbm(sim::Time now) {
  const bool bursting = InterferenceActive(now);
  const double quiet = rng_.Gaussian(params_.quiet_mean_dbm, params_.quiet_sigma_db);
  if (!bursting) return quiet;
  // Burst power adds to the quiet floor in the linear domain.
  return util::AddPowersDbm(quiet, params_.quiet_mean_dbm + burst_elevation_db_);
}

NoiseFloorLanes::NoiseFloorLanes(std::span<const NoiseParams> params,
                                 std::span<const util::Rng> rngs) {
  if (params.size() != rngs.size()) {
    throw std::invalid_argument("NoiseFloorLanes: params/rngs size mismatch");
  }
  lanes_.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    lanes_.emplace_back(params[i], rngs[i]);
  }
}

void NoiseFloorLanes::SampleDbmAll(sim::Time now, std::span<double> out) {
  if (out.size() != lanes_.size()) {
    throw std::invalid_argument("NoiseFloorLanes: output size mismatch");
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    out[i] = lanes_[i].SampleDbm(now);
  }
}

}  // namespace wsnlink::channel
