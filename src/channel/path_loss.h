// Log-normal shadowing path-loss model.
//
// The paper (Fig. 3) fits its hallway to the classic log-distance model with
// path-loss exponent n = 2.19 and spatial shadowing deviation sigma = 3.2 dB.
// We use those fitted values as the generative model: mean RSSI at distance d
// is  P_tx - [PL(d0) + 10 n log10(d/d0)]  and a static per-position offset
// drawn from N(0, sigma) models the spot-to-spot variation their scatter
// shows.
#pragma once

#include <span>

#include "util/rng.h"

namespace wsnlink::channel {

/// Parameters of the log-distance path-loss model.
struct PathLossParams {
  /// Path-loss exponent (paper's hallway fit: 2.19).
  double exponent = 2.19;
  /// Spatial shadowing standard deviation in dB (paper: 3.2).
  double sigma_db = 3.2;
  /// Reference loss at `reference_distance_m`, in dB. 38 dB at 1 m is a
  /// typical 2.4 GHz indoor value and calibrates the 35 m link so that the
  /// paper's grey-zone observations at low PA levels reproduce.
  double reference_loss_db = 38.0;
  /// Reference distance d0 in metres.
  double reference_distance_m = 1.0;
};

/// Deterministic part of the model plus helpers for the random spatial term.
class PathLoss {
 public:
  explicit PathLoss(PathLossParams params);

  /// Mean path loss in dB at distance d (metres). Requires d > 0.
  [[nodiscard]] double MeanLossDb(double distance_m) const;

  /// Structure-of-arrays batch: out[i] = MeanLossDb(distance_m[i]), bit for
  /// bit (the log-distance expression is hoisted into one contiguous sweep).
  /// Requires distance_m.size() == out.size() and every distance > 0.
  void MeanLossDbBatch(std::span<const double> distance_m,
                       std::span<double> out) const;

  /// Mean received power for a transmit power, excluding spatial shadowing.
  [[nodiscard]] double MeanRssiDbm(double tx_power_dbm, double distance_m) const;

  /// Draws a static spatial shadowing offset X ~ N(0, sigma_db).
  [[nodiscard]] double SampleSpatialShadow(util::Rng& rng) const;

  [[nodiscard]] const PathLossParams& Params() const noexcept { return params_; }

 private:
  PathLossParams params_;
};

}  // namespace wsnlink::channel
