#include "channel/mobility.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wsnlink::channel {

MobilityModel::MobilityModel(MobilityParams params, double start_distance_m)
    : params_(params) {
  if (params_.speed_mps < 0.0) {
    throw std::invalid_argument("MobilityModel: speed must be >= 0");
  }
  if (Enabled()) {
    if (params_.min_distance_m <= 0.0 ||
        params_.min_distance_m >= params_.max_distance_m) {
      throw std::invalid_argument(
          "MobilityModel: need 0 < min_distance < max_distance");
    }
    const double clamped = std::clamp(start_distance_m, params_.min_distance_m,
                                      params_.max_distance_m);
    start_offset_m_ = clamped - params_.min_distance_m;
  } else {
    start_offset_m_ = start_distance_m;
  }
}

double MobilityModel::DistanceAt(sim::Time t) const {
  if (!Enabled()) return start_offset_m_;
  const double span = params_.max_distance_m - params_.min_distance_m;
  const double walked =
      start_offset_m_ + params_.speed_mps * sim::ToSeconds(t);
  // Fold the unbounded walk onto the out-and-back triangle of length 2*span.
  const double cycle = std::fmod(walked, 2.0 * span);
  const double leg = cycle <= span ? cycle : 2.0 * span - cycle;
  return params_.min_distance_m + leg;
}

sim::Duration MobilityModel::Period() const {
  if (!Enabled()) {
    throw std::logic_error("MobilityModel::Period: mobility disabled");
  }
  const double span = params_.max_distance_m - params_.min_distance_m;
  return sim::FromSeconds(2.0 * span / params_.speed_mps);
}

}  // namespace wsnlink::channel
