#include "serve/protocol.h"

#include <charconv>
#include <map>

#include "util/args.h"

namespace wsnlink::serve {

namespace {

// ---------------------------------------------------------------------------
// Flat JSON-subset tokenizer. Accepts exactly:
//   object  = '{' [ pair ( ',' pair )* ] '}'
//   pair    = string ':' value
//   value   = string | number | 'true' | 'false'
// with insignificant ASCII whitespace between tokens, string escapes limited
// to \" and \\, and nothing after the closing brace. Arrays, nested objects,
// null, unicode escapes and duplicate keys are rejected: every accepted
// request has exactly one meaning.
// ---------------------------------------------------------------------------

inline constexpr std::size_t kMaxPairs = 64;
inline constexpr std::size_t kMaxTokenBytes = 512;

struct Value {
  enum class Kind { kString, kNumber, kBool } kind = Kind::kString;
  /// Unescaped text for strings, the raw token for numbers, "true"/"false"
  /// for booleans.
  std::string text;
};

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  [[nodiscard]] char Peek() {
    SkipWs();
    if (pos_ >= text_.size()) {
      throw ProtocolError("request truncated: unexpected end of line");
    }
    return text_[pos_];
  }

  void Expect(char ch) {
    if (Peek() != ch) {
      throw ProtocolError(std::string("expected '") + ch + "' at byte " +
                          std::to_string(pos_) + ", got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  [[nodiscard]] std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        throw ProtocolError("unterminated string in request");
      }
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch == '\\') {
        if (pos_ >= text_.size()) {
          throw ProtocolError("dangling escape at end of request");
        }
        const char esc = text_[pos_++];
        if (esc != '"' && esc != '\\') {
          throw ProtocolError(std::string("unsupported escape '\\") + esc +
                              "' (only \\\" and \\\\ are accepted)");
        }
        out += esc;
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        throw ProtocolError("control character inside string");
      } else {
        out += ch;
      }
      if (out.size() > kMaxTokenBytes) {
        throw ProtocolError("string value exceeds " +
                            std::to_string(kMaxTokenBytes) + " bytes");
      }
    }
  }

  [[nodiscard]] Value ParseValue() {
    const char ch = Peek();
    if (ch == '"') return {Value::Kind::kString, ParseString()};
    if (ch == 't' || ch == 'f') {
      const std::string_view rest = text_.substr(pos_);
      if (rest.substr(0, 4) == "true") {
        pos_ += 4;
        return {Value::Kind::kBool, "true"};
      }
      if (rest.substr(0, 5) == "false") {
        pos_ += 5;
        return {Value::Kind::kBool, "false"};
      }
      throw ProtocolError("bad literal (only true/false are accepted)");
    }
    if (ch == '-' || (ch >= '0' && ch <= '9')) {
      const std::size_t start = pos_;
      auto is_number_char = [](char c) {
        return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
               c == 'e' || c == 'E';
      };
      while (pos_ < text_.size() && is_number_char(text_[pos_])) ++pos_;
      if (pos_ - start > kMaxTokenBytes) {
        throw ProtocolError("number token exceeds " +
                            std::to_string(kMaxTokenBytes) + " bytes");
      }
      return {Value::Kind::kNumber,
              std::string(text_.substr(start, pos_ - start))};
    }
    if (ch == '{' || ch == '[') {
      throw ProtocolError("nested objects/arrays are not part of the "
                          "protocol (flat object only)");
    }
    throw ProtocolError(std::string("unexpected character '") + ch +
                        "' where a value was expected");
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parses the line into an ordered key->value map, rejecting duplicates.
std::map<std::string, Value> ParseObject(std::string_view line) {
  Cursor cursor(line);
  cursor.Expect('{');
  std::map<std::string, Value> pairs;
  if (cursor.Peek() != '}') {
    while (true) {
      std::string key = cursor.ParseString();
      if (key.empty()) throw ProtocolError("empty key");
      cursor.Expect(':');
      Value value = cursor.ParseValue();
      if (!pairs.emplace(std::move(key), std::move(value)).second) {
        throw ProtocolError("duplicate key in request");
      }
      if (pairs.size() > kMaxPairs) {
        throw ProtocolError("request has more than " +
                            std::to_string(kMaxPairs) + " keys");
      }
      const char next = cursor.Peek();
      if (next == ',') {
        cursor.Expect(',');
        continue;
      }
      break;
    }
  }
  cursor.Expect('}');
  if (!cursor.AtEnd()) {
    throw ProtocolError("trailing bytes after closing '}'");
  }
  return pairs;
}

// ---------------------------------------------------------------------------
// Typed field extraction.
// ---------------------------------------------------------------------------

/// Consumes `key` from `pairs` (so leftovers can be flagged as unknown).
std::optional<Value> Take(std::map<std::string, Value>& pairs,
                          const std::string& key) {
  const auto it = pairs.find(key);
  if (it == pairs.end()) return std::nullopt;
  Value value = std::move(it->second);
  pairs.erase(it);
  return value;
}

double NumberOf(const Value& value, const std::string& key) {
  if (value.kind != Value::Kind::kNumber) {
    throw ProtocolError("field '" + key + "' must be a number");
  }
  // Same canonical grammar as every other double parser in the tree
  // (util::ParseDouble, Args::GetDouble): whole-string decimal/scientific,
  // finite only — "inf", "nan", hex floats and whitespace are rejected
  // here even if a future tokenizer change were to let them through.
  double parsed{};
  if (!util::ParseCanonicalDouble(value.text, parsed)) {
    throw ProtocolError("field '" + key + "' is not a valid number ('" +
                        value.text + "')");
  }
  return parsed;
}

double TakeDouble(std::map<std::string, Value>& pairs, const std::string& key,
                  double fallback) {
  const auto value = Take(pairs, key);
  return value ? NumberOf(*value, key) : fallback;
}

std::optional<double> TakeOptionalDouble(std::map<std::string, Value>& pairs,
                                         const std::string& key) {
  const auto value = Take(pairs, key);
  if (!value) return std::nullopt;
  return NumberOf(*value, key);
}

int TakeInt(std::map<std::string, Value>& pairs, const std::string& key,
            int fallback) {
  const auto value = Take(pairs, key);
  if (!value) return fallback;
  if (value->kind != Value::Kind::kNumber) {
    throw ProtocolError("field '" + key + "' must be an integer");
  }
  int parsed{};
  const char* begin = value->text.data();
  const char* end = begin + value->text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc() || ptr != end) {
    throw ProtocolError("field '" + key + "' is not a valid integer ('" +
                        value->text + "')");
  }
  return parsed;
}

std::uint64_t TakeU64(std::map<std::string, Value>& pairs,
                      const std::string& key, std::uint64_t fallback) {
  const auto value = Take(pairs, key);
  if (!value) return fallback;
  if (value->kind != Value::Kind::kNumber) {
    throw ProtocolError("field '" + key + "' must be an unsigned integer");
  }
  std::uint64_t parsed{};
  const char* begin = value->text.data();
  const char* end = begin + value->text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc() || ptr != end) {
    throw ProtocolError("field '" + key +
                        "' is not a valid unsigned integer ('" + value->text +
                        "')");
  }
  return parsed;
}

std::string TakeString(std::map<std::string, Value>& pairs,
                       const std::string& key, const std::string& fallback) {
  const auto value = Take(pairs, key);
  if (!value) return fallback;
  if (value->kind != Value::Kind::kString) {
    throw ProtocolError("field '" + key + "' must be a string");
  }
  return value->text;
}

/// Packets-per-request ceiling: keeps one hostile what_if from pinning a
/// worker for minutes. Matches the paper's 4500-packet campaigns with room
/// to spare.
inline constexpr int kMaxPackets = 20000;

Request ParseWhatIf(std::map<std::string, Value>& pairs) {
  Request request;
  request.verb = Verb::kWhatIf;
  request.config.distance_m =
      TakeDouble(pairs, "distance_m", request.config.distance_m);
  request.config.pa_level = TakeInt(pairs, "pa_level", request.config.pa_level);
  request.config.max_tries =
      TakeInt(pairs, "max_tries", request.config.max_tries);
  request.config.retry_delay_ms =
      TakeDouble(pairs, "retry_delay_ms", request.config.retry_delay_ms);
  request.config.queue_capacity =
      TakeInt(pairs, "queue_capacity", request.config.queue_capacity);
  request.config.pkt_interval_ms =
      TakeDouble(pairs, "pkt_interval_ms", request.config.pkt_interval_ms);
  request.config.payload_bytes =
      TakeInt(pairs, "payload_bytes", request.config.payload_bytes);
  const std::string mac = TakeString(pairs, "mac", "csma");
  if (mac == "csma") {
    request.mac = node::MacKind::kCsma;
  } else if (mac == "lpl") {
    request.mac = node::MacKind::kLpl;
  } else {
    throw ProtocolError("field 'mac' must be \"csma\" or \"lpl\"");
  }
  request.lpl_wakeup_ms =
      TakeDouble(pairs, "lpl_wakeup_ms", request.lpl_wakeup_ms);
  if (request.lpl_wakeup_ms <= 0.0) {
    throw ProtocolError("field 'lpl_wakeup_ms' must be > 0");
  }
  request.seed = TakeU64(pairs, "seed", request.seed);
  request.packets = TakeInt(pairs, "packets", request.packets);
  if (request.packets < 1 || request.packets > kMaxPackets) {
    throw ProtocolError("field 'packets' must be in [1, " +
                        std::to_string(kMaxPackets) + "]");
  }
  if (request.config.distance_m > 10000.0) {
    throw ProtocolError("field 'distance_m' must be <= 10000");
  }
  try {
    request.config.Validate();
  } catch (const std::invalid_argument& e) {
    throw ProtocolError(e.what());
  }
  return request;
}

Request ParseOptimize(std::map<std::string, Value>& pairs) {
  Request request;
  request.verb = Verb::kOptimize;
  const std::string objective = TakeString(pairs, "objective", "energy");
  if (objective == "energy") {
    request.objective = Objective::kEnergy;
  } else if (objective == "goodput") {
    request.objective = Objective::kGoodput;
  } else if (objective == "delay") {
    request.objective = Objective::kDelay;
  } else if (objective == "loss") {
    request.objective = Objective::kLoss;
  } else {
    throw ProtocolError(
        "field 'objective' must be one of energy|goodput|delay|loss");
  }
  request.distance_m = TakeDouble(pairs, "distance_m", request.distance_m);
  if (request.distance_m <= 0.0 || request.distance_m > 10000.0) {
    throw ProtocolError("field 'distance_m' must be in (0, 10000]");
  }
  request.pkt_interval_ms =
      TakeDouble(pairs, "pkt_interval_ms", request.pkt_interval_ms);
  if (request.pkt_interval_ms <= 0.0) {
    throw ProtocolError("field 'pkt_interval_ms' must be > 0");
  }
  request.snr_db = TakeOptionalDouble(pairs, "snr_db");
  request.max_energy_uj_per_bit =
      TakeOptionalDouble(pairs, "max_energy_uj_per_bit");
  request.max_delay_ms = TakeOptionalDouble(pairs, "max_delay_ms");
  request.max_loss = TakeOptionalDouble(pairs, "max_loss");
  request.min_goodput_kbps = TakeOptionalDouble(pairs, "min_goodput_kbps");
  return request;
}

}  // namespace

Request ParseRequest(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    throw ProtocolError("request exceeds " + std::to_string(kMaxRequestBytes) +
                        " bytes");
  }
  auto pairs = ParseObject(line);
  const auto verb = Take(pairs, "verb");
  if (!verb) throw ProtocolError("missing 'verb'");
  if (verb->kind != Value::Kind::kString) {
    throw ProtocolError("field 'verb' must be a string");
  }

  Request request;
  if (verb->text == "what_if") {
    request = ParseWhatIf(pairs);
  } else if (verb->text == "optimize") {
    request = ParseOptimize(pairs);
  } else if (verb->text == "stats") {
    request.verb = Verb::kStats;
  } else {
    throw ProtocolError("unknown verb '" + verb->text +
                        "' (optimize|what_if|stats)");
  }
  if (!pairs.empty()) {
    throw ProtocolError("unknown key '" + pairs.begin()->first + "' for verb '" +
                        verb->text + "'");
  }
  return request;
}

std::string FormatDouble(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "0";  // unreachable for finite doubles
  return std::string(buf, ptr);
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += ' ';
    } else {
      out += ch;
    }
  }
  return out;
}

std::string ErrorResponse(std::string_view message) {
  return "{\"status\":\"error\",\"error\":\"" + JsonEscape(message) + "\"}";
}

std::string CanonicalKey(const Request& request, std::string_view tag) {
  std::string key;
  key.reserve(160);
  const auto num = [](double v) { return FormatDouble(v); };
  const auto opt = [&](const std::optional<double>& v) {
    return v ? FormatDouble(*v) : std::string("none");
  };
  switch (request.verb) {
    case Verb::kWhatIf:
      key += "what_if|d=" + num(request.config.distance_m);
      key += "|pa=" + std::to_string(request.config.pa_level);
      key += "|mt=" + std::to_string(request.config.max_tries);
      key += "|rd=" + num(request.config.retry_delay_ms);
      key += "|qc=" + std::to_string(request.config.queue_capacity);
      key += "|ti=" + num(request.config.pkt_interval_ms);
      key += "|pb=" + std::to_string(request.config.payload_bytes);
      key += request.mac == node::MacKind::kLpl ? "|mac=lpl" : "|mac=csma";
      key += "|lw=" + num(request.lpl_wakeup_ms);
      key += "|seed=" + std::to_string(request.seed);
      key += "|pk=" + std::to_string(request.packets);
      break;
    case Verb::kOptimize: {
      key += "optimize|obj=";
      switch (request.objective) {
        case Objective::kEnergy: key += "energy"; break;
        case Objective::kGoodput: key += "goodput"; break;
        case Objective::kDelay: key += "delay"; break;
        case Objective::kLoss: key += "loss"; break;
      }
      key += "|d=" + num(request.distance_m);
      key += "|ti=" + num(request.pkt_interval_ms);
      key += "|snr=" + opt(request.snr_db);
      key += "|ce=" + opt(request.max_energy_uj_per_bit);
      key += "|cd=" + opt(request.max_delay_ms);
      key += "|cl=" + opt(request.max_loss);
      key += "|cg=" + opt(request.min_goodput_kbps);
      break;
    }
    case Verb::kStats:
      throw std::logic_error("stats requests have no cache key");
  }
  key += "|tag=";
  key += tag;
  return key;
}

std::vector<std::string> ExtractCompleteLines(std::string& buffer) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = buffer.find('\n', start);
    if (nl == std::string::npos) break;
    std::size_t end = nl;
    if (end > start && buffer[end - 1] == '\r') --end;
    lines.emplace_back(buffer.substr(start, end - start));
    start = nl + 1;
  }
  buffer.erase(0, start);
  return lines;
}

}  // namespace wsnlink::serve
