// Wire protocol of the wsnlinkd tuning service.
//
// One request per line, one response per line — a flat JSON-subset object
// with string keys and string/number/boolean values. Three verbs:
//
//   optimize  run the Sec. VIII joint optimizer (epsilon-constraint search
//             over the serving config space) for a channel/constraint spec;
//   what_if   simulate one explicit StackConfig under a seed contract and
//             return the measured metric vector;
//   stats     report the daemon's request/cache counters (advisory, never
//             cached, excluded from determinism goldens).
//
// The parser is strict by design: unknown keys, nested values, duplicate
// keys, out-of-bounds parameters and oversized lines are all rejected with
// a typed ProtocolError whose message becomes a structured
// {"status":"error",...} reply — malformed input can never crash, hang or
// silently default. Responses are canonical: doubles render through
// std::to_chars shortest-round-trip form and objects carry no whitespace,
// so a cached payload is byte-identical to a freshly computed one (the
// property the determinism suite pins). No wall-clock anywhere: the only
// time in a response is simulated time.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/stack_config.h"
#include "node/link_simulation.h"

namespace wsnlink::serve {

/// Longest accepted request line, delimiter excluded. Longer lines are
/// answered with a structured error (and the connection kept alive).
inline constexpr std::size_t kMaxRequestBytes = 8192;

/// Cache/compatibility tag baked into every cache key and the persisted
/// cache header. Bump it whenever the response schema, the simulator
/// physics or the serving config space change in any observable way: a
/// persisted cache with a different tag is discarded wholesale at warm
/// start (invalidation rule, see docs/SERVING.md).
inline constexpr std::string_view kServeVersionTag = "wsnlink-serve-v1";

/// Malformed or out-of-contract request. The message is safe to echo to
/// the client (single line, no control characters).
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

enum class Verb { kOptimize, kWhatIf, kStats };

/// The objective of an optimize request (maps onto core::opt::Metric).
enum class Objective { kEnergy, kGoodput, kDelay, kLoss };

/// A fully validated request.
struct Request {
  Verb verb = Verb::kStats;

  // --- what_if -----------------------------------------------------------
  /// The explicit configuration to simulate (defaults = StackConfig
  /// defaults; already Validate()d by the parser).
  core::StackConfig config;
  node::MacKind mac = node::MacKind::kCsma;
  double lpl_wakeup_ms = 100.0;
  /// Seed contract: the (seed, packets) pair every cached answer is keyed
  /// under. Two requests for the same config under different contracts are
  /// different cache entries.
  std::uint64_t seed = 1;
  int packets = 1000;

  // --- optimize ----------------------------------------------------------
  Objective objective = Objective::kEnergy;
  double distance_m = 20.0;
  double pkt_interval_ms = 100.0;
  /// Optional measured link quality; when set the search evaluates every
  /// candidate at this SNR instead of deriving it from placement.
  std::optional<double> snr_db;
  /// Optional epsilon constraints (absent = unconstrained).
  std::optional<double> max_energy_uj_per_bit;
  std::optional<double> max_delay_ms;
  std::optional<double> max_loss;
  std::optional<double> min_goodput_kbps;
};

/// Parses and validates one request line (without the trailing newline).
/// Throws ProtocolError on any malformed or out-of-bounds input.
[[nodiscard]] Request ParseRequest(std::string_view line);

/// The canonical cache key of a request: a rebuilt (not echoed) rendering
/// of every semantically significant field plus `tag`, so two spellings of
/// the same query share one cache entry and a version-tag bump invalidates
/// everything. Contains no whitespace. Stats requests have no key (they
/// are never cached); calling this on one throws std::logic_error.
[[nodiscard]] std::string CanonicalKey(const Request& request,
                                       std::string_view tag = kServeVersionTag);

/// Structured error reply: {"status":"error","error":"<escaped message>"}.
[[nodiscard]] std::string ErrorResponse(std::string_view message);

/// Shortest round-trip rendering of a double (std::to_chars): canonical,
/// locale-free, byte-stable across runs — the only way numbers enter
/// responses and cache keys.
[[nodiscard]] std::string FormatDouble(double value);

/// Escapes a string for embedding in a JSON-subset reply (quotes,
/// backslashes; control characters become spaces).
[[nodiscard]] std::string JsonEscape(std::string_view text);

/// Splits `buffer` into complete '\n'-terminated lines (CR stripped) and
/// leaves the unterminated tail in `buffer`. The server's framing step,
/// exposed so the fuzz suite can drive interleaved/partial delivery
/// in-process.
[[nodiscard]] std::vector<std::string> ExtractCompleteLines(
    std::string& buffer);

}  // namespace wsnlink::serve
