// The tuning-as-a-service query engine (transport-free).
//
// One QueryService owns the answer path end to end: parse a request line,
// look its canonical key up in the content-addressed ResultCache, compute
// on a miss (what_if runs the link simulator under the request's seed
// contract; optimize runs the Sec. VIII epsilon-constraint search over the
// serving config space), store, reply. Batches fan out over the process-
// wide work-stealing pool (util::ThreadPool::Shared()) — the same executor
// the sweep engine uses — with results landing in per-index slots, so a
// batch's response vector is a pure function of its request vector:
// bit-identical across thread counts and across cold/warm cache states
// (cached payloads are the verbatim bytes the cold computation produced).
//
// The TCP layer (server.h) is a thin framing shim over this class; tests,
// the bench harness and the in-process client mode all drive it directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/models/model_set.h"
#include "core/opt/config_space.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"

namespace wsnlink::serve {

struct ServiceOptions {
  /// Upper bound on concurrent computations in a batch; 0 = the shared
  /// pool's full width (same contract as SweepOptions::threads).
  unsigned threads = 0;
  /// Persistent cache path; empty = in-memory only.
  std::string cache_path;
  /// Persist after this many new cache entries (1 = every store). The
  /// cadence is store-count based, never timer based: the daemon contains
  /// no wall clock.
  std::size_t persist_every = 1;
  /// Cache/compatibility tag (see protocol.h kServeVersionTag). Override
  /// in tests to exercise the invalidation rule.
  std::string version_tag = std::string(kServeVersionTag);
  /// Entry cap for the result cache (0 = unbounded). When full, the
  /// oldest-inserted entry is evicted first — deterministic FIFO, so two
  /// daemons fed the same request sequence hold the same entries (see
  /// result_cache.h). Applies to warm starts too: a persisted file larger
  /// than the cap keeps the last `cache_max_entries` entries in key order.
  std::size_t cache_max_entries = 0;
};

/// Monotonic service counters (all advisory; the stats verb reports them).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t computed_what_if = 0;
  std::uint64_t computed_optimize = 0;
  std::uint64_t persist_failures = 0;
  std::uint64_t busy_rejected = 0;
  /// Entries warmed from disk at construction.
  std::uint64_t warm_loaded = 0;
  /// Damaged persisted lines dropped at warm start.
  std::uint64_t corrupt_dropped = 0;
  /// Current in-memory cache size.
  std::uint64_t cache_entries = 0;
};

class QueryService {
 public:
  /// Warms the cache from options.cache_path when set (tolerating any
  /// corruption — see ResultCache::Load).
  explicit QueryService(ServiceOptions options);

  /// Flushes the cache on the way down (best effort).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Answers one request line. Total: every input yields exactly one
  /// single-line reply — an ok/infeasible/stats payload or a structured
  /// error. Never throws, never blocks on other requests' locks while
  /// computing. Thread-safe.
  [[nodiscard]] std::string Answer(const std::string& line);

  /// Answers a batch via the shared pool (at most options.threads active
  /// workers). results[i] is Answer(lines[i]); the vector is bit-identical
  /// for any thread count.
  [[nodiscard]] std::vector<std::string> AnswerBatch(
      const std::vector<std::string>& lines);

  /// Records `count` requests rejected before parsing (the server's
  /// max-inflight overflow path) so stats reflect them.
  void CountBusyRejected(std::uint64_t count);

  [[nodiscard]] ServiceStats Stats() const;

  /// Persists the cache now if a path is configured. Returns false (and
  /// counts a persist failure) when the write fails; the daemon keeps
  /// serving from memory.
  bool Flush();

  [[nodiscard]] const ServiceOptions& Options() const noexcept {
    return options_;
  }

 private:
  [[nodiscard]] std::string ComputeWhatIf(const Request& request) const;
  [[nodiscard]] std::string ComputeOptimize(const Request& request) const;
  [[nodiscard]] std::string StatsResponse() const;
  void StoreAndMaybePersist(const std::string& key,
                            const std::string& payload);

  ServiceOptions options_;
  core::models::ModelSet models_;
  ResultCache cache_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> computed_what_if_{0};
  std::atomic<std::uint64_t> computed_optimize_{0};
  std::atomic<std::uint64_t> persist_failures_{0};
  std::atomic<std::uint64_t> busy_rejected_{0};
  std::uint64_t warm_loaded_ = 0;
  std::uint64_t corrupt_dropped_ = 0;

  /// Serializes Save() calls and the stores-since-persist counter.
  std::mutex persist_mutex_;
  std::size_t stores_since_persist_ = 0;
};

/// The serving configuration space for an optimize request: the paper's
/// Table I knob sets restricted to the request's fixed givens (distance,
/// traffic). Exposed so tests and docs state the exact search space.
[[nodiscard]] core::opt::ConfigSpace ServingSpace(double distance_m,
                                                  double pkt_interval_ms);

}  // namespace wsnlink::serve
