// wsnlinkd's transport: a single-threaded poll() loop over loopback TCP.
//
// The server is deliberately thin — it frames newline-delimited request
// lines out of per-connection byte streams (protocol.h
// ExtractCompleteLines), hands each poll cycle's harvest to
// QueryService::AnswerBatch (where the shared work-stealing pool does the
// actual computing), and writes the replies back in arrival order. All
// protocol/compute smarts live below it, which is why the test battery can
// drive QueryService in-process and trust that the socket path adds nothing
// but framing.
//
// Concurrency model: one event loop thread, nonblocking sockets, no
// per-connection threads. A cycle's lines are answered as one batch, so
// concurrent clients batch into the pooled executor exactly like sweep
// work. Lines past `max_inflight` in a cycle are answered with a
// structured busy error without being parsed or computed.
//
// There is no wall clock anywhere in this layer: poll() blocks until bytes
// or a stop wakeup arrive (infinite timeout), and responses carry no
// timestamps. Latency measurement belongs to the clients and benches.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/query_service.h"

namespace wsnlink::serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see Port()).
  std::uint16_t port = 0;
  /// Max request lines answered per poll cycle; the overflow is rejected
  /// with a busy error (counted in ServiceStats::busy_rejected).
  std::size_t max_inflight = 64;
  /// Crash-drill hook: after answering this many request lines, flush the
  /// pending replies and die with _Exit(3) — no destructors, no cache
  /// flush. 0 disables. Exercised by the CI crash drill, which restarts
  /// the daemon on the same cache and asserts warm answers.
  std::uint64_t abort_after = 0;
};

/// Line-protocol TCP front end over a QueryService.
class Server {
 public:
  /// Binds and listens on 127.0.0.1 immediately (throws std::runtime_error
  /// on failure). The service must outlive the server.
  Server(QueryService& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves option port 0 to the ephemeral choice).
  [[nodiscard]] std::uint16_t Port() const noexcept { return port_; }

  /// Runs the event loop until Stop(). Call from exactly one thread.
  void Run();

  /// Signals Run() to drain and return (safe from any thread/handler).
  void Stop();

 private:
  struct Connection {
    int fd = -1;
    /// Bytes received but not yet framed into complete lines.
    std::string in;
    /// Reply bytes not yet written to the socket.
    std::string out;
    /// True while discarding an overlong (unterminated) request line; the
    /// error reply is emitted when its newline finally arrives.
    bool discarding = false;
    /// Peer half-closed its write side; the connection stays alive until
    /// every buffered request is answered and every reply byte written.
    bool eof = false;
  };

  void AcceptNew();
  /// Reads from connections[index]; returns false when it must be closed.
  bool ReadFrom(std::size_t index, std::vector<std::string>& lines,
                std::vector<std::size_t>& owners);
  /// Best-effort blocking flush of every pending reply (crash-drill path).
  void FlushAllBlocking();

  QueryService& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::uint64_t answered_ = 0;
  std::vector<Connection> connections_;
};

}  // namespace wsnlink::serve
