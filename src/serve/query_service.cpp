#include "serve/query_service.h"

#include <exception>

#include "core/opt/epsilon_constraint.h"
#include "experiment/checkpoint.h"
#include "metrics/link_metrics.h"
#include "node/link_simulation.h"
#include "util/thread_pool.h"

namespace wsnlink::serve {

namespace {

/// Appends `"name":<double>` (canonical shortest form) to `out`.
void Field(std::string* out, std::string_view name, double value) {
  *out += '"';
  *out += name;
  *out += "\":";
  *out += FormatDouble(value);
}

void FieldInt(std::string* out, std::string_view name, std::uint64_t value) {
  *out += '"';
  *out += name;
  *out += "\":";
  *out += std::to_string(value);
}

}  // namespace

core::opt::ConfigSpace ServingSpace(double distance_m,
                                    double pkt_interval_ms) {
  core::opt::ConfigSpace space;
  space.distances_m = {distance_m};
  space.pa_levels = {3, 7, 11, 15, 19, 23, 27, 31};
  space.max_tries = {1, 2, 3, 5, 8};
  space.retry_delays_ms = {0.0};
  space.queue_capacities = {1, 10, 30};
  space.pkt_intervals_ms = {pkt_interval_ms};
  space.payload_bytes = {5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 114};
  return space;
}

QueryService::QueryService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.version_tag, options_.cache_max_entries) {
  if (options_.persist_every == 0) options_.persist_every = 1;
  if (!options_.cache_path.empty()) {
    const CacheLoadReport report = cache_.Load(options_.cache_path);
    warm_loaded_ = report.loaded;
    corrupt_dropped_ = report.corrupt_dropped;
  }
}

QueryService::~QueryService() {
  // Best-effort final persist; a failing disk must not turn shutdown into
  // a crash.
  (void)Flush();
}

std::string QueryService::ComputeWhatIf(const Request& request) const {
  node::SimulationOptions sim;
  sim.config = request.config;
  sim.mac = request.mac;
  sim.lpl_wakeup_interval_ms = request.lpl_wakeup_ms;
  sim.seed = request.seed;
  sim.packet_count = request.packets;
  const metrics::LinkMetrics m = metrics::MeasureConfig(sim);

  std::string out = "{\"status\":\"ok\",\"verb\":\"what_if\",";
  FieldInt(&out, "generated", static_cast<std::uint64_t>(m.generated));
  out += ',';
  FieldInt(&out, "delivered", m.delivered_unique);
  out += ',';
  FieldInt(&out, "duplicates", m.duplicates);
  out += ',';
  Field(&out, "per", m.per);
  out += ',';
  Field(&out, "mean_tries", m.mean_tries_all);
  out += ',';
  Field(&out, "plr_queue", m.plr_queue);
  out += ',';
  Field(&out, "plr_radio", m.plr_radio);
  out += ',';
  Field(&out, "plr_total", m.plr_total);
  out += ',';
  Field(&out, "goodput_kbps", m.goodput_kbps);
  out += ',';
  Field(&out, "energy_uj_per_bit", m.energy_uj_per_bit);
  out += ',';
  Field(&out, "mean_delay_ms", m.mean_delay_ms);
  out += ',';
  Field(&out, "delay_p50_ms", m.delay_p50_ms);
  out += ',';
  Field(&out, "delay_p99_ms", m.p99_delay_ms);
  out += ',';
  Field(&out, "delay_max_ms", m.delay_max_ms);
  out += ',';
  Field(&out, "utilization", m.utilization);
  out += ',';
  Field(&out, "mean_snr_db", m.mean_snr_db);
  out += ',';
  Field(&out, "duration_s", m.duration_s);
  out += '}';
  return out;
}

std::string QueryService::ComputeOptimize(const Request& request) const {
  core::opt::Problem problem;
  switch (request.objective) {
    case Objective::kEnergy:
      problem.objective = core::opt::Metric::kEnergy;
      break;
    case Objective::kGoodput:
      problem.objective = core::opt::Metric::kGoodput;
      break;
    case Objective::kDelay:
      problem.objective = core::opt::Metric::kDelay;
      break;
    case Objective::kLoss:
      problem.objective = core::opt::Metric::kLoss;
      break;
  }
  problem.fixed_snr_db = request.snr_db;
  if (request.max_energy_uj_per_bit) {
    problem.constraints.push_back(core::opt::AtMost(
        core::opt::Metric::kEnergy, *request.max_energy_uj_per_bit));
  }
  if (request.max_delay_ms) {
    problem.constraints.push_back(
        core::opt::AtMost(core::opt::Metric::kDelay, *request.max_delay_ms));
  }
  if (request.max_loss) {
    problem.constraints.push_back(
        core::opt::AtMost(core::opt::Metric::kLoss, *request.max_loss));
  }
  if (request.min_goodput_kbps) {
    problem.constraints.push_back(
        core::opt::GoodputAtLeast(*request.min_goodput_kbps));
  }

  const auto space = ServingSpace(request.distance_m, request.pkt_interval_ms);
  const auto solution =
      core::opt::SolveEpsilonConstraint(models_, space, problem);
  if (!solution) {
    return "{\"status\":\"infeasible\",\"verb\":\"optimize\","
           "\"feasible_count\":0}";
  }

  std::string out = "{\"status\":\"ok\",\"verb\":\"optimize\",";
  FieldInt(&out, "feasible_count", solution->feasible_count);
  out += ",\"config\":{";
  Field(&out, "distance_m", solution->config.distance_m);
  out += ',';
  FieldInt(&out, "pa_level",
           static_cast<std::uint64_t>(solution->config.pa_level));
  out += ',';
  FieldInt(&out, "max_tries",
           static_cast<std::uint64_t>(solution->config.max_tries));
  out += ',';
  Field(&out, "retry_delay_ms", solution->config.retry_delay_ms);
  out += ',';
  FieldInt(&out, "queue_capacity",
           static_cast<std::uint64_t>(solution->config.queue_capacity));
  out += ',';
  Field(&out, "pkt_interval_ms", solution->config.pkt_interval_ms);
  out += ',';
  FieldInt(&out, "payload_bytes",
           static_cast<std::uint64_t>(solution->config.payload_bytes));
  out += "},\"prediction\":{";
  const auto& p = solution->prediction;
  Field(&out, "snr_db", p.snr_db);
  out += ',';
  Field(&out, "per", p.per);
  out += ',';
  Field(&out, "mean_tries", p.mean_tries);
  out += ',';
  Field(&out, "energy_uj_per_bit", p.energy_uj_per_bit);
  out += ',';
  Field(&out, "max_goodput_kbps", p.max_goodput_kbps);
  out += ',';
  Field(&out, "total_delay_ms", p.total_delay_ms);
  out += ',';
  Field(&out, "plr_radio", p.plr_radio);
  out += ',';
  Field(&out, "plr_total", p.plr_total);
  out += ',';
  Field(&out, "utilization", p.utilization);
  out += "}}";
  return out;
}

std::string QueryService::StatsResponse() const {
  const ServiceStats s = Stats();
  std::string out = "{\"status\":\"ok\",\"verb\":\"stats\",";
  FieldInt(&out, "requests", s.requests);
  out += ',';
  FieldInt(&out, "parse_errors", s.parse_errors);
  out += ',';
  FieldInt(&out, "cache_hits", s.cache_hits);
  out += ',';
  FieldInt(&out, "cache_misses", s.cache_misses);
  out += ',';
  FieldInt(&out, "computed_what_if", s.computed_what_if);
  out += ',';
  FieldInt(&out, "computed_optimize", s.computed_optimize);
  out += ',';
  FieldInt(&out, "persist_failures", s.persist_failures);
  out += ',';
  FieldInt(&out, "busy_rejected", s.busy_rejected);
  out += ',';
  FieldInt(&out, "warm_loaded", s.warm_loaded);
  out += ',';
  FieldInt(&out, "corrupt_dropped", s.corrupt_dropped);
  out += ',';
  FieldInt(&out, "cache_entries", s.cache_entries);
  out += '}';
  return out;
}

void QueryService::StoreAndMaybePersist(const std::string& key,
                                        const std::string& payload) {
  cache_.Store(key, payload);
  if (options_.cache_path.empty()) return;
  bool persist_now = false;
  {
    const std::lock_guard<std::mutex> lock(persist_mutex_);
    if (++stores_since_persist_ >= options_.persist_every) {
      stores_since_persist_ = 0;
      persist_now = true;
    }
  }
  if (persist_now) (void)Flush();
}

bool QueryService::Flush() {
  if (options_.cache_path.empty()) return true;
  const std::lock_guard<std::mutex> lock(persist_mutex_);
  try {
    cache_.Save(options_.cache_path);
    return true;
  } catch (const experiment::CheckpointError&) {
    // Same contract as campaign checkpoints: a failed persist never aborts
    // the work — the in-memory cache still answers, only warm start
    // coverage suffers.
    persist_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
}

void QueryService::CountBusyRejected(std::uint64_t count) {
  busy_rejected_.fetch_add(count, std::memory_order_relaxed);
}

std::string QueryService::Answer(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Request request;
  try {
    request = ParseRequest(line);
  } catch (const ProtocolError& e) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(e.what());
  }
  if (request.verb == Verb::kStats) {
    return StatsResponse();
  }

  const std::string key = CanonicalKey(request, options_.version_tag);
  {
    const std::string cached = cache_.Lookup(key);
    if (!cached.empty()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);

  std::string payload;
  try {
    if (request.verb == Verb::kWhatIf) {
      payload = ComputeWhatIf(request);
      computed_what_if_.fetch_add(1, std::memory_order_relaxed);
    } else {
      payload = ComputeOptimize(request);
      computed_optimize_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const std::exception& e) {
    // Compute failures are answered, never cached: a transient condition
    // (OOM, injected fault) must not become a sticky wrong answer.
    return ErrorResponse(std::string("compute failed: ") + e.what());
  }
  StoreAndMaybePersist(key, payload);
  return payload;
}

std::vector<std::string> QueryService::AnswerBatch(
    const std::vector<std::string>& lines) {
  std::vector<std::string> responses(lines.size());
  if (lines.empty()) return responses;
  if (lines.size() == 1) {
    responses[0] = Answer(lines[0]);
    return responses;
  }
  util::ThreadPool::Shared().ParallelFor(
      lines.size(), /*chunk=*/1, options_.threads,
      [&](std::size_t i) { responses[i] = Answer(lines[i]); });
  return responses;
}

ServiceStats QueryService::Stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.computed_what_if = computed_what_if_.load(std::memory_order_relaxed);
  s.computed_optimize = computed_optimize_.load(std::memory_order_relaxed);
  s.persist_failures = persist_failures_.load(std::memory_order_relaxed);
  s.busy_rejected = busy_rejected_.load(std::memory_order_relaxed);
  s.warm_loaded = warm_loaded_;
  s.corrupt_dropped = corrupt_dropped_;
  s.cache_entries = cache_.Size();
  return s;
}

}  // namespace wsnlink::serve
