// Content-addressed, persistent result store for the tuning service.
//
// Every answer wsnlinkd produces is a pure function of its canonical
// request key (config, channel spec, seed contract, code-version tag — see
// protocol.h CanonicalKey), so results are perfectly cacheable: fleet-scale
// repeat traffic degenerates to lookups, and a restarted daemon warms from
// disk instead of recomputing months of answers.
//
// Addressing: the entry address is the FNV-1a 64-bit hash of the canonical
// key (experiment::CheckpointChecksum — the same hash the checkpoint format
// uses). The full key string is stored alongside and is what lookups
// compare, so even a hash collision can only cause a miss, never a wrong
// answer.
//
// Persistence reuses the campaign checkpoint line format (version 1,
// line-based text, LF endings, atomic tmp+rename publish through
// experiment::WriteChecksummedFile — which also means the cache backend
// shares the "checkpoint.write" fault-injection site, so the torn-write
// drills apply unchanged):
//
//   wsnlink-servecache 1
//   version_tag <tag>
//   entries <N>
//   entry <key-fnv1a-hex16> <payload-fnv1a-hex16> <key> <payload>   (N lines)
//   end <fnv1a64-hex of every preceding byte>
//
// Load is two-tier: a file whose trailing checksum verifies is parsed
// strictly; a file that fails it (bit rot, torn tail) drops to per-entry
// salvage — every `entry` line whose own key hash and payload checksum
// verify is kept, damaged lines are counted and dropped. One flipped byte
// therefore costs exactly the damaged entry (a recompute), never the cache
// and never a corrupt answer. A version-tag mismatch discards the whole
// file (the invalidation rule: old answers may be wrong under new code).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace wsnlink::serve {

inline constexpr int kCacheFormatVersion = 1;

/// Outcome of warming a cache from disk.
struct CacheLoadReport {
  /// Entries accepted into memory.
  std::size_t loaded = 0;
  /// `entry` lines dropped by salvage (bad hash/checksum/shape).
  std::size_t corrupt_dropped = 0;
  /// True when the file carried a different version tag and was discarded.
  bool invalidated = false;
  /// True when no file existed (a cold start, not an error).
  bool missing = false;
  /// True when the whole-file checksum failed and salvage mode ran.
  bool salvaged = false;
};

/// Thread-safe in-memory map + checkpoint-format persistence.
class ResultCache {
 public:
  /// `version_tag` is stamped into the file header and checked at Load.
  explicit ResultCache(std::string version_tag);

  /// Returns the payload stored under `key`, or empty if absent. (Payloads
  /// are never empty: an empty string unambiguously means miss.)
  [[nodiscard]] std::string Lookup(const std::string& key) const;

  /// Stores `payload` under `key` (first writer wins; a duplicate store of
  /// the same key is a no-op — answers are pure functions of the key, so
  /// both writers hold identical bytes). Rejects empty payloads and keys
  /// containing whitespace/control bytes (the file format is line-based).
  void Store(const std::string& key, const std::string& payload);

  [[nodiscard]] std::size_t Size() const;

  /// Serializes every entry (ordered by key: deterministic bytes) and
  /// atomically publishes it to `path` via the checkpoint writer. Throws
  /// experiment::CheckpointError on failure (injected or real); the
  /// previous file is left intact in that case.
  void Save(const std::string& path) const;

  /// Warms the cache from `path`, replacing the in-memory contents. Never
  /// throws on corruption: damaged state degrades to fewer warm entries
  /// (see the report), because a cache can always be rebuilt by
  /// recomputing.
  CacheLoadReport Load(const std::string& path);

  /// FNV-1a hex address of a canonical key (exposed for tests/tools).
  [[nodiscard]] static std::string KeyHashHex(std::string_view key);

 private:
  std::string version_tag_;
  mutable std::mutex mutex_;
  std::map<std::string, std::string> entries_;
};

}  // namespace wsnlink::serve
