// Content-addressed, persistent result store for the tuning service.
//
// Every answer wsnlinkd produces is a pure function of its canonical
// request key (config, channel spec, seed contract, code-version tag — see
// protocol.h CanonicalKey), so results are perfectly cacheable: fleet-scale
// repeat traffic degenerates to lookups, and a restarted daemon warms from
// disk instead of recomputing months of answers.
//
// Addressing: the entry address is the FNV-1a 64-bit hash of the canonical
// key (experiment::CheckpointChecksum — the same hash the checkpoint format
// uses). The full key string is stored alongside and is what lookups
// compare, so even a hash collision can only cause a miss, never a wrong
// answer.
//
// Persistence reuses the campaign checkpoint line format (version 1,
// line-based text, LF endings, atomic tmp+rename publish through
// experiment::WriteChecksummedFile — which also means the cache backend
// shares the "checkpoint.write" fault-injection site, so the torn-write
// drills apply unchanged):
//
//   wsnlink-servecache 1
//   version_tag <tag>
//   entries <N>
//   entry <key-fnv1a-hex16> <payload-fnv1a-hex16> <key> <payload>   (N lines)
//   end <fnv1a64-hex of every preceding byte>
//
// Load is two-tier: a file whose trailing checksum verifies is parsed
// strictly; a file that fails it (bit rot, torn tail) drops to per-entry
// salvage — every `entry` line whose own key hash and payload checksum
// verify is kept, damaged lines are counted and dropped. One flipped byte
// therefore costs exactly the damaged entry (a recompute), never the cache
// and never a corrupt answer. A version-tag mismatch discards the whole
// file (the invalidation rule: old answers may be wrong under new code).
//
// Bounding: an optional entry cap turns the cache into a FIFO — when a
// Store would exceed the cap, the oldest-inserted entries are evicted
// first. Eviction is deterministic (pure insertion order, never recency or
// wall clock: a duplicate Store does not refresh an entry's position), so
// two daemons fed the same request sequence hold the same entries. After a
// Load, insertion order is re-anchored to key order (the file's own entry
// order), which keeps load-time capping deterministic too. Because
// eviction only removes whole entries and Save serializes survivors in key
// order, a capped cache's file is byte-identical to an uncapped cache
// holding exactly the surviving set — warm-start byte identity survives
// the cap.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace wsnlink::serve {

inline constexpr int kCacheFormatVersion = 1;

/// Outcome of warming a cache from disk.
struct CacheLoadReport {
  /// Entries accepted into memory.
  std::size_t loaded = 0;
  /// `entry` lines dropped by salvage (bad hash/checksum/shape).
  std::size_t corrupt_dropped = 0;
  /// True when the file carried a different version tag and was discarded.
  bool invalidated = false;
  /// True when no file existed (a cold start, not an error).
  bool missing = false;
  /// True when the whole-file checksum failed and salvage mode ran.
  bool salvaged = false;
  /// Intact entries evicted at load time because the file held more than
  /// the cache's entry cap (kept: the last `max_entries` in key order).
  std::size_t cap_evicted = 0;
};

/// Thread-safe in-memory map + checkpoint-format persistence.
class ResultCache {
 public:
  /// `version_tag` is stamped into the file header and checked at Load.
  /// `max_entries` bounds the cache (0 = unbounded): once full, each new
  /// Store evicts the oldest-inserted entry (deterministic FIFO — see the
  /// file comment).
  explicit ResultCache(std::string version_tag, std::size_t max_entries = 0);

  /// Returns the payload stored under `key`, or empty if absent. (Payloads
  /// are never empty: an empty string unambiguously means miss.)
  [[nodiscard]] std::string Lookup(const std::string& key) const;

  /// Stores `payload` under `key` (first writer wins; a duplicate store of
  /// the same key is a no-op — answers are pure functions of the key, so
  /// both writers hold identical bytes). Rejects empty payloads and keys
  /// containing whitespace/control bytes (the file format is line-based).
  void Store(const std::string& key, const std::string& payload);

  [[nodiscard]] std::size_t Size() const;

  /// Entries evicted by the cap so far (Store-time and Load-time alike).
  [[nodiscard]] std::uint64_t Evictions() const;

  /// The configured entry cap (0 = unbounded).
  [[nodiscard]] std::size_t MaxEntries() const noexcept {
    return max_entries_;
  }

  /// Serializes every entry (ordered by key: deterministic bytes) and
  /// atomically publishes it to `path` via the checkpoint writer. Throws
  /// experiment::CheckpointError on failure (injected or real); the
  /// previous file is left intact in that case.
  void Save(const std::string& path) const;

  /// Warms the cache from `path`, replacing the in-memory contents. Never
  /// throws on corruption: damaged state degrades to fewer warm entries
  /// (see the report), because a cache can always be rebuilt by
  /// recomputing.
  CacheLoadReport Load(const std::string& path);

  /// FNV-1a hex address of a canonical key (exposed for tests/tools).
  [[nodiscard]] static std::string KeyHashHex(std::string_view key);

 private:
  /// Drops oldest-inserted entries until the cap holds. Caller holds
  /// mutex_. Returns how many entries were evicted.
  std::size_t EvictOverCapLocked();

  std::string version_tag_;
  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::map<std::string, std::string> entries_;
  /// Keys in insertion order, oldest first; rebuilt (in key order) by Load.
  // wsnstatic:transient(insertion_order_): not persisted; Load re-anchors it to the file's key order, which Save guarantees by serializing in key order
  std::deque<std::string> insertion_order_;
  // wsnstatic:transient(evictions_): process-lifetime telemetry, deliberately reset by a reload
  std::uint64_t evictions_ = 0;
};

}  // namespace wsnlink::serve
