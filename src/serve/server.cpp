#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/fault_injection.h"

namespace wsnlink::serve {

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// send() that never raises SIGPIPE; returns bytes written or -1.
ssize_t SendSome(int fd, const char* data, std::size_t size) {
#ifdef MSG_NOSIGNAL
  return ::send(fd, data, size, MSG_NOSIGNAL);
#else
  return ::send(fd, data, size, 0);
#endif
}

/// The instrumented send both flush loops go through. An armed
/// "serve.send" schedule degrades the selected operation into the failure
/// modes a loaded kernel produces anyway: a short write (exactly one byte
/// reaches the wire) when more than one byte was offered, a clean EINTR
/// when only one was. Either way no bytes are corrupted or reordered, so
/// the response-resumption paths must reassemble replies byte-exactly —
/// which is precisely what the drill asserts.
ssize_t SendChunk(int fd, const char* data, std::size_t size) {
  auto& injector = util::FaultInjector::Global();
  if (injector.Armed() && injector.ShouldFail("serve.send")) {
    if (size > 1) return SendSome(fd, data, 1);
    errno = EINTR;
    return -1;
  }
  return SendSome(fd, data, size);
}

}  // namespace

Server::Server(QueryService& service, ServerOptions options)
    : service_(service), options_(options) {
  if (options_.max_inflight == 0) options_.max_inflight = 1;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: cannot create listen socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: listen failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ::ntohs(bound.sin_port);
  }
  SetNonBlocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot create wakeup pipe");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
}

Server::~Server() {
  for (const Connection& conn : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void Server::Stop() {
  stop_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void Server::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try next cycle
    SetNonBlocking(fd);
    Connection conn;
    conn.fd = fd;
    connections_.push_back(std::move(conn));
  }
}

bool Server::ReadFrom(std::size_t index, std::vector<std::string>& lines,
                      std::vector<std::size_t>& owners) {
  Connection& conn = connections_[index];
  char buf[4096];
  while (!conn.eof) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n == 0) {
      conn.eof = true;
      break;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn.in.append(buf, static_cast<std::size_t>(n));
    if (static_cast<std::size_t>(n) < sizeof(buf)) break;
  }

  // Overlong unterminated line: drop its bytes now (bounded memory) and
  // answer with a structured error once its terminator shows up.
  if (conn.discarding) {
    const std::size_t nl = conn.in.find('\n');
    if (nl == std::string::npos) {
      conn.in.clear();
    } else {
      conn.in.erase(0, nl + 1);
      conn.discarding = false;
      conn.out +=
          ErrorResponse("request line exceeds " +
                        std::to_string(kMaxRequestBytes) + " bytes");
      conn.out += '\n';
    }
  }
  if (!conn.discarding && conn.in.size() > kMaxRequestBytes &&
      conn.in.find('\n') == std::string::npos) {
    conn.discarding = true;
    conn.in.clear();
  }

  std::size_t harvested = 0;
  for (std::string& line : ExtractCompleteLines(conn.in)) {
    lines.push_back(std::move(line));
    owners.push_back(index);
    ++harvested;
  }
  // A half-closed peer is kept until its last reply byte is on the wire.
  if (conn.eof && harvested == 0 && conn.out.empty()) return false;
  return true;
}

void Server::FlushAllBlocking() {
  for (Connection& conn : connections_) {
    while (conn.fd >= 0 && !conn.out.empty()) {
      const ssize_t n = SendChunk(conn.fd, conn.out.data(), conn.out.size());
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          pollfd pfd{conn.fd, POLLOUT, 0};
          if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) break;
          continue;
        }
        break;
      }
      conn.out.erase(0, static_cast<std::size_t>(n));
    }
  }
}

void Server::Run() {
  std::vector<pollfd> pfds;
  std::vector<std::string> lines;
  std::vector<std::size_t> owners;

  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wake_read_fd_, POLLIN, 0});
    for (const Connection& conn : connections_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      pfds.push_back({conn.fd, events, 0});
    }

    // No wall clock: block until traffic or a Stop() wakeup.
    const int ready = ::poll(pfds.data(), pfds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (pfds[1].revents & POLLIN) {
      char drain[16];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    if (pfds[0].revents & POLLIN) AcceptNew();

    // Harvest complete request lines from every readable connection.
    lines.clear();
    owners.clear();
    std::vector<std::size_t> to_close;
    for (std::size_t i = 0; i + 2 < pfds.size() && i < connections_.size();
         ++i) {
      const short revents = pfds[i + 2].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        to_close.push_back(i);
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) {
        if (!ReadFrom(i, lines, owners)) to_close.push_back(i);
      }
    }

    // Answer this cycle's batch; overflow past max_inflight is rejected
    // up front so a flood cannot queue unbounded compute.
    if (!lines.empty()) {
      std::vector<std::string> accepted;
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (i < options_.max_inflight) {
          accepted.push_back(std::move(lines[i]));
        }
      }
      const std::size_t rejected = lines.size() - accepted.size();
      if (rejected > 0) service_.CountBusyRejected(rejected);

      const std::vector<std::string> responses =
          service_.AnswerBatch(accepted);
      for (std::size_t i = 0; i < lines.size(); ++i) {
        Connection& conn = connections_[owners[i]];
        if (i < responses.size()) {
          conn.out += responses[i];
        } else {
          conn.out += ErrorResponse("busy: max inflight exceeded");
        }
        conn.out += '\n';
      }
      answered_ += lines.size();
    }

    // Write what we can without blocking.
    for (std::size_t i = 0; i < connections_.size(); ++i) {
      Connection& conn = connections_[i];
      while (!conn.out.empty()) {
        const ssize_t n = SendChunk(conn.fd, conn.out.data(), conn.out.size());
        if (n > 0) {
          conn.out.erase(0, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        to_close.push_back(i);
        break;
      }
    }

    // Crash drill: answers are on the wire, now die without cleanup.
    if (options_.abort_after != 0 && answered_ >= options_.abort_after) {
      FlushAllBlocking();
      std::_Exit(3);
    }

    if (!to_close.empty()) {
      // Close marked connections (dedupe via the highest-index-first
      // erase; indices were recorded against the same vector).
      std::vector<Connection> kept;
      kept.reserve(connections_.size());
      for (std::size_t i = 0; i < connections_.size(); ++i) {
        bool close_it = false;
        for (const std::size_t idx : to_close) {
          if (idx == i) close_it = true;
        }
        if (close_it) {
          ::close(connections_[i].fd);
        } else {
          kept.push_back(std::move(connections_[i]));
        }
      }
      connections_ = std::move(kept);
    }
  }
  FlushAllBlocking();
}

}  // namespace wsnlink::serve
