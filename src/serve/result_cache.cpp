#include "serve/result_cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "experiment/checkpoint.h"

namespace wsnlink::serve {

namespace {

constexpr std::string_view kMagic = "wsnlink-servecache";

std::string HashHex(std::string_view bytes) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    experiment::CheckpointChecksum(bytes)));
  return buf;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

/// Parses one `entry <keyhash> <payloadsum> <key> <payload>` line and
/// verifies both checksums. Returns false on any damage.
bool ParseEntryLine(std::string_view line, std::string* key,
                    std::string* payload) {
  constexpr std::string_view kPrefix = "entry ";
  if (line.substr(0, kPrefix.size()) != kPrefix) return false;
  std::string_view rest = line.substr(kPrefix.size());
  const std::size_t sp1 = rest.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = rest.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  const std::size_t sp3 = rest.find(' ', sp2 + 1);
  if (sp3 == std::string_view::npos) return false;
  const std::string_view key_hash = rest.substr(0, sp1);
  const std::string_view payload_sum = rest.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view key_text = rest.substr(sp2 + 1, sp3 - sp2 - 1);
  const std::string_view payload_text = rest.substr(sp3 + 1);
  if (key_text.empty() || payload_text.empty()) return false;
  if (HashHex(key_text) != key_hash) return false;
  if (HashHex(payload_text) != payload_sum) return false;
  *key = std::string(key_text);
  *payload = std::string(payload_text);
  return true;
}

}  // namespace

ResultCache::ResultCache(std::string version_tag, std::size_t max_entries)
    : version_tag_(std::move(version_tag)), max_entries_(max_entries) {
  if (version_tag_.empty() ||
      version_tag_.find_first_of(" \t\n\r") != std::string::npos) {
    throw std::invalid_argument(
        "ResultCache: version tag must be non-empty and whitespace-free");
  }
}

std::size_t ResultCache::EvictOverCapLocked() {
  std::size_t evicted = 0;
  while (max_entries_ != 0 && entries_.size() > max_entries_) {
    // insertion_order_ and entries_ always hold the same key set, so the
    // front key is present by construction.
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++evicted;
  }
  evictions_ += evicted;
  return evicted;
}

std::string ResultCache::Lookup(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? std::string() : it->second;
}

void ResultCache::Store(const std::string& key, const std::string& payload) {
  if (key.empty() || key.find_first_of(" \t\n\r") != std::string::npos) {
    throw std::invalid_argument(
        "ResultCache: keys must be non-empty and whitespace-free");
  }
  if (payload.empty() ||
      payload.find_first_of("\n\r") != std::string::npos) {
    throw std::invalid_argument(
        "ResultCache: payloads must be non-empty single lines");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const bool inserted = entries_.emplace(key, payload).second;
  // A duplicate store is a no-op that must not refresh the entry's FIFO
  // position — eviction order is pure insertion order, never recency.
  if (!inserted) return;
  insertion_order_.push_back(key);
  (void)EvictOverCapLocked();
}

std::size_t ResultCache::Size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t ResultCache::Evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

// wsnstatic:serdes(ResultCache, Save, Load): persistent-cache contract; every persisted field must survive a save/load cycle
void ResultCache::Save(const std::string& path) const {
  std::string body;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    body.reserve(128 + entries_.size() * 256);
    body += kMagic;
    body += ' ';
    body += std::to_string(kCacheFormatVersion);
    body += '\n';
    body += "version_tag " + version_tag_ + "\n";
    body += "entries " + std::to_string(entries_.size()) + "\n";
    // std::map iteration: entries serialize in key order, so the same
    // cache contents always produce the same bytes.
    for (const auto& [key, payload] : entries_) {
      body += "entry ";
      body += HashHex(key);
      body += ' ';
      body += HashHex(payload);
      body += ' ';
      body += key;
      body += ' ';
      body += payload;
      body += '\n';
    }
  }
  experiment::WriteChecksummedFile(path, body);
}

CacheLoadReport ResultCache::Load(const std::string& path) {
  CacheLoadReport report;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    report.missing = true;
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    insertion_order_.clear();
    return report;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();

  std::string_view body;
  bool strict = true;
  try {
    body = experiment::VerifyChecksummedBody(contents, path);
  } catch (const experiment::CheckpointError&) {
    // Whole-file checksum failed: salvage every entry line that verifies
    // on its own. A flipped byte costs one entry, not the cache.
    body = contents;
    strict = false;
    report.salvaged = true;
  }

  const auto lines = SplitLines(body);
  // Header: magic+version and version_tag must be intact even in salvage
  // mode — without a trustworthy tag the entries cannot be attributed to a
  // code version, so the only safe answer is a cold start.
  if (lines.size() < 2 ||
      lines[0] != std::string(kMagic) + " " +
                      std::to_string(kCacheFormatVersion)) {
    report.corrupt_dropped = lines.size();
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    insertion_order_.clear();
    return report;
  }
  constexpr std::string_view kTagPrefix = "version_tag ";
  if (lines[1].substr(0, kTagPrefix.size()) != kTagPrefix) {
    report.corrupt_dropped = lines.size();
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    insertion_order_.clear();
    return report;
  }
  if (lines[1].substr(kTagPrefix.size()) != version_tag_) {
    // Different code version: every persisted answer is suspect. Discard.
    report.invalidated = true;
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    insertion_order_.clear();
    return report;
  }

  std::map<std::string, std::string> loaded;
  std::size_t dropped = 0;
  std::size_t declared = 0;
  bool have_declared = false;
  for (std::size_t i = 2; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty()) continue;
    // The checksum trailer reaches this loop in salvage mode only; it is
    // not a damaged entry.
    if (line.substr(0, 4) == "end ") continue;
    constexpr std::string_view kEntries = "entries ";
    if (line.substr(0, kEntries.size()) == kEntries && !have_declared) {
      have_declared = true;
      // Advisory in salvage mode; strict mode re-checks below.
      for (const char ch : line.substr(kEntries.size())) {
        if (ch < '0' || ch > '9') {
          have_declared = false;
          break;
        }
        declared = declared * 10 + static_cast<std::size_t>(ch - '0');
      }
      continue;
    }
    std::string key;
    std::string payload;
    if (ParseEntryLine(line, &key, &payload)) {
      loaded.emplace(std::move(key), std::move(payload));
    } else {
      ++dropped;
    }
  }
  if (strict && (!have_declared || declared != loaded.size() || dropped != 0)) {
    // A verified file must parse perfectly; anything else is a format bug
    // or in-memory damage. Degrade to what did parse and report the rest.
    dropped += declared > loaded.size() ? declared - loaded.size() : 0;
    report.salvaged = true;
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  entries_ = std::move(loaded);
  // Re-anchor the FIFO to key order — the file's own deterministic entry
  // order — so capping a loaded cache keeps the *last* max_entries keys no
  // matter which daemon wrote the file.
  insertion_order_.clear();
  for (const auto& [key, payload] : entries_) {
    insertion_order_.push_back(key);
  }
  report.cap_evicted = EvictOverCapLocked();
  report.loaded = entries_.size();
  report.corrupt_dropped = dropped;
  return report;
}

std::string ResultCache::KeyHashHex(std::string_view key) {
  return HashHex(key);
}

}  // namespace wsnlink::serve
