#include "core/opt/baselines.h"

#include "core/opt/epsilon_constraint.h"
#include "phy/frame.h"

namespace wsnlink::core::opt {

StackConfig CaseStudyBaseConfig(double distance_m) {
  StackConfig base;
  base.distance_m = distance_m;
  base.pa_level = 23;
  base.max_tries = 1;
  base.retry_delay_ms = 0.0;
  base.queue_capacity = 30;
  base.pkt_interval_ms = 1.0;  // bulk transfer: keep the stack saturated
  base.payload_bytes = phy::kMaxPayloadBytes;
  return base;
}

BaselineChoice TunePowerBaseline(const StackConfig& base) {
  StackConfig config = base;
  config.pa_level = 31;
  return {"[11]-tuning power", config};
}

BaselineChoice TuneRetransmissionsBaseline(const StackConfig& base) {
  StackConfig config = base;
  config.max_tries = 8;
  return {"[6]-tuning retransmissions", config};
}

BaselineChoice MinPayloadBaseline(const StackConfig& base) {
  StackConfig config = base;
  config.payload_bytes = 5;
  return {"[1]-minimal payload", config};
}

BaselineChoice MaxPayloadBaseline(const StackConfig& base) {
  StackConfig config = base;
  config.payload_bytes = phy::kMaxPayloadBytes;
  return {"[1]-maximal payload", config};
}

BaselineChoice JointTuning(const models::ModelSet& models,
                           const StackConfig& base,
                           double energy_budget_uj_per_bit) {
  // Joint search over the knobs the case study varies: power, payload and
  // retransmissions. Placement and traffic stay as deployed.
  ConfigSpace space;
  space.distances_m = {base.distance_m};
  space.pa_levels = {3, 7, 11, 15, 19, 23, 27, 31};
  space.max_tries = {1, 2, 3, 4, 5, 8};
  space.retry_delays_ms = {base.retry_delay_ms};
  space.queue_capacities = {base.queue_capacity};
  space.pkt_intervals_ms = {base.pkt_interval_ms};
  space.payload_bytes = {5,  10, 20, 30, 40, 50, 60, 68,
                         80, 90, 100, 110, phy::kMaxPayloadBytes};

  Problem problem;
  problem.objective = Metric::kGoodput;
  if (energy_budget_uj_per_bit > 0.0) {
    problem.constraints.push_back(
        AtMost(Metric::kEnergy, energy_budget_uj_per_bit));
  }

  const auto solution = SolveEpsilonConstraint(models, space, problem);
  // The unconstrained problem is always feasible; with an over-tight energy
  // budget fall back to the pure goodput optimum.
  if (!solution) {
    Problem relaxed;
    relaxed.objective = Metric::kGoodput;
    const auto fallback = SolveEpsilonConstraint(models, space, relaxed);
    return {"our-work (joint, budget infeasible)", fallback->config};
  }
  return {"our-work (joint tuning)", solution->config};
}

std::vector<BaselineChoice> AllPolicies(const models::ModelSet& models,
                                        const StackConfig& base,
                                        double energy_budget_uj_per_bit) {
  return {
      TunePowerBaseline(base),
      TuneRetransmissionsBaseline(base),
      MinPayloadBaseline(base),
      MaxPayloadBaseline(base),
      JointTuning(models, base, energy_budget_uj_per_bit),
  };
}

}  // namespace wsnlink::core::opt
