#include "core/opt/objectives.h"

namespace wsnlink::core::opt {

std::string_view MetricName(Metric metric) noexcept {
  switch (metric) {
    case Metric::kEnergy:
      return "energy[uJ/bit]";
    case Metric::kGoodput:
      return "goodput[kbps]";
    case Metric::kDelay:
      return "delay[ms]";
    case Metric::kLoss:
      return "loss";
  }
  return "?";
}

double MetricValue(const models::MetricPrediction& prediction,
                   Metric metric) noexcept {
  switch (metric) {
    case Metric::kEnergy:
      return prediction.energy_uj_per_bit;
    case Metric::kGoodput:
      return prediction.max_goodput_kbps;
    case Metric::kDelay:
      return prediction.total_delay_ms;
    case Metric::kLoss:
      return prediction.plr_total;
  }
  return 0.0;
}

double MetricCost(const models::MetricPrediction& prediction,
                  Metric metric) noexcept {
  const double value = MetricValue(prediction, metric);
  return metric == Metric::kGoodput ? -value : value;
}

}  // namespace wsnlink::core::opt
