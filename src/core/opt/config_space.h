// The discrete parameter space of the experiment (Table I).
//
// The paper sweeps 8064 combinations of six parameters per distance, six
// distances in our reconstruction (~48k configurations total). A ConfigSpace
// holds the candidate value sets, enumerates the Cartesian product in a
// fixed order, and supports random-access indexing so sweeps can be
// partitioned or subsampled deterministically.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/stack_config.h"

namespace wsnlink::core::opt {

/// A discrete multi-layer parameter space.
struct ConfigSpace {
  std::vector<double> distances_m;
  std::vector<int> pa_levels;
  std::vector<int> max_tries;
  std::vector<double> retry_delays_ms;
  std::vector<int> queue_capacities;
  std::vector<double> pkt_intervals_ms;
  std::vector<int> payload_bytes;

  /// The paper's Table I reconstruction: 6*8*4*3*2*6*7 = 48384 configs.
  [[nodiscard]] static ConfigSpace PaperTableI();

  /// Number of configurations in the Cartesian product.
  [[nodiscard]] std::size_t Size() const;

  /// The i-th configuration in row-major order (distance slowest, payload
  /// fastest — matching the paper's "all combinations per distance" runs).
  /// Requires index < Size().
  [[nodiscard]] StackConfig At(std::size_t index) const;

  /// Calls `fn` for every configuration in order.
  void ForEach(const std::function<void(const StackConfig&)>& fn) const;

  /// Throws std::invalid_argument if any dimension is empty or any value
  /// violates StackConfig bounds.
  void Validate() const;

  /// Per-distance sub-space size (the paper's "8064 settings per distance").
  [[nodiscard]] std::size_t SizePerDistance() const;
};

}  // namespace wsnlink::core::opt
