#include "core/opt/adaptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "phy/cc2420.h"
#include "phy/frame.h"

namespace wsnlink::core::opt {

LinkQualityEstimator::LinkQualityEstimator(double alpha, double loss_step_db,
                                           double floor_db)
    : alpha_(alpha), loss_step_db_(loss_step_db), floor_db_(floor_db) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("LinkQualityEstimator: alpha must be in (0, 1]");
  }
  if (loss_step_db < 0.0) {
    throw std::invalid_argument("LinkQualityEstimator: loss step must be >= 0");
  }
}

void LinkQualityEstimator::OnReception(double snr_db) {
  if (!has_estimate_) {
    estimate_db_ = snr_db;
    has_estimate_ = true;
  } else {
    estimate_db_ += alpha_ * (snr_db - estimate_db_);
  }
  ++receptions_;
}

void LinkQualityEstimator::OnLoss() {
  ++losses_;
  if (!has_estimate_) return;
  estimate_db_ = std::max(floor_db_, estimate_db_ - loss_step_db_);
}

double LinkQualityEstimator::SnrDb() const {
  if (!has_estimate_) {
    throw std::logic_error("LinkQualityEstimator: no estimate yet");
  }
  return estimate_db_;
}

void LinkQualityEstimator::Reset() {
  has_estimate_ = false;
  estimate_db_ = 0.0;
  receptions_ = 0;
  losses_ = 0;
}

AdaptiveController::AdaptiveController(models::ModelSet models,
                                       StackConfig initial,
                                       AdaptiveControllerConfig config)
    : models_(std::move(models)), config_(initial), policy_(config) {
  initial.Validate();
  if (policy_.packets_per_epoch < 1) {
    throw std::invalid_argument("AdaptiveController: epoch must be >= 1 packet");
  }
}

void AdaptiveController::ReportReception(double snr_db) {
  estimator_.OnReception(snr_db);
  ++reports_in_epoch_;
}

void AdaptiveController::ReportLoss() {
  estimator_.OnLoss();
  ++reports_in_epoch_;
}

StackConfig AdaptiveController::DeriveConfig(double snr_db,
                                             int at_level) const {
  // SNR transfers across power levels by the output-power delta.
  const double at_dbm = phy::OutputPowerDbm(at_level);
  const auto snr_at = [&](int level) {
    return snr_db + phy::OutputPowerDbm(level) - at_dbm;
  };

  StackConfig best = config_;
  double best_cost = std::numeric_limits<double>::infinity();

  for (const auto& entry : phy::PaLevels()) {
    const double snr = snr_at(entry.level);
    StackConfig candidate = config_;
    candidate.pa_level = entry.level;

    if (policy_.objective == AdaptationObjective::kEnergy) {
      // Sec. IV-C: payload from the energy model; retries to meet the loss
      // ceiling (they are free energy-wise, Eq. 2).
      candidate.payload_bytes =
          snr >= models::kEnergyMaxPayloadSnrDb
              ? phy::kMaxPayloadBytes
              : models_.Energy().OptimalPayload(snr, entry.level);
      candidate.max_tries = models_.Plr().MinTriesForLoss(
          candidate.payload_bytes, snr, policy_.radio_loss_ceiling);
      const auto p = models_.PredictAtSnr(candidate, snr);
      if (p.plr_radio > policy_.radio_loss_ceiling) continue;
      if (p.energy_uj_per_bit < best_cost) {
        best_cost = p.energy_uj_per_bit;
        best = candidate;
      }
    } else {
      // Sec. V-C: payload from the goodput model, generous retry budget.
      candidate.max_tries = 8;
      candidate.payload_bytes =
          snr >= models::kGoodputMaxPayloadSnrDb
              ? phy::kMaxPayloadBytes
              : models_.Goodput().OptimalPayload(snr, candidate.max_tries);
      const auto p = models_.PredictAtSnr(candidate, snr);
      if (policy_.energy_ceiling_uj_per_bit > 0.0 &&
          p.energy_uj_per_bit > policy_.energy_ceiling_uj_per_bit) {
        continue;
      }
      if (-p.max_goodput_kbps < best_cost) {
        best_cost = -p.max_goodput_kbps;
        best = candidate;
      }
    }
  }
  return best;
}

bool AdaptiveController::MaybeReconfigure() {
  if (reports_in_epoch_ < policy_.packets_per_epoch) return false;
  reports_in_epoch_ = 0;
  if (!estimator_.HasEstimate()) return false;

  const double snr = estimator_.SnrDb();
  if (std::abs(snr - config_snr_db_) < policy_.min_snr_change_db) {
    return false;
  }
  const StackConfig next = DeriveConfig(snr, config_.pa_level);
  config_snr_db_ = snr;
  if (next == config_) return false;
  config_ = next;
  ++reconfigs_;
  return true;
}

}  // namespace wsnlink::core::opt
