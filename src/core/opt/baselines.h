// Single-parameter tuning baselines from the literature (Fig. 1, Table IV).
//
// The paper compares its joint tuning against three representative
// guidelines, each of which adjusts exactly one knob of a common base
// configuration:
//
//   [11] (power tuning):          raise P_tx to maximum to cut loss
//   [6]  (retransmission tuning): raise N_maxTries to recover losses
//   [1]  (payload tuning):        shrink (or grow) l_D
//
// Our joint policy instead searches the whole space with the epsilon-
// constraint optimizer. Each baseline returns the configuration it would
// deploy for the case-study scenario so callers can evaluate all of them on
// the *same* simulated link.
#pragma once

#include <string>
#include <vector>

#include "core/models/model_set.h"
#include "core/opt/config_space.h"
#include "core/stack_config.h"

namespace wsnlink::core::opt {

/// A named tuning policy outcome.
struct BaselineChoice {
  std::string name;
  StackConfig config;
};

/// The case-study scenario of Sec. VIII-C: bulk transfer over a grey-zone
/// link. `base` is the deployment's default configuration before tuning
/// (paper: P_tx = 23, l_D = 114, N = 1, saturating traffic).
[[nodiscard]] StackConfig CaseStudyBaseConfig(double distance_m);

/// [11]: tune output power only (to maximum).
[[nodiscard]] BaselineChoice TunePowerBaseline(const StackConfig& base);

/// [6]: tune retransmissions only (to a large budget of 8).
[[nodiscard]] BaselineChoice TuneRetransmissionsBaseline(const StackConfig& base);

/// [1]: tune payload only — minimal variant (5 B, for high interference).
[[nodiscard]] BaselineChoice MinPayloadBaseline(const StackConfig& base);

/// [1]: tune payload only — maximal variant (114 B, to amortise overhead).
[[nodiscard]] BaselineChoice MaxPayloadBaseline(const StackConfig& base);

/// Our work: joint multi-layer tuning via epsilon-constraint — maximise
/// goodput subject to an energy budget, over power, payload and retries.
/// `energy_budget_uj_per_bit` <= 0 means "no energy constraint" (pure
/// goodput maximisation, energy reported for the trade-off plot).
[[nodiscard]] BaselineChoice JointTuning(const models::ModelSet& models,
                                         const StackConfig& base,
                                         double energy_budget_uj_per_bit);

/// All five policies evaluated for one scenario, in Table IV row order.
[[nodiscard]] std::vector<BaselineChoice> AllPolicies(
    const models::ModelSet& models, const StackConfig& base,
    double energy_budget_uj_per_bit);

}  // namespace wsnlink::core::opt
