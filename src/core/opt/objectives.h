// Optimization objectives over model-predicted metrics.
//
// The multi-objective problem of Sec. VIII-B works on the metric vector
// (E, G, D, L) predicted by the ModelSet. This header defines the metric
// identifiers, extraction from a MetricPrediction, and the orientation
// (lower-is-better after negating goodput) used by the Pareto and
// epsilon-constraint machinery.
#pragma once

#include <string_view>

#include "core/models/model_set.h"

namespace wsnlink::core::opt {

/// The four performance metrics of the paper.
enum class Metric {
  kEnergy,    ///< U_eng, microjoules per delivered bit (minimise)
  kGoodput,   ///< max goodput, kbps (maximise)
  kDelay,     ///< total delay, ms (minimise)
  kLoss,      ///< total packet loss rate (minimise)
};

/// Human-readable metric name.
[[nodiscard]] std::string_view MetricName(Metric metric) noexcept;

/// Extracts a metric value from a prediction.
[[nodiscard]] double MetricValue(const models::MetricPrediction& prediction,
                                 Metric metric) noexcept;

/// Extracts the metric in minimisation orientation (goodput is negated so
/// that "smaller is better" holds uniformly).
[[nodiscard]] double MetricCost(const models::MetricPrediction& prediction,
                                Metric metric) noexcept;

}  // namespace wsnlink::core::opt
