#include "core/opt/config_space.h"

#include <stdexcept>

namespace wsnlink::core::opt {

ConfigSpace ConfigSpace::PaperTableI() {
  ConfigSpace space;
  space.distances_m = {10, 15, 20, 25, 30, 35};
  space.pa_levels = {3, 7, 11, 15, 19, 23, 27, 31};
  space.max_tries = {1, 3, 5, 8};
  space.retry_delays_ms = {0, 30, 60};
  space.queue_capacities = {1, 30};
  space.pkt_intervals_ms = {10, 20, 30, 50, 100, 200};
  space.payload_bytes = {5, 20, 35, 50, 65, 95, 110};
  return space;
}

std::size_t ConfigSpace::Size() const {
  return distances_m.size() * SizePerDistance();
}

std::size_t ConfigSpace::SizePerDistance() const {
  return pa_levels.size() * max_tries.size() * retry_delays_ms.size() *
         queue_capacities.size() * pkt_intervals_ms.size() *
         payload_bytes.size();
}

void ConfigSpace::Validate() const {
  if (distances_m.empty() || pa_levels.empty() || max_tries.empty() ||
      retry_delays_ms.empty() || queue_capacities.empty() ||
      pkt_intervals_ms.empty() || payload_bytes.empty()) {
    throw std::invalid_argument("ConfigSpace: empty dimension");
  }
  // Validate each candidate value via a representative config, one
  // dimension at a time (full Cartesian validation would be redundant).
  StackConfig probe;
  for (const double d : distances_m) {
    probe = StackConfig{};
    probe.distance_m = d;
    probe.Validate();
  }
  for (const int p : pa_levels) {
    probe = StackConfig{};
    probe.pa_level = p;
    probe.Validate();
  }
  for (const int n : max_tries) {
    probe = StackConfig{};
    probe.max_tries = n;
    probe.Validate();
  }
  for (const double r : retry_delays_ms) {
    probe = StackConfig{};
    probe.retry_delay_ms = r;
    probe.Validate();
  }
  for (const int q : queue_capacities) {
    probe = StackConfig{};
    probe.queue_capacity = q;
    probe.Validate();
  }
  for (const double t : pkt_intervals_ms) {
    probe = StackConfig{};
    probe.pkt_interval_ms = t;
    probe.Validate();
  }
  for (const int l : payload_bytes) {
    probe = StackConfig{};
    probe.payload_bytes = l;
    probe.Validate();
  }
}

StackConfig ConfigSpace::At(std::size_t index) const {
  if (index >= Size()) throw std::out_of_range("ConfigSpace::At");
  StackConfig config;
  // Row-major: payload fastest, distance slowest.
  config.payload_bytes = payload_bytes[index % payload_bytes.size()];
  index /= payload_bytes.size();
  config.pkt_interval_ms = pkt_intervals_ms[index % pkt_intervals_ms.size()];
  index /= pkt_intervals_ms.size();
  config.queue_capacity = queue_capacities[index % queue_capacities.size()];
  index /= queue_capacities.size();
  config.retry_delay_ms = retry_delays_ms[index % retry_delays_ms.size()];
  index /= retry_delays_ms.size();
  config.max_tries = max_tries[index % max_tries.size()];
  index /= max_tries.size();
  config.pa_level = pa_levels[index % pa_levels.size()];
  index /= pa_levels.size();
  config.distance_m = distances_m[index];
  return config;
}

void ConfigSpace::ForEach(
    const std::function<void(const StackConfig&)>& fn) const {
  const std::size_t size = Size();
  for (std::size_t i = 0; i < size; ++i) fn(At(i));
}

}  // namespace wsnlink::core::opt
